// Graph-plane benchmark: contraction-hierarchy preprocessing and query
// performance against plain CSR Dijkstra on a city-scale synthetic network
// (>= 100k edges), plus the batched many-to-many path. Emits
// BENCH_graph.json for CI tracking.
//
// Measurements:
//  1. CSR lowering + CH preprocessing wall-clock, shortcut count.
//  2. Point-to-point query throughput: CsrDijkstra vs ChEngine over the
//     same random (src, dst) pairs — and exact-distance agreement between
//     the two on every pair. Costs are integer (fixed-point milliseconds),
//     so agreement is bitwise equality, not a tolerance.
//  3. Many-to-many: a |S| x |T| table via the bucket algorithm vs |S|*|T|
//     pairwise CH queries.
//  4. Serialization round-trip (Save + Load) wall-clock.
//
// Acceptance gates (hard CI failures):
//  - the city has >= 100,000 arcs;
//  - CH answers == Dijkstra answers on 100% of the sampled pairs;
//  - CH point-to-point throughput >= 10x Dijkstra's.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target bench_graph
//   ./build/bench_graph
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "roadnet/ch_engine.h"
#include "roadnet/csr_graph.h"
#include "roadnet/road_network.h"
#include "roadnet/synthetic_city.h"

namespace {

using start::common::Rng;
using start::common::Stopwatch;
using start::roadnet::ChEngine;
using start::roadnet::Cost;
using start::roadnet::CsrDijkstra;
using start::roadnet::CsrGraph;
using start::roadnet::kInfCost;

constexpr int64_t kQueryPairs = 256;
constexpr int64_t kManyToManySide = 48;

double BestOf2(const std::function<double()>& run) {
  const double first = run();
  return std::min(first, run());
}

}  // namespace

int main() {
  // 100x100 arterial grid: ~40k directed segments, ~120k turn arcs — the
  // city scale the ISSUE gates on (Porto's OSM extract is the same order).
  start::roadnet::SyntheticCityConfig city_config;
  city_config.grid_width = 100;
  city_config.grid_height = 100;
  city_config.seed = 12;
  Stopwatch watch;
  const start::roadnet::RoadNetwork net =
      start::roadnet::BuildSyntheticCity(city_config);
  const double build_city_s = watch.ElapsedSeconds();

  watch.Restart();
  const CsrGraph graph = CsrGraph::FromNetworkFreeFlow(net);
  const double lower_s = watch.ElapsedSeconds();

  watch.Restart();
  const ChEngine ch = ChEngine::Build(&graph);
  const double ch_build_s = watch.ElapsedSeconds();

  const int64_t v = graph.num_nodes();
  const int64_t e = graph.num_arcs();
  std::printf("city                : %ld nodes, %ld arcs "
              "(built %.2f s, lowered %.3f s)\n",
              v, e, build_city_s, lower_s);
  std::printf("ch preprocessing    : %.2f s, %ld shortcuts (%.2fx arcs)\n",
              ch_build_s, ch.num_shortcuts(),
              static_cast<double>(ch.num_shortcuts()) /
                  static_cast<double>(e));

  // Fixed random query set, shared by both sides.
  Rng rng(4242);
  std::vector<std::pair<int32_t, int32_t>> pairs;
  pairs.reserve(static_cast<size_t>(kQueryPairs));
  for (int64_t i = 0; i < kQueryPairs; ++i) {
    pairs.emplace_back(static_cast<int32_t>(rng.UniformInt(v)),
                       static_cast<int32_t>(rng.UniformInt(v)));
  }

  // 2. Point-to-point: Dijkstra vs CH on identical pairs.
  CsrDijkstra dijkstra(&graph);
  std::vector<Cost> dijkstra_costs(pairs.size(), kInfCost);
  const double dijkstra_s = BestOf2([&] {
    Stopwatch w;
    for (size_t i = 0; i < pairs.size(); ++i) {
      dijkstra_costs[i] = dijkstra.Distance(pairs[i].first, pairs[i].second);
    }
    return w.ElapsedSeconds();
  });
  auto ctx = ch.MakeContext();
  std::vector<Cost> ch_costs(pairs.size(), kInfCost);
  const double ch_s = BestOf2([&] {
    Stopwatch w;
    for (size_t i = 0; i < pairs.size(); ++i) {
      ch_costs[i] = ch.Distance(pairs[i].first, pairs[i].second, &ctx);
    }
    return w.ElapsedSeconds();
  });
  int64_t agree = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (ch_costs[i] == dijkstra_costs[i]) ++agree;
  }
  const double exactness =
      static_cast<double>(agree) / static_cast<double>(pairs.size());
  const double dijkstra_qps = static_cast<double>(kQueryPairs) / dijkstra_s;
  const double ch_qps = static_cast<double>(kQueryPairs) / ch_s;
  const double speedup = ch_qps / dijkstra_qps;
  std::printf("point-to-point      : dijkstra %.0f q/s | ch %.0f q/s "
              "(%.1fx), exact on %ld/%ld pairs\n",
              dijkstra_qps, ch_qps, speedup, agree, kQueryPairs);

  // 3. Many-to-many table vs pairwise CH queries.
  std::vector<int32_t> sources, targets;
  for (int64_t i = 0; i < kManyToManySide; ++i) {
    sources.push_back(static_cast<int32_t>(rng.UniformInt(v)));
    targets.push_back(static_cast<int32_t>(rng.UniformInt(v)));
  }
  std::vector<Cost> table;
  const double m2m_s = BestOf2([&] {
    Stopwatch w;
    ch.ManyToMany(sources, targets, &ctx, &table);
    return w.ElapsedSeconds();
  });
  const double pairwise_s = BestOf2([&] {
    Stopwatch w;
    for (const int32_t s : sources) {
      for (const int32_t t : targets) (void)ch.Distance(s, t, &ctx);
    }
    return w.ElapsedSeconds();
  });
  int64_t m2m_mismatch = 0;
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t j = 0; j < targets.size(); ++j) {
      if (table[i * targets.size() + j] !=
          ch.Distance(sources[i], targets[j], &ctx)) {
        ++m2m_mismatch;
      }
    }
  }
  const double m2m_speedup = pairwise_s / m2m_s;
  std::printf("many-to-many %ldx%ld : bucket %.1f ms | pairwise %.1f ms "
              "(%.1fx), %ld mismatches\n",
              kManyToManySide, kManyToManySide, m2m_s * 1e3, pairwise_s * 1e3,
              m2m_speedup, m2m_mismatch);

  // 4. Serialization round trip.
  const std::string artifact = "BENCH_graph_ch.bin";
  watch.Restart();
  const auto save = ch.Save(artifact);
  const double save_s = watch.ElapsedSeconds();
  watch.Restart();
  auto loaded = ChEngine::Load(artifact, &graph);
  const double load_s = watch.ElapsedSeconds();
  std::remove(artifact.c_str());
  if (!save.ok() || !loaded.ok()) {
    std::fprintf(stderr, "FAIL: CH serialization round trip failed\n");
    return 1;
  }
  std::printf("serialization       : save %.2f s, load %.2f s\n", save_s,
              load_s);

  std::FILE* json = std::fopen("BENCH_graph.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_graph.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"num_nodes\": %ld,\n"
               "  \"num_arcs\": %ld,\n"
               "  \"ch_build_seconds\": %.3f,\n"
               "  \"ch_shortcuts\": %ld,\n"
               "  \"dijkstra_queries_per_sec\": %.1f,\n"
               "  \"ch_queries_per_sec\": %.1f,\n"
               "  \"ch_speedup\": %.3f,\n"
               "  \"ch_exactness\": %.6f,\n"
               "  \"m2m_speedup_vs_pairwise\": %.3f,\n"
               "  \"serialize_save_seconds\": %.3f,\n"
               "  \"serialize_load_seconds\": %.3f\n"
               "}\n",
               v, e, ch_build_s, ch.num_shortcuts(), dijkstra_qps, ch_qps,
               speedup, exactness, m2m_speedup, save_s, load_s);
  std::fclose(json);
  std::printf("wrote BENCH_graph.json\n");

  // Acceptance gates.
  if (e < 100000) {
    std::fprintf(stderr, "FAIL: city has %ld arcs < 100k — not city scale\n",
                 e);
    return 1;
  }
  if (exactness != 1.0 || m2m_mismatch != 0) {
    std::fprintf(stderr,
                 "FAIL: CH not exact (p2p %.4f, m2m mismatches %ld)\n",
                 exactness, m2m_mismatch);
    return 1;
  }
  if (speedup < 10.0) {
    std::fprintf(stderr, "FAIL: CH speedup %.1fx < 10x over Dijkstra\n",
                 speedup);
    return 1;
  }
  return 0;
}
