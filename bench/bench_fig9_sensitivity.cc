// Reproduces Figure 9: parameter sensitivity — classification performance
// while sweeping (a) encoder depth L2, (b) embedding size d, (c) batch size.
// Paper shape: quality rises then saturates/dips with depth and width
// (overfitting); very large contrastive batches hurt slightly (hard
// negatives between near-identical trips).
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace start;

namespace {

core::StartConfig BenchStartConfig(int64_t d, int64_t layers) {
  core::StartConfig config;
  config.d = d;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = layers;
  config.encoder_heads = 4;
  config.max_len = 96;
  return config;
}

double F1For(const bench::CityWorld& world, const core::StartConfig& config,
             int64_t batch_size) {
  auto runner = bench::MakeStartRunner(config, world);
  auto pretrain = bench::DefaultStartPretrainConfig(
      std::max<int64_t>(4, bench::DefaultPretrainEpochs() / 2));
  pretrain.batch_size = batch_size;
  core::Pretrain(runner.start_model.get(), world.dataset->train(),
                 world.traffic.get(), pretrain);
  const auto result = eval::FinetuneClassification(
      runner.encoder(), world.dataset->train(), world.dataset->test(),
      bench::OccupancyLabel, 2, 1, bench::DefaultTaskConfig());
  return result.f1;
}

}  // namespace

int main() {
  std::printf("=== Figure 9: parameter sensitivity (classification F1, "
              "BJ-like) ===\n");
  const auto world = bench::MakeBjWorld();

  std::printf("\n-- (a) depth of encoder layer L2 --\n");
  common::TablePrinter depth({"L2", "F1"});
  for (const int64_t layers : {1, 2, 3, 4}) {
    depth.AddRow({std::to_string(layers),
                  common::TablePrinter::Num(
                      F1For(world, BenchStartConfig(32, layers), 16), 3)});
    std::fprintf(stderr, "[fig9] depth %ld done\n", layers);
  }
  depth.Print();

  std::printf("\n-- (b) embedding size d --\n");
  common::TablePrinter width({"d", "F1"});
  for (const int64_t d : {16, 32, 64}) {
    width.AddRow({std::to_string(d),
                  common::TablePrinter::Num(
                      F1For(world, BenchStartConfig(d, 2), 16), 3)});
    std::fprintf(stderr, "[fig9] width %ld done\n", d);
  }
  width.Print();

  std::printf("\n-- (c) batch size N_b --\n");
  common::TablePrinter batch({"N_b", "F1"});
  for (const int64_t b : {4, 8, 16, 32}) {
    batch.AddRow({std::to_string(b),
                  common::TablePrinter::Num(
                      F1For(world, BenchStartConfig(32, 2), b), 3)});
    std::fprintf(stderr, "[fig9] batch %ld done\n", b);
  }
  batch.Print();

  std::printf("\npaper-shape check: rise-then-saturate/dip over depth and "
              "width; moderate batch sizes best.\n");
  return 0;
}
