// Reproduces Figure 7: ablation study. Variants (Sec. IV-F):
//   w/o TPE-GAT, w/ Node2vec, w/o TransProb,
//   w/o Time Emb, w/o Time Interval, w/ Hop, w/o Log, w/o Adaptive,
//   w/o Mask, w/o Contra, full START.
// Metrics per the paper's panels: MAPE (ETA), F1 / Macro-F1 (classification),
// MR (most-similar search).
// Paper shape: full START best; removing TPE-GAT or Time Emb hurts most;
// w/ Node2vec < w/o TransProb < full.
#include <cstdio>
#include <filesystem>

#include "baselines/node2vec.h"
#include "bench_common.h"
#include "common/table.h"
#include "sim/search.h"

using namespace start;

namespace {

core::StartConfig BaseConfig() {
  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  return config;
}

struct Variant {
  std::string name;
  core::StartConfig config;
  bool use_mask_task = true;
  bool use_contrastive_task = true;
};

std::vector<Variant> MakeVariants(const bench::CityWorld& world) {
  std::vector<Variant> variants;
  {
    Variant v{"w/o TPE-GAT", BaseConfig()};
    v.config.use_tpe_gat = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/ Node2vec", BaseConfig()};
    v.config.use_tpe_gat = false;
    baselines::Node2VecConfig n2v;
    n2v.dim = v.config.d;
    n2v.epochs = 2;
    v.config.road_embedding_init = baselines::TrainNode2Vec(*world.net, n2v);
    variants.push_back(v);
  }
  {
    Variant v{"w/o TransProb", BaseConfig()};
    v.config.use_transfer_prob = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Time Emb", BaseConfig()};
    v.config.use_time_embedding = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Time Interval", BaseConfig()};
    v.config.use_time_interval = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/ Hop", BaseConfig()};
    v.config.interval_use_hops = true;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Log", BaseConfig()};
    v.config.interval_use_log = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Adaptive", BaseConfig()};
    v.config.interval_adaptive = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Mask", BaseConfig()};
    v.use_mask_task = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Contra", BaseConfig()};
    v.use_contrastive_task = false;
    variants.push_back(v);
  }
  variants.push_back({"START", BaseConfig()});
  return variants;
}

void RunWorld(const bench::CityWorld& world, bool binary_task) {
  std::printf("\n--- %s ---\n", world.name.c_str());
  common::TablePrinter table({"variant", "MAPE(%)v",
                              binary_task ? "F1^" : "MaF1^", "MRv"});
  const auto task = bench::DefaultTaskConfig();
  std::filesystem::create_directories("bench_cache");
  for (const auto& variant : MakeVariants(world)) {
    auto pretrain_config = bench::DefaultStartPretrainConfig(
        std::max<int64_t>(6, bench::DefaultPretrainEpochs() * 3 / 5));
    pretrain_config.use_mask_task = variant.use_mask_task;
    pretrain_config.use_contrastive_task = variant.use_contrastive_task;
    // Pre-train each variant once; the three tasks reload the checkpoint so
    // every fine-tune starts from identical weights.
    std::string tag = variant.name;
    for (auto& c : tag) {
      if (c == ' ' || c == '/') c = '_';
    }
    const std::string checkpoint =
        "bench_cache/fig7_" + world.name + "_" + tag + ".sttn";
    auto pretrain = [&] {
      auto runner = bench::MakeStartRunner(variant.config, world);
      if (!std::filesystem::exists(checkpoint) ||
          !runner.start_model->Load(checkpoint).ok()) {
        core::Pretrain(runner.start_model.get(), world.dataset->train(),
                       world.traffic.get(), pretrain_config);
        (void)runner.start_model->Save(checkpoint);
      }
      return runner;
    };
    double mape, cls, mr;
    {
      auto runner = pretrain();
      mape = eval::FinetuneEta(runner.encoder(), world.dataset->train(),
                               world.dataset->test(), task)
                 .metrics.mape;
      // Classification re-uses the same pre-trained weights: reload by
      // re-running the fine-tune from a fresh pretrain (weights mutated).
      auto runner2 = pretrain();
      if (binary_task) {
        cls = eval::FinetuneClassification(
                  runner2.encoder(), world.dataset->train(),
                  world.dataset->test(), bench::OccupancyLabel, 2, 1, task)
                  .f1;
      } else {
        cls = eval::FinetuneClassification(
                  runner2.encoder(), world.dataset->train(),
                  world.dataset->test(), bench::DriverLabel,
                  world.num_drivers, 5, task)
                  .macro_f1;
      }
      auto runner3 = pretrain();
      const auto sim_data = bench::MakeSimilarityData(world, 30, 180);
      const auto q = runner3.encoder()->EmbedAll(sim_data.queries,
                                                 eval::EncodeMode::kFull);
      const auto db = runner3.encoder()->EmbedAll(sim_data.database,
                                                  eval::EncodeMode::kFull);
      mr = sim::MostSimilarSearchEmbeddings(
               q, static_cast<int64_t>(sim_data.queries.size()), db,
               static_cast<int64_t>(sim_data.database.size()),
               runner3.encoder()->dim(), sim_data.gt_index)
               .mean_rank;
    }
    table.AddRow({variant.name, common::TablePrinter::Num(mape, 2),
                  common::TablePrinter::Num(cls, 3),
                  common::TablePrinter::Num(mr, 2)});
    std::fprintf(stderr, "[fig7] %s/%s done\n", world.name.c_str(),
                 variant.name.c_str());
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("=== Figure 7: ablation study ===\n");
  {
    const auto bj = bench::MakeBjWorld();
    RunWorld(bj, /*binary_task=*/true);
  }
  {
    const auto porto = bench::MakePortoWorld();
    RunWorld(porto, /*binary_task=*/false);
  }
  std::printf("\npaper-shape check: full START best or tied-best per column; "
              "w/o TPE-GAT and w/o Time Emb degrade most; w/ Node2vec worse "
              "than w/o TransProb.\n");
  return 0;
}
