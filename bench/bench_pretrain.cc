// Pre-training benchmark: measures what the data-parallel sharded engine
// (core/parallel_trainer.h) buys over the legacy single-replica step loop,
// verifies its bitwise-determinism contract as a hard gate, and emits
// BENCH_pretrain.json for CI tracking.
//
// Three measurements:
//  1. Optimizer-step throughput of the legacy loop (stage-1 + two encodes +
//     central losses + backward + clip + AdamW on one replica) — the
//     reference the engine must not regress when K = 1.
//  2. The same work through the sharded engine at K = 1 / 2 / 4 replicas
//     with a fixed grain decomposition: the K = 1 column prices the
//     engine's bookkeeping (batch slicing, boundary gather/scatter, tree
//     reduce), the K = 4 column the actual data-parallel scaling.
//  3. The determinism gate: K ∈ {2, 3, 5} must produce bitwise-identical
//     parameters and loss values to K = 1 — the contract that makes shard
//     count a deployment knob instead of a science decision.
//
// OpenMP is pinned to 1 thread for the whole run: the engine's worker
// threads are the parallelism under test, and nested OpenMP teams inside
// them would only add scheduling noise.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target bench_pretrain
//   ./build/bench_pretrain
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/parallel_trainer.h"
#include "core/start_model.h"
#include "data/dataset.h"
#include "data/loader.h"
#include "nn/losses.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "traj/trip_generator.h"

namespace {

using start::common::Rng;
using start::common::Stopwatch;
using start::core::ParallelTrainer;
using start::core::ShardConfig;
using start::core::StartModel;

constexpr uint64_t kSeed = 29;
constexpr int64_t kBatchSize = 32;
constexpr int64_t kGrain = 4;  // 8 grains per batch: K = 4 gets 2 each
constexpr double kLr = 1e-3;
constexpr double kLambda = 0.6;
constexpr float kTau = 0.05f;
constexpr double kGradClip = 5.0;

struct World {
  std::unique_ptr<start::roadnet::RoadNetwork> net;
  std::unique_ptr<start::traj::TrafficModel> traffic;
  std::vector<start::traj::Trajectory> corpus;
  std::unique_ptr<start::roadnet::TransferProbability> transfer;
  std::vector<start::data::TrainingBatch> batches;
};

World BuildWorld() {
  World w;
  w.net = std::make_unique<start::roadnet::RoadNetwork>(
      start::roadnet::BuildSyntheticCity(
          {.grid_width = 8, .grid_height = 8}));
  w.traffic = std::make_unique<start::traj::TrafficModel>(
      w.net.get(), start::traj::TrafficModel::Config{});
  start::traj::TripGenerator::Config config;
  config.num_drivers = 10;
  config.num_days = 8;
  config.trips_per_driver_day = 4.0;
  config.seed = 17;
  start::traj::TripGenerator gen(w.traffic.get(), config);
  start::data::DatasetConfig ds;
  ds.min_length = 6;
  ds.min_user_trajectories = 2;
  w.corpus = start::data::TrajDataset::FromCorpus(*w.net, gen.Generate(), ds)
                 .All();

  // Pre-assemble every step's batch once: the bench times the TRAINING
  // step, not the (separately benchmarked) data pipeline.
  start::data::PlanConfig plan_config;
  plan_config.batch_size = kBatchSize;
  plan_config.epochs = 4;
  plan_config.seed = kSeed;
  const auto plan = start::data::MakeShuffledPlan(
      start::data::Lengths(w.corpus), plan_config);
  const auto builder = start::data::MakePretrainBuilder(
      &w.corpus, w.traffic.get(), {});
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    Rng rng(start::data::BatchLoader::StepSeed(kSeed,
                                               static_cast<int64_t>(s)));
    start::data::TrainingBatch tb;
    tb.step = static_cast<int64_t>(s);
    builder(plan.steps[s], &rng, &tb);
    w.batches.push_back(std::move(tb));
  }
  return w;
}

start::core::StartConfig ModelConfig() {
  start::core::StartConfig config;
  config.d = 32;
  config.gat_layers = 2;
  config.gat_heads = {4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  return config;
}

std::unique_ptr<StartModel> MakeModel(const World& w) {
  Rng rng(kSeed);
  return std::make_unique<StartModel>(ModelConfig(), w.net.get(),
                                      w.transfer.get(), &rng);
}

/// Faithful reimplementation of the legacy single-replica optimizer step
/// (core/pretrain.cc's non-sharded loop): stage 1 shared across both
/// encodes, combined loss, backward, clip, fused AdamW.
double RunLegacy(const World& w, int64_t steps, double* sink) {
  auto model = MakeModel(w);
  model->SetTraining(true);
  Rng dropout_rng(kSeed);
  model->SetDropoutRng(&dropout_rng);
  start::nn::AdamW opt(model->Parameters(), kLr);
  Stopwatch timer;
  for (int64_t s = 0; s < steps; ++s) {
    const auto& tb = w.batches[static_cast<size_t>(s) % w.batches.size()];
    dropout_rng.Seed(start::data::BatchLoader::StepSeed(kSeed ^ 0xD120ULL, s));
    const start::tensor::Tensor road_reps = model->ComputeRoadReps();
    start::tensor::Tensor loss;
    if (tb.has_masked && !tb.mask_positions.empty()) {
      const auto out = model->Encode(tb.masked, road_reps);
      const auto logits =
          model->MaskedLogits(out, tb.mask_positions, tb.masked.max_len);
      loss = start::tensor::Scale(
          start::tensor::CrossEntropyWithLogits(logits, tb.mask_targets),
          static_cast<float>(kLambda));
    }
    if (tb.has_contrastive) {
      const auto out = model->Encode(tb.contrastive, road_reps);
      const auto con = start::tensor::Scale(
          start::nn::NtXentLoss(out.cls, kTau),
          static_cast<float>(1.0 - kLambda));
      loss = loss.defined() ? start::tensor::Add(loss, con) : con;
    }
    opt.ZeroGrad();
    loss.Backward();
    start::nn::ClipGradNorm(model->Parameters(), kGradClip);
    opt.Step();
    *sink += loss.item();
  }
  const double elapsed = timer.ElapsedSeconds();
  model->SetDropoutRng(nullptr);
  return elapsed;
}

/// The sharded engine at `num_shards` replicas over the fixed kGrain
/// decomposition. Returns elapsed seconds; fills `model_out` (for the
/// bitwise gate) when non-null.
double RunSharded(const World& w, int num_shards, int64_t steps, double* sink,
                  std::unique_ptr<StartModel>* model_out = nullptr,
                  std::vector<double>* losses_out = nullptr) {
  auto model = MakeModel(w);
  start::nn::AdamW opt(model->Parameters(), kLr);
  ShardConfig config;
  config.num_shards = num_shards;
  config.shard_grain = kGrain;
  config.lambda = kLambda;
  config.tau = kTau;
  config.grad_clip = kGradClip;
  config.seed = kSeed;
  ParallelTrainer trainer(model.get(), config);
  Stopwatch timer;
  for (int64_t s = 0; s < steps; ++s) {
    const auto& tb = w.batches[static_cast<size_t>(s) % w.batches.size()];
    const auto stats = trainer.Step({&tb}, s, &opt, kLr);
    *sink += stats.loss;
    if (losses_out != nullptr) losses_out->push_back(stats.loss);
  }
  const double elapsed = timer.ElapsedSeconds();
  if (model_out != nullptr) *model_out = std::move(model);
  return elapsed;
}

bool ParamsBitwiseEqual(const StartModel& a, const StartModel& b) {
  const auto named_a = a.NamedParameters();
  const auto named_b = b.NamedParameters();
  if (named_a.size() != named_b.size()) return false;
  for (size_t i = 0; i < named_a.size(); ++i) {
    const auto& ta = named_a[i].second;
    const auto& tb = named_b[i].second;
    if (ta.numel() != tb.numel()) return false;
    if (std::memcmp(ta.data(), tb.data(),
                    static_cast<size_t>(ta.numel()) * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

double BestOf2(const std::function<double()>& run) {
  const double first = run();
  return std::min(first, run());
}

}  // namespace

int main() {
#ifdef _OPENMP
  omp_set_num_threads(1);  // the shard workers ARE the parallelism measured
#endif
  World w = BuildWorld();
  {
    std::vector<std::vector<int64_t>> seqs;
    for (const auto& t : w.corpus) seqs.push_back(t.roads);
    w.transfer = std::make_unique<start::roadnet::TransferProbability>(
        start::roadnet::TransferProbability::FromTrajectories(*w.net, seqs));
  }
  std::printf("corpus: %zu trajectories, %zu prebuilt batches, |V| = %ld\n",
              w.corpus.size(), w.batches.size(), w.net->num_segments());

  double sink = 0.0;
  // Warm the allocator pools and code paths once before timing.
  RunSharded(w, 1, 2, &sink);

  // 1-2. Throughput: legacy loop vs engine at K = 1 / 2 / 4.
  const int64_t kSteps = 10;
  const double legacy_s =
      BestOf2([&] { return RunLegacy(w, kSteps, &sink); });
  const double shard1_s =
      BestOf2([&] { return RunSharded(w, 1, kSteps, &sink); });
  const double shard2_s =
      BestOf2([&] { return RunSharded(w, 2, kSteps, &sink); });
  const double shard4_s =
      BestOf2([&] { return RunSharded(w, 4, kSteps, &sink); });
  const double sps_legacy = static_cast<double>(kSteps) / legacy_s;
  const double sps_1 = static_cast<double>(kSteps) / shard1_s;
  const double sps_2 = static_cast<double>(kSteps) / shard2_s;
  const double sps_4 = static_cast<double>(kSteps) / shard4_s;
  const double overhead_ratio = sps_1 / sps_legacy;
  const double scaling_4 = sps_4 / sps_1;

  // 3. Determinism gate: K ∈ {2, 3, 5} bitwise vs K = 1 over 3 steps.
  bool bitwise_ok = true;
  {
    std::unique_ptr<StartModel> reference;
    std::vector<double> reference_losses;
    RunSharded(w, 1, 3, &sink, &reference, &reference_losses);
    for (const int k : {2, 3, 5}) {
      std::unique_ptr<StartModel> model;
      std::vector<double> losses;
      RunSharded(w, k, 3, &sink, &model, &losses);
      if (!ParamsBitwiseEqual(*reference, *model) ||
          losses != reference_losses) {
        std::fprintf(stderr,
                     "FAIL: K=%d diverged bitwise from K=1 (params %s, "
                     "losses %s)\n",
                     k, ParamsBitwiseEqual(*reference, *model) ? "ok" : "DIFF",
                     losses == reference_losses ? "ok" : "DIFF");
        bitwise_ok = false;
      }
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host                   : %u hardware threads\n", cores);
  std::printf("optimizer steps/sec    : legacy %.2f | engine K=1 %.2f "
              "(%.2fx of legacy) | K=2 %.2f | K=4 %.2f (%.2fx over K=1)\n",
              sps_legacy, sps_1, overhead_ratio, sps_2, sps_4, scaling_4);
  std::printf("bitwise K in {2,3,5}   : %s\n",
              bitwise_ok ? "identical to K=1" : "DIVERGED");

  std::FILE* json = std::fopen("BENCH_pretrain.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pretrain.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"hardware_threads\": %u,\n"
               "  \"batch_size\": %ld,\n"
               "  \"shard_grain\": %ld,\n"
               "  \"steps_per_sec\": {\"legacy\": %.3f, \"shards_1\": %.3f, "
               "\"shards_2\": %.3f, \"shards_4\": %.3f},\n"
               "  \"overhead_1shard_vs_legacy\": %.3f,\n"
               "  \"scaling_4shards_vs_1\": %.3f,\n"
               "  \"bitwise_identical\": %.1f,\n"
               "  \"checksum\": %.6f\n"
               "}\n",
               cores, kBatchSize, kGrain, sps_legacy, sps_1, sps_2, sps_4,
               overhead_ratio, scaling_4, bitwise_ok ? 1.0 : 0.0, sink);
  std::fclose(json);
  std::printf("wrote BENCH_pretrain.json\n");

  // Acceptance gates.
  //
  // 1. Always: the bitwise contract. This is the whole point of the fixed
  //    decomposition + tree all-reduce; any host can express it.
  if (!bitwise_ok) return 1;
  // 2. Always: the engine's bookkeeping (slicing, boundary gather/scatter,
  //    per-grain slots, tree reduce) must not eat the single-replica step
  //    rate. Both sides run on this host, so the ratio is host-independent.
  if (overhead_ratio < 0.75) {
    std::fprintf(stderr,
                 "FAIL: engine K=1 runs at %.2fx of the legacy loop "
                 "(floor 0.75)\n",
                 overhead_ratio);
    return 1;
  }
  // 3. On >= 4 cores: K = 4 must deliver >= 1.5x the K = 1 step rate.
  //    Data parallelism needs hardware parallelism, so smaller hosts report
  //    instead of silently passing (CI enforces on multi-core runners).
  if (cores >= 4) {
    if (scaling_4 < 1.5) {
      std::fprintf(stderr, "FAIL: 4-shard scaling %.2fx < 1.5x on %u cores\n",
                   scaling_4, cores);
      return 1;
    }
  } else if (scaling_4 < 1.5) {
    std::printf("NOTE: %u hardware thread(s) — the >= 1.5x 4-shard gate "
                "cannot be expressed here (measured %.2fx; CI enforces it "
                "on >= 4-core runners)\n",
                cores, scaling_4);
  }
  return 0;
}
