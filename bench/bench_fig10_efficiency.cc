// Reproduces Figure 10: efficiency and scalability.
//   (a) representation-generation (inference) time vs dataset size,
//   (b) average most-similar-search query time: embedding models vs the
//       classical measures DTW / LCSS / Fréchet / EDR,
//   (c) search Mean Rank of the same methods.
// Paper shape: self-attention models embed faster than RNN models; deep
// models answer similarity queries orders of magnitude faster than the
// O(L^2) classical measures while matching or beating their MR; both times
// scale linearly with data size.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "sim/search.h"
#include "sim/similarity.h"

using namespace start;

namespace {

struct Fig10State {
  bench::CityWorld world;
  std::vector<std::unique_ptr<bench::ModelRunner>> models;
  bench::SimilarityBenchData sim_data;

  static Fig10State& Get() {
    static Fig10State* state = [] {
      auto* s = new Fig10State();
      s->world = bench::MakePortoWorld();
      for (const auto kind :
           {bench::ModelKind::kTraj2Vec, bench::ModelKind::kTrembr,
            bench::ModelKind::kTransformer, bench::ModelKind::kBert,
            bench::ModelKind::kToast, bench::ModelKind::kStart}) {
        auto runner = std::make_unique<bench::ModelRunner>(
            bench::MakeRunner(kind, s->world));
        // Reuse Table II checkpoints when present; otherwise do a short
        // pretrain (timing does not depend on convergence).
        bench::PretrainRunner(runner.get(), s->world, 2, "t2");
        s->models.push_back(std::move(runner));
      }
      s->sim_data = bench::MakeSimilarityData(s->world, 20, 120);
      return s;
    }();
    return *state;
  }

  std::vector<traj::Trajectory> Sample(int64_t n) const {
    std::vector<traj::Trajectory> out;
    const auto all = world.dataset->All();
    for (int64_t i = 0; i < n; ++i) {
      out.push_back(all[static_cast<size_t>(i) % all.size()]);
    }
    return out;
  }
};

/// Fig 10(a): embedding-generation throughput.
void BM_RepresentationGeneration(benchmark::State& state) {
  auto& fig = Fig10State::Get();
  auto& runner = *fig.models[static_cast<size_t>(state.range(0))];
  const auto sample = fig.Sample(state.range(1));
  for (auto _ : state) {
    auto emb = runner.encoder()->EmbedAll(sample, eval::EncodeMode::kFull);
    benchmark::DoNotOptimize(emb.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
  state.SetLabel(runner.name + "/n=" + std::to_string(state.range(1)));
}

/// Fig 10(b), deep models: embed queries + database once, then query.
void BM_SimilaritySearchEmbedding(benchmark::State& state) {
  auto& fig = Fig10State::Get();
  auto& runner = *fig.models[static_cast<size_t>(state.range(0))];
  const auto& data = fig.sim_data;
  const int64_t d = runner.encoder()->dim();
  const auto q =
      runner.encoder()->EmbedAll(data.queries, eval::EncodeMode::kFull);
  const auto db =
      runner.encoder()->EmbedAll(data.database, eval::EncodeMode::kFull);
  for (auto _ : state) {
    const auto metrics = sim::MostSimilarSearchEmbeddings(
        q, static_cast<int64_t>(data.queries.size()), db,
        static_cast<int64_t>(data.database.size()), d, data.gt_index);
    benchmark::DoNotOptimize(metrics.mean_rank);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.queries.size()));
  state.SetLabel(runner.name);
}

/// Fig 10(b), classical measures: O(L^2) pairwise dynamic programming.
void BM_SimilaritySearchClassic(benchmark::State& state) {
  auto& fig = Fig10State::Get();
  const auto& data = fig.sim_data;
  std::vector<sim::PointSeq> q_pts, db_pts;
  for (const auto& t : data.queries) {
    q_pts.push_back(sim::ToPointSequence(*fig.world.net, t));
  }
  for (const auto& t : data.database) {
    db_pts.push_back(sim::ToPointSequence(*fig.world.net, t));
  }
  const int which = static_cast<int>(state.range(0));
  auto dist = [&](int64_t a, int64_t b) {
    switch (which) {
      case 0:
        return sim::DtwDistance(q_pts[a], db_pts[b]);
      case 1:
        return sim::LcssDistance(q_pts[a], db_pts[b], 150.0);
      case 2:
        return sim::FrechetDistance(q_pts[a], db_pts[b]);
      default:
        return sim::EdrDistance(q_pts[a], db_pts[b], 150.0);
    }
  };
  for (auto _ : state) {
    const auto metrics = sim::MostSimilarSearch(
        static_cast<int64_t>(data.queries.size()),
        static_cast<int64_t>(data.database.size()), dist, data.gt_index);
    benchmark::DoNotOptimize(metrics.mean_rank);
  }
  static const char* names[4] = {"DTW", "LCSS", "Frechet", "EDR"};
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.queries.size()));
  state.SetLabel(names[which]);
}

/// Fig 10(c): Mean Rank comparison table (printed after the timings).
void PrintMeanRanks() {
  auto& fig = Fig10State::Get();
  const auto& data = fig.sim_data;
  common::TablePrinter table({"method", "MRv", "HR@1^"});
  std::vector<sim::PointSeq> q_pts, db_pts;
  for (const auto& t : data.queries) {
    q_pts.push_back(sim::ToPointSequence(*fig.world.net, t));
  }
  for (const auto& t : data.database) {
    db_pts.push_back(sim::ToPointSequence(*fig.world.net, t));
  }
  const int64_t nq = static_cast<int64_t>(data.queries.size());
  const int64_t ndb = static_cast<int64_t>(data.database.size());
  auto add_classic = [&](const char* name, auto fn) {
    const auto metrics = sim::MostSimilarSearch(nq, ndb, fn, data.gt_index);
    table.AddRow({name, common::TablePrinter::Num(metrics.mean_rank, 2),
                  common::TablePrinter::Num(metrics.hr_at_1, 3)});
  };
  add_classic("DTW", [&](int64_t a, int64_t b) {
    return sim::DtwDistance(q_pts[a], db_pts[b]);
  });
  add_classic("LCSS", [&](int64_t a, int64_t b) {
    return sim::LcssDistance(q_pts[a], db_pts[b], 150.0);
  });
  add_classic("Frechet", [&](int64_t a, int64_t b) {
    return sim::FrechetDistance(q_pts[a], db_pts[b]);
  });
  add_classic("EDR", [&](int64_t a, int64_t b) {
    return sim::EdrDistance(q_pts[a], db_pts[b], 150.0);
  });
  for (auto& runner : fig.models) {
    const int64_t d = runner->encoder()->dim();
    const auto q =
        runner->encoder()->EmbedAll(data.queries, eval::EncodeMode::kFull);
    const auto db =
        runner->encoder()->EmbedAll(data.database, eval::EncodeMode::kFull);
    const auto metrics = sim::MostSimilarSearchEmbeddings(q, nq, db, ndb, d,
                                                          data.gt_index);
    table.AddRow({runner->name,
                  common::TablePrinter::Num(metrics.mean_rank, 2),
                  common::TablePrinter::Num(metrics.hr_at_1, 3)});
  }
  std::printf("\n-- Fig 10(c): similarity-search quality --\n");
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 10: efficiency and scalability ===\n");
  auto& fig = Fig10State::Get();
  for (size_t m = 0; m < fig.models.size(); ++m) {
    for (const int64_t n : {100, 200, 400}) {
      benchmark::RegisterBenchmark("Fig10a_RepresentationGeneration",
                                   &BM_RepresentationGeneration)
          ->Args({static_cast<int64_t>(m), n})
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (size_t m = 0; m < fig.models.size(); ++m) {
    benchmark::RegisterBenchmark("Fig10b_Search_Embedding",
                                 &BM_SimilaritySearchEmbedding)
        ->Arg(static_cast<int64_t>(m))
        ->Unit(benchmark::kMillisecond);
  }
  for (int which = 0; which < 4; ++which) {
    benchmark::RegisterBenchmark("Fig10b_Search_Classic",
                                 &BM_SimilaritySearchClassic)
        ->Arg(which)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintMeanRanks();
  std::printf("\npaper-shape check: (a) transformer-family embeds faster "
              "than the GRU seq2seq models and time grows ~linearly with n; "
              "(b) embedding search is orders of magnitude faster than "
              "DTW/LCSS/Frechet/EDR; (c) START's MR competitive with or "
              "better than the classical measures.\n");
  return 0;
}
