// Reproduces Table II: overall performance of the nine models on the three
// downstream tasks (travel-time estimation, trajectory classification,
// most-similar trajectory search) over the BJ-like and Porto-like datasets.
//
// Paper shape to check: START best on every metric; Trembr the best baseline
// (the only time-aware one); two-stage models (PIM/Toast) and plain
// sequence models (Transformer/BERT, PIM-TF) trail, especially on search.
// Absolute values differ from the paper (synthetic data, ~500x smaller).
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "sim/search.h"

using namespace start;

namespace {

struct Row {
  double mae = 0, mape = 0, rmse = 0;
  double cls1 = 0, cls2 = 0, cls3 = 0;  // ACC/F1/AUC or Micro/Macro/Recall@5
  double mr = 0, hr1 = 0, hr5 = 0;
};

Row EvaluateModel(bench::ModelKind kind, const bench::CityWorld& world,
                  bool binary_task) {
  Row row;
  const auto task_config = bench::DefaultTaskConfig();
  // Each task starts from the same pre-trained weights: the runner is
  // rebuilt per task and PretrainRunner restores the cached checkpoint.
  {
    auto runner = bench::MakeRunner(kind, world);
    bench::PretrainRunner(&runner, world, bench::Table2PretrainEpochs(), "t2");
    const auto eta = eval::FinetuneEta(runner.encoder(),
                                       world.dataset->train(),
                                       world.dataset->test(), task_config);
    row.mae = eta.metrics.mae;
    row.mape = eta.metrics.mape;
    row.rmse = eta.metrics.rmse;
  }
  {
    auto runner = bench::MakeRunner(kind, world);
    bench::PretrainRunner(&runner, world, bench::Table2PretrainEpochs(), "t2");
    if (binary_task) {
      const auto cls = eval::FinetuneClassification(
          runner.encoder(), world.dataset->train(), world.dataset->test(),
          bench::OccupancyLabel, 2, 1, task_config);
      row.cls1 = cls.accuracy;
      row.cls2 = cls.f1;
      row.cls3 = cls.auc;
    } else {
      const auto cls = eval::FinetuneClassification(
          runner.encoder(), world.dataset->train(), world.dataset->test(),
          bench::DriverLabel, world.num_drivers, 5, task_config);
      row.cls1 = cls.micro_f1;
      row.cls2 = cls.macro_f1;
      row.cls3 = cls.recall_at_k;
    }
  }
  {
    auto runner = bench::MakeRunner(kind, world);
    bench::PretrainRunner(&runner, world, bench::Table2PretrainEpochs(), "t2");
    const auto sim_data = bench::MakeSimilarityData(
        world, /*num_queries=*/40, /*num_negatives=*/240);
    const auto q = runner.encoder()->EmbedAll(sim_data.queries,
                                              eval::EncodeMode::kFull);
    const auto db = runner.encoder()->EmbedAll(sim_data.database,
                                               eval::EncodeMode::kFull);
    const auto metrics = sim::MostSimilarSearchEmbeddings(
        q, static_cast<int64_t>(sim_data.queries.size()), db,
        static_cast<int64_t>(sim_data.database.size()),
        runner.encoder()->dim(), sim_data.gt_index);
    row.mr = metrics.mean_rank;
    row.hr1 = metrics.hr_at_1;
    row.hr5 = metrics.hr_at_5;
  }
  return row;
}

void RunWorld(const bench::CityWorld& world, bool binary_task) {
  using common::TablePrinter;
  std::printf("\n--- %s ---\n", world.name.c_str());
  const char* c1 = binary_task ? "ACC^" : "MiF1^";
  const char* c2 = binary_task ? "F1^" : "MaF1^";
  const char* c3 = binary_task ? "AUC^" : "Rec@5^";
  TablePrinter table({"Model", "MAEv", "MAPE(%)v", "RMSEv", c1, c2, c3,
                      "MRv", "HR@1^", "HR@5^"});
  std::map<std::string, Row> rows;
  for (const auto kind : bench::AllModels()) {
    common::Stopwatch watch;
    const Row row = EvaluateModel(kind, world, binary_task);
    rows[bench::ModelName(kind)] = row;
    table.AddRow({bench::ModelName(kind), TablePrinter::Num(row.mae, 3),
                  TablePrinter::Num(row.mape, 2),
                  TablePrinter::Num(row.rmse, 3),
                  TablePrinter::Num(row.cls1, 3),
                  TablePrinter::Num(row.cls2, 3),
                  TablePrinter::Num(row.cls3, 3),
                  TablePrinter::Num(row.mr, 2),
                  TablePrinter::Num(row.hr1, 3),
                  TablePrinter::Num(row.hr5, 3)});
    std::fprintf(stderr, "[table2] %s/%s done in %.1fs\n",
                 world.name.c_str(), bench::ModelName(kind).c_str(),
                 watch.ElapsedSeconds());
  }
  table.Print();
  // Improvement of START over the best baseline, as the paper reports.
  const Row& start_row = rows["START"];
  Row best;
  best.mae = best.mape = best.rmse = 1e18;
  best.mr = 1e18;
  for (const auto& [name, row] : rows) {
    if (name == "START") continue;
    best.mae = std::min(best.mae, row.mae);
    best.mape = std::min(best.mape, row.mape);
    best.rmse = std::min(best.rmse, row.rmse);
    best.cls1 = std::max(best.cls1, row.cls1);
    best.cls2 = std::max(best.cls2, row.cls2);
    best.cls3 = std::max(best.cls3, row.cls3);
    best.mr = std::min(best.mr, row.mr);
    best.hr1 = std::max(best.hr1, row.hr1);
    best.hr5 = std::max(best.hr5, row.hr5);
  }
  auto improve_down = [](double ours, double theirs) {
    return 100.0 * (theirs - ours) / theirs;
  };
  auto improve_up = [](double ours, double theirs) {
    return theirs > 0 ? 100.0 * (ours - theirs) / theirs : 0.0;
  };
  std::printf("Improve vs best baseline: MAE %+.1f%%, MAPE %+.1f%%, RMSE "
              "%+.1f%%, %s %+.1f%%, %s %+.1f%%, %s %+.1f%%, MR %+.1f%%, "
              "HR@1 %+.1f%%, HR@5 %+.1f%%\n",
              improve_down(start_row.mae, best.mae),
              improve_down(start_row.mape, best.mape),
              improve_down(start_row.rmse, best.rmse), c1,
              improve_up(start_row.cls1, best.cls1), c2,
              improve_up(start_row.cls2, best.cls2), c3,
              improve_up(start_row.cls3, best.cls3),
              improve_down(start_row.mr, best.mr),
              improve_up(start_row.hr1, best.hr1),
              improve_up(start_row.hr5, best.hr5));
}

}  // namespace

int main() {
  std::printf("=== Table II: overall performance on three downstream tasks "
              "===\n");
  std::printf("metric suffix: v = lower is better, ^ = higher is better\n");
  {
    const auto bj = bench::MakeBjWorld();
    RunWorld(bj, /*binary_task=*/true);
  }
  {
    const auto porto = bench::MakePortoWorld();
    RunWorld(porto, /*binary_task=*/false);
  }
  std::printf("\npaper-shape check: START leads most metrics (notably MR and "
              "MAPE); Trembr is the strongest baseline; PIM-TF is the "
              "weakest.\n");
  return 0;
}
