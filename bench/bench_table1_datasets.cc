// Reproduces Table I: statistics of the two datasets after preprocessing
// (loop removal, length bounds [6, 128-ish], >= 20 trajectories per user,
// chronological splits). Absolute counts are scaled down ~500x from the
// paper (1,018,312 / 695,085 trajectories); the structure of the table —
// two heterogeneous cities, train/eval/test chronological splits — is what
// the harness reproduces.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "traj/stats.h"

using namespace start;

namespace {

void Describe(const bench::CityWorld& world, common::TablePrinter* table) {
  const auto all = world.dataset->All();
  const auto stats = traj::ComputeStats(*world.net, all);
  table->AddRow({
      world.name,
      std::to_string(stats.num_trajectories),
      std::to_string(stats.num_users),
      std::to_string(world.net->num_segments()),
      std::to_string(stats.num_covered_roads),
      std::to_string(world.dataset->train().size()) + "/" +
          std::to_string(world.dataset->val().size()) + "/" +
          std::to_string(world.dataset->test().size()),
      common::TablePrinter::Num(stats.mean_length, 1),
      common::TablePrinter::Num(stats.mean_travel_time_s / 60.0, 1),
  });
}

}  // namespace

int main() {
  std::printf("=== Table I: dataset statistics after preprocessing ===\n");
  std::printf("(synthetic substitutes; see DESIGN.md for the scale map)\n\n");
  common::TablePrinter table({"Dataset", "#Trajectory", "#Usr",
                              "#Road Segment", "#Covered",
                              "train/eval/test", "mean hops",
                              "mean minutes"});
  const auto bj = bench::MakeBjWorld();
  Describe(bj, &table);
  const auto porto = bench::MakePortoWorld();
  Describe(porto, &table);
  table.Print();
  std::printf("\npaper-shape check: two heterogeneous road networks; BJ "
              "denser than Porto; every trajectory within length bounds; "
              "chronological train/eval/test split.\n");
  return 0;
}
