// Reproduces Figure 6: downstream performance as the training-set size
// varies, with and without self-supervised pre-training.
// Paper shape: both improve with more data; pre-training dominates at every
// size, with the largest relative gain at small sizes.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace start;

namespace {

core::StartConfig BenchStartConfig() {
  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  return config;
}

void RunWorld(const bench::CityWorld& world, bool binary_task) {
  const auto& full_train = world.dataset->train();
  const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0};
  common::TablePrinter eta_table({"train size", "Pre-train MAPE(%)",
                                  "No Pre-train MAPE(%)"});
  common::TablePrinter cls_table({"train size",
                                  binary_task ? "Pre-train F1"
                                              : "Pre-train Macro-F1",
                                  binary_task ? "No Pre-train F1"
                                              : "No Pre-train Macro-F1"});
  for (const double frac : fractions) {
    const size_t n = static_cast<size_t>(frac * full_train.size());
    const std::vector<traj::Trajectory> train(full_train.begin(),
                                              full_train.begin() + n);
    double mape[2], cls[2];
    for (const bool pretrain : {true, false}) {
      auto make_runner = [&] {
        auto runner = bench::MakeStartRunner(BenchStartConfig(), world);
        if (pretrain) {
          core::Pretrain(runner.start_model.get(), train,
                         world.traffic.get(),
                         bench::DefaultStartPretrainConfig(
                             std::max<int64_t>(4, bench::DefaultPretrainEpochs() / 2)));
        }
        return runner;
      };
      const auto task = bench::DefaultTaskConfig();
      {
        auto runner = make_runner();
        const auto eta = eval::FinetuneEta(runner.encoder(), train,
                                           world.dataset->test(), task);
        mape[pretrain ? 0 : 1] = eta.metrics.mape;
      }
      {
        auto runner = make_runner();
        if (binary_task) {
          const auto result = eval::FinetuneClassification(
              runner.encoder(), train, world.dataset->test(),
              bench::OccupancyLabel, 2, 1, task);
          cls[pretrain ? 0 : 1] = result.f1;
        } else {
          const auto result = eval::FinetuneClassification(
              runner.encoder(), train, world.dataset->test(),
              bench::DriverLabel, world.num_drivers, 5, task);
          cls[pretrain ? 0 : 1] = result.macro_f1;
        }
      }
    }
    const std::string size_label =
        std::to_string(n) + " (" +
        common::TablePrinter::Num(100 * frac, 0) + "%)";
    eta_table.AddRow({size_label, common::TablePrinter::Num(mape[0], 2),
                      common::TablePrinter::Num(mape[1], 2)});
    cls_table.AddRow({size_label, common::TablePrinter::Num(cls[0], 3),
                      common::TablePrinter::Num(cls[1], 3)});
    std::fprintf(stderr, "[fig6] %s frac %.2f done\n", world.name.c_str(),
                 frac);
  }
  std::printf("\n-- (%s) ETA --\n", world.name.c_str());
  eta_table.Print();
  std::printf("\n-- (%s) classification --\n", world.name.c_str());
  cls_table.Print();
}

}  // namespace

int main() {
  std::printf("=== Figure 6: performance vs training-set size ===\n");
  {
    const auto bj = bench::MakeBjWorld();
    RunWorld(bj, /*binary_task=*/true);
  }
  {
    const auto porto = bench::MakePortoWorld();
    RunWorld(porto, /*binary_task=*/false);
  }
  std::printf("\npaper-shape check: metrics improve with size; the "
              "pre-trained column dominates the non-pre-trained one.\n");
  return 0;
}
