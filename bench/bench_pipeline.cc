// Data-pipeline benchmark: measures what the async prefetching loader and
// length-bucketed batching buy over the synchronous seed path, and emits
// BENCH_pipeline.json for CI tracking.
//
// Three measurements:
//  1. End-to-end training-step throughput (assemble + encoder forward):
//     the seed path — per-step fresh allocations, batches padded to the
//     shuffle-chunk max — against the pipeline (bucketed plan, recycled
//     buffers, N prefetch workers). On a multi-core host the workers also
//     hide assembly behind the encoder; on any host the bucketed batches
//     shrink the padded [B, L] extent the encoder has to attend over.
//  2. Producer-only throughput (batches/sec of pure assembly) for worker
//     counts 0/1/2/4 — isolates the parallel-assembly scaling.
//  3. Padding efficiency (real tokens / padded slots) of the shuffled
//     seed plan vs. the bucketed plan.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target bench_pipeline
//   ./build/bench_pipeline
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/start_model.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "data/detour.h"
#include "data/loader.h"
#include "data/span_mask.h"
#include "roadnet/synthetic_city.h"
#include "tensor/tensor.h"
#include "traj/traffic_model.h"
#include "traj/trip_generator.h"

namespace {

using start::common::Rng;
using start::common::Stopwatch;

constexpr int64_t kBatchSize = 32;
constexpr uint64_t kSeed = 7;

struct World {
  std::unique_ptr<start::roadnet::RoadNetwork> net;
  std::unique_ptr<start::traj::TrafficModel> traffic;
  std::vector<start::traj::Trajectory> corpus;
};

World BuildWorld() {
  World w;
  w.net = std::make_unique<start::roadnet::RoadNetwork>(
      start::roadnet::BuildSyntheticCity({.grid_width = 20,
                                          .grid_height = 20}));
  w.traffic = std::make_unique<start::traj::TrafficModel>(
      w.net.get(), start::traj::TrafficModel::Config{});
  start::traj::TripGenerator::Config config;
  config.num_drivers = 12;
  config.num_days = 6;
  config.trips_per_driver_day = 4.0;
  // Wide OD zones on the larger grid give the heavy-tailed length mix of
  // the real taxi corpora (many short errands, long cross-town commutes) —
  // the regime length bucketing is designed for.
  config.zone_radius_m = 2000.0;
  config.seed = 17;
  start::traj::TripGenerator gen(w.traffic.get(), config);
  auto raw = gen.Generate();
  // The anchor-zone commuter trips are short; add cross-town rides between
  // far corners of the grid so the corpus gets the heavy tail of the real
  // taxi datasets (lengths spanning ~6..128). This is the regime the
  // length-bucketed batching is designed for.
  Rng od_rng(23);
  const int64_t v = w.net->num_segments();
  for (int i = 0; i < 220; ++i) {
    const int64_t driver = i % config.num_drivers;
    const int64_t depart = (6 + i % 16) * 3600;
    const int64_t src = od_rng.UniformInt(v / 8);
    const int64_t dst = v - 1 - od_rng.UniformInt(v / 8);
    auto t = gen.GenerateTrip(driver, src, dst, depart);
    if (t.size() == 0) continue;
    if (i % 2 == 0) {
      // Two-leg ride through a random waypoint, re-timed with the
      // congestion model — these populate the 50..128-road tail.
      const int64_t mid = od_rng.UniformInt(v);
      auto leg2 = gen.GenerateTrip(driver, t.roads.back(), mid, depart);
      if (leg2.size() > 1) {
        t.roads.insert(t.roads.end(), leg2.roads.begin() + 1,
                       leg2.roads.end());
        t.timestamps.clear();
        double clock = static_cast<double>(depart);
        for (const int64_t r : t.roads) {
          t.timestamps.push_back(static_cast<int64_t>(clock));
          clock += std::max(
              1.0, w.traffic->ExpectedTravelTime(
                       r, static_cast<int64_t>(clock)));
        }
        t.end_time = static_cast<int64_t>(clock);
      }
    }
    if (t.roads.front() != t.roads.back()) raw.push_back(std::move(t));
  }
  start::data::DatasetConfig ds;
  ds.min_length = 6;
  ds.min_user_trajectories = 2;
  w.corpus =
      start::data::TrajDataset::FromCorpus(*w.net, std::move(raw), ds).All();
  return w;
}

/// The training thread's per-step compute: forward the masked batch and the
/// contrastive batch through the encoder (no grad — the relative cost across
/// pipeline variants is what matters, and it keeps the bench fast).
/// `share_road_reps` mirrors the pretrain loop's stage-1 sharing; the seed
/// path re-evaluated the GAT inside every Encode call.
double ConsumeStep(const start::core::StartModel& model,
                   const start::data::TrainingBatch& tb,
                   bool share_road_reps) {
  start::tensor::NoGradGuard no_grad;
  double checksum = 0.0;
  // cls may be a zero-copy slice of the sequence output; compact before
  // reading through data().
  if (share_road_reps) {
    const start::tensor::Tensor reps = model.ComputeRoadReps();
    if (tb.has_masked) {
      checksum += model.Encode(tb.masked, reps).cls.Contiguous().data()[0];
    }
    if (tb.has_contrastive) {
      checksum +=
          model.Encode(tb.contrastive, reps).cls.Contiguous().data()[0];
    }
  } else {
    if (tb.has_masked) {
      checksum += model.Encode(tb.masked).cls.Contiguous().data()[0];
    }
    if (tb.has_contrastive) {
      checksum += model.Encode(tb.contrastive).cls.Contiguous().data()[0];
    }
  }
  return checksum;
}

/// Faithful reimplementation of the seed's synchronous step loop
/// (core/pretrain.cc before the loader): one shared Rng consumed serially,
/// shuffle-chunked batches padded to the chunk max, and every per-step
/// buffer (views, batch arrays, positions) allocated fresh.
double RunSeedPath(const World& w, const start::core::StartModel* model,
                   int64_t steps, double* sink) {
  const auto& corpus = w.corpus;
  Rng rng(kSeed);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int64_t>(i);
  }
  rng.Shuffle(&order);
  start::data::AugmentationConfig aug_cfg;
  Stopwatch timer;
  for (int64_t s = 0; s < steps; ++s) {
    std::vector<const start::traj::Trajectory*> batch;
    for (int64_t k = 0; k < kBatchSize; ++k) {
      const int64_t idx = order[static_cast<size_t>(
          (s * kBatchSize + k) % static_cast<int64_t>(corpus.size()))];
      batch.push_back(&corpus[static_cast<size_t>(idx)]);
    }
    start::data::TrainingBatch tb;
    {
      std::vector<start::data::View> views;
      std::vector<start::data::SpanMaskInfo> infos;
      for (const auto* t : batch) {
        start::data::View v = start::data::MakeView(*t);
        infos.push_back(start::data::ApplySpanMask(&v, 2, 0.15, &rng));
        views.push_back(std::move(v));
      }
      tb.masked = start::data::MakeBatch(views);
      tb.has_masked = true;
    }
    {
      std::vector<start::data::View> views;
      for (const auto* t : batch) {
        views.push_back(start::data::Augment(
            *t, start::data::AugmentationKind::kTrim, aug_cfg,
            w.traffic.get(), &rng));
        views.push_back(start::data::Augment(
            *t, start::data::AugmentationKind::kTemporalShift, aug_cfg,
            w.traffic.get(), &rng));
      }
      tb.contrastive = start::data::MakeBatch(views);
      tb.has_contrastive = true;
    }
    if (model != nullptr) {
      *sink += ConsumeStep(*model, tb, /*share_road_reps=*/false);
    }
  }
  return timer.ElapsedSeconds();
}

/// The new pipeline: bucketed plan, prefetch workers, recycled buffers.
/// With `model == nullptr` the consumer is a no-op (producer-only variant).
double RunPipeline(const World& w, const start::core::StartModel* model,
                   int num_workers, int64_t steps, double* sink) {
  start::data::PlanConfig plan_config;
  plan_config.batch_size = kBatchSize;
  plan_config.epochs =
      std::max<int64_t>(1, (steps * kBatchSize) /
                               static_cast<int64_t>(w.corpus.size()) +
                               1);
  plan_config.seed = kSeed;
  auto plan =
      start::data::MakeShuffledPlan(start::data::Lengths(w.corpus),
                                    plan_config);
  plan.steps.resize(static_cast<size_t>(
      std::min<int64_t>(steps, static_cast<int64_t>(plan.steps.size()))));

  start::data::LoaderConfig loader_config;
  loader_config.num_workers = num_workers;
  loader_config.prefetch_depth = 4;
  loader_config.seed = kSeed;
  start::data::BatchLoader loader(
      std::move(plan.steps),
      start::data::MakePretrainBuilder(&w.corpus, w.traffic.get(), {}),
      loader_config);
  Stopwatch timer;
  start::data::TrainingBatch tb;
  while (loader.Next(&tb)) {
    if (model != nullptr) {
      *sink += ConsumeStep(*model, tb, /*share_road_reps=*/true);
    }
    loader.Recycle(std::move(tb));
  }
  return timer.ElapsedSeconds();
}

double PlanEfficiency(const std::vector<int64_t>& lengths,
                      const std::vector<std::vector<int64_t>>& plan) {
  int64_t tokens = 0, slots = 0;
  for (const auto& batch : plan) {
    int64_t max_len = 0;
    for (const int64_t idx : batch) {
      tokens += lengths[static_cast<size_t>(idx)];
      max_len = std::max(max_len, lengths[static_cast<size_t>(idx)]);
    }
    slots += max_len * static_cast<int64_t>(batch.size());
  }
  return static_cast<double>(tokens) / static_cast<double>(slots);
}

}  // namespace

int main() {
  const World w = BuildWorld();
  const auto lengths = start::data::Lengths(w.corpus);
  int64_t min_len = 1 << 20, max_len = 0, total = 0;
  for (const int64_t l : lengths) {
    min_len = std::min(min_len, l);
    max_len = std::max(max_len, l);
    total += l;
  }
  std::printf("corpus: %zu trajectories, lengths %ld..%ld (mean %.1f)\n",
              w.corpus.size(), min_len, max_len,
              static_cast<double>(total) /
                  static_cast<double>(lengths.size()));

  const auto transfer =
      start::roadnet::TransferProbability::FromTrajectories(
          *w.net, [&] {
            std::vector<std::vector<int64_t>> seqs;
            for (const auto& t : w.corpus) seqs.push_back(t.roads);
            return seqs;
          }());
  start::core::StartConfig model_config;
  model_config.d = 32;
  model_config.encoder_layers = 2;
  model_config.encoder_heads = 4;
  model_config.gat_heads = {4, 1};
  model_config.gat_layers = 2;
  model_config.max_len = 160;
  Rng rng(kSeed);
  start::core::StartModel model(model_config, w.net.get(), &transfer, &rng);
  model.SetTraining(false);

  const int64_t kSteps = 48;
  double sink = 0.0;

  // Warm both paths once (model caches, allocator) before timing.
  RunPipeline(w, &model, 0, 4, &sink);

  // 1. End-to-end: assemble + encode. Best of two runs per path — the
  // acceptance gates below are hard CI failures, so a single noisy-neighbor
  // hiccup on a shared runner must not decide them.
  const auto best_of_2 = [](const std::function<double()>& run) {
    const double first = run();
    return std::min(first, run());
  };
  const double seed_s =
      best_of_2([&] { return RunSeedPath(w, &model, kSteps, &sink); });
  const double pipe0_s =
      best_of_2([&] { return RunPipeline(w, &model, 0, kSteps, &sink); });
  const double pipe4_s =
      best_of_2([&] { return RunPipeline(w, &model, 4, kSteps, &sink); });
  const double e2e_seed = static_cast<double>(kSteps) / seed_s;
  const double e2e_sync = static_cast<double>(kSteps) / pipe0_s;
  const double e2e_async4 = static_cast<double>(kSteps) / pipe4_s;

  // 2. Producer-only assembly throughput (long runs: assembly is fast, so
  // short runs would mostly time thread startup).
  const int64_t kProdSteps = 1024;
  const double prod_seed_s = RunSeedPath(w, nullptr, kProdSteps, &sink);
  double prod_sps[5] = {0, 0, 0, 0, 0};
  for (const int workers : {0, 1, 2, 4}) {
    const double s = RunPipeline(w, nullptr, workers, kProdSteps, &sink);
    prod_sps[workers] = static_cast<double>(kProdSteps) / s;
  }
  const double prod_seed = static_cast<double>(kProdSteps) / prod_seed_s;

  // 3. Padding efficiency of one epoch's plan, seed shuffle vs bucketed.
  start::data::PlanConfig eff_config;
  eff_config.batch_size = kBatchSize;
  eff_config.seed = kSeed;
  eff_config.bucket_by_length = false;
  const double eff_shuffled =
      PlanEfficiency(lengths,
                     start::data::MakeShuffledPlan(lengths, eff_config).steps);
  eff_config.bucket_by_length = true;
  const double eff_bucketed =
      PlanEfficiency(lengths,
                     start::data::MakeShuffledPlan(lengths, eff_config).steps);

  // 4. Detour augmentation: the seed's per-call Yen search (a Dijkstra
  // cascade per trajectory) vs the CH-backed DetourGenerator, identical
  // selection logic and rng stream on the identical corpus. The generator's
  // one-time CSR + CH build is timed separately — it is amortized over every
  // augmentation call of a training run.
  const start::data::DetourConfig detour_cfg;
  const auto time_detours =
      [&](const std::function<std::optional<start::traj::Trajectory>(
              const start::traj::Trajectory&, Rng*)>& make) {
        Rng detour_rng(31);
        int64_t made = 0;
        Stopwatch timer;
        for (const auto& t : w.corpus) {
          if (make(t, &detour_rng).has_value()) ++made;
        }
        return std::make_pair(timer.ElapsedSeconds(), made);
      };
  const auto [yen_s, yen_made] = time_detours([&](const auto& t, Rng* r) {
    return start::data::MakeDetour(*w.traffic, t, detour_cfg, r);
  });
  Stopwatch detour_watch;
  start::data::DetourGenerator detours(w.traffic.get(), detour_cfg);
  const double detour_build_s = detour_watch.ElapsedSeconds();
  const auto [ch_s, ch_made] = time_detours(
      [&](const auto& t, Rng* r) { return detours.Generate(t, r); });
  const double detour_yen_per_sec =
      static_cast<double>(w.corpus.size()) / yen_s;
  const double detour_ch_per_sec = static_cast<double>(w.corpus.size()) / ch_s;
  const double detour_speedup = yen_s / ch_s;

  const double speedup_e2e = e2e_async4 / e2e_seed;
  const double speedup_prod = prod_sps[4] / prod_seed;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host                 : %u hardware threads\n", cores);
  std::printf("end-to-end steps/sec : seed %.2f | pipeline sync %.2f | "
              "pipeline 4 workers %.2f (%.2fx over seed)\n",
              e2e_seed, e2e_sync, e2e_async4, speedup_e2e);
  std::printf("producer batches/sec : seed %.1f | workers 0/1/2/4 = "
              "%.1f / %.1f / %.1f / %.1f (%.2fx at 4 workers)\n",
              prod_seed, prod_sps[0], prod_sps[1], prod_sps[2], prod_sps[4],
              speedup_prod);
  std::printf("padding efficiency   : shuffled %.3f -> bucketed %.3f\n",
              eff_shuffled, eff_bucketed);
  std::printf("detour augmentation  : yen %.1f/s (%ld made) | ch %.1f/s "
              "(%ld made, build %.0f ms) — %.1fx\n",
              detour_yen_per_sec, yen_made, detour_ch_per_sec, ch_made,
              detour_build_s * 1e3, detour_speedup);

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pipeline.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"hardware_threads\": %u,\n"
               "  \"end_to_end_steps_per_sec\": {\"seed_sync\": %.3f, "
               "\"pipeline_sync\": %.3f, \"pipeline_4workers\": %.3f},\n"
               "  \"speedup_4workers_vs_seed\": %.3f,\n"
               "  \"producer_batches_per_sec\": {\"seed_sync\": %.2f, "
               "\"workers_0\": %.2f, \"workers_1\": %.2f, \"workers_2\": "
               "%.2f, \"workers_4\": %.2f},\n"
               "  \"producer_speedup_4workers\": %.3f,\n"
               "  \"padding_efficiency\": {\"shuffled\": %.4f, \"bucketed\": "
               "%.4f},\n"
               "  \"detour\": {\"yen_per_sec\": %.2f, \"ch_per_sec\": %.2f, "
               "\"ch_build_seconds\": %.3f, \"ch_speedup\": %.3f},\n"
               "  \"checksum\": %.6f\n"
               "}\n",
               cores, e2e_seed, e2e_sync, e2e_async4, speedup_e2e, prod_seed,
               prod_sps[0], prod_sps[1], prod_sps[2], prod_sps[4],
               speedup_prod, eff_shuffled, eff_bucketed, detour_yen_per_sec,
               detour_ch_per_sec, detour_build_s, detour_speedup, sink);
  std::fclose(json);
  std::printf("wrote BENCH_pipeline.json\n");

  // Acceptance gates.
  //
  // 1. Always: bucketing must deliver a real padding-efficiency win, and
  //    the pipeline machinery must not regress the single-thread step rate.
  if (eff_bucketed < eff_shuffled + 0.05) {
    std::fprintf(stderr, "FAIL: bucketed padding efficiency %.3f not "
                 "above shuffled %.3f + 0.05\n", eff_bucketed, eff_shuffled);
    return 1;
  }
  if (e2e_sync < 0.85 * e2e_seed) {
    std::fprintf(stderr, "FAIL: pipeline sync %.2f steps/s regresses the "
                 "seed path %.2f\n", e2e_sync, e2e_seed);
    return 1;
  }
  if (detour_speedup < 1.5) {
    std::fprintf(stderr, "FAIL: CH detour generation %.2fx not at least "
                 "1.5x over per-call Yen\n", detour_speedup);
    return 1;
  }
  // 2. The 2x claim: the 4-worker pipeline must at least double the
  //    synchronous seed path's end-to-end step rate. Producing batches in
  //    parallel needs hardware parallelism, so a single-core host cannot
  //    express it — report instead of silently passing.
  if (cores >= 2) {
    if (speedup_e2e < 2.0) {
      std::fprintf(stderr, "FAIL: 4-worker pipeline speedup %.2fx < 2x\n",
                   speedup_e2e);
      return 1;
    }
  } else if (speedup_e2e < 2.0) {
    std::printf("NOTE: single hardware thread — the >= 2x 4-worker gate "
                "cannot be expressed here (measured %.2fx; CI enforces it "
                "on multi-core runners)\n", speedup_e2e);
  }
  return 0;
}
