// Reproduces Figure 8: ETA MAPE for every pair of contrastive data
// augmentations (Trim, Shift, Mask, Dropout), a 4x4 symmetric grid.
// Paper shape: Shift+Mask best (temporal variation matters); Dropout
// competitive; grid roughly symmetric.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace start;

namespace {

core::StartConfig BenchStartConfig() {
  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  return config;
}

double MapeFor(const bench::CityWorld& world, data::AugmentationKind a,
               data::AugmentationKind b) {
  auto runner = bench::MakeStartRunner(BenchStartConfig(), world);
  auto pretrain = bench::DefaultStartPretrainConfig(
      std::max<int64_t>(4, bench::DefaultPretrainEpochs() / 2));
  pretrain.aug_a = a;
  pretrain.aug_b = b;
  core::Pretrain(runner.start_model.get(), world.dataset->train(),
                 world.traffic.get(), pretrain);
  const auto eta = eval::FinetuneEta(runner.encoder(),
                                     world.dataset->train(),
                                     world.dataset->test(),
                                     bench::DefaultTaskConfig());
  return eta.metrics.mape;
}

void RunWorld(const bench::CityWorld& world) {
  const std::vector<data::AugmentationKind> kinds = {
      data::AugmentationKind::kTrim, data::AugmentationKind::kTemporalShift,
      data::AugmentationKind::kRoadMask, data::AugmentationKind::kDropout};
  std::printf("\n--- %s: MAPE(%%) per augmentation pair ---\n",
              world.name.c_str());
  common::TablePrinter table({"", "Trim", "Shift", "Mask", "Dropout"});
  // The grid is symmetric; compute the upper triangle once.
  double grid[4][4];
  for (size_t i = 0; i < kinds.size(); ++i) {
    for (size_t j = i; j < kinds.size(); ++j) {
      grid[i][j] = MapeFor(world, kinds[i], kinds[j]);
      grid[j][i] = grid[i][j];
      std::fprintf(stderr, "[fig8] %s %s+%s done\n", world.name.c_str(),
                   std::string(data::AugmentationName(kinds[i])).c_str(),
                   std::string(data::AugmentationName(kinds[j])).c_str());
    }
  }
  for (size_t i = 0; i < kinds.size(); ++i) {
    std::vector<std::string> row{
        std::string(data::AugmentationName(kinds[i]))};
    for (size_t j = 0; j < kinds.size(); ++j) {
      row.push_back(common::TablePrinter::Num(grid[i][j], 2));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("=== Figure 8: MAPE for different augmentation pairs ===\n");
  {
    const auto bj = bench::MakeBjWorld();
    RunWorld(bj);
  }
  {
    const auto porto = bench::MakePortoWorld();
    RunWorld(porto);
  }
  std::printf("\npaper-shape check: pairs containing a temporal change "
              "(Shift/Mask) tend to win; no pair catastrophically worse.\n");
  return 0;
}
