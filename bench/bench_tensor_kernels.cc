// Microbenchmark for the elementwise kernel engine: broadcast and same-shape
// ops at transformer-pretraining shapes [B=64, T=128, D=256], against a
// faithful reimplementation of the seed's scalar div/mod broadcast loop.
// Emits BENCH_tensor.json so CI tracks the kernel perf trajectory.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target bench_tensor_kernels
//   ./build/bench_tensor_kernels
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace {

using start::common::Rng;
using start::common::Stopwatch;
using start::tensor::NoGradGuard;
using start::tensor::Shape;
using start::tensor::Tensor;

constexpr int64_t kB = 64, kT = 128, kD = 256;

/// The seed's broadcast indexing: per output element, a div/mod walk over the
/// padded dims recovers each input's flat index. Kept verbatim as the
/// baseline the fused kernels are measured against.
struct ScalarBroadcastMap {
  std::array<int64_t, 4> out_dims{};
  std::array<int64_t, 4> a_strides{};
  std::array<int64_t, 4> b_strides{};
  int64_t numel = 0;

  void Map(int64_t flat, int64_t* ia, int64_t* ib) const {
    int64_t a = 0;
    int64_t b = 0;
    for (int d = 3; d >= 0; --d) {
      const int64_t q = flat % out_dims[d];
      flat /= out_dims[d];
      a += q * a_strides[d];
      b += q * b_strides[d];
    }
    *ia = a;
    *ib = b;
  }
};

ScalarBroadcastMap MakeScalarMap(const Shape& a, const Shape& b) {
  const Shape out = start::tensor::BroadcastShapes(a, b);
  ScalarBroadcastMap map;
  map.numel = out.numel();
  map.out_dims.fill(1);
  map.a_strides.fill(0);
  map.b_strides.fill(0);
  for (int64_t i = 0; i < out.ndim(); ++i) {
    map.out_dims[static_cast<size_t>(3 - i)] = out.dim(out.ndim() - 1 - i);
  }
  auto fill = [&](const Shape& s, std::array<int64_t, 4>* st) {
    int64_t stride = 1;
    for (int64_t i = 0; i < s.ndim(); ++i) {
      const int64_t d = s.dim(s.ndim() - 1 - i);
      const size_t slot = static_cast<size_t>(3 - i);
      (*st)[slot] = (d == 1 && map.out_dims[slot] != 1) ? 0 : stride;
      stride *= d;
    }
  };
  fill(a, &map.a_strides);
  fill(b, &map.b_strides);
  return map;
}

void ScalarBroadcastAdd(const ScalarBroadcastMap& map, const float* pa,
                        const float* pb, float* out) {
  for (int64_t i = 0; i < map.numel; ++i) {
    int64_t ia, ib;
    map.Map(i, &ia, &ib);
    out[i] = pa[ia] + pb[ib];
  }
}

struct BenchResult {
  std::string name;
  double scalar_ms = 0.0;  // seed loop (0 when no scalar baseline applies)
  double kernel_ms = 0.0;
  double speedup = 0.0;
};

/// Median-of-`iters` wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(int iters, Fn fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

BenchResult BenchBroadcast(const char* name, const Shape& sa, const Shape& sb,
                           int iters) {
  Rng rng(42);
  const Tensor a = Tensor::Rand(sa, &rng, -1, 1);
  const Tensor b = Tensor::Rand(sb, &rng, -1, 1);
  const ScalarBroadcastMap map = MakeScalarMap(sa, sb);
  std::vector<float> scalar_out(static_cast<size_t>(map.numel));

  BenchResult r;
  r.name = name;
  r.scalar_ms = TimeMs(iters, [&] {
    ScalarBroadcastAdd(map, a.data(), b.data(), scalar_out.data());
  });
  NoGradGuard no_grad;
  Tensor sink;  // keep the result alive so the write isn't elided
  r.kernel_ms = TimeMs(iters, [&] { sink = start::tensor::Add(a, b); });
  // Cross-check: both paths must agree elementwise.
  for (int64_t i = 0; i < map.numel; ++i) {
    const float diff = scalar_out[static_cast<size_t>(i)] - sink.data()[i];
    if (diff > 1e-6f || diff < -1e-6f) {
      std::fprintf(stderr, "MISMATCH in %s at %lld\n", name,
                   static_cast<long long>(i));
      std::exit(1);
    }
  }
  r.speedup = r.scalar_ms / r.kernel_ms;
  return r;
}

BenchResult BenchView(const char* name, int iters) {
  // Attention-style strided consumption: per-head slice into BMM.
  Rng rng(7);
  const int64_t heads = 8, hd = kD / heads;
  const Tensor q = Tensor::Rand(Shape({8, kT, kD}), &rng, -1, 1);
  const Tensor k = Tensor::Rand(Shape({8, kT, kD}), &rng, -1, 1);
  NoGradGuard no_grad;
  BenchResult r;
  r.name = name;
  Tensor sink;
  r.kernel_ms = TimeMs(iters, [&] {
    for (int64_t h = 0; h < heads; ++h) {
      const Tensor qh = start::tensor::Slice(q, 2, h * hd, hd);
      const Tensor kh = start::tensor::Slice(k, 2, h * hd, hd);
      sink = start::tensor::BatchMatMul(qh, kh, /*transpose_b=*/true);
    }
  });
  r.speedup = 0.0;
  return r;
}

}  // namespace

int main() {
  std::vector<BenchResult> results;
  // The acceptance shape: [B=64, T=128, D=256] broadcast elementwise.
  results.push_back(
      BenchBroadcast("add_broadcast_row_B64_T128_D256", Shape({kB, kT, kD}),
                     Shape({kD}), 9));
  results.push_back(
      BenchBroadcast("add_broadcast_col_B64_T128_D256", Shape({kB, kT, kD}),
                     Shape({kB, kT, 1}), 9));
  results.push_back(BenchBroadcast("add_same_shape_B64_T128_D256",
                                   Shape({kB, kT, kD}), Shape({kB, kT, kD}),
                                   9));
  results.push_back(BenchView("bmm_head_slices_B8_T128_D256", 5));

  std::FILE* json = std::fopen("BENCH_tensor.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_tensor.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-36s scalar %8.3f ms   kernel %8.3f ms   speedup %5.2fx\n",
                r.name.c_str(), r.scalar_ms, r.kernel_ms, r.speedup);
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"scalar_ms\": %.4f, "
                 "\"kernel_ms\": %.4f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.scalar_ms, r.kernel_ms, r.speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_tensor.json\n");

  // Acceptance gate: broadcast elementwise must beat the seed scalar loop 2x.
  for (const auto& r : results) {
    if (r.scalar_ms > 0.0 && r.name.find("broadcast") != std::string::npos &&
        r.speedup < 2.0) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx < 2x\n", r.name.c_str(),
                   r.speedup);
      return 1;
    }
  }
  return 0;
}
