// Serving benchmark: measures what the frozen-engine inference path and the
// micro-batched EmbeddingService buy over the training-oriented encoder
// surface, and emits BENCH_serve.json for CI tracking.
//
// Five measurements:
//  1. Corpus-embedding throughput (trajectories/sec): the seed consumer
//     contract — eval::TrajectoryEncoder::EncodeBatch per fixed-size batch
//     with gradient recording on (autograd graph captured, stage-1 road
//     representations re-derived every batch) — against
//     serve::FrozenEncoder::EmbedAll (no grad state anywhere, road table
//     precomputed at load, length-bucketed batches).
//  2. Multi-client service throughput: N synchronous clients round-tripping
//     requests through one EmbeddingService. The 1 -> 4 client gain comes
//     from micro-batch coalescing (concurrent requests share one deadline
//     wait and one batch's fixed work) plus, on multi-core hosts, worker
//     parallelism.
//  3. Batch-coalescing efficiency of a burst: mean requests per engine call
//     and padding efficiency of the coalesced batches.
//  4. Single-request latency (EncodeSync round trip), reported raw.
//  5. ANN retrieval: HnswIndex vs the exact EmbeddingIndex (the oracle) on a
//     50k-row synthetic corpus — query throughput, p50/p95 latency, and
//     recall@10, with hard gates of >= 10x throughput at recall >= 0.95.
//     Also notes how much of the exact index's bulk load now runs before
//     its exclusive lock (the hoisted normalize pass).
//  6. Quantized serving: int8 vs f32 frozen engines on a serving-width
//     (d=192) model — corpus-embedding throughput, mean per-embedding
//     cosine vs the f32 reference, and serving-snapshot vs training-
//     checkpoint artifact size. Gates: >= 2x throughput on hosts running
//     the AVX2 qgemm backend (never slower anywhere), mean cosine
//     >= 0.999, snapshot at most half the checkpoint.
//
// OpenMP is pinned to 1 thread so every number isolates the serving-plane
// mechanics (worker threads, coalescing, frozen-path savings) instead of
// kernel-internal parallelism.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target bench_serve
//   ./build/bench_serve
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/start_encoder.h"
#include "core/start_model.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "serve/embedding_index.h"
#include "serve/embedding_service.h"
#include "serve/hnsw_index.h"
#include "serve/index_interface.h"
#include "serve/frozen_encoder.h"
#include "tensor/qgemm.h"
#include "traj/trip_generator.h"

namespace {

using start::common::Rng;
using start::common::Stopwatch;

struct World {
  std::unique_ptr<start::roadnet::RoadNetwork> net;
  std::unique_ptr<start::traj::TrafficModel> traffic;
  std::unique_ptr<start::roadnet::TransferProbability> transfer;
  std::vector<start::traj::Trajectory> corpus;
};

World BuildWorld() {
  World w;
  // Serving-representative scale: a city of ~1000 road segments (the real
  // corpora are larger still), so the per-batch stage-1 recompute the seed
  // path pays — and the frozen engine amortises into load time — matches
  // the regime the serving plane exists for.
  w.net = std::make_unique<start::roadnet::RoadNetwork>(
      start::roadnet::BuildSyntheticCity(
          {.grid_width = 16, .grid_height = 16, .seed = 31}));
  w.traffic = std::make_unique<start::traj::TrafficModel>(
      w.net.get(), start::traj::TrafficModel::Config{});
  start::traj::TripGenerator::Config config;
  config.num_drivers = 12;
  config.num_days = 6;
  config.trips_per_driver_day = 4.0;
  config.zone_radius_m = 1800.0;
  config.seed = 32;
  start::traj::TripGenerator gen(w.traffic.get(), config);
  start::data::DatasetConfig ds;
  ds.min_length = 6;
  ds.min_user_trajectories = 2;
  w.corpus = start::data::TrajDataset::FromCorpus(*w.net, gen.Generate(), ds)
                 .All();
  w.transfer = std::make_unique<start::roadnet::TransferProbability>(
      start::roadnet::TransferProbability::FromTrajectories(*w.net, [&] {
        std::vector<std::vector<int64_t>> seqs;
        for (const auto& t : w.corpus) seqs.push_back(t.roads);
        return seqs;
      }()));
  return w;
}

/// The seed consumer contract for corpus embedding: fixed-size batches in
/// corpus order, EncodeBatch with gradient recording live — every batch
/// captures an autograd graph and re-derives the stage-1 road
/// representations. (eval::EmbedAll has since moved to InferBatch; this
/// reproduces the pre-serving path as the baseline.)
double SeedGradEmbedAll(start::core::StartEncoder* encoder,
                        const std::vector<start::traj::Trajectory>& corpus,
                        std::vector<float>* out) {
  const int64_t d = encoder->dim();
  const int64_t batch_size = 64;
  const int64_t n = static_cast<int64_t>(corpus.size());
  out->assign(static_cast<size_t>(n * d), 0.0f);
  encoder->SetTraining(false);
  Stopwatch timer;
  for (int64_t begin = 0; begin < n; begin += batch_size) {
    const int64_t end = std::min(n, begin + batch_size);
    std::vector<const start::traj::Trajectory*> batch;
    for (int64_t i = begin; i < end; ++i) {
      batch.push_back(&corpus[static_cast<size_t>(i)]);
    }
    const start::tensor::Tensor reps =
        encoder->EncodeBatch(batch, start::eval::EncodeMode::kFull)
            .Contiguous();
    std::memcpy(out->data() + begin * d, reps.data(),
                static_cast<size_t>((end - begin) * d) * sizeof(float));
  }
  return timer.ElapsedSeconds();
}

/// One synchronous client: round-trips `requests` through the service,
/// walking the corpus from an offset so concurrent clients mix lengths.
void ClientLoop(start::serve::EmbeddingService* service,
                const std::vector<start::traj::Trajectory>& corpus,
                int64_t requests, size_t offset, std::atomic<int64_t>* done) {
  for (int64_t r = 0; r < requests; ++r) {
    const size_t idx = (offset + static_cast<size_t>(r)) % corpus.size();
    auto result = service->Encode(corpus[idx]);
    if (!result.ok()) continue;
    result.value().get();
    done->fetch_add(1, std::memory_order_relaxed);
  }
}

double MeasureServiceThroughput(const start::serve::FrozenEncoder* frozen,
                                const std::vector<start::traj::Trajectory>&
                                    corpus,
                                int num_clients, int64_t requests_per_client) {
  start::serve::ServiceConfig sc;
  sc.num_workers = 4;
  sc.max_batch_size = 16;
  sc.batch_deadline_us = 200;
  start::serve::EmbeddingService service(frozen, sc);
  std::atomic<int64_t> done{0};
  Stopwatch timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back(ClientLoop, &service, std::cref(corpus),
                         requests_per_client,
                         static_cast<size_t>(c) * 37, &done);
  }
  for (auto& t : clients) t.join();
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(done.load()) / seconds;
}

struct AnnResults {
  int64_t rows = 0;
  int64_t dim = 0;
  start::serve::HnswConfig config;
  double build_seconds = 0.0;
  double exact_qps = 0.0, hnsw_qps = 0.0, speedup = 0.0;
  double recall_at_10 = 0.0;
  double exact_p50 = 0.0, exact_p95 = 0.0, hnsw_p50 = 0.0, hnsw_p95 = 0.0;
  double load_total_ms = 0.0;   ///< Exact-index AddBatch, end to end.
  double load_prelock_ms = 0.0; ///< Normalize pass (runs before the lock).
  // Tombstone compaction (the adaptation loop's Remove() churn path).
  double dead_fraction = 0.0;       ///< After removing half the rows.
  double tombstoned_recall = 0.0;   ///< recall@10 through the tombstones.
  double compacted_recall = 0.0;    ///< recall@10 after CompactedCopy().
  double fresh_recall = 0.0;        ///< recall@10 of a from-scratch build.
  double compact_seconds = 0.0;
};

double Percentile(std::vector<double> sorted_ms, double p) {
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const size_t idx = static_cast<size_t>(
      static_cast<double>(sorted_ms.size()) * p);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

/// Exact vs HNSW retrieval over a synthetic clustered embedding corpus: the
/// rows are Gaussian jitter around shared centers, the shape ANN indexes
/// serve in practice (and what the trajectory encoder emits — similar trips
/// cluster). Queries are fresh draws from the same mixture.
AnnResults MeasureAnn() {
  AnnResults r;
  r.rows = 50000;
  r.dim = 32;
  const int64_t kCenters = 512;
  const int64_t kQueries = 200;
  const int64_t kK = 10;
  Rng rng(34);
  std::vector<float> centers(static_cast<size_t>(kCenters * r.dim));
  for (auto& v : centers) v = static_cast<float>(rng.Normal());
  const auto sample_row = [&](float* dst) {
    const int64_t c = rng.UniformInt(kCenters);
    for (int64_t d = 0; d < r.dim; ++d) {
      dst[d] = centers[static_cast<size_t>(c * r.dim + d)] +
               static_cast<float>(rng.Normal(0.0, 0.25));
    }
  };
  std::vector<float> rows(static_cast<size_t>(r.rows * r.dim));
  for (int64_t i = 0; i < r.rows; ++i) sample_row(rows.data() + i * r.dim);
  std::vector<int64_t> ids(static_cast<size_t>(r.rows));
  for (int64_t i = 0; i < r.rows; ++i) ids[static_cast<size_t>(i)] = i;

  // The normalize pass timed on its own: this is exactly the work AddBatch
  // hoisted out of the exclusive section, i.e. the share of the bulk load
  // that used to block readers and no longer does.
  std::vector<float> scratch(rows.size());
  Stopwatch norm_timer;
  for (int64_t i = 0; i < r.rows; ++i) {
    start::serve::internal::NormalizeInto(rows.data() + i * r.dim, r.dim,
                                          scratch.data() + i * r.dim);
  }
  r.load_prelock_ms = norm_timer.ElapsedMillis();

  start::serve::EmbeddingIndex exact(r.dim);
  Stopwatch load_timer;
  if (!exact.AddBatch(ids, rows).ok()) std::abort();
  r.load_total_ms = load_timer.ElapsedMillis();

  start::serve::HnswIndex hnsw(r.dim, r.config);
  Stopwatch build_timer;
  if (!hnsw.AddBatch(ids, rows).ok()) std::abort();
  r.build_seconds = build_timer.ElapsedSeconds();

  std::vector<float> queries(static_cast<size_t>(kQueries * r.dim));
  for (int64_t q = 0; q < kQueries; ++q) sample_row(queries.data() + q * r.dim);

  std::vector<std::vector<start::serve::Neighbor>> truth(
      static_cast<size_t>(kQueries));
  std::vector<double> exact_ms, hnsw_ms;
  Stopwatch timer;
  for (int64_t q = 0; q < kQueries; ++q) {
    timer.Restart();
    auto result = exact.Query(queries.data() + q * r.dim, r.dim, kK);
    exact_ms.push_back(timer.ElapsedMillis());
    if (!result.ok()) std::abort();
    truth[static_cast<size_t>(q)] = std::move(result).value();
  }
  double hits = 0.0;
  for (int64_t q = 0; q < kQueries; ++q) {
    timer.Restart();
    auto result = hnsw.Query(queries.data() + q * r.dim, r.dim, kK);
    hnsw_ms.push_back(timer.ElapsedMillis());
    if (!result.ok()) std::abort();
    const auto& got = result.value();
    for (const auto& t : truth[static_cast<size_t>(q)]) {
      for (const auto& g : got) {
        if (g.id == t.id) {
          hits += 1.0;
          break;
        }
      }
    }
  }
  double exact_total_ms = 0.0, hnsw_total_ms = 0.0;
  for (const double ms : exact_ms) exact_total_ms += ms;
  for (const double ms : hnsw_ms) hnsw_total_ms += ms;
  r.exact_qps = static_cast<double>(kQueries) / (exact_total_ms * 1e-3);
  r.hnsw_qps = static_cast<double>(kQueries) / (hnsw_total_ms * 1e-3);
  r.speedup = r.hnsw_qps / r.exact_qps;
  r.recall_at_10 =
      hits / static_cast<double>(kQueries) / static_cast<double>(kK);
  r.exact_p50 = Percentile(exact_ms, 0.50);
  r.exact_p95 = Percentile(exact_ms, 0.95);
  r.hnsw_p50 = Percentile(hnsw_ms, 0.50);
  r.hnsw_p95 = Percentile(hnsw_ms, 0.95);

  // Tombstone compaction (the adaptation loop's Remove() churn path):
  // delete half the rows, measure recall through the tombstoned graph,
  // compact, and compare against a from-scratch build over the survivors —
  // CompactedCopy() must restore build-fresh recall.
  std::vector<int64_t> survivor_ids;
  std::vector<float> survivor_rows;
  survivor_ids.reserve(static_cast<size_t>(r.rows / 2));
  survivor_rows.reserve(static_cast<size_t>((r.rows / 2) * r.dim));
  for (int64_t i = 0; i < r.rows; ++i) {
    if (i % 2 == 1) {
      if (!hnsw.Remove(i).ok()) std::abort();
    } else {
      survivor_ids.push_back(i);
      survivor_rows.insert(
          survivor_rows.end(), rows.begin() + i * r.dim,
          rows.begin() + (i + 1) * r.dim);
    }
  }
  r.dead_fraction = hnsw.DeadFraction();
  start::serve::EmbeddingIndex exact_survivors(r.dim);
  if (!exact_survivors.AddBatch(survivor_ids, survivor_rows).ok()) {
    std::abort();
  }
  std::vector<std::vector<start::serve::Neighbor>> survivor_truth(
      static_cast<size_t>(kQueries));
  for (int64_t q = 0; q < kQueries; ++q) {
    auto result = exact_survivors.Query(queries.data() + q * r.dim, r.dim, kK);
    if (!result.ok()) std::abort();
    survivor_truth[static_cast<size_t>(q)] = std::move(result).value();
  }
  const auto survivor_recall = [&](const start::serve::HnswIndex& idx) {
    double sr_hits = 0.0;
    for (int64_t q = 0; q < kQueries; ++q) {
      auto result = idx.Query(queries.data() + q * r.dim, r.dim, kK);
      if (!result.ok()) std::abort();
      for (const auto& t : survivor_truth[static_cast<size_t>(q)]) {
        for (const auto& g : result.value()) {
          if (g.id == t.id) {
            sr_hits += 1.0;
            break;
          }
        }
      }
    }
    return sr_hits / static_cast<double>(kQueries) /
           static_cast<double>(kK);
  };
  r.tombstoned_recall = survivor_recall(hnsw);
  Stopwatch compact_timer;
  auto compacted = hnsw.CompactedCopy();
  if (!compacted.ok()) std::abort();
  r.compact_seconds = compact_timer.ElapsedSeconds();
  r.compacted_recall = survivor_recall(*compacted.value());
  start::serve::HnswIndex fresh(r.dim, r.config);
  if (!fresh.AddBatch(survivor_ids, survivor_rows).ok()) std::abort();
  r.fresh_recall = survivor_recall(fresh);
  return r;
}

int64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

struct QuantResults {
  double f32_tps = 0.0;     ///< f32 frozen EmbedAll, trajectories/sec.
  double int8_tps = 0.0;    ///< int8 frozen EmbedAll, trajectories/sec.
  double speedup = 0.0;
  double mean_cos = 0.0;    ///< mean per-embedding cosine, int8 vs f32.
  int64_t checkpoint_bytes = 0;
  int64_t snapshot_bytes = 0;
  int64_t quantized_layers = 0;
};

/// int8 vs f32 frozen serving at serving width. The sections above run
/// d=32 so the service mechanics dominate; here the model is d=192 —
/// the regime the quantized path exists for, where the stage-2 projection
/// Linears are the bulk of an encode.
QuantResults MeasureQuantized(const World& w) {
  QuantResults r;
  start::core::StartConfig config;
  config.d = 192;
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.gat_layers = 2;
  config.gat_heads = {4, 1};
  config.max_len = 160;
  Rng rng(35);
  start::core::StartModel model(config, w.net.get(), w.transfer.get(), &rng);
  const std::string checkpoint = "bench_serve_model_q8.sttn";
  if (!start::core::SaveModelCheckpoint(
           checkpoint, model, start::core::HashStartConfig(config)).ok()) {
    std::abort();
  }
  r.checkpoint_bytes = FileBytes(checkpoint);

  auto f32 = start::serve::FrozenEncoder::Load(checkpoint, config,
                                               w.net.get(), w.transfer.get());
  start::serve::FrozenEncoderOptions opts;
  opts.precision = start::serve::Precision::kInt8;
  auto int8 = start::serve::FrozenEncoder::Load(
      checkpoint, config, w.net.get(), w.transfer.get(), opts);
  if (!f32.ok() || !int8.ok()) std::abort();
  r.quantized_layers = int8.value()->quantized_layer_count();

  const std::string snapshot = "bench_serve_snapshot_q8.sttn";
  if (!int8.value()->SaveSnapshot(snapshot).ok()) std::abort();
  r.snapshot_bytes = FileBytes(snapshot);

  // Best of two runs each, interleaved so neither side owns the warm cache.
  const auto time_embed =
      [&](const start::serve::FrozenEncoder& e, std::vector<float>* out) {
        Stopwatch timer;
        *out = e.EmbedAll(w.corpus, start::eval::EncodeMode::kFull);
        return timer.ElapsedSeconds();
      };
  std::vector<float> ref, got;
  double f32_s = time_embed(*f32.value(), &ref);
  double int8_s = time_embed(*int8.value(), &got);
  f32_s = std::min(f32_s, time_embed(*f32.value(), &ref));
  int8_s = std::min(int8_s, time_embed(*int8.value(), &got));
  const double n = static_cast<double>(w.corpus.size());
  r.f32_tps = n / f32_s;
  r.int8_tps = n / int8_s;
  r.speedup = r.int8_tps / r.f32_tps;

  const int64_t d = config.d;
  double cos_sum = 0.0;
  for (size_t i = 0; i < w.corpus.size(); ++i) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double a = ref[i * static_cast<size_t>(d) + j];
      const double b = got[i * static_cast<size_t>(d) + j];
      dot += a * b;
      na += a * a;
      nb += b * b;
    }
    cos_sum += dot / std::sqrt(na * nb);
  }
  r.mean_cos = cos_sum / n;
  return r;
}

}  // namespace

int main() {
#ifdef _OPENMP
  omp_set_num_threads(1);  // isolate serving-plane mechanics (see header)
#endif
  const World w = BuildWorld();
  std::printf("corpus: %zu trajectories over %ld road segments\n",
              w.corpus.size(), w.net->num_segments());

  start::core::StartConfig config;
  config.d = 32;
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.gat_layers = 2;
  config.gat_heads = {4, 1};
  config.max_len = 160;
  Rng rng(33);
  start::core::StartModel model(config, w.net.get(), w.transfer.get(), &rng);
  const std::string checkpoint = "bench_serve_model.sttn";
  {
    const auto st = start::core::SaveModelCheckpoint(
        checkpoint, model, start::core::HashStartConfig(config));
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  auto loaded = start::serve::FrozenEncoder::Load(checkpoint, config,
                                                  w.net.get(),
                                                  w.transfer.get());
  if (!loaded.ok()) {
    std::fprintf(stderr, "frozen load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto frozen = std::move(loaded).value();

  // 1. Corpus embedding: seed grad-tracking path vs frozen engine. Best of
  // two runs each — the gates below are hard CI failures.
  start::core::StartEncoder grad_encoder(&model);
  std::vector<float> seed_out;
  double seed_s = SeedGradEmbedAll(&grad_encoder, w.corpus, &seed_out);
  seed_s = std::min(seed_s, SeedGradEmbedAll(&grad_encoder, w.corpus,
                                             &seed_out));
  std::vector<float> frozen_out;
  Stopwatch frozen_timer;
  frozen_out = frozen->EmbedAll(w.corpus, start::eval::EncodeMode::kFull);
  double frozen_s = frozen_timer.ElapsedSeconds();
  frozen_timer.Restart();
  frozen_out = frozen->EmbedAll(w.corpus, start::eval::EncodeMode::kFull);
  frozen_s = std::min(frozen_s, frozen_timer.ElapsedSeconds());
  const double n_trajs = static_cast<double>(w.corpus.size());
  const double embed_seed = n_trajs / seed_s;
  const double embed_frozen = n_trajs / frozen_s;
  const double frozen_speedup = embed_frozen / embed_seed;

  // 2. Service throughput: 1 vs 4 synchronous clients.
  const int64_t kRequests = 256;
  const double thr1 =
      MeasureServiceThroughput(frozen.get(), w.corpus, 1, kRequests);
  const double thr4 =
      MeasureServiceThroughput(frozen.get(), w.corpus, 4, kRequests / 4);
  const double scaling = thr4 / thr1;

  // 3. Coalescing efficiency of an async burst, plus the bitwise gate: every
  // embedding served out of arbitrarily coalesced batches must equal the
  // frozen engine's serial corpus embedding.
  bool bitwise_identical = true;
  double coalescing = 0.0, pad_eff = 0.0;
  {
    start::serve::ServiceConfig sc;
    sc.num_workers = 2;
    sc.max_batch_size = 16;
    sc.batch_deadline_us = 2000;
    start::serve::EmbeddingService service(frozen.get(), sc);
    std::vector<std::future<start::serve::EmbeddingRow>> futures;
    futures.reserve(w.corpus.size());
    for (const auto& t : w.corpus) {
      auto result = service.Encode(t);
      if (result.ok()) futures.push_back(std::move(result).value());
    }
    const int64_t d = frozen->dim();
    for (size_t i = 0; i < futures.size(); ++i) {
      const start::serve::EmbeddingRow row = futures[i].get();
      if (std::memcmp(row.data(), frozen_out.data() + i * d,
                      static_cast<size_t>(d) * sizeof(float)) != 0) {
        bitwise_identical = false;
      }
    }
    const auto stats = service.stats();
    coalescing = stats.coalescing();
    pad_eff = stats.padding_efficiency();
  }

  // 4. Single-request latency.
  std::vector<double> latencies_ms;
  {
    start::serve::ServiceConfig sc;
    sc.num_workers = 1;
    sc.batch_deadline_us = 0;
    start::serve::EmbeddingService service(frozen.get(), sc);
    Stopwatch latency_timer;
    for (int64_t r = 0; r < 128; ++r) {
      const auto& t = w.corpus[static_cast<size_t>(r) % w.corpus.size()];
      latency_timer.Restart();
      (void)service.EncodeSync(t);
      latencies_ms.push_back(latency_timer.ElapsedMillis());
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double lat_p50 = latencies_ms[latencies_ms.size() / 2];
  const double lat_p95 = latencies_ms[latencies_ms.size() * 95 / 100];

  // 5. ANN retrieval: HnswIndex vs the exact oracle.
  const AnnResults ann = MeasureAnn();

  // 6. Quantized serving at d=192.
  const QuantResults quant = MeasureQuantized(w);
  const bool qgemm_avx2 = start::tensor::qgemm::ActiveBackend() ==
                          start::tensor::qgemm::Backend::kAvx2;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host                    : %u hardware threads\n", cores);
  std::printf("corpus embed trajs/sec  : seed grad path %.1f | frozen %.1f "
              "(%.2fx)\n",
              embed_seed, embed_frozen, frozen_speedup);
  std::printf("service requests/sec    : 1 client %.1f | 4 clients %.1f "
              "(%.2fx scaling)\n",
              thr1, thr4, scaling);
  std::printf("burst coalescing        : %.2f requests/batch, padding "
              "efficiency %.3f\n",
              coalescing, pad_eff);
  std::printf("single-request latency  : p50 %.2f ms, p95 %.2f ms\n",
              lat_p50, lat_p95);
  std::printf("bitwise vs serial       : %s\n",
              bitwise_identical ? "identical" : "MISMATCH");
  std::printf("ann corpus              : %ld rows, dim %ld (hnsw M=%ld "
              "ef_construction=%ld ef_search=%ld, built in %.2fs)\n",
              ann.rows, ann.dim, ann.config.M, ann.config.ef_construction,
              ann.config.ef_search, ann.build_seconds);
  std::printf("ann queries/sec         : exact %.1f | hnsw %.1f (%.1fx) at "
              "recall@10 %.4f\n",
              ann.exact_qps, ann.hnsw_qps, ann.speedup, ann.recall_at_10);
  std::printf("ann query latency ms    : exact p50 %.3f p95 %.3f | hnsw "
              "p50 %.3f p95 %.3f\n",
              ann.exact_p50, ann.exact_p95, ann.hnsw_p50, ann.hnsw_p95);
  std::printf("ann compaction          : %.0f%% tombstoned recall %.4f -> "
              "compacted %.4f in %.2fs (fresh rebuild %.4f)\n",
              ann.dead_fraction * 100.0, ann.tombstoned_recall,
              ann.compacted_recall, ann.compact_seconds, ann.fresh_recall);
  std::printf("exact bulk load         : %.1f ms total; the %.1f ms "
              "normalize pass now runs before the exclusive lock (it sat "
              "inside it before the hoist, blocking readers)\n",
              ann.load_total_ms, ann.load_prelock_ms);
  std::printf("quantized embed (d=192) : f32 %.1f | int8 %.1f trajs/sec "
              "(%.2fx, %ld int8 layers, %s backend)\n",
              quant.f32_tps, quant.int8_tps, quant.speedup,
              quant.quantized_layers,
              start::tensor::qgemm::BackendName(
                  start::tensor::qgemm::ActiveBackend()));
  std::printf("quantized mean cosine   : %.6f vs the f32 engine\n",
              quant.mean_cos);
  std::printf("quantized artifact      : snapshot %ld bytes vs checkpoint "
              "%ld bytes (%.2fx smaller)\n",
              quant.snapshot_bytes, quant.checkpoint_bytes,
              static_cast<double>(quant.checkpoint_bytes) /
                  static_cast<double>(quant.snapshot_bytes));

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_serve.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"hardware_threads\": %u,\n"
               "  \"corpus_embed_trajs_per_sec\": {\"seed_grad_path\": %.2f, "
               "\"frozen\": %.2f},\n"
               "  \"frozen_speedup_vs_seed\": %.3f,\n"
               "  \"service_requests_per_sec\": {\"clients_1\": %.2f, "
               "\"clients_4\": %.2f},\n"
               "  \"service_scaling_4v1\": %.3f,\n"
               "  \"coalescing_mean_batch\": %.3f,\n"
               "  \"service_padding_efficiency\": %.4f,\n"
               "  \"single_request_latency_ms\": {\"p50\": %.3f, "
               "\"p95\": %.3f},\n"
               "  \"bitwise_identical\": %s,\n"
               "  \"ann_rows\": %ld,\n"
               "  \"ann_dim\": %ld,\n"
               "  \"ann_hnsw_config\": {\"M\": %ld, \"ef_construction\": %ld, "
               "\"ef_search\": %ld},\n"
               "  \"ann_build_seconds\": %.3f,\n"
               "  \"ann_exact_qps\": %.1f,\n"
               "  \"ann_hnsw_qps\": %.1f,\n"
               "  \"ann_hnsw_speedup\": %.3f,\n"
               "  \"ann_recall_at_10\": %.4f,\n"
               "  \"ann_exact_latency_ms\": {\"p50\": %.4f, \"p95\": %.4f},\n"
               "  \"ann_hnsw_latency_ms\": {\"p50\": %.4f, \"p95\": %.4f},\n"
               "  \"ann_exact_bulk_load_ms\": {\"total\": %.1f, "
               "\"normalize_prelock\": %.1f},\n"
               "  \"ann_compaction\": {\"dead_fraction\": %.3f, "
               "\"tombstoned_recall\": %.4f, \"compacted_recall\": %.4f, "
               "\"fresh_recall\": %.4f, \"compact_seconds\": %.3f},\n"
               "  \"quantized_backend\": \"%s\",\n"
               "  \"quantized_layers\": %ld,\n"
               "  \"quantized_embed_trajs_per_sec\": {\"f32\": %.2f, "
               "\"int8\": %.2f},\n"
               "  \"quantized_embed_speedup\": %.3f,\n"
               "  \"quantized_embed_mean_cos\": %.6f,\n"
               "  \"quantized_artifact_bytes\": {\"checkpoint\": %ld, "
               "\"snapshot\": %ld}\n"
               "}\n",
               cores, embed_seed, embed_frozen, frozen_speedup, thr1, thr4,
               scaling, coalescing, pad_eff, lat_p50, lat_p95,
               bitwise_identical ? "true" : "false", ann.rows, ann.dim,
               ann.config.M, ann.config.ef_construction, ann.config.ef_search,
               ann.build_seconds, ann.exact_qps, ann.hnsw_qps, ann.speedup,
               ann.recall_at_10, ann.exact_p50, ann.exact_p95, ann.hnsw_p50,
               ann.hnsw_p95, ann.load_total_ms, ann.load_prelock_ms,
               ann.dead_fraction, ann.tombstoned_recall, ann.compacted_recall,
               ann.fresh_recall, ann.compact_seconds,
               start::tensor::qgemm::BackendName(
                   start::tensor::qgemm::ActiveBackend()),
               quant.quantized_layers, quant.f32_tps, quant.int8_tps,
               quant.speedup, quant.mean_cos, quant.checkpoint_bytes,
               quant.snapshot_bytes);
  std::fclose(json);
  std::printf("wrote BENCH_serve.json\n");

  // Acceptance gates.
  //
  // 1. Always: serving results must be bitwise identical to serial encodes —
  //    micro-batching must never change what a client receives.
  if (!bitwise_identical) {
    std::fprintf(stderr, "FAIL: service output differs from serial frozen "
                 "encodes\n");
    return 1;
  }
  // 2. Always: the frozen engine must at least double corpus-embedding
  //    throughput over the seed grad-tracking path. This is algorithmic
  //    (no autograd capture, no per-batch stage-1 recompute, bucketed
  //    batches), so it holds on any host, single-core included.
  if (frozen_speedup < 2.0) {
    std::fprintf(stderr, "FAIL: frozen corpus-embedding speedup %.2fx < 2x\n",
                 frozen_speedup);
    return 1;
  }
  // 3. Always: 1 -> 4 clients must gain >= 1.5x. Two stacked mechanisms
  //    deliver it, and only one needs hardware parallelism: concurrent
  //    clients amortise the coalescing deadline + per-batch fixed work
  //    across a micro-batch (a single synchronous client pays the full
  //    deadline per request — that is the latency/throughput trade the
  //    knob encodes), and on multi-core hosts the encode workers also run
  //    batches in parallel. The committed single-core baseline clears the
  //    floor on coalescing alone, so the gate holds everywhere.
  if (scaling < 1.5) {
    std::fprintf(stderr, "FAIL: 4-client scaling %.2fx < 1.5x\n", scaling);
    return 1;
  }
  // 4. Always: HNSW must beat the exact scan >= 10x on query throughput.
  //    Algorithmic (graph search visits O(ef·M) of 50k rows vs the full
  //    scan), so it holds on any host.
  if (ann.speedup < 10.0) {
    std::fprintf(stderr, "FAIL: hnsw query speedup %.2fx < 10x\n",
                 ann.speedup);
    return 1;
  }
  // 5. Always: the speedup may not be bought with accuracy — recall@10
  //    against the exact oracle must stay >= 0.95.
  if (ann.recall_at_10 < 0.95) {
    std::fprintf(stderr, "FAIL: hnsw recall@10 %.4f < 0.95\n",
                 ann.recall_at_10);
    return 1;
  }
  // 6. Always: compacting a 50%-tombstoned index must restore build-fresh
  //    recall — the compacted copy may trail a from-scratch build over the
  //    survivors by at most the recall-measurement granularity, and must
  //    clear the absolute floor. Algorithmic (CompactedCopy relinks the
  //    graph over live rows only), so it holds on any host.
  if (ann.compacted_recall < 0.95 ||
      ann.compacted_recall + 0.01 < ann.fresh_recall) {
    std::fprintf(stderr,
                 "FAIL: compacted recall@10 %.4f (fresh rebuild %.4f, floor "
                 "0.95)\n",
                 ann.compacted_recall, ann.fresh_recall);
    return 1;
  }
  // 7. Quantized serving. The accuracy and size gates are algorithmic and
  //    hold on any host. The throughput gate depends on the SIMD backend:
  //    with AVX2 the int8 kernels must at least double the f32 frozen path
  //    at serving width; on scalar-only hosts the quantized path must still
  //    never be slower (the committed baseline comes from an AVX2 host).
  if (quant.mean_cos < 0.999) {
    std::fprintf(stderr, "FAIL: quantized mean cosine %.6f < 0.999\n",
                 quant.mean_cos);
    return 1;
  }
  if (quant.snapshot_bytes <= 0 ||
      quant.snapshot_bytes * 2 > quant.checkpoint_bytes) {
    std::fprintf(stderr,
                 "FAIL: snapshot %ld bytes not <= half of checkpoint %ld\n",
                 quant.snapshot_bytes, quant.checkpoint_bytes);
    return 1;
  }
  const double quant_floor = qgemm_avx2 ? 2.0 : 0.9;
  if (quant.speedup < quant_floor) {
    std::fprintf(stderr, "FAIL: quantized embed speedup %.2fx < %.1fx (%s "
                 "backend)\n",
                 quant.speedup, quant_floor,
                 start::tensor::qgemm::BackendName(
                     start::tensor::qgemm::ActiveBackend()));
    return 1;
  }
  return 0;
}
