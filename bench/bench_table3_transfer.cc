// Reproduces Table III: transferring pre-trained models to a small
// Geolife-like dataset (4 transport modes).
// Rows: No Pre-train Geolife, Pre-train Geolife, Porto-START, BJ-START,
// Porto-Trembr, BJ-Trembr.
// Paper shape: pre-training on the small set itself helps; transferring
// START from a big city helps much more (BJ best); transferring the seq2seq
// Trembr hurts.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace start;

namespace {

struct TransferRow {
  std::string name;
  double mae, mape, rmse;
  double micro, macro, recall;
};

core::StartConfig BenchStartConfig() {
  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  return config;
}

TransferRow EvaluateStart(const std::string& name,
                          const bench::CityWorld& geolife,
                          const std::string& checkpoint,
                          bool pretrain_on_geolife) {
  const auto task = bench::DefaultTaskConfig();
  TransferRow row;
  row.name = name;
  auto run_tasks = [&](auto&& make_encoder) {
    {
      auto holder = make_encoder();
      const auto eta = eval::FinetuneEta(holder.encoder(),
                                         geolife.dataset->train(),
                                         geolife.dataset->test(), task);
      row.mae = eta.metrics.mae;
      row.mape = eta.metrics.mape;
      row.rmse = eta.metrics.rmse;
    }
    {
      auto holder = make_encoder();
      const auto cls = eval::FinetuneClassification(
          holder.encoder(), geolife.dataset->train(),
          geolife.dataset->test(), bench::ModeLabel, 4, 2, task);
      row.micro = cls.micro_f1;
      row.macro = cls.macro_f1;
      row.recall = cls.recall_at_k;
    }
  };
  run_tasks([&] {
    auto runner = bench::MakeStartRunner(BenchStartConfig(), geolife);
    if (!checkpoint.empty()) {
      // Cross-city transfer: TPE-GAT / encoder / temporal parameters are
      // |V|-independent; |V|-bound tensors (MLM head) stay fresh.
      const auto status = runner.start_model->Load(
          checkpoint, /*allow_missing=*/false, /*skip_mismatched=*/true);
      if (!status.ok()) {
        std::fprintf(stderr, "[table3] load %s: %s\n", checkpoint.c_str(),
                     status.ToString().c_str());
      }
    } else if (pretrain_on_geolife) {
      core::Pretrain(runner.start_model.get(), geolife.dataset->train(),
                     geolife.traffic.get(),
                     bench::DefaultStartPretrainConfig(
                         bench::DefaultPretrainEpochs()));
    }
    return runner;
  });
  return row;
}

TransferRow EvaluateTrembr(const std::string& name,
                           const bench::CityWorld& source,
                           const bench::CityWorld& geolife) {
  const auto task = bench::DefaultTaskConfig();
  TransferRow row;
  row.name = name;
  auto make_encoder = [&] {
    // Trembr's embedding table is |V|-bound: transfer reuses the GRU weights
    // only (embedding reinitialised for the target network), mirroring why
    // seq2seq models transfer poorly in the paper.
    auto source_runner = bench::MakeRunner(bench::ModelKind::kTrembr, source);
    bench::PretrainRunner(&source_runner, source, bench::Table2PretrainEpochs(), "t2");
    const std::string tmp = "bench_cache/trembr_transfer_tmp.sttn";
    (void)source_runner.module()->Save(tmp);
    auto target = bench::MakeRunner(bench::ModelKind::kTrembr, geolife);
    (void)target.module()->Load(tmp, /*allow_missing=*/true,
                                /*skip_mismatched=*/true);
    return target;
  };
  {
    auto holder = make_encoder();
    const auto eta = eval::FinetuneEta(holder.encoder(),
                                       geolife.dataset->train(),
                                       geolife.dataset->test(), task);
    row.mae = eta.metrics.mae;
    row.mape = eta.metrics.mape;
    row.rmse = eta.metrics.rmse;
  }
  {
    auto holder = make_encoder();
    const auto cls = eval::FinetuneClassification(
        holder.encoder(), geolife.dataset->train(), geolife.dataset->test(),
        bench::ModeLabel, 4, 2, task);
    row.micro = cls.micro_f1;
    row.macro = cls.macro_f1;
    row.recall = cls.recall_at_k;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("=== Table III: transfer across datasets (Geolife-like target) "
              "===\n");
  const auto geolife = bench::MakeGeolifeWorld();
  std::printf("Geolife-like: %zu train / %zu test trajectories, 4 transport "
              "modes\n",
              geolife.dataset->train().size(),
              geolife.dataset->test().size());

  std::vector<TransferRow> rows;
  rows.push_back(EvaluateStart("No Pre-train Geolife", geolife, "", false));
  rows.push_back(EvaluateStart("Pre-train Geolife", geolife, "", true));

  // Pre-train START on the big cities and persist checkpoints.
  for (const bool use_bj : {false, true}) {
    const auto source = use_bj ? bench::MakeBjWorld()
                               : bench::MakePortoWorld();
    auto runner = bench::MakeStartRunner(BenchStartConfig(), source);
    bench::PretrainRunner(&runner, source, bench::Table2PretrainEpochs(), "t2");
    const std::string path = "bench_cache/table3_" + source.name + ".sttn";
    (void)runner.start_model->Save(path);
    rows.push_back(EvaluateStart(source.name + "-START", geolife, path,
                                 false));
    rows.push_back(EvaluateTrembr(source.name + "-Trembr", source, geolife));
  }

  common::TablePrinter table({"Model", "MAEv", "MAPE(%)v", "RMSEv",
                              "Micro-F1^", "Macro-F1^", "Recall@2^"});
  for (const auto& row : rows) {
    table.AddRow({row.name, common::TablePrinter::Num(row.mae, 3),
                  common::TablePrinter::Num(row.mape, 2),
                  common::TablePrinter::Num(row.rmse, 3),
                  common::TablePrinter::Num(row.micro, 3),
                  common::TablePrinter::Num(row.macro, 3),
                  common::TablePrinter::Num(row.recall, 3)});
  }
  table.Print();
  std::printf("\npaper-shape check: Pre-train Geolife > No Pre-train; "
              "BJ/Porto-START > Pre-train Geolife; X-Trembr transfers "
              "poorly (worst rows).\n");
  return 0;
}
