// Reproduces Figure 4: k-nearest trajectory search precision (k = 5) as the
// detour selection proportion p_d varies from 0.1 to 0.5, for all nine
// models on both datasets.
// Paper shape: precision decreases with p_d for every model; START stays on
// top and degrades slowest; Transformer/BERT/PIM-TF/Toast trail (anisotropic
// representations without fine-tuning).
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "serve/embedding_index.h"
#include "serve/index_interface.h"

using namespace start;

namespace {

void RunWorld(const bench::CityWorld& world) {
  std::printf("\n--- %s: precision@5 vs selection proportion p_d ---\n",
              world.name.c_str());
  const std::vector<double> proportions = {0.1, 0.2, 0.3, 0.4, 0.5};
  common::TablePrinter table(
      {"model", "pd=0.1", "pd=0.2", "pd=0.3", "pd=0.4", "pd=0.5"});
  const int64_t nq = 30, nneg = 180, k = 5;
  for (const auto kind : bench::AllModels()) {
    auto runner = bench::MakeRunner(kind, world);
    bench::PretrainRunner(&runner, world, bench::Table2PretrainEpochs(), "t2");
    std::vector<std::string> row{bench::ModelName(kind)};
    for (const double pd : proportions) {
      const auto data = bench::MakeSimilarityData(world, nq, nneg, pd,
                                                  /*seed=*/90 + pd * 100);
      // Ground truth: k-NN of the original query in the database; retrieval
      // uses the detoured query (Sec. IV-D4b).
      const auto q = runner.encoder()->EmbedAll(data.queries,
                                                eval::EncodeMode::kFull);
      std::vector<traj::Trajectory> transformed;
      for (size_t i = 0; i < data.queries.size(); ++i) {
        transformed.push_back(data.database[data.gt_index[i]]);
      }
      const auto tq = runner.encoder()->EmbedAll(transformed,
                                                 eval::EncodeMode::kFull);
      const auto db = runner.encoder()->EmbedAll(data.database,
                                                 eval::EncodeMode::kFull);
      // The protocol runs through the serving-plane retrieval surface
      // (serve::KnnPrecision over an IndexInterface) — the same Top-K path
      // production queries take. The exact backend keeps this a faithful
      // Figure 4; cosine over normalized embeddings replaces the former raw
      // Euclidean scoring, which shifts absolute precision slightly but
      // preserves the paper-shape ordering.
      const int64_t ndb = static_cast<int64_t>(data.database.size());
      serve::EmbeddingIndex index(runner.encoder()->dim());
      std::vector<int64_t> ids(static_cast<size_t>(ndb));
      for (int64_t i = 0; i < ndb; ++i) ids[static_cast<size_t>(i)] = i;
      if (!index.AddBatch(ids, db).ok()) std::abort();
      const auto precision = serve::KnnPrecision(
          index, q, tq, static_cast<int64_t>(data.queries.size()), k);
      if (!precision.ok()) std::abort();
      row.push_back(common::TablePrinter::Num(*precision, 3));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[fig4] %s/%s done\n", world.name.c_str(),
                 bench::ModelName(kind).c_str());
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("=== Figure 4: k-nearest search precision vs p_d ===\n");
  {
    const auto bj = bench::MakeBjWorld();
    RunWorld(bj);
  }
  {
    const auto porto = bench::MakePortoWorld();
    RunWorld(porto);
  }
  std::printf("\npaper-shape check: precision decreases with p_d; START "
              "highest and flattest.\n");
  return 0;
}
