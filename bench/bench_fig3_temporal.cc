// Reproduces Figure 3: ETA MAPE on BJ broken down by departure time
// (weekday/weekend) and by trajectory hop count, for START, the
// "w/o Temporal" ablation and the best baseline Trembr.
// Paper shape: START < w/o Temporal and START < Trembr everywhere; the gap
// is widest around the rush peaks; mid-length trajectories are easiest.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

using namespace start;

namespace {

struct Scenario {
  std::vector<double> truth;
  std::vector<double> pred;
};

/// Buckets ETA predictions by (a) departure 3-hour block x weekday/weekend
/// and (b) hop count.
void Bucket(const std::vector<traj::Trajectory>& test,
            const eval::EtaResult& eta,
            std::vector<Scenario>* by_block_weekday,
            std::vector<Scenario>* by_block_weekend,
            std::vector<Scenario>* by_hops) {
  by_block_weekday->assign(8, {});
  by_block_weekend->assign(8, {});
  by_hops->assign(4, {});
  for (size_t i = 0; i < test.size(); ++i) {
    const auto& t = test[i];
    const int block =
        static_cast<int>(traj::HourOfDay(t.departure_time()) / 3.0);
    auto* blocks = traj::IsWeekend(t.departure_time()) ? by_block_weekend
                                                       : by_block_weekday;
    (*blocks)[block].truth.push_back(eta.true_minutes[i]);
    (*blocks)[block].pred.push_back(eta.pred_minutes[i]);
    const int hop_bucket = std::min<int>(3, static_cast<int>(t.size() / 10));
    (*by_hops)[hop_bucket].truth.push_back(eta.true_minutes[i]);
    (*by_hops)[hop_bucket].pred.push_back(eta.pred_minutes[i]);
  }
}

std::string MapeOf(const Scenario& s) {
  if (s.truth.size() < 3) return "-";
  return common::TablePrinter::Num(
      eval::ComputeRegressionMetrics(s.truth, s.pred).mape, 1);
}

}  // namespace

int main() {
  std::printf("=== Figure 3: MAPE on BJ under different scenarios ===\n");
  const auto world = bench::MakeBjWorld();
  const auto task = bench::DefaultTaskConfig();

  struct Variant {
    std::string name;
    eval::EtaResult eta;
  };
  std::vector<Variant> variants;

  // Trembr (best baseline).
  {
    auto runner = bench::MakeRunner(bench::ModelKind::kTrembr, world);
    bench::PretrainRunner(&runner, world, bench::Table2PretrainEpochs(), "t2");
    variants.push_back({"Trembr",
                        eval::FinetuneEta(runner.encoder(),
                                          world.dataset->train(),
                                          world.dataset->test(), task)});
  }
  // START w/o Temporal: no time embeddings, no interval matrix.
  {
    core::StartConfig config;
    config.d = 32;
    config.gat_heads = {4, 4, 1};
    config.encoder_layers = 2;
    config.encoder_heads = 4;
    config.max_len = 96;
    config.use_time_embedding = false;
    config.use_time_interval = false;
    auto runner = bench::MakeStartRunner(config, world);
    runner.name = "START-woTemporal";
    bench::PretrainRunner(&runner, world, 0, "fig3");
    variants.push_back({"w/o Temporal",
                        eval::FinetuneEta(runner.encoder(),
                                          world.dataset->train(),
                                          world.dataset->test(), task)});
  }
  // Full START.
  {
    auto runner = bench::MakeRunner(bench::ModelKind::kStart, world);
    bench::PretrainRunner(&runner, world, bench::Table2PretrainEpochs(), "t2");
    variants.push_back({"START",
                        eval::FinetuneEta(runner.encoder(),
                                          world.dataset->train(),
                                          world.dataset->test(), task)});
  }

  const char* blocks[8] = {"00-03", "03-06", "06-09", "09-12",
                           "12-15", "15-18", "18-21", "21-24"};
  for (const bool weekend : {false, true}) {
    std::printf("\n-- MAPE(%%) by departure time (%s) --\n",
                weekend ? "weekend" : "weekday");
    common::TablePrinter table({"model", blocks[0], blocks[1], blocks[2],
                                blocks[3], blocks[4], blocks[5], blocks[6],
                                blocks[7]});
    for (const auto& v : variants) {
      std::vector<Scenario> wd, we, hops;
      Bucket(world.dataset->test(), v.eta, &wd, &we, &hops);
      const auto& use = weekend ? we : wd;
      std::vector<std::string> row{v.name};
      for (int b = 0; b < 8; ++b) row.push_back(MapeOf(use[b]));
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf("\n-- MAPE(%%) by trajectory hops --\n");
  common::TablePrinter table({"model", "<10", "10-19", "20-29", ">=30"});
  for (const auto& v : variants) {
    std::vector<Scenario> wd, we, hops;
    Bucket(world.dataset->test(), v.eta, &wd, &we, &hops);
    std::vector<std::string> row{v.name};
    for (int b = 0; b < 4; ++b) row.push_back(MapeOf(hops[b]));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\npaper-shape check: START <= w/o Temporal and <= Trembr in "
              "most buckets, with the largest margin near the rush blocks "
              "(06-09, 15-21).\n");
  return 0;
}
