// Reproduces Figure 1: the motivating data characteristics.
//   (a) road visit-frequency skew (travel semantics),
//   (b) periodic pattern of trajectory counts per day-of-week / hour,
//   (c) irregular inter-road time-interval distribution (peak vs off-peak).
// Paper shape: visits are heavily skewed toward arterials; weekday counts
// exceed weekend counts with rush-hour peaks; interval distributions at rush
// hour shift right (same shape, different timing).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "traj/stats.h"

using namespace start;

int main() {
  std::printf("=== Figure 1: temporal regularities & travel semantics ===\n");
  const auto world = bench::MakeBjWorld();
  const auto all = world.dataset->All();
  const auto stats = traj::ComputeStats(*world.net, all);

  // --- Fig 1(a): visit-frequency skew -------------------------------------
  std::vector<int64_t> visits = stats.road_visits;
  std::sort(visits.rbegin(), visits.rend());
  int64_t total = 0;
  for (const int64_t v : visits) total += v;
  common::TablePrinter skew({"road percentile", "visit share (cum)"});
  for (const double pct : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    const size_t k = std::max<size_t>(1, static_cast<size_t>(pct * visits.size()));
    int64_t covered = 0;
    for (size_t i = 0; i < k; ++i) covered += visits[i];
    skew.AddRow({common::TablePrinter::Num(100 * pct, 0) + "%",
                 common::TablePrinter::Num(
                     100.0 * covered / std::max<int64_t>(1, total), 1) + "%"});
  }
  std::printf("\n-- Fig 1(a): road visit frequency skew --\n");
  skew.Print();
  std::printf("paper-shape check: top 10%% of roads should carry >> 10%% of "
              "visits (travel-semantics skew)\n");

  // --- Fig 1(b): periodicity ------------------------------------------------
  std::printf("\n-- Fig 1(b): trajectories per day-of-week --\n");
  const char* days[7] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  common::TablePrinter dow({"day", "#trajectories"});
  for (int d = 0; d < 7; ++d) {
    dow.AddRow({days[d], std::to_string(stats.per_day_of_week[d])});
  }
  dow.Print();
  std::printf("\n-- Fig 1(b): trajectories per hour of day --\n");
  common::TablePrinter hours({"hour", "#trajectories", "bar"});
  int64_t max_hour = 1;
  for (const int64_t h : stats.per_hour) max_hour = std::max(max_hour, h);
  for (int h = 0; h < 24; ++h) {
    hours.AddRow({std::to_string(h),
                  std::to_string(stats.per_hour[h]),
                  std::string(static_cast<size_t>(
                                  40 * stats.per_hour[h] / max_hour), '#')});
  }
  hours.Print();
  std::printf("paper-shape check: 8h and 18h peaks on weekdays; weekend "
              "(Sat/Sun) totals below weekday totals\n");

  // --- Fig 1(c): time-interval distribution ---------------------------------
  std::printf("\n-- Fig 1(c): inter-road time intervals (5 s bins) --\n");
  common::TablePrinter intervals({"interval [s]", "count"});
  for (size_t b = 0; b < stats.interval_histogram.size(); ++b) {
    const std::string label = b + 1 == stats.interval_histogram.size()
                                  ? ">= " + std::to_string(5 * b)
                                  : std::to_string(5 * b) + "-" +
                                        std::to_string(5 * (b + 1));
    intervals.AddRow({label, std::to_string(stats.interval_histogram[b])});
  }
  intervals.Print();
  // Rush vs off-peak mean interval.
  double rush_sum = 0, rush_n = 0, off_sum = 0, off_n = 0;
  for (const auto& t : all) {
    const bool rush = traj::HourOfDay(t.departure_time()) >= 7 &&
                      traj::HourOfDay(t.departure_time()) <= 9 &&
                      !traj::IsWeekend(t.departure_time());
    for (size_t i = 0; i + 1 < t.timestamps.size(); ++i) {
      const double dt = static_cast<double>(t.timestamps[i + 1] -
                                            t.timestamps[i]);
      if (rush) {
        rush_sum += dt;
        ++rush_n;
      } else {
        off_sum += dt;
        ++off_n;
      }
    }
  }
  std::printf("mean interval at morning rush: %.1f s, off-peak: %.1f s\n",
              rush_sum / std::max(1.0, rush_n),
              off_sum / std::max(1.0, off_n));
  std::printf("paper-shape check: rush-hour intervals exceed off-peak "
              "(dynamic travel times)\n");
  return 0;
}
