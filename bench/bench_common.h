#ifndef START_BENCH_BENCH_COMMON_H_
#define START_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/base.h"
#include "core/pretrain.h"
#include "core/start_encoder.h"
#include "data/dataset.h"
#include "eval/encoder.h"
#include "eval/tasks.h"
#include "roadnet/road_network.h"
#include "traj/traffic_model.h"

namespace start::bench {

/// \brief Global scale knob: START_BENCH_SCALE multiplies dataset sizes and
/// training epochs (default 1.0 reruns the whole suite on a laptop CPU in
/// minutes; the paper's full scale corresponds to roughly 500x).
double BenchScale();

/// Shared model width used by every bench (paper: d = 256, L2 = 6; we scale
/// to d = 32, L2 = 2 per DESIGN.md).
struct BenchModelConfig {
  int64_t d = 32;
  int64_t encoder_layers = 2;
  int64_t encoder_heads = 4;
  std::vector<int64_t> gat_heads = {4, 4, 1};
  int64_t max_len = 96;
};

/// \brief A fully-built synthetic city with its trajectory corpus: the bench
/// counterpart of one dataset row of Table I.
struct CityWorld {
  std::string name;
  std::unique_ptr<roadnet::RoadNetwork> net;
  std::unique_ptr<traj::TrafficModel> traffic;
  std::unique_ptr<data::TrajDataset> dataset;
  std::unique_ptr<roadnet::TransferProbability> transfer;
  int64_t num_drivers = 0;
};

/// BJ-like world: denser grid, binary occupied/vacant task (Sec. IV-D3).
CityWorld MakeBjWorld();
/// Porto-like world: coarser heterogeneous grid, driver-id multi-class task.
CityWorld MakePortoWorld();
/// Geolife-like world: small corpus with 4 transport modes (Table III).
CityWorld MakeGeolifeWorld();

/// The nine models of Table II.
enum class ModelKind {
  kTraj2Vec,
  kT2Vec,
  kTrembr,
  kTransformer,
  kBert,
  kPim,
  kPimTf,
  kToast,
  kStart,
};

std::string ModelName(ModelKind kind);
std::vector<ModelKind> AllModels();

/// \brief Owns one model (START or baseline) plus its encoder adapter.
struct ModelRunner {
  std::string name;
  // Exactly one of the two is set.
  std::unique_ptr<core::StartModel> start_model;
  std::unique_ptr<core::StartEncoder> start_encoder;
  std::unique_ptr<baselines::SequenceBaseline> baseline;

  eval::TrajectoryEncoder* encoder() {
    return start_model != nullptr
               ? static_cast<eval::TrajectoryEncoder*>(start_encoder.get())
               : static_cast<eval::TrajectoryEncoder*>(baseline.get());
  }
  nn::Module* module() {
    return start_model != nullptr
               ? static_cast<nn::Module*>(start_model.get())
               : static_cast<nn::Module*>(baseline.get());
  }
};

/// Builds an untrained model of the given kind for a world. `config_override`
/// lets ablation/sensitivity benches tweak the START architecture.
ModelRunner MakeRunner(ModelKind kind, const CityWorld& world,
                       const BenchModelConfig& config = {},
                       uint64_t seed = 17);

/// Builds a START runner from an explicit StartConfig (ablation variants).
ModelRunner MakeStartRunner(const core::StartConfig& config,
                            const CityWorld& world, uint64_t seed = 17);

/// \brief Pre-trains a runner on the world's training split, with transparent
/// checkpoint caching under ./bench_cache (set START_BENCH_CACHE=0 to
/// disable). `epochs <= 0` uses the bench default scaled by BenchScale().
void PretrainRunner(ModelRunner* runner, const CityWorld& world,
                    int64_t epochs = 0, const std::string& cache_tag = "");

/// Bench-default pretraining epochs (scaled) for the secondary sweeps.
int64_t DefaultPretrainEpochs();

/// Pretraining epochs for the headline Table II protocol (and the benches
/// that reuse its cached checkpoints). Larger than the sweep default because
/// the deeper START stack keeps improving past the baselines' plateau, as in
/// the paper's 30-epoch schedule.
int64_t Table2PretrainEpochs();

/// Bench-default task config for fine-tuning (scaled).
eval::TaskConfig DefaultTaskConfig();

/// START pretraining config used by the benches (aug pair, λ, τ as paper).
core::PretrainConfig DefaultStartPretrainConfig(int64_t epochs);

/// Label functions for the two classification tasks.
int64_t OccupancyLabel(const traj::Trajectory& t);
int64_t DriverLabel(const traj::Trajectory& t);
int64_t ModeLabel(const traj::Trajectory& t);

/// \brief Detour query/database sets for the similarity protocols
/// (Sec. IV-D4): `queries[i]`'s ground truth is `database[gt[i]]`; the rest
/// of the database are detoured negatives.
struct SimilarityBenchData {
  std::vector<traj::Trajectory> queries;
  std::vector<traj::Trajectory> database;
  std::vector<int64_t> gt_index;
};

/// Builds the detour protocol data from a world's test split.
/// `select_proportion` is the paper's p_d.
SimilarityBenchData MakeSimilarityData(const CityWorld& world,
                                       int64_t num_queries,
                                       int64_t num_negatives,
                                       double select_proportion = 0.2,
                                       uint64_t seed = 71);

}  // namespace start::bench

#endif  // START_BENCH_BENCH_COMMON_H_
