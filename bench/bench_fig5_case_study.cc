// Reproduces Figure 5 (qualitative): top-3 similar trajectories retrieved by
// START vs Trembr for sample queries. Since we cannot draw maps, the harness
// reports quantitative proxies of "visually similar": road-set Jaccard
// overlap with the query and origin/destination displacement.
// Paper shape: START's top-3 overlap the query more and deviate less than
// Trembr's.
#include <cmath>
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "common/table.h"
#include "sim/search.h"
#include "sim/similarity.h"

using namespace start;

namespace {

double Jaccard(const traj::Trajectory& a, const traj::Trajectory& b) {
  const std::set<int64_t> sa(a.roads.begin(), a.roads.end());
  const std::set<int64_t> sb(b.roads.begin(), b.roads.end());
  int64_t inter = 0;
  for (const int64_t r : sa) inter += sb.count(r);
  return static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size() - inter);
}

double OdDisplacement(const roadnet::RoadNetwork& net,
                      const traj::Trajectory& a, const traj::Trajectory& b) {
  const auto& ao = net.segment(a.roads.front());
  const auto& bo = net.segment(b.roads.front());
  const auto& ad = net.segment(a.roads.back());
  const auto& bd = net.segment(b.roads.back());
  return 0.5 * (std::hypot(ao.MidX() - bo.MidX(), ao.MidY() - bo.MidY()) +
                std::hypot(ad.MidX() - bd.MidX(), ad.MidY() - bd.MidY()));
}

}  // namespace

int main() {
  std::printf("=== Figure 5: top-3 similar trajectories, START vs Trembr "
              "===\n");
  const auto world = bench::MakePortoWorld();
  auto start_runner = bench::MakeRunner(bench::ModelKind::kStart, world);
  bench::PretrainRunner(&start_runner, world, bench::Table2PretrainEpochs(), "t2");
  auto trembr_runner = bench::MakeRunner(bench::ModelKind::kTrembr, world);
  bench::PretrainRunner(&trembr_runner, world, bench::Table2PretrainEpochs(), "t2");

  // Database: test split; queries: a few held-out test trajectories.
  std::vector<traj::Trajectory> database = world.dataset->test();
  const int64_t num_queries = std::min<size_t>(5, database.size() / 10);
  std::vector<traj::Trajectory> queries(database.begin(),
                                        database.begin() + num_queries);
  database.erase(database.begin(), database.begin() + num_queries);

  common::TablePrinter table({"query", "model", "rank", "jaccard",
                              "OD displacement [m]"});
  double start_jaccard = 0.0, trembr_jaccard = 0.0;
  for (const auto* runner : {&start_runner, &trembr_runner}) {
    auto* enc = const_cast<bench::ModelRunner*>(runner)->encoder();
    const auto q = enc->EmbedAll(queries, eval::EncodeMode::kFull);
    const auto db = enc->EmbedAll(database, eval::EncodeMode::kFull);
    const int64_t d = enc->dim();
    for (int64_t i = 0; i < num_queries; ++i) {
      const auto top = sim::TopK(
          static_cast<int64_t>(database.size()), 3, [&](int64_t j) {
            return sim::EmbeddingDistance(q.data() + i * d,
                                          db.data() + j * d, d);
          });
      for (size_t r = 0; r < top.size(); ++r) {
        const double jac = Jaccard(queries[static_cast<size_t>(i)],
                                   database[static_cast<size_t>(top[r])]);
        const double od = OdDisplacement(*world.net,
                                         queries[static_cast<size_t>(i)],
                                         database[static_cast<size_t>(top[r])]);
        if (runner == &start_runner) {
          start_jaccard += jac;
        } else {
          trembr_jaccard += jac;
        }
        table.AddRow({"traj-" + std::to_string(i),
                      const_cast<bench::ModelRunner*>(runner)->name,
                      std::to_string(r + 1),
                      common::TablePrinter::Num(jac, 3),
                      common::TablePrinter::Num(od, 0)});
      }
    }
  }
  table.Print();
  start_jaccard /= static_cast<double>(3 * num_queries);
  trembr_jaccard /= static_cast<double>(3 * num_queries);
  std::printf("\nmean top-3 Jaccard overlap: START %.3f vs Trembr %.3f\n",
              start_jaccard, trembr_jaccard);
  std::printf("paper-shape check: START's retrieved trajectories overlap the "
              "query more (shape/OD similar), as in the paper's map plots.\n");
  return 0;
}
