// Streaming-ingestion benchmark: drives the live pipeline end to end — GPS
// point streams through HMM map matching, micro-batched frozen-engine
// embedding, and in-order HNSW upserts — and emits BENCH_stream.json for CI
// tracking.
//
// Three measurements:
//  1. Pure ingest: trajectories/sec through the full match -> embed ->
//     upsert pipeline (hard gate: >= 1000 trajs/sec), with per-stage
//     p50/p95 latencies.
//  2. Mixed load: a second ingest phase while a query thread hammers the
//     same HNSW index — concurrent query qps and p50/p95 latency (the p95
//     is regression-gated, lower-is-better, vs the committed baseline).
//  3. Retrieval quality under streaming writes: recall@10 of the quiesced
//     HNSW index against an exact oracle built from the very same
//     (id, embedding) pairs the pipeline ingested (hard gate: >= 0.95),
//     plus the drift monitor's window statistics over the whole run and
//     the pipeline's accounting identity (hard gate: every accepted item
//     accounted ingested/failed/dropped).
//
// OpenMP is pinned to 1 thread so the numbers isolate the pipeline
// mechanics (stage workers, queues, coalescing) instead of kernel-internal
// parallelism.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target bench_stream
//   ./build/bench_stream
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/start_model.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "serve/adaptation.h"
#include "serve/drift_monitor.h"
#include "serve/embedding_index.h"
#include "serve/frozen_encoder.h"
#include "serve/hnsw_index.h"
#include "serve/stream_pipeline.h"
#include "traj/map_matching.h"
#include "traj/trip_generator.h"

namespace {

using start::common::Rng;
using start::common::Stopwatch;

struct World {
  std::unique_ptr<start::roadnet::RoadNetwork> net;
  std::unique_ptr<start::traj::TrafficModel> traffic;
  std::unique_ptr<start::roadnet::TransferProbability> transfer;
  std::vector<start::traj::Trajectory> corpus;
};

World BuildWorld() {
  World w;
  // Streaming-representative scale: a mid-size city — map matching scans
  // segment geometry per GPS fix, so the city size is the knob that makes
  // the match stage (the CPU-bound one) realistic rather than free.
  w.net = std::make_unique<start::roadnet::RoadNetwork>(
      start::roadnet::BuildSyntheticCity(
          {.grid_width = 12, .grid_height = 12, .seed = 51}));
  w.traffic = std::make_unique<start::traj::TrafficModel>(
      w.net.get(), start::traj::TrafficModel::Config{});
  start::traj::TripGenerator::Config config;
  config.num_drivers = 12;
  config.num_days = 6;
  config.trips_per_driver_day = 4.0;
  config.seed = 52;
  start::traj::TripGenerator gen(w.traffic.get(), config);
  start::data::DatasetConfig ds;
  ds.min_length = 6;
  ds.min_user_trajectories = 2;
  w.corpus = start::data::TrajDataset::FromCorpus(*w.net, gen.Generate(), ds)
                 .All();
  w.transfer = std::make_unique<start::roadnet::TransferProbability>(
      start::roadnet::TransferProbability::FromTrajectories(*w.net, [&] {
        std::vector<std::vector<int64_t>> seqs;
        for (const auto& t : w.corpus) seqs.push_back(t.roads);
        return seqs;
      }()));
  return w;
}

/// `passes` noisy GPS replays of the corpus, with unique ids per pass.
std::vector<start::serve::StreamItem> MakeStream(const World& w,
                                                 int64_t passes,
                                                 int64_t id_base,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<start::serve::StreamItem> items;
  for (int64_t pass = 0; pass < passes; ++pass) {
    for (size_t i = 0; i < w.corpus.size(); ++i) {
      start::serve::StreamItem item;
      item.id = id_base + pass * 100000 + static_cast<int64_t>(i);
      item.gps = start::traj::SimulateGps(*w.net, w.corpus[i],
                                          /*sample_interval_s=*/30.0,
                                          /*noise_m=*/10.0, &rng);
      if (item.gps.points.size() >= 2) items.push_back(std::move(item));
    }
  }
  return items;
}

double Percentile(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const size_t idx = static_cast<size_t>(static_cast<double>(ms.size()) * p);
  return ms[std::min(idx, ms.size() - 1)];
}

}  // namespace

int main() {
#ifdef _OPENMP
  omp_set_num_threads(1);
#endif
  std::printf("=== bench_stream: streaming ingestion pipeline ===\n");
  const World w = BuildWorld();
  std::printf("corpus: %zu trips over %lld road segments\n", w.corpus.size(),
              static_cast<long long>(w.net->num_segments()));

  start::core::StartConfig config;
  config.d = 32;
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.gat_layers = 2;
  config.gat_heads = {4, 1};
  config.max_len = 160;
  Rng rng(53);
  start::core::StartModel model(config, w.net.get(), w.transfer.get(), &rng);
  const std::string checkpoint = "bench_stream_model.sttn";
  {
    const auto st = start::core::SaveModelCheckpoint(
        checkpoint, model, start::core::HashStartConfig(config));
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  auto loaded = start::serve::FrozenEncoder::Load(checkpoint, config,
                                                  w.net.get(),
                                                  w.transfer.get());
  if (!loaded.ok()) {
    std::fprintf(stderr, "frozen load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto frozen = std::move(loaded).value();
  const int64_t d = frozen->dim();

  start::serve::HnswIndex index(d);
  start::serve::DriftConfig drift_config;
  drift_config.window_size = 256;
  start::serve::DriftMonitor drift(d, drift_config);

  start::serve::StreamConfig stream_config;
  stream_config.match_workers = 2;
  stream_config.embed_workers = 2;
  stream_config.service.max_batch_size = 16;
  stream_config.service.batch_deadline_us = 100;
  start::serve::StreamPipeline pipeline(frozen.get(), w.net.get(), &index,
                                        stream_config, &drift);
  // The oracle mirror: every ingested (id, row) also lands in the exact
  // index, so recall is measured against exactly what was served.
  start::serve::EmbeddingIndex exact(d);
  std::vector<float> ingested_rows;  // sample pool for query vectors
  std::mutex rows_mu;
  pipeline.SetOnIngested([&](int64_t id, const start::traj::Trajectory&,
                             const start::serve::EmbeddingRow& row) {
    if (!exact.Add(id, row.data(), row.dim()).ok()) std::abort();
    std::lock_guard<std::mutex> lock(rows_mu);
    ingested_rows.insert(ingested_rows.end(), row.data(),
                         row.data() + row.dim());
  });

  // 1. Pure ingest phase.
  const auto phase_a = MakeStream(w, /*passes=*/6, /*id_base=*/0, 54);
  Stopwatch ingest_timer;
  for (const auto& item : phase_a) {
    if (!pipeline.Push(item).ok()) {
      std::fprintf(stderr, "push rejected mid-stream\n");
      return 1;
    }
  }
  pipeline.Flush();
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  const auto stats_a = pipeline.stats();
  const double ingest_rate =
      static_cast<double>(stats_a.ingested()) / ingest_seconds;
  std::printf("pure ingest: %lld trajs in %.2fs -> %.0f trajs/sec "
              "(match p95 %.3fms, embed p95 %.3fms, upsert p95 %.3fms)\n",
              static_cast<long long>(stats_a.ingested()), ingest_seconds,
              ingest_rate, stats_a.match.p95_ms, stats_a.embed.p95_ms,
              stats_a.upsert.p95_ms);

  // 2. Mixed phase: keep ingesting while a query thread hits the index.
  const auto phase_b = MakeStream(w, /*passes=*/3, /*id_base=*/50000000, 55);
  std::atomic<bool> stop_queries{false};
  std::vector<double> query_ms;
  std::thread querier([&] {
    Rng qrng(56);
    std::vector<float> q(static_cast<size_t>(d));
    while (!stop_queries.load(std::memory_order_acquire)) {
      {
        std::lock_guard<std::mutex> lock(rows_mu);
        const int64_t rows =
            static_cast<int64_t>(ingested_rows.size()) / d;
        const int64_t pick = qrng.UniformInt(rows);
        for (int64_t j = 0; j < d; ++j) {
          q[static_cast<size_t>(j)] =
              ingested_rows[static_cast<size_t>(pick * d + j)] +
              static_cast<float>(qrng.Normal(0.0, 0.01));
        }
      }
      Stopwatch qt;
      const auto result = index.Query(q.data(), d, 10);
      if (!result.ok()) std::abort();
      query_ms.push_back(qt.ElapsedMillis());
    }
  });
  Stopwatch mixed_timer;
  for (const auto& item : phase_b) {
    if (!pipeline.Push(item).ok()) {
      std::fprintf(stderr, "push rejected mid-stream\n");
      return 1;
    }
  }
  pipeline.Flush();
  const double mixed_seconds = mixed_timer.ElapsedSeconds();
  stop_queries.store(true, std::memory_order_release);
  querier.join();
  const auto stats_b = pipeline.stats();
  const int64_t mixed_ingested = stats_b.ingested() - stats_a.ingested();
  const double mixed_ingest_rate =
      static_cast<double>(mixed_ingested) / mixed_seconds;
  const double query_qps =
      static_cast<double>(query_ms.size()) / mixed_seconds;
  const double query_p50 = Percentile(query_ms, 0.50);
  const double query_p95 = Percentile(query_ms, 0.95);
  std::printf("mixed load: ingest %.0f trajs/sec while serving %.0f qps "
              "(query p50 %.3fms, p95 %.3fms)\n",
              mixed_ingest_rate, query_qps, query_p50, query_p95);

  pipeline.Drain();
  const auto stats = pipeline.stats();
  const bool accounted =
      stats.in_flight == 0 &&
      stats.accepted == stats.ingested() + stats.total_failed() +
                            stats.embed.dropped + stats.upsert.dropped;

  // 3. Recall of the quiesced streamed index vs the exact oracle.
  const int64_t kQueries = 200;
  Rng recall_rng(57);
  double recall_sum = 0.0;
  for (int64_t qi = 0; qi < kQueries; ++qi) {
    std::vector<float> q(static_cast<size_t>(d));
    const int64_t rows = static_cast<int64_t>(ingested_rows.size()) / d;
    const int64_t pick = recall_rng.UniformInt(rows);
    for (int64_t j = 0; j < d; ++j) {
      q[static_cast<size_t>(j)] =
          ingested_rows[static_cast<size_t>(pick * d + j)] +
          static_cast<float>(recall_rng.Normal(0.0, 0.05));
    }
    const auto truth = exact.Query(q.data(), d, 10);
    const auto got = index.Query(q.data(), d, 10);
    if (!truth.ok() || !got.ok()) std::abort();
    int64_t overlap = 0;
    for (const auto& nb : *got) {
      for (const auto& tb : *truth) {
        if (nb.id == tb.id) {
          ++overlap;
          break;
        }
      }
    }
    recall_sum +=
        static_cast<double>(overlap) / static_cast<double>(truth->size());
  }
  const double recall = recall_sum / static_cast<double>(kQueries);
  std::printf("quiesced recall@10 vs exact oracle: %.4f over %lld rows\n",
              recall, static_cast<long long>(index.size()));
  std::printf("drift: %lld windows, %lld events\n",
              static_cast<long long>(drift.windows_completed()),
              static_cast<long long>(drift.drift_events()));

  // 4. The adaptation loop end to end: a controller boots from the same
  //    checkpoint, ingests a replay stream, and a triggered round
  //    warm-start fine-tunes off it, rebuilds the index under the new
  //    engine, and hot-swaps with catch-up — then the post-swap serving
  //    index must hold recall@10 >= 0.95 against an exact oracle of the
  //    NEW engine's own embeddings (hard gate).
  start::serve::AdaptationConfig adapt;
  adapt.model = config;
  adapt.artifact_dir = ".";
  adapt.base_checkpoint = checkpoint;
  adapt.finetune.epochs = 1;
  adapt.finetune.batch_size = 16;
  adapt.finetune.num_workers = 0;
  adapt.drift.window_size = 1 << 30;  // the round is triggered explicitly
  adapt.stream = stream_config;
  adapt.corpus_capacity = 4096;
  adapt.min_retrain_corpus = 32;
  auto created = start::serve::AdaptationController::Create(
      adapt, w.net.get(), w.transfer.get(), w.traffic.get());
  if (!created.ok()) {
    std::fprintf(stderr, "adaptation boot failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto controller = std::move(created.value());
  const auto phase_c = MakeStream(w, /*passes=*/2, /*id_base=*/90000000, 58);
  for (const auto& item : phase_c) {
    if (!controller->Push(item).ok()) {
      std::fprintf(stderr, "adaptation push rejected mid-stream\n");
      return 1;
    }
  }
  controller->Flush();
  Stopwatch round_timer;
  controller->TriggerRetrain();
  if (!controller->WaitUntilIdle(/*timeout_us=*/600'000'000)) {
    std::fprintf(stderr, "adaptation round never went idle\n");
    return 1;
  }
  const double round_seconds = round_timer.ElapsedSeconds();
  const auto adapt_stats = controller->stats();
  if (adapt_stats.rounds_completed != 1 || adapt_stats.generation != 1) {
    std::fprintf(stderr, "adaptation round failed: %s\n",
                 adapt_stats.last_error.c_str());
    return 1;
  }
  // Post-swap oracle: re-match + re-encode every served id with the NEW
  // engine — batch invariance makes these rows bitwise what the rebuild
  // inserted, so recall isolates the swapped index's graph quality.
  const auto bundle = controller->engine();
  const start::traj::HmmMapMatcher matcher(w.net.get(),
                                           stream_config.matcher);
  std::vector<int64_t> served_ids;
  std::vector<start::traj::Trajectory> served;
  for (const auto& item : phase_c) {
    if (!bundle.index->Contains(item.id)) continue;
    served_ids.push_back(item.id);
    served.push_back(matcher.MatchTrajectory(item.gps));
  }
  const std::vector<float> post_rows =
      bundle.encoder->EmbedAll(served, stream_config.mode);
  start::serve::EmbeddingIndex post_exact(d);
  if (!post_exact.AddBatch(served_ids, post_rows).ok()) std::abort();
  Rng post_rng(59);
  double post_sum = 0.0;
  for (int64_t qi = 0; qi < kQueries; ++qi) {
    std::vector<float> q(static_cast<size_t>(d));
    const int64_t rows = static_cast<int64_t>(post_rows.size()) / d;
    const int64_t pick = post_rng.UniformInt(rows);
    for (int64_t j = 0; j < d; ++j) {
      q[static_cast<size_t>(j)] =
          post_rows[static_cast<size_t>(pick * d + j)] +
          static_cast<float>(post_rng.Normal(0.0, 0.05));
    }
    const auto truth = post_exact.Query(q.data(), d, 10);
    const auto got = bundle.index->Query(q.data(), d, 10);
    if (!truth.ok() || !got.ok()) std::abort();
    int64_t overlap = 0;
    for (const auto& nb : *got) {
      for (const auto& tb : *truth) {
        if (nb.id == tb.id) {
          ++overlap;
          break;
        }
      }
    }
    post_sum +=
        static_cast<double>(overlap) / static_cast<double>(truth->size());
  }
  const double post_swap_recall = post_sum / static_cast<double>(kQueries);
  std::printf("adaptation: round %.2fs (gen %lld, %lld catch-up items), "
              "post-swap recall@10 %.4f over %lld rows\n",
              round_seconds, static_cast<long long>(adapt_stats.generation),
              static_cast<long long>(adapt_stats.catch_up_items),
              post_swap_recall,
              static_cast<long long>(bundle.index->size()));

  std::FILE* json = std::fopen("BENCH_stream.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_stream.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(json,
               "  \"stream\": {\"pushed\": %lld, \"accepted\": %lld, "
               "\"ingested\": %lld, \"failed\": %lld, \"dropped\": %lld},\n",
               static_cast<long long>(stats.pushed),
               static_cast<long long>(stats.accepted),
               static_cast<long long>(stats.ingested()),
               static_cast<long long>(stats.total_failed()),
               static_cast<long long>(stats.total_dropped()));
  std::fprintf(json, "  \"stream_ingest_rate\": %.1f,\n", ingest_rate);
  std::fprintf(json,
               "  \"stage_latency_ms\": {\"match\": {\"p50\": %.4f, \"p95\": "
               "%.4f}, \"embed\": {\"p50\": %.4f, \"p95\": %.4f}, \"upsert\": "
               "{\"p50\": %.4f, \"p95\": %.4f}},\n",
               stats.match.p50_ms, stats.match.p95_ms, stats.embed.p50_ms,
               stats.embed.p95_ms, stats.upsert.p50_ms, stats.upsert.p95_ms);
  std::fprintf(json, "  \"mixed_ingest_rate\": %.1f,\n", mixed_ingest_rate);
  std::fprintf(json, "  \"mixed_query_qps\": %.1f,\n", query_qps);
  std::fprintf(json,
               "  \"mixed_query_latency_ms\": {\"p50\": %.4f, \"p95\": "
               "%.4f},\n",
               query_p50, query_p95);
  std::fprintf(json, "  \"recall_at_10_vs_exact\": %.4f,\n", recall);
  std::fprintf(json, "  \"index_rows\": %lld,\n",
               static_cast<long long>(index.size()));
  std::fprintf(json, "  \"drift_windows\": %lld,\n",
               static_cast<long long>(drift.windows_completed()));
  std::fprintf(json, "  \"drift_events\": %lld,\n",
               static_cast<long long>(drift.drift_events()));
  std::fprintf(json,
               "  \"adaptation\": {\"round_seconds\": %.2f, "
               "\"generation\": %lld, \"catch_up_items\": %lld, "
               "\"index_rows\": %lld},\n",
               round_seconds, static_cast<long long>(adapt_stats.generation),
               static_cast<long long>(adapt_stats.catch_up_items),
               static_cast<long long>(bundle.index->size()));
  std::fprintf(json, "  \"post_swap_recall_at_10\": %.4f,\n",
               post_swap_recall);
  std::fprintf(json, "  \"accounting_ok\": %s\n", accounted ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_stream.json\n");

  // Acceptance gates.
  if (ingest_rate < 1000.0) {
    std::fprintf(stderr,
                 "GATE FAILED: ingest rate %.0f trajs/sec < 1000\n",
                 ingest_rate);
    return 1;
  }
  if (recall < 0.95) {
    std::fprintf(stderr, "GATE FAILED: recall@10 %.4f < 0.95\n", recall);
    return 1;
  }
  if (post_swap_recall < 0.95) {
    std::fprintf(stderr,
                 "GATE FAILED: post-swap recall@10 %.4f < 0.95\n",
                 post_swap_recall);
    return 1;
  }
  if (!accounted) {
    std::fprintf(stderr, "GATE FAILED: pipeline accounting identity "
                         "violated\n");
    return 1;
  }
  if (drift.windows_completed() < 4) {
    std::fprintf(stderr, "GATE FAILED: drift monitor saw %lld windows "
                         "(stream too small?)\n",
                 static_cast<long long>(drift.windows_completed()));
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
