#include "bench_common.h"

#include <filesystem>
#include <map>

#include "baselines/node2vec.h"
#include "baselines/pim.h"
#include "baselines/seq2seq.h"
#include "baselines/transformer.h"
#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "data/detour.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

namespace start::bench {

double BenchScale() {
  return common::GetEnvDouble("START_BENCH_SCALE", 1.0);
}

namespace {

int64_t Scaled(int64_t base) {
  return std::max<int64_t>(1, static_cast<int64_t>(base * BenchScale()));
}

CityWorld BuildWorld(std::string name, roadnet::SyntheticCityConfig city_cfg,
                     traj::TripGenerator::Config trip_cfg,
                     data::DatasetConfig ds_cfg) {
  CityWorld world;
  world.name = std::move(name);
  world.net = std::make_unique<roadnet::RoadNetwork>(
      roadnet::BuildSyntheticCity(city_cfg));
  traj::TrafficModel::Config traffic_cfg;
  traffic_cfg.seed = city_cfg.seed + 1;
  world.traffic =
      std::make_unique<traj::TrafficModel>(world.net.get(), traffic_cfg);
  traj::TripGenerator gen(world.traffic.get(), trip_cfg);
  world.dataset = std::make_unique<data::TrajDataset>(
      data::TrajDataset::FromCorpus(*world.net, gen.Generate(), ds_cfg));
  world.transfer = std::make_unique<roadnet::TransferProbability>(
      roadnet::TransferProbability::FromTrajectories(
          *world.net, world.dataset->TrainRoadSequences()));
  world.num_drivers = world.dataset->num_drivers();
  return world;
}

}  // namespace

CityWorld MakeBjWorld() {
  roadnet::SyntheticCityConfig city;
  city.grid_width = 9;
  city.grid_height = 9;
  city.arterial_every = 4;
  city.seed = 11;
  traj::TripGenerator::Config trips;
  trips.num_drivers = Scaled(14);
  trips.num_days = 12;
  trips.trips_per_driver_day = 5.0;
  trips.vacant_fraction = 0.45;
  trips.seed = 12;
  data::DatasetConfig ds;
  ds.min_length = 6;
  ds.max_length = 96;
  ds.min_user_trajectories = 20;
  return BuildWorld("BJ", city, trips, ds);
}

CityWorld MakePortoWorld() {
  roadnet::SyntheticCityConfig city;
  city.grid_width = 10;
  city.grid_height = 6;
  city.arterial_every = 3;
  city.block_length_m = 260.0;
  city.diagonal_fraction = 0.12;
  city.seed = 21;
  traj::TripGenerator::Config trips;
  trips.num_drivers = Scaled(16);
  trips.num_days = 12;
  trips.trips_per_driver_day = 5.0;
  trips.vacant_fraction = 0.3;
  trips.driver_preference = 0.8;  // driver-id task needs route identity
  trips.seed = 22;
  data::DatasetConfig ds;
  ds.min_length = 6;
  ds.max_length = 96;
  ds.min_user_trajectories = 20;
  return BuildWorld("Porto", city, trips, ds);
}

CityWorld MakeGeolifeWorld() {
  roadnet::SyntheticCityConfig city;
  city.grid_width = 6;
  city.grid_height = 6;
  city.seed = 31;
  traj::TripGenerator::Config trips;
  trips.num_drivers = 6;
  trips.num_days = 8;
  trips.trips_per_driver_day = 3.0;
  trips.seed = 32;
  data::DatasetConfig ds;
  ds.min_length = 5;
  ds.max_length = 96;
  ds.min_user_trajectories = 5;
  CityWorld world = BuildWorld("Geolife", city, trips, ds);
  // Assign the four transport modes (Car/Taxi, Walk, Bike, Bus) by slowing
  // trips down per mode: the mode is recoverable from temporal density,
  // which is exactly the Geolife signal (Sec. IV-E2).
  common::Rng rng(33);
  auto retime = [&](traj::Trajectory* t) {
    const int64_t mode = rng.UniformInt(4);
    // Speed relative to car: walk ~0.15, bike ~0.4, bus ~0.7.
    const double factor[4] = {1.0, 6.7, 2.5, 1.4};
    t->transport_mode = static_cast<int32_t>(mode);
    const int64_t dep = t->departure_time();
    for (auto& ts : t->timestamps) {
      ts = dep + static_cast<int64_t>((ts - dep) * factor[mode]);
    }
    t->end_time = dep +
                  static_cast<int64_t>((t->end_time - dep) * factor[mode]);
  };
  // Rebuild the dataset with modes stamped on every split.
  std::vector<traj::Trajectory> all = world.dataset->All();
  for (auto& t : all) retime(&t);
  data::DatasetConfig ds2 = ds;
  world.dataset = std::make_unique<data::TrajDataset>(
      data::TrajDataset::FromCorpus(*world.net, std::move(all), ds2));
  world.transfer = std::make_unique<roadnet::TransferProbability>(
      roadnet::TransferProbability::FromTrajectories(
          *world.net, world.dataset->TrainRoadSequences()));
  return world;
}

std::string ModelName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTraj2Vec:
      return "traj2vec";
    case ModelKind::kT2Vec:
      return "t2vec";
    case ModelKind::kTrembr:
      return "Trembr";
    case ModelKind::kTransformer:
      return "Transformer";
    case ModelKind::kBert:
      return "BERT";
    case ModelKind::kPim:
      return "PIM";
    case ModelKind::kPimTf:
      return "PIM-TF";
    case ModelKind::kToast:
      return "Toast";
    case ModelKind::kStart:
      return "START";
  }
  return "?";
}

std::vector<ModelKind> AllModels() {
  return {ModelKind::kTraj2Vec, ModelKind::kT2Vec,  ModelKind::kTrembr,
          ModelKind::kTransformer, ModelKind::kBert, ModelKind::kPim,
          ModelKind::kPimTf,    ModelKind::kToast,  ModelKind::kStart};
}

namespace {

std::vector<float> CachedNode2Vec(const CityWorld& world, int64_t dim) {
  // node2vec is deterministic given (net, config); recompute per process but
  // memoise within the process.
  static std::map<std::string, std::vector<float>> cache;
  const std::string key = world.name + "/" + std::to_string(dim) + "/" +
                          std::to_string(world.net->num_segments());
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  baselines::Node2VecConfig config;
  config.dim = dim;
  config.epochs = 2;
  config.seed = 41;
  auto emb = baselines::TrainNode2Vec(*world.net, config);
  cache.emplace(key, emb);
  return emb;
}

}  // namespace

ModelRunner MakeStartRunner(const core::StartConfig& config,
                            const CityWorld& world, uint64_t seed) {
  ModelRunner runner;
  runner.name = "START";
  common::Rng rng(seed);
  runner.start_model = std::make_unique<core::StartModel>(
      config, world.net.get(), world.transfer.get(), &rng);
  runner.start_encoder =
      std::make_unique<core::StartEncoder>(runner.start_model.get());
  return runner;
}

ModelRunner MakeRunner(ModelKind kind, const CityWorld& world,
                       const BenchModelConfig& config, uint64_t seed) {
  ModelRunner runner;
  runner.name = ModelName(kind);
  common::Rng rng(seed);
  switch (kind) {
    case ModelKind::kStart: {
      core::StartConfig sc;
      sc.d = config.d;
      sc.gat_heads = config.gat_heads;
      sc.gat_layers = static_cast<int64_t>(config.gat_heads.size());
      sc.encoder_layers = config.encoder_layers;
      sc.encoder_heads = config.encoder_heads;
      sc.max_len = config.max_len;
      return MakeStartRunner(sc, world, seed);
    }
    case ModelKind::kTraj2Vec:
      runner.baseline = std::make_unique<baselines::Traj2Vec>(
          baselines::Seq2SeqConfig{config.d, seed}, world.net.get(), &rng);
      break;
    case ModelKind::kT2Vec:
      runner.baseline = std::make_unique<baselines::T2Vec>(
          baselines::Seq2SeqConfig{config.d, seed}, world.net.get(), &rng);
      break;
    case ModelKind::kTrembr:
      runner.baseline = std::make_unique<baselines::Trembr>(
          baselines::Seq2SeqConfig{config.d, seed}, world.net.get(), &rng);
      break;
    case ModelKind::kTransformer:
    case ModelKind::kBert:
    case ModelKind::kToast: {
      baselines::TransformerBaselineConfig tc;
      tc.d = config.d;
      tc.layers = config.encoder_layers;
      tc.heads = config.encoder_heads;
      tc.max_len = config.max_len + 2;
      if (kind == ModelKind::kToast) {
        tc.road_embedding_init = CachedNode2Vec(world, config.d);
      }
      if (kind == ModelKind::kTransformer) {
        runner.baseline = std::make_unique<baselines::TransformerMlm>(
            tc, world.net.get(), &rng);
      } else if (kind == ModelKind::kBert) {
        runner.baseline =
            std::make_unique<baselines::Bert>(tc, world.net.get(), &rng);
      } else {
        runner.baseline =
            std::make_unique<baselines::Toast>(tc, world.net.get(), &rng);
      }
      break;
    }
    case ModelKind::kPim:
    case ModelKind::kPimTf: {
      baselines::PimConfig pc;
      pc.d = config.d;
      pc.layers = config.encoder_layers;
      pc.heads = config.encoder_heads;
      pc.max_len = config.max_len + 2;
      pc.road_embedding_init = CachedNode2Vec(world, config.d);
      if (kind == ModelKind::kPim) {
        runner.baseline =
            std::make_unique<baselines::Pim>(pc, world.net.get(), &rng);
      } else {
        runner.baseline =
            std::make_unique<baselines::PimTf>(pc, world.net.get(), &rng);
      }
      break;
    }
  }
  return runner;
}

int64_t DefaultPretrainEpochs() { return Scaled(10); }

int64_t Table2PretrainEpochs() { return Scaled(25); }

eval::TaskConfig DefaultTaskConfig() {
  eval::TaskConfig config;
  config.epochs = Scaled(8);
  config.batch_size = 32;
  config.lr = 2e-3;
  return config;
}

core::PretrainConfig DefaultStartPretrainConfig(int64_t epochs) {
  core::PretrainConfig config;
  config.epochs = epochs;
  config.batch_size = 16;
  config.lr = 2e-3;
  config.lambda = 0.6;
  config.tau = 0.05f;
  return config;
}

void PretrainRunner(ModelRunner* runner, const CityWorld& world,
                    int64_t epochs, const std::string& cache_tag) {
  START_CHECK(runner != nullptr);
  if (epochs <= 0) epochs = DefaultPretrainEpochs();
  const bool use_cache =
      common::GetEnvInt("START_BENCH_CACHE", 1) != 0 && !cache_tag.empty();
  std::string path;
  if (use_cache) {
    std::filesystem::create_directories("bench_cache");
    path = "bench_cache/" + cache_tag + "_" + world.name + "_" +
           runner->name + "_e" + std::to_string(epochs) + ".sttn";
    if (std::filesystem::exists(path) &&
        runner->module()->Load(path).ok()) {
      START_LOG(Info) << "loaded cached " << path;
      return;
    }
  }
  if (runner->start_model != nullptr) {
    core::Pretrain(runner->start_model.get(), world.dataset->train(),
                   world.traffic.get(), DefaultStartPretrainConfig(epochs));
  } else {
    baselines::PretrainOptions options;
    options.epochs = epochs;
    options.batch_size = 16;
    options.lr = 2e-3;
    runner->baseline->Pretrain(world.dataset->train(), options);
  }
  if (use_cache) {
    const auto status = runner->module()->Save(path);
    if (!status.ok()) {
      START_LOG(Warning) << "cache save failed: " << status.ToString();
    }
  }
}

int64_t OccupancyLabel(const traj::Trajectory& t) { return t.occupied ? 1 : 0; }
int64_t DriverLabel(const traj::Trajectory& t) { return t.driver_id; }
int64_t ModeLabel(const traj::Trajectory& t) { return t.transport_mode; }

SimilarityBenchData MakeSimilarityData(const CityWorld& world,
                                       int64_t num_queries,
                                       int64_t num_negatives,
                                       double select_proportion,
                                       uint64_t seed) {
  SimilarityBenchData out;
  common::Rng rng(seed);
  data::DetourConfig detour_cfg;
  detour_cfg.select_proportion = select_proportion;
  // One CH build amortised over every query + negative of the protocol
  // (Yen's per-call Dijkstra cascade dominated this function at Nq + Nneg
  // scale).
  data::DetourGenerator detours(world.traffic.get(), detour_cfg);
  const auto& test = world.dataset->test();
  START_CHECK(!test.empty());
  // Queries: originals whose detour exists; ground truth = their detour.
  for (const auto& t : test) {
    if (static_cast<int64_t>(out.queries.size()) >= num_queries) break;
    const auto detour = detours.Generate(t, &rng);
    if (!detour.has_value()) continue;
    out.gt_index.push_back(static_cast<int64_t>(out.database.size()));
    out.database.push_back(*detour);
    out.queries.push_back(t);
  }
  // Negatives: detours of other test trajectories (paper: D_N').
  size_t cursor = 0;
  while (static_cast<int64_t>(out.database.size()) <
             static_cast<int64_t>(out.queries.size()) + num_negatives &&
         cursor < 4 * test.size()) {
    const auto& t = test[cursor++ % test.size()];
    const auto detour = detours.Generate(t, &rng);
    if (detour.has_value()) {
      out.database.push_back(*detour);
    } else {
      out.database.push_back(t);
    }
  }
  return out;
}

}  // namespace start::bench
