#ifndef START_DATA_DETOUR_H_
#define START_DATA_DETOUR_H_

#include <optional>

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "traj/traffic_model.h"
#include "traj/trajectory.h"

namespace start::data {

/// \brief Parameters of the top-k detour ground-truth generator of
/// Sec. IV-D4(a): Nq = 10,000, Nneg = 100,000, pd = 0.2, td = 0.2 at paper
/// scale (the bench harness scales Nq/Nneg down).
struct DetourConfig {
  double select_proportion = 0.2;  ///< pd: max fraction of roads replaced.
  double time_threshold = 0.2;     ///< td: min relative travel-time change.
  int64_t top_k = 8;               ///< Yen candidates examined per query.
};

/// \brief Replaces a random consecutive sub-trajectory with a top-k detour
/// whose travel time differs by more than `time_threshold`, then re-times the
/// spliced trajectory with the congestion model. Returns nullopt when no
/// qualifying alternative exists.
std::optional<traj::Trajectory> MakeDetour(const traj::TrafficModel& traffic,
                                           const traj::Trajectory& t,
                                           const DetourConfig& config,
                                           common::Rng* rng);

}  // namespace start::data

#endif  // START_DATA_DETOUR_H_
