#ifndef START_DATA_DETOUR_H_
#define START_DATA_DETOUR_H_

#include <memory>
#include <optional>

#include "common/rng.h"
#include "roadnet/ch_engine.h"
#include "roadnet/csr_graph.h"
#include "roadnet/road_network.h"
#include "traj/traffic_model.h"
#include "traj/trajectory.h"

namespace start::data {

/// \brief Parameters of the top-k detour ground-truth generator of
/// Sec. IV-D4(a): Nq = 10,000, Nneg = 100,000, pd = 0.2, td = 0.2 at paper
/// scale (the bench harness scales Nq/Nneg down).
struct DetourConfig {
  double select_proportion = 0.2;  ///< pd: max fraction of roads replaced.
  double time_threshold = 0.2;     ///< td: min relative travel-time change.
  int64_t top_k = 8;               ///< Yen candidates examined per query.
};

/// \brief Replaces a random consecutive sub-trajectory with a top-k detour
/// whose travel time differs by more than `time_threshold`, then re-times the
/// spliced trajectory with the congestion model. Returns nullopt when no
/// qualifying alternative exists.
std::optional<traj::Trajectory> MakeDetour(const traj::TrafficModel& traffic,
                                           const traj::Trajectory& t,
                                           const DetourConfig& config,
                                           common::Rng* rng);

/// \brief Batched detour generator backed by the contraction-hierarchy
/// engine.
///
/// MakeDetour() runs Yen's algorithm, which re-runs a full Dijkstra per spur
/// node per candidate — fine for a handful of queries, quadratic pain for the
/// Sec. IV-D4 protocol sizes (Nq + Nneg alternatives over the same city).
/// This class builds the free-flow CsrGraph + ChEngine once and answers each
/// query with one bidirectional upward search (ChEngine::AlternativeRoutes),
/// reusing one QueryContext so repeated calls allocate nothing.
///
/// The sub-trajectory selection, time-threshold test and splice/re-time logic
/// are identical to MakeDetour; only the candidate search differs (via-node
/// alternatives instead of Yen's top-k), so outputs satisfy the same
/// contract: a connected trajectory with the original endpoints whose section
/// travel time deviates by more than `time_threshold`. Not thread-safe; use
/// one instance per thread.
class DetourGenerator {
 public:
  DetourGenerator(const traj::TrafficModel* traffic,
                  const DetourConfig& config);

  /// CH-accelerated counterpart of MakeDetour().
  std::optional<traj::Trajectory> Generate(const traj::Trajectory& t,
                                           common::Rng* rng);

  const roadnet::ChEngine& ch() const { return *ch_; }

 private:
  const traj::TrafficModel* traffic_;
  DetourConfig config_;
  std::unique_ptr<roadnet::CsrGraph> graph_;  ///< Free-flow metric.
  std::unique_ptr<roadnet::ChEngine> ch_;
  roadnet::ChEngine::QueryContext ctx_;
};

}  // namespace start::data

#endif  // START_DATA_DETOUR_H_
