#include "data/batch.h"

#include <algorithm>

#include "common/check.h"

namespace start::data {

Batch MakeBatch(const std::vector<View>& views) {
  START_CHECK(!views.empty());
  Batch batch;
  batch.batch_size = static_cast<int64_t>(views.size());
  for (const auto& v : views) {
    START_CHECK_GT(v.size(), 0);
    batch.max_len = std::max(batch.max_len, v.size());
    batch.embedding_dropout |= v.embedding_dropout;
  }
  const int64_t total = batch.batch_size * batch.max_len;
  batch.roads.assign(static_cast<size_t>(total), kPadRoad);
  batch.minute_idx.assign(static_cast<size_t>(total), kMaskTimeIndex);
  batch.dow_idx.assign(static_cast<size_t>(total), kMaskTimeIndex);
  batch.times.assign(static_cast<size_t>(total), 0.0);
  batch.lengths.resize(static_cast<size_t>(batch.batch_size));
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    const View& v = views[static_cast<size_t>(b)];
    batch.lengths[static_cast<size_t>(b)] = v.size();
    const int64_t base = b * batch.max_len;
    for (int64_t i = 0; i < v.size(); ++i) {
      batch.roads[static_cast<size_t>(base + i)] =
          v.roads[static_cast<size_t>(i)];
      batch.minute_idx[static_cast<size_t>(base + i)] =
          v.minute_idx[static_cast<size_t>(i)];
      batch.dow_idx[static_cast<size_t>(base + i)] =
          v.dow_idx[static_cast<size_t>(i)];
      batch.times[static_cast<size_t>(base + i)] =
          v.times[static_cast<size_t>(i)];
    }
  }
  return batch;
}

}  // namespace start::data
