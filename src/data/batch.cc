#include "data/batch.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace start::data {

Batch MakeBatch(const std::vector<View>& views) {
  Batch batch;
  MakeBatchInto(views, &batch);
  return batch;
}

void MakeBatchInto(const std::vector<View>& views, Batch* batch) {
  START_CHECK(batch != nullptr);
  START_CHECK(!views.empty());
  batch->batch_size = static_cast<int64_t>(views.size());
  batch->max_len = 0;
  batch->embedding_dropout = false;
  for (const auto& v : views) {
    START_CHECK_GT(v.size(), 0);
    batch->max_len = std::max(batch->max_len, v.size());
    batch->embedding_dropout |= v.embedding_dropout;
  }
  const size_t total =
      static_cast<size_t>(batch->batch_size * batch->max_len);
  // assign() overwrites in place when capacity suffices — after a few steps
  // through the prefetch queue these buffers stop allocating entirely.
  batch->roads.assign(total, kPadRoad);
  batch->minute_idx.assign(total, kMaskTimeIndex);
  batch->dow_idx.assign(total, kMaskTimeIndex);
  batch->times.assign(total, 0.0);
  batch->lengths.resize(static_cast<size_t>(batch->batch_size));
  for (int64_t b = 0; b < batch->batch_size; ++b) {
    const View& v = views[static_cast<size_t>(b)];
    batch->lengths[static_cast<size_t>(b)] = v.size();
    const size_t base = static_cast<size_t>(b * batch->max_len);
    std::copy(v.roads.begin(), v.roads.end(), batch->roads.begin() + base);
    std::copy(v.minute_idx.begin(), v.minute_idx.end(),
              batch->minute_idx.begin() + base);
    std::copy(v.dow_idx.begin(), v.dow_idx.end(),
              batch->dow_idx.begin() + base);
    std::copy(v.times.begin(), v.times.end(), batch->times.begin() + base);
  }
}

void SliceBatchRows(const Batch& batch, int64_t row_begin, int64_t row_end,
                    Batch* out) {
  START_CHECK(out != nullptr);
  START_CHECK_GE(row_begin, 0);
  START_CHECK_LT(row_begin, row_end);
  START_CHECK_LE(row_end, batch.batch_size);
  const int64_t rows = row_end - row_begin;
  out->batch_size = rows;
  out->max_len = batch.max_len;  // parent extent, NOT the slice's own max
  out->embedding_dropout = batch.embedding_dropout;
  const size_t first = static_cast<size_t>(row_begin * batch.max_len);
  const size_t last = static_cast<size_t>(row_end * batch.max_len);
  out->roads.assign(batch.roads.begin() + first, batch.roads.begin() + last);
  out->minute_idx.assign(batch.minute_idx.begin() + first,
                         batch.minute_idx.begin() + last);
  out->dow_idx.assign(batch.dow_idx.begin() + first,
                      batch.dow_idx.begin() + last);
  out->times.assign(batch.times.begin() + first, batch.times.begin() + last);
  out->lengths.assign(batch.lengths.begin() + row_begin,
                      batch.lengths.begin() + row_end);
}

double PaddingEfficiency(const std::vector<int64_t>& lengths) {
  START_CHECK(!lengths.empty());
  int64_t total = 0, max_len = 0;
  for (const int64_t len : lengths) {
    START_CHECK_GT(len, 0);
    total += len;
    max_len = std::max(max_len, len);
  }
  return static_cast<double>(total) /
         static_cast<double>(static_cast<int64_t>(lengths.size()) * max_len);
}

std::vector<std::vector<int64_t>> BucketBatchPlan(
    const std::vector<int64_t>& lengths, const std::vector<int64_t>& order,
    int64_t batch_size, int64_t bucket_width) {
  START_CHECK_GT(batch_size, 0);
  START_CHECK_GT(bucket_width, 0);
  std::vector<std::vector<int64_t>> plan;
  // std::map keeps bucket ids ordered so the leftover flush below walks
  // ascending length buckets — adjacent buckets pad against each other, not
  // against the global max.
  std::map<int64_t, std::vector<int64_t>> buckets;
  for (const int64_t idx : order) {
    START_CHECK_GE(idx, 0);
    START_CHECK_LT(idx, static_cast<int64_t>(lengths.size()));
    const int64_t len = lengths[static_cast<size_t>(idx)];
    START_CHECK_GT(len, 0);
    auto& bucket = buckets[(len - 1) / bucket_width];
    bucket.push_back(idx);
    if (static_cast<int64_t>(bucket.size()) == batch_size) {
      plan.push_back(std::move(bucket));
      bucket.clear();
    }
  }
  // Flush leftovers: concatenate ascending buckets, re-chunk to batch_size.
  std::vector<int64_t> leftover;
  for (auto& [id, bucket] : buckets) {
    leftover.insert(leftover.end(), bucket.begin(), bucket.end());
  }
  for (size_t begin = 0; begin < leftover.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(leftover.size(), begin + static_cast<size_t>(batch_size));
    plan.emplace_back(leftover.begin() + static_cast<int64_t>(begin),
                      leftover.begin() + static_cast<int64_t>(end));
  }
  return plan;
}

}  // namespace start::data
