#include "data/augmentation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "data/span_mask.h"

namespace start::data {

std::string_view AugmentationName(AugmentationKind kind) {
  switch (kind) {
    case AugmentationKind::kTrim:
      return "Trim";
    case AugmentationKind::kTemporalShift:
      return "Shift";
    case AugmentationKind::kRoadMask:
      return "Mask";
    case AugmentationKind::kDropout:
      return "Dropout";
  }
  return "?";
}

namespace {

View TrimAugment(const traj::Trajectory& t, const AugmentationConfig& cfg,
                 common::Rng* rng) {
  const int64_t n = t.size();
  const double ratio = rng->Uniform(cfg.trim_ratio_min, cfg.trim_ratio_max);
  int64_t cut = std::max<int64_t>(1, static_cast<int64_t>(ratio * n));
  // Keep at least two roads.
  cut = std::min(cut, n - 2);
  if (cut <= 0) return MakeView(t);
  traj::Trajectory trimmed = t;
  if (rng->Bernoulli(0.5)) {
    // Trim at the origin.
    trimmed.roads.erase(trimmed.roads.begin(), trimmed.roads.begin() + cut);
    trimmed.timestamps.erase(trimmed.timestamps.begin(),
                             trimmed.timestamps.begin() + cut);
  } else {
    // Trim at the destination; the exit time of the new last road is the
    // entry time of the first removed road.
    trimmed.end_time = trimmed.timestamps[static_cast<size_t>(n - cut)];
    trimmed.roads.resize(static_cast<size_t>(n - cut));
    trimmed.timestamps.resize(static_cast<size_t>(n - cut));
  }
  return MakeView(trimmed);
}

View TemporalShiftAugment(const traj::Trajectory& t,
                          const AugmentationConfig& cfg,
                          const traj::TrafficModel* traffic,
                          common::Rng* rng) {
  START_CHECK(traffic != nullptr);
  const int64_t n = t.size();
  // Per-road travel times (the last road's exit is end_time).
  std::vector<double> dt(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t out = i + 1 < n ? t.timestamps[static_cast<size_t>(i + 1)]
                                  : t.end_time;
    dt[static_cast<size_t>(i)] =
        static_cast<double>(out - t.timestamps[static_cast<size_t>(i)]);
  }
  // Shift a random subset toward the historical mean:
  // t_aug = t_cur - (t_cur - t_his) * r3  (Sec. III-C2).
  const int64_t num_shift = std::max<int64_t>(
      1, static_cast<int64_t>(cfg.shift_road_fraction * n));
  for (const int64_t i : rng->SampleWithoutReplacement(n, num_shift)) {
    const double t_cur = dt[static_cast<size_t>(i)];
    const double t_his =
        traffic->HistoricalMeanTravelTime(t.roads[static_cast<size_t>(i)]);
    const double r3 = rng->Uniform(cfg.shift_min, cfg.shift_max);
    dt[static_cast<size_t>(i)] =
        std::max(1.0, t_cur - (t_cur - t_his) * r3);
  }
  // Rebuild timestamps cumulatively from the original departure.
  traj::Trajectory shifted = t;
  double clock = static_cast<double>(t.timestamps.front());
  for (int64_t i = 0; i < n; ++i) {
    shifted.timestamps[static_cast<size_t>(i)] = static_cast<int64_t>(clock);
    clock += dt[static_cast<size_t>(i)];
  }
  shifted.end_time = static_cast<int64_t>(clock);
  return MakeView(shifted);
}

}  // namespace

View Augment(const traj::Trajectory& t, AugmentationKind kind,
             const AugmentationConfig& config,
             const traj::TrafficModel* traffic, common::Rng* rng) {
  START_CHECK(rng != nullptr);
  START_CHECK_GE(t.size(), 3);
  switch (kind) {
    case AugmentationKind::kTrim:
      return TrimAugment(t, config, rng);
    case AugmentationKind::kTemporalShift:
      return TemporalShiftAugment(t, config, traffic, rng);
    case AugmentationKind::kRoadMask: {
      View v = MakeView(t);
      ApplySpanMask(&v, config.mask_span, config.mask_ratio, rng);
      return v;
    }
    case AugmentationKind::kDropout: {
      View v = MakeView(t);
      v.embedding_dropout = true;
      return v;
    }
  }
  return MakeView(t);
}

}  // namespace start::data
