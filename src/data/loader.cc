#include "data/loader.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace start::data {

uint64_t BatchLoader::StepSeed(uint64_t seed, int64_t step) {
  // SplitMix64 finalizer over (seed, step): adjacent steps land in
  // uncorrelated streams, and a given step's stream never depends on which
  // worker (or how many workers) built it.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                          (static_cast<uint64_t>(step) + 0x51ed2701ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

BatchLoader::BatchLoader(std::vector<std::vector<int64_t>> plan,
                         Builder builder, const LoaderConfig& config)
    : plan_(std::move(plan)), builder_(std::move(builder)), config_(config) {
  START_CHECK(builder_ != nullptr);
  START_CHECK_GE(config_.num_workers, 0);
  START_CHECK_GE(config_.prefetch_depth, 1);
  START_CHECK_GE(config_.start_step, 0);
  START_CHECK_LE(config_.start_step, total_steps());
  for (const auto& step : plan_) START_CHECK(!step.empty());
  next_ticket_.store(config_.start_step, std::memory_order_relaxed);
  next_ = config_.start_step;
  if (config_.num_workers > 0) {
    pool_ = std::make_unique<common::ThreadPool>(config_.num_workers);
    for (int w = 0; w < config_.num_workers; ++w) {
      pool_->Submit([this] { WorkerLoop(); });
    }
  }
}

BatchLoader::~BatchLoader() {
  Stop();
  pool_.reset();  // joins the workers
}

void BatchLoader::Stop() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  cv_room_.notify_all();
  cv_ready_.notify_all();
}

TrainingBatch BatchLoader::TakeRecycled() {
  std::lock_guard<std::mutex> lock(recycle_mu_);
  if (recycled_.empty()) return TrainingBatch();
  TrainingBatch batch = std::move(recycled_.back());
  recycled_.pop_back();
  return batch;
}

void BatchLoader::Recycle(TrainingBatch&& batch) {
  std::lock_guard<std::mutex> lock(recycle_mu_);
  recycled_.push_back(std::move(batch));
}

void BatchLoader::BuildStep(int64_t seq, TrainingBatch* out) {
  common::Rng rng(StepSeed(config_.seed, seq));
  builder_(plan_[static_cast<size_t>(seq)], &rng, out);
  out->step = seq;
  built_.fetch_add(1, std::memory_order_relaxed);
}

void BatchLoader::WorkerLoop() {
  for (;;) {
    const int64_t seq = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    if (seq >= total_steps() || stop_.load(std::memory_order_acquire)) return;
    TrainingBatch batch = TakeRecycled();
    BuildStep(seq, &batch);
    // Publish in sequence order, honouring the prefetch bound: a worker that
    // ran ahead parks here until the consumer drains the window.
    std::unique_lock<std::mutex> lock(mu_);
    cv_room_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             seq < next_ + config_.prefetch_depth;
    });
    if (stop_.load(std::memory_order_acquire)) return;
    ready_.emplace(seq, std::move(batch));
    cv_ready_.notify_all();
  }
}

bool BatchLoader::Next(TrainingBatch* out) {
  START_CHECK(out != nullptr);
  if (next_ >= total_steps()) return false;
  if (stop_.load(std::memory_order_acquire)) return false;
  if (config_.num_workers == 0) {
    // Synchronous path: same per-step seeding, caller's thread does the work.
    TrainingBatch batch = TakeRecycled();
    BuildStep(next_, &batch);
    *out = std::move(batch);
    ++next_;
    return true;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_ready_.wait(lock, [&] {
    return stop_.load(std::memory_order_acquire) ||
           ready_.find(next_) != ready_.end();
  });
  const auto it = ready_.find(next_);
  if (it == ready_.end()) return false;  // stopped before the batch arrived
  *out = std::move(it->second);
  ready_.erase(it);
  ++next_;
  cv_room_.notify_all();
  return true;
}

PretrainPlan MakeShuffledPlan(const std::vector<int64_t>& lengths,
                              const PlanConfig& config) {
  START_CHECK(!lengths.empty());
  START_CHECK_GT(config.batch_size, 0);
  START_CHECK_GT(config.epochs, 0);
  const int64_t n = static_cast<int64_t>(lengths.size());
  PretrainPlan plan;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    // One private stream per epoch, so epoch e's order does not depend on
    // how many draws epoch e-1 consumed.
    common::Rng rng(BatchLoader::StepSeed(config.seed ^ 0xe90cd3f7ULL, epoch));
    std::vector<int64_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    if (config.shuffle) rng.Shuffle(&order);
    std::vector<std::vector<int64_t>> batches;
    if (config.bucket_by_length) {
      batches = BucketBatchPlan(lengths, order, config.batch_size,
                                config.bucket_width);
    } else {
      for (int64_t begin = 0; begin < n; begin += config.batch_size) {
        const int64_t end = std::min(n, begin + config.batch_size);
        batches.emplace_back(order.begin() + begin, order.begin() + end);
      }
    }
    // A trailing singleton batch would give the contrastive task only two
    // views (NT-Xent needs >= 4 rows); fold it into the previous batch, or
    // duplicate the index when the corpus itself is a single trajectory.
    if (batches.back().size() == 1) {
      if (batches.size() > 1) {
        batches[batches.size() - 2].push_back(batches.back().front());
        batches.pop_back();
      } else {
        batches.back().push_back(batches.back().front());
      }
    }
    // Bucketed batches come out roughly sorted by length; undo that so the
    // epoch is not a curriculum.
    if (config.shuffle) rng.Shuffle(&batches);
    for (auto& b : batches) {
      plan.steps.push_back(std::move(b));
      plan.epoch_of_step.push_back(epoch);
    }
  }
  return plan;
}

BatchLoader::Builder MakePretrainBuilder(
    const std::vector<traj::Trajectory>* corpus,
    const traj::TrafficModel* traffic, const PretrainBatchOptions& options) {
  START_CHECK(corpus != nullptr);
  START_CHECK(options.use_mask_task || options.use_contrastive_task);
  return [corpus, traffic, options](const std::vector<int64_t>& indices,
                                    common::Rng* rng, TrainingBatch* out) {
    out->has_masked = false;
    out->has_contrastive = false;
    out->mask_positions.clear();
    out->mask_targets.clear();
    auto& views = out->scratch_views;

    // --- Task 1: span-masked recovery views (Sec. III-C1) ----------------
    if (options.use_mask_task) {
      auto& infos = out->scratch_infos;
      views.clear();
      infos.clear();
      for (const int64_t idx : indices) {
        const traj::Trajectory& t = (*corpus)[static_cast<size_t>(idx)];
        View v = MakeView(t);
        infos.push_back(ApplySpanMask(&v, options.mask_span,
                                      options.mask_ratio, rng));
        views.push_back(std::move(v));
      }
      MakeBatchInto(views, &out->masked);
      for (size_t b = 0; b < infos.size(); ++b) {
        for (size_t k = 0; k < infos[b].positions.size(); ++k) {
          out->mask_positions.push_back(static_cast<int64_t>(b) *
                                            out->masked.max_len +
                                        infos[b].positions[k]);
          out->mask_targets.push_back(infos[b].targets[k]);
        }
      }
      out->has_masked = true;
    }

    // --- Task 2: contrastive view pairs (Sec. III-C2) --------------------
    if (options.use_contrastive_task) {
      views.clear();
      for (const int64_t idx : indices) {
        const traj::Trajectory& t = (*corpus)[static_cast<size_t>(idx)];
        views.push_back(
            Augment(t, options.aug_a, options.augmentation, traffic, rng));
        views.push_back(
            Augment(t, options.aug_b, options.augmentation, traffic, rng));
      }
      MakeBatchInto(views, &out->contrastive);
      out->has_contrastive = true;
    }
  };
}

}  // namespace start::data
