#ifndef START_DATA_AUGMENTATION_H_
#define START_DATA_AUGMENTATION_H_

#include <string_view>

#include "common/rng.h"
#include "data/view.h"
#include "traj/traffic_model.h"

namespace start::data {

/// The paper's four trajectory data-augmentation strategies (Sec. III-C2).
enum class AugmentationKind {
  kTrim = 0,           ///< Trajectory Trimming (origin/destination, 5–15%).
  kTemporalShift = 1,  ///< Temporal Shifting toward historical travel times.
  kRoadMask = 2,       ///< Road Segments Mask (span mask as augmentation).
  kDropout = 3,        ///< Embedding dropout (SimCSE-style).
};

std::string_view AugmentationName(AugmentationKind kind);

/// \brief Parameters mirroring Sec. III-C2's defaults.
struct AugmentationConfig {
  double trim_ratio_min = 0.05;
  double trim_ratio_max = 0.15;
  double shift_road_fraction = 0.15;  ///< r2
  double shift_min = 0.15;            ///< r3 lower bound
  double shift_max = 0.30;            ///< r3 upper bound
  double mask_ratio = 0.15;           ///< pm for the mask augmentation
  int64_t mask_span = 2;              ///< lm
};

/// Applies one augmentation to a trajectory and returns the resulting view.
/// `traffic` supplies the historical travel times needed by Temporal
/// Shifting; it may be null for the other strategies.
View Augment(const traj::Trajectory& t, AugmentationKind kind,
             const AugmentationConfig& config,
             const traj::TrafficModel* traffic, common::Rng* rng);

}  // namespace start::data

#endif  // START_DATA_AUGMENTATION_H_
