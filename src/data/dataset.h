#ifndef START_DATA_DATASET_H_
#define START_DATA_DATASET_H_

#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace start::data {

/// \brief Preprocessing filters of Sec. IV-A: loop removal, length bounds,
/// minimum trajectories per user; then a chronological train/val/test split
/// (the paper splits BJ 18/5/7 days and Porto per-month 6:2:2 — both are
/// chronological splits, which is what we reproduce).
struct DatasetConfig {
  int64_t min_length = 6;
  int64_t max_length = 128;
  int64_t min_user_trajectories = 20;
  double train_fraction = 0.65;
  double val_fraction = 0.17;
};

/// \brief A filtered, chronologically split trajectory corpus.
class TrajDataset {
 public:
  /// Applies the filters and splits `corpus` (which must be sorted by
  /// departure time; Generate() already sorts).
  static TrajDataset FromCorpus(const roadnet::RoadNetwork& net,
                                std::vector<traj::Trajectory> corpus,
                                const DatasetConfig& config);

  const std::vector<traj::Trajectory>& train() const { return train_; }
  const std::vector<traj::Trajectory>& val() const { return val_; }
  const std::vector<traj::Trajectory>& test() const { return test_; }

  /// All retained trajectories in chronological order.
  std::vector<traj::Trajectory> All() const;

  /// Road-id sequences of the training split (the corpus the transfer
  /// probabilities of Eq. 2 are estimated from — no test leakage).
  std::vector<std::vector<int64_t>> TrainRoadSequences() const;

  int64_t num_drivers() const { return num_drivers_; }

 private:
  std::vector<traj::Trajectory> train_, val_, test_;
  int64_t num_drivers_ = 0;
};

/// Per-trajectory road counts, in corpus order — the input the length-bucket
/// batch planner (`BucketBatchPlan`, `MakeShuffledPlan`) keys on. Computed
/// once per corpus, not per batch.
std::vector<int64_t> Lengths(const std::vector<traj::Trajectory>& corpus);

}  // namespace start::data

#endif  // START_DATA_DATASET_H_
