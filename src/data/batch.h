#ifndef START_DATA_BATCH_H_
#define START_DATA_BATCH_H_

#include <vector>

#include "data/view.h"

namespace start::data {

/// \brief Padded batch of views, ready for a sequence encoder.
///
/// All per-token arrays are row-major [batch, max_len]. Padding positions
/// carry kPadRoad / kMaskTimeIndex / 0.0 and are excluded via `lengths`
/// (the encoder turns lengths into an additive attention mask).
struct Batch {
  int64_t batch_size = 0;
  int64_t max_len = 0;
  std::vector<int64_t> roads;       ///< kMaskRoad/kPadRoad sentinels allowed.
  std::vector<int64_t> minute_idx;
  std::vector<int64_t> dow_idx;
  std::vector<double> times;
  std::vector<int64_t> lengths;
  bool embedding_dropout = false;   ///< Any view requested the dropout view.

  int64_t At(int64_t b, int64_t pos) const { return roads[b * max_len + pos]; }
};

/// Pads a list of views into a batch. All views must be non-empty.
Batch MakeBatch(const std::vector<View>& views);

/// \brief Pads `views` into `*batch`, reusing its existing buffers.
///
/// Equivalent to `*batch = MakeBatch(views)` but without freeing and
/// reallocating the five per-token arrays: `assign`/`resize` reuse capacity,
/// so a batch that cycles through the prefetch queue settles at the largest
/// [batch, max_len] extent it has seen and stops allocating. This is the hot
/// path under the async loader (one call per training step per worker).
void MakeBatchInto(const std::vector<View>& views, Batch* batch);

/// \brief Copies rows [row_begin, row_end) of `batch` into `*out`, keeping
/// the parent's `max_len` padding extent (reusing `out`'s buffers).
///
/// Preserving max_len is what makes the slice *bitwise row-independent*: the
/// encoder's per-row outputs (positional rows, attention over the padded
/// extent, per-sample score bias) are identical whether a row is encoded
/// inside the full batch or inside any slice of it. The sharded trainer
/// (core/parallel_trainer.h) relies on this to split one batch across model
/// replicas without perturbing a single bit of the forward pass.
void SliceBatchRows(const Batch& batch, int64_t row_begin, int64_t row_end,
                    Batch* out);

/// Fraction of non-padding tokens in a padded batch with these lengths:
/// sum(lengths) / (n * max(lengths)). 1.0 means zero padding waste.
double PaddingEfficiency(const std::vector<int64_t>& lengths);

/// \brief Length-bucketed batch assembly.
///
/// Walks `order` (a permutation of trajectory indices — typically the
/// epoch shuffle), routes each index into the bucket
/// `(lengths[i] - 1) / bucket_width`, and emits a batch whenever a bucket
/// reaches `batch_size`. Leftovers are flushed at the end, merged across
/// buckets in ascending length-bucket order so at most one partial batch
/// remains. Within a batch, indices keep their relative `order` position, so
/// the result is a deterministic function of (lengths, order, batch_size,
/// bucket_width).
///
/// Batches are emitted in bucket-completion order, which correlates with
/// length; shuffle the returned plan (e.g. `Rng::Shuffle`) before training on
/// it so no epoch becomes a length curriculum.
std::vector<std::vector<int64_t>> BucketBatchPlan(
    const std::vector<int64_t>& lengths, const std::vector<int64_t>& order,
    int64_t batch_size, int64_t bucket_width);

}  // namespace start::data

#endif  // START_DATA_BATCH_H_
