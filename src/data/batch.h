#ifndef START_DATA_BATCH_H_
#define START_DATA_BATCH_H_

#include <vector>

#include "data/view.h"

namespace start::data {

/// \brief Padded batch of views, ready for a sequence encoder.
///
/// All per-token arrays are row-major [batch, max_len]. Padding positions
/// carry kPadRoad / kMaskTimeIndex / 0.0 and are excluded via `lengths`
/// (the encoder turns lengths into an additive attention mask).
struct Batch {
  int64_t batch_size = 0;
  int64_t max_len = 0;
  std::vector<int64_t> roads;       ///< kMaskRoad/kPadRoad sentinels allowed.
  std::vector<int64_t> minute_idx;
  std::vector<int64_t> dow_idx;
  std::vector<double> times;
  std::vector<int64_t> lengths;
  bool embedding_dropout = false;   ///< Any view requested the dropout view.

  int64_t At(int64_t b, int64_t pos) const { return roads[b * max_len + pos]; }
};

/// Pads a list of views into a batch. All views must be non-empty.
Batch MakeBatch(const std::vector<View>& views);

}  // namespace start::data

#endif  // START_DATA_BATCH_H_
