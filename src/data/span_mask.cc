#include "data/span_mask.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace start::data {

SpanMaskInfo ApplySpanMask(View* view, int64_t span_len, double mask_ratio,
                           common::Rng* rng) {
  START_CHECK(view != nullptr);
  START_CHECK(rng != nullptr);
  START_CHECK_GT(span_len, 0);
  START_CHECK_GT(mask_ratio, 0.0);
  START_CHECK_LE(mask_ratio, 1.0);
  const int64_t n = view->size();
  SpanMaskInfo info;
  if (n < 2) return info;
  const int64_t budget = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(mask_ratio * static_cast<double>(n))));
  std::vector<bool> masked(static_cast<size_t>(n), false);
  int64_t covered = 0;
  // Sample span start positions until the budget is covered; bail out after
  // a bounded number of attempts so adversarial inputs cannot loop forever.
  // Spans are placed fully inside the sequence when it is long enough, so
  // every masked run really has length lm (Sec. III-C1).
  const int64_t start_limit = std::max<int64_t>(1, n - span_len + 1);
  for (int attempts = 0; covered < budget && attempts < 16 * n; ++attempts) {
    const int64_t start = rng->UniformInt(start_limit);
    for (int64_t j = start; j < std::min(n, start + span_len); ++j) {
      if (!masked[static_cast<size_t>(j)]) {
        masked[static_cast<size_t>(j)] = true;
        ++covered;
      }
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    if (!masked[static_cast<size_t>(i)]) continue;
    info.positions.push_back(i);
    info.targets.push_back(view->roads[static_cast<size_t>(i)]);
    view->roads[static_cast<size_t>(i)] = kMaskRoad;
    view->minute_idx[static_cast<size_t>(i)] = kMaskTimeIndex;
    view->dow_idx[static_cast<size_t>(i)] = kMaskTimeIndex;
  }
  return info;
}

}  // namespace start::data
