#include "data/detour.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "roadnet/shortest_path.h"

namespace start::data {
namespace {

/// The randomly selected consecutive sub-trajectory to replace.
struct Section {
  int64_t start = 0;                ///< Index of the first replaced road.
  int64_t span = 0;                 ///< Number of replaced roads.
  int64_t section_entry = 0;        ///< Entry timestamp of the section.
  double orig_time = 0.0;           ///< Original section travel time (s).
  std::vector<int64_t> original;    ///< The replaced road sequence.
};

/// Selects a section of length <= pd * n (Sec. IV-D4a). Shared verbatim by
/// the Yen and CH generators so both consume the rng identically.
std::optional<Section> SelectSection(const traj::Trajectory& t,
                                     const DetourConfig& config,
                                     common::Rng* rng) {
  START_CHECK(rng != nullptr);
  const int64_t n = t.size();
  if (n < 4) return std::nullopt;
  Section sec;
  sec.span = std::clamp<int64_t>(
      static_cast<int64_t>(config.select_proportion * n), 2, n);
  sec.start = rng->UniformInt(n - sec.span + 1);
  const int64_t origin = t.roads[static_cast<size_t>(sec.start)];
  const int64_t dest = t.roads[static_cast<size_t>(sec.start + sec.span - 1)];
  if (origin == dest) return std::nullopt;
  sec.original.assign(t.roads.begin() + sec.start,
                      t.roads.begin() + sec.start + sec.span);
  sec.section_entry = t.timestamps[static_cast<size_t>(sec.start)];
  const int64_t section_exit =
      (sec.start + sec.span < n)
          ? t.timestamps[static_cast<size_t>(sec.start + sec.span)]
          : t.end_time;
  sec.orig_time = static_cast<double>(section_exit - sec.section_entry);
  if (sec.orig_time <= 0.0) return std::nullopt;
  return sec;
}

/// Splices the first candidate whose expected travel time deviates from the
/// original section by more than `time_threshold`, re-timing from the
/// section entry with the deterministic congestion profile.
std::optional<traj::Trajectory> SpliceFirstQualifying(
    const traj::TrafficModel& traffic, const traj::Trajectory& t,
    const DetourConfig& config, const Section& sec,
    const std::vector<std::vector<int64_t>>& candidates) {
  auto expected_time = [&](const std::vector<int64_t>& path) {
    double clock = static_cast<double>(sec.section_entry);
    for (const int64_t r : path) {
      clock += traffic.ExpectedTravelTime(r, static_cast<int64_t>(clock));
    }
    return clock - static_cast<double>(sec.section_entry);
  };
  for (const auto& path : candidates) {
    if (path == sec.original) continue;
    const double cand_time = expected_time(path);
    // "If the travel time of the searched trajectory exceeds a certain
    // threshold t_d with respect to the original trajectory" (Sec. IV-D4a).
    if (std::fabs(cand_time - sec.orig_time) / sec.orig_time <=
        config.time_threshold) {
      continue;
    }
    traj::Trajectory out;
    out.driver_id = t.driver_id;
    out.occupied = t.occupied;
    out.transport_mode = t.transport_mode;
    out.roads.assign(t.roads.begin(), t.roads.begin() + sec.start);
    out.roads.insert(out.roads.end(), path.begin(), path.end());
    out.roads.insert(out.roads.end(),
                     t.roads.begin() + sec.start + sec.span, t.roads.end());
    out.timestamps.assign(t.timestamps.begin(),
                          t.timestamps.begin() + sec.start);
    double clock = static_cast<double>(sec.section_entry);
    for (size_t i = static_cast<size_t>(sec.start); i < out.roads.size();
         ++i) {
      out.timestamps.push_back(static_cast<int64_t>(clock));
      clock += std::max(
          1.0, traffic.ExpectedTravelTime(out.roads[i],
                                          static_cast<int64_t>(clock)));
    }
    out.end_time = static_cast<int64_t>(clock);
    return out;
  }
  return std::nullopt;
}

}  // namespace

std::optional<traj::Trajectory> MakeDetour(const traj::TrafficModel& traffic,
                                           const traj::Trajectory& t,
                                           const DetourConfig& config,
                                           common::Rng* rng) {
  const auto sec = SelectSection(t, config, rng);
  if (!sec.has_value()) return std::nullopt;
  const auto& net = traffic.network();
  auto weight = [&](int64_t road) { return net.FreeFlowTravelTime(road); };
  const auto yen = roadnet::KShortestPaths(
      net, sec->original.front(), sec->original.back(), config.top_k, weight);
  std::vector<std::vector<int64_t>> candidates;
  candidates.reserve(yen.size());
  for (const auto& cand : yen) candidates.push_back(cand.path);
  return SpliceFirstQualifying(traffic, t, config, *sec, candidates);
}

DetourGenerator::DetourGenerator(const traj::TrafficModel* traffic,
                                 const DetourConfig& config)
    : traffic_(traffic), config_(config) {
  START_CHECK(traffic != nullptr);
  graph_ = std::make_unique<roadnet::CsrGraph>(
      roadnet::CsrGraph::FromNetworkFreeFlow(traffic->network()));
  ch_ = std::make_unique<roadnet::ChEngine>(
      roadnet::ChEngine::Build(graph_.get()));
  ctx_ = ch_->MakeContext();
}

std::optional<traj::Trajectory> DetourGenerator::Generate(
    const traj::Trajectory& t, common::Rng* rng) {
  const auto sec = SelectSection(t, config_, rng);
  if (!sec.has_value()) return std::nullopt;
  const auto alts = ch_->AlternativeRoutes(
      graph_->ToNode(sec->original.front()),
      graph_->ToNode(sec->original.back()), config_.top_k, &ctx_);
  std::vector<std::vector<int64_t>> candidates;
  candidates.reserve(alts.size());
  for (const auto& alt : alts) candidates.push_back(graph_->ToSegments(alt.nodes));
  return SpliceFirstQualifying(*traffic_, t, config_, *sec, candidates);
}

}  // namespace start::data
