#include "data/detour.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "roadnet/shortest_path.h"

namespace start::data {

std::optional<traj::Trajectory> MakeDetour(const traj::TrafficModel& traffic,
                                           const traj::Trajectory& t,
                                           const DetourConfig& config,
                                           common::Rng* rng) {
  START_CHECK(rng != nullptr);
  const auto& net = traffic.network();
  const int64_t n = t.size();
  if (n < 4) return std::nullopt;
  // Select a consecutive sub-trajectory S_a of length <= pd * n (at least 2
  // so origin != destination of the section).
  const int64_t span = std::clamp<int64_t>(
      static_cast<int64_t>(config.select_proportion * n), 2, n);
  const int64_t start = rng->UniformInt(n - span + 1);
  const int64_t origin = t.roads[static_cast<size_t>(start)];
  const int64_t dest = t.roads[static_cast<size_t>(start + span - 1)];
  if (origin == dest) return std::nullopt;
  const std::vector<int64_t> original(
      t.roads.begin() + start, t.roads.begin() + start + span);
  // Original section travel time.
  const int64_t section_entry = t.timestamps[static_cast<size_t>(start)];
  const int64_t section_exit =
      (start + span < n) ? t.timestamps[static_cast<size_t>(start + span)]
                         : t.end_time;
  const double orig_time = static_cast<double>(section_exit - section_entry);
  if (orig_time <= 0.0) return std::nullopt;

  auto weight = [&](int64_t road) { return net.FreeFlowTravelTime(road); };
  const auto candidates = roadnet::KShortestPaths(net, origin, dest,
                                                  config.top_k, weight);
  auto expected_time = [&](const std::vector<int64_t>& path) {
    double clock = static_cast<double>(section_entry);
    for (const int64_t r : path) {
      clock += traffic.ExpectedTravelTime(r, static_cast<int64_t>(clock));
    }
    return clock - static_cast<double>(section_entry);
  };
  for (const auto& cand : candidates) {
    if (cand.path == original) continue;
    const double cand_time = expected_time(cand.path);
    // "If the travel time of the searched trajectory exceeds a certain
    // threshold t_d with respect to the original trajectory" (Sec. IV-D4a).
    if (std::fabs(cand_time - orig_time) / orig_time <= config.time_threshold) {
      continue;
    }
    // Splice: prefix + candidate + suffix, then re-time from the section
    // entry with the deterministic congestion profile.
    traj::Trajectory out;
    out.driver_id = t.driver_id;
    out.occupied = t.occupied;
    out.transport_mode = t.transport_mode;
    out.roads.assign(t.roads.begin(), t.roads.begin() + start);
    out.roads.insert(out.roads.end(), cand.path.begin(), cand.path.end());
    out.roads.insert(out.roads.end(), t.roads.begin() + start + span,
                     t.roads.end());
    out.timestamps.assign(t.timestamps.begin(),
                          t.timestamps.begin() + start);
    double clock = static_cast<double>(section_entry);
    for (size_t i = static_cast<size_t>(start); i < out.roads.size(); ++i) {
      out.timestamps.push_back(static_cast<int64_t>(clock));
      clock += std::max(
          1.0, traffic.ExpectedTravelTime(out.roads[i],
                                          static_cast<int64_t>(clock)));
    }
    out.end_time = static_cast<int64_t>(clock);
    return out;
  }
  return std::nullopt;
}

}  // namespace start::data
