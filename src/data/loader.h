#ifndef START_DATA_LOADER_H_
#define START_DATA_LOADER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/augmentation.h"
#include "data/batch.h"
#include "data/span_mask.h"
#include "traj/traffic_model.h"
#include "traj/trajectory.h"

namespace start::data {

/// \brief One fully-assembled pre-training step: the span-masked batch for
/// the recovery task plus the two-augmented-views batch for the contrastive
/// task (Sec. III-C). Produced by loader workers, consumed by the training
/// thread; `scratch_*` members are builder working memory that rides along so
/// `BatchLoader::Recycle` can reuse every allocation.
struct TrainingBatch {
  int64_t step = 0;          ///< Global step index (== queue sequence number).
  bool has_masked = false;   ///< `masked` / `mask_*` are valid.
  bool has_contrastive = false;  ///< `contrastive` is valid.

  Batch masked;              ///< Span-masked views, one per trajectory.
  std::vector<int64_t> mask_positions;  ///< Flat b * max_len + pos indices.
  std::vector<int64_t> mask_targets;    ///< Original road ids (Eq. 13).
  Batch contrastive;         ///< aug_a(t), aug_b(t) interleaved per t.

  std::vector<View> scratch_views;          ///< Builder scratch.
  std::vector<SpanMaskInfo> scratch_infos;  ///< Builder scratch.
};

/// \brief Async loader configuration.
struct LoaderConfig {
  /// Augmentation worker threads. 0 = synchronous: `Next()` builds the batch
  /// on the calling thread through the same per-step seeding, so outputs are
  /// bitwise identical to every async worker count (the determinism contract
  /// below). This is also the baseline `bench_pipeline` measures against.
  int num_workers = 2;
  /// Bound on completed-but-unconsumed batches the queue may hold (>= 1).
  /// Workers that run ahead block before publishing, so memory is capped at
  /// `prefetch_depth + num_workers` assembled batches.
  int64_t prefetch_depth = 4;
  /// Base seed; expanded per step via `BatchLoader::StepSeed`.
  uint64_t seed = 7;
  /// First plan step to deliver; steps before it are skipped entirely (no
  /// builder invocation, no RNG draws). This is the loader's resume cursor: a
  /// checkpointed run that stopped after consuming step s-1 restarts with
  /// `start_step = s` and receives the exact batch stream the uninterrupted
  /// run would have seen from step s on (per-step seeding makes the skipped
  /// prefix irrelevant to later steps).
  int64_t start_step = 0;
};

/// \brief Multi-worker prefetching batch loader.
///
/// The loader executes a fixed *plan* — `plan[s]` lists the trajectory
/// indices of step `s` (see `MakeShuffledPlan`) — by fanning steps out to
/// `num_workers` threads that each run the user-supplied `Builder` and
/// publish into a bounded, sequence-ordered queue. `Next()` hands batches
/// back strictly in step order, so the consumer sees exactly the schedule
/// the plan describes while step k+1..k+depth assemble in the background.
///
/// Determinism contract: every step draws all of its randomness from a fresh
/// `Rng(StepSeed(config.seed, step))`. Randomness therefore never crosses
/// step boundaries, and the output stream is a pure function of
/// (plan, builder, seed) — bitwise identical for ANY worker count, including
/// the synchronous 0-worker path. `tests/data_loader_test.cc` asserts this.
///
/// Threading contract: one consumer thread calls `Next`/`Recycle`; workers
/// live on an internal `common::ThreadPool`. Shutdown order is: set the stop
/// flag, wake all waiters, join workers (the destructor does all three —
/// destroying a half-consumed loader is safe and leaves no threads behind).
class BatchLoader {
 public:
  /// Builds the batch for one step into `*out` (reusing its buffers).
  /// `indices` are trajectory indices from the plan; `rng` is the step's
  /// private generator. Must be thread-safe with respect to other builder
  /// invocations (i.e. only touch shared state read-only).
  using Builder = std::function<void(const std::vector<int64_t>& indices,
                                     common::Rng* rng, TrainingBatch* out)>;

  BatchLoader(std::vector<std::vector<int64_t>> plan, Builder builder,
              const LoaderConfig& config);
  ~BatchLoader();

  BatchLoader(const BatchLoader&) = delete;
  BatchLoader& operator=(const BatchLoader&) = delete;

  /// Blocks until the next in-order batch is ready and moves it into `*out`.
  /// Returns false when the plan is exhausted or `Stop()` was called.
  bool Next(TrainingBatch* out);

  /// Returns a consumed batch to the free list so a worker can rebuild into
  /// its buffers instead of allocating fresh ones. Optional but keeps the
  /// steady state allocation-free.
  void Recycle(TrainingBatch&& batch);

  /// Asks workers to stop early and unblocks any waiting `Next()` (which
  /// then returns false). Idempotent; also called by the destructor.
  void Stop();

  /// Number of steps in the plan.
  int64_t total_steps() const { return static_cast<int64_t>(plan_.size()); }

  /// Batches fully assembled so far (monotonic; for backpressure tests and
  /// the pipeline bench). Never exceeds consumed + prefetch_depth +
  /// num_workers.
  int64_t batches_built() const {
    return built_.load(std::memory_order_relaxed);
  }

  /// Derives the step-private seed: a SplitMix64-style mix of the base seed
  /// and the step index, so neighbouring steps get uncorrelated streams.
  static uint64_t StepSeed(uint64_t seed, int64_t step);

 private:
  void WorkerLoop();
  void BuildStep(int64_t seq, TrainingBatch* out);
  TrainingBatch TakeRecycled();

  const std::vector<std::vector<int64_t>> plan_;
  const Builder builder_;
  const LoaderConfig config_;

  std::atomic<int64_t> next_ticket_{0};  ///< Next step a worker claims.
  std::atomic<int64_t> built_{0};
  std::atomic<bool> stop_{false};

  std::mutex mu_;
  std::condition_variable cv_room_;   ///< Producers wait for queue room.
  std::condition_variable cv_ready_;  ///< Consumer waits for batch `next_`.
  std::map<int64_t, TrainingBatch> ready_;  ///< seq -> assembled batch.
  int64_t next_ = 0;                  ///< Next step the consumer takes.

  std::mutex recycle_mu_;
  std::vector<TrainingBatch> recycled_;

  /// Last member: joins workers first during destruction, while the fields
  /// above are still alive.
  std::unique_ptr<common::ThreadPool> pool_;
};

/// \brief Plan generation parameters for `MakeShuffledPlan`.
struct PlanConfig {
  int64_t batch_size = 16;
  int64_t epochs = 1;
  /// Group same-length-bucket trajectories into a batch (see
  /// `BucketBatchPlan`) so padding waste drops; batch order is re-shuffled
  /// per epoch so training sees no length curriculum.
  bool bucket_by_length = true;
  /// Lengths l with (l-1)/bucket_width equal share a bucket.
  int64_t bucket_width = 8;
  bool shuffle = true;  ///< False = corpus order (useful for inference/tests).
  uint64_t seed = 7;
};

/// \brief A multi-epoch step plan plus step->epoch bookkeeping.
struct PretrainPlan {
  std::vector<std::vector<int64_t>> steps;  ///< Trajectory indices per step.
  std::vector<int64_t> epoch_of_step;       ///< Same length as `steps`.
};

/// Builds the full multi-epoch plan up front on the coordinator thread: per
/// epoch, shuffle the corpus order with an epoch-seeded Rng, cut it into
/// (optionally length-bucketed) batches of `batch_size` (one final batch may
/// be partial), then shuffle the batch order. Deterministic in
/// (lengths, config) and independent of any loader state.
PretrainPlan MakeShuffledPlan(const std::vector<int64_t>& lengths,
                              const PlanConfig& config);

/// \brief What the pretrain builder assembles per step (mirrors the two
/// pretext tasks' knobs in `core::PretrainConfig`).
struct PretrainBatchOptions {
  bool use_mask_task = true;
  bool use_contrastive_task = true;
  int64_t mask_span = 2;     ///< lm.
  double mask_ratio = 0.15;  ///< pm.
  AugmentationKind aug_a = AugmentationKind::kTrim;
  AugmentationKind aug_b = AugmentationKind::kTemporalShift;
  AugmentationConfig augmentation;
};

/// Returns the standard pre-training builder: span-masked views + flattened
/// recovery targets for task 1, and the aug_a/aug_b view pairs for task 2.
/// `corpus` and `traffic` must outlive the loader; both are only read.
BatchLoader::Builder MakePretrainBuilder(
    const std::vector<traj::Trajectory>* corpus,
    const traj::TrafficModel* traffic, const PretrainBatchOptions& options);

}  // namespace start::data

#endif  // START_DATA_LOADER_H_
