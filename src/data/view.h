#ifndef START_DATA_VIEW_H_
#define START_DATA_VIEW_H_

#include <cstdint>
#include <vector>

#include "traj/trajectory.h"

namespace start::data {

/// Sentinel road id marking a [MASK]ed position inside a View.
constexpr int64_t kMaskRoad = -2;
/// Sentinel road id marking padding inside a batch.
constexpr int64_t kPadRoad = -1;
/// Temporal index 0 is the [MASKT] token (valid minute indexes are 1..1440,
/// valid day-of-week indexes 1..7; Sec. III-B1).
constexpr int64_t kMaskTimeIndex = 0;

/// \brief Model-facing view of one trajectory: the road/time token sequence
/// fed to the trajectory encoder, possibly with masked positions or
/// augmentation applied.
struct View {
  std::vector<int64_t> roads;       ///< Road ids; kMaskRoad for [MASK].
  std::vector<int64_t> minute_idx;  ///< 1..1440, or 0 for [MASKT].
  std::vector<int64_t> dow_idx;     ///< 1..7, or 0 for [MASKT].
  std::vector<double> times;        ///< Visit timestamps (s), drives ∆ (Eq. 8).
  bool embedding_dropout = false;   ///< Dropout augmentation flag (Sec. III-C2).

  int64_t size() const { return static_cast<int64_t>(roads.size()); }
};

/// Converts a trajectory into its unaugmented view.
View MakeView(const traj::Trajectory& t);

/// \brief View for the travel-time-estimation fine-tuning protocol: only the
/// departure time is exposed (every position carries the departure-time
/// embedding and ∆ is flat), per Sec. IV-D2 ("no time information is fed into
/// the model during fine-tuning, except for the departure time").
View MakeEtaView(const traj::Trajectory& t);

}  // namespace start::data

#endif  // START_DATA_VIEW_H_
