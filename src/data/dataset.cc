#include "data/dataset.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace start::data {

TrajDataset TrajDataset::FromCorpus(const roadnet::RoadNetwork& net,
                                    std::vector<traj::Trajectory> corpus,
                                    const DatasetConfig& config) {
  // Filter: length bounds and loop removal (origin == destination).
  std::vector<traj::Trajectory> kept;
  kept.reserve(corpus.size());
  for (auto& t : corpus) {
    if (t.size() < config.min_length) continue;
    if (t.roads.front() == t.roads.back()) continue;  // loop trajectory
    if (t.size() > config.max_length) {
      // Truncate over-long trajectories to the cap (max length 128 in the
      // paper); keep the prefix and adjust the end time.
      t.end_time = t.timestamps[static_cast<size_t>(config.max_length)];
      t.roads.resize(static_cast<size_t>(config.max_length));
      t.timestamps.resize(static_cast<size_t>(config.max_length));
    }
    for (const int64_t r : t.roads) {
      START_CHECK_MSG(r >= 0 && r < net.num_segments(), "bad road " << r);
    }
    kept.push_back(std::move(t));
  }
  // Filter: users with too few trajectories.
  std::map<int64_t, int64_t> per_user;
  for (const auto& t : kept) ++per_user[t.driver_id];
  std::vector<traj::Trajectory> filtered;
  filtered.reserve(kept.size());
  for (auto& t : kept) {
    if (per_user[t.driver_id] >= config.min_user_trajectories) {
      filtered.push_back(std::move(t));
    }
  }
  // Re-index the surviving drivers densely so classification heads can size
  // their output layer as [num_drivers].
  std::map<int64_t, int64_t> remap;
  for (const auto& t : filtered) {
    remap.emplace(t.driver_id, static_cast<int64_t>(remap.size()));
  }
  for (auto& t : filtered) t.driver_id = remap[t.driver_id];

  // Chronological split.
  std::stable_sort(filtered.begin(), filtered.end(),
                   [](const traj::Trajectory& a, const traj::Trajectory& b) {
                     return a.departure_time() < b.departure_time();
                   });
  TrajDataset ds;
  ds.num_drivers_ = static_cast<int64_t>(remap.size());
  const int64_t n = static_cast<int64_t>(filtered.size());
  const int64_t n_train = static_cast<int64_t>(config.train_fraction * n);
  const int64_t n_val = static_cast<int64_t>(config.val_fraction * n);
  for (int64_t i = 0; i < n; ++i) {
    if (i < n_train) {
      ds.train_.push_back(std::move(filtered[static_cast<size_t>(i)]));
    } else if (i < n_train + n_val) {
      ds.val_.push_back(std::move(filtered[static_cast<size_t>(i)]));
    } else {
      ds.test_.push_back(std::move(filtered[static_cast<size_t>(i)]));
    }
  }
  return ds;
}

std::vector<traj::Trajectory> TrajDataset::All() const {
  std::vector<traj::Trajectory> all;
  all.reserve(train_.size() + val_.size() + test_.size());
  all.insert(all.end(), train_.begin(), train_.end());
  all.insert(all.end(), val_.begin(), val_.end());
  all.insert(all.end(), test_.begin(), test_.end());
  return all;
}

std::vector<std::vector<int64_t>> TrajDataset::TrainRoadSequences() const {
  std::vector<std::vector<int64_t>> seqs;
  seqs.reserve(train_.size());
  for (const auto& t : train_) seqs.push_back(t.roads);
  return seqs;
}

std::vector<int64_t> Lengths(const std::vector<traj::Trajectory>& corpus) {
  std::vector<int64_t> lengths;
  lengths.reserve(corpus.size());
  for (const auto& t : corpus) lengths.push_back(t.size());
  return lengths;
}

}  // namespace start::data
