#ifndef START_DATA_SPAN_MASK_H_
#define START_DATA_SPAN_MASK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/view.h"

namespace start::data {

/// \brief Result of span masking: which positions were masked and the
/// original road ids (the recovery targets of Eq. 13).
struct SpanMaskInfo {
  std::vector<int64_t> positions;  ///< Indexes into the view.
  std::vector<int64_t> targets;    ///< Original road ids at those positions.
};

/// \brief Masks consecutive spans of length `span_len` until at least
/// `mask_ratio` of the view is covered (Sec. III-C1: lm = 2, pm = 15%).
///
/// Masked positions get road id kMaskRoad and [MASKT] time indexes. Raw
/// `times` are left untouched: the paper replaces only the embedding indexes,
/// and the interval matrix ∆ keeps using the observed timestamps.
SpanMaskInfo ApplySpanMask(View* view, int64_t span_len, double mask_ratio,
                           common::Rng* rng);

}  // namespace start::data

#endif  // START_DATA_SPAN_MASK_H_
