#include "data/view.h"

#include "common/check.h"

namespace start::data {

View MakeView(const traj::Trajectory& t) {
  START_CHECK_GT(t.size(), 0);
  View v;
  v.roads = t.roads;
  v.times.reserve(t.timestamps.size());
  v.minute_idx.reserve(t.timestamps.size());
  v.dow_idx.reserve(t.timestamps.size());
  for (const int64_t ts : t.timestamps) {
    v.times.push_back(static_cast<double>(ts));
    v.minute_idx.push_back(traj::MinuteIndex(ts));
    v.dow_idx.push_back(traj::DayOfWeekIndex(ts));
  }
  return v;
}

View MakeEtaView(const traj::Trajectory& t) {
  START_CHECK_GT(t.size(), 0);
  View v;
  v.roads = t.roads;
  const int64_t dep = t.departure_time();
  const int64_t minute = traj::MinuteIndex(dep);
  const int64_t dow = traj::DayOfWeekIndex(dep);
  v.minute_idx.assign(t.roads.size(), minute);
  v.dow_idx.assign(t.roads.size(), dow);
  // Flat times: every pairwise interval is zero, so the adaptive interval
  // matrix carries no leaked arrival-time information.
  v.times.assign(t.roads.size(), static_cast<double>(dep));
  return v;
}

}  // namespace start::data
