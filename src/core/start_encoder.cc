#include "core/start_encoder.h"

#include "core/checkpoint.h"
#include "data/batch.h"

namespace start::core {

tensor::Tensor StartEncoder::EncodeBatch(
    const std::vector<const traj::Trajectory*>& batch,
    eval::EncodeMode mode) {
  const data::Batch b = eval::MakeModeBatch(batch, mode);
  // The cache is only sound when nothing will differentiate through the road
  // representations and the parameters cannot change between batches: pure
  // inference. Fine-tuning (training mode / grad mode) takes the full path.
  if (!model_->training() && !tensor::GradModeEnabled()) {
    if (!cached_road_reps_.defined()) {
      cached_road_reps_ = model_->ComputeRoadReps().Detach();
    }
    return model_->Encode(b, cached_road_reps_).cls;
  }
  return model_->Encode(b).cls;
}

tensor::Tensor StartEncoder::InferBatch(
    const std::vector<const traj::Trajectory*>& batch,
    eval::EncodeMode mode) {
  tensor::NoGradGuard no_grad;
  return EncodeBatch(batch, mode);
}

common::Status StartEncoder::WarmStart(const std::string& checkpoint_path,
                                       bool allow_missing,
                                       bool skip_mismatched) {
  LoadOptions options;
  options.allow_missing = allow_missing;
  options.skip_mismatched = skip_mismatched;
  START_RETURN_IF_ERROR(LoadModelCheckpoint(
      checkpoint_path, model_, HashStartConfig(model_->config()), options));
  InvalidateRoadReps();
  return common::Status::OK();
}

}  // namespace start::core
