#include "core/start_encoder.h"

#include "common/check.h"
#include "data/batch.h"
#include "data/view.h"

namespace start::core {

tensor::Tensor StartEncoder::EncodeBatch(
    const std::vector<const traj::Trajectory*>& batch,
    eval::EncodeMode mode) {
  START_CHECK(!batch.empty());
  std::vector<data::View> views;
  views.reserve(batch.size());
  for (const auto* t : batch) {
    views.push_back(mode == eval::EncodeMode::kDepartureOnly
                        ? data::MakeEtaView(*t)
                        : data::MakeView(*t));
  }
  return model_->Encode(data::MakeBatch(views)).cls;
}

}  // namespace start::core
