#include "core/retrain.h"

#include <utility>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/start_model.h"

namespace start::core {

common::Result<RetrainResult> WarmStartRetrain(
    const StartConfig& config, const roadnet::RoadNetwork* net,
    const roadnet::TransferProbability* transfer,
    const traj::TrafficModel* traffic,
    const std::vector<traj::Trajectory>& corpus,
    const RetrainOptions& options) {
  if (net == nullptr || transfer == nullptr) {
    return common::Status::InvalidArgument(
        "WarmStartRetrain: null road network / transfer probability");
  }
  if (corpus.empty()) {
    return common::Status::InvalidArgument(
        "WarmStartRetrain: empty fine-tune corpus");
  }
  for (const traj::Trajectory& t : corpus) {
    if (t.size() == 0 || t.size() > config.max_len) {
      return common::Status::InvalidArgument(
          "WarmStartRetrain: corpus trajectory is empty or exceeds max_len");
    }
  }
  if (options.base_checkpoint.empty() || options.output_checkpoint.empty()) {
    return common::Status::InvalidArgument(
        "WarmStartRetrain: base/output checkpoint path missing");
  }
  if (!CheckpointExists(options.base_checkpoint)) {
    return common::Status::NotFound("WarmStartRetrain: base checkpoint " +
                                    options.base_checkpoint + " not found");
  }

  // Fresh model, then parameters only from the base artifact: a warm start,
  // not a resume (see the header for why the distinction matters).
  common::Rng rng(options.pretrain.seed);
  StartModel model(config, net, transfer, &rng);
  START_RETURN_IF_ERROR(LoadModelCheckpoint(
      options.base_checkpoint, &model, HashStartConfig(config)));

  PretrainConfig plan = options.pretrain;
  plan.checkpoint_path = options.output_checkpoint;
  plan.resume = false;   // never continue a stale plan at the output path
  plan.max_steps = 0;    // run the whole fine-tune plan

  RetrainResult result;
  result.stats = Pretrain(&model, corpus, traffic, plan);
  result.corpus_size = static_cast<int64_t>(corpus.size());
  result.checkpoint = options.output_checkpoint;
  if (!CheckpointExists(options.output_checkpoint)) {
    return common::Status::IOError(
        "WarmStartRetrain: fine-tune finished but no artifact at " +
        options.output_checkpoint);
  }
  return result;
}

}  // namespace start::core
