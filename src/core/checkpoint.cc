#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "tensor/serialize.h"

namespace start::core {

namespace {

// Training-checkpoint record names. Optimizer slots are stored per parameter
// ("optim.m.<param>"), so restore is robust to parameter-order changes as
// long as names survive.
constexpr char kMoment1Prefix[] = "optim.m.";
constexpr char kMoment2Prefix[] = "optim.v.";
constexpr char kNextStepKey[] = "trainer.next_step";
constexpr char kAdamStepKey[] = "trainer.adam_step";
constexpr char kLossSumKey[] = "trainer.loss_sum";
constexpr char kMaskSumKey[] = "trainer.mask_sum";
constexpr char kConSumKey[] = "trainer.con_sum";
constexpr char kBatchCountKey[] = "trainer.batch_count";
constexpr char kRngStateKey[] = "trainer.rng_state";
constexpr char kScheduleKey[] = "trainer.schedule_fingerprint";
constexpr char kPlanHashKey[] = "trainer.plan_hash";
// Shard topology of the data-parallel engine: {num_shards, shard_grain,
// accum_steps} plus the per-replica RNG cursors. Absent in pre-engine
// checkpoints; ignored by older loaders — both directions stay compatible.
constexpr char kShardTopologyKey[] = "trainer.shard_topology";
constexpr char kShardRngKey[] = "trainer.shard_rng";

void WarnOnHashMismatch(const std::string& path, uint64_t expected,
                        uint64_t actual) {
  if (expected != 0 && actual != 0 && expected != actual) {
    START_LOG(Warning) << "config-hash mismatch loading " << path
                       << ": checkpoint " << actual << " vs expected "
                       << expected
                       << " — loading anyway, shapes are checked per tensor";
  }
}

common::Status CollectNamedParameters(
    const nn::Module& model,
    std::map<std::string, tensor::Tensor>* out) {
  for (auto& [name, t] : model.NamedParameters()) {
    auto [it, inserted] = out->emplace(name, t);
    if (!inserted) {
      return common::Status::Internal("duplicate parameter name: " + name);
    }
  }
  return common::Status::OK();
}

/// Copies checkpoint tensors into the model's parameters (the shared logic
/// of both load paths).
common::Status ApplyParameters(
    const std::map<std::string, tensor::Tensor>& loaded, nn::Module* model,
    const LoadOptions& options) {
  for (auto& [name, t] : model->NamedParameters()) {
    const auto it = loaded.find(name);
    if (it == loaded.end()) {
      if (options.allow_missing) continue;
      return common::Status::NotFound("parameter missing in checkpoint: " +
                                      name);
    }
    if (it->second.shape() != t.shape()) {
      if (options.skip_mismatched) continue;
      return common::Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " +
          it->second.shape().ToString() + " vs model " +
          t.shape().ToString());
    }
    std::copy(it->second.data(), it->second.data() + t.numel(), t.data());
  }
  return common::Status::OK();
}

}  // namespace

uint64_t HashCombine(uint64_t h, uint64_t word) {
  h ^= word;
  h *= 0x100000001b3ULL;  // FNV-1a prime
  return h;
}

uint64_t HashStartConfig(const StartConfig& config) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = HashCombine(h, static_cast<uint64_t>(config.d));
  h = HashCombine(h, static_cast<uint64_t>(config.gat_layers));
  for (const int64_t heads : config.gat_heads) {
    h = HashCombine(h, static_cast<uint64_t>(heads));
  }
  h = HashCombine(h, static_cast<uint64_t>(config.encoder_layers));
  h = HashCombine(h, static_cast<uint64_t>(config.encoder_heads));
  h = HashCombine(h, static_cast<uint64_t>(config.ffn_dim));
  uint32_t dropout_bits = 0;
  std::memcpy(&dropout_bits, &config.dropout, sizeof(dropout_bits));
  h = HashCombine(h, dropout_bits);
  h = HashCombine(h, static_cast<uint64_t>(config.max_len));
  h = HashCombine(h, static_cast<uint64_t>(config.interval_hidden));
  uint64_t flags = 0;
  for (const bool flag :
       {config.use_tpe_gat, config.use_transfer_prob,
        config.use_time_embedding, config.use_time_interval,
        config.interval_use_hops, config.interval_use_log,
        config.interval_adaptive}) {
    flags = (flags << 1) | (flag ? 1 : 0);
  }
  h = HashCombine(h, flags);
  h = HashCombine(h, config.road_embedding_init.size());
  return h;
}

bool CheckpointExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

common::Status SaveModelCheckpoint(const std::string& path,
                                   const nn::Module& model,
                                   uint64_t config_hash) {
  tensor::RecordBundle bundle;
  START_RETURN_IF_ERROR(CollectNamedParameters(model, &bundle.tensors));
  return tensor::SaveBundle(path, config_hash, bundle);
}

common::Status LoadModelCheckpoint(const std::string& path, nn::Module* model,
                                   uint64_t expected_config_hash,
                                   const LoadOptions& options) {
  START_CHECK(model != nullptr);
  START_ASSIGN_OR_RETURN(tensor::LoadedBundle bundle,
                         tensor::LoadBundle(path));
  WarnOnHashMismatch(path, expected_config_hash, bundle.meta_tag);
  return ApplyParameters(bundle.records.tensors, model, options);
}

common::Status SaveTrainingCheckpoint(const std::string& path,
                                      const nn::Module& model,
                                      const nn::AdamW& opt,
                                      const TrainerState& state,
                                      uint64_t config_hash) {
  tensor::RecordBundle bundle;
  START_RETURN_IF_ERROR(CollectNamedParameters(model, &bundle.tensors));

  // AdamW slots ride along as tensors shaped like their parameter, keyed by
  // the parameter's registry name.
  const auto named = model.NamedParameters();
  const auto& params = opt.params();
  if (named.size() != params.size()) {
    return common::Status::InvalidArgument(
        "optimizer parameter count does not match the model's registry "
        "(was the optimizer built from this model's Parameters()?)");
  }
  for (size_t i = 0; i < named.size(); ++i) {
    const auto& [name, param] = named[i];
    if (params[i].impl() != param.impl()) {
      return common::Status::InvalidArgument(
          "optimizer parameter order does not match the model's registry");
    }
    bundle.tensors.emplace(
        kMoment1Prefix + name,
        tensor::Tensor::FromVector(param.shape(), opt.moment1()[i]));
    bundle.tensors.emplace(
        kMoment2Prefix + name,
        tensor::Tensor::FromVector(param.shape(), opt.moment2()[i]));
  }

  bundle.ints[kNextStepKey] = {state.next_step};
  bundle.ints[kAdamStepKey] = {state.adam_step};
  bundle.ints[kBatchCountKey] = state.batch_count;
  bundle.doubles[kLossSumKey] = state.loss_sum;
  bundle.doubles[kMaskSumKey] = state.mask_sum;
  bundle.doubles[kConSumKey] = state.con_sum;
  bundle.uints[kRngStateKey] = state.rng_state;
  bundle.uints[kScheduleKey] = {state.schedule_fingerprint};
  bundle.uints[kPlanHashKey] = {state.plan_hash};
  if (state.num_shards > 0) {
    bundle.ints[kShardTopologyKey] = {state.num_shards, state.shard_grain,
                                      state.accum_steps};
    bundle.uints[kShardRngKey] = state.shard_rng;
  }
  return tensor::SaveBundle(path, config_hash, bundle);
}

common::Result<TrainerState> LoadTrainingCheckpoint(
    const std::string& path, nn::Module* model, nn::AdamW* opt,
    uint64_t expected_config_hash, uint64_t expected_plan_hash) {
  START_CHECK(model != nullptr);
  START_CHECK(opt != nullptr);
  START_ASSIGN_OR_RETURN(tensor::LoadedBundle bundle,
                         tensor::LoadBundle(path));
  WarnOnHashMismatch(path, expected_config_hash, bundle.meta_tag);

  const auto& ints = bundle.records.ints;
  const auto next_step_it = ints.find(kNextStepKey);
  const auto adam_step_it = ints.find(kAdamStepKey);
  if (next_step_it == ints.end() || adam_step_it == ints.end()) {
    return common::Status::FailedPrecondition(
        path + " is a model-only checkpoint; it cannot resume training "
               "(optimizer/trainer records are absent)");
  }
  if (next_step_it->second.empty() || adam_step_it->second.empty()) {
    return common::Status::FailedPrecondition(
        path + " has empty trainer cursor records; refusing to resume");
  }
  if (expected_plan_hash != 0) {
    const auto it = bundle.records.uints.find(kPlanHashKey);
    if (it != bundle.records.uints.end() && !it->second.empty() &&
        it->second[0] != expected_plan_hash) {
      return common::Status::FailedPrecondition(
          path + " was written under a different training plan "
                 "(epochs/batch size/seed/corpus changed); refusing to "
                 "resume an incoherent run");
    }
  }

  // A resume must be exact: every parameter present with its exact shape.
  START_RETURN_IF_ERROR(
      ApplyParameters(bundle.records.tensors, model, LoadOptions{}));

  const auto named = model->NamedParameters();
  if (named.size() != opt->params().size()) {
    return common::Status::InvalidArgument(
        "optimizer parameter count does not match the model's registry");
  }
  for (size_t i = 0; i < named.size(); ++i) {
    const auto& [name, param] = named[i];
    // Mirror the save-side alignment check: slots are restored by index, so
    // the optimizer's order must be the registry's order or m/v would land
    // on (and be sized for) the wrong parameters.
    if (opt->params()[i].impl() != param.impl()) {
      return common::Status::InvalidArgument(
          "optimizer parameter order does not match the model's registry");
    }
    for (const auto& [prefix, slots] :
         {std::pair{kMoment1Prefix, &opt->moment1()},
          std::pair{kMoment2Prefix, &opt->moment2()}}) {
      const auto it = bundle.records.tensors.find(prefix + name);
      if (it == bundle.records.tensors.end()) {
        return common::Status::NotFound("optimizer slot missing: " +
                                        std::string(prefix) + name);
      }
      if (it->second.numel() != param.numel()) {
        return common::Status::InvalidArgument("optimizer slot size mismatch: " +
                                               (prefix + name));
      }
      (*slots)[i].assign(it->second.data(),
                         it->second.data() + it->second.numel());
    }
  }

  TrainerState state;
  state.next_step = next_step_it->second[0];
  state.adam_step = adam_step_it->second[0];
  opt->set_step_count(state.adam_step);
  const auto copy_ints = [&](const char* key, std::vector<int64_t>* out) {
    const auto it = ints.find(key);
    if (it != ints.end()) *out = it->second;
  };
  const auto copy_doubles = [&](const char* key, std::vector<double>* out) {
    const auto it = bundle.records.doubles.find(key);
    if (it != bundle.records.doubles.end()) *out = it->second;
  };
  copy_ints(kBatchCountKey, &state.batch_count);
  copy_doubles(kLossSumKey, &state.loss_sum);
  copy_doubles(kMaskSumKey, &state.mask_sum);
  copy_doubles(kConSumKey, &state.con_sum);
  const auto rng_it = bundle.records.uints.find(kRngStateKey);
  if (rng_it != bundle.records.uints.end()) state.rng_state = rng_it->second;
  const auto sched_it = bundle.records.uints.find(kScheduleKey);
  if (sched_it != bundle.records.uints.end() && !sched_it->second.empty()) {
    state.schedule_fingerprint = sched_it->second[0];
  }
  const auto plan_it = bundle.records.uints.find(kPlanHashKey);
  if (plan_it != bundle.records.uints.end() && !plan_it->second.empty()) {
    state.plan_hash = plan_it->second[0];
  }
  const auto topo_it = ints.find(kShardTopologyKey);
  if (topo_it != ints.end() && topo_it->second.size() >= 3) {
    state.num_shards = topo_it->second[0];
    state.shard_grain = topo_it->second[1];
    state.accum_steps = topo_it->second[2];
  }
  const auto shard_rng_it = bundle.records.uints.find(kShardRngKey);
  if (shard_rng_it != bundle.records.uints.end()) {
    state.shard_rng = shard_rng_it->second;
  }
  return state;
}

}  // namespace start::core
