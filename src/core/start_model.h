#ifndef START_CORE_START_MODEL_H_
#define START_CORE_START_MODEL_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/tpe_gat.h"
#include "data/batch.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "roadnet/road_network.h"

namespace start::core {

/// \brief Output of the trajectory encoder.
struct EncoderOutput {
  tensor::Tensor sequence;  ///< [B, L+1, d] — position 0 is the [CLS] slot.
  tensor::Tensor cls;       ///< [B, d] pooled trajectory representations p_i.
};

/// \brief The full START model: TPE-GAT road encoder (stage 1) plus the
/// Time-Aware Trajectory Encoder (stage 2), Sec. III of the paper.
///
/// The model owns every learnable component used by both self-supervised
/// tasks: road/mask/CLS embeddings, minute-of-day and day-of-week tables,
/// the adaptive time-interval transform (Eq. 9), the Transformer stack, and
/// the masked-recovery output head (Eq. 12).
class StartModel : public nn::Module {
 public:
  StartModel(const StartConfig& config, const roadnet::RoadNetwork* net,
             const roadnet::TransferProbability* transfer, common::Rng* rng);

  /// Runs stage 1 and returns the road representations r_i [V, d].
  tensor::Tensor ComputeRoadReps() const;

  /// Encodes a padded batch (stage 2). The batch's sentinel road ids
  /// (kMaskRoad / kPadRoad) select the [MASK] embedding / a zero row.
  EncoderOutput Encode(const data::Batch& batch) const;

  /// Same, but with stage 1 already evaluated: `road_reps` is the
  /// `ComputeRoadReps()` output. A training step that encodes several
  /// batches under the same parameters (masked + contrastive) computes the
  /// road representations once and shares them — gradients flow into the
  /// GAT from every batch that used the tensor.
  EncoderOutput Encode(const data::Batch& batch,
                       const tensor::Tensor& road_reps) const;

  /// Extended token lookup table [V+2, d]: rows [0, V) are `road_reps`,
  /// row V the [MASK] embedding, row V+1 a zero row for padding. Encode
  /// assembles this per call; inference consumers whose parameters cannot
  /// change (serve::FrozenEncoder) build it once and feed EncodeWithTable,
  /// dropping an O(V·d) copy from every request.
  tensor::Tensor BuildExtendedTable(const tensor::Tensor& road_reps) const;

  /// Stage 2 with the extended lookup table already assembled. `ext` must be
  /// a `BuildExtendedTable` result for the current parameters.
  EncoderOutput EncodeWithTable(const data::Batch& batch,
                                const tensor::Tensor& ext) const;

  /// Masked-recovery logits [num_masked, |V|] for the listed masked slots
  /// ((b, pos) positions are 0-based into the original, CLS-less sequence).
  tensor::Tensor MaskedLogits(const EncoderOutput& out,
                              const std::vector<int64_t>& flat_positions,
                              int64_t max_len) const;

  const StartConfig& config() const { return config_; }
  int64_t num_roads() const { return num_roads_; }
  /// Construction inputs, exposed so the data-parallel trainer can build
  /// structurally identical replicas (core/parallel_trainer.h).
  const roadnet::RoadNetwork* net() const { return net_; }
  const roadnet::TransferProbability* transfer() const { return transfer_; }

 private:
  /// Builds the additive attention bias: padding mask + ∆̃ (Eqs. 7–9).
  tensor::Tensor BuildScoreBias(const data::Batch& batch) const;

  StartConfig config_;
  const roadnet::RoadNetwork* net_;
  const roadnet::TransferProbability* transfer_;
  int64_t num_roads_;

  // Stage 1: either the TPE-GAT over road features, or a plain learnable
  // road-embedding table (the "w/o TPE-GAT" / "w/ Node2vec" ablations).
  std::unique_ptr<TpeGat> gat_;
  tensor::Tensor road_features_;   ///< Constant [V, F] input to the GAT.
  tensor::Tensor road_table_;      ///< Learnable [V, d] (ablations only).

  // Stage 2 embeddings.
  tensor::Tensor mask_embedding_;  ///< [1, d] for the [MASK] token.
  tensor::Tensor cls_embedding_;   ///< [1, d] for the [CLS] placeholder.
  std::unique_ptr<nn::Embedding> minute_embedding_;  ///< 1441 rows (0=[MASKT]).
  std::unique_ptr<nn::Embedding> dow_embedding_;     ///< 8 rows (0=[MASKT]).
  tensor::Tensor positional_;      ///< Constant sinusoidal [max_len+1, d].

  // Adaptive interval transform (Eq. 9).
  tensor::Tensor interval_w1_;  ///< [1, k]
  tensor::Tensor interval_w2_;  ///< [k, 1]

  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> layers_;

  // Masked-recovery head (Eq. 12).
  std::unique_ptr<nn::Linear> mlm_head_;
};

}  // namespace start::core

#endif  // START_CORE_START_MODEL_H_
