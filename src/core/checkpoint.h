#ifndef START_CORE_CHECKPOINT_H_
#define START_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace start::core {

/// \brief Versioned checkpointing: the bridge that turns the pre-trainer into
/// a reusable artifact producer.
///
/// Two checkpoint flavours share one on-disk container (tensor::SaveBundle,
/// magic "STTN" v2, per-record CRC-32, config hash in the header tag):
///
///  * **Model checkpoint** — parameters only. Written by Module::Save or
///    SaveModelCheckpoint; consumed by eval::TrajectoryEncoder::WarmStart,
///    the fine-tuning tasks, and the transfer example.
///  * **Training checkpoint** — parameters + AdamW slot buffers + trainer
///    bookkeeping (step cursor, per-epoch loss accumulators, RNG cursor).
///    Written/resumed by core::Pretrain; an interrupted run restarted from
///    one continues bitwise-identically to an uninterrupted run (asserted by
///    tests/core_pretrain_test.cc).
///
/// A training checkpoint is a superset, so every consumer of a model
/// checkpoint can also load one. See ARCHITECTURE.md "Checkpoint format".

/// Hash of the architecture-defining StartConfig fields (FNV-1a). Stored in
/// the checkpoint header; a loader that expects a different hash still loads
/// (shapes are checked per tensor) but logs a warning, since silently mixing
/// architectures is the classic way to warm-start the wrong model.
uint64_t HashStartConfig(const StartConfig& config);

/// One FNV-1a step: folds `word` into `h`. Callers extend HashStartConfig
/// with run-level knobs (e.g. the pre-train plan shape) before saving.
uint64_t HashCombine(uint64_t h, uint64_t word);

/// How strictly model parameters are matched against checkpoint records
/// (mirrors Module::Load: fine-tune heads may be absent; |V|-bound tensors
/// may mismatch across road networks).
struct LoadOptions {
  bool allow_missing = false;
  bool skip_mismatched = false;
};

/// \brief Mutable trainer state captured in a training checkpoint.
///
/// `next_step` is the loader resume cursor: the first plan step the resumed
/// run must consume. The loss accumulators are the raw running sums (not
/// averages) so the resumed run's epoch trace is bitwise identical.
struct TrainerState {
  int64_t next_step = 0;
  int64_t adam_step = 0;  ///< AdamW bias-correction counter t.
  uint64_t schedule_fingerprint = 0;  ///< WarmupCosineSchedule::Fingerprint.
  /// Hash of everything that shapes the step plan (epochs, batch size, seed,
  /// corpus size). A resume under a different plan hash is a different run —
  /// Pretrain refuses it and starts fresh rather than continue incoherently.
  uint64_t plan_hash = 0;
  std::vector<double> loss_sum;
  std::vector<double> mask_sum;
  std::vector<double> con_sum;
  std::vector<int64_t> batch_count;
  /// Dropout-stream cursor at save time (common::Rng::GetState). Pretrain
  /// reseeds the stream per step, so this is diagnostic; consumers that draw
  /// from a long-lived stream restore it to continue the exact sequence.
  std::vector<uint64_t> rng_state;

  // --- Shard topology (data-parallel engine, core/parallel_trainer.h) ------
  /// Replica count the checkpointing run used. Informational only: shard
  /// count is a pure scheduling knob (K shards are bitwise-identical to 1),
  /// so a resume may legally use a different value — asserted by
  /// tests/parallel_trainer_test.cc.
  int64_t num_shards = 0;  ///< 0 = legacy single-replica loop.
  /// Micro-shard decomposition grain (samples per shard). Unlike num_shards
  /// this *defines* the gradient summation order, so it is folded into the
  /// plan hash: resuming under a different grain is refused.
  int64_t shard_grain = 0;
  /// Micro-batches combined per optimizer step; also summation-order-defining
  /// and plan-hash-folded.
  int64_t accum_steps = 1;
  /// Per-replica dropout-stream cursors at save time (6 words per shard,
  /// common::Rng::GetState layout). Diagnostic like `rng_state`: the engine
  /// reseeds every (optimizer step, micro-shard) pair via StepSeed, so the
  /// cursors document where each replica's stream stopped rather than being
  /// required to resume it.
  std::vector<uint64_t> shard_rng;
};

/// True when `path` exists and is readable (the resume probe).
bool CheckpointExists(const std::string& path);

/// Writes a model checkpoint: every named parameter, dense, with
/// `config_hash` in the header.
common::Status SaveModelCheckpoint(const std::string& path,
                                   const nn::Module& model,
                                   uint64_t config_hash);

/// Loads model parameters from a model OR training checkpoint. Logs a
/// warning when the header hash differs from `expected_config_hash` (pass 0
/// to skip the comparison). Parameter matching follows `options`.
common::Status LoadModelCheckpoint(const std::string& path, nn::Module* model,
                                   uint64_t expected_config_hash,
                                   const LoadOptions& options = {});

/// Writes a training checkpoint: model parameters, AdamW moment buffers
/// (named per parameter), and `state`.
common::Status SaveTrainingCheckpoint(const std::string& path,
                                      const nn::Module& model,
                                      const nn::AdamW& opt,
                                      const TrainerState& state,
                                      uint64_t config_hash);

/// Restores a training checkpoint into `model` and `opt` (strict parameter
/// matching — a resume must be exact) and returns the trainer state. Fails
/// with FailedPrecondition on a model-only checkpoint, or — before touching
/// `model`/`opt` — when `expected_plan_hash` is non-zero and differs from
/// the checkpoint's, so a refused resume leaves the caller's fresh state
/// intact for a from-scratch run.
common::Result<TrainerState> LoadTrainingCheckpoint(
    const std::string& path, nn::Module* model, nn::AdamW* opt,
    uint64_t expected_config_hash, uint64_t expected_plan_hash = 0);

}  // namespace start::core

#endif  // START_CORE_CHECKPOINT_H_
