#include "core/start_model.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace start::core {

using tensor::Shape;
using tensor::Tensor;

StartModel::StartModel(const StartConfig& config,
                       const roadnet::RoadNetwork* net,
                       const roadnet::TransferProbability* transfer,
                       common::Rng* rng)
    : config_(config),
      net_(net),
      transfer_(transfer),
      num_roads_(net->num_segments()) {
  START_CHECK(net != nullptr);
  START_CHECK(net->finalized());
  const int64_t d = config_.d;
  if (config_.use_tpe_gat) {
    std::vector<int64_t> heads = config_.gat_heads;
    heads.resize(static_cast<size_t>(config_.gat_layers), 1);
    for (auto& h : heads) {
      while (h > 1 && d % h != 0) --h;  // keep head counts divisors of d
    }
    gat_ = std::make_unique<TpeGat>(
        net, config_.use_transfer_prob ? transfer : nullptr,
        roadnet::RoadNetwork::FeatureDim(), d, heads,
        config_.use_transfer_prob, rng);
    RegisterModule("tpe_gat", gat_.get());
    road_features_ = Tensor::FromVector(
        Shape({num_roads_, roadnet::RoadNetwork::FeatureDim()}),
        net->BuildFeatureMatrix());
  } else {
    Tensor init;
    if (!config_.road_embedding_init.empty()) {
      START_CHECK_EQ(
          static_cast<int64_t>(config_.road_embedding_init.size()),
          num_roads_ * d);
      init = Tensor::FromVector(Shape({num_roads_, d}),
                                config_.road_embedding_init);
    } else {
      init = nn::NormalInit(Shape({num_roads_, d}), rng, 0.02f);
    }
    road_table_ = RegisterParameter("road_table", init);
  }
  mask_embedding_ =
      RegisterParameter("mask_embedding", nn::NormalInit(Shape({1, d}), rng));
  cls_embedding_ =
      RegisterParameter("cls_embedding", nn::NormalInit(Shape({1, d}), rng));
  minute_embedding_ = std::make_unique<nn::Embedding>(1441, d, rng);
  dow_embedding_ = std::make_unique<nn::Embedding>(8, d, rng);
  RegisterModule("minute_embedding", minute_embedding_.get());
  RegisterModule("dow_embedding", dow_embedding_.get());
  positional_ = nn::SinusoidalPositionalEncoding(config_.max_len + 1, d);
  interval_w1_ = RegisterParameter(
      "interval_w1",
      nn::XavierUniform(Shape({1, config_.interval_hidden}), rng));
  interval_w2_ = RegisterParameter(
      "interval_w2",
      nn::XavierUniform(Shape({config_.interval_hidden, 1}), rng));
  for (int64_t l = 0; l < config_.encoder_layers; ++l) {
    layers_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
        d, config_.encoder_heads, config_.FfnDim(), rng, config_.dropout));
    RegisterModule("encoder" + std::to_string(l), layers_.back().get());
  }
  mlm_head_ = std::make_unique<nn::Linear>(d, num_roads_, rng);
  RegisterModule("mlm_head", mlm_head_.get());
}

Tensor StartModel::ComputeRoadReps() const {
  if (config_.use_tpe_gat) return gat_->Forward(road_features_);
  return road_table_;
}

Tensor StartModel::BuildScoreBias(const data::Batch& batch) const {
  const int64_t b = batch.batch_size;
  const int64_t l1 = batch.max_len + 1;  // +1 for [CLS]
  // Padding bias: CLS (pos 0) is always valid.
  std::vector<int64_t> lengths(batch.lengths.size());
  for (size_t i = 0; i < batch.lengths.size(); ++i) {
    lengths[i] = batch.lengths[i] + 1;
  }
  const Tensor pad_bias = nn::MakePaddingBias(lengths, l1);
  if (!config_.use_time_interval) return pad_bias;

  // ∆ of Eq. (8) and the decayed ∆' (δ' = 1/log(e + δ), Sec. III-B2).
  // CLS rows/columns use δ = 0 (full view of the sequence); padded positions
  // are already excluded by the padding bias.
  std::vector<float> dprime(static_cast<size_t>(b * l1 * l1));
  for (int64_t s = 0; s < b; ++s) {
    const double* times = batch.times.data() + s * batch.max_len;
    float* base = dprime.data() + s * l1 * l1;
    for (int64_t i = 0; i < l1; ++i) {
      for (int64_t j = 0; j < l1; ++j) {
        double delta;
        if (i == 0 || j == 0) {
          delta = 0.0;
        } else if (config_.interval_use_hops) {
          delta = static_cast<double>(std::llabs(i - j));  // "w/ Hop"
        } else {
          delta = std::fabs(times[i - 1] - times[j - 1]);
        }
        double dp;
        if (config_.interval_use_log) {
          dp = 1.0 / std::log(M_E + delta);
        } else {
          dp = 1.0 / std::max(1.0, delta);  // "w/o Log" variant
        }
        base[i * l1 + j] = static_cast<float>(dp);
      }
    }
  }
  Tensor dprime_t =
      Tensor::FromVector(Shape({b * l1 * l1, 1}), std::move(dprime));
  Tensor delta_tilde;
  if (config_.interval_adaptive) {
    // Eq. (9): ∆̃ = LeakyReLU(∆' ω1) ω2ᵀ, element-wise through a k-wide map.
    delta_tilde = tensor::MatMul(
        tensor::LeakyRelu(tensor::MatMul(dprime_t, interval_w1_), 0.2f),
        interval_w2_);
  } else {
    delta_tilde = dprime_t;  // "w/o Adaptive": constant during training
  }
  delta_tilde = tensor::Reshape(delta_tilde, Shape({b, l1, l1}));
  return tensor::Add(pad_bias, delta_tilde);
}

EncoderOutput StartModel::Encode(const data::Batch& batch) const {
  return Encode(batch, ComputeRoadReps());
}

Tensor StartModel::BuildExtendedTable(const Tensor& road_reps) const {
  // Rows [0, V) are roads, row V the [MASK] embedding, row V+1 a frozen
  // zero row for padding.
  const Tensor zero_row = Tensor::Zeros(Shape({1, config_.d}));
  return tensor::Concat({road_reps, mask_embedding_, zero_row}, 0);
}

EncoderOutput StartModel::Encode(const data::Batch& batch,
                                 const Tensor& road_reps) const {
  return EncodeWithTable(batch, BuildExtendedTable(road_reps));
}

EncoderOutput StartModel::EncodeWithTable(const data::Batch& batch,
                                          const Tensor& ext) const {
  const int64_t b = batch.batch_size;
  const int64_t l = batch.max_len;
  const int64_t d = config_.d;
  START_CHECK_EQ(ext.dim(0), num_roads_ + 2);
  std::vector<int64_t> flat_ids(static_cast<size_t>(b * l));
  for (int64_t i = 0; i < b * l; ++i) {
    const int64_t r = batch.roads[static_cast<size_t>(i)];
    if (r >= 0) {
      START_CHECK_LT(r, num_roads_);
      flat_ids[static_cast<size_t>(i)] = r;
    } else if (r == data::kMaskRoad) {
      flat_ids[static_cast<size_t>(i)] = num_roads_;
    } else {
      flat_ids[static_cast<size_t>(i)] = num_roads_ + 1;  // padding
    }
  }
  Tensor x = tensor::GatherRows(ext, flat_ids);  // [B*L, d]
  if (config_.use_time_embedding) {
    // Eq. (5): x_i = r_i + tm_i + td_i (+ pe_i below).
    x = tensor::Add(x, minute_embedding_->Forward(batch.minute_idx));
    x = tensor::Add(x, dow_embedding_->Forward(batch.dow_idx));
  }
  // Positional encoding: rows 1..L (row 0 is reserved for [CLS]).
  std::vector<int64_t> pos_ids(static_cast<size_t>(b * l));
  for (int64_t s = 0; s < b; ++s) {
    for (int64_t i = 0; i < l; ++i) {
      pos_ids[static_cast<size_t>(s * l + i)] = i + 1;
    }
  }
  x = tensor::Add(x, tensor::GatherRows(positional_, pos_ids));
  x = tensor::Reshape(x, Shape({b, l, d}));
  // Prepend the [CLS] placeholder (Sec. III-B3), with positional row 0.
  const std::vector<int64_t> zeros(static_cast<size_t>(b), 0);
  Tensor cls_tokens = tensor::Add(tensor::GatherRows(cls_embedding_, zeros),
                                  tensor::GatherRows(positional_, zeros));
  cls_tokens = tensor::Reshape(cls_tokens, Shape({b, 1, d}));
  Tensor seq = tensor::Concat({cls_tokens, x}, 1);  // [B, L+1, d]
  // Embedding dropout: regular regularisation in training, and the Dropout
  // contrastive augmentation (two passes draw independent masks).
  seq = tensor::Dropout(seq, config_.dropout, training(), dropout_rng());

  const Tensor bias = BuildScoreBias(batch);
  for (const auto& layer : layers_) {
    seq = layer->Forward(seq, bias);
  }
  EncoderOutput out;
  out.sequence = seq;
  out.cls = tensor::Reshape(tensor::Slice(seq, 1, 0, 1), Shape({b, d}));
  return out;
}

Tensor StartModel::MaskedLogits(const EncoderOutput& out,
                                const std::vector<int64_t>& flat_positions,
                                int64_t max_len) const {
  START_CHECK(!flat_positions.empty());
  const int64_t b = out.sequence.dim(0);
  const int64_t l1 = out.sequence.dim(1);
  START_CHECK_EQ(l1, max_len + 1);
  const Tensor flat = tensor::Reshape(
      out.sequence, Shape({b * l1, out.sequence.dim(2)}));
  // Shift for the [CLS] offset: data position p of sequence s lives at row
  // s * (L+1) + (p+1).
  std::vector<int64_t> rows;
  rows.reserve(flat_positions.size());
  for (const int64_t fp : flat_positions) {
    const int64_t s = fp / max_len;
    const int64_t p = fp % max_len;
    rows.push_back(s * l1 + p + 1);
  }
  const Tensor gathered = tensor::GatherRows(flat, rows);
  return mlm_head_->Forward(gathered);  // [M, |V|]
}

}  // namespace start::core
