#include "core/pretrain.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "data/loader.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "tensor/ops.h"

namespace start::core {

using tensor::Tensor;

namespace {

/// Salt separating the dropout stream from the loader's augmentation stream:
/// both are derived per step from the run seed via StepSeed, but must never
/// collide. Reseeding dropout per step makes every optimizer step a pure
/// function of (parameters, optimizer state, step index), which is what lets
/// a resumed run replay the exact masks of an uninterrupted one.
constexpr uint64_t kDropoutStreamSalt = 0x5eedD120F0D7ULL;

}  // namespace

PretrainStats Pretrain(StartModel* model,
                       const std::vector<traj::Trajectory>& corpus,
                       const traj::TrafficModel* traffic,
                       const PretrainConfig& config) {
  START_CHECK(model != nullptr);
  START_CHECK(!corpus.empty());
  START_CHECK(config.use_mask_task || config.use_contrastive_task);
  model->SetTraining(true);

  // The coordinator builds the whole multi-epoch plan up front (shuffles and
  // bucket assignment are epoch-seeded, not consumed from a shared stream),
  // then the loader's workers assemble step k+1.. while step k trains.
  data::PlanConfig plan_config;
  plan_config.batch_size = config.batch_size;
  plan_config.epochs = config.epochs;
  plan_config.bucket_by_length = config.bucket_by_length;
  plan_config.bucket_width = config.bucket_width;
  plan_config.seed = config.seed;
  const std::vector<int64_t> corpus_lengths = data::Lengths(corpus);
  data::PretrainPlan plan =
      data::MakeShuffledPlan(corpus_lengths, plan_config);
  const std::vector<int64_t> epoch_of_step = std::move(plan.epoch_of_step);
  const int64_t total_steps = static_cast<int64_t>(plan.steps.size());

  data::PretrainBatchOptions batch_options;
  batch_options.use_mask_task = config.use_mask_task;
  batch_options.use_contrastive_task = config.use_contrastive_task;
  batch_options.mask_span = config.mask_span;
  batch_options.mask_ratio = config.mask_ratio;
  batch_options.aug_a = config.aug_a;
  batch_options.aug_b = config.aug_b;

  nn::AdamW opt(model->Parameters(), config.lr, 0.9, 0.999, 1e-8,
                config.weight_decay);
  const nn::WarmupCosineSchedule schedule(
      config.lr,
      static_cast<int64_t>(config.warmup_fraction *
                           static_cast<double>(total_steps)),
      total_steps, config.lr * 0.05);

  // The header tag identifies the model architecture (any consumer of the
  // artifact checks it); the plan hash additionally pins everything
  // MakeShuffledPlan's output depends on — epochs, batch size, bucketing,
  // seed, and the full length profile of the corpus — so a resume under a
  // different step plan is refused up front.
  const uint64_t config_hash = HashStartConfig(model->config());
  uint64_t plan_hash = HashCombine(config_hash, 0x9e3779b97f4a7c15ULL);
  plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(config.epochs));
  plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(config.batch_size));
  plan_hash = HashCombine(plan_hash, config.bucket_by_length ? 1 : 0);
  plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(config.bucket_width));
  plan_hash = HashCombine(plan_hash, config.seed);
  plan_hash = HashCombine(plan_hash, corpus_lengths.size());
  for (const int64_t length : corpus_lengths) {
    plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(length));
  }

  // Trainer state doubles as the live accumulator set: the loss sums below
  // are exactly what a checkpoint persists, so a resumed run's epoch trace
  // continues from the same partial sums.
  TrainerState state;
  state.loss_sum.assign(static_cast<size_t>(config.epochs), 0.0);
  state.mask_sum.assign(static_cast<size_t>(config.epochs), 0.0);
  state.con_sum.assign(static_cast<size_t>(config.epochs), 0.0);
  state.batch_count.assign(static_cast<size_t>(config.epochs), 0);

  int64_t start_step = 0;
  if (config.resume && !config.checkpoint_path.empty() &&
      CheckpointExists(config.checkpoint_path)) {
    auto resumed = LoadTrainingCheckpoint(config.checkpoint_path, model, &opt,
                                          config_hash, plan_hash);
    if (resumed.ok()) {
      state = std::move(*resumed);
      start_step = state.next_step;
      START_CHECK_LE(start_step, total_steps);
      START_CHECK_EQ(static_cast<int64_t>(state.loss_sum.size()),
                     config.epochs);
      if (state.schedule_fingerprint != 0 &&
          state.schedule_fingerprint != schedule.Fingerprint()) {
        START_LOG(Warning)
            << "resume: LR schedule differs from the checkpointed run "
               "(total_steps/lr changed?) — the LR trajectory will diverge";
      }
      START_LOG(Info) << "resuming pretrain from step " << start_step << "/"
                      << total_steps << " (" << config.checkpoint_path << ")";
    } else {
      START_LOG(Warning) << "cannot resume from " << config.checkpoint_path
                         << ": " << resumed.status().ToString()
                         << " — training from scratch";
    }
  }

  data::LoaderConfig loader_config;
  loader_config.num_workers = config.num_workers;
  loader_config.prefetch_depth = config.prefetch_depth;
  loader_config.seed = config.seed;
  loader_config.start_step = start_step;
  data::BatchLoader loader(
      std::move(plan.steps),
      data::MakePretrainBuilder(&corpus, traffic, batch_options),
      loader_config);

  const auto log_epoch = [&](int64_t epoch) {
    const auto e = static_cast<size_t>(epoch);
    const double denom =
        static_cast<double>(std::max<int64_t>(1, state.batch_count[e]));
    START_LOG(Info) << "pretrain epoch " << epoch << " loss "
                    << state.loss_sum[e] / denom << " (mask "
                    << state.mask_sum[e] / denom << ", con "
                    << state.con_sum[e] / denom << ")";
  };
  int64_t current_epoch =
      start_step < total_steps
          ? epoch_of_step[static_cast<size_t>(start_step)]
          : std::max<int64_t>(0, config.epochs - 1);

  // Every step draws its dropout masks from a stream reseeded with the
  // step's private seed (mirroring the loader's determinism contract), so an
  // uninterrupted run and a checkpoint-resumed run sample identical masks.
  common::Rng dropout_rng(config.seed);
  model->SetDropoutRng(&dropout_rng);

  const auto save_checkpoint = [&](int64_t next_step) {
    state.next_step = next_step;
    state.adam_step = opt.step_count();
    state.schedule_fingerprint = schedule.Fingerprint();
    state.plan_hash = plan_hash;
    state.rng_state = dropout_rng.GetState();
    const auto st = SaveTrainingCheckpoint(config.checkpoint_path, *model,
                                           opt, state, config_hash);
    if (!st.ok()) {
      START_LOG(Warning) << "checkpoint save failed: " << st.ToString();
    } else if (config.verbose) {
      START_LOG(Info) << "checkpointed step " << next_step << " -> "
                      << config.checkpoint_path;
    }
  };

  int64_t steps_done = 0;
  data::TrainingBatch tb;
  while (loader.Next(&tb)) {
    dropout_rng.Seed(data::BatchLoader::StepSeed(
        config.seed ^ kDropoutStreamSalt, tb.step));
    Tensor loss;
    double mask_val = 0.0, con_val = 0.0;
    // Stage 1 once per step: both pretext batches are encoded under the
    // same parameters, so they share the road representations (gradients
    // accumulate into the GAT from both graphs).
    const Tensor road_reps = model->ComputeRoadReps();

    // --- Task 1: span-masked trajectory recovery (Sec. III-C1) -----------
    if (tb.has_masked && !tb.mask_positions.empty()) {
      const EncoderOutput out = model->Encode(tb.masked, road_reps);
      const Tensor logits =
          model->MaskedLogits(out, tb.mask_positions, tb.masked.max_len);
      const Tensor mask_loss =
          tensor::CrossEntropyWithLogits(logits, tb.mask_targets);
      mask_val = mask_loss.item();
      loss = tensor::Scale(mask_loss, config.use_contrastive_task
                                          ? static_cast<float>(config.lambda)
                                          : 1.0f);
    }

    // --- Task 2: trajectory contrastive learning (Sec. III-C2) -----------
    if (tb.has_contrastive) {
      const EncoderOutput out = model->Encode(tb.contrastive, road_reps);
      const Tensor con_loss = nn::NtXentLoss(out.cls, config.tau);
      con_val = con_loss.item();
      const Tensor scaled = tensor::Scale(
          con_loss, config.use_mask_task
                        ? static_cast<float>(1.0 - config.lambda)
                        : 1.0f);
      loss = loss.defined() ? tensor::Add(loss, scaled) : scaled;
    }

    START_CHECK(loss.defined());
    opt.ZeroGrad();
    loss.Backward();
    nn::ClipGradNorm(model->Parameters(), config.grad_clip);
    opt.set_lr(schedule.LrAt(tb.step));
    opt.Step();

    // Steps arrive in plan order, so epochs advance monotonically; log each
    // one as soon as its last batch has trained.
    const int64_t epoch = epoch_of_step[static_cast<size_t>(tb.step)];
    if (config.verbose && epoch != current_epoch) {
      log_epoch(current_epoch);
      current_epoch = epoch;
    }
    const auto e = static_cast<size_t>(epoch);
    state.loss_sum[e] += loss.item();
    state.mask_sum[e] += mask_val;
    state.con_sum[e] += con_val;
    ++state.batch_count[e];

    ++steps_done;
    const bool hit_max = config.max_steps > 0 && steps_done >= config.max_steps;
    const bool last_step = tb.step + 1 == total_steps;
    if (!config.checkpoint_path.empty() &&
        (hit_max || last_step ||
         (config.checkpoint_every_steps > 0 &&
          steps_done % config.checkpoint_every_steps == 0))) {
      save_checkpoint(tb.step + 1);
    }
    loader.Recycle(std::move(tb));
    if (hit_max) break;  // simulated interruption; loader shuts down cleanly
  }
  model->SetDropoutRng(nullptr);  // the stream above is about to go away
  if (config.verbose) log_epoch(current_epoch);

  PretrainStats stats;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto e = static_cast<size_t>(epoch);
    const double denom =
        static_cast<double>(std::max<int64_t>(1, state.batch_count[e]));
    stats.epoch_loss.push_back(state.loss_sum[e] / denom);
    stats.epoch_mask_loss.push_back(state.mask_sum[e] / denom);
    stats.epoch_contrastive_loss.push_back(state.con_sum[e] / denom);
  }
  return stats;
}

}  // namespace start::core
