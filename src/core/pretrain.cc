#include "core/pretrain.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "data/batch.h"
#include "data/span_mask.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "tensor/ops.h"

namespace start::core {

using tensor::Tensor;

PretrainStats Pretrain(StartModel* model,
                       const std::vector<traj::Trajectory>& corpus,
                       const traj::TrafficModel* traffic,
                       const PretrainConfig& config) {
  START_CHECK(model != nullptr);
  START_CHECK(!corpus.empty());
  START_CHECK(config.use_mask_task || config.use_contrastive_task);
  common::Rng rng(config.seed);
  model->SetTraining(true);

  nn::AdamW opt(model->Parameters(), config.lr, 0.9, 0.999, 1e-8,
                config.weight_decay);
  const int64_t steps_per_epoch = std::max<int64_t>(
      1, static_cast<int64_t>(corpus.size()) / config.batch_size);
  const int64_t total_steps = steps_per_epoch * config.epochs;
  const nn::WarmupCosineSchedule schedule(
      config.lr,
      static_cast<int64_t>(config.warmup_fraction *
                           static_cast<double>(total_steps)),
      total_steps, config.lr * 0.05);

  data::AugmentationConfig aug_cfg;
  PretrainStats stats;
  int64_t step = 0;
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0, epoch_mask = 0.0, epoch_con = 0.0;
    int64_t batches = 0;
    for (int64_t s = 0; s < steps_per_epoch; ++s) {
      // Assemble the mini-batch of trajectories.
      std::vector<const traj::Trajectory*> batch;
      for (int64_t k = 0; k < config.batch_size; ++k) {
        const int64_t idx =
            order[static_cast<size_t>((s * config.batch_size + k) %
                                      static_cast<int64_t>(corpus.size()))];
        batch.push_back(&corpus[static_cast<size_t>(idx)]);
      }
      Tensor loss;
      double mask_val = 0.0, con_val = 0.0;

      // --- Task 1: span-masked trajectory recovery (Sec. III-C1) ---------
      if (config.use_mask_task) {
        std::vector<data::View> views;
        views.reserve(batch.size());
        std::vector<data::SpanMaskInfo> infos;
        for (const auto* t : batch) {
          data::View v = data::MakeView(*t);
          infos.push_back(data::ApplySpanMask(&v, config.mask_span,
                                              config.mask_ratio, &rng));
          views.push_back(std::move(v));
        }
        const data::Batch mb = data::MakeBatch(views);
        std::vector<int64_t> flat_positions;
        std::vector<int64_t> targets;
        for (size_t b = 0; b < infos.size(); ++b) {
          for (size_t k = 0; k < infos[b].positions.size(); ++k) {
            flat_positions.push_back(
                static_cast<int64_t>(b) * mb.max_len + infos[b].positions[k]);
            targets.push_back(infos[b].targets[k]);
          }
        }
        if (!flat_positions.empty()) {
          const EncoderOutput out = model->Encode(mb);
          const Tensor logits =
              model->MaskedLogits(out, flat_positions, mb.max_len);
          const Tensor mask_loss =
              tensor::CrossEntropyWithLogits(logits, targets);
          mask_val = mask_loss.item();
          loss = tensor::Scale(mask_loss,
                               config.use_contrastive_task
                                   ? static_cast<float>(config.lambda)
                                   : 1.0f);
        }
      }

      // --- Task 2: trajectory contrastive learning (Sec. III-C2) ---------
      if (config.use_contrastive_task) {
        std::vector<data::View> views;
        views.reserve(2 * batch.size());
        for (const auto* t : batch) {
          views.push_back(
              data::Augment(*t, config.aug_a, aug_cfg, traffic, &rng));
          views.push_back(
              data::Augment(*t, config.aug_b, aug_cfg, traffic, &rng));
        }
        const data::Batch cb = data::MakeBatch(views);
        const EncoderOutput out = model->Encode(cb);
        const Tensor con_loss = nn::NtXentLoss(out.cls, config.tau);
        con_val = con_loss.item();
        const Tensor scaled = tensor::Scale(
            con_loss, config.use_mask_task
                          ? static_cast<float>(1.0 - config.lambda)
                          : 1.0f);
        loss = loss.defined() ? tensor::Add(loss, scaled) : scaled;
      }

      START_CHECK(loss.defined());
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model->Parameters(), config.grad_clip);
      opt.set_lr(schedule.LrAt(step));
      opt.Step();
      ++step;
      epoch_loss += loss.item();
      epoch_mask += mask_val;
      epoch_con += con_val;
      ++batches;
    }
    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(batches));
    stats.epoch_mask_loss.push_back(epoch_mask /
                                    static_cast<double>(batches));
    stats.epoch_contrastive_loss.push_back(epoch_con /
                                           static_cast<double>(batches));
    if (config.verbose) {
      START_LOG(Info) << "pretrain epoch " << epoch << " loss "
                      << stats.epoch_loss.back() << " (mask "
                      << stats.epoch_mask_loss.back() << ", con "
                      << stats.epoch_contrastive_loss.back() << ")";
    }
  }
  return stats;
}

}  // namespace start::core
