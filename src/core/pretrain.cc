#include "core/pretrain.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/parallel_trainer.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "data/loader.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "tensor/ops.h"

namespace start::core {

using tensor::Tensor;

namespace {

/// Salt separating the dropout stream from the loader's augmentation stream:
/// both are derived per step from the run seed via StepSeed, but must never
/// collide. Reseeding dropout per step makes every optimizer step a pure
/// function of (parameters, optimizer state, step index), which is what lets
/// a resumed run replay the exact masks of an uninterrupted one.
constexpr uint64_t kDropoutStreamSalt = 0x5eedD120F0D7ULL;

/// Folded into the plan hash when the sharded engine runs: the engine's
/// central-loss construction orders floating-point sums differently from the
/// legacy loop, so a checkpoint must never silently resume across the two —
/// nor across different (shard_grain, accum_steps) decompositions. num_shards
/// deliberately stays out of the hash: shard count is bitwise-neutral, and
/// resuming under a different one is supported (tested).
constexpr uint64_t kShardedEngineMarker = 0x5aa2ded0e6019e5dULL;

}  // namespace

PretrainStats Pretrain(StartModel* model,
                       const std::vector<traj::Trajectory>& corpus,
                       const traj::TrafficModel* traffic,
                       const PretrainConfig& config) {
  START_CHECK(model != nullptr);
  START_CHECK(!corpus.empty());
  START_CHECK(config.use_mask_task || config.use_contrastive_task);
  model->SetTraining(true);

  // The coordinator builds the whole multi-epoch plan up front (shuffles and
  // bucket assignment are epoch-seeded, not consumed from a shared stream),
  // then the loader's workers assemble step k+1.. while step k trains.
  data::PlanConfig plan_config;
  plan_config.batch_size = config.batch_size;
  plan_config.epochs = config.epochs;
  plan_config.bucket_by_length = config.bucket_by_length;
  plan_config.bucket_width = config.bucket_width;
  plan_config.seed = config.seed;
  const std::vector<int64_t> corpus_lengths = data::Lengths(corpus);
  data::PretrainPlan plan =
      data::MakeShuffledPlan(corpus_lengths, plan_config);
  const std::vector<int64_t> epoch_of_step = std::move(plan.epoch_of_step);
  const int64_t total_steps = static_cast<int64_t>(plan.steps.size());

  data::PretrainBatchOptions batch_options;
  batch_options.use_mask_task = config.use_mask_task;
  batch_options.use_contrastive_task = config.use_contrastive_task;
  batch_options.mask_span = config.mask_span;
  batch_options.mask_ratio = config.mask_ratio;
  batch_options.aug_a = config.aug_a;
  batch_options.aug_b = config.aug_b;

  // The sharded engine groups `accum_steps` loader micro-steps into one
  // optimizer step; its LR schedule and step counters run in optimizer
  // steps, so a (batch B, accum 2) run anneals exactly like a (batch 2B,
  // accum 1) run. The legacy loop is the accum == 1 special case.
  const bool sharded = config.UsesShardedEngine();
  const int64_t accum = sharded ? config.accum_steps : 1;
  START_CHECK_GE(accum, 1);
  const int64_t total_opt_steps = (total_steps + accum - 1) / accum;

  nn::AdamW opt(model->Parameters(), config.lr, 0.9, 0.999, 1e-8,
                config.weight_decay);
  const nn::WarmupCosineSchedule schedule(
      config.lr,
      static_cast<int64_t>(config.warmup_fraction *
                           static_cast<double>(total_opt_steps)),
      total_opt_steps, config.lr * 0.05);

  // The header tag identifies the model architecture (any consumer of the
  // artifact checks it); the plan hash additionally pins everything
  // MakeShuffledPlan's output depends on — epochs, batch size, bucketing,
  // seed, and the full length profile of the corpus — so a resume under a
  // different step plan is refused up front. The sharded engine folds its
  // summation-order-defining knobs in too (see kShardedEngineMarker).
  const uint64_t config_hash = HashStartConfig(model->config());
  uint64_t plan_hash = HashCombine(config_hash, 0x9e3779b97f4a7c15ULL);
  plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(config.epochs));
  plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(config.batch_size));
  plan_hash = HashCombine(plan_hash, config.bucket_by_length ? 1 : 0);
  plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(config.bucket_width));
  plan_hash = HashCombine(plan_hash, config.seed);
  plan_hash = HashCombine(plan_hash, corpus_lengths.size());
  for (const int64_t length : corpus_lengths) {
    plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(length));
  }
  if (sharded) {
    plan_hash = HashCombine(plan_hash, kShardedEngineMarker);
    plan_hash =
        HashCombine(plan_hash, static_cast<uint64_t>(config.shard_grain));
    plan_hash = HashCombine(plan_hash, static_cast<uint64_t>(accum));
  }

  // Trainer state doubles as the live accumulator set: the loss sums below
  // are exactly what a checkpoint persists, so a resumed run's epoch trace
  // continues from the same partial sums.
  TrainerState state;
  state.loss_sum.assign(static_cast<size_t>(config.epochs), 0.0);
  state.mask_sum.assign(static_cast<size_t>(config.epochs), 0.0);
  state.con_sum.assign(static_cast<size_t>(config.epochs), 0.0);
  state.batch_count.assign(static_cast<size_t>(config.epochs), 0);

  int64_t start_step = 0;
  if (config.resume && !config.checkpoint_path.empty() &&
      CheckpointExists(config.checkpoint_path)) {
    auto resumed = LoadTrainingCheckpoint(config.checkpoint_path, model, &opt,
                                          config_hash, plan_hash);
    if (resumed.ok()) {
      state = std::move(*resumed);
      start_step = state.next_step;
      START_CHECK_LE(start_step, total_steps);
      START_CHECK_EQ(static_cast<int64_t>(state.loss_sum.size()),
                     config.epochs);
      if (sharded) {
        // The engine checkpoints only at optimizer-step boundaries, so a
        // valid cursor is a multiple of the accumulation depth — except the
        // end-of-plan cursor, whose final group may be partial when accum
        // does not divide total_steps (the plan hash already refused
        // mismatched accum/grain).
        START_CHECK(start_step % accum == 0 || start_step == total_steps);
      }
      if (state.schedule_fingerprint != 0 &&
          state.schedule_fingerprint != schedule.Fingerprint()) {
        START_LOG(Warning)
            << "resume: LR schedule differs from the checkpointed run "
               "(total_steps/lr changed?) — the LR trajectory will diverge";
      }
      START_LOG(Info) << "resuming pretrain from step " << start_step << "/"
                      << total_steps << " (" << config.checkpoint_path << ")";
    } else {
      START_LOG(Warning) << "cannot resume from " << config.checkpoint_path
                         << ": " << resumed.status().ToString()
                         << " — training from scratch";
    }
  }

  data::LoaderConfig loader_config;
  loader_config.num_workers = config.num_workers;
  loader_config.prefetch_depth = config.prefetch_depth;
  loader_config.seed = config.seed;
  loader_config.start_step = start_step;
  data::BatchLoader loader(
      std::move(plan.steps),
      data::MakePretrainBuilder(&corpus, traffic, batch_options),
      loader_config);

  const auto log_epoch = [&](int64_t epoch) {
    const auto e = static_cast<size_t>(epoch);
    const double denom =
        static_cast<double>(std::max<int64_t>(1, state.batch_count[e]));
    START_LOG(Info) << "pretrain epoch " << epoch << " loss "
                    << state.loss_sum[e] / denom << " (mask "
                    << state.mask_sum[e] / denom << ", con "
                    << state.con_sum[e] / denom << ")";
  };
  int64_t current_epoch =
      start_step < total_steps
          ? epoch_of_step[static_cast<size_t>(start_step)]
          : std::max<int64_t>(0, config.epochs - 1);

  if (sharded) {
    // ---- Data-parallel engine (see core/parallel_trainer.h) ---------------
    ShardConfig shard_config;
    shard_config.num_shards = config.num_shards;
    shard_config.shard_grain = config.shard_grain;
    shard_config.accum_steps = accum;
    shard_config.use_mask_task = config.use_mask_task;
    shard_config.use_contrastive_task = config.use_contrastive_task;
    shard_config.lambda = config.lambda;
    shard_config.tau = config.tau;
    shard_config.grad_clip = config.grad_clip;
    shard_config.seed = config.seed;
    // Built after the resume load, so the replicas copy the resumed values.
    ParallelTrainer trainer(model, shard_config);

    const auto save_checkpoint = [&](int64_t next_step) {
      state.next_step = next_step;
      state.adam_step = opt.step_count();
      state.schedule_fingerprint = schedule.Fingerprint();
      state.plan_hash = plan_hash;
      state.rng_state.clear();  // engine streams are per-shard, below
      state.num_shards = config.num_shards;
      state.shard_grain = config.shard_grain;
      state.accum_steps = accum;
      state.shard_rng = trainer.ShardRngStates();
      const auto st = SaveTrainingCheckpoint(config.checkpoint_path, *model,
                                             opt, state, config_hash);
      if (!st.ok()) {
        START_LOG(Warning) << "checkpoint save failed: " << st.ToString();
      } else if (config.verbose) {
        START_LOG(Info) << "checkpointed step " << next_step << " -> "
                        << config.checkpoint_path;
      }
    };

    std::vector<data::TrainingBatch> group(static_cast<size_t>(accum));
    std::vector<const data::TrainingBatch*> micros;
    int64_t opt_steps_done = 0;
    bool exhausted = false;
    while (!exhausted) {
      int64_t got = 0;
      while (got < accum && loader.Next(&group[static_cast<size_t>(got)])) {
        ++got;
      }
      if (got < accum) exhausted = true;
      if (got == 0) break;
      const int64_t first_step = group[0].step;
      const int64_t last_step_idx = group[static_cast<size_t>(got - 1)].step;
      const int64_t opt_step = first_step / accum;
      micros.clear();
      for (int64_t i = 0; i < got; ++i) {
        micros.push_back(&group[static_cast<size_t>(i)]);
      }
      const ShardStepStats step_stats =
          trainer.Step(micros, opt_step, &opt, schedule.LrAt(opt_step));

      // The whole accumulation group books under its first micro-step's
      // epoch (groups spanning an epoch boundary are attributed once).
      const int64_t epoch = epoch_of_step[static_cast<size_t>(first_step)];
      if (config.verbose && epoch != current_epoch) {
        log_epoch(current_epoch);
        current_epoch = epoch;
      }
      const auto e = static_cast<size_t>(epoch);
      state.loss_sum[e] += step_stats.loss;
      state.mask_sum[e] += step_stats.mask_loss;
      state.con_sum[e] += step_stats.con_loss;
      ++state.batch_count[e];

      ++opt_steps_done;
      const bool hit_max =
          config.max_steps > 0 && opt_steps_done >= config.max_steps;
      const bool plan_done = last_step_idx + 1 == total_steps;
      if (!config.checkpoint_path.empty() &&
          (hit_max || plan_done ||
           (config.checkpoint_every_steps > 0 &&
            opt_steps_done % config.checkpoint_every_steps == 0))) {
        save_checkpoint(last_step_idx + 1);
      }
      for (int64_t i = 0; i < got; ++i) {
        loader.Recycle(std::move(group[static_cast<size_t>(i)]));
      }
      if (hit_max) break;  // simulated interruption; loader shuts down
    }
    if (config.verbose) log_epoch(current_epoch);
  } else {
    // ---- Legacy single-replica loop (floating-point stream preserved) -----
    // Every step draws its dropout masks from a stream reseeded with the
    // step's private seed (mirroring the loader's determinism contract), so
    // an uninterrupted run and a checkpoint-resumed run sample identical
    // masks.
    common::Rng dropout_rng(config.seed);
    model->SetDropoutRng(&dropout_rng);

    const auto save_checkpoint = [&](int64_t next_step) {
      state.next_step = next_step;
      state.adam_step = opt.step_count();
      state.schedule_fingerprint = schedule.Fingerprint();
      state.plan_hash = plan_hash;
      state.rng_state = dropout_rng.GetState();
      const auto st = SaveTrainingCheckpoint(config.checkpoint_path, *model,
                                             opt, state, config_hash);
      if (!st.ok()) {
        START_LOG(Warning) << "checkpoint save failed: " << st.ToString();
      } else if (config.verbose) {
        START_LOG(Info) << "checkpointed step " << next_step << " -> "
                        << config.checkpoint_path;
      }
    };

    int64_t steps_done = 0;
    data::TrainingBatch tb;
    while (loader.Next(&tb)) {
      dropout_rng.Seed(data::BatchLoader::StepSeed(
          config.seed ^ kDropoutStreamSalt, tb.step));
      Tensor loss;
      double mask_val = 0.0, con_val = 0.0;
      // Stage 1 once per step: both pretext batches are encoded under the
      // same parameters, so they share the road representations (gradients
      // accumulate into the GAT from both graphs).
      const Tensor road_reps = model->ComputeRoadReps();

      // --- Task 1: span-masked trajectory recovery (Sec. III-C1) -----------
      if (tb.has_masked && !tb.mask_positions.empty()) {
        const EncoderOutput out = model->Encode(tb.masked, road_reps);
        const Tensor logits =
            model->MaskedLogits(out, tb.mask_positions, tb.masked.max_len);
        const Tensor mask_loss =
            tensor::CrossEntropyWithLogits(logits, tb.mask_targets);
        mask_val = mask_loss.item();
        loss = tensor::Scale(mask_loss, config.use_contrastive_task
                                            ? static_cast<float>(config.lambda)
                                            : 1.0f);
      }

      // --- Task 2: trajectory contrastive learning (Sec. III-C2) -----------
      if (tb.has_contrastive) {
        const EncoderOutput out = model->Encode(tb.contrastive, road_reps);
        const Tensor con_loss = nn::NtXentLoss(out.cls, config.tau);
        con_val = con_loss.item();
        const Tensor scaled = tensor::Scale(
            con_loss, config.use_mask_task
                          ? static_cast<float>(1.0 - config.lambda)
                          : 1.0f);
        loss = loss.defined() ? tensor::Add(loss, scaled) : scaled;
      }

      START_CHECK(loss.defined());
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model->Parameters(), config.grad_clip);
      opt.set_lr(schedule.LrAt(tb.step));
      opt.Step();

      // Steps arrive in plan order, so epochs advance monotonically; log
      // each one as soon as its last batch has trained.
      const int64_t epoch = epoch_of_step[static_cast<size_t>(tb.step)];
      if (config.verbose && epoch != current_epoch) {
        log_epoch(current_epoch);
        current_epoch = epoch;
      }
      const auto e = static_cast<size_t>(epoch);
      state.loss_sum[e] += loss.item();
      state.mask_sum[e] += mask_val;
      state.con_sum[e] += con_val;
      ++state.batch_count[e];

      ++steps_done;
      const bool hit_max =
          config.max_steps > 0 && steps_done >= config.max_steps;
      const bool last_step = tb.step + 1 == total_steps;
      if (!config.checkpoint_path.empty() &&
          (hit_max || last_step ||
           (config.checkpoint_every_steps > 0 &&
            steps_done % config.checkpoint_every_steps == 0))) {
        save_checkpoint(tb.step + 1);
      }
      loader.Recycle(std::move(tb));
      if (hit_max) break;  // simulated interruption; loader shuts down cleanly
    }
    model->SetDropoutRng(nullptr);  // the stream above is about to go away
    if (config.verbose) log_epoch(current_epoch);
  }

  PretrainStats stats;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto e = static_cast<size_t>(epoch);
    const double denom =
        static_cast<double>(std::max<int64_t>(1, state.batch_count[e]));
    stats.epoch_loss.push_back(state.loss_sum[e] / denom);
    stats.epoch_mask_loss.push_back(state.mask_sum[e] / denom);
    stats.epoch_contrastive_loss.push_back(state.con_sum[e] / denom);
  }
  return stats;
}

}  // namespace start::core
