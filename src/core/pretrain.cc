#include "core/pretrain.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "data/loader.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "tensor/ops.h"

namespace start::core {

using tensor::Tensor;

PretrainStats Pretrain(StartModel* model,
                       const std::vector<traj::Trajectory>& corpus,
                       const traj::TrafficModel* traffic,
                       const PretrainConfig& config) {
  START_CHECK(model != nullptr);
  START_CHECK(!corpus.empty());
  START_CHECK(config.use_mask_task || config.use_contrastive_task);
  model->SetTraining(true);

  // The coordinator builds the whole multi-epoch plan up front (shuffles and
  // bucket assignment are epoch-seeded, not consumed from a shared stream),
  // then the loader's workers assemble step k+1.. while step k trains.
  data::PlanConfig plan_config;
  plan_config.batch_size = config.batch_size;
  plan_config.epochs = config.epochs;
  plan_config.bucket_by_length = config.bucket_by_length;
  plan_config.bucket_width = config.bucket_width;
  plan_config.seed = config.seed;
  data::PretrainPlan plan =
      data::MakeShuffledPlan(data::Lengths(corpus), plan_config);
  const std::vector<int64_t> epoch_of_step = std::move(plan.epoch_of_step);
  const int64_t total_steps = static_cast<int64_t>(plan.steps.size());

  data::PretrainBatchOptions batch_options;
  batch_options.use_mask_task = config.use_mask_task;
  batch_options.use_contrastive_task = config.use_contrastive_task;
  batch_options.mask_span = config.mask_span;
  batch_options.mask_ratio = config.mask_ratio;
  batch_options.aug_a = config.aug_a;
  batch_options.aug_b = config.aug_b;

  data::LoaderConfig loader_config;
  loader_config.num_workers = config.num_workers;
  loader_config.prefetch_depth = config.prefetch_depth;
  loader_config.seed = config.seed;
  data::BatchLoader loader(
      std::move(plan.steps),
      data::MakePretrainBuilder(&corpus, traffic, batch_options),
      loader_config);

  nn::AdamW opt(model->Parameters(), config.lr, 0.9, 0.999, 1e-8,
                config.weight_decay);
  const nn::WarmupCosineSchedule schedule(
      config.lr,
      static_cast<int64_t>(config.warmup_fraction *
                           static_cast<double>(total_steps)),
      total_steps, config.lr * 0.05);

  std::vector<double> loss_sum(static_cast<size_t>(config.epochs), 0.0);
  std::vector<double> mask_sum(static_cast<size_t>(config.epochs), 0.0);
  std::vector<double> con_sum(static_cast<size_t>(config.epochs), 0.0);
  std::vector<int64_t> batch_count(static_cast<size_t>(config.epochs), 0);
  const auto log_epoch = [&](int64_t epoch) {
    const auto e = static_cast<size_t>(epoch);
    const double denom =
        static_cast<double>(std::max<int64_t>(1, batch_count[e]));
    START_LOG(Info) << "pretrain epoch " << epoch << " loss "
                    << loss_sum[e] / denom << " (mask " << mask_sum[e] / denom
                    << ", con " << con_sum[e] / denom << ")";
  };
  int64_t current_epoch = 0;

  data::TrainingBatch tb;
  while (loader.Next(&tb)) {
    Tensor loss;
    double mask_val = 0.0, con_val = 0.0;
    // Stage 1 once per step: both pretext batches are encoded under the
    // same parameters, so they share the road representations (gradients
    // accumulate into the GAT from both graphs).
    const Tensor road_reps = model->ComputeRoadReps();

    // --- Task 1: span-masked trajectory recovery (Sec. III-C1) -----------
    if (tb.has_masked && !tb.mask_positions.empty()) {
      const EncoderOutput out = model->Encode(tb.masked, road_reps);
      const Tensor logits =
          model->MaskedLogits(out, tb.mask_positions, tb.masked.max_len);
      const Tensor mask_loss =
          tensor::CrossEntropyWithLogits(logits, tb.mask_targets);
      mask_val = mask_loss.item();
      loss = tensor::Scale(mask_loss, config.use_contrastive_task
                                          ? static_cast<float>(config.lambda)
                                          : 1.0f);
    }

    // --- Task 2: trajectory contrastive learning (Sec. III-C2) -----------
    if (tb.has_contrastive) {
      const EncoderOutput out = model->Encode(tb.contrastive, road_reps);
      const Tensor con_loss = nn::NtXentLoss(out.cls, config.tau);
      con_val = con_loss.item();
      const Tensor scaled = tensor::Scale(
          con_loss, config.use_mask_task
                        ? static_cast<float>(1.0 - config.lambda)
                        : 1.0f);
      loss = loss.defined() ? tensor::Add(loss, scaled) : scaled;
    }

    START_CHECK(loss.defined());
    opt.ZeroGrad();
    loss.Backward();
    nn::ClipGradNorm(model->Parameters(), config.grad_clip);
    opt.set_lr(schedule.LrAt(tb.step));
    opt.Step();

    // Steps arrive in plan order, so epochs advance monotonically; log each
    // one as soon as its last batch has trained.
    const int64_t epoch = epoch_of_step[static_cast<size_t>(tb.step)];
    if (config.verbose && epoch != current_epoch) {
      log_epoch(current_epoch);
      current_epoch = epoch;
    }
    const auto e = static_cast<size_t>(epoch);
    loss_sum[e] += loss.item();
    mask_sum[e] += mask_val;
    con_sum[e] += con_val;
    ++batch_count[e];
    loader.Recycle(std::move(tb));
  }
  if (config.verbose) log_epoch(current_epoch);

  PretrainStats stats;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto e = static_cast<size_t>(epoch);
    const double denom =
        static_cast<double>(std::max<int64_t>(1, batch_count[e]));
    stats.epoch_loss.push_back(loss_sum[e] / denom);
    stats.epoch_mask_loss.push_back(mask_sum[e] / denom);
    stats.epoch_contrastive_loss.push_back(con_sum[e] / denom);
  }
  return stats;
}

}  // namespace start::core
