#ifndef START_CORE_PRETRAIN_H_
#define START_CORE_PRETRAIN_H_

#include <vector>

#include "core/start_model.h"
#include "data/augmentation.h"
#include "traj/traffic_model.h"

namespace start::core {

/// \brief Pre-training hyper-parameters (defaults follow Sec. IV-C at
/// laptop scale; the paper trains 30 epochs with batch 64 and lr 2e-4).
struct PretrainConfig {
  int64_t epochs = 5;
  int64_t batch_size = 16;
  double lr = 1e-3;
  double weight_decay = 0.01;
  double warmup_fraction = 0.15;  ///< Fraction of steps used for warm-up.
  double grad_clip = 5.0;
  double lambda = 0.6;  ///< Loss mix of Eq. (15).
  float tau = 0.05f;    ///< NT-Xent temperature.
  int64_t mask_span = 2;       ///< lm.
  double mask_ratio = 0.15;    ///< pm.
  data::AugmentationKind aug_a = data::AugmentationKind::kTrim;
  data::AugmentationKind aug_b = data::AugmentationKind::kTemporalShift;
  bool use_mask_task = true;         ///< false = "w/o Mask" ablation.
  bool use_contrastive_task = true;  ///< false = "w/o Contra" ablation.
  uint64_t seed = 7;
  bool verbose = false;

  // --- Data pipeline (see data/loader.h and ARCHITECTURE.md) -------------
  /// Augmentation worker threads feeding the prefetch queue; 0 builds every
  /// batch synchronously on the training thread. Batch contents are bitwise
  /// identical for every value (per-step seeding), so this is purely a
  /// throughput knob.
  int num_workers = 2;
  /// Assembled-batch bound of the prefetch queue.
  int64_t prefetch_depth = 4;
  /// Group similar-length trajectories per batch to cut padding waste.
  bool bucket_by_length = true;
  /// Length-bucket granularity (roads per bucket).
  int64_t bucket_width = 8;

  // --- Checkpointing (see core/checkpoint.h and ARCHITECTURE.md) ----------
  /// When non-empty, a full training checkpoint (parameters + AdamW slots +
  /// trainer bookkeeping) is written here at the end of the run and every
  /// `checkpoint_every_steps` optimizer steps. The file doubles as the model
  /// artifact: eval::TrajectoryEncoder::WarmStart and the fine-tuning tasks
  /// load it directly — no retraining.
  std::string checkpoint_path;
  /// Periodic checkpoint cadence in optimizer steps; 0 = final-only.
  int64_t checkpoint_every_steps = 0;
  /// Resume from `checkpoint_path` when it holds a training checkpoint. The
  /// resumed run replays the loader's StepSeed stream and the per-step
  /// dropout seeds from the saved cursor, so it is bitwise identical to a
  /// never-interrupted run (tests/core_pretrain_test.cc asserts this).
  bool resume = false;
  /// Stop after this many optimizer steps past the resume point (0 = run the
  /// whole plan). Simulates interruption; pair with `checkpoint_path`.
  int64_t max_steps = 0;

  // --- Data-parallel sharding (see core/parallel_trainer.h) ---------------
  /// Model replicas training in data parallel. A pure *scheduling* knob:
  /// for any fixed (shard_grain, accum_steps) decomposition, every value of
  /// num_shards — including 1 — produces bitwise-identical parameters,
  /// optimizer state, and loss curves (the fixed-order tree all-reduce
  /// pins every gradient summation order).
  int num_shards = 1;
  /// Trajectories per micro-shard. Defines the gradient summation order
  /// (training semantics, folded into the resume plan hash); 0 = one shard
  /// per micro-batch. Pick ~batch_size / num_shards for load balance.
  int64_t shard_grain = 0;
  /// Micro-batches combined per optimizer step, on the same reduction path.
  /// The group's losses are evaluated jointly, so accumulation enlarges the
  /// effective (contrastive) batch; also summation-order-defining.
  int64_t accum_steps = 1;

  /// True when this config routes through the sharded engine instead of the
  /// legacy single-replica loop (whose floating-point stream is preserved
  /// exactly for default configs).
  bool UsesShardedEngine() const {
    return num_shards > 1 || shard_grain > 0 || accum_steps > 1;
  }
};

/// \brief Per-epoch telemetry of a pre-training run.
struct PretrainStats {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_mask_loss;
  std::vector<double> epoch_contrastive_loss;
};

/// Runs the two self-supervised tasks of Sec. III-C over `corpus`
/// (span-masked recovery + trajectory contrastive learning) with AdamW and
/// the warm-up/cosine schedule. `traffic` supplies historical travel times
/// for the Temporal Shifting augmentation.
PretrainStats Pretrain(StartModel* model,
                       const std::vector<traj::Trajectory>& corpus,
                       const traj::TrafficModel* traffic,
                       const PretrainConfig& config);

}  // namespace start::core

#endif  // START_CORE_PRETRAIN_H_
