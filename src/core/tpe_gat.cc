#include "core/tpe_gat.h"

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace start::core {

using tensor::Shape;
using tensor::Tensor;

TpeGatLayer::TpeGatLayer(int64_t in_dim, int64_t out_dim, int64_t num_heads,
                         bool use_transfer_prob,
                         const std::vector<int64_t>* edge_src,
                         const std::vector<int64_t>* edge_dst,
                         const std::vector<float>* edge_p,
                         int64_t num_vertices, common::Rng* rng)
    : num_heads_(num_heads),
      head_dim_(out_dim / num_heads),
      use_transfer_prob_(use_transfer_prob),
      edge_src_(edge_src),
      edge_dst_(edge_dst),
      edge_p_(edge_p),
      num_vertices_(num_vertices) {
  START_CHECK_MSG(out_dim % num_heads == 0,
                  "GAT out_dim " << out_dim << " vs heads " << num_heads);
  heads_.resize(static_cast<size_t>(num_heads));
  for (int64_t h = 0; h < num_heads; ++h) {
    auto& head = heads_[static_cast<size_t>(h)];
    head.w1 = std::make_unique<nn::Linear>(in_dim, head_dim_, rng,
                                           /*bias=*/false);
    head.w2 = std::make_unique<nn::Linear>(in_dim, head_dim_, rng,
                                           /*bias=*/false);
    head.w5 = std::make_unique<nn::Linear>(in_dim, head_dim_, rng,
                                           /*bias=*/false);
    const std::string tag = "head" + std::to_string(h);
    RegisterModule(tag + ".w1", head.w1.get());
    RegisterModule(tag + ".w2", head.w2.get());
    RegisterModule(tag + ".w5", head.w5.get());
    head.w3 = RegisterParameter(tag + ".w3",
                                nn::XavierUniform(Shape({1, head_dim_}), rng));
    head.w4 = RegisterParameter(tag + ".w4",
                                nn::XavierUniform(Shape({head_dim_, 1}), rng));
  }
  if (use_transfer_prob_) {
    // Constant per-edge transfer probabilities [E, 1], built once: the edge
    // list never changes across forward passes.
    const int64_t e = static_cast<int64_t>(edge_p_->size());
    std::vector<float> p(edge_p_->begin(), edge_p_->end());
    p_edge_ = Tensor::FromVector(Shape({e, 1}), std::move(p));
  }
}

Tensor TpeGatLayer::Forward(const Tensor& h) const {
  START_CHECK_EQ(h.dim(0), num_vertices_);
  const int64_t e = static_cast<int64_t>(edge_src_->size());
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(num_heads_));
  for (const auto& head : heads_) {
    // Per-vertex scalar contributions u_i = (h W1) W4, v_j = (h W2) W4.
    const Tensor u = tensor::MatMul(head.w1->Forward(h), head.w4);  // [V,1]
    const Tensor v = tensor::MatMul(head.w2->Forward(h), head.w4);  // [V,1]
    Tensor scores = tensor::Add(tensor::GatherRows(u, *edge_dst_),
                                tensor::GatherRows(v, *edge_src_));  // [E,1]
    if (use_transfer_prob_) {
      const Tensor w_p = tensor::MatMul(head.w3, head.w4);  // [1,1]
      scores = tensor::Add(scores, tensor::Mul(p_edge_, w_p));
    }
    scores = tensor::LeakyRelu(tensor::Reshape(scores, Shape({e})), 0.2f);
    const Tensor alpha =
        tensor::SegmentSoftmax(scores, *edge_dst_, num_vertices_);
    const Tensor values =
        tensor::GatherRows(head.w5->Forward(h), *edge_src_);  // [E, dh]
    const Tensor agg = tensor::SegmentWeightedSum(values, alpha, *edge_dst_,
                                                  num_vertices_);
    outputs.push_back(tensor::Elu(agg));
  }
  return num_heads_ == 1 ? outputs[0] : tensor::Concat(outputs, 1);
}

TpeGat::TpeGat(const roadnet::RoadNetwork* net,
               const roadnet::TransferProbability* transfer, int64_t in_dim,
               int64_t out_dim, const std::vector<int64_t>& heads,
               bool use_transfer_prob, common::Rng* rng) {
  START_CHECK(net != nullptr);
  START_CHECK(net->finalized());
  START_CHECK(!heads.empty());
  const int64_t v = net->num_segments();
  // Edge list: graph edges + self-loops (p = 1 so every road keeps a direct
  // view of itself in the weighted aggregation).
  const auto& src = net->edge_sources();
  const auto& dst = net->edge_targets();
  edge_src_.reserve(src.size() + static_cast<size_t>(v));
  edge_dst_.reserve(src.size() + static_cast<size_t>(v));
  edge_p_.reserve(src.size() + static_cast<size_t>(v));
  // Edge-aligned transfer probabilities in one merge pass (identical values
  // to a per-edge Prob() lookup, without the per-edge binary search).
  const std::vector<double> probs =
      transfer != nullptr ? transfer->EdgeProbabilities(*net)
                          : std::vector<double>(src.size(), 0.0);
  for (size_t i = 0; i < src.size(); ++i) {
    edge_src_.push_back(src[i]);
    edge_dst_.push_back(dst[i]);
    edge_p_.push_back(static_cast<float>(probs[i]));
  }
  for (int64_t i = 0; i < v; ++i) {
    edge_src_.push_back(i);
    edge_dst_.push_back(i);
    edge_p_.push_back(1.0f);
  }
  int64_t cur_dim = in_dim;
  for (size_t l = 0; l < heads.size(); ++l) {
    layers_.push_back(std::make_unique<TpeGatLayer>(
        cur_dim, out_dim, heads[l], use_transfer_prob, &edge_src_, &edge_dst_,
        &edge_p_, v, rng));
    RegisterModule("layer" + std::to_string(l), layers_.back().get());
    cur_dim = out_dim;
  }
}

Tensor TpeGat::Forward(const Tensor& features) const {
  Tensor h = features;
  for (const auto& layer : layers_) h = layer->Forward(h);
  return h;
}

}  // namespace start::core
