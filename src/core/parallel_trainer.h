#ifndef START_CORE_PARALLEL_TRAINER_H_
#define START_CORE_PARALLEL_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/start_model.h"
#include "data/loader.h"
#include "nn/optimizer.h"

namespace start::core {

/// \brief Data-parallel sharded pre-training engine.
///
/// One optimizer step consumes a group of `accum_steps` micro-batches from
/// the loader, decomposes them into fixed-size *micro-shards* ("grains" of
/// `shard_grain` trajectories), fans the grains out across `num_shards` model
/// replicas running on a common::ThreadPool, and combines their gradients
/// with the deterministic fixed-order tree all-reduce of nn/allreduce.h
/// before one fused AdamW update on the primary model.
///
/// ## Determinism contract (the load-bearing design decision)
///
/// Floating-point summation is order-sensitive, so data parallelism is only
/// bitwise-reproducible if the *summation order* is pinned independently of
/// the parallelism. The engine therefore separates two knobs:
///
///  * The **decomposition** — (shard_grain, accum_steps) — defines which
///    gradient contributions exist and the fixed tree in which they are
///    combined. Changing it changes the floating-point stream (never the
///    math): it is training-semantics and is folded into the resume plan
///    hash.
///  * The **schedule** — num_shards — says how many replicas *compute* the
///    fixed grain set. It cannot affect a single bit of the result: every
///    grain's forward/backward is a self-contained serial computation (own
///    activations, own per-grain-seeded dropout stream, gradients captured
///    in the grain's own slot), and the tree all-reduce walks the grain
///    ordinals in the same order for any K. K ∈ {1,2,3,5} produce
///    bitwise-identical parameters, optimizer state, and loss curves
///    (tests/parallel_trainer_test.cc; gated in bench_pretrain).
///
/// Batch-coupled reductions cannot be computed per shard without changing
/// their value — NT-Xent scores every trajectory against every other in the
/// step, and the masked-recovery cross entropy averages over all masked
/// positions. The engine handles them SimCLR-style: shards compute the
/// row-independent encoder forward only, the coordinator gathers the
/// boundary tensors (masked-position logits, CLS rows) and evaluates both
/// losses *centrally* over the full group — identically for any K — then
/// scatters the boundary gradients back for the per-grain backward passes.
/// Gradient accumulation rides the same path: the micro-batches of one
/// optimizer step contribute grains to one central loss, so accumulation
/// *increases the effective contrastive batch* and two micro-batches are
/// bitwise-equivalent to one double batch when their row streams align.
///
/// Stage 1 (TPE-GAT road representations) is batch-independent: the
/// coordinator runs it once per optimizer step on the primary replica,
/// shares the detached values with every grain through zero-copy proxy
/// leaves, tree-reduces the per-grain proxy gradients, and back-propagates
/// the combined gradient through the retained stage-1 graph exactly once.
///
/// Threading contract: Step() is single-consumer; replicas touch disjoint
/// model instances; phases are separated by joins, so no tensor is read and
/// written concurrently. The TSan CI job runs the sharded step.
struct ShardConfig {
  /// Model replicas (worker threads). Pure scheduling: any value yields
  /// bitwise-identical training. 1 runs the grain set inline.
  int num_shards = 1;
  /// Trajectories per micro-shard; 0 = one grain per micro-batch (no intra-
  /// batch decomposition — with num_shards > 1 parallelism then comes only
  /// from accumulation groups). Summation-order-defining.
  int64_t shard_grain = 0;
  /// Micro-batches per optimizer step. Summation-order-defining.
  int64_t accum_steps = 1;

  // Loss knobs, mirroring core::PretrainConfig.
  bool use_mask_task = true;
  bool use_contrastive_task = true;
  double lambda = 0.6;
  float tau = 0.05f;
  double grad_clip = 5.0;
  /// Base seed of the per-(optimizer step, grain) dropout streams.
  uint64_t seed = 7;
};

/// \brief Per-optimizer-step telemetry.
struct ShardStepStats {
  double loss = 0.0;       ///< Combined central loss (Eq. 15 mix).
  double mask_loss = 0.0;  ///< Central masked-recovery CE (0 when absent).
  double con_loss = 0.0;   ///< Central NT-Xent (0 when absent).
  int64_t grains = 0;      ///< Micro-shards the step decomposed into.
};

class ParallelTrainer {
 public:
  /// `model` is the primary replica: it receives the reduced gradients and
  /// the optimizer update, and stays the single source of truth for
  /// checkpointing. The trainer builds `num_shards - 1` additional replicas
  /// from the model's own construction inputs and keeps them value-synced
  /// after every step. The trainer installs per-replica dropout generators
  /// (Module::SetDropoutRng) for its lifetime.
  ParallelTrainer(StartModel* model, const ShardConfig& config);
  ~ParallelTrainer();

  ParallelTrainer(const ParallelTrainer&) = delete;
  ParallelTrainer& operator=(const ParallelTrainer&) = delete;

  /// Runs one optimizer step over `micros` (1..accum_steps micro-batches, in
  /// loader order): sharded forward/backward, tree all-reduce into the
  /// primary model, gradient clipping, AdamW update at learning rate `lr`,
  /// and parameter broadcast to the replicas. `opt` must be built from the
  /// primary model's Parameters().
  ShardStepStats Step(const std::vector<const data::TrainingBatch*>& micros,
                      int64_t opt_step, nn::AdamW* opt, double lr);

  /// Call after externally overwriting the primary model's parameters (e.g.
  /// a checkpoint resume) so the replicas match again.
  void SyncReplicas();

  /// Per-replica dropout-stream cursors (common::Rng::GetState, 6 words
  /// each), flattened in replica order — the TrainerState shard_rng payload.
  std::vector<uint64_t> ShardRngStates() const;

  int num_shards() const { return config_.num_shards; }

 private:
  struct Grain;

  StartModel* ReplicaModel(int r) const;
  /// Runs fn(r) for every replica, on the pool when num_shards > 1.
  void RunOnReplicas(const std::function<void(int)>& fn);

  ShardConfig config_;
  StartModel* primary_;
  common::Rng replica_init_rng_;  ///< Dummy init source for replica builds.
  std::vector<std::unique_ptr<StartModel>> extra_replicas_;
  /// Per-replica dropout generators; stable addresses (sized once).
  std::vector<common::Rng> rngs_;
  /// Per-replica parameter handles in registry order (index 0 = primary).
  std::vector<std::vector<tensor::Tensor>> replica_params_;
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace start::core

#endif  // START_CORE_PARALLEL_TRAINER_H_
