#ifndef START_CORE_START_ENCODER_H_
#define START_CORE_START_ENCODER_H_

#include <string>
#include <vector>

#include "core/start_model.h"
#include "eval/encoder.h"

namespace start::core {

/// \brief eval::TrajectoryEncoder adapter over StartModel: builds the proper
/// data views per encode mode (full timestamps for pre-training/similarity;
/// departure-only for the ETA protocol) and returns the [CLS] pooled
/// representation.
///
/// In inference mode (training off, gradients off — the EmbedAll path) the
/// stage-1 road representations are computed once and cached: they depend
/// only on the parameters, so re-deriving the whole TPE-GAT forward per
/// batch was pure waste. Any parameter mutation routed through this adapter
/// (SetTraining, WarmStart) invalidates the cache; mutations done behind its
/// back require an explicit InvalidateRoadReps().
class StartEncoder : public eval::TrajectoryEncoder {
 public:
  /// Does not take ownership; `model` must outlive the encoder.
  explicit StartEncoder(StartModel* model) : model_(model) {}

  int64_t dim() const override { return model_->config().d; }

  tensor::Tensor EncodeBatch(
      const std::vector<const traj::Trajectory*>& batch,
      eval::EncodeMode mode) override;

  /// No-grad inference encode: always takes the cached-road-reps path (the
  /// cache is populated on first use). The caller must have called
  /// SetTraining(false); encoding an eval-mode model is the contract that
  /// makes the cache sound.
  tensor::Tensor InferBatch(
      const std::vector<const traj::Trajectory*>& batch,
      eval::EncodeMode mode) override;

  std::vector<tensor::Tensor> TrainableParameters() override {
    return model_->Parameters();
  }

  void SetTraining(bool training) override {
    model_->SetTraining(training);
    InvalidateRoadReps();
  }

  void SetDropoutRng(common::Rng* rng) override {
    model_->SetDropoutRng(rng);
  }

  /// Loads model parameters from a checkpoint written by core::Pretrain or
  /// SaveModelCheckpoint — the warm-start path that replaces retraining.
  common::Status WarmStart(const std::string& checkpoint_path,
                           bool allow_missing = false,
                           bool skip_mismatched = false) override;

  /// Drops the cached road representations; the next inference-mode encode
  /// recomputes them from the current parameters.
  void InvalidateRoadReps() { cached_road_reps_ = tensor::Tensor(); }

  StartModel* model() { return model_; }

 private:
  StartModel* model_;
  tensor::Tensor cached_road_reps_;  ///< Detached; inference mode only.
};

}  // namespace start::core

#endif  // START_CORE_START_ENCODER_H_
