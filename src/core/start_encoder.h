#ifndef START_CORE_START_ENCODER_H_
#define START_CORE_START_ENCODER_H_

#include <vector>

#include "core/start_model.h"
#include "eval/encoder.h"

namespace start::core {

/// \brief eval::TrajectoryEncoder adapter over StartModel: builds the proper
/// data views per encode mode (full timestamps for pre-training/similarity;
/// departure-only for the ETA protocol) and returns the [CLS] pooled
/// representation.
class StartEncoder : public eval::TrajectoryEncoder {
 public:
  /// Does not take ownership; `model` must outlive the encoder.
  explicit StartEncoder(StartModel* model) : model_(model) {}

  int64_t dim() const override { return model_->config().d; }

  tensor::Tensor EncodeBatch(
      const std::vector<const traj::Trajectory*>& batch,
      eval::EncodeMode mode) override;

  std::vector<tensor::Tensor> TrainableParameters() override {
    return model_->Parameters();
  }

  void SetTraining(bool training) override { model_->SetTraining(training); }

  StartModel* model() { return model_; }

 private:
  StartModel* model_;
};

}  // namespace start::core

#endif  // START_CORE_START_ENCODER_H_
