#ifndef START_CORE_TPE_GAT_H_
#define START_CORE_TPE_GAT_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "roadnet/road_network.h"

namespace start::core {

/// \brief One Trajectory Pattern-Enhanced Graph Attention layer (Sec. III-A).
///
/// Implements Eq. (1)–(4) with the linear decomposition
///   e_ij = (h_i W1 + h_j W2 + p_ij W3) W4ᵀ = u_i + v_j + p_ij · w,
/// where i is the aggregating road, j ∈ N_i an in-neighbour, and p_ij the
/// transfer probability of Eq. (2). Attention is normalised per neighbourhood
/// with a numerically-stable segment softmax; outputs of the H heads are
/// concatenated (Eq. 4) after ELU.
class TpeGatLayer : public nn::Module {
 public:
  /// `edge_src`/`edge_dst`/`edge_p`: flat edge list including self-loops
  /// (p = 1 on self-loops). out_dim must be divisible by num_heads.
  TpeGatLayer(int64_t in_dim, int64_t out_dim, int64_t num_heads,
              bool use_transfer_prob,
              const std::vector<int64_t>* edge_src,
              const std::vector<int64_t>* edge_dst,
              const std::vector<float>* edge_p, int64_t num_vertices,
              common::Rng* rng);

  /// h [V, in_dim] -> [V, out_dim].
  tensor::Tensor Forward(const tensor::Tensor& h) const;

 private:
  struct Head {
    std::unique_ptr<nn::Linear> w1;  // center transform (no bias)
    std::unique_ptr<nn::Linear> w2;  // neighbour transform
    std::unique_ptr<nn::Linear> w5;  // value transform
    tensor::Tensor w3;               // [1, head_dim]
    tensor::Tensor w4;               // [head_dim, 1]
  };

  int64_t num_heads_;
  int64_t head_dim_;
  bool use_transfer_prob_;
  const std::vector<int64_t>* edge_src_;
  const std::vector<int64_t>* edge_dst_;
  const std::vector<float>* edge_p_;
  int64_t num_vertices_;
  std::vector<Head> heads_;
  tensor::Tensor p_edge_;  ///< Constant per-edge transfer probs [E, 1].
};

/// \brief The full L1-layer TPE-GAT stack mapping road features to road
/// representations r_i (Sec. III-A). Parameters are independent of |V|, which
/// is what makes the model transferable across road networks (Table III).
class TpeGat : public nn::Module {
 public:
  TpeGat(const roadnet::RoadNetwork* net,
         const roadnet::TransferProbability* transfer, int64_t in_dim,
         int64_t out_dim, const std::vector<int64_t>& heads,
         bool use_transfer_prob, common::Rng* rng);

  /// features [V, in_dim] -> road representations [V, out_dim].
  tensor::Tensor Forward(const tensor::Tensor& features) const;

  int64_t num_edges() const { return static_cast<int64_t>(edge_src_.size()); }

 private:
  std::vector<int64_t> edge_src_, edge_dst_;
  std::vector<float> edge_p_;
  std::vector<std::unique_ptr<TpeGatLayer>> layers_;
};

}  // namespace start::core

#endif  // START_CORE_TPE_GAT_H_
