#ifndef START_CORE_RETRAIN_H_
#define START_CORE_RETRAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/pretrain.h"
#include "roadnet/road_network.h"
#include "traj/traffic_model.h"
#include "traj/trajectory.h"

namespace start::core {

/// Knobs of one warm-start retraining round.
struct RetrainOptions {
  /// Warm-start source artifact: a model OR training checkpoint (parameters
  /// only are loaded — optimizer slots and the trainer cursor are ignored,
  /// so the fine-tune corpus is free to differ from the original run's).
  std::string base_checkpoint;
  /// Where the fine-tuned artifact is written. May equal base_checkpoint
  /// (the write is atomic tmp+rename), but adaptation keeps generations
  /// side by side so a failed round never touches the serving artifact.
  std::string output_checkpoint;
  /// Fine-tune plan. `checkpoint_path`, `resume`, and `max_steps` are
  /// overridden internally (output routing / always-fresh plan); everything
  /// else — epochs, lr, seed, augmentations — is honored as given.
  PretrainConfig pretrain;
};

/// Telemetry of a completed retraining round.
struct RetrainResult {
  PretrainStats stats;        ///< Per-epoch losses of the fine-tune run.
  int64_t corpus_size = 0;    ///< Trajectories trained on.
  std::string checkpoint;     ///< == options.output_checkpoint.
};

/// \brief Warm-start fine-tune: loads the parameters of `base_checkpoint`
/// into a fresh model and runs the Sec. III-C self-supervised tasks over
/// `corpus`, writing the result to `output_checkpoint`.
///
/// This is deliberately NOT PretrainConfig::resume — resume replays an
/// interrupted run and refuses a changed corpus (plan hash); retraining is
/// a new run over a NEW corpus that merely starts from trained weights.
/// Optimizer state is rebuilt from scratch (fresh AdamW moments), matching
/// the paper's fine-tuning protocol.
///
/// Pure-Status boundary for the adaptation loop: a missing/corrupt base
/// artifact, an empty corpus, or an unwritable output path returns an
/// error and writes nothing — the caller's serving artifact is untouched.
/// Deterministic: the same (base artifact, corpus, options) produces a
/// bitwise-identical output artifact.
common::Result<RetrainResult> WarmStartRetrain(
    const StartConfig& config, const roadnet::RoadNetwork* net,
    const roadnet::TransferProbability* transfer,
    const traj::TrafficModel* traffic,
    const std::vector<traj::Trajectory>& corpus,
    const RetrainOptions& options);

}  // namespace start::core

#endif  // START_CORE_RETRAIN_H_
