#include "core/parallel_trainer.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "data/batch.h"
#include "nn/allreduce.h"
#include "nn/losses.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace start::core {

using tensor::Tensor;

namespace {

/// Salts separating the engine's dropout streams from each other and from
/// the loader's augmentation stream / the legacy loop's kDropoutStreamSalt.
constexpr uint64_t kShardDropoutSalt = 0x5aadd0f05eedULL;
constexpr uint64_t kStage1DropoutSalt = 0x57a6e15eed01ULL;

/// Per-(optimizer step, grain ordinal) dropout seed. Keyed on the grain's
/// position within the *optimizer step's* grain list — not the loader step —
/// so an accumulation group of micro-batches draws the same streams as the
/// equivalent single large batch (the 2-micro ≡ 1-double contract).
uint64_t GrainSeed(uint64_t base, int64_t opt_step, int64_t ordinal) {
  return data::BatchLoader::StepSeed(
      data::BatchLoader::StepSeed(base ^ kShardDropoutSalt, opt_step),
      ordinal);
}

/// A leaf tensor aliasing `t`'s value storage (zero-copy) with its own
/// gradient buffer and no graph edges. Each grain encodes through its own
/// proxy of the shared stage-1 road representations, so the stage-2 backward
/// deposits the grain's road-reps gradient into a private slot instead of
/// racing (and order-scrambling) a shared one.
Tensor SharedValueLeaf(const Tensor& t) {
  const auto& src = t.impl();
  auto impl = std::make_shared<tensor::TensorImpl>();
  impl->shape = src->shape;
  impl->storage = src->storage;
  impl->strides = src->strides;
  impl->offset = src->offset;
  impl->contiguous = src->contiguous;
  impl->requires_grad = true;
  impl->op = "shard_proxy";
  return Tensor(std::move(impl));
}

/// Copies a (possibly strided) 2-D tensor's values into dense row-major
/// `dst`. Reads through strides, so zero-copy CLS views need no Contiguous()
/// materialisation (which would grow the autograd graph).
void CopyRowsOut(const Tensor& t, float* dst) {
  START_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  const int64_t s0 = t.strides()[0], s1 = t.strides()[1];
  const float* base = t.impl()->base_ptr();
  if (s1 == 1) {
    for (int64_t i = 0; i < rows; ++i) {
      std::memcpy(dst + i * cols, base + i * s0,
                  static_cast<size_t>(cols) * sizeof(float));
    }
    return;
  }
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      dst[i * cols + j] = base[i * s0 + j * s1];
    }
  }
}

/// Drops every parameter gradient buffer of `params`. Grain backward passes
/// accumulate into leaf gradients, so each grain must start from
/// unallocated (= exactly zero) buffers for its slot to hold only its own
/// contribution.
void DropGrads(const std::vector<Tensor>& params) {
  for (const auto& p : params) p.impl()->grad.reset();
}

}  // namespace

/// One micro-shard: a fixed [row_begin, row_end) trajectory range of one
/// micro-batch, with everything the two phases exchange.
struct ParallelTrainer::Grain {
  int64_t ordinal = 0;  ///< Fixed slot in the all-reduce tree.
  const data::TrainingBatch* micro = nullptr;
  int64_t row_begin = 0, row_end = 0;  ///< Trajectory rows of `micro`.

  // Masked-recovery slice (empty when the range holds no masked positions).
  std::vector<int64_t> local_positions;  ///< Rebased b*max_len+pos.
  int64_t logit_row = 0;   ///< First row in the central logits gather.
  int64_t logit_rows = 0;  ///< == local_positions.size().
  int64_t cls_row = 0;     ///< First row in the central CLS gather.
  int64_t cls_rows = 0;    ///< 2 * (row_end - row_begin) when contrastive.

  // Phase A outputs (retained graphs), consumed by phase B.
  data::Batch masked_slice, contrastive_slice;
  Tensor proxy;   ///< This grain's road-reps leaf.
  Tensor logits;  ///< [logit_rows, V] or undefined.
  Tensor cls;     ///< [cls_rows, d] or undefined.

  // Phase B outputs, consumed by the tree reduce.
  nn::GradShard grads;
  std::shared_ptr<std::vector<float>> proxy_grad;
};

ParallelTrainer::ParallelTrainer(StartModel* model, const ShardConfig& config)
    : config_(config), primary_(model), replica_init_rng_(0xdeadbeef) {
  START_CHECK(model != nullptr);
  START_CHECK_GE(config_.num_shards, 1);
  START_CHECK_GE(config_.shard_grain, 0);
  START_CHECK_GE(config_.accum_steps, 1);
  rngs_.resize(static_cast<size_t>(config_.num_shards));
  replica_params_.push_back(primary_->Parameters());
  for (int r = 1; r < config_.num_shards; ++r) {
    auto replica = std::make_unique<StartModel>(
        primary_->config(), primary_->net(), primary_->transfer(),
        &replica_init_rng_);
    replica->CopyParametersFrom(*primary_);
    replica_params_.push_back(replica->Parameters());
    extra_replicas_.push_back(std::move(replica));
  }
  for (int r = 0; r < config_.num_shards; ++r) {
    StartModel* m = ReplicaModel(r);
    m->SetTraining(true);
    m->SetDropoutRng(&rngs_[static_cast<size_t>(r)]);
  }
  if (config_.num_shards > 1) {
    pool_ = std::make_unique<common::ThreadPool>(config_.num_shards);
  }
}

ParallelTrainer::~ParallelTrainer() {
  // The replicas (and their rng pointers) die with the trainer; the primary
  // outlives it and must not keep a pointer into our rngs_.
  primary_->SetDropoutRng(nullptr);
}

StartModel* ParallelTrainer::ReplicaModel(int r) const {
  return r == 0 ? primary_ : extra_replicas_[static_cast<size_t>(r - 1)].get();
}

void ParallelTrainer::RunOnReplicas(const std::function<void(int)>& fn) {
  const int k = config_.num_shards;
  if (pool_ == nullptr) {
    for (int r = 0; r < k; ++r) fn(r);
    return;
  }
  common::Latch latch(k);
  for (int r = 0; r < k; ++r) {
    pool_->Submit([&, r] {
      fn(r);
      latch.CountDown();
    });
  }
  latch.Wait();
}

void ParallelTrainer::SyncReplicas() {
  for (auto& replica : extra_replicas_) {
    replica->CopyParametersFrom(*primary_);
  }
}

std::vector<uint64_t> ParallelTrainer::ShardRngStates() const {
  std::vector<uint64_t> out;
  for (const auto& rng : rngs_) {
    const auto state = rng.GetState();
    out.insert(out.end(), state.begin(), state.end());
  }
  return out;
}

ShardStepStats ParallelTrainer::Step(
    const std::vector<const data::TrainingBatch*>& micros, int64_t opt_step,
    nn::AdamW* opt, double lr) {
  START_CHECK(opt != nullptr);
  START_CHECK(!micros.empty());
  START_CHECK_LE(static_cast<int64_t>(micros.size()), config_.accum_steps);
  const int64_t d = primary_->config().d;
  const int64_t v = primary_->num_roads();

  // Stale gradients from a previous step (or from code that ran before the
  // trainer) would be accumulated into by the grain backwards; drop them so
  // every slot holds exactly its grain's contribution.
  for (const auto& params : replica_params_) DropGrads(params);

  // ---- Grain plan (coordinator, cheap scans only) --------------------------
  // The decomposition is a pure function of (micros, shard_grain): grain g
  // covers a fixed trajectory range of a fixed micro-batch and owns slot g of
  // the reduce tree, regardless of num_shards.
  std::vector<Grain> grains;
  int64_t logit_rows_total = 0, cls_rows_total = 0;
  std::vector<int64_t> targets_cat;
  for (const data::TrainingBatch* micro : micros) {
    START_CHECK(micro != nullptr);
    const bool has_masked = config_.use_mask_task && micro->has_masked &&
                            !micro->mask_positions.empty();
    const bool has_con =
        config_.use_contrastive_task && micro->has_contrastive;
    const int64_t num_traj = has_masked ? micro->masked.batch_size
                                        : micro->contrastive.batch_size / 2;
    START_CHECK_GT(num_traj, 0);
    const int64_t grain =
        config_.shard_grain > 0 ? std::min(config_.shard_grain, num_traj)
                                : num_traj;
    size_t pos_cursor = 0;  // mask_positions are sorted by (b, pos)
    for (int64_t r0 = 0; r0 < num_traj; r0 += grain) {
      const int64_t r1 = std::min(num_traj, r0 + grain);
      Grain g;
      g.ordinal = static_cast<int64_t>(grains.size());
      g.micro = micro;
      g.row_begin = r0;
      g.row_end = r1;
      if (has_masked) {
        const int64_t max_len = micro->masked.max_len;
        const int64_t limit = r1 * max_len;
        g.logit_row = logit_rows_total;
        while (pos_cursor < micro->mask_positions.size() &&
               micro->mask_positions[pos_cursor] < limit) {
          g.local_positions.push_back(micro->mask_positions[pos_cursor] -
                                      r0 * max_len);
          targets_cat.push_back(micro->mask_targets[pos_cursor]);
          ++pos_cursor;
        }
        g.logit_rows = static_cast<int64_t>(g.local_positions.size());
        logit_rows_total += g.logit_rows;
      }
      if (has_con) {
        g.cls_row = cls_rows_total;
        g.cls_rows = 2 * (r1 - r0);
        cls_rows_total += g.cls_rows;
      }
      grains.push_back(std::move(g));
    }
    if (has_masked) {
      START_CHECK_EQ(pos_cursor, micro->mask_positions.size());
    }
  }
  const int64_t num_grains = static_cast<int64_t>(grains.size());
  START_CHECK_MSG(logit_rows_total > 0 || cls_rows_total > 0,
                  "optimizer step with no loss contributions");

  const int k = config_.num_shards;
  const auto grains_of = [num_grains, k](int r, int64_t* begin,
                                         int64_t* end) {
    *begin = r * num_grains / k;
    *end = (r + 1) * num_grains / k;
  };

  // ---- Stage 1 once per optimizer step (primary, graph retained) -----------
  rngs_[0].Seed(data::BatchLoader::StepSeed(
      config_.seed ^ kStage1DropoutSalt, opt_step));
  Tensor road_reps = primary_->ComputeRoadReps();

  // ---- Phase A: per-grain forward to the loss boundary ---------------------
  RunOnReplicas([&](int r) {
    int64_t begin, end;
    grains_of(r, &begin, &end);
    StartModel* model = ReplicaModel(r);
    common::Rng& rng = rngs_[static_cast<size_t>(r)];
    for (int64_t gi = begin; gi < end; ++gi) {
      Grain& g = grains[static_cast<size_t>(gi)];
      rng.Seed(GrainSeed(config_.seed, opt_step, g.ordinal));
      g.proxy = SharedValueLeaf(road_reps);
      if (g.logit_rows > 0) {
        data::SliceBatchRows(g.micro->masked, g.row_begin, g.row_end,
                             &g.masked_slice);
        const EncoderOutput out = model->Encode(g.masked_slice, g.proxy);
        g.logits = model->MaskedLogits(out, g.local_positions,
                                       g.masked_slice.max_len);
      }
      if (g.cls_rows > 0) {
        data::SliceBatchRows(g.micro->contrastive, 2 * g.row_begin,
                             2 * g.row_end, &g.contrastive_slice);
        g.cls = model->Encode(g.contrastive_slice, g.proxy).cls;
      }
    }
  });

  // ---- Central losses over the gathered boundary ---------------------------
  // Both objectives couple samples across the whole optimizer step (NT-Xent's
  // in-batch negatives; the CE mean over every masked position), so they are
  // evaluated once, serially, over the gathered rows — the same computation
  // for every shard count, and the mechanism through which gradient
  // accumulation enlarges the effective contrastive batch.
  Tensor logits_cat, cls_cat;
  if (logit_rows_total > 0) {
    std::vector<float> buf(
        static_cast<size_t>(logit_rows_total * v));
    for (const Grain& g : grains) {
      if (g.logit_rows > 0) {
        CopyRowsOut(g.logits, buf.data() + g.logit_row * v);
      }
    }
    logits_cat = Tensor::FromVector(tensor::Shape({logit_rows_total, v}),
                                    std::move(buf), /*requires_grad=*/true);
  }
  if (cls_rows_total > 0) {
    std::vector<float> buf(static_cast<size_t>(cls_rows_total * d));
    for (const Grain& g : grains) {
      if (g.cls_rows > 0) CopyRowsOut(g.cls, buf.data() + g.cls_row * d);
    }
    cls_cat = Tensor::FromVector(tensor::Shape({cls_rows_total, d}),
                                 std::move(buf), /*requires_grad=*/true);
  }

  ShardStepStats stats;
  stats.grains = num_grains;
  Tensor loss;
  if (logits_cat.defined()) {
    const Tensor mask_loss =
        tensor::CrossEntropyWithLogits(logits_cat, targets_cat);
    stats.mask_loss = mask_loss.item();
    loss = tensor::Scale(mask_loss,
                         config_.use_contrastive_task
                             ? static_cast<float>(config_.lambda)
                             : 1.0f);
  }
  if (cls_cat.defined()) {
    const Tensor con_loss = nn::NtXentLoss(cls_cat, config_.tau);
    stats.con_loss = con_loss.item();
    const Tensor scaled = tensor::Scale(
        con_loss, config_.use_mask_task
                      ? static_cast<float>(1.0 - config_.lambda)
                      : 1.0f);
    loss = loss.defined() ? tensor::Add(loss, scaled) : scaled;
  }
  START_CHECK(loss.defined());
  stats.loss = loss.item();
  loss.Backward();
  const float* logits_grad =
      logits_cat.defined() ? logits_cat.grad() : nullptr;
  const float* cls_grad = cls_cat.defined() ? cls_cat.grad() : nullptr;

  // ---- Phase B: per-grain backward from the scattered boundary grads -------
  RunOnReplicas([&](int r) {
    int64_t begin, end;
    grains_of(r, &begin, &end);
    const auto& params = replica_params_[static_cast<size_t>(r)];
    for (int64_t gi = begin; gi < end; ++gi) {
      Grain& g = grains[static_cast<size_t>(gi)];
      // Fixed within-grain order: masked first, then contrastive — leaf
      // gradients accumulate across the two Backward calls in this order on
      // every shard count.
      if (g.logit_rows > 0) {
        g.logits.Backward(std::vector<float>(
            logits_grad + g.logit_row * v,
            logits_grad + (g.logit_row + g.logit_rows) * v));
      }
      if (g.cls_rows > 0) {
        g.cls.Backward(std::vector<float>(
            cls_grad + g.cls_row * d,
            cls_grad + (g.cls_row + g.cls_rows) * d));
      }
      // Steal the accumulated leaf gradients into the grain's reduce slot
      // (zero-copy) and leave the replica's buffers unallocated for the next
      // grain. Untouched parameters (the whole stage-1 tower) stay null —
      // exact zeros the tree reduce skips.
      g.grads.reserve(params.size());
      for (const auto& p : params) {
        auto& grad = p.impl()->grad;
        g.grads.push_back(p.has_grad() ? std::move(grad) : nullptr);
        grad.reset();
      }
      g.proxy_grad = std::move(g.proxy.impl()->grad);
      // Drop the grain's retained graphs (activations) eagerly.
      g.proxy = Tensor();
      g.logits = Tensor();
      g.cls = Tensor();
    }
  });

  // ---- Fixed-order tree all-reduce + fused AdamW (primary) -----------------
  opt->ZeroGrad();
  {
    std::vector<nn::GradShard> shards;
    shards.reserve(static_cast<size_t>(num_grains));
    std::vector<std::shared_ptr<std::vector<float>>> proxy_slots;
    proxy_slots.reserve(static_cast<size_t>(num_grains));
    for (Grain& g : grains) {
      shards.push_back(std::move(g.grads));
      proxy_slots.push_back(std::move(g.proxy_grad));
    }
    nn::TreeReduceInto(std::move(shards), opt->params(), pool_.get());
    const auto reps_grad = nn::TreeReduce(std::move(proxy_slots));
    if (reps_grad != nullptr) {
      // Stage-1 backward, once, serially, from the combined road-reps
      // gradient — GAT parameter grads land on the primary like everything
      // else (leaf grads accumulate onto the zeros ZeroGrad left).
      road_reps.Backward(*reps_grad);
    }
  }
  nn::ClipGradNorm(replica_params_[0], config_.grad_clip);
  opt->set_lr(lr);
  opt->Step();

  // ---- Broadcast: replicas re-sync to the updated primary ------------------
  if (k > 1) {
    RunOnReplicas([&](int r) {
      if (r == 0) return;
      const auto& primary_params = replica_params_[0];
      auto& params = replica_params_[static_cast<size_t>(r)];
      for (size_t i = 0; i < params.size(); ++i) {
        std::memcpy(params[i].data(), primary_params[i].data(),
                    static_cast<size_t>(params[i].numel()) * sizeof(float));
      }
    });
  }
  return stats;
}

}  // namespace start::core
