#ifndef START_CORE_CONFIG_H_
#define START_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

namespace start::core {

/// \brief Hyper-parameters of the START model (defaults follow Sec. IV-C1,
/// with the width scaled by the caller; the paper uses d = 256).
///
/// The boolean flags implement the ablation variants of Fig. 7; all default
/// to the full model.
struct StartConfig {
  int64_t d = 64;            ///< Embedding size (paper: 256).
  int64_t gat_layers = 3;    ///< L1.
  /// Attention heads per TPE-GAT layer (paper: [8, 16, 1]). Each entry must
  /// divide d.
  std::vector<int64_t> gat_heads = {8, 16, 1};
  int64_t encoder_layers = 6;  ///< L2 (paper: 6).
  int64_t encoder_heads = 8;   ///< H2.
  /// FFN hidden width; Eq. (11) uses W_F ∈ R^{d×d}, i.e. hidden = d.
  int64_t ffn_dim = 0;  ///< 0 -> use d.
  float dropout = 0.1f;
  int64_t max_len = 128;          ///< Maximum trajectory length (Sec. IV-A).
  int64_t interval_hidden = 8;    ///< Width of the Eq. (9) two-linear map.

  // --- Ablation switches (Fig. 7) -----------------------------------------
  bool use_tpe_gat = true;        ///< false = "w/o TPE-GAT" (random embeddings).
  bool use_transfer_prob = true;  ///< false = "w/o TransProb" (standard GAT).
  bool use_time_embedding = true; ///< false = "w/o Time Emb".
  bool use_time_interval = true;  ///< false = "w/o Time Interval".
  bool interval_use_hops = false; ///< true = "w/ Hop": δ_ij = |i − j|.
  bool interval_use_log = true;   ///< false = "w/o Log": δ' = 1/δ.
  bool interval_adaptive = true;  ///< false = "w/o Adaptive": ∆̃ = ∆'.
  /// Optional initial road-embedding table (row-major [V, d]) for the
  /// "w/ Node2vec" variant; only read when use_tpe_gat == false.
  std::vector<float> road_embedding_init;

  int64_t FfnDim() const { return ffn_dim > 0 ? ffn_dim : d; }
};

}  // namespace start::core

#endif  // START_CORE_CONFIG_H_
