#include "roadnet/road_network.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace start::roadnet {

std::string_view RoadTypeName(RoadType type) {
  switch (type) {
    case RoadType::kMotorway:
      return "motorway";
    case RoadType::kPrimary:
      return "primary";
    case RoadType::kSecondary:
      return "secondary";
    case RoadType::kTertiary:
      return "tertiary";
    case RoadType::kResidential:
      return "residential";
  }
  return "unknown";
}

int64_t RoadNetwork::AddSegment(RoadSegment segment) {
  START_CHECK(!finalized_);
  const int64_t id = static_cast<int64_t>(segments_.size());
  segment.id = id;
  segments_.push_back(segment);
  return id;
}

void RoadNetwork::AddEdge(int64_t from, int64_t to) {
  START_CHECK(!finalized_);
  CheckId(from);
  CheckId(to);
  pending_edges_.emplace_back(from, to);
}

void RoadNetwork::CheckId(int64_t id) const {
  START_CHECK_MSG(id >= 0 && id < num_segments(),
                  "segment id " << id << " out of range");
}

void RoadNetwork::Finalize() {
  if (finalized_) return;
  // De-duplicate edges.
  std::sort(pending_edges_.begin(), pending_edges_.end());
  pending_edges_.erase(
      std::unique(pending_edges_.begin(), pending_edges_.end()),
      pending_edges_.end());
  const int64_t v = num_segments();
  const int64_t e = static_cast<int64_t>(pending_edges_.size());
  edge_src_.resize(static_cast<size_t>(e));
  edge_dst_.resize(static_cast<size_t>(e));
  for (int64_t i = 0; i < e; ++i) {
    edge_src_[static_cast<size_t>(i)] = pending_edges_[static_cast<size_t>(i)].first;
    edge_dst_[static_cast<size_t>(i)] = pending_edges_[static_cast<size_t>(i)].second;
  }
  // CSR out-adjacency (pending_edges_ is sorted by (src, dst)).
  out_offsets_.assign(static_cast<size_t>(v + 1), 0);
  out_targets_.resize(static_cast<size_t>(e));
  for (const auto& [from, to] : pending_edges_) {
    ++out_offsets_[static_cast<size_t>(from + 1)];
  }
  for (int64_t i = 0; i < v; ++i) {
    out_offsets_[static_cast<size_t>(i + 1)] +=
        out_offsets_[static_cast<size_t>(i)];
  }
  {
    std::vector<int64_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
    for (const auto& [from, to] : pending_edges_) {
      out_targets_[static_cast<size_t>(cursor[static_cast<size_t>(from)]++)] =
          to;
    }
  }
  // CSR in-adjacency.
  in_offsets_.assign(static_cast<size_t>(v + 1), 0);
  in_sources_.resize(static_cast<size_t>(e));
  for (const auto& [from, to] : pending_edges_) {
    ++in_offsets_[static_cast<size_t>(to + 1)];
  }
  for (int64_t i = 0; i < v; ++i) {
    in_offsets_[static_cast<size_t>(i + 1)] +=
        in_offsets_[static_cast<size_t>(i)];
  }
  {
    std::vector<int64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
    for (const auto& [from, to] : pending_edges_) {
      in_sources_[static_cast<size_t>(cursor[static_cast<size_t>(to)]++)] =
          from;
    }
  }
  pending_edges_.clear();
  pending_edges_.shrink_to_fit();
  finalized_ = true;
}

const RoadSegment& RoadNetwork::segment(int64_t id) const {
  CheckId(id);
  return segments_[static_cast<size_t>(id)];
}

std::vector<int64_t> RoadNetwork::OutNeighbors(int64_t v) const {
  START_CHECK(finalized_);
  CheckId(v);
  return {out_targets_.begin() + out_offsets_[static_cast<size_t>(v)],
          out_targets_.begin() + out_offsets_[static_cast<size_t>(v + 1)]};
}

std::vector<int64_t> RoadNetwork::InNeighbors(int64_t v) const {
  START_CHECK(finalized_);
  CheckId(v);
  return {in_sources_.begin() + in_offsets_[static_cast<size_t>(v)],
          in_sources_.begin() + in_offsets_[static_cast<size_t>(v + 1)]};
}

IdSpan RoadNetwork::OutSpan(int64_t v) const {
  START_CHECK(finalized_);
  CheckId(v);
  const int64_t begin = out_offsets_[static_cast<size_t>(v)];
  return {out_targets_.data() + begin,
          out_offsets_[static_cast<size_t>(v + 1)] - begin};
}

IdSpan RoadNetwork::InSpan(int64_t v) const {
  START_CHECK(finalized_);
  CheckId(v);
  const int64_t begin = in_offsets_[static_cast<size_t>(v)];
  return {in_sources_.data() + begin,
          in_offsets_[static_cast<size_t>(v + 1)] - begin};
}

int64_t RoadNetwork::EdgeIndexOf(int64_t from, int64_t to) const {
  START_CHECK(finalized_);
  CheckId(from);
  CheckId(to);
  const auto begin =
      out_targets_.begin() + out_offsets_[static_cast<size_t>(from)];
  const auto end =
      out_targets_.begin() + out_offsets_[static_cast<size_t>(from + 1)];
  const auto it = std::lower_bound(begin, end, to);
  if (it == end || *it != to) return -1;
  return it - out_targets_.begin();
}

int64_t RoadNetwork::OutDegree(int64_t v) const {
  START_CHECK(finalized_);
  CheckId(v);
  return out_offsets_[static_cast<size_t>(v + 1)] -
         out_offsets_[static_cast<size_t>(v)];
}

int64_t RoadNetwork::InDegree(int64_t v) const {
  START_CHECK(finalized_);
  CheckId(v);
  return in_offsets_[static_cast<size_t>(v + 1)] -
         in_offsets_[static_cast<size_t>(v)];
}

bool RoadNetwork::HasEdge(int64_t from, int64_t to) const {
  START_CHECK(finalized_);
  CheckId(from);
  CheckId(to);
  const auto begin =
      out_targets_.begin() + out_offsets_[static_cast<size_t>(from)];
  const auto end =
      out_targets_.begin() + out_offsets_[static_cast<size_t>(from + 1)];
  return std::binary_search(begin, end, to);
}

double RoadNetwork::FreeFlowTravelTime(int64_t v) const {
  const RoadSegment& s = segment(v);
  START_CHECK_GT(s.maxspeed_mps, 0.0);
  return s.length_m / s.maxspeed_mps;
}

std::vector<float> RoadNetwork::BuildFeatureMatrix() const {
  START_CHECK(finalized_);
  const int64_t v = num_segments();
  const int64_t fd = FeatureDim();
  std::vector<float> features(static_cast<size_t>(v * fd), 0.0f);
  // Numeric columns: length, lanes, maxspeed, in_deg, out_deg.
  struct Stats {
    double sum = 0.0, sq = 0.0;
    void Add(double x) {
      sum += x;
      sq += x * x;
    }
    double Mean(int64_t n) const { return sum / static_cast<double>(n); }
    double Std(int64_t n) const {
      const double m = Mean(n);
      return std::sqrt(std::max(1e-12, sq / static_cast<double>(n) - m * m));
    }
  };
  constexpr int kNumNumeric = 9;
  Stats st[kNumNumeric];
  auto numeric = [&](int64_t i, double* out) {
    const RoadSegment& s = segments_[static_cast<size_t>(i)];
    const double heading = std::atan2(s.y1 - s.y0, s.x1 - s.x0);
    out[0] = s.length_m;
    out[1] = static_cast<double>(s.lanes);
    out[2] = s.maxspeed_mps;
    out[3] = static_cast<double>(InDegree(i));
    out[4] = static_cast<double>(OutDegree(i));
    out[5] = s.MidX();
    out[6] = s.MidY();
    out[7] = std::sin(heading);
    out[8] = std::cos(heading);
  };
  for (int64_t i = 0; i < v; ++i) {
    double raw[kNumNumeric];
    numeric(i, raw);
    for (int k = 0; k < kNumNumeric; ++k) st[k].Add(raw[k]);
  }
  for (int64_t i = 0; i < v; ++i) {
    const RoadSegment& s = segments_[static_cast<size_t>(i)];
    float* row = features.data() + i * fd;
    row[static_cast<int32_t>(s.type)] = 1.0f;
    double raw[kNumNumeric];
    numeric(i, raw);
    for (int k = 0; k < kNumNumeric; ++k) {
      row[kNumRoadTypes + k] =
          static_cast<float>((raw[k] - st[k].Mean(v)) / st[k].Std(v));
    }
  }
  return features;
}

TransferProbability TransferProbability::FromTrajectories(
    const RoadNetwork& net,
    const std::vector<std::vector<int64_t>>& road_sequences) {
  TransferProbability tp;
  tp.visit_counts_.assign(static_cast<size_t>(net.num_segments()), 0);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (const auto& seq : road_sequences) {
    for (size_t i = 0; i < seq.size(); ++i) {
      START_CHECK_MSG(seq[i] >= 0 && seq[i] < net.num_segments(),
                      "road id " << seq[i]);
      ++tp.visit_counts_[static_cast<size_t>(seq[i])];
      if (i + 1 < seq.size()) pairs.emplace_back(seq[i], seq[i + 1]);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 0; i < pairs.size();) {
    size_t j = i;
    while (j < pairs.size() && pairs[j] == pairs[i]) ++j;
    tp.pair_keys_.push_back(pairs[i]);
    tp.pair_counts_.push_back(static_cast<int64_t>(j - i));
    i = j;
  }
  return tp;
}

double TransferProbability::Prob(int64_t from, int64_t to) const {
  START_CHECK_MSG(from >= 0 && from < num_segments(), "road id " << from);
  const int64_t visits = visit_counts_[static_cast<size_t>(from)];
  if (visits == 0) return 0.0;
  const auto it = std::lower_bound(pair_keys_.begin(), pair_keys_.end(),
                                   std::make_pair(from, to));
  if (it == pair_keys_.end() || *it != std::make_pair(from, to)) return 0.0;
  const size_t idx = static_cast<size_t>(it - pair_keys_.begin());
  return static_cast<double>(pair_counts_[idx]) /
         static_cast<double>(visits);
}

std::vector<double> TransferProbability::EdgeProbabilities(
    const RoadNetwork& net) const {
  START_CHECK(net.finalized());
  START_CHECK_EQ(net.num_segments(), num_segments());
  const auto& src = net.edge_sources();
  const auto& dst = net.edge_targets();
  std::vector<double> probs(src.size(), 0.0);
  // Both the flat edge list and pair_keys_ ascend by (from, to): advance a
  // single cursor into pair_keys_ instead of binary-searching per edge.
  size_t cursor = 0;
  for (size_t i = 0; i < src.size(); ++i) {
    const std::pair<int64_t, int64_t> key(src[i], dst[i]);
    while (cursor < pair_keys_.size() && pair_keys_[cursor] < key) ++cursor;
    if (cursor < pair_keys_.size() && pair_keys_[cursor] == key) {
      const int64_t visits = visit_counts_[static_cast<size_t>(key.first)];
      if (visits > 0) {
        probs[i] = static_cast<double>(pair_counts_[cursor]) /
                   static_cast<double>(visits);
      }
    }
  }
  return probs;
}

int64_t TransferProbability::VisitCount(int64_t road) const {
  START_CHECK_MSG(road >= 0 && road < num_segments(), "road id " << road);
  return visit_counts_[static_cast<size_t>(road)];
}

}  // namespace start::roadnet
