#include "roadnet/csr_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace start::roadnet {

namespace {

/// SplitMix64 step — the mixing primitive behind the graph fingerprint.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t h, uint64_t v) { return Mix64(h ^ Mix64(v)); }

}  // namespace

CsrGraph CsrGraph::FromNetwork(const RoadNetwork& net,
                               const SegmentWeightFn& weight,
                               const CsrGraphOptions& options) {
  START_CHECK(net.finalized());
  START_CHECK_GT(options.cost_scale, 0.0);
  const int64_t v = net.num_segments();
  START_CHECK_MSG(v < (int64_t{1} << 31), "CsrGraph is int32-indexed");

  CsrGraph g;
  g.options_ = options;
  g.num_nodes_ = static_cast<int32_t>(v);

  // Degree-ordered renumbering: hubs first (descending in+out degree),
  // ties by ascending segment id — stable and deterministic.
  std::vector<int64_t> order(static_cast<size_t>(v));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const int64_t da = net.OutDegree(a) + net.InDegree(a);
    const int64_t db = net.OutDegree(b) + net.InDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  g.to_segment_ = std::move(order);
  g.to_node_.assign(static_cast<size_t>(v), -1);
  for (int32_t n = 0; n < g.num_nodes_; ++n) {
    g.to_node_[static_cast<size_t>(g.to_segment_[static_cast<size_t>(n)])] = n;
  }

  // Quantized node costs (in new numbering).
  g.node_cost_.resize(static_cast<size_t>(v));
  for (int32_t n = 0; n < g.num_nodes_; ++n) {
    const double w = weight(g.to_segment_[static_cast<size_t>(n)]);
    START_CHECK_MSG(w > 0.0, "non-positive segment weight " << w);
    const Cost c = std::max<Cost>(
        1, static_cast<Cost>(std::llround(w * options.cost_scale)));
    g.node_cost_[static_cast<size_t>(n)] = c;
  }

  // Out-CSR in the new numbering; heads sorted ascending per tail.
  g.out_offsets_.assign(static_cast<size_t>(v) + 1, 0);
  for (int32_t n = 0; n < g.num_nodes_; ++n) {
    g.out_offsets_[static_cast<size_t>(n) + 1] =
        net.OutDegree(g.to_segment_[static_cast<size_t>(n)]);
  }
  for (int64_t i = 0; i < v; ++i) {
    g.out_offsets_[static_cast<size_t>(i) + 1] +=
        g.out_offsets_[static_cast<size_t>(i)];
  }
  const int64_t e = g.out_offsets_[static_cast<size_t>(v)];
  g.out_heads_.resize(static_cast<size_t>(e));
  g.out_weights_.resize(static_cast<size_t>(e));
  for (int32_t n = 0; n < g.num_nodes_; ++n) {
    int64_t cursor = g.out_offsets_[static_cast<size_t>(n)];
    for (const int64_t to : net.OutSpan(g.to_segment_[static_cast<size_t>(n)])) {
      g.out_heads_[static_cast<size_t>(cursor)] =
          g.to_node_[static_cast<size_t>(to)];
      ++cursor;
    }
    // Heads were appended in old-id order; re-sort in the new numbering so
    // hot loops see monotone targets.
    std::sort(g.out_heads_.begin() + g.out_offsets_[static_cast<size_t>(n)],
              g.out_heads_.begin() + cursor);
    for (int64_t k = g.out_offsets_[static_cast<size_t>(n)]; k < cursor; ++k) {
      g.out_weights_[static_cast<size_t>(k)] =
          g.node_cost_[static_cast<size_t>(g.out_heads_[static_cast<size_t>(k)])];
    }
  }

  // In-CSR (tails of arcs arriving at each node), derived from the out side.
  g.in_offsets_.assign(static_cast<size_t>(v) + 1, 0);
  for (const int32_t head : g.out_heads_) {
    ++g.in_offsets_[static_cast<size_t>(head) + 1];
  }
  for (int64_t i = 0; i < v; ++i) {
    g.in_offsets_[static_cast<size_t>(i) + 1] +=
        g.in_offsets_[static_cast<size_t>(i)];
  }
  g.in_tails_.resize(static_cast<size_t>(e));
  g.in_weights_.resize(static_cast<size_t>(e));
  {
    std::vector<int64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (int32_t n = 0; n < g.num_nodes_; ++n) {
      for (int64_t k = g.out_offsets_[static_cast<size_t>(n)];
           k < g.out_offsets_[static_cast<size_t>(n) + 1]; ++k) {
        const int32_t head = g.out_heads_[static_cast<size_t>(k)];
        const int64_t at = cursor[static_cast<size_t>(head)]++;
        g.in_tails_[static_cast<size_t>(at)] = n;
        g.in_weights_[static_cast<size_t>(at)] =
            g.out_weights_[static_cast<size_t>(k)];
      }
    }
  }

  // Fingerprint over structure + metric (+ scale bits), so a serialized CH
  // artifact can detect it was built from a different graph or weighting.
  uint64_t h = 0x5354435352ULL;  // "STCSR"
  h = HashCombine(h, static_cast<uint64_t>(v));
  h = HashCombine(h, static_cast<uint64_t>(e));
  uint64_t scale_bits = 0;
  static_assert(sizeof(scale_bits) == sizeof(options.cost_scale));
  __builtin_memcpy(&scale_bits, &options.cost_scale, sizeof(scale_bits));
  h = HashCombine(h, scale_bits);
  for (int64_t i = 0; i < v; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(g.to_segment_[static_cast<size_t>(i)]));
    h = HashCombine(h, static_cast<uint64_t>(g.node_cost_[static_cast<size_t>(i)]));
    h = HashCombine(h, static_cast<uint64_t>(g.out_offsets_[static_cast<size_t>(i) + 1]));
  }
  for (int64_t k = 0; k < e; ++k) {
    h = HashCombine(h, static_cast<uint64_t>(g.out_heads_[static_cast<size_t>(k)]));
  }
  g.fingerprint_ = h;
  return g;
}

CsrGraph CsrGraph::FromNetworkFreeFlow(const RoadNetwork& net,
                                       const CsrGraphOptions& options) {
  return FromNetwork(
      net, [&net](int64_t s) { return net.FreeFlowTravelTime(s); }, options);
}

std::vector<int64_t> CsrGraph::ToSegments(
    const std::vector<int32_t>& nodes) const {
  std::vector<int64_t> out;
  out.reserve(nodes.size());
  for (const int32_t n : nodes) out.push_back(ToSegment(n));
  return out;
}

// ---------------------------------------------------------------------------
// CsrDijkstra
// ---------------------------------------------------------------------------

CsrDijkstra::CsrDijkstra(const CsrGraph* graph) : graph_(graph) {
  START_CHECK(graph != nullptr);
  const size_t v = static_cast<size_t>(graph->num_nodes());
  dist_.assign(v, kInfCost);
  parent_.assign(v, -1);
  stamp_.assign(v, 0);
  settled_.assign(v, 0);
  is_target_.assign(v, 0);
  target_stamp_.assign(v, 0);
}

void CsrDijkstra::Reset() {
  ++cur_stamp_;
  if (cur_stamp_ == 0) {  // stamp wraparound: hard-clear once per 2^32 queries
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    cur_stamp_ = 1;
  }
  heap_.clear();
}

void CsrDijkstra::Run(int32_t src, int32_t dst, int64_t* remaining) {
  const int64_t* offsets = graph_->out_offsets();
  const int32_t* heads = graph_->out_heads();
  const Cost* weights = graph_->out_weights();

  auto label = [&](int32_t v) -> Cost& {
    if (stamp_[static_cast<size_t>(v)] != cur_stamp_) {
      stamp_[static_cast<size_t>(v)] = cur_stamp_;
      dist_[static_cast<size_t>(v)] = kInfCost;
      parent_[static_cast<size_t>(v)] = -1;
      settled_[static_cast<size_t>(v)] = 0;
    }
    return dist_[static_cast<size_t>(v)];
  };

  label(src) = graph_->node_cost(src);
  heap_.emplace_back(graph_->node_cost(src), src);
  std::push_heap(heap_.begin(), heap_.end(),
                 std::greater<std::pair<Cost, int32_t>>());
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(),
                  std::greater<std::pair<Cost, int32_t>>());
    const auto [d, u] = heap_.back();
    heap_.pop_back();
    if (d > label(u)) continue;  // stale entry
    settled_[static_cast<size_t>(u)] = 1;
    if (remaining != nullptr &&
        target_stamp_[static_cast<size_t>(u)] == cur_stamp_ &&
        is_target_[static_cast<size_t>(u)]) {
      is_target_[static_cast<size_t>(u)] = 0;
      if (--*remaining == 0) return;
    }
    if (u == dst) return;
    for (int64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      const int32_t nb = heads[k];
      const Cost nd = d + weights[k];
      Cost& dnb = label(nb);
      if (nd < dnb) {
        dnb = nd;
        parent_[static_cast<size_t>(nb)] = u;
        heap_.emplace_back(nd, nb);
        std::push_heap(heap_.begin(), heap_.end(),
                       std::greater<std::pair<Cost, int32_t>>());
      }
    }
  }
}

Cost CsrDijkstra::Distance(int32_t src, int32_t dst) {
  Reset();
  Run(src, dst, nullptr);
  if (stamp_[static_cast<size_t>(dst)] != cur_stamp_) return kInfCost;
  return dist_[static_cast<size_t>(dst)];
}

std::optional<CsrPath> CsrDijkstra::Route(int32_t src, int32_t dst) {
  const Cost d = Distance(src, dst);
  if (d >= kInfCost) return std::nullopt;
  CsrPath path;
  path.cost = d;
  for (int32_t cur = dst; cur != -1; cur = parent_[static_cast<size_t>(cur)]) {
    path.nodes.push_back(cur);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

void CsrDijkstra::DistancesFrom(int32_t src,
                                const std::vector<int32_t>& targets,
                                std::vector<Cost>* out) {
  Reset();
  int64_t remaining = 0;
  for (const int32_t t : targets) {
    target_stamp_[static_cast<size_t>(t)] = cur_stamp_;
    if (!is_target_[static_cast<size_t>(t)]) {
      is_target_[static_cast<size_t>(t)] = 1;
      ++remaining;
    }
  }
  Run(src, -1, &remaining);
  out->assign(targets.size(), kInfCost);
  for (size_t i = 0; i < targets.size(); ++i) {
    const int32_t t = targets[i];
    if (stamp_[static_cast<size_t>(t)] == cur_stamp_ &&
        settled_[static_cast<size_t>(t)]) {
      (*out)[i] = dist_[static_cast<size_t>(t)];
    }
    is_target_[static_cast<size_t>(t)] = 0;  // clear for the next call
  }
}

}  // namespace start::roadnet
