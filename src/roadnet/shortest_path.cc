#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <unordered_set>

#include "common/check.h"

namespace start::roadnet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra with optional banned vertices/edges (needed by Yen's spur search).
std::optional<PathResult> DijkstraImpl(
    const RoadNetwork& net, int64_t src, int64_t dst,
    const SegmentWeightFn& weight,
    const std::unordered_set<int64_t>* banned_vertices,
    const std::set<std::pair<int64_t, int64_t>>* banned_edges) {
  const int64_t v = net.num_segments();
  START_CHECK(src >= 0 && src < v);
  START_CHECK(dst >= 0 && dst < v);
  if (banned_vertices != nullptr &&
      (banned_vertices->count(src) || banned_vertices->count(dst))) {
    return std::nullopt;
  }
  std::vector<double> dist(static_cast<size_t>(v), kInf);
  std::vector<int64_t> prev(static_cast<size_t>(v), -1);
  using Item = std::pair<double, int64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  const double w0 = weight(src);
  START_CHECK_GT(w0, 0.0);
  dist[static_cast<size_t>(src)] = w0;
  pq.emplace(w0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    if (u == dst) break;
    for (const int64_t nb : net.OutNeighbors(u)) {
      if (banned_vertices != nullptr && banned_vertices->count(nb)) continue;
      if (banned_edges != nullptr && banned_edges->count({u, nb})) continue;
      const double wnb = weight(nb);
      START_CHECK_GT(wnb, 0.0);
      const double nd = d + wnb;
      if (nd < dist[static_cast<size_t>(nb)]) {
        dist[static_cast<size_t>(nb)] = nd;
        prev[static_cast<size_t>(nb)] = u;
        pq.emplace(nd, nb);
      }
    }
  }
  if (dist[static_cast<size_t>(dst)] == kInf) return std::nullopt;
  PathResult result;
  result.cost = dist[static_cast<size_t>(dst)];
  for (int64_t cur = dst; cur != -1; cur = prev[static_cast<size_t>(cur)]) {
    result.path.push_back(cur);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

double PathCost(const std::vector<int64_t>& path,
                const SegmentWeightFn& weight) {
  double c = 0.0;
  for (const int64_t s : path) c += weight(s);
  return c;
}

}  // namespace

std::optional<PathResult> ShortestPath(const RoadNetwork& net, int64_t src,
                                       int64_t dst,
                                       const SegmentWeightFn& weight) {
  if (src == dst) {
    return PathResult{{src}, weight(src)};
  }
  return DijkstraImpl(net, src, dst, weight, nullptr, nullptr);
}

std::vector<PathResult> KShortestPaths(const RoadNetwork& net, int64_t src,
                                       int64_t dst, int64_t k,
                                       const SegmentWeightFn& weight) {
  START_CHECK_GT(k, 0);
  std::vector<PathResult> found;
  auto first = ShortestPath(net, src, dst, weight);
  if (!first.has_value()) return found;
  found.push_back(std::move(*first));

  // Candidate paths ordered by cost; keys ensure deterministic dedup.
  auto cmp = [](const PathResult& a, const PathResult& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.path < b.path;
  };
  std::set<PathResult, decltype(cmp)> candidates(cmp);

  while (static_cast<int64_t>(found.size()) < k) {
    const std::vector<int64_t>& last = found.back().path;
    // Spur from every prefix of the previous k-shortest path.
    for (size_t i = 0; i + 1 < last.size(); ++i) {
      const int64_t spur_node = last[i];
      const std::vector<int64_t> root(last.begin(), last.begin() + i + 1);
      std::set<std::pair<int64_t, int64_t>> banned_edges;
      for (const auto& p : found) {
        if (p.path.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.path.begin())) {
          banned_edges.insert({p.path[i], p.path[i + 1]});
        }
      }
      std::unordered_set<int64_t> banned_vertices(root.begin(),
                                                  root.end() - 1);
      auto spur = DijkstraImpl(net, spur_node, dst, weight, &banned_vertices,
                               &banned_edges);
      if (!spur.has_value()) continue;
      PathResult total;
      total.path = root;
      total.path.pop_back();  // spur path re-includes spur_node
      total.path.insert(total.path.end(), spur->path.begin(),
                        spur->path.end());
      total.cost = PathCost(total.path, weight);
      candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    // Pop the cheapest unseen candidate.
    bool appended = false;
    while (!candidates.empty()) {
      PathResult best = *candidates.begin();
      candidates.erase(candidates.begin());
      const bool duplicate =
          std::any_of(found.begin(), found.end(), [&](const PathResult& p) {
            return p.path == best.path;
          });
      if (!duplicate) {
        found.push_back(std::move(best));
        appended = true;
        break;
      }
    }
    if (!appended) break;
  }
  return found;
}

}  // namespace start::roadnet
