#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <unordered_set>

#include "common/check.h"

namespace start::roadnet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra with optional banned vertices/edges (needed by Yen's spur search).
std::optional<PathResult> DijkstraImpl(
    const RoadNetwork& net, int64_t src, int64_t dst,
    const SegmentWeightFn& weight,
    const std::unordered_set<int64_t>* banned_vertices,
    const std::set<std::pair<int64_t, int64_t>>* banned_edges) {
  const int64_t v = net.num_segments();
  START_CHECK(src >= 0 && src < v);
  START_CHECK(dst >= 0 && dst < v);
  if (banned_vertices != nullptr &&
      (banned_vertices->count(src) || banned_vertices->count(dst))) {
    return std::nullopt;
  }
  std::vector<double> dist(static_cast<size_t>(v), kInf);
  std::vector<int64_t> prev(static_cast<size_t>(v), -1);
  using Item = std::pair<double, int64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  const double w0 = weight(src);
  START_CHECK_GT(w0, 0.0);
  dist[static_cast<size_t>(src)] = w0;
  pq.emplace(w0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    if (u == dst) break;
    for (const int64_t nb : net.OutSpan(u)) {
      if (banned_vertices != nullptr && banned_vertices->count(nb)) continue;
      if (banned_edges != nullptr && banned_edges->count({u, nb})) continue;
      const double wnb = weight(nb);
      START_CHECK_GT(wnb, 0.0);
      const double nd = d + wnb;
      if (nd < dist[static_cast<size_t>(nb)]) {
        dist[static_cast<size_t>(nb)] = nd;
        prev[static_cast<size_t>(nb)] = u;
        pq.emplace(nd, nb);
      }
    }
  }
  if (dist[static_cast<size_t>(dst)] == kInf) return std::nullopt;
  PathResult result;
  result.cost = dist[static_cast<size_t>(dst)];
  for (int64_t cur = dst; cur != -1; cur = prev[static_cast<size_t>(cur)]) {
    result.path.push_back(cur);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

double PathCost(const std::vector<int64_t>& path,
                const SegmentWeightFn& weight) {
  double c = 0.0;
  for (const int64_t s : path) c += weight(s);
  return c;
}

}  // namespace

std::optional<PathResult> ShortestPath(const RoadNetwork& net, int64_t src,
                                       int64_t dst,
                                       const SegmentWeightFn& weight) {
  if (src == dst) {
    return PathResult{{src}, weight(src)};
  }
  return DijkstraImpl(net, src, dst, weight, nullptr, nullptr);
}

DijkstraRouter::DijkstraRouter(const RoadNetwork* net) : net_(net) {
  START_CHECK(net != nullptr);
  START_CHECK(net->finalized());
  const size_t v = static_cast<size_t>(net->num_segments());
  dist_.assign(v, kInf);
  prev_.assign(v, -1);
  stamp_.assign(v, 0);
}

std::optional<PathResult> DijkstraRouter::Route(int64_t src, int64_t dst,
                                                const SegmentWeightFn& weight) {
  const int64_t v = net_->num_segments();
  START_CHECK(src >= 0 && src < v);
  START_CHECK(dst >= 0 && dst < v);
  if (src == dst) return PathResult{{src}, weight(src)};
  ++cur_stamp_;
  if (cur_stamp_ == 0) {  // stamp wraparound: hard-clear once per 2^32 queries
    std::fill(stamp_.begin(), stamp_.end(), 0);
    cur_stamp_ = 1;
  }
  heap_.clear();
  // Lazily (re)initialize a label the first time this query touches it.
  auto label = [&](int64_t node) -> double& {
    if (stamp_[static_cast<size_t>(node)] != cur_stamp_) {
      stamp_[static_cast<size_t>(node)] = cur_stamp_;
      dist_[static_cast<size_t>(node)] = kInf;
      prev_[static_cast<size_t>(node)] = -1;
    }
    return dist_[static_cast<size_t>(node)];
  };
  using Item = std::pair<double, int64_t>;
  const double w0 = weight(src);
  START_CHECK_GT(w0, 0.0);
  label(src) = w0;
  heap_.emplace_back(w0, src);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Item>());
    const auto [d, u] = heap_.back();
    heap_.pop_back();
    if (d > label(u)) continue;
    if (u == dst) break;
    for (const int64_t nb : net_->OutSpan(u)) {
      const double wnb = weight(nb);
      START_CHECK_GT(wnb, 0.0);
      const double nd = d + wnb;
      double& dnb = label(nb);
      if (nd < dnb) {
        dnb = nd;
        prev_[static_cast<size_t>(nb)] = u;
        heap_.emplace_back(nd, nb);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<Item>());
      }
    }
  }
  if (stamp_[static_cast<size_t>(dst)] != cur_stamp_ ||
      dist_[static_cast<size_t>(dst)] == kInf) {
    return std::nullopt;
  }
  PathResult result;
  result.cost = dist_[static_cast<size_t>(dst)];
  for (int64_t cur = dst; cur != -1; cur = prev_[static_cast<size_t>(cur)]) {
    result.path.push_back(cur);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

std::vector<PathResult> KShortestPaths(const RoadNetwork& net, int64_t src,
                                       int64_t dst, int64_t k,
                                       const SegmentWeightFn& weight) {
  START_CHECK_GT(k, 0);
  std::vector<PathResult> found;
  auto first = ShortestPath(net, src, dst, weight);
  if (!first.has_value()) return found;
  found.push_back(std::move(*first));

  // Candidate paths ordered by cost; keys ensure deterministic dedup.
  auto cmp = [](const PathResult& a, const PathResult& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.path < b.path;
  };
  std::set<PathResult, decltype(cmp)> candidates(cmp);

  while (static_cast<int64_t>(found.size()) < k) {
    const std::vector<int64_t>& last = found.back().path;
    // Spur from every prefix of the previous k-shortest path.
    for (size_t i = 0; i + 1 < last.size(); ++i) {
      const int64_t spur_node = last[i];
      const std::vector<int64_t> root(last.begin(), last.begin() + i + 1);
      std::set<std::pair<int64_t, int64_t>> banned_edges;
      for (const auto& p : found) {
        if (p.path.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.path.begin())) {
          banned_edges.insert({p.path[i], p.path[i + 1]});
        }
      }
      std::unordered_set<int64_t> banned_vertices(root.begin(),
                                                  root.end() - 1);
      auto spur = DijkstraImpl(net, spur_node, dst, weight, &banned_vertices,
                               &banned_edges);
      if (!spur.has_value()) continue;
      PathResult total;
      total.path = root;
      total.path.pop_back();  // spur path re-includes spur_node
      total.path.insert(total.path.end(), spur->path.begin(),
                        spur->path.end());
      total.cost = PathCost(total.path, weight);
      candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    // Pop the cheapest unseen candidate.
    bool appended = false;
    while (!candidates.empty()) {
      PathResult best = *candidates.begin();
      candidates.erase(candidates.begin());
      const bool duplicate =
          std::any_of(found.begin(), found.end(), [&](const PathResult& p) {
            return p.path == best.path;
          });
      if (!duplicate) {
        found.push_back(std::move(best));
        appended = true;
        break;
      }
    }
    if (!appended) break;
  }
  // Pin the documented ordering contract: (cost, lexicographic path). Yen
  // discovers paths in near-cost order but may emit equal-cost paths in a
  // discovery-dependent order; the final sort makes the output canonical.
  std::sort(found.begin(), found.end(),
            [](const PathResult& a, const PathResult& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.path < b.path;
            });
  return found;
}

}  // namespace start::roadnet
