#ifndef START_ROADNET_CSR_GRAPH_H_
#define START_ROADNET_CSR_GRAPH_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace start::roadnet {

/// \brief Integer path cost in fixed-point "cost units" (milliseconds of
/// travel time at the default scale; see CsrGraphOptions::cost_scale).
///
/// The whole shortest-path plane runs on integer costs on purpose: integer
/// addition is exact and associative, so a contraction-hierarchy distance —
/// assembled from shortcut sums in an arbitrary order — is *identical* to
/// the Dijkstra distance over the same weights, not merely close. That is
/// what lets tests and the bench gate demand 100% exact-distance parity,
/// and it is the same trick production routing engines use.
using Cost = int64_t;

/// Unreachable sentinel. Far below INT64_MAX so relaxations cannot overflow.
constexpr Cost kInfCost = std::numeric_limits<int64_t>::max() / 4;

struct CsrGraphOptions {
  /// Fixed-point scale: a segment weight of `w` seconds becomes
  /// llround(w * cost_scale) cost units. 1000.0 == millisecond resolution.
  double cost_scale = 1000.0;
};

/// A path over CSR node ids plus its total cost (source node cost included,
/// matching the legacy ShortestPath contract).
struct CsrPath {
  std::vector<int32_t> nodes;
  Cost cost = 0;
};

/// \brief Immutable, cache-friendly CSR lowering of a RoadNetwork for the
/// shortest-path plane.
///
/// Differences from the adjacency RoadNetwork itself keeps:
///  - nodes are renumbered by descending total degree (ties by ascending
///    segment id — a stable, deterministic order), so the hubs every search
///    touches share cache lines; the old<->new id maps are kept;
///  - heads are int32 and weights are pre-quantized integer Costs, so one
///    arc is 12 bytes instead of a 8-byte id plus a weight-function call;
///  - both out- and in-adjacency are materialized (the in-side drives
///    contraction and backward searches).
///
/// Cost model: the legacy plane prices a path [v0..vk] as
/// sum_i weight(v_i) — every segment paid once, source included. Lowered to
/// arcs: arc (u -> v) carries quantized weight(v), and queries add
/// node_cost(src) once at the start. CsrDijkstra and ChEngine both honor
/// this, so their costs are comparable with the legacy API after scaling.
class CsrGraph {
 public:
  /// Lowers a finalized network under the given per-segment weight
  /// (seconds). Weights must be positive.
  static CsrGraph FromNetwork(const RoadNetwork& net,
                              const SegmentWeightFn& weight,
                              const CsrGraphOptions& options = {});

  /// Convenience: free-flow travel-time metric (the detour / ETA metric).
  static CsrGraph FromNetworkFreeFlow(const RoadNetwork& net,
                                      const CsrGraphOptions& options = {});

  int32_t num_nodes() const { return num_nodes_; }
  int64_t num_arcs() const { return static_cast<int64_t>(out_heads_.size()); }

  /// Old -> new: CSR node id of a segment.
  int32_t ToNode(int64_t segment) const {
    return to_node_[static_cast<size_t>(segment)];
  }
  /// New -> old: segment id of a CSR node.
  int64_t ToSegment(int32_t node) const {
    return to_segment_[static_cast<size_t>(node)];
  }
  /// Translates a CSR path back to segment ids (old numbering).
  std::vector<int64_t> ToSegments(const std::vector<int32_t>& nodes) const;

  /// Quantized weight of the node itself (paid once when a path starts).
  Cost node_cost(int32_t node) const {
    return node_cost_[static_cast<size_t>(node)];
  }

  double CostToSeconds(Cost c) const {
    return static_cast<double>(c) / options_.cost_scale;
  }
  const CsrGraphOptions& options() const { return options_; }

  // Raw CSR spans (hot-loop iteration; heads are sorted per tail).
  const int64_t* out_offsets() const { return out_offsets_.data(); }
  const int32_t* out_heads() const { return out_heads_.data(); }
  const Cost* out_weights() const { return out_weights_.data(); }
  const int64_t* in_offsets() const { return in_offsets_.data(); }
  const int32_t* in_tails() const { return in_tails_.data(); }
  const Cost* in_weights() const { return in_weights_.data(); }

  int64_t OutDegree(int32_t v) const {
    return out_offsets_[static_cast<size_t>(v) + 1] -
           out_offsets_[static_cast<size_t>(v)];
  }
  int64_t InDegree(int32_t v) const {
    return in_offsets_[static_cast<size_t>(v) + 1] -
           in_offsets_[static_cast<size_t>(v)];
  }

  /// \brief Structural + metric fingerprint (offsets, heads, weights, scale).
  ///
  /// A serialized ChEngine artifact stores this and refuses to load against
  /// a graph it was not built from.
  uint64_t Fingerprint() const { return fingerprint_; }

 private:
  CsrGraph() = default;

  int32_t num_nodes_ = 0;
  CsrGraphOptions options_;
  uint64_t fingerprint_ = 0;
  std::vector<int32_t> to_node_;    ///< segment id -> CSR node.
  std::vector<int64_t> to_segment_; ///< CSR node -> segment id.
  std::vector<Cost> node_cost_;
  std::vector<int64_t> out_offsets_;
  std::vector<int32_t> out_heads_;
  std::vector<Cost> out_weights_;
  std::vector<int64_t> in_offsets_;
  std::vector<int32_t> in_tails_;
  std::vector<Cost> in_weights_;
};

/// \brief Exact point-to-point Dijkstra over a CsrGraph with a persistent
/// workspace: timestamp-versioned distance labels mean queries after the
/// first are allocation-free and pay only for the region actually searched.
///
/// This is the reference the contraction hierarchy is tested (and gated)
/// against, and the fallback router for metrics that cannot be
/// preprocessed (e.g. per-driver personalized weights). Not thread-safe;
/// one instance per thread.
class CsrDijkstra {
 public:
  explicit CsrDijkstra(const CsrGraph* graph);

  /// Cost of the cheapest s->t path (node_cost(s) included), kInfCost when
  /// unreachable.
  Cost Distance(int32_t src, int32_t dst);

  /// Cheapest path; nullopt when unreachable.
  std::optional<CsrPath> Route(int32_t src, int32_t dst);

  /// One-to-many: distances from src to every target (kInfCost when
  /// unreachable). Stops as soon as all targets are settled.
  void DistancesFrom(int32_t src, const std::vector<int32_t>& targets,
                     std::vector<Cost>* out);

  const CsrGraph& graph() const { return *graph_; }

 private:
  /// Runs Dijkstra from src until `until` (or exhaustion when until < 0,
  /// or `remaining` targets are settled when remaining != nullptr).
  void Run(int32_t src, int32_t dst, int64_t* remaining);
  void Reset();
  bool Settled(int32_t v) const {
    return stamp_[static_cast<size_t>(v)] == cur_stamp_ &&
           settled_[static_cast<size_t>(v)];
  }

  const CsrGraph* graph_;
  std::vector<Cost> dist_;
  std::vector<int32_t> parent_;
  std::vector<uint32_t> stamp_;
  std::vector<uint8_t> settled_;
  std::vector<uint8_t> is_target_;  ///< Stamped via target_stamp_.
  std::vector<uint32_t> target_stamp_;
  uint32_t cur_stamp_ = 0;
  // Binary heap of (dist, node); lazily deleted stale entries.
  std::vector<std::pair<Cost, int32_t>> heap_;
};

}  // namespace start::roadnet

#endif  // START_ROADNET_CSR_GRAPH_H_
