#include "roadnet/ch_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>
#include <tuple>

#include "common/check.h"
#include "common/crc32.h"

namespace start::roadnet {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One arc of the mutable overlay graph maintained during contraction.
/// `arc` indexes the arena entry currently realizing this (tail, head) pair
/// (updated in place when a cheaper shortcut supersedes it).
struct OverlayArc {
  int32_t nb = -1;
  Cost w = kInfCost;
  int32_t arc = -1;
};

/// \brief Contraction-time state: the overlay graph over uncontracted nodes
/// plus the capped witness-search workspace. Lives only inside Build().
class Contractor {
 public:
  Contractor(const CsrGraph& g, const ChOptions& options,
             std::vector<int32_t>* arc_tail, std::vector<int32_t>* arc_head,
             std::vector<Cost>* arc_weight, std::vector<int32_t>* arc_skip1,
             std::vector<int32_t>* arc_skip2)
      : options_(options),
        arc_tail_(arc_tail),
        arc_head_(arc_head),
        arc_weight_(arc_weight),
        arc_skip1_(arc_skip1),
        arc_skip2_(arc_skip2) {
    const int32_t n = g.num_nodes();
    out_.resize(static_cast<size_t>(n));
    in_.resize(static_cast<size_t>(n));
    contracted_.assign(static_cast<size_t>(n), 0);
    contracted_neighbors_.assign(static_cast<size_t>(n), 0);
    depth_.assign(static_cast<size_t>(n), 0);
    wdist_.assign(static_cast<size_t>(n), kInfCost);
    wstamp_.assign(static_cast<size_t>(n), 0);
    const int64_t* offsets = g.out_offsets();
    const int32_t* heads = g.out_heads();
    const Cost* weights = g.out_weights();
    for (int32_t v = 0; v < n; ++v) {
      for (int64_t k = offsets[v]; k < offsets[v + 1]; ++k) {
        const int32_t h = heads[k];
        if (h == v) continue;  // self-loops never lie on a cheapest path
        const int32_t a = static_cast<int32_t>(arc_tail_->size());
        arc_tail_->push_back(v);
        arc_head_->push_back(h);
        arc_weight_->push_back(weights[k]);
        arc_skip1_->push_back(-1);
        arc_skip2_->push_back(-1);
        out_[static_cast<size_t>(v)].push_back({h, weights[k], a});
        in_[static_cast<size_t>(h)].push_back({v, weights[k], a});
      }
    }
  }

  bool contracted(int32_t v) const {
    return contracted_[static_cast<size_t>(v)] != 0;
  }

  /// 2 * edge_difference + contracted_neighbors + hierarchy_depth. The depth
  /// term (longest chain of already-contracted neighbors below v) is what
  /// keeps the order nested-dissection-like on grid networks: without it the
  /// greedy edge-difference order contracts dense frontiers late and the top
  /// of the hierarchy degenerates into a near-clique of shortcuts.
  int64_t Priority(int32_t v) {
    const int64_t removed =
        static_cast<int64_t>(out_[static_cast<size_t>(v)].size()) +
        static_cast<int64_t>(in_[static_cast<size_t>(v)].size());
    const int64_t shortcuts = ProcessShortcuts(v, /*apply=*/false);
    return 2 * (shortcuts - removed) +
           contracted_neighbors_[static_cast<size_t>(v)] +
           depth_[static_cast<size_t>(v)];
  }

  /// Contracts `v`: inserts the required shortcuts, bumps the
  /// contracted-neighbors term of every surviving neighbor, and detaches `v`
  /// from the overlay. The detach keeps the invariant that adjacency lists
  /// only ever hold *live* nodes — without it every later scan and witness
  /// search wades through dead arcs, contraction degrades quadratically, and
  /// the truncated witness searches flood the hierarchy with shortcuts.
  void Contract(int32_t v) {
    ProcessShortcuts(v, /*apply=*/true);
    contracted_[static_cast<size_t>(v)] = 1;
    const int64_t below = depth_[static_cast<size_t>(v)] + 1;
    for (const OverlayArc& a : out_[static_cast<size_t>(v)]) {
      if (contracted(a.nb)) continue;
      ++contracted_neighbors_[static_cast<size_t>(a.nb)];
      depth_[static_cast<size_t>(a.nb)] =
          std::max(depth_[static_cast<size_t>(a.nb)], below);
      EraseArcTo(&in_[static_cast<size_t>(a.nb)], v);
    }
    for (const OverlayArc& a : in_[static_cast<size_t>(v)]) {
      if (contracted(a.nb)) continue;
      ++contracted_neighbors_[static_cast<size_t>(a.nb)];
      depth_[static_cast<size_t>(a.nb)] =
          std::max(depth_[static_cast<size_t>(a.nb)], below);
      EraseArcTo(&out_[static_cast<size_t>(a.nb)], v);
    }
    out_[static_cast<size_t>(v)] = {};
    in_[static_cast<size_t>(v)] = {};
  }

 private:
  /// Removes the (unique) overlay arc toward `nb`, swap-and-pop.
  static void EraseArcTo(std::vector<OverlayArc>* arcs, int32_t nb) {
    for (size_t i = 0; i < arcs->size(); ++i) {
      if ((*arcs)[i].nb == nb) {
        (*arcs)[i] = arcs->back();
        arcs->pop_back();
        return;
      }
    }
  }

  /// Counts (and with `apply`, materializes) the shortcuts contraction of
  /// `v` requires. A shortcut (u, x) is needed unless a capped witness
  /// search certifies a u->x path avoiding v of cost <= w(u,v) + w(v,x);
  /// a search truncated by the cap conservatively adds the shortcut.
  int64_t ProcessShortcuts(int32_t v, bool apply) {
    // Snapshot the live out-arcs of v (targets of potential shortcuts).
    targets_.clear();
    Cost max_wvx = 0;
    for (const OverlayArc& a : out_[static_cast<size_t>(v)]) {
      if (contracted(a.nb)) continue;
      targets_.push_back(a);
      max_wvx = std::max(max_wvx, a.w);
    }
    if (targets_.empty()) return 0;
    int64_t count = 0;
    for (const OverlayArc& ia : in_[static_cast<size_t>(v)]) {
      if (contracted(ia.nb) || ia.nb == v) continue;
      const int32_t u = ia.nb;
      WitnessSearch(u, v, ia.w + max_wvx);
      for (const OverlayArc& oa : targets_) {
        const int32_t x = oa.nb;
        if (x == u) continue;
        const Cost direct = ia.w + oa.w;
        if (wstamp_[static_cast<size_t>(x)] == wcur_ &&
            wdist_[static_cast<size_t>(x)] <= direct) {
          continue;  // witnessed
        }
        ++count;
        if (apply) AddShortcut(u, x, direct, ia.arc, oa.arc);
      }
    }
    return count;
  }

  /// Dijkstra from `u` over uncontracted overlay nodes, skipping `banned`,
  /// stopping after options_.witness_settle_limit settles or when the next
  /// label exceeds `bound`.
  void WitnessSearch(int32_t u, int32_t banned, Cost bound) {
    ++wcur_;
    if (wcur_ == 0) {
      std::fill(wstamp_.begin(), wstamp_.end(), 0);
      wcur_ = 1;
    }
    wheap_.clear();
    wdist_[static_cast<size_t>(u)] = 0;
    wstamp_[static_cast<size_t>(u)] = wcur_;
    wheap_.emplace_back(0, u);
    int64_t settled = 0;
    while (!wheap_.empty()) {
      std::pop_heap(wheap_.begin(), wheap_.end(),
                    std::greater<std::pair<Cost, int32_t>>());
      const auto [d, node] = wheap_.back();
      wheap_.pop_back();
      if (wstamp_[static_cast<size_t>(node)] != wcur_ ||
          d > wdist_[static_cast<size_t>(node)]) {
        continue;
      }
      if (d > bound || ++settled > options_.witness_settle_limit) return;
      for (const OverlayArc& a : out_[static_cast<size_t>(node)]) {
        if (a.nb == banned || contracted(a.nb)) continue;
        const Cost nd = d + a.w;
        if (wstamp_[static_cast<size_t>(a.nb)] != wcur_ ||
            nd < wdist_[static_cast<size_t>(a.nb)]) {
          wstamp_[static_cast<size_t>(a.nb)] = wcur_;
          wdist_[static_cast<size_t>(a.nb)] = nd;
          wheap_.emplace_back(nd, a.nb);
          std::push_heap(wheap_.begin(), wheap_.end(),
                         std::greater<std::pair<Cost, int32_t>>());
        }
      }
    }
  }

  void AddShortcut(int32_t u, int32_t x, Cost w, int32_t skip1,
                   int32_t skip2) {
    // A cheaper overlay arc u->x may already exist (added after the witness
    // cap truncated the search) — then the shortcut is redundant.
    OverlayArc* existing = nullptr;
    for (OverlayArc& a : out_[static_cast<size_t>(u)]) {
      if (a.nb == x) {
        existing = &a;
        break;
      }
    }
    if (existing != nullptr && existing->w <= w) return;
    const int32_t arc = static_cast<int32_t>(arc_tail_->size());
    arc_tail_->push_back(u);
    arc_head_->push_back(x);
    arc_weight_->push_back(w);
    arc_skip1_->push_back(skip1);
    arc_skip2_->push_back(skip2);
    if (existing != nullptr) {
      existing->w = w;
      existing->arc = arc;
      for (OverlayArc& a : in_[static_cast<size_t>(x)]) {
        if (a.nb == u) {
          a.w = w;
          a.arc = arc;
          break;
        }
      }
    } else {
      out_[static_cast<size_t>(u)].push_back({x, w, arc});
      in_[static_cast<size_t>(x)].push_back({u, w, arc});
    }
  }

  const ChOptions options_;
  std::vector<int32_t>* arc_tail_;
  std::vector<int32_t>* arc_head_;
  std::vector<Cost>* arc_weight_;
  std::vector<int32_t>* arc_skip1_;
  std::vector<int32_t>* arc_skip2_;

  std::vector<std::vector<OverlayArc>> out_, in_;
  std::vector<uint8_t> contracted_;
  std::vector<int64_t> contracted_neighbors_;
  std::vector<int64_t> depth_;  ///< Hierarchy depth below each live node.
  std::vector<OverlayArc> targets_;

  // Witness workspace (stamp-versioned).
  std::vector<Cost> wdist_;
  std::vector<uint32_t> wstamp_;
  uint32_t wcur_ = 0;
  std::vector<std::pair<Cost, int32_t>> wheap_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

ChEngine ChEngine::Build(const CsrGraph* graph, const ChOptions& options) {
  START_CHECK(graph != nullptr);
  ChEngine e;
  e.graph_ = graph;
  e.options_ = options;
  e.num_nodes_ = graph->num_nodes();
  const int32_t n = e.num_nodes_;
  e.rank_.assign(static_cast<size_t>(n), -1);

  Contractor c(*graph, options, &e.arc_tail_, &e.arc_head_, &e.arc_weight_,
               &e.arc_skip1_, &e.arc_skip2_);
  e.num_original_arcs_ = static_cast<int64_t>(e.arc_tail_.size());

  // Lazy min-heap over (priority, seeded hash, node). The hash term makes
  // the order deterministic for a given seed yet uncorrelated with node ids.
  using Key = std::tuple<int64_t, uint64_t, int32_t>;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> heap;
  std::vector<uint64_t> tiebreak(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    tiebreak[static_cast<size_t>(v)] =
        Mix64(options.seed ^ static_cast<uint64_t>(v));
    heap.emplace(c.Priority(v), tiebreak[static_cast<size_t>(v)], v);
  }
  int32_t rank = 0;
  while (!heap.empty()) {
    const auto [prio, tb, v] = heap.top();
    heap.pop();
    if (c.contracted(v)) continue;
    const int64_t fresh = c.Priority(v);
    if (!heap.empty() &&
        Key(fresh, tb, v) > heap.top()) {  // stale — requeue and retry
      heap.emplace(fresh, tb, v);
      continue;
    }
    c.Contract(v);
    e.rank_[static_cast<size_t>(v)] = rank++;
  }
  START_CHECK_EQ(rank, n);
  e.BuildSearchGraphs();
  return e;
}

void ChEngine::BuildSearchGraphs() {
  const int32_t n = num_nodes_;
  const int64_t m = static_cast<int64_t>(arc_tail_.size());
  // The search graphs live in *rank space*: row r holds the upward arcs of
  // the node with contraction rank r, and the flattened endpoint streams
  // store ranks too. Queries spend nearly all their time near the top of
  // the hierarchy, so rank-contiguous ids concentrate the hot slices of the
  // label arrays and adjacency rows into a few cache lines.
  order_.assign(static_cast<size_t>(n), -1);
  for (int32_t v = 0; v < n; ++v) {
    order_[static_cast<size_t>(rank_[static_cast<size_t>(v)])] = v;
  }
  up_offsets_.assign(static_cast<size_t>(n) + 1, 0);
  down_offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t a = 0; a < m; ++a) {
    const int32_t t = arc_tail_[static_cast<size_t>(a)];
    const int32_t h = arc_head_[static_cast<size_t>(a)];
    if (t == h) continue;
    if (rank_[static_cast<size_t>(h)] > rank_[static_cast<size_t>(t)]) {
      ++up_offsets_[static_cast<size_t>(rank_[static_cast<size_t>(t)]) + 1];
    } else {
      ++down_offsets_[static_cast<size_t>(rank_[static_cast<size_t>(h)]) + 1];
    }
  }
  for (int32_t i = 0; i < n; ++i) {
    up_offsets_[static_cast<size_t>(i) + 1] +=
        up_offsets_[static_cast<size_t>(i)];
    down_offsets_[static_cast<size_t>(i) + 1] +=
        down_offsets_[static_cast<size_t>(i)];
  }
  up_arcs_.resize(static_cast<size_t>(up_offsets_[static_cast<size_t>(n)]));
  down_arcs_.resize(
      static_cast<size_t>(down_offsets_[static_cast<size_t>(n)]));
  std::vector<int64_t> ucur(up_offsets_.begin(), up_offsets_.end() - 1);
  std::vector<int64_t> dcur(down_offsets_.begin(), down_offsets_.end() - 1);
  for (int64_t a = 0; a < m; ++a) {
    const int32_t t = arc_tail_[static_cast<size_t>(a)];
    const int32_t h = arc_head_[static_cast<size_t>(a)];
    if (t == h) continue;
    if (rank_[static_cast<size_t>(h)] > rank_[static_cast<size_t>(t)]) {
      up_arcs_[static_cast<size_t>(
          ucur[static_cast<size_t>(rank_[static_cast<size_t>(t)])]++)] =
          static_cast<int32_t>(a);
    } else {
      down_arcs_[static_cast<size_t>(
          dcur[static_cast<size_t>(rank_[static_cast<size_t>(h)])]++)] =
          static_cast<int32_t>(a);
    }
  }

  // The arena keeps every shortcut ever admitted, including ones later
  // superseded by a cheaper parallel shortcut over the same (tail, head).
  // Superseded arcs can never lie on a cheapest path, so drop them from the
  // search graphs: sort each row by (endpoint, weight, arc id) and keep the
  // lightest arc per endpoint. Purely a query-side compaction — the arena
  // (and num_shortcuts()) is unchanged, so serialization stays stable.
  const auto compact = [&](std::vector<int64_t>& offsets,
                           std::vector<int32_t>& arcs, bool by_head) {
    const std::vector<int32_t>& other_of = by_head ? arc_head_ : arc_tail_;
    size_t w = 0;
    int64_t row_begin = 0;
    for (int32_t v = 0; v < n; ++v) {
      const int64_t b = row_begin, e = offsets[static_cast<size_t>(v) + 1];
      row_begin = e;
      std::sort(arcs.begin() + b, arcs.begin() + e,
                [&](int32_t x, int32_t y) {
                  const int32_t ox = other_of[static_cast<size_t>(x)];
                  const int32_t oy = other_of[static_cast<size_t>(y)];
                  if (ox != oy) return ox < oy;
                  if (arc_weight_[static_cast<size_t>(x)] !=
                      arc_weight_[static_cast<size_t>(y)]) {
                    return arc_weight_[static_cast<size_t>(x)] <
                           arc_weight_[static_cast<size_t>(y)];
                  }
                  return x < y;
                });
      int32_t prev = -1;
      for (int64_t k = b; k < e; ++k) {
        const int32_t a = arcs[static_cast<size_t>(k)];
        const int32_t other = other_of[static_cast<size_t>(a)];
        if (other == prev) continue;
        prev = other;
        arcs[w++] = a;
      }
      offsets[static_cast<size_t>(v) + 1] = static_cast<int64_t>(w);
    }
    arcs.resize(w);
  };
  compact(up_offsets_, up_arcs_, /*by_head=*/true);
  compact(down_offsets_, down_arcs_, /*by_head=*/false);

  // Flatten the rows into parallel (node, weight) arrays: relaxation and
  // stall scans then read two contiguous streams instead of chasing arena
  // ids — on the dense top-of-hierarchy rows this halves the cache misses
  // per settled node.
  up_nodes_.resize(up_arcs_.size());
  up_weights_.resize(up_arcs_.size());
  for (size_t k = 0; k < up_arcs_.size(); ++k) {
    up_nodes_[k] =
        rank_[static_cast<size_t>(arc_head_[static_cast<size_t>(up_arcs_[k])])];
    up_weights_[k] = arc_weight_[static_cast<size_t>(up_arcs_[k])];
  }
  down_nodes_.resize(down_arcs_.size());
  down_weights_.resize(down_arcs_.size());
  for (size_t k = 0; k < down_arcs_.size(); ++k) {
    down_nodes_[k] =
        rank_[static_cast<size_t>(arc_tail_[static_cast<size_t>(down_arcs_[k])])];
    down_weights_[k] = arc_weight_[static_cast<size_t>(down_arcs_[k])];
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

void ChEngine::QueryContext::Ensure(int32_t num_nodes) {
  const size_t n = static_cast<size_t>(num_nodes);
  if (dist_f_.size() >= n) return;
  dist_f_.assign(n, kInfCost);
  dist_b_.assign(n, kInfCost);
  parent_f_.assign(n, -1);
  parent_b_.assign(n, -1);
  stamp_f_.assign(n, 0);
  stamp_b_.assign(n, 0);
  cur_stamp_ = 0;
}

void ChEngine::QueryContext::Reset() {
  ++cur_stamp_;
  if (cur_stamp_ == 0) {
    std::fill(stamp_f_.begin(), stamp_f_.end(), 0);
    std::fill(stamp_b_.begin(), stamp_b_.end(), 0);
    cur_stamp_ = 1;
  }
}

ChEngine::QueryContext ChEngine::MakeContext() const {
  QueryContext ctx;
  ctx.Ensure(num_nodes_);
  return ctx;
}

void ChEngine::UpwardSearch(int32_t src, bool forward, Cost seed_cost,
                            QueryContext* ctx,
                            std::vector<int32_t>* settled) const {
  std::vector<Cost>& dist = forward ? ctx->dist_f_ : ctx->dist_b_;
  std::vector<int32_t>& parent = forward ? ctx->parent_f_ : ctx->parent_b_;
  std::vector<uint32_t>& stamp = forward ? ctx->stamp_f_ : ctx->stamp_b_;
  const std::vector<int64_t>& offsets = forward ? up_offsets_ : down_offsets_;
  const std::vector<int32_t>& arcs = forward ? up_arcs_ : down_arcs_;
  const std::vector<int32_t>& nodes = forward ? up_nodes_ : down_nodes_;
  const std::vector<Cost>& weights = forward ? up_weights_ : down_weights_;
  const uint32_t cur = ctx->cur_stamp_;

  auto label = [&](int32_t v) -> Cost& {
    if (stamp[static_cast<size_t>(v)] != cur) {
      stamp[static_cast<size_t>(v)] = cur;
      dist[static_cast<size_t>(v)] = kInfCost;
      parent[static_cast<size_t>(v)] = -1;
    }
    return dist[static_cast<size_t>(v)];
  };

  // Labels, heap entries and `settled` output are all in rank space.
  const int32_t rsrc = rank_[static_cast<size_t>(src)];
  ctx->heap_.clear();
  label(rsrc) = seed_cost;
  ctx->heap_.emplace_back(seed_cost, rsrc);
  while (!ctx->heap_.empty()) {
    std::pop_heap(ctx->heap_.begin(), ctx->heap_.end(),
                  std::greater<std::pair<Cost, int32_t>>());
    const auto [d, u] = ctx->heap_.back();
    ctx->heap_.pop_back();
    if (d > label(u)) continue;
    if (settled != nullptr) settled->push_back(u);
    for (int64_t k = offsets[static_cast<size_t>(u)];
         k < offsets[static_cast<size_t>(u) + 1]; ++k) {
      const int32_t a = arcs[static_cast<size_t>(k)];
      const int32_t next = nodes[static_cast<size_t>(k)];
      const Cost nd = d + weights[static_cast<size_t>(k)];
      Cost& dn = label(next);
      if (nd < dn) {
        dn = nd;
        parent[static_cast<size_t>(next)] = a;
        ctx->heap_.emplace_back(nd, next);
        std::push_heap(ctx->heap_.begin(), ctx->heap_.end(),
                       std::greater<std::pair<Cost, int32_t>>());
      }
    }
  }
}

int32_t ChEngine::BidirectionalSearch(int32_t src, int32_t dst,
                                      QueryContext* ctx, Cost* cost) const {
  ctx->Ensure(num_nodes_);
  ctx->Reset();
  const uint32_t cur = ctx->cur_stamp_;
  auto& hf = ctx->heap_;
  auto& hb = ctx->heap_b_;
  hf.clear();
  hb.clear();

  auto seed = [&](bool forward, int32_t v, Cost c) {
    std::vector<Cost>& dist = forward ? ctx->dist_f_ : ctx->dist_b_;
    std::vector<int32_t>& parent = forward ? ctx->parent_f_ : ctx->parent_b_;
    std::vector<uint32_t>& stamp = forward ? ctx->stamp_f_ : ctx->stamp_b_;
    stamp[static_cast<size_t>(v)] = cur;
    dist[static_cast<size_t>(v)] = c;
    parent[static_cast<size_t>(v)] = -1;
    (forward ? hf : hb).emplace_back(c, v);
  };
  // Everything inside runs in rank space (labels, heaps, the returned
  // meeting point); only the seeds are translated here.
  seed(/*forward=*/true, rank_[static_cast<size_t>(src)],
       graph_->node_cost(src));
  seed(/*forward=*/false, rank_[static_cast<size_t>(dst)], 0);

  Cost mu = kInfCost;
  int32_t meet = -1;

  // Settles (or stalls) one node of `forward`'s queue. Returns false once
  // the direction is exhausted or its queue minimum reaches mu — every
  // later settle would cost >= mu, so no better meeting can come from it.
  auto step = [&](bool forward) -> bool {
    auto& heap = forward ? hf : hb;
    std::vector<Cost>& dist = forward ? ctx->dist_f_ : ctx->dist_b_;
    std::vector<int32_t>& parent = forward ? ctx->parent_f_ : ctx->parent_b_;
    std::vector<uint32_t>& stamp = forward ? ctx->stamp_f_ : ctx->stamp_b_;
    std::vector<Cost>& odist = forward ? ctx->dist_b_ : ctx->dist_f_;
    std::vector<uint32_t>& ostamp = forward ? ctx->stamp_b_ : ctx->stamp_f_;
    const std::vector<int64_t>& offsets =
        forward ? up_offsets_ : down_offsets_;
    const std::vector<int32_t>& arcs = forward ? up_arcs_ : down_arcs_;
    const std::vector<int32_t>& nodes = forward ? up_nodes_ : down_nodes_;
    const std::vector<Cost>& weights = forward ? up_weights_ : down_weights_;
    // Stall check scans the *opposite* partition: arcs reaching u from a
    // higher-ranked node on this side's search graph.
    const std::vector<int64_t>& soffsets =
        forward ? down_offsets_ : up_offsets_;
    const std::vector<int32_t>& snodes = forward ? down_nodes_ : up_nodes_;
    const std::vector<Cost>& sweights =
        forward ? down_weights_ : up_weights_;

    while (!heap.empty()) {
      if (heap.front().first >= mu) return false;  // stopping criterion
      std::pop_heap(heap.begin(), heap.end(),
                    std::greater<std::pair<Cost, int32_t>>());
      const auto [d, u] = heap.back();
      heap.pop_back();
      if (stamp[static_cast<size_t>(u)] != cur ||
          d > dist[static_cast<size_t>(u)]) {
        continue;  // stale
      }
      if (ostamp[static_cast<size_t>(u)] == cur) {
        const Cost cand = d + odist[static_cast<size_t>(u)];
        if (cand < mu) {
          mu = cand;
          meet = u;
        }
      }
      // Stall-on-demand: a strictly cheaper path into u via a higher-ranked
      // node proves u's label is not a shortest up-down prefix — settle it
      // but do not relax.
      bool stalled = false;
      for (int64_t k = soffsets[static_cast<size_t>(u)];
           k < soffsets[static_cast<size_t>(u) + 1]; ++k) {
        const int32_t w = snodes[static_cast<size_t>(k)];
        if (stamp[static_cast<size_t>(w)] == cur &&
            dist[static_cast<size_t>(w)] + sweights[static_cast<size_t>(k)] <
                d) {
          stalled = true;
          break;
        }
      }
      if (stalled) return true;
      for (int64_t k = offsets[static_cast<size_t>(u)];
           k < offsets[static_cast<size_t>(u) + 1]; ++k) {
        const int32_t next = nodes[static_cast<size_t>(k)];
        const Cost nd = d + weights[static_cast<size_t>(k)];
        const int32_t a = arcs[static_cast<size_t>(k)];
        const size_t ni = static_cast<size_t>(next);
        if (stamp[ni] != cur) {
          stamp[ni] = cur;
          dist[ni] = kInfCost;
          parent[ni] = -1;
        }
        if (nd < dist[ni]) {
          dist[ni] = nd;
          parent[ni] = a;
          heap.emplace_back(nd, next);
          std::push_heap(heap.begin(), heap.end(),
                         std::greater<std::pair<Cost, int32_t>>());
        }
      }
      return true;
    }
    return false;
  };

  bool alive_f = true, alive_b = true;
  while (alive_f || alive_b) {
    const bool has_f = alive_f && !hf.empty();
    const bool has_b = alive_b && !hb.empty();
    if (!has_f && !has_b) break;
    bool forward;
    if (has_f && has_b) {
      forward = hf.front().first <= hb.front().first;
    } else {
      forward = has_f;
    }
    if (!step(forward)) (forward ? alive_f : alive_b) = false;
  }
  *cost = mu;
  return meet;
}

Cost ChEngine::Distance(int32_t src, int32_t dst, QueryContext* ctx) const {
  Cost cost = kInfCost;
  (void)BidirectionalSearch(src, dst, ctx, &cost);
  return cost;
}

std::vector<int32_t> ChEngine::UnpackUpwardPath(int32_t via, bool forward,
                                                const QueryContext& ctx) const {
  std::vector<int32_t> arcs;
  if (forward) {
    // parent_f_[rank(v)] is the arc (u -> v) the forward search arrived on;
    // walk back to the source, then expand in source -> via order.
    for (int32_t cur = via;
         ctx.parent_f_[static_cast<size_t>(cur)] != -1;) {
      const int32_t a = ctx.parent_f_[static_cast<size_t>(cur)];
      arcs.push_back(a);
      cur = rank_[static_cast<size_t>(arc_tail_[static_cast<size_t>(a)])];
    }
    std::reverse(arcs.begin(), arcs.end());
  } else {
    // parent_b_[rank(u)] is the arc (u -> v) the backward search traversed
    // v -> u; following heads walks via -> target, already in path order.
    for (int32_t cur = via;
         ctx.parent_b_[static_cast<size_t>(cur)] != -1;) {
      const int32_t a = ctx.parent_b_[static_cast<size_t>(cur)];
      arcs.push_back(a);
      cur = rank_[static_cast<size_t>(arc_head_[static_cast<size_t>(a)])];
    }
  }
  std::vector<int32_t> nodes;
  int32_t last = order_[static_cast<size_t>(via)];
  for (const int32_t a : arcs) {
    UnpackArc(a, &nodes);  // appends [tail .. head)
    last = arc_head_[static_cast<size_t>(a)];
  }
  nodes.push_back(last);
  return nodes;
}

void ChEngine::UnpackArc(int32_t arc, std::vector<int32_t>* out) const {
  if (arc_skip1_[static_cast<size_t>(arc)] < 0) {
    out->push_back(arc_tail_[static_cast<size_t>(arc)]);
    return;
  }
  UnpackArc(arc_skip1_[static_cast<size_t>(arc)], out);
  UnpackArc(arc_skip2_[static_cast<size_t>(arc)], out);
}

std::optional<CsrPath> ChEngine::Route(int32_t src, int32_t dst,
                                       QueryContext* ctx) const {
  Cost best = kInfCost;
  const int32_t via = BidirectionalSearch(src, dst, ctx, &best);
  if (via < 0) return std::nullopt;
  CsrPath path;
  path.cost = best;
  path.nodes = UnpackUpwardPath(via, /*forward=*/true, *ctx);
  const std::vector<int32_t> tail =
      UnpackUpwardPath(via, /*forward=*/false, *ctx);
  path.nodes.insert(path.nodes.end(), tail.begin() + 1, tail.end());
  return path;
}

void ChEngine::ManyToMany(const std::vector<int32_t>& sources,
                          const std::vector<int32_t>& targets,
                          QueryContext* ctx, std::vector<Cost>* out) const {
  ctx->Ensure(num_nodes_);
  const int64_t nt = static_cast<int64_t>(targets.size());
  out->assign(sources.size() * targets.size(), kInfCost);
  if (sources.empty() || targets.empty()) return;

  // Phase 1: one backward search per target fills (node, target, dist)
  // bucket entries; labels are discarded between targets.
  struct Bucket {
    int32_t node;
    int32_t tidx;
    Cost d;
  };
  std::vector<Bucket> buckets;
  for (int64_t j = 0; j < nt; ++j) {
    ctx->Reset();
    ctx->settled_.clear();
    UpwardSearch(targets[static_cast<size_t>(j)], /*forward=*/false, 0, ctx,
                 &ctx->settled_);
    for (const int32_t v : ctx->settled_) {
      buckets.push_back(
          {v, static_cast<int32_t>(j), ctx->dist_b_[static_cast<size_t>(v)]});
    }
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const Bucket& a, const Bucket& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.tidx < b.tidx;
            });

  // Phase 2: one forward search per source; every settled node contributes
  // its bucket entries as candidate meeting points.
  for (size_t i = 0; i < sources.size(); ++i) {
    const int32_t s = sources[i];
    ctx->Reset();
    ctx->settled_.clear();
    UpwardSearch(s, /*forward=*/true, graph_->node_cost(s), ctx,
                 &ctx->settled_);
    Cost* row = out->data() + static_cast<int64_t>(i) * nt;
    for (const int32_t v : ctx->settled_) {
      const Cost df = ctx->dist_f_[static_cast<size_t>(v)];
      auto it = std::lower_bound(
          buckets.begin(), buckets.end(), v,
          [](const Bucket& b, int32_t node) { return b.node < node; });
      for (; it != buckets.end() && it->node == v; ++it) {
        const Cost cand = df + it->d;
        if (cand < row[it->tidx]) row[it->tidx] = cand;
      }
    }
  }
}

std::vector<CsrPath> ChEngine::AlternativeRoutes(int32_t src, int32_t dst,
                                                 int64_t max_alternatives,
                                                 QueryContext* ctx) const {
  std::vector<CsrPath> results;
  if (max_alternatives <= 0) return results;
  ctx->Ensure(num_nodes_);
  ctx->Reset();
  ctx->settled_.clear();
  UpwardSearch(src, /*forward=*/true, graph_->node_cost(src), ctx,
               &ctx->settled_);
  UpwardSearch(dst, /*forward=*/false, 0, ctx, nullptr);

  std::vector<std::pair<Cost, int32_t>> candidates;  // (total, via)
  for (const int32_t v : ctx->settled_) {
    if (ctx->stamp_b_[static_cast<size_t>(v)] != ctx->cur_stamp_) continue;
    candidates.emplace_back(ctx->dist_f_[static_cast<size_t>(v)] +
                                ctx->dist_b_[static_cast<size_t>(v)],
                            v);
  }
  std::sort(candidates.begin(), candidates.end());

  std::vector<uint8_t> seen(static_cast<size_t>(num_nodes_), 0);
  for (const auto& [total, via] : candidates) {
    if (static_cast<int64_t>(results.size()) >= max_alternatives) break;
    CsrPath path;
    path.cost = total;
    path.nodes = UnpackUpwardPath(via, /*forward=*/true, *ctx);
    const std::vector<int32_t> tail =
        UnpackUpwardPath(via, /*forward=*/false, *ctx);
    path.nodes.insert(path.nodes.end(), tail.begin() + 1, tail.end());
    // Reject non-simple paths (the two halves may overlap away from `via`).
    bool simple = true;
    for (const int32_t node : path.nodes) {
      if (seen[static_cast<size_t>(node)]) {
        simple = false;
        break;
      }
      seen[static_cast<size_t>(node)] = 1;
    }
    for (const int32_t node : path.nodes) seen[static_cast<size_t>(node)] = 0;
    if (!simple) continue;
    bool duplicate = false;
    for (const CsrPath& r : results) {
      if (r.nodes == path.nodes) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) results.push_back(std::move(path));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

constexpr uint64_t kChMagic = 0x3130484354535453ULL;  // "STSTCH01" (LE)

template <typename T>
void AppendPod(std::vector<uint8_t>* buf, const T& value) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&value);
  buf->insert(buf->end(), p, p + sizeof(T));
}

template <typename T>
void AppendVec(std::vector<uint8_t>* buf, const std::vector<T>& v) {
  AppendPod(buf, static_cast<uint64_t>(v.size()));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(v.data());
  buf->insert(buf->end(), p, p + v.size() * sizeof(T));
}

class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool ReadPod(T* out) {
    if (size_ - at_ < sizeof(T)) return false;
    std::memcpy(out, data_ + at_, sizeof(T));
    at_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool ReadVec(std::vector<T>* out, uint64_t max_count) {
    uint64_t count = 0;
    if (!ReadPod(&count) || count > max_count ||
        size_ - at_ < count * sizeof(T)) {
      return false;
    }
    out->resize(static_cast<size_t>(count));
    std::memcpy(out->data(), data_ + at_, count * sizeof(T));
    at_ += count * sizeof(T);
    return true;
  }

  size_t at() const { return at_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t at_ = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

common::Status ChEngine::Save(const std::string& path) const {
  std::vector<uint8_t> buf;
  AppendPod(&buf, kChMagic);
  AppendPod(&buf, graph_->Fingerprint());
  AppendPod(&buf, options_.seed);
  AppendPod(&buf, options_.witness_settle_limit);
  AppendPod(&buf, num_nodes_);
  AppendPod(&buf, num_original_arcs_);
  AppendVec(&buf, rank_);
  AppendVec(&buf, arc_tail_);
  AppendVec(&buf, arc_head_);
  AppendVec(&buf, arc_weight_);
  AppendVec(&buf, arc_skip1_);
  AppendVec(&buf, arc_skip2_);
  const uint32_t crc = common::Crc32(buf.data(), buf.size());
  AppendPod(&buf, crc);

  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return common::Status::IOError("cannot open for write: " + path);
  }
  if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return common::Status::IOError("short write: " + path);
  }
  return common::Status::OK();
}

common::Result<ChEngine> ChEngine::Load(const std::string& path,
                                        const CsrGraph* graph) {
  START_CHECK(graph != nullptr);
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return common::Status::IOError("cannot open: " + path);
  }
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < static_cast<long>(sizeof(uint64_t) + sizeof(uint32_t))) {
    return common::Status::InvalidArgument("truncated CH artifact: " + path);
  }
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return common::Status::IOError("short read: " + path);
  }
  const size_t payload = buf.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + payload, sizeof(stored_crc));
  if (common::Crc32(buf.data(), payload) != stored_crc) {
    return common::Status::InvalidArgument("CRC mismatch in CH artifact: " +
                                           path);
  }

  Cursor cur(buf.data(), payload);
  uint64_t magic = 0, fingerprint = 0;
  ChEngine e;
  e.graph_ = graph;
  if (!cur.ReadPod(&magic) || magic != kChMagic) {
    return common::Status::InvalidArgument("bad magic in CH artifact: " + path);
  }
  if (!cur.ReadPod(&fingerprint)) {
    return common::Status::InvalidArgument("truncated CH artifact: " + path);
  }
  if (fingerprint != graph->Fingerprint()) {
    return common::Status::FailedPrecondition(
        "CH artifact was built from a different graph/metric: " + path);
  }
  const uint64_t max_arcs = uint64_t{1} << 31;
  if (!cur.ReadPod(&e.options_.seed) ||
      !cur.ReadPod(&e.options_.witness_settle_limit) ||
      !cur.ReadPod(&e.num_nodes_) || e.num_nodes_ != graph->num_nodes() ||
      !cur.ReadPod(&e.num_original_arcs_) ||
      !cur.ReadVec(&e.rank_, static_cast<uint64_t>(e.num_nodes_)) ||
      e.rank_.size() != static_cast<size_t>(e.num_nodes_) ||
      !cur.ReadVec(&e.arc_tail_, max_arcs) ||
      !cur.ReadVec(&e.arc_head_, max_arcs) ||
      !cur.ReadVec(&e.arc_weight_, max_arcs) ||
      !cur.ReadVec(&e.arc_skip1_, max_arcs) ||
      !cur.ReadVec(&e.arc_skip2_, max_arcs) || cur.at() != payload) {
    return common::Status::InvalidArgument("malformed CH artifact: " + path);
  }
  const int64_t m = static_cast<int64_t>(e.arc_tail_.size());
  if (static_cast<int64_t>(e.arc_head_.size()) != m ||
      static_cast<int64_t>(e.arc_weight_.size()) != m ||
      static_cast<int64_t>(e.arc_skip1_.size()) != m ||
      static_cast<int64_t>(e.arc_skip2_.size()) != m ||
      e.num_original_arcs_ < 0 || e.num_original_arcs_ > m) {
    return common::Status::InvalidArgument("malformed CH artifact: " + path);
  }
  for (int64_t a = 0; a < m; ++a) {
    const int32_t t = e.arc_tail_[static_cast<size_t>(a)];
    const int32_t h = e.arc_head_[static_cast<size_t>(a)];
    const int32_t s1 = e.arc_skip1_[static_cast<size_t>(a)];
    const int32_t s2 = e.arc_skip2_[static_cast<size_t>(a)];
    if (t < 0 || t >= e.num_nodes_ || h < 0 || h >= e.num_nodes_ ||
        e.arc_weight_[static_cast<size_t>(a)] < 0 || (s1 < 0) != (s2 < 0) ||
        s1 >= a || s2 >= a) {
      return common::Status::InvalidArgument("malformed CH artifact: " + path);
    }
  }
  for (const int32_t r : e.rank_) {
    if (r < 0 || r >= e.num_nodes_) {
      return common::Status::InvalidArgument("malformed CH artifact: " + path);
    }
  }
  e.BuildSearchGraphs();
  return e;
}

}  // namespace start::roadnet
