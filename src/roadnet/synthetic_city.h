#ifndef START_ROADNET_SYNTHETIC_CITY_H_
#define START_ROADNET_SYNTHETIC_CITY_H_

#include <cstdint>

#include "common/rng.h"
#include "roadnet/road_network.h"

namespace start::roadnet {

/// \brief Parameters of the synthetic-city generator.
///
/// The generator substitutes for the OpenStreetMap extracts of Beijing and
/// Porto (Sec. IV-A): a jittered grid of intersections with an arterial
/// hierarchy, converted to the segment-level directed graph of Definition 1.
/// See DESIGN.md ("Substitutions") for why this preserves the evaluation's
/// relevant structure.
struct SyntheticCityConfig {
  int32_t grid_width = 12;      ///< Intersections per row.
  int32_t grid_height = 12;     ///< Intersections per column.
  double block_length_m = 220.0;
  double coord_jitter = 0.12;   ///< Relative positional jitter of intersections.
  int32_t arterial_every = 4;   ///< Every k-th row/col is a primary arterial.
  double diagonal_fraction = 0.06;  ///< Fraction of extra diagonal shortcuts.
  uint64_t seed = 17;
};

/// Builds a finalized road network. Segments come in directed pairs (one per
/// travel direction); connectivity edges link a segment to every segment
/// leaving its head intersection except its own reverse (no U-turns).
RoadNetwork BuildSyntheticCity(const SyntheticCityConfig& config);

}  // namespace start::roadnet

#endif  // START_ROADNET_SYNTHETIC_CITY_H_
