#ifndef START_ROADNET_GRAPH_REGISTRY_H_
#define START_ROADNET_GRAPH_REGISTRY_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "roadnet/ch_engine.h"
#include "roadnet/csr_graph.h"
#include "roadnet/road_network.h"

namespace start::roadnet {

/// \brief One city's frozen graph plane: the source network, its CSR
/// lowering under the free-flow metric, and the contraction hierarchy built
/// over it. All three are immutable; the struct is shared read-only across
/// threads via shared_ptr snapshots handed out by GraphRegistry.
struct CityGraph {
  std::string city;
  std::shared_ptr<const RoadNetwork> network;
  std::shared_ptr<const CsrGraph> graph;
  std::shared_ptr<const ChEngine> ch;
};

/// \brief Thread-safe multi-city registry: city id -> CityGraph.
///
/// Readers (serving, streaming) call Get() under a shared lock and keep the
/// returned snapshot for as long as they need it — registration of further
/// cities never invalidates a handed-out snapshot. Expensive preprocessing
/// (CSR lowering + CH build) happens *outside* the lock, so registering a
/// new city does not stall concurrent readers.
class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Lowers `network` (must be finalized) under the free-flow metric, builds
  /// its contraction hierarchy and registers the bundle under `city`.
  /// kAlreadyExists if the city id is taken, kFailedPrecondition if the
  /// network is not finalized.
  common::Status Register(std::string city,
                          std::shared_ptr<const RoadNetwork> network,
                          const ChOptions& options = {});

  /// Registers a pre-assembled bundle (e.g. with a ChEngine loaded from a
  /// serialized artifact). `entry.city` must be non-empty and graph/ch
  /// non-null with ch built over *entry.graph.
  common::Status RegisterPrebuilt(CityGraph entry);

  /// Snapshot of a city's graph plane; nullptr when unknown. The snapshot
  /// stays valid regardless of later registrations.
  std::shared_ptr<const CityGraph> Get(std::string_view city) const;

  bool Contains(std::string_view city) const { return Get(city) != nullptr; }

  /// Registered city ids, sorted.
  std::vector<std::string> Cities() const;

  int64_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const CityGraph>, std::less<>>
      cities_;
};

}  // namespace start::roadnet

#endif  // START_ROADNET_GRAPH_REGISTRY_H_
