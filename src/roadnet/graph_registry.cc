#include "roadnet/graph_registry.h"

#include <mutex>
#include <utility>

namespace start::roadnet {

common::Status GraphRegistry::Register(
    std::string city, std::shared_ptr<const RoadNetwork> network,
    const ChOptions& options) {
  if (city.empty()) {
    return common::Status::InvalidArgument("city id must be non-empty");
  }
  if (network == nullptr || !network->finalized()) {
    return common::Status::FailedPrecondition(
        "network must be finalized before registration: " + city);
  }
  {
    // Fail fast on duplicates before paying for preprocessing. The
    // authoritative check happens again under the exclusive lock below.
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (cities_.find(city) != cities_.end()) {
      return common::Status::AlreadyExists("city already registered: " + city);
    }
  }
  auto entry = std::make_shared<CityGraph>();
  entry->city = city;
  entry->network = network;
  entry->graph = std::make_shared<const CsrGraph>(
      CsrGraph::FromNetworkFreeFlow(*network));
  entry->ch = std::make_shared<const ChEngine>(
      ChEngine::Build(entry->graph.get(), options));

  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = cities_.emplace(std::move(city), entry);
  if (!inserted) {
    return common::Status::AlreadyExists("city already registered: " +
                                         it->first);
  }
  return common::Status::OK();
}

common::Status GraphRegistry::RegisterPrebuilt(CityGraph entry) {
  if (entry.city.empty()) {
    return common::Status::InvalidArgument("city id must be non-empty");
  }
  if (entry.graph == nullptr || entry.ch == nullptr) {
    return common::Status::InvalidArgument(
        "prebuilt city graph needs both a CsrGraph and a ChEngine: " +
        entry.city);
  }
  if (&entry.ch->graph() != entry.graph.get()) {
    return common::Status::FailedPrecondition(
        "ChEngine was not built over the registered CsrGraph: " + entry.city);
  }
  std::string city = entry.city;
  auto shared = std::make_shared<const CityGraph>(std::move(entry));
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = cities_.emplace(std::move(city), shared);
  if (!inserted) {
    return common::Status::AlreadyExists("city already registered: " +
                                         it->first);
  }
  return common::Status::OK();
}

std::shared_ptr<const CityGraph> GraphRegistry::Get(
    std::string_view city) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = cities_.find(city);
  if (it == cities_.end()) return nullptr;
  return it->second;
}

std::vector<std::string> GraphRegistry::Cities() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(cities_.size());
  for (const auto& [city, entry] : cities_) out.push_back(city);
  return out;
}

int64_t GraphRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(cities_.size());
}

}  // namespace start::roadnet
