#ifndef START_ROADNET_ROAD_NETWORK_H_
#define START_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace start::roadnet {

/// \brief OSM-style functional class of a road segment (Definition 1's
/// "road type" feature).
enum class RoadType : int32_t {
  kMotorway = 0,
  kPrimary = 1,
  kSecondary = 2,
  kTertiary = 3,
  kResidential = 4,
};

constexpr int32_t kNumRoadTypes = 5;

std::string_view RoadTypeName(RoadType type);

/// \brief A directed road segment — a vertex of the road network graph G
/// (Definition 1: vertices are road segments, edges are intersections).
struct RoadSegment {
  int64_t id = -1;
  RoadType type = RoadType::kResidential;
  double length_m = 0.0;      ///< Segment length in meters.
  int32_t lanes = 1;          ///< Number of lanes.
  double maxspeed_mps = 8.3;  ///< Free-flow speed limit in m/s.
  // Endpoint geometry in a local metric frame (meters); used by the GPS
  // simulator, map matcher and the point-based similarity measures.
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

  double MidX() const { return 0.5 * (x0 + x1); }
  double MidY() const { return 0.5 * (y0 + y1); }
};

/// \brief Lightweight read-only view over one CSR adjacency row: the
/// allocation-free counterpart of OutNeighbors()/InNeighbors() for hot
/// loops (Dijkstra relaxation, HMM transition search, GAT edge builds).
struct IdSpan {
  const int64_t* ptr = nullptr;
  int64_t count = 0;

  const int64_t* begin() const { return ptr; }
  const int64_t* end() const { return ptr + count; }
  int64_t size() const { return count; }
  bool empty() const { return count == 0; }
  int64_t operator[](int64_t i) const { return ptr[i]; }
};

/// \brief Directed road-network graph G = (V, E, F_V, A) of Definition 1.
///
/// Vertices are road segments; a directed edge (u, v) means a vehicle can
/// continue from segment u onto segment v through a shared intersection.
/// After Finalize() the adjacency is frozen into CSR form and per-vertex
/// in/out degrees are available.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  /// Adds a segment; its `id` field is overwritten with the assigned id.
  int64_t AddSegment(RoadSegment segment);

  /// Adds a directed connectivity edge between two segments. Must be called
  /// before Finalize(); duplicate edges are ignored at Finalize() time.
  void AddEdge(int64_t from, int64_t to);

  /// Freezes the graph and builds CSR adjacency. Idempotent.
  void Finalize();
  bool finalized() const { return finalized_; }

  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }
  int64_t num_edges() const { return static_cast<int64_t>(edge_src_.size()); }

  const RoadSegment& segment(int64_t id) const;

  /// Out-neighbours of `v` (segments reachable as the next hop).
  /// Copies; prefer OutSpan() in hot loops.
  std::vector<int64_t> OutNeighbors(int64_t v) const;
  /// In-neighbours of `v`. Copies; prefer InSpan() in hot loops.
  std::vector<int64_t> InNeighbors(int64_t v) const;

  /// Zero-copy views over the frozen CSR adjacency (targets sorted
  /// ascending per source). Valid until the network is destroyed.
  IdSpan OutSpan(int64_t v) const;
  IdSpan InSpan(int64_t v) const;

  /// \brief Index of edge (from, to) in the flat edge enumeration
  /// (edge_sources()/edge_targets() order, which equals out-CSR order), or
  /// -1 when the edge does not exist. O(log out-degree).
  int64_t EdgeIndexOf(int64_t from, int64_t to) const;

  int64_t OutDegree(int64_t v) const;
  int64_t InDegree(int64_t v) const;

  bool HasEdge(int64_t from, int64_t to) const;

  /// Flat edge list (parallel arrays), fixed after Finalize(); this is the
  /// edge enumeration the sparse TPE-GAT operates on.
  const std::vector<int64_t>& edge_sources() const { return edge_src_; }
  const std::vector<int64_t>& edge_targets() const { return edge_dst_; }

  /// Free-flow travel time of a segment in seconds.
  double FreeFlowTravelTime(int64_t v) const;

  /// \brief Builds the normalised per-road feature matrix F_V (row-major
  /// [num_segments, FeatureDim()]).
  ///
  /// Features follow Sec. III-A / IV-A: one-hot road type, length, number of
  /// lanes, maximum speed, in-degree and out-degree, plus the segment's
  /// geometry (midpoint coordinates and heading). The geometric columns make
  /// road representations discriminative on synthetic networks whose
  /// attribute features are near-symmetric (real OSM extracts get this
  /// uniqueness for free); they are intrinsic map data, so TPE-GAT parameters
  /// stay independent of |V| (the Table III transfer property). All numeric
  /// columns are z-scored over the network.
  std::vector<float> BuildFeatureMatrix() const;
  static int64_t FeatureDim() { return kNumRoadTypes + 9; }

 private:
  void CheckId(int64_t id) const;

  std::vector<RoadSegment> segments_;
  std::vector<std::pair<int64_t, int64_t>> pending_edges_;
  bool finalized_ = false;
  // CSR (built by Finalize).
  std::vector<int64_t> out_offsets_, out_targets_;
  std::vector<int64_t> in_offsets_, in_sources_;
  std::vector<int64_t> edge_src_, edge_dst_;
};

/// \brief Per-edge transfer probabilities computed from historical
/// trajectories (Eq. 2): p_ij = count(v_i -> v_j) / count(v_i).
class TransferProbability {
 public:
  /// Counts transitions over road-id sequences. Sequences must reference
  /// valid segments of `net`.
  static TransferProbability FromTrajectories(
      const RoadNetwork& net,
      const std::vector<std::vector<int64_t>>& road_sequences);

  /// p(from -> to); 0 when the pair or `from` was never observed.
  double Prob(int64_t from, int64_t to) const;

  /// \brief Transfer probability of every edge of `net`'s flat edge list,
  /// aligned with edge_sources()/edge_targets().
  ///
  /// One linear merge over the two (src, dst)-sorted sequences instead of a
  /// binary search per edge — the fast path for the TPE-GAT edge build.
  /// Values are identical to calling Prob() per edge.
  std::vector<double> EdgeProbabilities(const RoadNetwork& net) const;

  /// Total number of times `road` appears in the corpus.
  int64_t VisitCount(int64_t road) const;

  int64_t num_segments() const {
    return static_cast<int64_t>(visit_counts_.size());
  }

 private:
  std::vector<int64_t> visit_counts_;
  // Sorted flat (from, to) -> count map for cache-friendly lookup.
  std::vector<std::pair<int64_t, int64_t>> pair_keys_;  // (from, to)
  std::vector<int64_t> pair_counts_;
};

}  // namespace start::roadnet

#endif  // START_ROADNET_ROAD_NETWORK_H_
