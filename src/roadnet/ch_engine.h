#ifndef START_ROADNET_CH_ENGINE_H_
#define START_ROADNET_CH_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "roadnet/csr_graph.h"

namespace start::roadnet {

struct ChOptions {
  /// Seed mixed into the contraction-order tie-break. Two builds over the
  /// same CsrGraph with the same seed produce bit-identical hierarchies
  /// (same ranks, same shortcut arena, same serialized artifact).
  uint64_t seed = 0x5354415254ULL;  // "START"

  /// Settled-node cap per witness search. Smaller caps make preprocessing
  /// faster but admit more (redundant) shortcuts; correctness is unaffected
  /// because a missed witness only ever *adds* arcs, never drops one. The
  /// cost bound usually terminates a search well before this cap; the cap
  /// only bounds the tail on dense late-contraction overlays.
  int64_t witness_settle_limit = 256;
};

/// \brief Contraction-hierarchy engine over an immutable CsrGraph.
///
/// Preprocessing contracts nodes in a deterministic seeded order driven by a
/// lazy priority queue over 2*edge_difference + contracted_neighbors
/// (ties broken by a seeded hash, then node id). Contracting node v inserts a
/// shortcut arc (u, x) whenever the capped witness search cannot certify a
/// path u -> x avoiding v that is no longer than w(u,v) + w(v,x). Every arc —
/// original or shortcut — lives in one flat arena; shortcuts remember the two
/// constituent arcs (skip1/skip2), so path unpacking is a branch-free
/// recursion with no map lookups.
///
/// Queries run two upward searches (forward from s over arcs into
/// higher-ranked nodes, backward from t over reversed such arcs) and take the
/// best meeting node. Because costs are integer (see roadnet::Cost), the
/// result is *identical* to CsrDijkstra over the same graph — the tests and
/// the bench gate assert 100% agreement, not approximate parity.
///
/// The engine itself is immutable after Build/Load; all query state lives in
/// an explicit QueryContext, so any number of threads may query one engine
/// concurrently, each with its own context.
class ChEngine {
 public:
  /// Per-thread query workspace (timestamp-versioned labels; queries after
  /// the first are allocation-free). Obtain via MakeContext().
  class QueryContext {
   public:
    QueryContext() = default;

   private:
    friend class ChEngine;
    void Ensure(int32_t num_nodes);
    void Reset();

    std::vector<Cost> dist_f_, dist_b_;
    std::vector<int32_t> parent_f_, parent_b_;  ///< Arena arc ids, -1 at root.
    std::vector<uint32_t> stamp_f_, stamp_b_;
    uint32_t cur_stamp_ = 0;
    std::vector<std::pair<Cost, int32_t>> heap_, heap_b_;
    std::vector<int32_t> settled_;  ///< Scratch: nodes settled by a search.
  };

  /// Builds the hierarchy. `graph` must outlive the engine.
  static ChEngine Build(const CsrGraph* graph, const ChOptions& options = {});

  QueryContext MakeContext() const;

  /// Exact cheapest-path cost (node_cost(src) included, matching
  /// CsrDijkstra::Distance); kInfCost when unreachable.
  Cost Distance(int32_t src, int32_t dst, QueryContext* ctx) const;

  /// Exact cheapest path with shortcuts unpacked back to graph nodes.
  std::optional<CsrPath> Route(int32_t src, int32_t dst,
                               QueryContext* ctx) const;

  /// \brief Batched many-to-many table: out[i * targets.size() + j] is the
  /// exact cost src[i] -> tgt[j] (kInfCost when unreachable).
  ///
  /// Bucket algorithm: one backward upward search per target fills per-node
  /// buckets, then one forward upward search per source scans the buckets of
  /// the nodes it settles — |S| + |T| searches instead of |S| * |T|.
  void ManyToMany(const std::vector<int32_t>& sources,
                  const std::vector<int32_t>& targets, QueryContext* ctx,
                  std::vector<Cost>* out) const;

  /// \brief Up to `max_alternatives` distinct simple s->t paths via the
  /// via-node method: every node settled by both upward searches proposes the
  /// path s -> via -> t. Results are sorted by (cost, node sequence) and
  /// deduplicated; the first entry is always the exact shortest path. Returns
  /// an empty vector when t is unreachable.
  std::vector<CsrPath> AlternativeRoutes(int32_t src, int32_t dst,
                                         int64_t max_alternatives,
                                         QueryContext* ctx) const;

  int32_t num_nodes() const { return num_nodes_; }
  /// Shortcut arcs added by preprocessing (arena size minus original arcs).
  int64_t num_shortcuts() const {
    return static_cast<int64_t>(arc_tail_.size()) - num_original_arcs_;
  }
  /// Contraction rank of a node (0 = contracted first).
  int32_t Rank(int32_t node) const { return rank_[static_cast<size_t>(node)]; }

  const CsrGraph& graph() const { return *graph_; }
  const ChOptions& options() const { return options_; }

  /// \brief Serializes the hierarchy (ranks + arc arena + up/down CSR) with a
  /// CRC32 trailer and the source graph's Fingerprint() baked in.
  common::Status Save(const std::string& path) const;

  /// \brief Loads a hierarchy previously Save()d. Refuses artifacts whose
  /// stored fingerprint does not match `graph` (the hierarchy is only valid
  /// for the exact graph + metric it was built from).
  static common::Result<ChEngine> Load(const std::string& path,
                                       const CsrGraph* graph);

 private:
  ChEngine() = default;

  /// Rebuilds up_/down_ CSR from rank_ + the arc arena (shared by Build and
  /// Load).
  void BuildSearchGraphs();

  /// Upward search from `src` on the forward (`forward=true`, arcs to higher
  /// rank) or backward (reversed arcs from higher rank) side. Fills the
  /// corresponding dist/parent labels of `ctx` for every settled node and,
  /// when `settled` is non-null, appends each settled node to it. Runs to
  /// exhaustion — required by the bucket and via-node algorithms, which
  /// consume every upward label. Labels, heap entries and `settled` are in
  /// rank space (see BuildSearchGraphs); `src` is a node id.
  void UpwardSearch(int32_t src, bool forward, Cost seed_cost,
                    QueryContext* ctx, std::vector<int32_t>* settled) const;

  /// Interleaved bidirectional upward search for point-to-point queries:
  /// each direction stops once its queue minimum reaches the best meeting
  /// cost found so far (the standard CH stopping criterion — still exact),
  /// and settled nodes whose label is beaten via a higher-ranked neighbor
  /// are stalled instead of relaxed (stall-on-demand). Returns the *rank* of
  /// the best meeting node, -1 when `dst` is unreachable; `*cost` gets the
  /// exact distance (kInfCost when unreachable).
  int32_t BidirectionalSearch(int32_t src, int32_t dst, QueryContext* ctx,
                              Cost* cost) const;

  /// Appends the fully unpacked node sequence of arena arc `arc` to `out`
  /// (tail inclusive, head exclusive when `drop_head`).
  void UnpackArc(int32_t arc, std::vector<int32_t>* out) const;

  /// Reconstructs the s->via (forward) or via->t (backward) node path from
  /// the parent labels in `ctx`. `via` is a rank; the result holds node ids.
  std::vector<int32_t> UnpackUpwardPath(int32_t via, bool forward,
                                        const QueryContext& ctx) const;

  const CsrGraph* graph_ = nullptr;
  ChOptions options_;
  int32_t num_nodes_ = 0;
  int64_t num_original_arcs_ = 0;

  std::vector<int32_t> rank_;   ///< node -> contraction rank.
  std::vector<int32_t> order_;  ///< rank -> node (inverse of rank_).

  // Arc arena. Arcs [0, num_original_arcs_) mirror the graph's arcs;
  // the rest are shortcuts. skip1/skip2 are arena ids of the two
  // constituent arcs (-1/-1 for original arcs).
  std::vector<int32_t> arc_tail_, arc_head_;
  std::vector<Cost> arc_weight_;
  std::vector<int32_t> arc_skip1_, arc_skip2_;

  // Upward search graphs (arena arc ids, grouped per node).
  // up_: arcs (v -> w) with Rank(w) > Rank(v), grouped by v — forward side.
  // down_: arcs (u -> v) with Rank(u) > Rank(v), grouped by v — backward side
  // (traversed v -> u).
  std::vector<int64_t> up_offsets_, down_offsets_;
  std::vector<int32_t> up_arcs_, down_arcs_;
  // Flattened copies of the rows above — (node, weight) streams so the hot
  // query loops touch contiguous memory instead of chasing arena ids.
  // up_nodes_[k] is the head of up_arcs_[k]; down_nodes_[k] the tail of
  // down_arcs_[k] (the node the backward traversal reaches).
  std::vector<int32_t> up_nodes_, down_nodes_;
  std::vector<Cost> up_weights_, down_weights_;
};

}  // namespace start::roadnet

#endif  // START_ROADNET_CH_ENGINE_H_
