#ifndef START_ROADNET_SHORTEST_PATH_H_
#define START_ROADNET_SHORTEST_PATH_H_

#include <functional>
#include <optional>
#include <vector>

#include "roadnet/road_network.h"

namespace start::roadnet {

/// \brief A path through the segment graph plus its accumulated cost.
struct PathResult {
  std::vector<int64_t> path;  ///< Segment ids, src first, dst last.
  double cost = 0.0;          ///< Sum of per-segment weights along the path.
};

/// Per-segment traversal cost (seconds, typically). Must be positive.
using SegmentWeightFn = std::function<double(int64_t segment)>;

/// \brief Dijkstra shortest path from `src` to `dst` over the segment graph.
///
/// The cost of a path [v0..vk] is sum_i weight(v_i) — each segment is paid
/// once, including src and dst. Returns nullopt when unreachable.
std::optional<PathResult> ShortestPath(const RoadNetwork& net, int64_t src,
                                       int64_t dst,
                                       const SegmentWeightFn& weight);

/// \brief Yen's algorithm for the k shortest loopless paths [30], used by the
/// detour ground-truth generator of Sec. IV-D4.
///
/// Returns up to k paths sorted by cost (the first is the shortest path).
std::vector<PathResult> KShortestPaths(const RoadNetwork& net, int64_t src,
                                       int64_t dst, int64_t k,
                                       const SegmentWeightFn& weight);

}  // namespace start::roadnet

#endif  // START_ROADNET_SHORTEST_PATH_H_
