#ifndef START_ROADNET_SHORTEST_PATH_H_
#define START_ROADNET_SHORTEST_PATH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "roadnet/road_network.h"

namespace start::roadnet {

/// \brief A path through the segment graph plus its accumulated cost.
struct PathResult {
  std::vector<int64_t> path;  ///< Segment ids, src first, dst last.
  double cost = 0.0;          ///< Sum of per-segment weights along the path.
};

/// Per-segment traversal cost (seconds, typically). Must be positive.
using SegmentWeightFn = std::function<double(int64_t segment)>;

/// \brief Dijkstra shortest path from `src` to `dst` over the segment graph.
///
/// The cost of a path [v0..vk] is sum_i weight(v_i) — each segment is paid
/// once, including src and dst. Returns nullopt when unreachable.
std::optional<PathResult> ShortestPath(const RoadNetwork& net, int64_t src,
                                       int64_t dst,
                                       const SegmentWeightFn& weight);

/// \brief Repeated-query Dijkstra over a fixed network with per-call weights:
/// the router for metrics that change between queries (e.g. the trip
/// generator's per-driver personalized costs), where contraction-hierarchy
/// preprocessing cannot help.
///
/// Distance/parent labels are timestamp-versioned, so queries after the
/// first reuse the workspace instead of allocating two O(|V|) arrays per
/// call. Route() is bitwise-identical to ShortestPath(): same heap order
/// (ties on (dist, id)), same strict-< relaxation, same neighbor iteration
/// order (CSR spans preserve the sorted-neighbor order OutNeighbors copies).
/// Not thread-safe; one instance per thread.
class DijkstraRouter {
 public:
  /// `net` must be finalized and outlive the router.
  explicit DijkstraRouter(const RoadNetwork* net);

  /// Equivalent to ShortestPath(net, src, dst, weight).
  std::optional<PathResult> Route(int64_t src, int64_t dst,
                                  const SegmentWeightFn& weight);

 private:
  const RoadNetwork* net_;
  std::vector<double> dist_;
  std::vector<int64_t> prev_;
  std::vector<uint32_t> stamp_;
  uint32_t cur_stamp_ = 0;
  std::vector<std::pair<double, int64_t>> heap_;
};

/// \brief Yen's algorithm for the k shortest loopless paths [30], used by the
/// detour ground-truth generator of Sec. IV-D4.
///
/// Ordering contract: the returned paths are sorted by (cost, lexicographic
/// node sequence) — equal-cost paths always appear in the same order, on any
/// platform, so corpora derived from the result are reproducible. The first
/// entry is a shortest path.
std::vector<PathResult> KShortestPaths(const RoadNetwork& net, int64_t src,
                                       int64_t dst, int64_t k,
                                       const SegmentWeightFn& weight);

}  // namespace start::roadnet

#endif  // START_ROADNET_SHORTEST_PATH_H_
