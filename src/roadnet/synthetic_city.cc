#include "roadnet/synthetic_city.h"

#include <cmath>
#include <map>
#include <vector>

#include "common/check.h"

namespace start::roadnet {

namespace {

struct SegmentDraft {
  int64_t id;
  int32_t from_node;  // intersection index
  int32_t to_node;
};

double SpeedFor(RoadType type, common::Rng* rng) {
  double base = 8.3;
  switch (type) {
    case RoadType::kMotorway:
      base = 25.0;
      break;
    case RoadType::kPrimary:
      base = 16.7;
      break;
    case RoadType::kSecondary:
      base = 13.9;
      break;
    case RoadType::kTertiary:
      base = 11.1;
      break;
    case RoadType::kResidential:
      base = 8.3;
      break;
  }
  return base * rng->Uniform(0.9, 1.1);
}

int32_t LanesFor(RoadType type) {
  switch (type) {
    case RoadType::kMotorway:
      return 4;
    case RoadType::kPrimary:
      return 3;
    case RoadType::kSecondary:
    case RoadType::kTertiary:
      return 2;
    case RoadType::kResidential:
      return 1;
  }
  return 1;
}

}  // namespace

RoadNetwork BuildSyntheticCity(const SyntheticCityConfig& config) {
  START_CHECK_GE(config.grid_width, 3);
  START_CHECK_GE(config.grid_height, 3);
  START_CHECK_GE(config.arterial_every, 2);
  common::Rng rng(config.seed);
  const int32_t gw = config.grid_width;
  const int32_t gh = config.grid_height;

  // Intersection coordinates (jittered grid).
  std::vector<double> nx(static_cast<size_t>(gw * gh));
  std::vector<double> ny(static_cast<size_t>(gw * gh));
  for (int32_t i = 0; i < gh; ++i) {
    for (int32_t j = 0; j < gw; ++j) {
      const size_t n = static_cast<size_t>(i * gw + j);
      nx[n] = (j + rng.Uniform(-config.coord_jitter, config.coord_jitter)) *
              config.block_length_m;
      ny[n] = (i + rng.Uniform(-config.coord_jitter, config.coord_jitter)) *
              config.block_length_m;
    }
  }

  RoadNetwork net;
  std::vector<SegmentDraft> drafts;
  // reverse_of[id] = id of the opposite-direction twin.
  std::vector<int64_t> reverse_of;

  auto add_directed_pair = [&](int32_t a, int32_t b, RoadType type) {
    const double dx = nx[static_cast<size_t>(b)] - nx[static_cast<size_t>(a)];
    const double dy = ny[static_cast<size_t>(b)] - ny[static_cast<size_t>(a)];
    const double length = std::max(30.0, std::hypot(dx, dy));
    RoadSegment fwd;
    fwd.type = type;
    fwd.length_m = length;
    fwd.lanes = LanesFor(type);
    fwd.maxspeed_mps = SpeedFor(type, &rng);
    fwd.x0 = nx[static_cast<size_t>(a)];
    fwd.y0 = ny[static_cast<size_t>(a)];
    fwd.x1 = nx[static_cast<size_t>(b)];
    fwd.y1 = ny[static_cast<size_t>(b)];
    RoadSegment bwd = fwd;
    std::swap(bwd.x0, bwd.x1);
    std::swap(bwd.y0, bwd.y1);
    bwd.maxspeed_mps = SpeedFor(type, &rng);
    const int64_t fid = net.AddSegment(fwd);
    const int64_t bid = net.AddSegment(bwd);
    drafts.push_back({fid, a, b});
    drafts.push_back({bid, b, a});
    reverse_of.push_back(bid);
    reverse_of.push_back(fid);
  };

  auto row_type = [&](int32_t i) {
    if (i % config.arterial_every == 0) return RoadType::kPrimary;
    if (i % 2 == 0) return RoadType::kTertiary;
    return RoadType::kResidential;
  };

  for (int32_t i = 0; i < gh; ++i) {
    for (int32_t j = 0; j < gw; ++j) {
      const int32_t n = i * gw + j;
      if (j + 1 < gw) add_directed_pair(n, n + 1, row_type(i));
      if (i + 1 < gh) add_directed_pair(n, n + gw, row_type(j));
    }
  }
  // A few diagonal shortcuts (heterogeneous topology; classed secondary).
  const int32_t num_diagonals = static_cast<int32_t>(
      config.diagonal_fraction * static_cast<double>(gw * gh));
  for (int32_t k = 0; k < num_diagonals; ++k) {
    const int32_t i = static_cast<int32_t>(rng.UniformInt(gh - 1));
    const int32_t j = static_cast<int32_t>(rng.UniformInt(gw - 1));
    add_directed_pair(i * gw + j, (i + 1) * gw + (j + 1),
                      RoadType::kSecondary);
  }

  // Connectivity: incoming segment -> outgoing segment at the shared
  // intersection, excluding immediate U-turns.
  std::map<int32_t, std::vector<int64_t>> arriving;   // node -> segment ids
  std::map<int32_t, std::vector<int64_t>> departing;  // node -> segment ids
  for (const auto& d : drafts) {
    arriving[d.to_node].push_back(d.id);
    departing[d.from_node].push_back(d.id);
  }
  for (const auto& [node, in_ids] : arriving) {
    const auto it = departing.find(node);
    if (it == departing.end()) continue;
    for (const int64_t in_id : in_ids) {
      bool added = false;
      for (const int64_t out_id : it->second) {
        if (out_id == reverse_of[static_cast<size_t>(in_id)]) continue;
        net.AddEdge(in_id, out_id);
        added = true;
      }
      // Dead end: permit the U-turn so the graph stays strongly connected.
      if (!added && !it->second.empty()) {
        net.AddEdge(in_id, reverse_of[static_cast<size_t>(in_id)]);
      }
    }
  }
  net.Finalize();
  return net;
}

}  // namespace start::roadnet
