#include "serve/city_router.h"

#include <utility>

namespace start::serve {

CityRouter::CityRouter(const roadnet::GraphRegistry* registry)
    : registry_(registry) {}

CityRouter::~CityRouter() = default;

common::Status CityRouter::OpenCity(const std::string& city,
                                    CityConfig config) {
  if (config.encoder == nullptr || config.index == nullptr) {
    return common::Status::InvalidArgument(
        "city lane needs an encoder and an index: " + city);
  }
  std::shared_ptr<const roadnet::CityGraph> graph = registry_->Get(city);
  if (graph == nullptr) {
    return common::Status::NotFound("city not in graph registry: " + city);
  }
  auto lane = std::make_shared<Lane>();
  lane->graph = graph;
  lane->config = config;
  lane->pipeline = std::make_unique<StreamPipeline>(
      config.encoder, graph->network.get(), config.index, config.stream);

  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = lanes_.emplace(city, std::move(lane));
  if (!inserted) {
    return common::Status::AlreadyExists("city lane already open: " + city);
  }
  return common::Status::OK();
}

std::shared_ptr<CityRouter::Lane> CityRouter::GetLane(
    std::string_view city) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = lanes_.find(city);
  if (it == lanes_.end()) return nullptr;
  return it->second;
}

common::Status CityRouter::Push(std::string_view city, StreamItem item) {
  const std::shared_ptr<Lane> lane = GetLane(city);
  if (lane == nullptr) {
    return common::Status::NotFound("no serving lane for city: " +
                                    std::string(city));
  }
  return lane->pipeline->Push(std::move(item));
}

common::Result<std::vector<Neighbor>> CityRouter::Query(
    std::string_view city, const std::vector<float>& query, int64_t k) const {
  const std::shared_ptr<Lane> lane = GetLane(city);
  if (lane == nullptr) {
    return common::Status::NotFound("no serving lane for city: " +
                                    std::string(city));
  }
  return lane->config.index->Query(query, k);
}

common::Result<double> CityRouter::TravelTimeSeconds(
    std::string_view city, int64_t from_segment, int64_t to_segment) const {
  const std::shared_ptr<Lane> lane = GetLane(city);
  if (lane == nullptr) {
    return common::Status::NotFound("no serving lane for city: " +
                                    std::string(city));
  }
  const roadnet::CsrGraph& graph = *lane->graph->graph;
  const int64_t v = graph.num_nodes();
  if (from_segment < 0 || from_segment >= v || to_segment < 0 ||
      to_segment >= v) {
    return common::Status::OutOfRange("segment id out of range for city: " +
                                      std::string(city));
  }
  roadnet::ChEngine::QueryContext ctx;
  {
    std::lock_guard<std::mutex> lock(lane->ctx_mu);
    if (!lane->contexts.empty()) {
      ctx = std::move(lane->contexts.back());
      lane->contexts.pop_back();
    }
  }
  const roadnet::Cost cost =
      lane->graph->ch->Distance(graph.ToNode(from_segment),
                                graph.ToNode(to_segment), &ctx);
  {
    std::lock_guard<std::mutex> lock(lane->ctx_mu);
    lane->contexts.push_back(std::move(ctx));
  }
  if (cost >= roadnet::kInfCost) {
    return common::Status::NotFound("no route between segments in city: " +
                                    std::string(city));
  }
  return graph.CostToSeconds(cost);
}

common::Status CityRouter::Flush(std::string_view city) {
  const std::shared_ptr<Lane> lane = GetLane(city);
  if (lane == nullptr) {
    return common::Status::NotFound("no serving lane for city: " +
                                    std::string(city));
  }
  lane->pipeline->Flush();
  return common::Status::OK();
}

common::Result<PipelineStats> CityRouter::Stats(std::string_view city) const {
  const std::shared_ptr<Lane> lane = GetLane(city);
  if (lane == nullptr) {
    return common::Status::NotFound("no serving lane for city: " +
                                    std::string(city));
  }
  return lane->pipeline->stats();
}

std::vector<std::string> CityRouter::Cities() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(lanes_.size());
  for (const auto& [city, lane] : lanes_) out.push_back(city);
  return out;
}

}  // namespace start::serve
