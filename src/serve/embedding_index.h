#ifndef START_SERVE_EMBEDDING_INDEX_H_
#define START_SERVE_EMBEDDING_INDEX_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/index_interface.h"
#include "sim/search.h"

namespace start::serve {

/// \brief Exact brute-force Top-K retrieval over L2-normalized embeddings —
/// the ground-truth backend of the retrieval plane (see IndexInterface for
/// the shared contract, HnswIndex for the sublinear approximate backend).
///
/// Embeddings are normalized on Add, so the score is cosine similarity and
/// ranking by descending score equals ranking by ascending Euclidean
/// distance in the normalized space. Scoring is a blocked GEMM
/// (tensor::internal::GemmNT over row blocks) and selection is heap-based
/// Top-K (O(N log k), no full sort).
///
/// Thread-safety contract: Query/Contains/size take a shared lock; Add and
/// Remove take an exclusive lock. Any number of concurrent readers, or one
/// writer, at a time — the classic serving pattern of heavy query traffic
/// with occasional corpus updates. AddBatch normalizes and validates rows
/// *before* taking the exclusive lock, so bulk loads block readers only for
/// the memcpy-scale tail, not the whole normalize pass.
class EmbeddingIndex : public IndexInterface {
 public:
  using Neighbor = serve::Neighbor;

  explicit EmbeddingIndex(int64_t dim);

  int64_t dim() const override { return dim_; }
  int64_t size() const override;
  bool Contains(int64_t id) const override;

  using IndexInterface::Add;
  common::Status Add(int64_t id, const float* embedding,
                     int64_t dim) override;

  /// Bulk insert of `ids.size()` row-major rows. Normalization (and
  /// zero-vector rejection) happens outside the exclusive section; the lock
  /// covers only duplicate checking and the row append.
  common::Status AddBatch(const std::vector<int64_t>& ids,
                          const std::vector<float>& rows) override;

  /// Removes one embedding; NotFound when absent.
  common::Status Remove(int64_t id) override;

  /// \brief Top-k by descending cosine similarity.
  ///
  /// Returns min(k, size()) neighbors, best first. Exact ties are broken
  /// toward the earlier-inserted entry (entries keep their insertion slot
  /// until a Remove swaps the last slot into the hole). Rejects zero-norm
  /// queries and dimension mismatches.
  using IndexInterface::Query;
  common::Result<std::vector<Neighbor>> Query(const float* query, int64_t dim,
                                              int64_t k) const override;

  /// \brief Most-similar-search protocol (Sec. IV-D4a) served through the
  /// index: query q's ground truth is id `gt_id[q]`; queries are `nq`
  /// row-major [dim] rows. Exact full-corpus ranks (overrides the
  /// censored-rank default), ranked by the Query contract above.
  common::Result<sim::RankMetrics> EvaluateMostSimilar(
      const std::vector<float>& queries, int64_t nq,
      const std::vector<int64_t>& gt_id) const override;

 private:
  /// Cosine scores of `query` (already normalized) against every row.
  void ScoreAll(const float* query, std::vector<float>* scores) const;

  int64_t dim_;
  mutable std::shared_mutex mu_;
  std::vector<float> rows_;               ///< Row-major [size, dim], normalized.
  std::vector<int64_t> slot_to_id_;
  std::unordered_map<int64_t, int64_t> id_to_slot_;
};

}  // namespace start::serve

#endif  // START_SERVE_EMBEDDING_INDEX_H_
