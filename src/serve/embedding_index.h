#ifndef START_SERVE_EMBEDDING_INDEX_H_
#define START_SERVE_EMBEDDING_INDEX_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/search.h"

namespace start::serve {

/// \brief Exact brute-force Top-K retrieval over L2-normalized embeddings —
/// the retrieval half of the serving plane.
///
/// Embeddings are normalized on Add, so the score is cosine similarity and
/// ranking by descending score equals ranking by ascending Euclidean
/// distance in the normalized space. Scoring is a blocked GEMM
/// (tensor::internal::GemmNT over row blocks) and selection is heap-based
/// Top-K (O(N log k), no full sort).
///
/// Thread-safety contract: Query/Contains/size take a shared lock; Add and
/// Remove take an exclusive lock. Any number of concurrent readers, or one
/// writer, at a time — the classic serving pattern of heavy query traffic
/// with occasional corpus updates.
class EmbeddingIndex {
 public:
  struct Neighbor {
    int64_t id = 0;
    float score = 0.0f;  ///< Cosine similarity in [-1, 1].
  };

  explicit EmbeddingIndex(int64_t dim);

  int64_t dim() const { return dim_; }
  int64_t size() const;
  bool Contains(int64_t id) const;

  /// \brief Inserts (or fails on duplicate id) one embedding of length
  /// dim(). Zero vectors are rejected (cosine undefined).
  common::Status Add(int64_t id, const float* embedding, int64_t dim);
  common::Status Add(int64_t id, const std::vector<float>& embedding);

  /// Bulk insert of `ids.size()` row-major rows (one exclusive lock).
  common::Status AddBatch(const std::vector<int64_t>& ids,
                          const std::vector<float>& rows);

  /// Removes one embedding; NotFound when absent.
  common::Status Remove(int64_t id);

  /// \brief Top-k by descending cosine similarity.
  ///
  /// Returns min(k, size()) neighbors, best first. Exact ties are broken
  /// toward the earlier-inserted entry (entries keep their insertion slot
  /// until a Remove swaps the last slot into the hole). Rejects zero-norm
  /// queries and dimension mismatches.
  common::Result<std::vector<Neighbor>> Query(const float* query, int64_t dim,
                                              int64_t k) const;
  common::Result<std::vector<Neighbor>> Query(const std::vector<float>& query,
                                              int64_t k) const;

  /// \brief Most-similar-search protocol (Sec. IV-D4a) served through the
  /// index: query q's ground truth is id `gt_id[q]`; queries are `nq`
  /// row-major [dim] rows. Ranks by the Query contract above.
  common::Result<sim::RankMetrics> EvaluateMostSimilar(
      const std::vector<float>& queries, int64_t nq,
      const std::vector<int64_t>& gt_id) const;

 private:
  /// Cosine scores of `query` (already normalized) against every row.
  void ScoreAll(const float* query, std::vector<float>* scores) const;

  int64_t dim_;
  mutable std::shared_mutex mu_;
  std::vector<float> rows_;               ///< Row-major [size, dim], normalized.
  std::vector<int64_t> slot_to_id_;
  std::unordered_map<int64_t, int64_t> id_to_slot_;
};

}  // namespace start::serve

#endif  // START_SERVE_EMBEDDING_INDEX_H_
