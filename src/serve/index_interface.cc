#include "serve/index_interface.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace start::serve {

namespace internal {

bool NormalizeInto(const float* src, int64_t dim, float* dst) {
  double sq = 0.0;
  for (int64_t i = 0; i < dim; ++i) {
    sq += static_cast<double>(src[i]) * src[i];
  }
  if (sq <= 0.0) return false;
  const float inv = static_cast<float>(1.0 / std::sqrt(sq));
  for (int64_t i = 0; i < dim; ++i) dst[i] = src[i] * inv;
  return true;
}

}  // namespace internal

common::Status IndexInterface::Add(int64_t id,
                                   const std::vector<float>& embedding) {
  return Add(id, embedding.data(), static_cast<int64_t>(embedding.size()));
}

common::Result<std::vector<Neighbor>> IndexInterface::Query(
    const std::vector<float>& query, int64_t k) const {
  return Query(query.data(), static_cast<int64_t>(query.size()), k);
}

common::Result<sim::RankMetrics> IndexInterface::EvaluateMostSimilar(
    const std::vector<float>& queries, int64_t nq,
    const std::vector<int64_t>& gt_id) const {
  if (nq <= 0) {
    return common::Status::InvalidArgument("need at least one query");
  }
  if (static_cast<int64_t>(queries.size()) != nq * dim()) {
    return common::Status::InvalidArgument("queries must be [nq, dim]");
  }
  if (static_cast<int64_t>(gt_id.size()) != nq) {
    return common::Status::InvalidArgument("gt_id must have one id per query");
  }
  const int64_t depth = std::max<int64_t>(EvalQueryDepth(), 5);
  sim::RankMetrics m;
  for (int64_t q = 0; q < nq; ++q) {
    const int64_t gt = gt_id[static_cast<size_t>(q)];
    if (!Contains(gt)) {
      return common::Status::NotFound("ground-truth id " + std::to_string(gt) +
                                      " not indexed");
    }
    auto result = Query(queries.data() + q * dim(), dim(), depth);
    if (!result.ok()) return result.status();
    // Censored rank: a truth the search missed counts as rank size() — the
    // pessimistic bound, so approximate mean ranks never flatter the index.
    int64_t rank = std::max<int64_t>(size(), depth + 1);
    for (size_t i = 0; i < result->size(); ++i) {
      if ((*result)[i].id == gt) {
        rank = static_cast<int64_t>(i) + 1;
        break;
      }
    }
    m.mean_rank += static_cast<double>(rank);
    if (rank <= 1) m.hr_at_1 += 1.0;
    if (rank <= 5) m.hr_at_5 += 1.0;
  }
  const double n = static_cast<double>(nq);
  m.mean_rank /= n;
  m.hr_at_1 /= n;
  m.hr_at_5 /= n;
  return m;
}

common::Result<double> KnnPrecision(const IndexInterface& index,
                                    const std::vector<float>& original,
                                    const std::vector<float>& transformed,
                                    int64_t num_queries, int64_t k) {
  const int64_t d = index.dim();
  if (num_queries <= 0 || k <= 0) {
    return common::Status::InvalidArgument("need positive num_queries and k");
  }
  if (static_cast<int64_t>(original.size()) != num_queries * d ||
      static_cast<int64_t>(transformed.size()) != num_queries * d) {
    return common::Status::InvalidArgument(
        "original/transformed queries must be [nq, dim]");
  }
  double total = 0.0;
  for (int64_t q = 0; q < num_queries; ++q) {
    auto truth = index.Query(original.data() + q * d, d, k);
    if (!truth.ok()) return truth.status();
    auto got = index.Query(transformed.data() + q * d, d, k);
    if (!got.ok()) return got.status();
    int64_t overlap = 0;
    for (const Neighbor& g : *got) {
      for (const Neighbor& t : *truth) {
        if (g.id == t.id) {
          ++overlap;
          break;
        }
      }
    }
    total += static_cast<double>(overlap) / static_cast<double>(k);
  }
  return total / static_cast<double>(num_queries);
}

}  // namespace start::serve
