#include "serve/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_set>

#include "common/check.h"
#include "tensor/kernels.h"
#include "tensor/serialize.h"

namespace start::serve {

namespace {

// Block geometry: 2048 nodes per block, a fixed 16K-entry pointer table
// (~128 KB per index) bounding capacity at ~33M nodes. Tombstoned slots are
// never reused, so slot order stays insertion order.
constexpr int64_t kBlockRowsLog2 = 11;
constexpr int64_t kBlockRows = int64_t{1} << kBlockRowsLog2;
constexpr int64_t kMaxBlocks = int64_t{1} << 14;

// Upper-level adjacency arena: 64K-int chunks (spans never straddle one).
constexpr int64_t kUpperChunkLog2 = 16;
constexpr int64_t kUpperChunkInts = int64_t{1} << kUpperChunkLog2;
constexpr int64_t kMaxUpperChunks = int64_t{1} << 14;

constexpr int32_t kMaxLevel = 24;
constexpr uint64_t kNoEntry = ~uint64_t{0};

uint64_t PackEntry(int64_t slot, int32_t level) {
  return (static_cast<uint64_t>(slot) << 8) | static_cast<uint64_t>(level);
}
int64_t EntrySlot(uint64_t e) { return static_cast<int64_t>(e >> 8); }
int32_t EntryLevel(uint64_t e) { return static_cast<int32_t>(e & 0xff); }

/// Strict (dist, slot) order: ties rank the earlier-inserted slot closer,
/// matching the exact index's tie-break.
bool CloserThan(const HnswIndex::Cand&, const HnswIndex::Cand&);

}  // namespace

/// One append-only block of node storage. Rows and the level-0 adjacency
/// live at fixed strides; upper-level adjacency is an arena offset.
struct HnswIndex::Block {
  Block(int64_t dim, int64_t max_m0)
      : rows(new float[static_cast<size_t>(kBlockRows * dim)]),
        links0(new int32_t[static_cast<size_t>(kBlockRows * (max_m0 + 1))]),
        levels(new int32_t[static_cast<size_t>(kBlockRows)]),
        upper_offsets(new int64_t[static_cast<size_t>(kBlockRows)]),
        ids(new int64_t[static_cast<size_t>(kBlockRows)]),
        dead(new std::atomic<uint8_t>[static_cast<size_t>(kBlockRows)]) {}

  std::unique_ptr<float[]> rows;
  std::unique_ptr<int32_t[]> links0;  ///< [count, slots...] at stride 2M+1.
  std::unique_ptr<int32_t[]> levels;
  std::unique_ptr<int64_t[]> upper_offsets;  ///< -1 for level-0-only nodes.
  std::unique_ptr<int64_t[]> ids;
  std::unique_ptr<std::atomic<uint8_t>[]> dead;
};

/// Pooled per-search state: the tag-based visited list plus the candidate
/// min-heap / result max-heap buffers, so steady-state queries allocate
/// nothing (vectors keep their capacity across pool round-trips).
struct HnswIndex::Scratch {
  std::vector<uint32_t> tags;
  uint32_t tag = 0;
  std::vector<Cand> cand;    ///< Min-heap: best expansion frontier first.
  std::vector<Cand> result;  ///< Max-heap bounded by ef: worst kept on top.
  std::vector<int32_t> neighbors;
  std::vector<float> qnorm;

  void BeginVisit(int64_t hint) {
    if (++tag == 0) {  // tag wrapped: invalidate everything once
      std::fill(tags.begin(), tags.end(), 0u);
      tag = 1;
    }
    if (static_cast<int64_t>(tags.size()) < hint) {
      tags.resize(static_cast<size_t>(hint), 0u);
    }
  }
  /// Marks and reports prior visitation; grows for slots published after
  /// BeginVisit (writers may link new nodes mid-search).
  bool TestAndMark(int64_t slot) {
    if (static_cast<int64_t>(tags.size()) <= slot) {
      tags.resize(static_cast<size_t>(slot) + 1024, 0u);
    }
    if (tags[static_cast<size_t>(slot)] == tag) return true;
    tags[static_cast<size_t>(slot)] = tag;
    return false;
  }
};

namespace {

bool CloserThan(const HnswIndex::Cand& a, const HnswIndex::Cand& b) {
  return a.dist < b.dist || (a.dist == b.dist && a.slot < b.slot);
}

/// Heap comparator for the expansion frontier: std heaps keep the comp-max
/// on top, so "worse than" ordering surfaces the best candidate.
bool WorseThan(const HnswIndex::Cand& a, const HnswIndex::Cand& b) {
  return CloserThan(b, a);
}

}  // namespace

HnswIndex::HnswIndex(int64_t dim, const HnswConfig& config)
    : dim_(dim),
      config_(config),
      max_m0_(2 * config.M),
      level_mult_(1.0 / std::log(static_cast<double>(config.M))),
      ef_search_(std::max<int64_t>(config.ef_search, 1)),
      level_rng_(config.seed),
      blocks_(new std::atomic<Block*>[static_cast<size_t>(kMaxBlocks)]),
      upper_chunks_(
          new std::atomic<int32_t*>[static_cast<size_t>(kMaxUpperChunks)]),
      entry_(kNoEntry) {
  START_CHECK_GT(dim, 0);
  START_CHECK_GE(config.M, 2);
  START_CHECK_GE(config.ef_construction, 1);
  START_CHECK_GT(config.min_live_ratio, 0.0);
  START_CHECK_LE(config.min_live_ratio, 1.0);
  for (int64_t i = 0; i < kMaxBlocks; ++i) {
    blocks_[static_cast<size_t>(i)].store(nullptr,
                                          std::memory_order_relaxed);
  }
  for (int64_t i = 0; i < kMaxUpperChunks; ++i) {
    upper_chunks_[static_cast<size_t>(i)].store(nullptr,
                                                std::memory_order_relaxed);
  }
}

HnswIndex::~HnswIndex() {
  for (int64_t i = 0; i < num_blocks_; ++i) {
    delete blocks_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  for (int64_t i = 0; i < num_upper_chunks_; ++i) {
    delete[] upper_chunks_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
  }
}

HnswIndex::Block* HnswIndex::BlockOf(int64_t slot) const {
  return blocks_[static_cast<size_t>(slot >> kBlockRowsLog2)].load(
      std::memory_order_acquire);
}

const float* HnswIndex::RowPtr(int64_t slot) const {
  return BlockOf(slot)->rows.get() + (slot & (kBlockRows - 1)) * dim_;
}

int32_t* HnswIndex::LinkListPtr(int64_t slot, int64_t level) const {
  Block* b = BlockOf(slot);
  const int64_t in = slot & (kBlockRows - 1);
  if (level == 0) return b->links0.get() + in * (max_m0_ + 1);
  const int64_t offset =
      b->upper_offsets[in] + (level - 1) * (config_.M + 1);
  int32_t* chunk = upper_chunks_[static_cast<size_t>(offset >> kUpperChunkLog2)]
                       .load(std::memory_order_acquire);
  return chunk + (offset & (kUpperChunkInts - 1));
}

int64_t HnswIndex::IdAt(int64_t slot) const {
  return BlockOf(slot)->ids[slot & (kBlockRows - 1)];
}

int32_t HnswIndex::LevelAt(int64_t slot) const {
  return BlockOf(slot)->levels[slot & (kBlockRows - 1)];
}

bool HnswIndex::IsDead(int64_t slot) const {
  return BlockOf(slot)->dead[slot & (kBlockRows - 1)].load(
             std::memory_order_acquire) != 0;
}

float HnswIndex::Dist(const float* query, int64_t slot) const {
  return -tensor::internal::DotF32(query, RowPtr(slot), dim_);
}

int32_t HnswIndex::SampleLevel() {
  double u = level_rng_.Uniform();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  const double level = -std::log(u) * level_mult_;
  return std::min(static_cast<int32_t>(level), kMaxLevel);
}

void HnswIndex::CopyNeighbors(int64_t slot, int64_t level,
                              std::vector<int32_t>* out) const {
  std::lock_guard<std::mutex> guard(LinkMutex(slot));
  const int32_t* list = LinkListPtr(slot, level);
  out->assign(list + 1, list + 1 + list[0]);
}

int64_t HnswIndex::GreedyStep(const float* query, int64_t entry, float* dist,
                              int64_t level, Scratch* s) const {
  int64_t cur = entry;
  float curd = *dist;
  bool improved = true;
  while (improved) {
    improved = false;
    CopyNeighbors(cur, level, &s->neighbors);
    for (const int32_t nb : s->neighbors) {
      const float d = Dist(query, nb);
      if (d < curd) {
        curd = d;
        cur = nb;
        improved = true;
      }
    }
  }
  *dist = curd;
  return cur;
}

void HnswIndex::SearchLayer(const float* query, int64_t entry,
                            float entry_dist, int64_t level, int64_t ef,
                            Scratch* s) const {
  s->BeginVisit(slot_count_.load(std::memory_order_acquire));
  s->cand.clear();
  s->result.clear();
  (void)s->TestAndMark(entry);
  s->cand.push_back({entry_dist, entry});
  s->result.push_back({entry_dist, entry});
  while (!s->cand.empty()) {
    std::pop_heap(s->cand.begin(), s->cand.end(), WorseThan);
    const Cand c = s->cand.back();
    s->cand.pop_back();
    // result.front() is the worst kept candidate; once the pool is full and
    // the closest frontier node cannot beat it, no reachable node can.
    if (static_cast<int64_t>(s->result.size()) >= ef &&
        !CloserThan(c, s->result.front())) {
      break;
    }
    CopyNeighbors(c.slot, level, &s->neighbors);
    for (const int32_t nb : s->neighbors) {
      if (s->TestAndMark(nb)) continue;
      const Cand cand{Dist(query, nb), nb};
      if (static_cast<int64_t>(s->result.size()) < ef ||
          CloserThan(cand, s->result.front())) {
        s->cand.push_back(cand);
        std::push_heap(s->cand.begin(), s->cand.end(), WorseThan);
        s->result.push_back(cand);
        std::push_heap(s->result.begin(), s->result.end(), CloserThan);
        if (static_cast<int64_t>(s->result.size()) > ef) {
          std::pop_heap(s->result.begin(), s->result.end(), CloserThan);
          s->result.pop_back();
        }
      }
    }
  }
}

void HnswIndex::SelectNeighbors(const std::vector<Cand>& sorted, int64_t m,
                                std::vector<Cand>* out) const {
  // Malkov & Yashunin Alg. 4: keep a candidate only if it is closer to the
  // query than to every already-kept neighbor — spends the link budget on
  // diverse directions instead of one tight cluster.
  out->clear();
  for (const Cand& c : sorted) {
    if (static_cast<int64_t>(out->size()) >= m) break;
    bool keep = true;
    for (const Cand& sel : *out) {
      if (Dist(RowPtr(sel.slot), c.slot) < c.dist) {
        keep = false;
        break;
      }
    }
    if (keep) out->push_back(c);
  }
}

void HnswIndex::ConnectBack(int64_t nb, int64_t new_slot, float dist,
                            int64_t level, int64_t cap) {
  std::lock_guard<std::mutex> guard(LinkMutex(nb));
  int32_t* list = LinkListPtr(nb, level);
  const int32_t count = list[0];
  if (count < cap) {
    list[1 + count] = static_cast<int32_t>(new_slot);
    list[0] = count + 1;
    return;
  }
  // Full: re-select among existing links + the newcomer, by distance to nb.
  const float* nb_row = RowPtr(nb);
  std::vector<Cand> cands;
  cands.reserve(static_cast<size_t>(count) + 1);
  cands.push_back({dist, new_slot});
  for (int32_t i = 0; i < count; ++i) {
    const int64_t s = list[1 + i];
    cands.push_back({Dist(nb_row, s), s});
  }
  std::sort(cands.begin(), cands.end(), CloserThan);
  std::vector<Cand> selected;
  SelectNeighbors(cands, cap, &selected);
  list[0] = static_cast<int32_t>(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    list[1 + i] = static_cast<int32_t>(selected[i].slot);
  }
}

common::Status HnswIndex::InsertNormalized(int64_t id, const float* nrow) {
  {
    std::shared_lock<std::shared_mutex> read(ids_mu_);
    if (id_to_slot_.count(id) > 0) {
      return common::Status::AlreadyExists("id " + std::to_string(id) +
                                           " already indexed");
    }
  }
  const int64_t slot = slot_count_.load(std::memory_order_relaxed);
  if (slot >= kMaxBlocks * kBlockRows) {
    return common::Status::Internal("HNSW index capacity exhausted");
  }
  const int32_t level = SampleLevel();

  if ((slot >> kBlockRowsLog2) >= num_blocks_) {
    auto* block = new Block(dim_, max_m0_);
    blocks_[static_cast<size_t>(num_blocks_)].store(
        block, std::memory_order_release);
    ++num_blocks_;
  }
  Block* b = blocks_[static_cast<size_t>(slot >> kBlockRowsLog2)].load(
      std::memory_order_relaxed);
  const int64_t in = slot & (kBlockRows - 1);
  std::memcpy(b->rows.get() + in * dim_, nrow,
              static_cast<size_t>(dim_) * sizeof(float));
  b->ids[in] = id;
  b->levels[in] = level;
  b->dead[in].store(0, std::memory_order_relaxed);
  b->links0.get()[in * (max_m0_ + 1)] = 0;
  int64_t upper_offset = -1;
  if (level > 0) {
    const int64_t span = level * (config_.M + 1);
    if ((upper_used_ & (kUpperChunkInts - 1)) + span > kUpperChunkInts) {
      upper_used_ = (upper_used_ | (kUpperChunkInts - 1)) + 1;  // next chunk
    }
    const int64_t chunk_idx = upper_used_ >> kUpperChunkLog2;
    if (chunk_idx >= kMaxUpperChunks) {
      return common::Status::Internal("HNSW upper-link arena exhausted");
    }
    if (chunk_idx >= num_upper_chunks_) {
      upper_chunks_[static_cast<size_t>(chunk_idx)].store(
          new int32_t[static_cast<size_t>(kUpperChunkInts)],
          std::memory_order_release);
      ++num_upper_chunks_;
    }
    upper_offset = upper_used_;
    upper_used_ += span;
    int32_t* chunk =
        upper_chunks_[static_cast<size_t>(chunk_idx)].load(
            std::memory_order_relaxed);
    for (int32_t l = 0; l < level; ++l) {
      chunk[(upper_offset & (kUpperChunkInts - 1)) + l * (config_.M + 1)] = 0;
    }
  }
  b->upper_offsets[in] = upper_offset;

  const uint64_t e = entry_.load(std::memory_order_acquire);
  if (e == kNoEntry) {
    slot_count_.store(slot + 1, std::memory_order_release);
    entry_.store(PackEntry(slot, level), std::memory_order_release);
  } else {
    int64_t cur = EntrySlot(e);
    const int32_t entry_level = EntryLevel(e);
    std::unique_ptr<Scratch> s = AcquireScratch();
    float curd = Dist(nrow, cur);
    for (int32_t l = entry_level; l > level; --l) {
      cur = GreedyStep(nrow, cur, &curd, l, s.get());
    }
    // Three phases so readers never meet a half-wired node: (1) search every
    // level and pick neighbors — the new node is unreachable throughout, so
    // concurrent queries see only the old graph; (2) write the node's own
    // lists at every level; (3) only then add backlinks, which is the moment
    // the node becomes reachable — by then all of its lists exist, so a
    // reader descending onto it cannot dead-end in an empty level-0 list.
    const int32_t top = std::min(level, entry_level);
    std::vector<std::vector<Cand>> selected(static_cast<size_t>(top) + 1);
    for (int32_t l = top; l >= 0; --l) {
      SearchLayer(nrow, cur, curd, l, config_.ef_construction, s.get());
      std::sort(s->result.begin(), s->result.end(), CloserThan);
      SelectNeighbors(s->result, config_.M, &selected[static_cast<size_t>(l)]);
      // Entry for the next level down: the best candidate found here.
      cur = s->result.front().slot;
      curd = s->result.front().dist;
    }
    {
      std::lock_guard<std::mutex> guard(LinkMutex(slot));
      for (int32_t l = top; l >= 0; --l) {
        const auto& sel = selected[static_cast<size_t>(l)];
        int32_t* list = LinkListPtr(slot, l);
        list[0] = static_cast<int32_t>(sel.size());
        for (size_t i = 0; i < sel.size(); ++i) {
          list[1 + i] = static_cast<int32_t>(sel[i].slot);
        }
      }
    }
    for (int32_t l = top; l >= 0; --l) {
      const int64_t cap = l == 0 ? max_m0_ : config_.M;
      for (const Cand& sel : selected[static_cast<size_t>(l)]) {
        ConnectBack(sel.slot, slot, sel.dist, l, cap);
      }
    }
    ReleaseScratch(std::move(s));
    slot_count_.store(slot + 1, std::memory_order_release);
    if (level > entry_level) {
      entry_.store(PackEntry(slot, level), std::memory_order_release);
    }
  }
  {
    std::unique_lock<std::shared_mutex> write(ids_mu_);
    id_to_slot_.emplace(id, slot);
  }
  live_.fetch_add(1, std::memory_order_release);
  return common::Status::OK();
}

common::Status HnswIndex::Add(int64_t id, const float* embedding,
                              int64_t dim) {
  if (dim != dim_) {
    return common::Status::InvalidArgument(
        "embedding dim " + std::to_string(dim) + " vs index dim " +
        std::to_string(dim_));
  }
  std::vector<float> nrow(static_cast<size_t>(dim_));
  if (!internal::NormalizeInto(embedding, dim_, nrow.data())) {
    return common::Status::InvalidArgument(
        "zero-norm embedding for id " + std::to_string(id) +
        " (cosine similarity undefined)");
  }
  std::lock_guard<std::mutex> write(insert_mu_);
  return InsertNormalized(id, nrow.data());
}

common::Status HnswIndex::AddBatch(const std::vector<int64_t>& ids,
                                   const std::vector<float>& rows) {
  const int64_t n = static_cast<int64_t>(ids.size());
  if (static_cast<int64_t>(rows.size()) != n * dim_) {
    return common::Status::InvalidArgument(
        "AddBatch rows have " + std::to_string(rows.size()) +
        " floats; expected ids * dim = " + std::to_string(n * dim_));
  }
  // As in EmbeddingIndex::AddBatch, the normalize pass and batch-duplicate
  // check run before any lock, so validation failures mutate nothing.
  std::vector<float> normalized(rows.size());
  for (int64_t i = 0; i < n; ++i) {
    if (!internal::NormalizeInto(rows.data() + i * dim_, dim_,
                                 normalized.data() + i * dim_)) {
      return common::Status::InvalidArgument(
          "zero-norm embedding for id " + std::to_string(ids[i]) +
          " (cosine similarity undefined)");
    }
  }
  std::unordered_set<int64_t> batch_ids;
  for (const int64_t id : ids) {
    if (!batch_ids.insert(id).second) {
      return common::Status::AlreadyExists("id " + std::to_string(id) +
                                           " duplicated within the batch");
    }
  }
  std::lock_guard<std::mutex> write(insert_mu_);
  {
    std::shared_lock<std::shared_mutex> read(ids_mu_);
    for (const int64_t id : ids) {
      if (id_to_slot_.count(id) > 0) {
        return common::Status::AlreadyExists("id " + std::to_string(id) +
                                             " already indexed");
      }
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    const auto status = InsertNormalized(ids[i], normalized.data() + i * dim_);
    if (!status.ok()) return status;  // only capacity exhaustion can hit
  }
  return common::Status::OK();
}

common::Status HnswIndex::Remove(int64_t id) {
  int64_t slot = -1;
  {
    std::unique_lock<std::shared_mutex> write(ids_mu_);
    const auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end()) {
      return common::Status::NotFound("id " + std::to_string(id) +
                                      " not indexed");
    }
    slot = it->second;
    id_to_slot_.erase(it);
  }
  BlockOf(slot)->dead[slot & (kBlockRows - 1)].store(
      1, std::memory_order_release);
  live_.fetch_sub(1, std::memory_order_release);
  return common::Status::OK();
}

bool HnswIndex::Contains(int64_t id) const {
  std::shared_lock<std::shared_mutex> read(ids_mu_);
  return id_to_slot_.count(id) > 0;
}

common::Result<std::vector<Neighbor>> HnswIndex::Query(const float* query,
                                                       int64_t dim,
                                                       int64_t k) const {
  if (dim != dim_) {
    return common::Status::InvalidArgument(
        "query dim " + std::to_string(dim) + " vs index dim " +
        std::to_string(dim_));
  }
  if (k <= 0) {
    return common::Status::InvalidArgument("k must be positive");
  }
  std::unique_ptr<Scratch> s = AcquireScratch();
  s->qnorm.resize(static_cast<size_t>(dim_));
  if (!internal::NormalizeInto(query, dim_, s->qnorm.data())) {
    ReleaseScratch(std::move(s));
    return common::Status::InvalidArgument("zero-norm query");
  }
  const uint64_t e = entry_.load(std::memory_order_acquire);
  if (e == kNoEntry) {
    ReleaseScratch(std::move(s));
    return std::vector<Neighbor>{};
  }
  const float* q = s->qnorm.data();
  int64_t cur = EntrySlot(e);
  float curd = Dist(q, cur);
  for (int32_t l = EntryLevel(e); l >= 1; --l) {
    cur = GreedyStep(q, cur, &curd, l, s.get());
  }
  // Tombstones occupy candidate-pool slots but never surface, so under
  // churn a fixed ef would return fewer than k live results. Inflate the
  // pool by the live fraction, floored at config.min_live_ratio (the
  // default caps inflation at 4x for adversarial churn).
  const double live_ratio =
      std::max(config_.min_live_ratio, 1.0 - DeadFraction());
  const int64_t ef = static_cast<int64_t>(
      std::ceil(static_cast<double>(std::max<int64_t>(ef_search(), k)) /
                live_ratio));
  SearchLayer(q, cur, curd, /*level=*/0, ef, s.get());
  std::sort(s->result.begin(), s->result.end(), CloserThan);
  std::vector<Neighbor> out;
  out.reserve(static_cast<size_t>(std::min<int64_t>(
      k, static_cast<int64_t>(s->result.size()))));
  for (const Cand& c : s->result) {
    if (static_cast<int64_t>(out.size()) >= k) break;
    if (IsDead(c.slot)) continue;  // tombstones route but never surface
    out.push_back(Neighbor{IdAt(c.slot), -c.dist});
  }
  ReleaseScratch(std::move(s));
  return out;
}

common::Result<std::unique_ptr<HnswIndex>> HnswIndex::CompactedCopy() const {
  auto out = std::make_unique<HnswIndex>(dim_, config_);
  const int64_t slots = slot_count_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> write(out->insert_mu_);
  for (int64_t slot = 0; slot < slots; ++slot) {
    if (IsDead(slot)) continue;
    // Rows are stored normalized, so InsertNormalized reuses the exact bits
    // the original Add produced — the rebuilt graph is bitwise-identical to
    // a fresh build over the surviving rows.
    START_RETURN_IF_ERROR(out->InsertNormalized(IdAt(slot), RowPtr(slot)));
  }
  return out;
}

namespace {
/// Container meta_tag marking an HNSW graph artifact, so a model checkpoint
/// handed to Load (or vice versa) is rejected by tag, not by field chaos.
constexpr uint64_t kHnswMetaTag = 0x484e535731ULL;  // "HNSW1"
}  // namespace

common::Status HnswIndex::Save(const std::string& path) const {
  std::lock_guard<std::mutex> write(insert_mu_);
  const int64_t slots = slot_count_.load(std::memory_order_acquire);
  tensor::RecordBundle bundle;
  bundle.ints["shape"] = {dim_,       config_.M, config_.ef_construction,
                          ef_search(), slots,    size()};
  bundle.doubles["min_live_ratio"] = {config_.min_live_ratio};
  bundle.uints["seed"] = {config_.seed};
  bundle.uints["entry"] = {entry_.load(std::memory_order_acquire)};
  bundle.uints["rng"] = level_rng_.GetState();
  if (slots > 0) {
    std::vector<float> rows(static_cast<size_t>(slots * dim_));
    auto& ids = bundle.ints["ids"];
    auto& levels = bundle.ints32["levels"];
    auto& dead = bundle.ints32["dead"];
    auto& links0 = bundle.ints32["links0"];
    auto& upper = bundle.ints32["upper"];
    ids.reserve(static_cast<size_t>(slots));
    levels.reserve(static_cast<size_t>(slots));
    dead.reserve(static_cast<size_t>(slots));
    links0.reserve(static_cast<size_t>(slots * (max_m0_ + 1)));
    // Link lists are written at their fixed on-disk stride with the unused
    // tail zero-filled (the in-memory tail past list[0] is uninitialized),
    // so identical graphs serialize to identical bytes.
    const auto append_list = [](std::vector<int32_t>* dst,
                                const int32_t* list, int64_t cap) {
      const int32_t count = list[0];
      dst->push_back(count);
      dst->insert(dst->end(), list + 1, list + 1 + count);
      dst->insert(dst->end(), static_cast<size_t>(cap - count), 0);
    };
    for (int64_t slot = 0; slot < slots; ++slot) {
      std::memcpy(rows.data() + slot * dim_, RowPtr(slot),
                  static_cast<size_t>(dim_) * sizeof(float));
      ids.push_back(IdAt(slot));
      const int32_t level = LevelAt(slot);
      levels.push_back(level);
      dead.push_back(IsDead(slot) ? 1 : 0);
      append_list(&links0, LinkListPtr(slot, 0), max_m0_);
      for (int32_t l = 1; l <= level; ++l) {
        append_list(&upper, LinkListPtr(slot, l), config_.M);
      }
    }
    bundle.tensors.emplace(
        "rows", tensor::Tensor::FromVector(tensor::Shape({slots, dim_}),
                                           std::move(rows)));
  }
  return tensor::SaveBundle(path, kHnswMetaTag, bundle);
}

common::Result<std::unique_ptr<HnswIndex>> HnswIndex::Load(
    const std::string& path) {
  START_ASSIGN_OR_RETURN(tensor::LoadedBundle loaded,
                         tensor::LoadBundle(path));
  if (loaded.meta_tag != kHnswMetaTag) {
    return common::Status::InvalidArgument(
        path + " is not an HNSW index artifact (meta tag mismatch)");
  }
  const tensor::RecordBundle& rec = loaded.records;
  const auto bad = [&path](const std::string& what) {
    return common::Status::InvalidArgument("corrupt HNSW artifact " + path +
                                           ": " + what);
  };
  const auto shape_it = rec.ints.find("shape");
  if (shape_it == rec.ints.end() || shape_it->second.size() != 6) {
    return bad("missing shape record");
  }
  const std::vector<int64_t>& shape = shape_it->second;
  const int64_t dim = shape[0];
  const int64_t slots = shape[4];
  const int64_t live = shape[5];
  if (dim <= 0 || shape[1] < 2 || shape[2] < 1 || shape[3] < 1 || slots < 0 ||
      slots > kMaxBlocks * kBlockRows || live < 0 || live > slots) {
    return bad("implausible shape fields");
  }
  const auto mlr_it = rec.doubles.find("min_live_ratio");
  const auto seed_it = rec.uints.find("seed");
  const auto entry_it = rec.uints.find("entry");
  const auto rng_it = rec.uints.find("rng");
  if (mlr_it == rec.doubles.end() || mlr_it->second.size() != 1 ||
      seed_it == rec.uints.end() || seed_it->second.size() != 1 ||
      entry_it == rec.uints.end() || entry_it->second.size() != 1 ||
      rng_it == rec.uints.end() || rng_it->second.size() != 6) {
    return bad("missing config records");
  }
  HnswConfig config;
  config.M = shape[1];
  config.ef_construction = shape[2];
  config.ef_search = shape[3];
  config.seed = seed_it->second[0];
  config.min_live_ratio = mlr_it->second[0];
  if (!(config.min_live_ratio > 0.0) || config.min_live_ratio > 1.0) {
    return bad("min_live_ratio out of range");
  }
  auto out = std::make_unique<HnswIndex>(dim, config);
  out->level_rng_.SetState(rng_it->second);
  const uint64_t entry = entry_it->second[0];
  if (slots == 0) {
    if (entry != kNoEntry) return bad("entry point without nodes");
    return out;
  }
  const auto rows_it = rec.tensors.find("rows");
  const auto ids_it = rec.ints.find("ids");
  const auto levels_it = rec.ints32.find("levels");
  const auto dead_it = rec.ints32.find("dead");
  const auto links0_it = rec.ints32.find("links0");
  const auto upper_it = rec.ints32.find("upper");
  if (rows_it == rec.tensors.end() || ids_it == rec.ints.end() ||
      levels_it == rec.ints32.end() || dead_it == rec.ints32.end() ||
      links0_it == rec.ints32.end() || upper_it == rec.ints32.end()) {
    return bad("missing node records");
  }
  const tensor::Tensor& rows = rows_it->second;
  const std::vector<int64_t>& ids = ids_it->second;
  const std::vector<int32_t>& levels = levels_it->second;
  const std::vector<int32_t>& dead = dead_it->second;
  const std::vector<int32_t>& links0 = links0_it->second;
  const std::vector<int32_t>& upper = upper_it->second;
  const int64_t max_m0 = 2 * config.M;
  if (rows.ndim() != 2 || rows.dim(0) != slots || rows.dim(1) != dim ||
      static_cast<int64_t>(ids.size()) != slots ||
      static_cast<int64_t>(levels.size()) != slots ||
      static_cast<int64_t>(dead.size()) != slots ||
      static_cast<int64_t>(links0.size()) != slots * (max_m0 + 1)) {
    return bad("node record sizes disagree with shape");
  }
  // Copies `cap + 1` ints of one on-disk link list into `dst` after
  // validating the count and every neighbor slot (forward references are
  // legal: backlinks point at later-inserted nodes).
  const auto load_list = [slots](const int32_t* src, int64_t cap,
                                 int32_t* dst) {
    const int32_t count = src[0];
    if (count < 0 || count > cap) return false;
    for (int32_t i = 0; i < count; ++i) {
      if (src[1 + i] < 0 || src[1 + i] >= slots) return false;
    }
    std::memcpy(dst, src, static_cast<size_t>(cap + 1) * sizeof(int32_t));
    return true;
  };
  int64_t upper_cursor = 0;
  int64_t live_seen = 0;
  for (int64_t slot = 0; slot < slots; ++slot) {
    const int32_t level = levels[static_cast<size_t>(slot)];
    const int32_t dead_flag = dead[static_cast<size_t>(slot)];
    if (level < 0 || level > kMaxLevel) return bad("node level out of range");
    if (dead_flag != 0 && dead_flag != 1) return bad("non-boolean dead flag");
    if ((slot >> kBlockRowsLog2) >= out->num_blocks_) {
      auto* block = new Block(dim, max_m0);
      out->blocks_[static_cast<size_t>(out->num_blocks_)].store(
          block, std::memory_order_release);
      ++out->num_blocks_;
    }
    Block* b = out->blocks_[static_cast<size_t>(slot >> kBlockRowsLog2)].load(
        std::memory_order_relaxed);
    const int64_t in = slot & (kBlockRows - 1);
    std::memcpy(b->rows.get() + in * dim, rows.data() + slot * dim,
                static_cast<size_t>(dim) * sizeof(float));
    b->ids[in] = ids[static_cast<size_t>(slot)];
    b->levels[in] = level;
    b->dead[in].store(dead_flag, std::memory_order_relaxed);
    if (!load_list(links0.data() + slot * (max_m0 + 1), max_m0,
                   b->links0.get() + in * (max_m0 + 1))) {
      return bad("invalid level-0 link list");
    }
    int64_t upper_offset = -1;
    if (level > 0) {
      const int64_t span = level * (config.M + 1);
      if (upper_cursor + span > static_cast<int64_t>(upper.size())) {
        return bad("truncated upper adjacency");
      }
      // Re-run the arena bump allocation (including the chunk-straddle
      // skip) exactly as InsertNormalized did in slot order, so offsets —
      // and therefore post-load inserts — match the never-saved index.
      if ((out->upper_used_ & (kUpperChunkInts - 1)) + span >
          kUpperChunkInts) {
        out->upper_used_ = (out->upper_used_ | (kUpperChunkInts - 1)) + 1;
      }
      const int64_t chunk_idx = out->upper_used_ >> kUpperChunkLog2;
      if (chunk_idx >= kMaxUpperChunks) {
        return bad("upper-link arena exhausted");
      }
      if (chunk_idx >= out->num_upper_chunks_) {
        out->upper_chunks_[static_cast<size_t>(chunk_idx)].store(
            new int32_t[static_cast<size_t>(kUpperChunkInts)],
            std::memory_order_release);
        ++out->num_upper_chunks_;
      }
      upper_offset = out->upper_used_;
      out->upper_used_ += span;
      int32_t* chunk = out->upper_chunks_[static_cast<size_t>(chunk_idx)]
                           .load(std::memory_order_relaxed);
      for (int32_t l = 0; l < level; ++l) {
        if (!load_list(
                upper.data() + upper_cursor + l * (config.M + 1), config.M,
                chunk + (upper_offset & (kUpperChunkInts - 1)) +
                    l * (config.M + 1))) {
          return bad("invalid upper link list");
        }
      }
      upper_cursor += span;
    }
    b->upper_offsets[in] = upper_offset;
    if (dead_flag == 0) {
      if (!out->id_to_slot_.emplace(ids[static_cast<size_t>(slot)], slot)
               .second) {
        return bad("duplicate live id");
      }
      ++live_seen;
    }
  }
  if (upper_cursor != static_cast<int64_t>(upper.size())) {
    return bad("trailing upper adjacency");
  }
  if (live_seen != live) return bad("live count disagrees with tombstones");
  if (entry == kNoEntry) return bad("no entry point with nodes present");
  const int64_t entry_slot = EntrySlot(entry);
  if (entry_slot < 0 || entry_slot >= slots ||
      levels[static_cast<size_t>(entry_slot)] != EntryLevel(entry)) {
    return bad("entry point out of range");
  }
  out->entry_.store(entry, std::memory_order_release);
  out->live_.store(live, std::memory_order_release);
  out->slot_count_.store(slots, std::memory_order_release);
  return out;
}

void HnswIndex::SetEfSearch(int64_t ef_search) {
  ef_search_.store(std::max<int64_t>(ef_search, 1),
                   std::memory_order_relaxed);
}

int64_t HnswIndex::max_level() const {
  const uint64_t e = entry_.load(std::memory_order_acquire);
  return e == kNoEntry ? -1 : EntryLevel(e);
}

int64_t HnswIndex::EvalQueryDepth() const {
  return std::max<int64_t>(ef_search(), 64);
}

std::vector<int64_t> HnswIndex::GetNeighbors(int64_t id,
                                             int64_t level) const {
  int64_t slot = -1;
  {
    std::shared_lock<std::shared_mutex> read(ids_mu_);
    const auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end()) return {};
    slot = it->second;
  }
  if (level < 0 || level > LevelAt(slot)) return {};
  std::vector<int32_t> slots;
  CopyNeighbors(slot, level, &slots);
  std::vector<int64_t> out;
  out.reserve(slots.size());
  for (const int32_t s : slots) out.push_back(IdAt(s));
  return out;
}

int64_t HnswIndex::NodeLevel(int64_t id) const {
  std::shared_lock<std::shared_mutex> read(ids_mu_);
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return -1;
  return LevelAt(it->second);
}

std::unique_ptr<HnswIndex::Scratch> HnswIndex::AcquireScratch() const {
  std::lock_guard<std::mutex> guard(pool_mu_);
  if (!pool_.empty()) {
    std::unique_ptr<Scratch> s = std::move(pool_.back());
    pool_.pop_back();
    return s;
  }
  return std::make_unique<Scratch>();
}

void HnswIndex::ReleaseScratch(std::unique_ptr<Scratch> s) const {
  std::lock_guard<std::mutex> guard(pool_mu_);
  pool_.push_back(std::move(s));
}

}  // namespace start::serve
