#include "serve/embedding_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/check.h"
#include "tensor/kernels.h"

namespace start::serve {

namespace {

using internal::NormalizeInto;

/// Rows scored per GemmNT call: keeps the scored block plus the query in
/// cache while still amortizing the call overhead.
constexpr int64_t kScoreBlockRows = 1024;

}  // namespace

EmbeddingIndex::EmbeddingIndex(int64_t dim) : dim_(dim) {
  START_CHECK_GT(dim, 0);
}

int64_t EmbeddingIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(slot_to_id_.size());
}

bool EmbeddingIndex::Contains(int64_t id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return id_to_slot_.count(id) > 0;
}

common::Status EmbeddingIndex::Add(int64_t id, const float* embedding,
                                   int64_t dim) {
  return AddBatch({id}, std::vector<float>(embedding, embedding + dim));
}

common::Status EmbeddingIndex::AddBatch(const std::vector<int64_t>& ids,
                                        const std::vector<float>& rows) {
  const int64_t n = static_cast<int64_t>(ids.size());
  if (static_cast<int64_t>(rows.size()) != n * dim_) {
    return common::Status::InvalidArgument(
        "AddBatch rows have " + std::to_string(rows.size()) +
        " floats; expected ids * dim = " + std::to_string(n * dim_));
  }
  // Everything that needs no index state runs before the exclusive lock:
  // the O(n·d) normalize pass (with zero-vector rejection) and the
  // batch-internal duplicate check. A bulk load therefore blocks readers
  // only for the duplicate-vs-index check and the row append.
  std::vector<float> normalized(rows.size());
  for (int64_t i = 0; i < n; ++i) {
    if (!NormalizeInto(rows.data() + i * dim_, dim_,
                       normalized.data() + i * dim_)) {
      return common::Status::InvalidArgument(
          "zero-norm embedding for id " + std::to_string(ids[i]) +
          " (cosine similarity undefined)");
    }
  }
  std::unordered_set<int64_t> batch_ids;
  for (const int64_t id : ids) {
    if (!batch_ids.insert(id).second) {
      return common::Status::AlreadyExists("id " + std::to_string(id) +
                                           " duplicated within the batch");
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Validate against the index before mutating, so a failed bulk add stays
  // atomic.
  for (const int64_t id : ids) {
    if (id_to_slot_.count(id) > 0) {
      return common::Status::AlreadyExists("id " + std::to_string(id) +
                                           " already indexed");
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    id_to_slot_.emplace(ids[i], static_cast<int64_t>(slot_to_id_.size()));
    slot_to_id_.push_back(ids[i]);
  }
  rows_.insert(rows_.end(), normalized.begin(), normalized.end());
  return common::Status::OK();
}

common::Status EmbeddingIndex::Remove(int64_t id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) {
    return common::Status::NotFound("id " + std::to_string(id) +
                                    " not indexed");
  }
  const int64_t slot = it->second;
  const int64_t last = static_cast<int64_t>(slot_to_id_.size()) - 1;
  if (slot != last) {
    // Swap the final row into the hole; its id keeps working under the
    // documented caveat that its tie-break slot changes.
    std::memcpy(rows_.data() + slot * dim_, rows_.data() + last * dim_,
                static_cast<size_t>(dim_) * sizeof(float));
    slot_to_id_[static_cast<size_t>(slot)] = slot_to_id_[static_cast<size_t>(last)];
    id_to_slot_[slot_to_id_[static_cast<size_t>(slot)]] = slot;
  }
  slot_to_id_.pop_back();
  rows_.resize(slot_to_id_.size() * static_cast<size_t>(dim_));
  id_to_slot_.erase(it);
  return common::Status::OK();
}

void EmbeddingIndex::ScoreAll(const float* query,
                              std::vector<float>* scores) const {
  const int64_t n = static_cast<int64_t>(slot_to_id_.size());
  scores->assign(static_cast<size_t>(n), 0.0f);  // GemmNT accumulates
  for (int64_t begin = 0; begin < n; begin += kScoreBlockRows) {
    const int64_t block = std::min(kScoreBlockRows, n - begin);
    tensor::internal::GemmNT(query, dim_, rows_.data() + begin * dim_, dim_,
                             scores->data() + begin, block, /*m=*/1,
                             /*k=*/dim_, /*n=*/block);
  }
}

common::Result<std::vector<EmbeddingIndex::Neighbor>> EmbeddingIndex::Query(
    const float* query, int64_t dim, int64_t k) const {
  if (dim != dim_) {
    return common::Status::InvalidArgument(
        "query dim " + std::to_string(dim) + " vs index dim " +
        std::to_string(dim_));
  }
  if (k <= 0) {
    return common::Status::InvalidArgument("k must be positive");
  }
  std::vector<float> normalized(static_cast<size_t>(dim_));
  if (!NormalizeInto(query, dim_, normalized.data())) {
    return common::Status::InvalidArgument("zero-norm query");
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (slot_to_id_.empty()) return std::vector<Neighbor>{};
  std::vector<float> scores;
  ScoreAll(normalized.data(), &scores);
  // Heap selection through the one retrieval primitive (sim::TopK):
  // ascending distance = descending similarity, ties toward lower slots =
  // earlier-inserted entries.
  const auto slots =
      sim::TopK(static_cast<int64_t>(scores.size()), k, [&](int64_t i) {
        return -static_cast<double>(scores[static_cast<size_t>(i)]);
      });
  std::vector<Neighbor> out;
  out.reserve(slots.size());
  for (const int64_t slot : slots) {
    out.push_back(Neighbor{slot_to_id_[static_cast<size_t>(slot)],
                           scores[static_cast<size_t>(slot)]});
  }
  return out;
}

common::Result<sim::RankMetrics> EmbeddingIndex::EvaluateMostSimilar(
    const std::vector<float>& queries, int64_t nq,
    const std::vector<int64_t>& gt_id) const {
  if (nq <= 0) {
    return common::Status::InvalidArgument("need at least one query");
  }
  if (static_cast<int64_t>(queries.size()) != nq * dim_) {
    return common::Status::InvalidArgument("queries must be [nq, dim]");
  }
  if (static_cast<int64_t>(gt_id.size()) != nq) {
    return common::Status::InvalidArgument("gt_id must have one id per query");
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<int64_t> gt_slot(static_cast<size_t>(nq));
  for (int64_t q = 0; q < nq; ++q) {
    const auto gt = id_to_slot_.find(gt_id[static_cast<size_t>(q)]);
    if (gt == id_to_slot_.end()) {
      return common::Status::NotFound(
          "ground-truth id " + std::to_string(gt_id[static_cast<size_t>(q)]) +
          " not indexed");
    }
    gt_slot[static_cast<size_t>(q)] = gt->second;
  }
  std::vector<float> normalized(static_cast<size_t>(dim_));
  for (int64_t q = 0; q < nq; ++q) {
    if (!NormalizeInto(queries.data() + q * dim_, dim_, normalized.data())) {
      return common::Status::InvalidArgument("zero-norm query " +
                                             std::to_string(q));
    }
  }
  // Rank through the one shared search core (sim/search.cc owns the
  // rank/tie/metric-averaging rules): distance = -cosine over slots, scored
  // once per query since MostSimilarSearch walks queries in order.
  std::vector<float> scores;
  int64_t scored_q = -1;
  const auto distance = [&](int64_t q, int64_t i) {
    if (q != scored_q) {
      NormalizeInto(queries.data() + q * dim_, dim_, normalized.data());
      ScoreAll(normalized.data(), &scores);
      scored_q = q;
    }
    return -static_cast<double>(scores[static_cast<size_t>(i)]);
  };
  return sim::MostSimilarSearch(nq, static_cast<int64_t>(slot_to_id_.size()),
                                distance, gt_slot);
}

}  // namespace start::serve
