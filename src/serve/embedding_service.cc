#include "serve/embedding_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "data/batch.h"

namespace start::serve {

namespace {
/// How many max-size batches one worker may drain per dispatch. Draining
/// more than one batch's worth is what gives data::BucketBatchPlan several
/// batches to route lengths into under burst load; bounding it keeps other
/// workers fed.
constexpr int64_t kBurstBatches = 4;
}  // namespace

EmbeddingService::EmbeddingService(const FrozenEncoder* encoder,
                                   const ServiceConfig& config)
    : encoder_(encoder), config_(config) {
  START_CHECK(encoder_ != nullptr);
  START_CHECK_GT(config_.max_batch_size, 0);
  START_CHECK_GT(config_.max_queue_depth, 0);
  START_CHECK_GE(config_.batch_deadline_us, 0);
  START_CHECK_GT(config_.num_workers, 0);
  START_CHECK_GT(config_.bucket_width, 0);
  pool_ = std::make_unique<common::ThreadPool>(config_.num_workers);
  for (int w = 0; w < config_.num_workers; ++w) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

EmbeddingService::~EmbeddingService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_arrival_.notify_all();
  cv_space_.notify_all();
  // Workers drain every queued request before exiting, so no promise is
  // left broken; the pool destructor joins them.
  pool_.reset();
}

common::Result<std::future<EmbeddingRow>> EmbeddingService::Encode(
    const traj::Trajectory& trajectory, eval::EncodeMode mode) {
  START_RETURN_IF_ERROR(encoder_->Validate(trajectory));
  Request request;
  request.trajectory = trajectory;  // owned copy: caller's may go away
  request.mode = mode;
  std::future<EmbeddingRow> future = request.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [&] {
      return stopping_ ||
             static_cast<int64_t>(queue_.size()) < config_.max_queue_depth;
    });
    if (stopping_) {
      return common::Status::FailedPrecondition(
          "EmbeddingService is shutting down");
    }
    queue_.push_back(std::move(request));
  }
  cv_arrival_.notify_one();
  return future;
}

common::Result<std::vector<float>> EmbeddingService::EncodeSync(
    const traj::Trajectory& trajectory, eval::EncodeMode mode) {
  START_ASSIGN_OR_RETURN(std::future<EmbeddingRow> future,
                         Encode(trajectory, mode));
  return future.get().ToVector();
}

ServiceStats EmbeddingService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void EmbeddingService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_arrival_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping, and everything is drained
    // Deadline coalescing: once work exists, give concurrent clients a
    // short window to join this burst instead of encoding a batch of one.
    if (config_.batch_deadline_us > 0 && !stopping_) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.batch_deadline_us);
      while (!stopping_ &&
             static_cast<int64_t>(queue_.size()) < config_.max_batch_size &&
             cv_arrival_.wait_until(lock, deadline) !=
                 std::cv_status::timeout) {
      }
    }
    const int64_t take =
        std::min<int64_t>(static_cast<int64_t>(queue_.size()),
                          kBurstBatches * config_.max_batch_size);
    std::vector<Request> burst;
    burst.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      burst.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    cv_space_.notify_all();
    lock.unlock();
    EncodeBurst(&burst);
    lock.lock();
  }
}

void EmbeddingService::EncodeBurst(std::vector<Request>* burst) {
  // Batches must be mode-homogeneous (one EncodeBatch call per mode), and
  // within a mode the burst is split into length-homogeneous batches so a
  // short errand does not get padded to a cross-town commute's length.
  for (const eval::EncodeMode mode :
       {eval::EncodeMode::kFull, eval::EncodeMode::kDepartureOnly}) {
    std::vector<int64_t> order;   // burst indices with this mode
    std::vector<int64_t> lengths;  // indexed by burst position
    lengths.reserve(burst->size());
    for (size_t i = 0; i < burst->size(); ++i) {
      lengths.push_back((*burst)[i].trajectory.size());
      if ((*burst)[i].mode == mode) order.push_back(static_cast<int64_t>(i));
    }
    if (order.empty()) continue;
    const auto plan = data::BucketBatchPlan(
        lengths, order, config_.max_batch_size, config_.bucket_width);
    for (const auto& step : plan) {
      std::vector<const traj::Trajectory*> batch;
      batch.reserve(step.size());
      int64_t real = 0, longest = 0;
      for (const int64_t i : step) {
        auto& r = (*burst)[static_cast<size_t>(i)];
        batch.push_back(&r.trajectory);
        real += r.trajectory.size();
        longest = std::max(longest, r.trajectory.size());
      }
      const tensor::Tensor reps = encoder_->EncodeBatch(batch, mode);
      {
        // Count the batch before resolving its futures, so a client that has
        // joined on all its requests sees fully-updated counters.
        std::lock_guard<std::mutex> stats_lock(mu_);
        stats_.requests += static_cast<int64_t>(step.size());
        stats_.batches += 1;
        stats_.real_tokens += real;
        stats_.padded_tokens += longest * static_cast<int64_t>(step.size());
      }
      for (size_t row = 0; row < step.size(); ++row) {
        (*burst)[static_cast<size_t>(step[row])].promise.set_value(
            EmbeddingRow(reps, static_cast<int64_t>(row)));
      }
    }
  }
}

}  // namespace start::serve
