#ifndef START_SERVE_CITY_ROUTER_H_
#define START_SERVE_CITY_ROUTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "roadnet/graph_registry.h"
#include "serve/index_interface.h"
#include "serve/stream_pipeline.h"

namespace start::serve {

/// \brief Multi-city serving front end: routes streaming ingestion, ANN
/// queries, and travel-time estimates to the right city's graph plane and
/// serving lane, so one process serves any number of cities.
///
/// The graph side (RoadNetwork + CsrGraph + ChEngine) comes from a
/// roadnet::GraphRegistry; the serving side (frozen encoder, ANN index,
/// streaming pipeline) is opened per city with OpenCity(). A lane's
/// pipeline map-matches against its own city's network, so trajectories
/// from different cities never mix.
///
/// Thread-safety: OpenCity/Push/Query/TravelTimeSeconds/Flush/stats may be
/// called concurrently from any number of threads. Push/Query on one city
/// proceed while another city is being opened.
class CityRouter {
 public:
  /// Serving dependencies of one city. `encoder` and `index` must outlive
  /// the router; the encoder must have been trained/loaded against the
  /// city's own road network.
  struct CityConfig {
    const FrozenEncoder* encoder = nullptr;
    IndexInterface* index = nullptr;
    StreamConfig stream;
  };

  /// `registry` must outlive the router.
  explicit CityRouter(const roadnet::GraphRegistry* registry);
  ~CityRouter();

  CityRouter(const CityRouter&) = delete;
  CityRouter& operator=(const CityRouter&) = delete;

  /// Opens a serving lane for a city already present in the registry.
  /// kNotFound if the registry has no such city, kAlreadyExists if a lane is
  /// already open, kInvalidArgument on null encoder/index.
  common::Status OpenCity(const std::string& city, CityConfig config);

  /// Routes one GPS trajectory into `city`'s streaming pipeline.
  common::Status Push(std::string_view city, StreamItem item);

  /// k-nearest-neighbour query against `city`'s index.
  common::Result<std::vector<Neighbor>> Query(std::string_view city,
                                              const std::vector<float>& query,
                                              int64_t k) const;

  /// Exact free-flow travel time (seconds) between two road segments of
  /// `city`, answered by the city's contraction hierarchy. kNotFound for an
  /// unknown city or unreachable pair, kOutOfRange for bad segment ids.
  common::Result<double> TravelTimeSeconds(std::string_view city,
                                           int64_t from_segment,
                                           int64_t to_segment) const;

  /// Blocks until every accepted item of `city` is ingested.
  common::Status Flush(std::string_view city);

  /// Pipeline counters of one city's lane.
  common::Result<PipelineStats> Stats(std::string_view city) const;

  /// Cities with an open serving lane, sorted.
  std::vector<std::string> Cities() const;

 private:
  struct Lane {
    std::shared_ptr<const roadnet::CityGraph> graph;
    CityConfig config;
    std::unique_ptr<StreamPipeline> pipeline;
    // Reusable CH query contexts (O(|V|) each); guarded by ctx_mu.
    std::mutex ctx_mu;
    std::vector<roadnet::ChEngine::QueryContext> contexts;
  };

  std::shared_ptr<Lane> GetLane(std::string_view city) const;

  const roadnet::GraphRegistry* registry_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<Lane>, std::less<>> lanes_;
};

}  // namespace start::serve

#endif  // START_SERVE_CITY_ROUTER_H_
