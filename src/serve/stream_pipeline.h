#ifndef START_SERVE_STREAM_PIPELINE_H_
#define START_SERVE_STREAM_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/fault_hooks.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "roadnet/road_network.h"
#include "serve/drift_monitor.h"
#include "serve/embedding_service.h"
#include "serve/frozen_encoder.h"
#include "serve/index_interface.h"
#include "traj/map_matching.h"
#include "traj/trajectory.h"

namespace start::serve {

/// One raw unit of the live stream: a GPS point trajectory plus the id it
/// will be indexed under once ingested.
struct StreamItem {
  int64_t id = 0;
  traj::GpsTrajectory gps;
};

/// What a stage does when its downstream queue is full.
enum class OverflowPolicy {
  kBlock,       ///< Backpressure: the producer waits for space (default).
  kDropNewest,  ///< Load shedding: the new item is dropped and counted.
};

/// Knobs of the staged pipeline.
struct StreamConfig {
  int match_workers = 2;  ///< HMM map-matching workers (the CPU-bound stage).
  int embed_workers = 2;  ///< Workers round-tripping the EmbeddingService.

  // Per-stage queue bounds (items waiting to ENTER the stage).
  int64_t match_queue_depth = 128;
  int64_t embed_queue_depth = 128;
  int64_t upsert_queue_depth = 128;
  /// Global bound on accepted-but-not-finalized items; also bounds the
  /// finalizer's reorder buffer, so pipeline memory is O(max_in_flight)
  /// regardless of stalls.
  int64_t max_in_flight = 1024;

  OverflowPolicy overflow = OverflowPolicy::kBlock;

  /// Transient-failure policy: a stage attempt that fails with anything but
  /// InvalidArgument is retried up to this many times, sleeping
  /// retry_backoff_us << attempt between attempts (exponential backoff).
  int max_retries = 3;
  int64_t retry_backoff_us = 200;

  /// Matched trajectories shorter than this are failed (matching noise).
  int64_t min_roads = 2;

  traj::HmmMapMatcher::Config matcher;  ///< Map-matching knobs.
  ServiceConfig service;                ///< Micro-batching embed service.
  eval::EncodeMode mode = eval::EncodeMode::kFull;
};

/// Monotonic counters + queue/latency snapshot of one stage.
struct StageStats {
  int64_t completed = 0;  ///< Items the stage finished successfully.
  int64_t failed = 0;     ///< Items that permanently failed in the stage.
  int64_t dropped = 0;    ///< Items dropped at the stage's queue (kDropNewest).
  int64_t retried = 0;    ///< Transient-failure retry attempts.
  int64_t queue_depth = 0;  ///< Items currently waiting to enter the stage.
  double p50_ms = 0.0;    ///< Median stage latency (recent items).
  double p95_ms = 0.0;
};

/// Whole-pipeline snapshot. Accounting identity (holds exactly once the
/// pipeline is drained or flushed): accepted == ingested() + total_failed()
/// + embed.dropped + upsert.dropped. match.dropped counts ingress load
/// shedding (items never accepted).
struct PipelineStats {
  int64_t pushed = 0;    ///< Push() calls.
  int64_t rejected = 0;  ///< Pushes rejected by validation (empty GPS).
  int64_t accepted = 0;  ///< Items that entered the pipeline (got a seq).
  StageStats match, embed, upsert;
  int64_t in_flight = 0;  ///< Accepted but not yet finalized.

  int64_t ingested() const { return upsert.completed; }
  int64_t total_failed() const {
    return match.failed + embed.failed + upsert.failed;
  }
  int64_t total_dropped() const {
    return match.dropped + embed.dropped + upsert.dropped;
  }
};

/// \brief The streaming ingestion pipeline: live GPS trajectories in, index
/// upserts + drift statistics out, while queries run against the index.
///
/// Stages (each with a bounded inbound queue):
///
///   Push(gps) -> [match workers]  HMM map matching -> road trajectory
///             -> [embed workers]  micro-batched EmbeddingService round trip
///             -> [finalizer]      in-order index upsert + drift observe
///
/// The finalizer is single-threaded and processes items strictly in
/// arrival (sequence) order, whatever the worker counts upstream: workers
/// deliver out-of-order completions into a reorder buffer bounded by
/// max_in_flight. Combined with the frozen engine's batch-composition
/// invariance, this makes ingestion deterministic: the same accepted
/// stream produces bitwise-identical embeddings, the same index insertion
/// order, and bitwise-identical drift windows for ANY
/// (match_workers, embed_workers, service) configuration — the replay
/// contract tests/stream_pipeline_test.cc asserts.
///
/// Failure policy: transient stage failures (the FaultHooks seam, service
/// hiccups) retry with exponential backoff; permanent failures (matching
/// came up empty, validation) are counted and the item is skipped —
/// never half-ingested: an item either reaches the index AND the drift
/// monitor AND the callback, or is accounted failed/dropped.
///
/// Backpressure: with OverflowPolicy::kBlock (default), a full queue stalls
/// the producer side and Push() eventually blocks — memory stays bounded
/// and nothing is lost. With kDropNewest the pipeline sheds load instead:
/// drops are counted per stage (the drop markers still flow to the
/// finalizer so ordering and accounting stay exact).
///
/// Shutdown: Drain() (also the destructor) stops accepting, lets every
/// stage finish everything already accepted, then joins the workers.
///
/// Thread-safety: Push()/stats()/Flush() may be called from any number of
/// threads. The index must be one of the serve:: backends (their contract
/// already allows concurrent queries during writes). Verified race-free
/// under ThreadSanitizer (stream_pipeline_test in the tsan CI job).
class StreamPipeline {
 public:
  /// Invoked by the finalizer after an item is fully ingested (index upsert
  /// done, drift observed), in sequence order.
  using IngestedCallback = std::function<void(
      int64_t id, const traj::Trajectory& traj, const EmbeddingRow& row)>;

  /// `encoder`, `net`, `index` (and `drift`/`hooks` when given) must
  /// outlive the pipeline. `drift` and `hooks` may be nullptr (no drift
  /// tracking / no injection).
  StreamPipeline(const FrozenEncoder* encoder,
                 const roadnet::RoadNetwork* net, IndexInterface* index,
                 const StreamConfig& config = {},
                 DriftMonitor* drift = nullptr,
                 const common::FaultHooks* hooks = nullptr);
  ~StreamPipeline();

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Installs the ingested callback. Must be called before the first Push().
  void SetOnIngested(IngestedCallback callback);

  /// \brief Submits one GPS trajectory.
  ///
  /// Returns InvalidArgument for an empty trajectory, FailedPrecondition
  /// after Drain() has begun. Under kBlock, blocks while the match queue or
  /// the in-flight bound is full; under kDropNewest the item may instead be
  /// shed (counted in match.dropped) and Push still returns OK — load
  /// shedding is an accounted outcome, not an error.
  common::Status Push(StreamItem item);

  /// Blocks until every accepted item has been finalized (queues empty).
  /// New pushes stay allowed; concurrent pushers can starve a Flush.
  void Flush();

  /// Stops accepting, drains every accepted item through all stages, joins
  /// the workers. Idempotent; called by the destructor.
  void Drain();

  /// Snapshot of all counters, queue depths, and stage latencies.
  PipelineStats stats() const;

  const FrozenEncoder* encoder() const { return encoder_; }
  IndexInterface* index() const { return index_; }

 private:
  struct Work {
    int64_t seq = 0;
    int64_t id = 0;
    traj::GpsTrajectory gps;  ///< Payload into the match stage.
    traj::Trajectory traj;    ///< Payload into the embed stage.
  };

  enum class OutcomeKind { kIngest, kDropped, kFailed };

  /// Exactly one Outcome per accepted seq reaches the finalizer.
  struct Outcome {
    int64_t seq = 0;
    int64_t id = 0;
    OutcomeKind kind = OutcomeKind::kFailed;
    traj::Trajectory traj;  ///< kIngest only.
    EmbeddingRow row;       ///< kIngest only.
  };

  struct WorkQueue {
    mutable std::mutex mu;
    std::condition_variable cv_space, cv_item;
    std::deque<Work> q;
    bool closed = false;
  };

  /// Outcome channel into the finalizer. Capacity counts only kIngest
  /// payloads; dropped/failed markers are a few words and always accepted,
  /// so no accepted seq can ever be lost. Under kBlock a payload's credit
  /// is returned when the finalizer pops it; under kDropNewest only when it
  /// is finalized, so a full queue means the finalizer is genuinely behind
  /// (see FinalizeLoop).
  struct OutcomeQueue {
    mutable std::mutex mu;
    std::condition_variable cv_space, cv_item;
    std::deque<Outcome> q;
    int64_t payload = 0;
    bool closed = false;
  };

  struct StageCounters {
    std::atomic<int64_t> completed{0}, failed{0}, dropped{0}, retried{0};
  };

  /// Ring of recent per-item stage latencies for the p50/p95 snapshot.
  struct LatencyRing {
    static constexpr size_t kCapacity = 4096;
    mutable std::mutex mu;
    std::vector<double> ms;
    size_t next = 0;

    void Record(double value);
    void Percentiles(double* p50, double* p95) const;
  };

  void MatchLoop();
  void EmbedLoop();
  void FinalizeLoop();
  void ProcessOutcome(Outcome* o);

  /// Retries hooks_->BeforeStage per the transient-failure policy.
  common::Status RunWithRetry(const char* stage, int64_t seq,
                              StageCounters* counters);
  bool PopWork(WorkQueue* q, Work* out);
  /// Pushes into a stage queue per the overflow policy; false == dropped
  /// (already counted against `door`).
  bool PushWork(WorkQueue* q, int64_t depth, Work w, StageCounters* door);
  void EmitOutcome(Outcome o);

  const FrozenEncoder* encoder_;
  const roadnet::RoadNetwork* net_;
  IndexInterface* index_;
  const StreamConfig config_;
  DriftMonitor* drift_;
  const common::FaultHooks* hooks_;
  IngestedCallback on_ingested_;

  std::unique_ptr<EmbeddingService> service_;

  WorkQueue match_q_;
  WorkQueue embed_q_;
  OutcomeQueue outcome_q_;

  // Guarded by match_q_.mu (the ingress lock).
  bool accepting_ = true;
  int64_t next_seq_ = 0;
  int64_t in_flight_ = 0;
  std::condition_variable flush_cv_;

  std::atomic<int64_t> pushed_{0}, rejected_{0}, accepted_{0};
  StageCounters match_, embed_, upsert_;
  mutable LatencyRing match_lat_, embed_lat_, upsert_lat_;

  std::atomic<int> active_match_{0}, active_embed_{0};

  std::mutex drain_mu_;
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace start::serve

#endif  // START_SERVE_STREAM_PIPELINE_H_
