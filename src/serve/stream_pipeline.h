#ifndef START_SERVE_STREAM_PIPELINE_H_
#define START_SERVE_STREAM_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/fault_hooks.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "roadnet/road_network.h"
#include "serve/drift_monitor.h"
#include "serve/embedding_service.h"
#include "serve/frozen_encoder.h"
#include "serve/index_interface.h"
#include "traj/map_matching.h"
#include "traj/trajectory.h"

namespace start::serve {

/// One raw unit of the live stream: a GPS point trajectory plus the id it
/// will be indexed under once ingested.
struct StreamItem {
  int64_t id = 0;
  traj::GpsTrajectory gps;
};

/// \brief One complete serving snapshot: the frozen encoder, the ANN index
/// its embeddings are upserted into, and (optionally) the drift monitor
/// watching the stream.
///
/// The pipeline serves from exactly one bundle at a time and hot-swaps to a
/// new one atomically at a sequence boundary (SwapEngine). Ownership is
/// shared so a retired bundle stays alive until the last in-flight item
/// accepted under it has been finalized — the adaptation controller hands
/// the pipeline a freshly built bundle and may immediately drop its own
/// references. `drift` may be null (no drift tracking).
struct EngineBundle {
  std::shared_ptr<const FrozenEncoder> encoder;
  std::shared_ptr<IndexInterface> index;
  std::shared_ptr<DriftMonitor> drift;
};

/// What a stage does when its downstream queue is full.
enum class OverflowPolicy {
  kBlock,       ///< Backpressure: the producer waits for space (default).
  kDropNewest,  ///< Load shedding: the new item is dropped and counted.
};

/// Knobs of the staged pipeline.
struct StreamConfig {
  int match_workers = 2;  ///< HMM map-matching workers (the CPU-bound stage).
  int embed_workers = 2;  ///< Workers round-tripping the EmbeddingService.

  // Per-stage queue bounds (items waiting to ENTER the stage).
  int64_t match_queue_depth = 128;
  int64_t embed_queue_depth = 128;
  int64_t upsert_queue_depth = 128;
  /// Global bound on accepted-but-not-finalized items; also bounds the
  /// finalizer's reorder buffer, so pipeline memory is O(max_in_flight)
  /// regardless of stalls.
  int64_t max_in_flight = 1024;

  OverflowPolicy overflow = OverflowPolicy::kBlock;

  /// Transient-failure policy: a stage attempt that fails with anything but
  /// InvalidArgument is retried up to this many times, sleeping
  /// retry_backoff_us << attempt between attempts (exponential backoff).
  int max_retries = 3;
  int64_t retry_backoff_us = 200;

  /// Matched trajectories shorter than this are failed (matching noise).
  int64_t min_roads = 2;

  traj::HmmMapMatcher::Config matcher;  ///< Map-matching knobs.
  ServiceConfig service;                ///< Micro-batching embed service.
  eval::EncodeMode mode = eval::EncodeMode::kFull;
};

/// Monotonic counters + queue/latency snapshot of one stage.
struct StageStats {
  int64_t completed = 0;  ///< Items the stage finished successfully.
  int64_t failed = 0;     ///< Items that permanently failed in the stage.
  int64_t dropped = 0;    ///< Items dropped at the stage's queue (kDropNewest).
  int64_t retried = 0;    ///< Transient-failure retry attempts.
  int64_t queue_depth = 0;  ///< Items currently waiting to enter the stage.
  double p50_ms = 0.0;    ///< Median stage latency (recent items).
  double p95_ms = 0.0;
};

/// Whole-pipeline snapshot. Accounting identity (holds exactly once the
/// pipeline is drained or flushed): accepted == ingested() + total_failed()
/// + embed.dropped + upsert.dropped. match.dropped counts ingress load
/// shedding (items never accepted).
struct PipelineStats {
  int64_t pushed = 0;    ///< Push() calls.
  int64_t rejected = 0;  ///< Pushes rejected by validation (empty GPS).
  int64_t accepted = 0;  ///< Items that entered the pipeline (got a seq).
  StageStats match, embed, upsert;
  int64_t in_flight = 0;  ///< Accepted but not yet finalized.
  int64_t epoch = 0;      ///< Epoch of the currently serving engine bundle.
  int64_t swaps = 0;      ///< Successful SwapEngine() calls so far.

  int64_t ingested() const { return upsert.completed; }
  int64_t total_failed() const {
    return match.failed + embed.failed + upsert.failed;
  }
  int64_t total_dropped() const {
    return match.dropped + embed.dropped + upsert.dropped;
  }
};

/// \brief The streaming ingestion pipeline: live GPS trajectories in, index
/// upserts + drift statistics out, while queries run against the index.
///
/// Stages (each with a bounded inbound queue):
///
///   Push(gps) -> [match workers]  HMM map matching -> road trajectory
///             -> [embed workers]  micro-batched EmbeddingService round trip
///             -> [finalizer]      in-order index upsert + drift observe
///
/// The finalizer is single-threaded and processes items strictly in
/// arrival (sequence) order, whatever the worker counts upstream: workers
/// deliver out-of-order completions into a reorder buffer bounded by
/// max_in_flight. Combined with the frozen engine's batch-composition
/// invariance, this makes ingestion deterministic: the same accepted
/// stream produces bitwise-identical embeddings, the same index insertion
/// order, and bitwise-identical drift windows for ANY
/// (match_workers, embed_workers, service) configuration — the replay
/// contract tests/stream_pipeline_test.cc asserts.
///
/// Failure policy: transient stage failures (the FaultHooks seam, service
/// hiccups) retry with exponential backoff; permanent failures (matching
/// came up empty, validation) are counted and the item is skipped —
/// never half-ingested: an item either reaches the index AND the drift
/// monitor AND the callback, or is accounted failed/dropped.
///
/// Backpressure: with OverflowPolicy::kBlock (default), a full queue stalls
/// the producer side and Push() eventually blocks — memory stays bounded
/// and nothing is lost. With kDropNewest the pipeline sheds load instead:
/// drops are counted per stage (the drop markers still flow to the
/// finalizer so ordering and accounting stay exact).
///
/// Shutdown: Drain() (also the destructor) stops accepting, lets every
/// stage finish everything already accepted, then joins the workers.
///
/// Hot swap: SwapEngine() atomically replaces the serving EngineBundle
/// (encoder + index + drift monitor + the internal EmbeddingService) at a
/// sequence boundary: every item accepted before the swap runs every stage
/// against the bundle it was accepted under, every item accepted after
/// runs against the new one — zero items are dropped, reordered, or split
/// across engines, and the retired bundle is released only after its last
/// in-flight item finalizes. A bundle that fails validation is rejected
/// with the old engine untouched.
///
/// Thread-safety: Push()/stats()/Flush()/SwapEngine() may be called from
/// any number of threads. The index must be one of the serve:: backends
/// (their contract already allows concurrent queries during writes).
/// Verified race-free under ThreadSanitizer (stream_pipeline_test in the
/// tsan CI job).
class StreamPipeline {
 public:
  /// Invoked by the finalizer after an item is fully ingested (index upsert
  /// done, drift observed), in sequence order.
  using IngestedCallback = std::function<void(
      int64_t id, const traj::Trajectory& traj, const EmbeddingRow& row)>;

  /// `net` (and `hooks` when given) must outlive the pipeline; `engine`
  /// shares ownership of the serving snapshot. `engine.drift` may be null
  /// (no drift tracking), `hooks` may be nullptr (no injection).
  StreamPipeline(EngineBundle engine, const roadnet::RoadNetwork* net,
                 const StreamConfig& config = {},
                 const common::FaultHooks* hooks = nullptr);

  /// Raw-pointer convenience overload: wraps the components in non-owning
  /// shared_ptrs, so `encoder`, `net`, `index` (and `drift`/`hooks` when
  /// given) must outlive the pipeline — including any in-flight items when
  /// the bundle is later retired by SwapEngine().
  StreamPipeline(const FrozenEncoder* encoder,
                 const roadnet::RoadNetwork* net, IndexInterface* index,
                 const StreamConfig& config = {},
                 DriftMonitor* drift = nullptr,
                 const common::FaultHooks* hooks = nullptr);
  ~StreamPipeline();

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Installs the ingested callback. Must be called before the first Push().
  void SetOnIngested(IngestedCallback callback);

  /// \brief Submits one GPS trajectory.
  ///
  /// Returns InvalidArgument for an empty trajectory, FailedPrecondition
  /// after Drain() has begun. Under kBlock, blocks while the match queue or
  /// the in-flight bound is full; under kDropNewest the item may instead be
  /// shed (counted in match.dropped) and Push still returns OK — load
  /// shedding is an accounted outcome, not an error.
  common::Status Push(StreamItem item);

  /// Blocks until every accepted item has been finalized (queues empty).
  /// New pushes stay allowed; concurrent pushers can starve a Flush.
  void Flush();

  /// Like Flush() but bounded: returns true once every accepted item has
  /// been finalized, false if `timeout_us` elapses first. The adaptation
  /// controller's pre-swap drain wait.
  bool WaitQuiescent(int64_t timeout_us);

  /// \brief Atomically replaces the serving engine bundle.
  ///
  /// Validates the bundle (non-null encoder/index, internally consistent
  /// dims, matching the current serving dim) and installs it under the
  /// ingress lock: the swap lands exactly between two sequence numbers.
  /// Items already accepted keep their original bundle through every stage
  /// (the retired bundle — and its EmbeddingService — is destroyed when the
  /// last of them finalizes); items accepted after land on the new one. On
  /// any validation failure, or after Drain() has begun, the current engine
  /// keeps serving untouched and an error is returned.
  ///
  /// With `require_quiescent`, the swap additionally only lands while no
  /// accepted item is in flight (checked under the same lock that installs
  /// the bundle) and fails with FailedPrecondition otherwise. This gives
  /// the adaptation controller an exact hand-off point: everything accepted
  /// before a quiescent swap has fully finalized — and been reported
  /// through the ingested callback — before the new engine sees its first
  /// item, so one post-swap catch-up pass over the recorded corpus closes
  /// the gap with nothing racing into the retired index.
  common::Status SwapEngine(EngineBundle engine,
                            bool require_quiescent = false);

  /// Stops accepting, drains every accepted item through all stages, joins
  /// the workers. Idempotent; called by the destructor.
  void Drain();

  /// Snapshot of all counters, queue depths, and stage latencies.
  PipelineStats stats() const;

  /// The currently serving bundle (shares ownership — safe to hold across a
  /// concurrent SwapEngine()).
  EngineBundle engine() const;
  /// Epoch of the currently serving bundle (0 before the first swap).
  int64_t epoch() const;

  /// Raw borrows of the current bundle's components. May dangle once a
  /// concurrent SwapEngine() retires the bundle — prefer engine() when the
  /// pipeline is hot-swapped.
  const FrozenEncoder* encoder() const;
  IndexInterface* index() const;

 private:
  /// The serving unit a Work item is pinned to at Push: one EngineBundle
  /// plus the micro-batching EmbeddingService built over its encoder.
  struct Lease {
    EngineBundle engine;
    int64_t epoch = 0;
    std::unique_ptr<EmbeddingService> service;
  };

  struct Work {
    int64_t seq = 0;
    int64_t id = 0;
    std::shared_ptr<Lease> lease;  ///< Pinned at Push; never changes.
    traj::GpsTrajectory gps;  ///< Payload into the match stage.
    traj::Trajectory traj;    ///< Payload into the embed stage.
  };

  enum class OutcomeKind { kIngest, kDropped, kFailed };

  /// Exactly one Outcome per accepted seq reaches the finalizer.
  struct Outcome {
    int64_t seq = 0;
    int64_t id = 0;
    OutcomeKind kind = OutcomeKind::kFailed;
    std::shared_ptr<Lease> lease;  ///< kIngest only (upsert/drift target).
    traj::Trajectory traj;  ///< kIngest only.
    EmbeddingRow row;       ///< kIngest only.
  };

  struct WorkQueue {
    mutable std::mutex mu;
    std::condition_variable cv_space, cv_item;
    std::deque<Work> q;
    bool closed = false;
  };

  /// Outcome channel into the finalizer. Capacity counts only kIngest
  /// payloads; dropped/failed markers are a few words and always accepted,
  /// so no accepted seq can ever be lost. Under kBlock a payload's credit
  /// is returned when the finalizer pops it; under kDropNewest only when it
  /// is finalized, so a full queue means the finalizer is genuinely behind
  /// (see FinalizeLoop).
  struct OutcomeQueue {
    mutable std::mutex mu;
    std::condition_variable cv_space, cv_item;
    std::deque<Outcome> q;
    int64_t payload = 0;
    bool closed = false;
  };

  struct StageCounters {
    std::atomic<int64_t> completed{0}, failed{0}, dropped{0}, retried{0};
  };

  /// Ring of recent per-item stage latencies for the p50/p95 snapshot.
  struct LatencyRing {
    static constexpr size_t kCapacity = 4096;
    mutable std::mutex mu;
    std::vector<double> ms;
    size_t next = 0;

    void Record(double value);
    void Percentiles(double* p50, double* p95) const;
  };

  void MatchLoop();
  void EmbedLoop();
  void FinalizeLoop();
  void ProcessOutcome(Outcome* o);

  /// Retries hooks_->BeforeStage per the transient-failure policy.
  common::Status RunWithRetry(const char* stage, int64_t seq,
                              StageCounters* counters);
  bool PopWork(WorkQueue* q, Work* out);
  /// Pushes into a stage queue per the overflow policy; false == dropped
  /// (already counted against `door`).
  bool PushWork(WorkQueue* q, int64_t depth, Work w, StageCounters* door);
  void EmitOutcome(Outcome o);

  /// Recoverable bundle validation shared by the constructor (which CHECKs
  /// the result) and SwapEngine (which returns it).
  static common::Status ValidateEngine(const EngineBundle& engine);
  /// Builds a lease (bundle + its EmbeddingService) — outside any lock.
  std::shared_ptr<Lease> MakeLease(EngineBundle engine, int64_t epoch) const;

  const roadnet::RoadNetwork* net_;
  const StreamConfig config_;
  const common::FaultHooks* hooks_;
  IngestedCallback on_ingested_;

  WorkQueue match_q_;
  WorkQueue embed_q_;
  OutcomeQueue outcome_q_;

  // Guarded by match_q_.mu (the ingress lock).
  bool accepting_ = true;
  int64_t next_seq_ = 0;
  int64_t in_flight_ = 0;
  /// The serving lease; swapped at the ingress lock, so a lease boundary is
  /// exactly a sequence boundary.
  std::shared_ptr<Lease> lease_;
  std::condition_variable flush_cv_;

  /// Serializes SwapEngine() callers (epoch assignment + lease build).
  std::mutex swap_mu_;

  std::atomic<int64_t> pushed_{0}, rejected_{0}, accepted_{0};
  std::atomic<int64_t> swaps_{0};
  StageCounters match_, embed_, upsert_;
  mutable LatencyRing match_lat_, embed_lat_, upsert_lat_;

  std::atomic<int> active_match_{0}, active_embed_{0};

  std::mutex drain_mu_;
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace start::serve

#endif  // START_SERVE_STREAM_PIPELINE_H_
