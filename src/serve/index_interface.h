#ifndef START_SERVE_INDEX_INTERFACE_H_
#define START_SERVE_INDEX_INTERFACE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/search.h"

namespace start::serve {

/// One retrieval hit: an indexed id and its cosine similarity to the query.
struct Neighbor {
  int64_t id = 0;
  float score = 0.0f;  ///< Cosine similarity in [-1, 1].
};

/// \brief The retrieval surface of the serving plane: Top-K over
/// L2-normalized embeddings, with incremental adds and removes.
///
/// Two backends implement it — `EmbeddingIndex` (exact brute force, the
/// ground-truth oracle) and `HnswIndex` (approximate sublinear graph
/// search) — so benches, examples, and the paper's most-similar protocol
/// run against either unchanged. Embeddings are L2-normalized on Add, so
/// scores are cosine similarity and descending score equals ascending
/// Euclidean distance in the normalized space.
///
/// Thread-safety contract (every backend): any number of concurrent
/// readers (`Query`/`Contains`/`size`/`EvaluateMostSimilar`) at any time,
/// including while a writer is inside `Add`/`AddBatch`/`Remove`. Writers
/// may be serialized against each other by the backend.
class IndexInterface {
 public:
  virtual ~IndexInterface() = default;

  virtual int64_t dim() const = 0;
  /// Number of live (non-removed) entries.
  virtual int64_t size() const = 0;
  virtual bool Contains(int64_t id) const = 0;

  /// \brief Inserts (or fails on duplicate id) one embedding of length
  /// dim(). Zero vectors are rejected (cosine undefined).
  virtual common::Status Add(int64_t id, const float* embedding,
                             int64_t dim) = 0;
  common::Status Add(int64_t id, const std::vector<float>& embedding);

  /// Bulk insert of `ids.size()` row-major rows; atomic (all or nothing)
  /// with respect to validation failures.
  virtual common::Status AddBatch(const std::vector<int64_t>& ids,
                                  const std::vector<float>& rows) = 0;

  /// Removes one embedding; NotFound when absent.
  virtual common::Status Remove(int64_t id) = 0;

  /// \brief Top-k by descending cosine similarity, best first. Returns at
  /// most min(k, size()) neighbors (an approximate backend may return
  /// fewer). Exact score ties rank the earlier-inserted entry first.
  /// Rejects zero-norm queries and dimension mismatches.
  virtual common::Result<std::vector<Neighbor>> Query(const float* query,
                                                      int64_t dim,
                                                      int64_t k) const = 0;
  common::Result<std::vector<Neighbor>> Query(const std::vector<float>& query,
                                              int64_t k) const;

  /// \brief Most-similar-search protocol (Sec. IV-D4a): query q's ground
  /// truth is id `gt_id[q]`; queries are `nq` row-major [dim] rows.
  ///
  /// The default implementation ranks through `Query` at depth
  /// `EvalQueryDepth()`: a ground truth outside the returned neighbors is
  /// censored at rank size(). Exact backends override with full-corpus
  /// ranking; approximate backends inherit this (mean_rank is then a
  /// pessimistic bound while hr@1/hr@5 stay exact up to recall).
  virtual common::Result<sim::RankMetrics> EvaluateMostSimilar(
      const std::vector<float>& queries, int64_t nq,
      const std::vector<int64_t>& gt_id) const;

 protected:
  /// Query depth used by the default EvaluateMostSimilar.
  virtual int64_t EvalQueryDepth() const { return 64; }
};

/// \brief k-nearest precision protocol (Sec. IV-D4b) served through any
/// index backend: ground truth is the k-NN id set of the original query,
/// retrieval uses the transformed (detoured) query, precision is the
/// overlap fraction averaged over queries. `original` / `transformed` are
/// [nq, index.dim()] row-major. This is the one Top-K code path — the
/// former sim::KnnPrecision duplicate scoring loop is gone.
common::Result<double> KnnPrecision(const IndexInterface& index,
                                    const std::vector<float>& original,
                                    const std::vector<float>& transformed,
                                    int64_t num_queries, int64_t k);

namespace internal {

/// L2-normalizes `dim` floats from `src` into `dst`; false on a zero
/// vector. Shared by every index backend so "normalized row" means the
/// same bits everywhere.
bool NormalizeInto(const float* src, int64_t dim, float* dst);

}  // namespace internal

}  // namespace start::serve

#endif  // START_SERVE_INDEX_INTERFACE_H_
