#include "serve/stream_pipeline.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "common/check.h"

namespace start::serve {

namespace {

/// Wraps a caller-owned raw pointer for the legacy constructor: shared_ptr
/// semantics without ownership (the no-op deleter).
template <typename T>
std::shared_ptr<T> NonOwning(T* p) {
  return std::shared_ptr<T>(p, [](T*) {});
}

}  // namespace

void StreamPipeline::LatencyRing::Record(double value) {
  std::lock_guard<std::mutex> lock(mu);
  if (ms.size() < kCapacity) {
    ms.push_back(value);
  } else {
    ms[next] = value;
  }
  next = (next + 1) % kCapacity;
}

void StreamPipeline::LatencyRing::Percentiles(double* p50, double* p95) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu);
    sorted = ms;
  }
  *p50 = 0.0;
  *p95 = 0.0;
  if (sorted.empty()) return;
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double q) {
    const size_t i = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[i];
  };
  *p50 = at(0.50);
  *p95 = at(0.95);
}

common::Status StreamPipeline::ValidateEngine(const EngineBundle& engine) {
  if (engine.encoder == nullptr) {
    return common::Status::InvalidArgument("EngineBundle: null encoder");
  }
  if (engine.index == nullptr) {
    return common::Status::InvalidArgument("EngineBundle: null index");
  }
  if (engine.index->dim() != engine.encoder->dim()) {
    return common::Status::InvalidArgument(
        "EngineBundle: index/encoder dim mismatch");
  }
  if (engine.drift != nullptr && engine.drift->dim() != engine.encoder->dim()) {
    return common::Status::InvalidArgument(
        "EngineBundle: drift-monitor/encoder dim mismatch");
  }
  return common::Status::OK();
}

std::shared_ptr<StreamPipeline::Lease> StreamPipeline::MakeLease(
    EngineBundle engine, int64_t epoch) const {
  auto lease = std::make_shared<Lease>();
  lease->service = std::make_unique<EmbeddingService>(engine.encoder.get(),
                                                      config_.service);
  lease->engine = std::move(engine);
  lease->epoch = epoch;
  return lease;
}

StreamPipeline::StreamPipeline(const FrozenEncoder* encoder,
                               const roadnet::RoadNetwork* net,
                               IndexInterface* index,
                               const StreamConfig& config,
                               DriftMonitor* drift,
                               const common::FaultHooks* hooks)
    : StreamPipeline(
          EngineBundle{NonOwning(encoder), NonOwning(index), NonOwning(drift)},
          net, config, hooks) {}

StreamPipeline::StreamPipeline(EngineBundle engine,
                               const roadnet::RoadNetwork* net,
                               const StreamConfig& config,
                               const common::FaultHooks* hooks)
    : net_(net),
      config_(config),
      hooks_(hooks != nullptr ? hooks : &common::FaultHooks::Default()) {
  START_CHECK(net_ != nullptr);
  {
    const common::Status st = ValidateEngine(engine);
    START_CHECK_MSG(st.ok(), st.message());
  }
  START_CHECK_GT(config_.match_workers, 0);
  START_CHECK_GT(config_.embed_workers, 0);
  START_CHECK_GT(config_.match_queue_depth, 0);
  START_CHECK_GT(config_.embed_queue_depth, 0);
  START_CHECK_GT(config_.upsert_queue_depth, 0);
  START_CHECK_GT(config_.max_in_flight, 0);
  START_CHECK_GE(config_.max_retries, 0);

  lease_ = MakeLease(std::move(engine), /*epoch=*/0);
  active_match_.store(config_.match_workers, std::memory_order_relaxed);
  active_embed_.store(config_.embed_workers, std::memory_order_relaxed);
  pool_ = std::make_unique<common::ThreadPool>(config_.match_workers +
                                               config_.embed_workers + 1);
  for (int i = 0; i < config_.match_workers; ++i) {
    pool_->Submit([this] { MatchLoop(); });
  }
  for (int i = 0; i < config_.embed_workers; ++i) {
    pool_->Submit([this] { EmbedLoop(); });
  }
  pool_->Submit([this] { FinalizeLoop(); });
}

StreamPipeline::~StreamPipeline() { Drain(); }

void StreamPipeline::SetOnIngested(IngestedCallback callback) {
  std::lock_guard<std::mutex> lock(match_q_.mu);
  START_CHECK_EQ(next_seq_, 0);  // install before the first Push()
  on_ingested_ = std::move(callback);
}

common::Status StreamPipeline::Push(StreamItem item) {
  pushed_.fetch_add(1, std::memory_order_relaxed);
  if (item.gps.points.empty()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return common::Status::InvalidArgument(
        "StreamPipeline::Push: empty GPS trajectory");
  }
  std::unique_lock<std::mutex> lock(match_q_.mu);
  const auto has_room = [this] {
    return static_cast<int64_t>(match_q_.q.size()) < config_.match_queue_depth &&
           in_flight_ < config_.max_in_flight;
  };
  if (config_.overflow == OverflowPolicy::kBlock) {
    match_q_.cv_space.wait(lock, [&] { return !accepting_ || has_room(); });
  }
  if (!accepting_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return common::Status::FailedPrecondition(
        "StreamPipeline::Push: pipeline is draining");
  }
  if (!has_room()) {  // kDropNewest: shed at the ingress door
    match_.dropped.fetch_add(1, std::memory_order_relaxed);
    return common::Status::OK();
  }
  Work w;
  w.seq = next_seq_++;
  w.id = item.id;
  w.lease = lease_;  // pin the serving engine as of this seq
  w.gps = std::move(item.gps);
  ++in_flight_;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  match_q_.q.push_back(std::move(w));
  lock.unlock();
  match_q_.cv_item.notify_one();
  return common::Status::OK();
}

void StreamPipeline::Flush() {
  std::unique_lock<std::mutex> lock(match_q_.mu);
  flush_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool StreamPipeline::WaitQuiescent(int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(match_q_.mu);
  return flush_cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                            [this] { return in_flight_ == 0; });
}

common::Status StreamPipeline::SwapEngine(EngineBundle engine,
                                          bool require_quiescent) {
  common::Status st = ValidateEngine(engine);
  if (!st.ok()) return st;
  std::lock_guard<std::mutex> swap_serial(swap_mu_);
  int64_t next_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(match_q_.mu);
    if (!accepting_) {
      return common::Status::FailedPrecondition(
          "StreamPipeline::SwapEngine: pipeline is draining");
    }
    if (engine.encoder->dim() != lease_->engine.encoder->dim()) {
      return common::Status::InvalidArgument(
          "StreamPipeline::SwapEngine: new engine dim differs from serving "
          "dim");
    }
    if (require_quiescent && in_flight_ != 0) {
      return common::Status::FailedPrecondition(
          "StreamPipeline::SwapEngine: items in flight");
    }
    next_epoch = lease_->epoch + 1;
  }
  // Build the lease (the EmbeddingService spins up worker threads) outside
  // the ingress lock; the swap itself is a pointer exchange.
  std::shared_ptr<Lease> fresh = MakeLease(std::move(engine), next_epoch);
  std::shared_ptr<Lease> retired;
  {
    std::lock_guard<std::mutex> lock(match_q_.mu);
    if (!accepting_) {  // raced with Drain between the two lockings
      return common::Status::FailedPrecondition(
          "StreamPipeline::SwapEngine: pipeline is draining");
    }
    if (require_quiescent && in_flight_ != 0) {
      return common::Status::FailedPrecondition(
          "StreamPipeline::SwapEngine: items in flight");
    }
    retired = std::move(lease_);
    lease_ = std::move(fresh);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  // `retired` drops here; items accepted under it hold their own references
  // and release the bundle (and its EmbeddingService) as they finalize.
  return common::Status::OK();
}

void StreamPipeline::Drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (pool_ == nullptr) return;  // already drained
  {
    std::lock_guard<std::mutex> lock(match_q_.mu);
    accepting_ = false;
    match_q_.closed = true;
  }
  match_q_.cv_item.notify_all();
  match_q_.cv_space.notify_all();
  pool_.reset();  // joins once every stage has drained, in stage order
}

common::Status StreamPipeline::RunWithRetry(const char* stage, int64_t seq,
                                            StageCounters* counters) {
  common::Status st = hooks_->BeforeStage(stage, seq);
  int attempt = 0;
  while (!st.ok() && st.code() != common::StatusCode::kInvalidArgument &&
         attempt < config_.max_retries) {
    counters->retried.fetch_add(1, std::memory_order_relaxed);
    hooks_->SleepUs(config_.retry_backoff_us << attempt);
    ++attempt;
    st = hooks_->BeforeStage(stage, seq);
  }
  return st;
}

bool StreamPipeline::PopWork(WorkQueue* q, Work* out) {
  std::unique_lock<std::mutex> lock(q->mu);
  q->cv_item.wait(lock, [q] { return q->closed || !q->q.empty(); });
  if (q->q.empty()) return false;  // closed and drained
  *out = std::move(q->q.front());
  q->q.pop_front();
  lock.unlock();
  q->cv_space.notify_one();
  return true;
}

bool StreamPipeline::PushWork(WorkQueue* q, int64_t depth, Work w,
                              StageCounters* door) {
  std::unique_lock<std::mutex> lock(q->mu);
  if (config_.overflow == OverflowPolicy::kBlock) {
    q->cv_space.wait(
        lock, [&] { return static_cast<int64_t>(q->q.size()) < depth; });
  } else if (static_cast<int64_t>(q->q.size()) >= depth) {
    door->dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  q->q.push_back(std::move(w));
  lock.unlock();
  q->cv_item.notify_one();
  return true;
}

void StreamPipeline::EmitOutcome(Outcome o) {
  std::unique_lock<std::mutex> lock(outcome_q_.mu);
  if (o.kind == OutcomeKind::kIngest) {
    if (config_.overflow == OverflowPolicy::kBlock) {
      // The queue never closes while an embed worker is alive, and the
      // finalizer keeps consuming, so this wait always makes progress.
      outcome_q_.cv_space.wait(lock, [this] {
        return outcome_q_.payload < config_.upsert_queue_depth;
      });
    } else if (outcome_q_.payload >= config_.upsert_queue_depth) {
      // Shed the payload but keep the marker: the finalizer still needs
      // exactly one outcome per seq for ordering and accounting.
      o.kind = OutcomeKind::kDropped;
      o.lease.reset();
      o.traj = traj::Trajectory();
      o.row = EmbeddingRow();
      upsert_.dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (o.kind == OutcomeKind::kIngest) ++outcome_q_.payload;
  outcome_q_.q.push_back(std::move(o));
  lock.unlock();
  outcome_q_.cv_item.notify_one();
}

void StreamPipeline::MatchLoop() {
  const traj::HmmMapMatcher matcher(net_, config_.matcher);
  Work w;
  while (PopWork(&match_q_, &w)) {
    const int64_t t0 = hooks_->NowUs();
    common::Status st = RunWithRetry("match", w.seq, &match_);
    if (st.ok()) {
      w.traj = matcher.MatchTrajectory(w.gps);
      w.gps.points.clear();
      w.gps.points.shrink_to_fit();
      if (w.traj.size() < config_.min_roads) {
        st = common::Status::InvalidArgument(
            "map matching failed or matched too few roads");
      } else {
        st = w.lease->engine.encoder->Validate(w.traj);
      }
    }
    match_lat_.Record(static_cast<double>(hooks_->NowUs() - t0) / 1000.0);
    if (!st.ok()) {
      match_.failed.fetch_add(1, std::memory_order_relaxed);
      Outcome o;
      o.seq = w.seq;
      o.id = w.id;
      o.kind = OutcomeKind::kFailed;
      EmitOutcome(std::move(o));
      continue;
    }
    match_.completed.fetch_add(1, std::memory_order_relaxed);
    const int64_t seq = w.seq;
    const int64_t id = w.id;
    if (!PushWork(&embed_q_, config_.embed_queue_depth, std::move(w),
                  &embed_)) {
      Outcome o;
      o.seq = seq;
      o.id = id;
      o.kind = OutcomeKind::kDropped;
      EmitOutcome(std::move(o));
    }
  }
  // Last match worker out closes the embed stage.
  if (active_match_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(embed_q_.mu);
      embed_q_.closed = true;
    }
    embed_q_.cv_item.notify_all();
  }
}

void StreamPipeline::EmbedLoop() {
  Work w;
  while (PopWork(&embed_q_, &w)) {
    const int64_t t0 = hooks_->NowUs();
    common::Status st = RunWithRetry("embed", w.seq, &embed_);
    EmbeddingRow row;
    if (st.ok()) {
      auto future = w.lease->service->Encode(w.traj, config_.mode);
      if (!future.ok()) {
        st = future.status();
      } else {
        row = future.value().get();
      }
    }
    embed_lat_.Record(static_cast<double>(hooks_->NowUs() - t0) / 1000.0);
    if (!st.ok()) {
      embed_.failed.fetch_add(1, std::memory_order_relaxed);
      Outcome o;
      o.seq = w.seq;
      o.id = w.id;
      o.kind = OutcomeKind::kFailed;
      EmitOutcome(std::move(o));
      continue;
    }
    embed_.completed.fetch_add(1, std::memory_order_relaxed);
    Outcome o;
    o.seq = w.seq;
    o.id = w.id;
    o.kind = OutcomeKind::kIngest;
    o.lease = std::move(w.lease);
    o.traj = std::move(w.traj);
    o.row = std::move(row);
    EmitOutcome(std::move(o));
  }
  // Last embed worker out closes the finalizer's channel.
  if (active_embed_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(outcome_q_.mu);
      outcome_q_.closed = true;
    }
    outcome_q_.cv_item.notify_all();
  }
}

void StreamPipeline::ProcessOutcome(Outcome* o) {
  if (o->kind != OutcomeKind::kIngest) return;  // counted at the dropping door
  const EngineBundle& engine = o->lease->engine;
  const int64_t t0 = hooks_->NowUs();
  common::Status st = RunWithRetry("upsert", o->seq, &upsert_);
  if (st.ok()) st = engine.index->Add(o->id, o->row.data(), o->row.dim());
  upsert_lat_.Record(static_cast<double>(hooks_->NowUs() - t0) / 1000.0);
  if (!st.ok()) {
    upsert_.failed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (engine.drift != nullptr) {
    engine.drift->Observe(o->row.data(), o->row.dim());
  }
  if (on_ingested_) on_ingested_(o->id, o->traj, o->row);
  upsert_.completed.fetch_add(1, std::memory_order_relaxed);
}

void StreamPipeline::FinalizeLoop() {
  // Out-of-order completions park here until their predecessors arrive;
  // bounded by max_in_flight (a seq can only be pending if it is in flight).
  std::map<int64_t, Outcome> pending;
  int64_t next = 0;
  for (;;) {
    Outcome o;
    {
      std::unique_lock<std::mutex> lock(outcome_q_.mu);
      outcome_q_.cv_item.wait(
          lock, [this] { return outcome_q_.closed || !outcome_q_.q.empty(); });
      if (outcome_q_.q.empty()) break;  // closed and drained
      o = std::move(outcome_q_.q.front());
      outcome_q_.q.pop_front();
      // Payload credit: under kBlock, return it at pop — holding it while
      // the outcome is parked out-of-order would deadlock a blocked embed
      // worker that carries the next-in-order seq. Under kDropNewest nobody
      // blocks, so credit is held until the item is actually finalized:
      // "queue full" then means the finalizer is genuinely behind, which is
      // exactly when shedding should kick in (and it makes the shed point
      // deterministic for the fault-injection tests).
      if (o.kind == OutcomeKind::kIngest &&
          config_.overflow == OverflowPolicy::kBlock) {
        --outcome_q_.payload;
        outcome_q_.cv_space.notify_one();
      }
    }
    pending.emplace(o.seq, std::move(o));
    for (auto it = pending.find(next); it != pending.end();
         it = pending.find(next)) {
      const OutcomeKind kind = it->second.kind;
      ProcessOutcome(&it->second);
      pending.erase(it);
      ++next;
      if (kind == OutcomeKind::kIngest &&
          config_.overflow == OverflowPolicy::kDropNewest) {
        std::lock_guard<std::mutex> lock(outcome_q_.mu);
        --outcome_q_.payload;
      }
      {
        std::lock_guard<std::mutex> lock(match_q_.mu);
        --in_flight_;
        match_q_.cv_space.notify_one();
        flush_cv_.notify_all();
      }
    }
  }
  // Every accepted seq emits exactly one outcome before its stage worker
  // exits, and outcome_q_ only closes after all of them have — so nothing
  // can be left parked.
  START_CHECK(pending.empty());
}

PipelineStats StreamPipeline::stats() const {
  PipelineStats s;
  s.pushed = pushed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  const auto fill = [](const StageCounters& c, StageStats* out) {
    out->completed = c.completed.load(std::memory_order_relaxed);
    out->failed = c.failed.load(std::memory_order_relaxed);
    out->dropped = c.dropped.load(std::memory_order_relaxed);
    out->retried = c.retried.load(std::memory_order_relaxed);
  };
  fill(match_, &s.match);
  fill(embed_, &s.embed);
  fill(upsert_, &s.upsert);
  match_lat_.Percentiles(&s.match.p50_ms, &s.match.p95_ms);
  embed_lat_.Percentiles(&s.embed.p50_ms, &s.embed.p95_ms);
  upsert_lat_.Percentiles(&s.upsert.p50_ms, &s.upsert.p95_ms);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(match_q_.mu);
    s.match.queue_depth = static_cast<int64_t>(match_q_.q.size());
    s.in_flight = in_flight_;
    s.epoch = lease_->epoch;
  }
  {
    std::lock_guard<std::mutex> lock(embed_q_.mu);
    s.embed.queue_depth = static_cast<int64_t>(embed_q_.q.size());
  }
  {
    std::lock_guard<std::mutex> lock(outcome_q_.mu);
    s.upsert.queue_depth = outcome_q_.payload;
  }
  return s;
}

EngineBundle StreamPipeline::engine() const {
  std::lock_guard<std::mutex> lock(match_q_.mu);
  return lease_->engine;
}

int64_t StreamPipeline::epoch() const {
  std::lock_guard<std::mutex> lock(match_q_.mu);
  return lease_->epoch;
}

const FrozenEncoder* StreamPipeline::encoder() const {
  std::lock_guard<std::mutex> lock(match_q_.mu);
  return lease_->engine.encoder.get();
}

IndexInterface* StreamPipeline::index() const {
  std::lock_guard<std::mutex> lock(match_q_.mu);
  return lease_->engine.index.get();
}

}  // namespace start::serve
