#include "serve/drift_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace start::serve {

namespace {

/// Normalized histogram of `norms` over `bins` equal bins on [0, hist_max)
/// plus one overflow bin at the end.
std::vector<double> NormHistogram(const std::vector<double>& norms,
                                  int64_t bins, double hist_max) {
  std::vector<double> hist(static_cast<size_t>(bins + 1), 0.0);
  if (norms.empty()) return hist;
  const double scale = static_cast<double>(bins) / hist_max;
  for (const double n : norms) {
    int64_t b = n >= hist_max ? bins : static_cast<int64_t>(n * scale);
    b = std::clamp<int64_t>(b, 0, bins);
    hist[static_cast<size_t>(b)] += 1.0;
  }
  const double inv = 1.0 / static_cast<double>(norms.size());
  for (double& h : hist) h *= inv;
  return hist;
}

/// Total-variation distance between two normalized histograms.
double TotalVariation(const std::vector<double>& a,
                      const std::vector<double>& b) {
  double tv = 0.0;
  for (size_t i = 0; i < a.size(); ++i) tv += std::abs(a[i] - b[i]);
  return 0.5 * tv;
}

double CosineShift(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom == 0.0) return 0.0;  // degenerate mean: no direction to compare
  return 1.0 - dot / denom;
}

}  // namespace

DriftMonitor::DriftMonitor(int64_t dim, const DriftConfig& config)
    : dim_(dim), config_(config) {
  START_CHECK_GT(dim_, 0);
  START_CHECK_GT(config_.window_size, 0);
  START_CHECK_GT(config_.reference_windows, 0);
  START_CHECK_GT(config_.norm_bins, 0);
  window_sum_.assign(static_cast<size_t>(dim_), 0.0);
  reference_sum_.assign(static_cast<size_t>(dim_), 0.0);
  window_norms_.reserve(static_cast<size_t>(config_.window_size));
  hist_max_ = config_.norm_hist_max;
}

void DriftMonitor::SetOnDrift(Callback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  START_CHECK_EQ(observed_, 0);  // install before the first Observe()
  on_drift_ = std::move(callback);
}

void DriftMonitor::Observe(const float* embedding, int64_t dim) {
  START_CHECK_EQ(dim, dim_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_callback_ && std::this_thread::get_id() == callback_thread_) {
      // Reentrant Observe from inside the drift callback: accumulating now
      // would mutate window state mid-callback and could recurse into a
      // nested callback without bound. Defer; the frame that fired the
      // callback replays these in arrival order once it returns.
      deferred_.insert(deferred_.end(), embedding, embedding + dim_);
      return;
    }
  }
  AccumulateAndNotify(embedding);
  // Replay anything the callback observed reentrantly. A replayed
  // embedding may itself complete a drifted window, fire the callback, and
  // defer more — iterate until the queue stays empty.
  while (true) {
    std::vector<float> replay;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A callback on another thread may still be deferring; leave its
      // queue alone — its own frame drains once the callback returns.
      if (in_callback_ || deferred_.empty()) break;
      replay.swap(deferred_);
    }
    const size_t stride = static_cast<size_t>(dim_);
    for (size_t at = 0; at + stride <= replay.size(); at += stride) {
      AccumulateAndNotify(replay.data() + at);
    }
  }
}

void DriftMonitor::AccumulateAndNotify(const float* embedding) {
  DriftWindowStats completed;
  bool window_done = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    double norm2 = 0.0;
    for (int64_t i = 0; i < dim_; ++i) {
      const double v = static_cast<double>(embedding[i]);
      window_sum_[static_cast<size_t>(i)] += v;
      norm2 += v * v;
    }
    window_norms_.push_back(std::sqrt(norm2));
    ++observed_;
    if (static_cast<int64_t>(window_norms_.size()) == config_.window_size) {
      completed = FinalizeWindowLocked();
      window_done = true;
    }
  }
  if (window_done && completed.drifted && on_drift_) {
    std::lock_guard<std::mutex> serial(callback_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_callback_ = true;
      callback_thread_ = std::this_thread::get_id();
    }
    on_drift_(completed);
    std::lock_guard<std::mutex> lock(mu_);
    in_callback_ = false;
  }
}

DriftWindowStats DriftMonitor::FinalizeWindowLocked() {
  DriftWindowStats stats;
  stats.window = static_cast<int64_t>(history_.size());
  stats.count = config_.window_size;
  double norm_sum = 0.0;
  for (const double n : window_norms_) norm_sum += n;
  stats.mean_norm = norm_sum / static_cast<double>(config_.window_size);

  if (!reference_frozen_) {
    // Still accumulating the reference: fold this window in; freeze once
    // the configured number of reference windows has completed.
    stats.is_reference = true;
    for (size_t i = 0; i < reference_sum_.size(); ++i) {
      reference_sum_[i] += window_sum_[i];
    }
    reference_norms_.insert(reference_norms_.end(), window_norms_.begin(),
                            window_norms_.end());
    if (stats.window + 1 == config_.reference_windows) {
      reference_frozen_ = true;
      if (hist_max_ <= 0.0) {
        const double max_norm = *std::max_element(reference_norms_.begin(),
                                                  reference_norms_.end());
        hist_max_ = max_norm > 0.0 ? 2.0 * max_norm : 1.0;
      }
      reference_hist_ =
          NormHistogram(reference_norms_, config_.norm_bins, hist_max_);
      const double inv =
          1.0 / static_cast<double>(config_.reference_windows *
                                    config_.window_size);
      reference_mean_.resize(reference_sum_.size());
      for (size_t i = 0; i < reference_sum_.size(); ++i) {
        reference_mean_[i] = reference_sum_[i] * inv;
      }
      reference_norms_.clear();  // folded into the histogram
    }
  } else {
    std::vector<double> mean(window_sum_.size());
    const double inv = 1.0 / static_cast<double>(config_.window_size);
    for (size_t i = 0; i < window_sum_.size(); ++i) {
      mean[i] = window_sum_[i] * inv;
    }
    stats.cosine_shift = CosineShift(mean, reference_mean_);
    stats.norm_shift = TotalVariation(
        NormHistogram(window_norms_, config_.norm_bins, hist_max_),
        reference_hist_);
    stats.drifted = stats.cosine_shift > config_.cosine_shift_threshold ||
                    stats.norm_shift > config_.norm_shift_threshold;
    if (stats.drifted) ++drift_events_;
  }

  history_.push_back(stats);
  std::fill(window_sum_.begin(), window_sum_.end(), 0.0);
  window_norms_.clear();
  return stats;
}

int64_t DriftMonitor::observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

int64_t DriftMonitor::windows_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(history_.size());
}

int64_t DriftMonitor::drift_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_events_;
}

std::vector<DriftWindowStats> DriftMonitor::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

std::vector<double> DriftMonitor::ReferenceMean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reference_mean_;
}

}  // namespace start::serve
