#ifndef START_SERVE_HNSW_INDEX_H_
#define START_SERVE_HNSW_INDEX_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "serve/index_interface.h"

namespace start::serve {

/// Knobs of the HNSW graph. Recall and cost both rise with every knob;
/// `ef_search` is the runtime recall/latency dial (see SetEfSearch), the
/// rest are fixed at build time.
struct HnswConfig {
  int64_t M = 16;                ///< Max links per node above level 0 (level 0 keeps 2M).
  int64_t ef_construction = 128; ///< Candidate-pool width while inserting.
  int64_t ef_search = 64;        ///< Floor of the level-0 candidate pool per Query.
  uint64_t seed = 0x5eed;        ///< Level-sampling stream: fixed seed + same insertion order => identical graph.
  /// Floor of the live-ratio ef inflation clamp, in (0, 1]. Query divides
  /// its candidate pool by max(min_live_ratio, 1 - DeadFraction()), so the
  /// default caps inflation at 4x; indexes expected to exceed 75% tombstones
  /// before compaction kicks in should lower this (recall silently drops
  /// once DeadFraction() passes 1 - min_live_ratio otherwise).
  double min_live_ratio = 0.25;
};

/// \brief Approximate sublinear Top-K: a hierarchical navigable small-world
/// graph (Malkov & Yashunin) behind the same IndexInterface as the exact
/// EmbeddingIndex, which stays the ground-truth oracle.
///
/// Layout: nodes live in append-only fixed-size blocks (rows, level-0
/// adjacency at a fixed 2M stride, id/level/tombstone words), upper-level
/// adjacency in an append-only int32 arena — flat storage, no per-node heap
/// allocations. Slots are never reused, so slot order is insertion order
/// and exact score ties rank the earlier-inserted entry first, matching the
/// exact index. Distance is -cosine via the shared SIMD dot microkernel
/// (tensor::internal::DotF32) over L2-normalized rows.
///
/// Concurrency: queries never block and run concurrently with writers.
/// Writers are serialized among themselves (insert mutex); neighbor lists
/// are guarded by a sharded per-node lock table that both the construction
/// path (link rewrites, backlink pruning) and the search path (list copy)
/// take one node at a time; the entry point/max level is published
/// atomically after a node is fully written, and node data is made visible
/// to readers through those same lock/atomic release-acquire edges. Remove
/// tombstones the node: it leaves the graph (still traversable) but is
/// excluded from results; compaction is a follow-up.
///
/// Determinism: levels come from a per-index seeded RNG consumed in
/// insertion order, and construction search is deterministic, so two builds
/// over the same insertion order produce bitwise-identical neighbor lists
/// (asserted in tests/hnsw_index_test.cc).
class HnswIndex : public IndexInterface {
 public:
  explicit HnswIndex(int64_t dim, const HnswConfig& config = {});
  ~HnswIndex() override;

  HnswIndex(const HnswIndex&) = delete;
  HnswIndex& operator=(const HnswIndex&) = delete;

  int64_t dim() const override { return dim_; }
  int64_t size() const override {
    return live_.load(std::memory_order_acquire);
  }
  bool Contains(int64_t id) const override;

  using IndexInterface::Add;
  common::Status Add(int64_t id, const float* embedding,
                     int64_t dim) override;
  common::Status AddBatch(const std::vector<int64_t>& ids,
                          const std::vector<float>& rows) override;

  /// Tombstones the id: excluded from every future result, erased from
  /// Contains/size; its graph node keeps routing traffic until compaction.
  common::Status Remove(int64_t id) override;

  using IndexInterface::Query;
  common::Result<std::vector<Neighbor>> Query(const float* query, int64_t dim,
                                              int64_t k) const override;

  const HnswConfig& config() const { return config_; }

  /// Runtime recall/latency dial: the level-0 candidate pool per Query is
  /// max(ef_search, k). Atomic — callable while queries run.
  void SetEfSearch(int64_t ef_search);
  int64_t ef_search() const {
    return ef_search_.load(std::memory_order_relaxed);
  }

  /// Current top level of the graph (-1 while empty).
  int64_t max_level() const;
  /// Total slots ever inserted, tombstones included.
  int64_t num_slots() const {
    return slot_count_.load(std::memory_order_acquire);
  }

  /// Fraction of slots that are tombstones, in [0, 1] (0 while empty).
  /// Query inflates its candidate pool by the live fraction so heavy churn
  /// does not shrink result sets; serving loops watch this to decide when a
  /// rebuild/compaction is worth it.
  double DeadFraction() const {
    const int64_t slots = num_slots();
    if (slots <= 0) return 0.0;
    const int64_t dead = slots - size();
    if (dead <= 0) return 0.0;  // the two atomics can be read mid-insert
    return static_cast<double>(dead) / static_cast<double>(slots);
  }

  /// Deep copy with tombstones dropped: live nodes are re-inserted in slot
  /// (= insertion) order into a fresh index with the same config, so the
  /// result is bitwise-identical to a from-scratch build over only the live
  /// rows (same seeded level stream, same insertion order; asserted in
  /// tests/hnsw_index_test.cc). Safe to run while readers query this index;
  /// a Remove racing the copy may or may not be reflected.
  common::Result<std::unique_ptr<HnswIndex>> CompactedCopy() const;

  /// Persists the full graph — rows, adjacency, tombstones, entry point,
  /// and the level-RNG cursor — to `path` in the versioned STTN container,
  /// so a serving restart can skip the O(N log N) build. Writers are
  /// excluded for the duration (Save takes the insert mutex); concurrent
  /// queries are fine, but a racing Remove may be missed.
  common::Status Save(const std::string& path) const;

  /// Rebuilds an index from a Save() artifact. Every structural field is
  /// validated at the Status boundary (counts vs caps, neighbor slots in
  /// range, levels, entry point, live accounting); truncation and bit flips
  /// are caught by the container's per-record CRC. The level-RNG cursor is
  /// restored, so inserting after Load continues the exact stream a
  /// never-saved index would have drawn (bitwise parity, tested).
  static common::Result<std::unique_ptr<HnswIndex>> Load(
      const std::string& path);

  /// Introspection for the reproducibility tests and tooling: `id`'s
  /// neighbor ids at `level` in stored order (empty when the id is unknown
  /// or the node does not reach that level), and its sampled level (-1 when
  /// unknown). Neighbor ids are the ids recorded at link time; a removed
  /// neighbor keeps its old id here.
  std::vector<int64_t> GetNeighbors(int64_t id, int64_t level) const;
  int64_t NodeLevel(int64_t id) const;

  /// One search candidate (public so the comparator helpers can name it).
  struct Cand {
    float dist = 0.0f;  ///< -cosine: smaller is closer.
    int64_t slot = 0;
  };

 protected:
  int64_t EvalQueryDepth() const override;

 private:
  struct Block;
  struct Scratch;

  static constexpr int kLinkShards = 256;

  // Storage accessors (slot must be published / reachable).
  Block* BlockOf(int64_t slot) const;
  const float* RowPtr(int64_t slot) const;
  int32_t* LinkListPtr(int64_t slot, int64_t level) const;
  int64_t IdAt(int64_t slot) const;
  int32_t LevelAt(int64_t slot) const;
  bool IsDead(int64_t slot) const;
  std::mutex& LinkMutex(int64_t slot) const {
    return link_mu_[static_cast<size_t>(slot) & (kLinkShards - 1)];
  }

  float Dist(const float* query, int64_t slot) const;
  int32_t SampleLevel();

  /// Copies `slot`'s neighbor list at `level` under its shard lock.
  void CopyNeighbors(int64_t slot, int64_t level,
                     std::vector<int32_t>* out) const;
  /// Greedy ef=1 descent step at one level; updates *dist.
  int64_t GreedyStep(const float* query, int64_t entry, float* dist,
                     int64_t level, Scratch* s) const;
  /// Beam search at one level: fills s->result with up to ef candidates.
  void SearchLayer(const float* query, int64_t entry, float entry_dist,
                   int64_t level, int64_t ef, Scratch* s) const;
  /// Heuristic selection (keep a candidate only if it is closer to the
  /// query than to every already-kept one) from `sorted` (ascending).
  void SelectNeighbors(const std::vector<Cand>& sorted, int64_t m,
                       std::vector<Cand>* out) const;
  /// Links `new_slot` into `nb`'s list at `level`, pruning to `cap`.
  void ConnectBack(int64_t nb, int64_t new_slot, float dist, int64_t level,
                   int64_t cap);
  /// Core insert; requires insert_mu_ held and `nrow` normalized.
  common::Status InsertNormalized(int64_t id, const float* nrow);

  std::unique_ptr<Scratch> AcquireScratch() const;
  void ReleaseScratch(std::unique_ptr<Scratch> s) const;

  const int64_t dim_;
  const HnswConfig config_;
  const int64_t max_m0_;      ///< Level-0 link cap: 2M.
  const double level_mult_;   ///< 1 / ln(M).
  std::atomic<int64_t> ef_search_;

  /// Serializes writers end-to-end (slot assignment, RNG draws, arena
  /// bumps, graph wiring). Readers never take it.
  mutable std::mutex insert_mu_;
  common::Rng level_rng_;     ///< Guarded by insert_mu_.

  // Append-only node blocks; the pointer table is fixed-size so readers
  // index it without locks (block pointers are published with release).
  std::unique_ptr<std::atomic<Block*>[]> blocks_;
  int64_t num_blocks_ = 0;    ///< Writer-only, under insert_mu_.
  std::atomic<int64_t> slot_count_{0};

  // Upper-level adjacency arena: append-only int32 chunks, bump-allocated
  // under insert_mu_; spans never straddle a chunk.
  std::unique_ptr<std::atomic<int32_t*>[]> upper_chunks_;
  int64_t num_upper_chunks_ = 0;  ///< Writer-only, under insert_mu_.
  int64_t upper_used_ = 0;        ///< Writer-only, under insert_mu_.

  /// Packed (slot << 8 | level) entry point; kNoEntry while empty.
  std::atomic<uint64_t> entry_;
  std::atomic<int64_t> live_{0};

  mutable std::shared_mutex ids_mu_;
  std::unordered_map<int64_t, int64_t> id_to_slot_;

  mutable std::array<std::mutex, kLinkShards> link_mu_;

  mutable std::mutex pool_mu_;
  mutable std::vector<std::unique_ptr<Scratch>> pool_;
};

}  // namespace start::serve

#endif  // START_SERVE_HNSW_INDEX_H_
