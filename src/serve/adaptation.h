#ifndef START_SERVE_ADAPTATION_H_
#define START_SERVE_ADAPTATION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fault_hooks.h"
#include "common/status.h"
#include "core/config.h"
#include "core/pretrain.h"
#include "roadnet/road_network.h"
#include "serve/drift_monitor.h"
#include "serve/hnsw_index.h"
#include "serve/stream_pipeline.h"
#include "traj/traffic_model.h"

namespace start::serve {

/// Where the adaptation loop currently is. Transitions:
/// kServing -> kRetraining -> kSwapping -> kServing, with every failure
/// edge collapsing straight back to kServing on the OLD engine.
enum class AdaptationState { kServing, kRetraining, kSwapping };

const char* AdaptationStateName(AdaptationState state);

/// Knobs of the closed adaptation loop.
struct AdaptationConfig {
  /// Architecture of the serving artifact (all generations share it — a
  /// warm start cannot change shapes).
  core::StartConfig model;
  /// Generation artifacts (gen_<N>.sttn and gen_<N>.sttn.index) are written
  /// here. Must exist and be writable.
  std::string artifact_dir;
  /// The generation-0 model artifact the loop boots from.
  std::string base_checkpoint;
  /// Warm-start fine-tune plan for each retraining round (epochs, lr, seed;
  /// checkpoint routing fields are overridden per round).
  core::PretrainConfig finetune;
  /// ANN configuration of every (re)built index generation.
  HnswConfig index;
  /// Drift statistics; each engine generation gets a fresh monitor (the
  /// reference window re-learns the post-swap distribution).
  DriftConfig drift;
  /// Ingestion pipeline knobs.
  StreamConfig stream;

  /// Most recent matched trajectories retained as the fine-tune corpus and
  /// the rebuild source (FIFO eviction beyond this).
  int64_t corpus_capacity = 4096;
  /// A retraining round is skipped (not failed) below this corpus size.
  int64_t min_retrain_corpus = 32;
  /// Budget for reaching a quiescent swap point; exceeding it aborts the
  /// round with the old engine still serving.
  int64_t swap_timeout_us = 10'000'000;
  /// Remove() schedules a compaction swap once the serving index's
  /// DeadFraction() crosses this.
  double compact_dead_fraction = 0.5;
  /// Persist each generation's index next to its checkpoint so a restart
  /// loads the graph instead of re-embedding the corpus.
  bool persist_index = true;
};

/// Counters + state snapshot of the loop.
struct AdaptationStats {
  AdaptationState state = AdaptationState::kServing;
  int64_t generation = 0;        ///< Serving artifact generation (0 = base).
  int64_t drift_triggers = 0;    ///< Drift callbacks observed.
  int64_t rounds_started = 0;    ///< Retraining rounds begun.
  int64_t rounds_completed = 0;  ///< Rounds that ended in a successful swap.
  int64_t rounds_failed = 0;     ///< Rounds aborted by a failure edge.
  int64_t rounds_skipped = 0;    ///< Rounds skipped (corpus too small).
  int64_t compactions = 0;       ///< Tombstone-compaction swaps completed.
  int64_t swap_timeouts = 0;     ///< Rounds aborted at the swap deadline.
  int64_t catch_up_items = 0;    ///< Items re-embedded into a new index.
  int64_t index_restored = 0;    ///< Boot loaded a persisted index.
  int64_t index_recovered = 0;   ///< Persisted index rejected; fresh build.
  int64_t corpus_size = 0;       ///< Recorded trajectories right now.
  std::string last_error;        ///< Most recent failure edge, "" if none.
};

/// \brief Closes the adaptation loop: drift-triggered warm-start retraining
/// plus zero-downtime engine/index hot-swap over a StreamPipeline.
///
/// The controller owns the serving stack: it boots a FrozenEncoder from the
/// base checkpoint (plus the persisted index next to it, when present),
/// serves the stream through an internal StreamPipeline, and records every
/// ingested (id, matched trajectory) into a bounded corpus ring. When the
/// per-generation DriftMonitor flags drift (or TriggerRetrain() is called),
/// a background thread runs one adaptation round:
///
///   1. snapshot the recorded corpus;
///   2. warm-start fine-tune off the serving checkpoint
///      (core::WarmStartRetrain), writing gen_<N>.sttn;
///   3. build a fresh FrozenEncoder + HnswIndex and re-embed the corpus
///      into it;
///   4. hot-swap at a quiescent sequence boundary
///      (StreamPipeline::SwapEngine(require_quiescent)), then run one
///      catch-up pass for items ingested after the snapshot, and persist
///      the new index next to its checkpoint.
///
/// Every failure edge — retrain crash, rebuild failure, swap timeout,
/// corrupt persisted index — degrades gracefully: the round is abandoned,
/// the error is recorded in stats().last_error, and the OLD engine keeps
/// serving untouched. The common::FaultHooks stages "retrain", "rebuild",
/// and "swap" are the injection seams (tests/adaptation_test.cc walks every
/// edge).
///
/// Remove() additionally folds tombstone compaction into the same swap
/// machinery: once the serving index's DeadFraction() crosses the
/// configured threshold, the background thread swaps in a CompactedCopy()
/// under the unchanged encoder.
///
/// Thread-safety: Push()/Remove()/Flush()/TriggerRetrain()/stats() may be
/// called from any number of threads. The referenced road network /
/// transfer / traffic model must outlive the controller.
class AdaptationController {
 public:
  /// Boots the serving stack. Fails (leaving nothing running) when the base
  /// checkpoint is missing or unreadable; a corrupt persisted index is NOT
  /// fatal — it is recovered by starting from an empty index (counted in
  /// stats().index_recovered).
  static common::Result<std::unique_ptr<AdaptationController>> Create(
      const AdaptationConfig& config, const roadnet::RoadNetwork* net,
      const roadnet::TransferProbability* transfer,
      const traj::TrafficModel* traffic,
      const common::FaultHooks* hooks = nullptr);

  /// Stops the adaptation thread and drains the pipeline.
  ~AdaptationController();

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  /// Submits one GPS trajectory to the pipeline (see StreamPipeline::Push).
  common::Status Push(StreamItem item);

  /// Removes `id` from the serving index and the recorded corpus; schedules
  /// a compaction swap when DeadFraction() crosses the threshold.
  common::Status Remove(int64_t id);

  /// Blocks until every accepted item has been finalized.
  void Flush();

  /// Schedules an adaptation round as if drift had fired (deterministic
  /// tests; ops override). Returns immediately.
  void TriggerRetrain();

  /// Schedules a compaction check. Returns immediately.
  void TriggerCompaction();

  /// Blocks until no round is running or pending, or `timeout_us` elapses;
  /// true on idle. Note pending != guaranteed-started: rounds scheduled
  /// after this returns still run later.
  bool WaitUntilIdle(int64_t timeout_us);

  /// The currently serving engine bundle (shares ownership; safe across a
  /// concurrent swap). Query the stream through engine().index.
  EngineBundle engine() const { return pipeline_->engine(); }

  /// The owned ingestion pipeline (stats, WaitQuiescent, ...). The engine
  /// bundle it serves is managed by this controller — do not SwapEngine
  /// through this handle.
  StreamPipeline* pipeline() { return pipeline_.get(); }

  /// Path of the serving generation's checkpoint artifact.
  std::string serving_checkpoint() const;

  AdaptationStats stats() const;

 private:
  AdaptationController(const AdaptationConfig& config,
                       const roadnet::RoadNetwork* net,
                       const roadnet::TransferProbability* transfer,
                       const traj::TrafficModel* traffic,
                       const common::FaultHooks* hooks);

  /// Boot-time engine construction (encoder from the base checkpoint,
  /// persisted-or-fresh index, drift monitor, pipeline).
  common::Status Boot();

  /// Fresh per-generation drift monitor wired to OnDrift().
  std::shared_ptr<DriftMonitor> MakeDriftMonitor();

  /// Pipeline ingest callback: records (id, traj) into the corpus ring.
  void OnIngested(int64_t id, const traj::Trajectory& traj);
  /// Drift callback: schedules a round.
  void OnDrift();

  void WorkerLoop();
  void RunRetrainRound(int64_t round);
  void RunCompactionRound(int64_t round);

  /// Quiescent-gated hot swap + one post-swap catch-up pass + persistence.
  /// `encoder` must be the bundle's encoder (used for catch-up embedding).
  common::Status SwapAndCatchUp(EngineBundle bundle,
                                const std::shared_ptr<HnswIndex>& index,
                                const std::string& index_path);

  /// Embeds every corpus entry missing from `index` and adds it.
  common::Status CatchUp(const FrozenEncoder& encoder, HnswIndex* index);

  /// Records a failure edge and collapses back to kServing.
  void FailRound(const std::string& what, const common::Status& st);

  const AdaptationConfig config_;
  const roadnet::RoadNetwork* net_;
  const roadnet::TransferProbability* transfer_;
  const traj::TrafficModel* traffic_;
  const common::FaultHooks* hooks_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool retrain_pending_ = false;
  bool compact_pending_ = false;
  bool round_active_ = false;
  AdaptationState state_ = AdaptationState::kServing;
  int64_t generation_ = 0;
  std::string serving_checkpoint_;
  /// The serving HnswIndex (same object the pipeline's bundle holds, typed).
  std::shared_ptr<HnswIndex> hnsw_;
  // Counters (guarded by mu_; see AdaptationStats).
  int64_t drift_triggers_ = 0;
  int64_t rounds_started_ = 0;
  int64_t rounds_completed_ = 0;
  int64_t rounds_failed_ = 0;
  int64_t rounds_skipped_ = 0;
  int64_t compactions_ = 0;
  int64_t swap_timeouts_ = 0;
  int64_t catch_up_items_ = 0;
  int64_t index_restored_ = 0;
  int64_t index_recovered_ = 0;
  std::string last_error_;

  /// Corpus ring: newest-last id order plus id -> matched trajectory.
  /// Removed/evicted ids leave the map; stale ids in the deque are skipped.
  std::deque<int64_t> corpus_order_;
  std::unordered_map<int64_t, traj::Trajectory> corpus_;

  std::shared_ptr<const FrozenEncoder> encoder_;  ///< Serving generation's.

  std::unique_ptr<StreamPipeline> pipeline_;
  std::thread worker_;
};

}  // namespace start::serve

#endif  // START_SERVE_ADAPTATION_H_
