#ifndef START_SERVE_DRIFT_MONITOR_H_
#define START_SERVE_DRIFT_MONITOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace start::serve {

/// Knobs of the windowed drift statistics.
struct DriftConfig {
  /// Embeddings per window; a window's stats are finalized when it fills.
  int64_t window_size = 256;
  /// The first `reference_windows` completed windows are averaged into the
  /// frozen reference every later window is compared against.
  int64_t reference_windows = 1;
  /// Drift fires when 1 - cos(window mean vector, reference mean vector)
  /// exceeds this (0 = identical direction, 2 = opposite).
  double cosine_shift_threshold = 0.05;
  /// Drift fires when the total-variation distance between the window's
  /// embedding-norm histogram and the reference histogram exceeds this
  /// (0 = identical, 1 = disjoint).
  double norm_shift_threshold = 0.25;
  /// Bins of the norm histogram over [0, norm_hist_max), plus an overflow
  /// bin. norm_hist_max <= 0 self-calibrates to 2x the largest norm seen in
  /// the first reference window.
  int64_t norm_bins = 16;
  double norm_hist_max = 0.0;
};

/// Finalized statistics of one completed window.
struct DriftWindowStats {
  int64_t window = 0;        ///< 0-based completed-window index.
  int64_t count = 0;         ///< Embeddings in the window (== window_size).
  double mean_norm = 0.0;    ///< Mean L2 norm over the window.
  /// 1 - cosine(window mean vector, reference mean vector); 0 while the
  /// reference is still accumulating (reference windows compare to
  /// themselves by construction).
  double cosine_shift = 0.0;
  /// Total-variation distance between the window's norm histogram and the
  /// reference histogram; 0 while the reference is still accumulating.
  double norm_shift = 0.0;
  bool is_reference = false; ///< Window contributed to the frozen reference.
  bool drifted = false;      ///< Either shift crossed its threshold.
};

/// \brief Windowed embedding-drift statistics for the streaming ingestion
/// pipeline: keeps a frozen reference window (mean vector + norm histogram)
/// and flags later windows whose mean-vector direction or norm distribution
/// moves away from it.
///
/// The two statistics are deliberately complementary: the mean-vector
/// cosine shift catches the corpus drifting toward a different region of
/// embedding space (new OD patterns, a re-routed arterial), while the norm
/// histogram catches magnitude/shape changes that can cancel out in the
/// mean (e.g. the stream bifurcating into two symmetric modes).
///
/// The on-drift callback is the retraining trigger seam: production wires
/// it to kick off a warm-start fine-tune from the latest checkpoint
/// (core::PretrainConfig::resume); tests and the bench wire a counter.
///
/// Determinism: Observe() accumulates in double precision, strictly in call
/// order, so the same embedding stream always produces bitwise-identical
/// window stats (asserted by tests/drift_monitor_test.cc, and relied on by
/// the pipeline's deterministic-replay contract — the pipeline's finalizer
/// observes embeddings in stream order regardless of worker counts).
///
/// Thread-safety: all methods are safe to call concurrently; Observe()
/// calls are serialized internally, and the callback runs on the observing
/// thread with no monitor lock held. At most one callback runs at a time
/// (a second thread completing a drifted window blocks until the running
/// callback returns).
///
/// Reentrancy: a callback MAY call back into this monitor. Reads
/// (History(), observed(), ...) see the state as of the window that fired.
/// A reentrant Observe() does not recurse into a nested callback — the
/// embedding is deferred and replayed, in arrival order, after the callback
/// returns; windows completed by the replay fire their own (sequential,
/// never nested) callbacks. Deferred embeddings count toward observed()
/// only once replayed, so a callback never sees its own observes.
class DriftMonitor {
 public:
  using Callback = std::function<void(const DriftWindowStats&)>;

  explicit DriftMonitor(int64_t dim, const DriftConfig& config = {});

  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  /// Installs the drift callback (invoked once per drifted window). Must be
  /// set before the first Observe().
  void SetOnDrift(Callback callback);

  /// Feeds one embedding ([dim] floats) into the current window.
  void Observe(const float* embedding, int64_t dim);

  int64_t dim() const { return dim_; }
  const DriftConfig& config() const { return config_; }

  /// Embeddings observed so far.
  int64_t observed() const;
  /// Completed windows so far.
  int64_t windows_completed() const;
  /// Completed windows that crossed a drift threshold.
  int64_t drift_events() const;

  /// Stats of every completed window, in completion order.
  std::vector<DriftWindowStats> History() const;

  /// The frozen reference mean vector (empty until the reference windows
  /// have completed).
  std::vector<double> ReferenceMean() const;

 private:
  /// Finalizes the just-filled window (mu_ held); returns the stats so the
  /// caller can fire the callback outside the lock.
  DriftWindowStats FinalizeWindowLocked();

  /// Accumulates one embedding and fires the callback when it completes a
  /// drifted window. Must not be called from inside the callback (Observe's
  /// reentrancy guard routes that case to deferred_ instead).
  void AccumulateAndNotify(const float* embedding);

  const int64_t dim_;
  const DriftConfig config_;
  Callback on_drift_;

  /// Serializes callback invocations across observing threads, held while
  /// on_drift_ runs; never held together with mu_.
  std::mutex callback_mu_;

  mutable std::mutex mu_;
  bool in_callback_ = false;         ///< Guarded by mu_.
  std::thread::id callback_thread_;  ///< Guarded by mu_.
  /// Embeddings Observe()d reentrantly from inside the callback, flattened
  /// [k * dim]; replayed after the callback returns. Guarded by mu_.
  std::vector<float> deferred_;
  int64_t observed_ = 0;
  int64_t drift_events_ = 0;
  std::vector<double> window_sum_;    ///< Running mean-vector accumulator.
  std::vector<double> window_norms_;  ///< Raw norms of the current window.
  std::vector<DriftWindowStats> history_;

  // Frozen after `reference_windows` windows complete.
  bool reference_frozen_ = false;
  double hist_max_ = 0.0;                ///< Norm-histogram range.
  std::vector<double> reference_sum_;    ///< Sum over reference windows.
  std::vector<double> reference_norms_;  ///< Norms of reference windows.
  std::vector<double> reference_hist_;   ///< Normalized reference histogram.
  std::vector<double> reference_mean_;
};

}  // namespace start::serve

#endif  // START_SERVE_DRIFT_MONITOR_H_
