#ifndef START_SERVE_FROZEN_ENCODER_H_
#define START_SERVE_FROZEN_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/start_model.h"
#include "eval/encoder.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace start::serve {

/// Numeric regime of a frozen engine. kFloat32 is the bitwise-reference
/// path; kInt8 quantizes every stage-2 transformer projection Linear
/// (attention wq/wk/wv/wo and FFN fc1/fc2) to per-row-scaled int8 with the
/// tensor::qgemm kernels, keeping layernorm, softmax, activations, and all
/// non-Linear parameters in f32 (see ARCHITECTURE.md "Quantized serving").
enum class Precision { kFloat32, kInt8 };

struct FrozenEncoderOptions {
  Precision precision = Precision::kFloat32;
};

/// \brief Immutable inference snapshot of a pre-trained START model: the
/// serving plane's engine.
///
/// A FrozenEncoder is built once from a core/checkpoint artifact and then
/// never mutates:
///  - parameters are loaded dense and stripped of gradient buffers, and
///    `requires_grad` is cleared everywhere, so no encode ever records
///    autograd state or allocates grad memory;
///  - dropout is off (eval mode) and stays off;
///  - the stage-1 TPE-GAT road representations AND the extended token
///    lookup table ([V+2, d]: roads, [MASK], padding) are precomputed at
///    load time, so a request pays only the stage-2 transformer forward.
///
/// Thread-safety contract: every const method may be called concurrently
/// from any number of threads with no external synchronisation. This holds
/// because the snapshot is genuinely immutable after Load returns — encode
/// paths share the weights read-only, gradient mode is thread-local, and
/// scratch buffers come from the thread-safe global BufferPool. (Verified
/// under TSan by tests/serve_concurrency_test.cc.)
///
/// Load is the library's pure-Status artifact boundary: a missing, truncated,
/// corrupt, or architecturally mismatched checkpoint file returns an error —
/// it never CHECK-aborts the process on bad user input.
class FrozenEncoder {
 public:
  /// \brief Loads a model checkpoint (SaveModelCheckpoint / core::Pretrain
  /// artifact) into a frozen snapshot.
  ///
  /// `config` describes the artifact's architecture; `net` / `transfer` must
  /// be the road network the model was trained on and must outlive the
  /// encoder. Returns InvalidArgument/IOError/NotFound on unreadable or
  /// mismatched artifacts.
  static common::Result<std::unique_ptr<FrozenEncoder>> Load(
      const std::string& checkpoint_path, const core::StartConfig& config,
      const roadnet::RoadNetwork* net,
      const roadnet::TransferProbability* transfer,
      const FrozenEncoderOptions& options = {});

  /// \brief Persists this engine as a serving-only snapshot (~2-4x smaller
  /// than the training checkpoint): quantized Linears as int8 records, the
  /// precomputed extended table and all matrix-shaped parameters (embedding
  /// tables, unquantized weights) as f16, and 1-D vectors (biases, layernorm
  /// gamma/beta) as exact f32.
  /// Stage-1 (TPE-GAT / road table) and the MLM head are dropped entirely —
  /// a snapshot can serve but never resume training. Deterministic: the same
  /// engine state always writes the same bytes.
  common::Status SaveSnapshot(const std::string& path);

  /// \brief Loads a SaveSnapshot artifact. Skips stage-1 recomputation (the
  /// extended table comes from the file), so it is also much faster than
  /// Load. Same pure-Status boundary: corrupt, truncated, mismatched, or
  /// non-finite-scale artifacts return an error, never crash.
  static common::Result<std::unique_ptr<FrozenEncoder>> LoadSnapshot(
      const std::string& snapshot_path, const core::StartConfig& config,
      const roadnet::RoadNetwork* net,
      const roadnet::TransferProbability* transfer);

  /// Representation dimensionality d.
  int64_t dim() const { return model_->config().d; }

  /// Longest trajectory (in roads) this engine can encode.
  int64_t max_len() const { return model_->config().max_len; }

  /// Architecture of the loaded artifact.
  const core::StartConfig& config() const { return model_->config(); }

  /// Numeric regime this engine runs in.
  Precision precision() const { return precision_; }

  /// Number of Linear layers running the int8 path (0 under kFloat32).
  int64_t quantized_layer_count() const { return quantized_layers_; }

  /// \brief Encodes a batch of trajectories; returns dense [B, dim].
  ///
  /// Thread-safe. Batch composition does not change results: each row is
  /// bitwise identical to encoding that trajectory alone (padding positions
  /// are excluded by hard attention masking), which is what lets the
  /// EmbeddingService coalesce unrelated requests. Trajectories must be
  /// non-empty and at most max_len() roads — use Validate() to pre-screen
  /// user-supplied input; EncodeBatch itself treats violations as
  /// programming errors.
  tensor::Tensor EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) const;

  /// Request-level input screening for user-supplied trajectories.
  common::Status Validate(const traj::Trajectory& t) const;

  /// \brief Embeds a corpus grad-free; row-major [n, dim].
  ///
  /// The serving counterpart of eval::TrajectoryEncoder::EmbedAll: same
  /// length-bucketed deterministic plan, but running on the frozen engine
  /// (no autograd bookkeeping, table precomputed once at load).
  std::vector<float> EmbedAll(const std::vector<traj::Trajectory>& trajs,
                              eval::EncodeMode mode,
                              int64_t batch_size = 64) const;

 private:
  FrozenEncoder() = default;

  std::unique_ptr<core::StartModel> model_;
  tensor::Tensor ext_table_;  ///< Precomputed [V+2, d] token lookup table.
  Precision precision_ = Precision::kFloat32;
  int64_t quantized_layers_ = 0;
};

}  // namespace start::serve

#endif  // START_SERVE_FROZEN_ENCODER_H_
