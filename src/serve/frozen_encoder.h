#ifndef START_SERVE_FROZEN_ENCODER_H_
#define START_SERVE_FROZEN_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/start_model.h"
#include "eval/encoder.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace start::serve {

/// \brief Immutable inference snapshot of a pre-trained START model: the
/// serving plane's engine.
///
/// A FrozenEncoder is built once from a core/checkpoint artifact and then
/// never mutates:
///  - parameters are loaded dense and stripped of gradient buffers, and
///    `requires_grad` is cleared everywhere, so no encode ever records
///    autograd state or allocates grad memory;
///  - dropout is off (eval mode) and stays off;
///  - the stage-1 TPE-GAT road representations AND the extended token
///    lookup table ([V+2, d]: roads, [MASK], padding) are precomputed at
///    load time, so a request pays only the stage-2 transformer forward.
///
/// Thread-safety contract: every const method may be called concurrently
/// from any number of threads with no external synchronisation. This holds
/// because the snapshot is genuinely immutable after Load returns — encode
/// paths share the weights read-only, gradient mode is thread-local, and
/// scratch buffers come from the thread-safe global BufferPool. (Verified
/// under TSan by tests/serve_concurrency_test.cc.)
///
/// Load is the library's pure-Status artifact boundary: a missing, truncated,
/// corrupt, or architecturally mismatched checkpoint file returns an error —
/// it never CHECK-aborts the process on bad user input.
class FrozenEncoder {
 public:
  /// \brief Loads a model checkpoint (SaveModelCheckpoint / core::Pretrain
  /// artifact) into a frozen snapshot.
  ///
  /// `config` describes the artifact's architecture; `net` / `transfer` must
  /// be the road network the model was trained on and must outlive the
  /// encoder. Returns InvalidArgument/IOError/NotFound on unreadable or
  /// mismatched artifacts.
  static common::Result<std::unique_ptr<FrozenEncoder>> Load(
      const std::string& checkpoint_path, const core::StartConfig& config,
      const roadnet::RoadNetwork* net,
      const roadnet::TransferProbability* transfer);

  /// Representation dimensionality d.
  int64_t dim() const { return model_->config().d; }

  /// Longest trajectory (in roads) this engine can encode.
  int64_t max_len() const { return model_->config().max_len; }

  /// Architecture of the loaded artifact.
  const core::StartConfig& config() const { return model_->config(); }

  /// \brief Encodes a batch of trajectories; returns dense [B, dim].
  ///
  /// Thread-safe. Batch composition does not change results: each row is
  /// bitwise identical to encoding that trajectory alone (padding positions
  /// are excluded by hard attention masking), which is what lets the
  /// EmbeddingService coalesce unrelated requests. Trajectories must be
  /// non-empty and at most max_len() roads — use Validate() to pre-screen
  /// user-supplied input; EncodeBatch itself treats violations as
  /// programming errors.
  tensor::Tensor EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) const;

  /// Request-level input screening for user-supplied trajectories.
  common::Status Validate(const traj::Trajectory& t) const;

  /// \brief Embeds a corpus grad-free; row-major [n, dim].
  ///
  /// The serving counterpart of eval::TrajectoryEncoder::EmbedAll: same
  /// length-bucketed deterministic plan, but running on the frozen engine
  /// (no autograd bookkeeping, table precomputed once at load).
  std::vector<float> EmbedAll(const std::vector<traj::Trajectory>& trajs,
                              eval::EncodeMode mode,
                              int64_t batch_size = 64) const;

 private:
  FrozenEncoder() = default;

  std::unique_ptr<core::StartModel> model_;
  tensor::Tensor ext_table_;  ///< Precomputed [V+2, d] token lookup table.
};

}  // namespace start::serve

#endif  // START_SERVE_FROZEN_ENCODER_H_
