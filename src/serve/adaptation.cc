#include "serve/adaptation.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "core/checkpoint.h"
#include "core/retrain.h"
#include "serve/frozen_encoder.h"

namespace start::serve {

namespace {

/// Persisted-index sidecar of a checkpoint artifact.
std::string IndexPathFor(const std::string& checkpoint) {
  return checkpoint + ".index";
}

/// Poll slice of the quiescent-swap loop: long enough to not spin, short
/// enough that shutdown and the swap deadline stay responsive.
constexpr int64_t kSwapPollUs = 100'000;

}  // namespace

const char* AdaptationStateName(AdaptationState state) {
  switch (state) {
    case AdaptationState::kServing:
      return "serving";
    case AdaptationState::kRetraining:
      return "retraining";
    case AdaptationState::kSwapping:
      return "swapping";
  }
  return "unknown";
}

common::Result<std::unique_ptr<AdaptationController>>
AdaptationController::Create(const AdaptationConfig& config,
                             const roadnet::RoadNetwork* net,
                             const roadnet::TransferProbability* transfer,
                             const traj::TrafficModel* traffic,
                             const common::FaultHooks* hooks) {
  if (config.base_checkpoint.empty() || config.artifact_dir.empty()) {
    return common::Status::InvalidArgument(
        "AdaptationController: base_checkpoint / artifact_dir missing");
  }
  if (config.corpus_capacity <= 0 || config.min_retrain_corpus <= 0) {
    return common::Status::InvalidArgument(
        "AdaptationController: corpus bounds must be positive");
  }
  if (config.compact_dead_fraction <= 0.0 ||
      config.compact_dead_fraction > 1.0) {
    return common::Status::InvalidArgument(
        "AdaptationController: compact_dead_fraction must be in (0, 1]");
  }
  std::unique_ptr<AdaptationController> controller(
      new AdaptationController(config, net, transfer, traffic, hooks));
  START_RETURN_IF_ERROR(controller->Boot());
  controller->worker_ =
      std::thread(&AdaptationController::WorkerLoop, controller.get());
  return controller;
}

AdaptationController::AdaptationController(
    const AdaptationConfig& config, const roadnet::RoadNetwork* net,
    const roadnet::TransferProbability* transfer,
    const traj::TrafficModel* traffic, const common::FaultHooks* hooks)
    : config_(config),
      net_(net),
      transfer_(transfer),
      traffic_(traffic),
      hooks_(hooks != nullptr ? hooks : &common::FaultHooks::Default()) {
  START_CHECK(net_ != nullptr);
  START_CHECK(transfer_ != nullptr);
  START_CHECK(traffic_ != nullptr);
}

AdaptationController::~AdaptationController() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  if (pipeline_ != nullptr) pipeline_->Drain();
}

common::Status AdaptationController::Boot() {
  auto encoder = FrozenEncoder::Load(config_.base_checkpoint, config_.model,
                                     net_, transfer_);
  if (!encoder.ok()) return encoder.status();
  encoder_ = std::shared_ptr<const FrozenEncoder>(std::move(encoder.value()));

  // Persisted index: a restart loads the saved graph instead of
  // re-embedding; a corrupt or mismatched sidecar is recovered from by
  // starting empty (the stream refills it) — never fatal.
  const std::string index_path = IndexPathFor(config_.base_checkpoint);
  if (config_.persist_index && core::CheckpointExists(index_path)) {
    auto loaded = HnswIndex::Load(index_path);
    if (loaded.ok() && loaded.value()->dim() == encoder_->dim()) {
      hnsw_ = std::move(loaded.value());
      index_restored_ = 1;
    } else {
      index_recovered_ = 1;
      last_error_ =
          "persisted index rejected: " +
          (loaded.ok() ? std::string("dim mismatch") : loaded.status().ToString());
    }
  }
  if (hnsw_ == nullptr) {
    hnsw_ = std::make_shared<HnswIndex>(encoder_->dim(), config_.index);
  }
  serving_checkpoint_ = config_.base_checkpoint;

  EngineBundle bundle;
  bundle.encoder = encoder_;
  bundle.index = hnsw_;
  bundle.drift = MakeDriftMonitor();
  pipeline_ = std::make_unique<StreamPipeline>(std::move(bundle), net_,
                                               config_.stream, hooks_);
  pipeline_->SetOnIngested(
      [this](int64_t id, const traj::Trajectory& traj, const EmbeddingRow&) {
        OnIngested(id, traj);
      });
  return common::Status::OK();
}

std::shared_ptr<DriftMonitor> AdaptationController::MakeDriftMonitor() {
  auto monitor = std::make_shared<DriftMonitor>(config_.model.d, config_.drift);
  monitor->SetOnDrift([this](const DriftWindowStats&) { OnDrift(); });
  return monitor;
}

common::Status AdaptationController::Push(StreamItem item) {
  return pipeline_->Push(std::move(item));
}

void AdaptationController::Flush() { pipeline_->Flush(); }

common::Status AdaptationController::Remove(int64_t id) {
  std::shared_ptr<HnswIndex> index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = hnsw_;
  }
  const common::Status st = index->Remove(id);
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    corpus_.erase(id);
    if (st.ok() && !compact_pending_ &&
        index->DeadFraction() >= config_.compact_dead_fraction) {
      compact_pending_ = true;
      schedule = true;
    }
  }
  if (schedule) cv_.notify_all();
  return st;
}

void AdaptationController::TriggerRetrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    retrain_pending_ = true;
  }
  cv_.notify_all();
}

void AdaptationController::TriggerCompaction() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    compact_pending_ = true;
  }
  cv_.notify_all();
}

bool AdaptationController::WaitUntilIdle(int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [this] {
    return !retrain_pending_ && !compact_pending_ && !round_active_;
  });
}

std::string AdaptationController::serving_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serving_checkpoint_;
}

AdaptationStats AdaptationController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdaptationStats s;
  s.state = state_;
  s.generation = generation_;
  s.drift_triggers = drift_triggers_;
  s.rounds_started = rounds_started_;
  s.rounds_completed = rounds_completed_;
  s.rounds_failed = rounds_failed_;
  s.rounds_skipped = rounds_skipped_;
  s.compactions = compactions_;
  s.swap_timeouts = swap_timeouts_;
  s.catch_up_items = catch_up_items_;
  s.index_restored = index_restored_;
  s.index_recovered = index_recovered_;
  s.corpus_size = static_cast<int64_t>(corpus_.size());
  s.last_error = last_error_;
  return s;
}

void AdaptationController::OnIngested(int64_t id,
                                      const traj::Trajectory& traj) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted = corpus_.emplace(id, traj).second;
  if (inserted) corpus_order_.push_back(id);
  while (static_cast<int64_t>(corpus_.size()) > config_.corpus_capacity &&
         !corpus_order_.empty()) {
    // Front ids already gone from the map (Remove()) just fall off.
    corpus_.erase(corpus_order_.front());
    corpus_order_.pop_front();
  }
}

void AdaptationController::OnDrift() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++drift_triggers_;
    retrain_pending_ = true;
  }
  cv_.notify_all();
}

void AdaptationController::WorkerLoop() {
  for (;;) {
    bool retrain = false;
    int64_t round = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stop_ || retrain_pending_ || compact_pending_;
      });
      if (stop_) return;
      if (retrain_pending_) {
        retrain_pending_ = false;
        retrain = true;
        round = generation_ + 1;  // the generation this round would produce
      } else {
        compact_pending_ = false;
        round = generation_;  // compaction serves the same generation
      }
      round_active_ = true;
    }
    if (retrain) {
      RunRetrainRound(round);
    } else {
      RunCompactionRound(round);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      round_active_ = false;
      state_ = AdaptationState::kServing;
    }
    cv_.notify_all();
  }
}

void AdaptationController::FailRound(const std::string& what,
                                     const common::Status& st) {
  std::lock_guard<std::mutex> lock(mu_);
  ++rounds_failed_;
  last_error_ = what + ": " + st.ToString();
  state_ = AdaptationState::kServing;
}

common::Status AdaptationController::CatchUp(const FrozenEncoder& encoder,
                                             HnswIndex* index) {
  std::vector<int64_t> ids;
  std::vector<traj::Trajectory> trajs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int64_t id : corpus_order_) {
      auto it = corpus_.find(id);
      if (it == corpus_.end() || index->Contains(id)) continue;
      ids.push_back(id);
      trajs.push_back(it->second);
    }
  }
  if (ids.empty()) return common::Status::OK();
  const std::vector<float> rows = encoder.EmbedAll(trajs, config_.stream.mode);
  START_RETURN_IF_ERROR(index->AddBatch(ids, rows));
  {
    std::lock_guard<std::mutex> lock(mu_);
    catch_up_items_ += static_cast<int64_t>(ids.size());
  }
  return common::Status::OK();
}

common::Status AdaptationController::SwapAndCatchUp(
    EngineBundle bundle, const std::shared_ptr<HnswIndex>& index,
    const std::string& index_path) {
  const std::shared_ptr<const FrozenEncoder> encoder = bundle.encoder;
  const int64_t deadline = hooks_->NowUs() + config_.swap_timeout_us;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) {
        return common::Status::FailedPrecondition(
            "controller is shutting down");
      }
    }
    const int64_t now = hooks_->NowUs();
    if (now > deadline) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++swap_timeouts_;
      }
      return common::Status::FailedPrecondition(
          "swap timeout: pipeline never reached a quiescent boundary");
    }
    const int64_t slice = std::min<int64_t>(deadline - now, kSwapPollUs);
    if (!pipeline_->WaitQuiescent(std::max<int64_t>(slice, 0))) continue;
    // Narrow the post-swap pass while the old engine still serves.
    START_RETURN_IF_ERROR(CatchUp(*encoder, index.get()));
    const common::Status st =
        pipeline_->SwapEngine(bundle, /*require_quiescent=*/true);
    if (st.ok()) break;
    if (st.code() != common::StatusCode::kFailedPrecondition) return st;
    // In-flight items raced past the quiescence check — retry until the
    // deadline. (A draining pipeline also lands here and times out.)
  }
  // Everything accepted before the quiescent swap has finalized and been
  // recorded, so one pass closes the gap; new items land on the new engine.
  START_RETURN_IF_ERROR(CatchUp(*encoder, index.get()));
  if (config_.persist_index) {
    const common::Status st = index->Save(index_path);
    if (!st.ok()) {
      // The swap already landed: persistence failure only costs the next
      // restart a rebuild. Record, don't fail the round.
      std::lock_guard<std::mutex> lock(mu_);
      last_error_ = "index persist: " + st.ToString();
    }
  }
  return common::Status::OK();
}

void AdaptationController::RunRetrainRound(int64_t round) {
  std::vector<traj::Trajectory> corpus;
  std::string base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int64_t id : corpus_order_) {
      auto it = corpus_.find(id);
      if (it != corpus_.end()) corpus.push_back(it->second);
    }
    base = serving_checkpoint_;
    if (static_cast<int64_t>(corpus.size()) < config_.min_retrain_corpus) {
      ++rounds_skipped_;
      return;
    }
    ++rounds_started_;
    state_ = AdaptationState::kRetraining;
  }

  common::Status st = hooks_->BeforeStage("retrain", round);
  if (!st.ok()) {
    FailRound("retrain", st);
    return;
  }
  core::RetrainOptions options;
  options.base_checkpoint = base;
  options.output_checkpoint =
      config_.artifact_dir + "/gen_" + std::to_string(round) + ".sttn";
  options.pretrain = config_.finetune;
  auto retrained = core::WarmStartRetrain(config_.model, net_, transfer_,
                                          traffic_, corpus, options);
  if (!retrained.ok()) {
    FailRound("retrain", retrained.status());
    return;
  }

  st = hooks_->BeforeStage("rebuild", round);
  if (!st.ok()) {
    FailRound("rebuild", st);
    return;
  }
  auto loaded = FrozenEncoder::Load(retrained.value().checkpoint,
                                    config_.model, net_, transfer_);
  if (!loaded.ok()) {
    FailRound("rebuild", loaded.status());
    return;
  }
  std::shared_ptr<const FrozenEncoder> encoder = std::move(loaded.value());
  auto index = std::make_shared<HnswIndex>(encoder->dim(), config_.index);
  st = CatchUp(*encoder, index.get());  // bulk re-embed of the corpus
  if (!st.ok()) {
    FailRound("rebuild", st);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = AdaptationState::kSwapping;
  }
  st = hooks_->BeforeStage("swap", round);
  if (!st.ok()) {
    FailRound("swap", st);
    return;
  }
  EngineBundle bundle;
  bundle.encoder = encoder;
  bundle.index = index;
  bundle.drift = MakeDriftMonitor();
  st = SwapAndCatchUp(std::move(bundle), index,
                      IndexPathFor(retrained.value().checkpoint));
  if (!st.ok()) {
    FailRound("swap", st);
    return;
  }

  std::lock_guard<std::mutex> lock(mu_);
  generation_ = round;
  serving_checkpoint_ = retrained.value().checkpoint;
  encoder_ = std::move(encoder);
  hnsw_ = std::move(index);
  ++rounds_completed_;
  last_error_.clear();
  state_ = AdaptationState::kServing;
}

void AdaptationController::RunCompactionRound(int64_t round) {
  std::shared_ptr<HnswIndex> current;
  std::shared_ptr<const FrozenEncoder> encoder;
  std::string checkpoint;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current = hnsw_;
    encoder = encoder_;
    checkpoint = serving_checkpoint_;
  }
  // Re-check under the threshold: a retrain round may have landed a fresh
  // (tombstone-free) index since this compaction was scheduled.
  if (current->DeadFraction() < config_.compact_dead_fraction) return;

  common::Status st = hooks_->BeforeStage("rebuild", round);
  if (!st.ok()) {
    FailRound("compact", st);
    return;
  }
  auto copied = current->CompactedCopy();
  if (!copied.ok()) {
    FailRound("compact", copied.status());
    return;
  }
  std::shared_ptr<HnswIndex> compacted = std::move(copied.value());

  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = AdaptationState::kSwapping;
  }
  st = hooks_->BeforeStage("swap", round);
  if (!st.ok()) {
    FailRound("compact", st);
    return;
  }
  EngineBundle bundle;
  bundle.encoder = encoder;
  bundle.index = compacted;
  // The encoder is unchanged, so the embedding distribution is too: the
  // serving drift monitor (reference window included) carries over.
  bundle.drift = pipeline_->engine().drift;
  st = SwapAndCatchUp(std::move(bundle), compacted, IndexPathFor(checkpoint));
  if (!st.ok()) {
    FailRound("compact", st);
    return;
  }

  std::lock_guard<std::mutex> lock(mu_);
  hnsw_ = std::move(compacted);
  ++compactions_;
  last_error_.clear();
  state_ = AdaptationState::kServing;
}

}  // namespace start::serve
