#ifndef START_SERVE_EMBEDDING_SERVICE_H_
#define START_SERVE_EMBEDDING_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "serve/frozen_encoder.h"

namespace start::serve {

/// \brief Zero-copy handle to one embedding row inside a coalesced batch
/// result.
///
/// All rows of a micro-batch share the batch's dense [B, dim] tensor
/// storage; a row is (storage handle, row offset). Copy freely — copies
/// share storage. The storage lives until the last row referring to it is
/// destroyed.
class EmbeddingRow {
 public:
  EmbeddingRow() = default;
  EmbeddingRow(tensor::Tensor batch, int64_t row)
      : batch_(std::move(batch)), row_(row) {}

  bool defined() const { return batch_.defined(); }
  int64_t dim() const { return batch_.dim(1); }
  /// Dense [dim] floats; valid as long as any row of the batch is alive.
  const float* data() const { return batch_.data() + row_ * dim(); }
  std::vector<float> ToVector() const {
    return std::vector<float>(data(), data() + dim());
  }

 private:
  tensor::Tensor batch_;  ///< Dense [B, dim] batch result (shared storage).
  int64_t row_ = 0;
};

/// Knobs of the micro-batching queue.
struct ServiceConfig {
  /// Largest coalesced batch handed to the engine at once.
  int64_t max_batch_size = 32;
  /// Backpressure bound: Encode blocks while this many requests are queued.
  int64_t max_queue_depth = 1024;
  /// How long a dispatcher waits for more requests to coalesce once the
  /// queue is non-empty, before encoding a partial batch. 0 = never wait
  /// (lowest latency, no coalescing beyond what is already queued).
  int64_t batch_deadline_us = 200;
  /// Encode worker threads (each drains and encodes whole bursts).
  int num_workers = 1;
  /// Length-bucket granularity when splitting a drained burst into batches
  /// (data::BucketBatchPlan); trajectories within this many roads of each
  /// other share a batch.
  int64_t bucket_width = 4;
};

/// Serving counters (monotonic since construction).
struct ServiceStats {
  int64_t requests = 0;          ///< Requests fulfilled.
  int64_t batches = 0;           ///< Engine EncodeBatch calls made.
  int64_t padded_tokens = 0;     ///< Sum of batch_rows * batch_max_len.
  int64_t real_tokens = 0;       ///< Sum of trajectory lengths encoded.

  /// Mean requests per engine call — the micro-batching win.
  double coalescing() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
  /// Fraction of encoded token slots carrying real data (length bucketing).
  double padding_efficiency() const {
    return padded_tokens == 0 ? 1.0
                              : static_cast<double>(real_tokens) /
                                    static_cast<double>(padded_tokens);
  }
};

/// \brief Concurrent embedding inference: many client threads submit single
/// trajectories, a bounded queue coalesces them into length-bucketed
/// micro-batches, and worker threads run the frozen engine.
///
/// Dataflow: Encode() validates the request, copies the trajectory into the
/// queue, and returns a future. A worker drains the queue (waiting up to
/// `batch_deadline_us` for more arrivals, or until `max_batch_size` are
/// pending), splits the burst into length-homogeneous batches via
/// data::BucketBatchPlan, encodes each through FrozenEncoder::EncodeBatch,
/// and fulfils every promise with a zero-copy row of the batch result.
///
/// Thread-safety contract:
///  - Encode() and stats() may be called from any number of threads.
///  - Results are bitwise independent of coalescing: whatever batch a
///    request lands in, its embedding row is identical to a serial
///    FrozenEncoder::EncodeBatch({t}) call (padding invariance of the
///    frozen engine; asserted under TSan by serve_concurrency_test).
///  - The destructor stops accepting new requests, drains every queued
///    request (their futures complete), then joins the workers.
///  - A future's EmbeddingRow stays valid after the service is destroyed.
///
/// Verified race-free under ThreadSanitizer (serve_concurrency_test in the
/// tsan CI job).
class EmbeddingService {
 public:
  /// `encoder` must outlive the service.
  explicit EmbeddingService(const FrozenEncoder* encoder,
                            const ServiceConfig& config = {});
  ~EmbeddingService();

  EmbeddingService(const EmbeddingService&) = delete;
  EmbeddingService& operator=(const EmbeddingService&) = delete;

  /// \brief Submits one trajectory for embedding; the future resolves to its
  /// [dim] row once a worker has encoded the batch it was coalesced into.
  ///
  /// Validation errors (empty / too-long trajectory, out-of-range road ids)
  /// and submission after shutdown are returned synchronously as a Status.
  /// Blocks while the queue is at max_queue_depth (backpressure).
  common::Result<std::future<EmbeddingRow>> Encode(
      const traj::Trajectory& trajectory,
      eval::EncodeMode mode = eval::EncodeMode::kFull);

  /// Blocking convenience wrapper: submit and wait for the row.
  common::Result<std::vector<float>> EncodeSync(
      const traj::Trajectory& trajectory,
      eval::EncodeMode mode = eval::EncodeMode::kFull);

  /// Snapshot of the serving counters.
  ServiceStats stats() const;

  const FrozenEncoder* encoder() const { return encoder_; }

 private:
  struct Request {
    traj::Trajectory trajectory;
    eval::EncodeMode mode;
    std::promise<EmbeddingRow> promise;
  };

  void WorkerLoop();
  /// Encodes a burst of drained requests (mutex NOT held).
  void EncodeBurst(std::vector<Request>* burst);

  const FrozenEncoder* encoder_;
  const ServiceConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_arrival_;  ///< Queue gained a request / stopping.
  std::condition_variable cv_space_;    ///< Queue has room again.
  std::deque<Request> queue_;
  bool stopping_ = false;
  ServiceStats stats_;

  std::unique_ptr<common::ThreadPool> pool_;  ///< Runs the worker loops.
};

}  // namespace start::serve

#endif  // START_SERVE_EMBEDDING_SERVICE_H_
