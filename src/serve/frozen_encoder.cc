#include "serve/frozen_encoder.h"

#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "data/batch.h"
#include "nn/layers.h"
#include "tensor/qgemm.h"
#include "tensor/serialize.h"

namespace start::serve {

namespace {

// Record names of the serving snapshot container (SaveSnapshot format 1).
constexpr char kSnapshotFormatKey[] = "snapshot.format";
constexpr char kExtTableKey[] = "ext_table";
constexpr uint64_t kSnapshotFormatVersion = 1;

/// Parameters a serving snapshot keeps: everything except stage 1 (the
/// precomputed ext_table replaces it) and the MLM pretraining head.
bool IsServingParam(const std::string& name) {
  return name.rfind("tpe_gat.", 0) != 0 && name.rfind("mlm_head.", 0) != 0 &&
         name != "road_table";
}

/// Quantizes every projection Linear of the stage-2 transformer in place.
/// Returns the number of layers switched to the int8 path.
int64_t QuantizeStage2(core::StartModel* model) {
  int64_t count = 0;
  for (auto& [path, mod] : model->NamedModules()) {
    if (path.rfind("encoder", 0) != 0) continue;
    auto* linear = dynamic_cast<nn::Linear*>(mod);
    if (linear == nullptr) continue;
    linear->QuantizeInt8();
    ++count;
  }
  return count;
}

/// Build-and-freeze common to every load path.
std::unique_ptr<core::StartModel> BuildFrozenModel(
    const core::StartConfig& config, const roadnet::RoadNetwork* net,
    const roadnet::TransferProbability* transfer) {
  // Build the architecture with a throwaway generator (every parameter is
  // overwritten by the loaded artifact; load failures discard the model).
  common::Rng init_rng(0);
  auto model =
      std::make_unique<core::StartModel>(config, net, transfer, &init_rng);
  model->SetTraining(false);
  for (auto& p : model->Parameters()) {
    p.impl()->requires_grad = false;
    p.impl()->grad.reset();
  }
  return model;
}

}  // namespace

common::Result<std::unique_ptr<FrozenEncoder>> FrozenEncoder::Load(
    const std::string& checkpoint_path, const core::StartConfig& config,
    const roadnet::RoadNetwork* net,
    const roadnet::TransferProbability* transfer,
    const FrozenEncoderOptions& options) {
  if (net == nullptr) {
    return common::Status::InvalidArgument("road network must not be null");
  }
  // Freeze: eval mode, no autograd participation, no gradient buffers.
  // Clearing requires_grad means no op downstream of the parameters ever
  // records a graph node, whatever the caller's thread-local grad mode is.
  auto model = BuildFrozenModel(config, net, transfer);
  START_RETURN_IF_ERROR(core::LoadModelCheckpoint(
      checkpoint_path, model.get(), core::HashStartConfig(config)));

  auto encoder = std::unique_ptr<FrozenEncoder>(new FrozenEncoder());
  {
    // Precompute everything that depends only on the (now immutable)
    // parameters: stage 1 and the extended token table, dense-packed out of
    // whatever views produced them. Runs on the f32 weights regardless of
    // precision — only stage-2 Linears are ever quantized.
    tensor::NoGradGuard no_grad;
    const tensor::Tensor road_reps = model->ComputeRoadReps().Detach();
    encoder->ext_table_ = model->BuildExtendedTable(road_reps).Detach();
  }
  if (options.precision == Precision::kInt8) {
    encoder->quantized_layers_ = QuantizeStage2(model.get());
    encoder->precision_ = Precision::kInt8;
  }
  encoder->model_ = std::move(model);
  return encoder;
}

common::Status FrozenEncoder::SaveSnapshot(const std::string& path) {
  tensor::RecordBundle bundle;
  bundle.uints[kSnapshotFormatKey] = {kSnapshotFormatVersion};
  bundle.halfs[kExtTableKey] = ext_table_;
  std::set<std::string> quantized_weight_names;
  for (auto& [mpath, mod] : model_->NamedModules()) {
    auto* linear = dynamic_cast<nn::Linear*>(mod);
    if (linear == nullptr || !linear->is_quantized()) continue;
    const tensor::qgemm::PackedMatrix& p = linear->quantized_weights();
    tensor::QuantizedTensor q;
    q.rows = p.rows;
    q.cols = p.cols;
    q.scales = p.scales;
    // Disk holds canonical unpacked row-major codes — the panel layout is a
    // kernel detail that may change without invalidating artifacts.
    q.data = tensor::qgemm::Unpack(p);
    bundle.qtensors.emplace(mpath, std::move(q));
    quantized_weight_names.insert(mpath + ".weight");
  }
  for (auto& [name, t] : model_->NamedParameters()) {
    if (!IsServingParam(name)) continue;
    if (quantized_weight_names.count(name) != 0) continue;
    // Matrix-shaped parameters (embedding tables, interval MLP weights) are
    // the bulk of the artifact and tolerate f16 storage; 1-D vectors
    // (biases, layernorm gamma/beta) stay exact f32 — they are tiny and
    // shift/scale the activation distribution directly.
    if (t.ndim() >= 2) {
      bundle.halfs.emplace(name, t);
    } else {
      bundle.tensors.emplace(name, t);
    }
  }
  return tensor::SaveBundle(path, core::HashStartConfig(model_->config()),
                            bundle);
}

common::Result<std::unique_ptr<FrozenEncoder>> FrozenEncoder::LoadSnapshot(
    const std::string& snapshot_path, const core::StartConfig& config,
    const roadnet::RoadNetwork* net,
    const roadnet::TransferProbability* transfer) {
  if (net == nullptr) {
    return common::Status::InvalidArgument("road network must not be null");
  }
  START_ASSIGN_OR_RETURN(tensor::LoadedBundle loaded,
                         tensor::LoadBundle(snapshot_path));
  const auto fmt = loaded.records.uints.find(kSnapshotFormatKey);
  if (fmt == loaded.records.uints.end() || fmt->second.size() != 1 ||
      fmt->second[0] != kSnapshotFormatVersion) {
    return common::Status::InvalidArgument(
        snapshot_path + " is not a frozen-encoder snapshot");
  }
  if (loaded.meta_tag != core::HashStartConfig(config)) {
    return common::Status::InvalidArgument(
        "snapshot " + snapshot_path +
        " was built for a different architecture (config hash mismatch)");
  }
  auto model = BuildFrozenModel(config, net, transfer);

  // Install the quantized Linears first, validating every record against the
  // architecture before any kernel code touches it.
  int64_t quantized = 0;
  std::set<std::string> quantized_weight_names;
  std::map<std::string, nn::Module*> by_path;
  for (auto& [mpath, mod] : model->NamedModules()) by_path.emplace(mpath, mod);
  for (auto& [qpath, q] : loaded.records.qtensors) {
    const auto it = by_path.find(qpath);
    auto* linear =
        it == by_path.end() ? nullptr : dynamic_cast<nn::Linear*>(it->second);
    if (linear == nullptr) {
      return common::Status::InvalidArgument(
          "quantized record '" + qpath +
          "' does not name a Linear layer of this architecture");
    }
    if (q.rows != linear->out_features() || q.cols != linear->in_features()) {
      return common::Status::InvalidArgument(
          "quantized weight shape [" + std::to_string(q.rows) + ", " +
          std::to_string(q.cols) + "] for '" + qpath +
          "' does not match layer [" +
          std::to_string(linear->out_features()) + ", " +
          std::to_string(linear->in_features()) + "]");
    }
    for (const float s : q.scales) {
      if (!std::isfinite(s) || s < 0.0f) {
        return common::Status::InvalidArgument(
            "non-finite or negative dequant scale in quantized record '" +
            qpath + "'");
      }
    }
    START_RETURN_IF_ERROR(linear->SetQuantizedWeights(
        tensor::qgemm::Pack(q.data.data(), q.scales.data(), q.rows, q.cols)));
    quantized_weight_names.insert(qpath + ".weight");
    ++quantized;
  }

  // Fill the remaining serving parameters. Vectors live in the f32 section,
  // matrices in the f16 one (SaveSnapshot's storage split); a parameter may
  // legitimately come from either, so probe both before declaring it missing.
  for (auto& [name, t] : model->NamedParameters()) {
    if (!IsServingParam(name)) continue;
    if (quantized_weight_names.count(name) != 0) continue;
    auto it = loaded.records.tensors.find(name);
    if (it == loaded.records.tensors.end()) {
      it = loaded.records.halfs.find(name);
      if (it == loaded.records.halfs.end()) {
        return common::Status::NotFound("parameter missing in snapshot: " +
                                        name);
      }
    }
    if (it->second.shape() != t.shape()) {
      return common::Status::InvalidArgument(
          "shape mismatch for " + name + ": snapshot " +
          it->second.shape().ToString() + " vs model " + t.shape().ToString());
    }
    std::copy(it->second.data(), it->second.data() + t.numel(), t.data());
  }

  const auto et = loaded.records.halfs.find(kExtTableKey);
  if (et == loaded.records.halfs.end()) {
    return common::Status::NotFound("snapshot missing the " +
                                    std::string(kExtTableKey) + " record");
  }
  if (et->second.ndim() != 2 ||
      et->second.dim(0) != model->num_roads() + 2 ||
      et->second.dim(1) != config.d) {
    return common::Status::InvalidArgument(
        "ext_table shape " + et->second.shape().ToString() +
        " does not match [" + std::to_string(model->num_roads() + 2) + ", " +
        std::to_string(config.d) + "]");
  }

  auto encoder = std::unique_ptr<FrozenEncoder>(new FrozenEncoder());
  encoder->ext_table_ = et->second;
  encoder->model_ = std::move(model);
  encoder->quantized_layers_ = quantized;
  encoder->precision_ =
      quantized > 0 ? Precision::kInt8 : Precision::kFloat32;
  return encoder;
}

common::Status FrozenEncoder::Validate(const traj::Trajectory& t) const {
  if (t.size() < 1) {
    return common::Status::InvalidArgument("empty trajectory");
  }
  if (t.size() > max_len()) {
    return common::Status::InvalidArgument(
        "trajectory of " + std::to_string(t.size()) +
        " roads exceeds the engine's max_len " + std::to_string(max_len()));
  }
  const int64_t v = model_->num_roads();
  for (const int64_t r : t.roads) {
    if (r < 0 || r >= v) {
      return common::Status::InvalidArgument(
          "road id " + std::to_string(r) + " outside [0, " +
          std::to_string(v) + ")");
    }
  }
  return common::Status::OK();
}

tensor::Tensor FrozenEncoder::EncodeBatch(
    const std::vector<const traj::Trajectory*>& batch,
    eval::EncodeMode mode) const {
  const data::Batch b = eval::MakeModeBatch(batch, mode);
  tensor::NoGradGuard no_grad;
  // cls is a strided view into the [B, L+1, d] sequence buffer; compact it
  // so callers hold B·d floats, not the whole sequence activation.
  return model_->EncodeWithTable(b, ext_table_).cls.Contiguous();
}

std::vector<float> FrozenEncoder::EmbedAll(
    const std::vector<traj::Trajectory>& trajs, eval::EncodeMode mode,
    int64_t batch_size) const {
  // Same deterministic bucketed loop as the eval harness, running on the
  // frozen engine.
  return eval::EmbedAllWith(
      dim(), trajs, batch_size,
      [&](const std::vector<const traj::Trajectory*>& batch) {
        return EncodeBatch(batch, mode);
      });
}

}  // namespace start::serve
