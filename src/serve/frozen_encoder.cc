#include "serve/frozen_encoder.h"

#include <utility>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "data/batch.h"

namespace start::serve {

common::Result<std::unique_ptr<FrozenEncoder>> FrozenEncoder::Load(
    const std::string& checkpoint_path, const core::StartConfig& config,
    const roadnet::RoadNetwork* net,
    const roadnet::TransferProbability* transfer) {
  if (net == nullptr) {
    return common::Status::InvalidArgument("road network must not be null");
  }
  // Build the architecture with a throwaway generator (every parameter is
  // overwritten by the checkpoint; load failures discard the model).
  common::Rng init_rng(0);
  auto model =
      std::make_unique<core::StartModel>(config, net, transfer, &init_rng);
  START_RETURN_IF_ERROR(core::LoadModelCheckpoint(
      checkpoint_path, model.get(), core::HashStartConfig(config)));

  // Freeze: eval mode, no autograd participation, no gradient buffers. The
  // parameters themselves are already dense leaf tensors; clearing
  // requires_grad means no op downstream of them ever records a graph node,
  // whatever the caller's thread-local grad mode is.
  model->SetTraining(false);
  for (auto& p : model->Parameters()) {
    p.impl()->requires_grad = false;
    p.impl()->grad.reset();
  }

  auto encoder = std::unique_ptr<FrozenEncoder>(new FrozenEncoder());
  {
    // Precompute everything that depends only on the (now immutable)
    // parameters: stage 1 and the extended token table, dense-packed out of
    // whatever views produced them.
    tensor::NoGradGuard no_grad;
    const tensor::Tensor road_reps = model->ComputeRoadReps().Detach();
    encoder->ext_table_ = model->BuildExtendedTable(road_reps).Detach();
  }
  encoder->model_ = std::move(model);
  return encoder;
}

common::Status FrozenEncoder::Validate(const traj::Trajectory& t) const {
  if (t.size() < 1) {
    return common::Status::InvalidArgument("empty trajectory");
  }
  if (t.size() > max_len()) {
    return common::Status::InvalidArgument(
        "trajectory of " + std::to_string(t.size()) +
        " roads exceeds the engine's max_len " + std::to_string(max_len()));
  }
  const int64_t v = model_->num_roads();
  for (const int64_t r : t.roads) {
    if (r < 0 || r >= v) {
      return common::Status::InvalidArgument(
          "road id " + std::to_string(r) + " outside [0, " +
          std::to_string(v) + ")");
    }
  }
  return common::Status::OK();
}

tensor::Tensor FrozenEncoder::EncodeBatch(
    const std::vector<const traj::Trajectory*>& batch,
    eval::EncodeMode mode) const {
  const data::Batch b = eval::MakeModeBatch(batch, mode);
  tensor::NoGradGuard no_grad;
  // cls is a strided view into the [B, L+1, d] sequence buffer; compact it
  // so callers hold B·d floats, not the whole sequence activation.
  return model_->EncodeWithTable(b, ext_table_).cls.Contiguous();
}

std::vector<float> FrozenEncoder::EmbedAll(
    const std::vector<traj::Trajectory>& trajs, eval::EncodeMode mode,
    int64_t batch_size) const {
  // Same deterministic bucketed loop as the eval harness, running on the
  // frozen engine.
  return eval::EmbedAllWith(
      dim(), trajs, batch_size,
      [&](const std::vector<const traj::Trajectory*>& batch) {
        return EncodeBatch(batch, mode);
      });
}

}  // namespace start::serve
