#include "baselines/seq2seq.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace start::baselines {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::vector<const traj::Trajectory*> SliceBatch(
    const std::vector<traj::Trajectory>& corpus,
    const std::vector<int64_t>& order, int64_t begin, int64_t end) {
  std::vector<const traj::Trajectory*> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    out.push_back(
        &corpus[static_cast<size_t>(order[static_cast<size_t>(i)])]);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Traj2Vec
// ---------------------------------------------------------------------------

Traj2Vec::Traj2Vec(const Seq2SeqConfig& config,
                   const roadnet::RoadNetwork* net, common::Rng* rng)
    : d_(config.d),
      feature_dim_(roadnet::RoadNetwork::FeatureDim() + 2),
      net_(net),
      road_features_(net->BuildFeatureMatrix()) {
  encoder_ = std::make_unique<nn::Gru>(feature_dim_, d_, rng);
  decoder_ = std::make_unique<nn::Gru>(d_, d_, rng);
  reconstruct_ = std::make_unique<nn::Linear>(d_, feature_dim_, rng);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("decoder", decoder_.get());
  RegisterModule("reconstruct", reconstruct_.get());
}

Tensor Traj2Vec::BuildFeatures(const std::vector<const traj::Trajectory*>& b,
                               eval::EncodeMode mode,
                               std::vector<int64_t>* lengths) const {
  const int64_t fd = roadnet::RoadNetwork::FeatureDim();
  int64_t max_len = 0;
  for (const auto* t : b) max_len = std::max(max_len, t->size());
  const int64_t bs = static_cast<int64_t>(b.size());
  std::vector<float> data(
      static_cast<size_t>(bs * max_len * feature_dim_), 0.0f);
  lengths->resize(static_cast<size_t>(bs));
  for (int64_t s = 0; s < bs; ++s) {
    const auto* t = b[static_cast<size_t>(s)];
    (*lengths)[static_cast<size_t>(s)] = t->size();
    for (int64_t i = 0; i < t->size(); ++i) {
      float* row =
          data.data() + (s * max_len + i) * feature_dim_;
      const int64_t road = t->roads[static_cast<size_t>(i)];
      std::copy(road_features_.data() + road * fd,
                road_features_.data() + (road + 1) * fd, row);
      if (mode == eval::EncodeMode::kFull) {
        // Offset from departure (hours) and step travel time (minutes).
        const int64_t t_in = t->timestamps[static_cast<size_t>(i)];
        const int64_t t_out =
            i + 1 < t->size() ? t->timestamps[static_cast<size_t>(i + 1)]
                              : t->end_time;
        row[fd] = static_cast<float>(t_in - t->departure_time()) / 3600.0f;
        row[fd + 1] = static_cast<float>(t_out - t_in) / 60.0f;
      }
    }
  }
  return Tensor::FromVector(Shape({bs, max_len, feature_dim_}),
                            std::move(data));
}

Tensor Traj2Vec::EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) {
  std::vector<int64_t> lengths;
  const Tensor features = BuildFeatures(batch, mode, &lengths);
  return encoder_->Forward(features, lengths).last_hidden;
}

double Traj2Vec::Pretrain(const std::vector<traj::Trajectory>& corpus,
                          const PretrainOptions& options) {
  START_CHECK(!corpus.empty());
  common::Rng rng(options.seed);
  nn::AdamW opt(Parameters(), options.lr);
  SetTraining(true);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(corpus.size());
  double last_epoch_loss = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += options.batch_size) {
      const int64_t end = std::min(n, begin + options.batch_size);
      const auto batch = SliceBatch(corpus, order, begin, end);
      std::vector<int64_t> lengths;
      const Tensor features =
          BuildFeatures(batch, eval::EncodeMode::kFull, &lengths);
      const Tensor rep = encoder_->Forward(features, lengths).last_hidden;
      // Decoder consumes the repeated representation at every step.
      const int64_t bs = features.dim(0), l = features.dim(1);
      std::vector<Tensor> repeated(static_cast<size_t>(l),
                                   tensor::Reshape(rep, Shape({bs, 1, d_})));
      const Tensor dec_in = tensor::Concat(repeated, 1);
      const Tensor dec_out = decoder_->Forward(dec_in, lengths).outputs;
      const Tensor recon = reconstruct_->Forward(dec_out);
      // MSE only over valid positions: zero both sides on padding.
      std::vector<float> mask(
          static_cast<size_t>(bs * l * feature_dim_), 0.0f);
      std::vector<float> target(
          static_cast<size_t>(bs * l * feature_dim_), 0.0f);
      for (int64_t s = 0; s < bs; ++s) {
        for (int64_t i = 0; i < lengths[static_cast<size_t>(s)]; ++i) {
          for (int64_t f = 0; f < feature_dim_; ++f) {
            const size_t idx =
                static_cast<size_t>((s * l + i) * feature_dim_ + f);
            mask[idx] = 1.0f;
            target[idx] = features.data()[idx];
          }
        }
      }
      const Tensor masked = tensor::Mul(
          recon, Tensor::FromVector(features.shape(), std::move(mask)));
      Tensor loss = tensor::MseLoss(masked, target);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), options.grad_clip);
      opt.Step();
      total += loss.item();
      ++batches;
    }
    last_epoch_loss = total / std::max<int64_t>(1, batches);
    if (options.verbose) {
      START_LOG(Info) << "traj2vec epoch " << epoch << " mse "
                      << last_epoch_loss;
    }
  }
  return last_epoch_loss;
}

// ---------------------------------------------------------------------------
// T2Vec
// ---------------------------------------------------------------------------

T2Vec::T2Vec(const Seq2SeqConfig& config, const roadnet::RoadNetwork* net,
             common::Rng* rng)
    : d_(config.d),
      net_(net),
      pad_id_(net->num_segments()),
      rng_(config.seed) {
  embedding_ =
      std::make_unique<nn::Embedding>(net->num_segments() + 1, d_, rng);
  encoder_ = std::make_unique<nn::Gru>(d_, d_, rng);
  decoder_ = std::make_unique<nn::Gru>(d_, d_, rng);
  token_head_ =
      std::make_unique<nn::Linear>(d_, net->num_segments(), rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("encoder", encoder_.get());
  RegisterModule("decoder", decoder_.get());
  RegisterModule("token_head", token_head_.get());
}

Tensor T2Vec::EmbedRoads(const PaddedRoads& padded) const {
  const Tensor flat = embedding_->Forward(padded.ids);
  return tensor::Reshape(flat,
                         Shape({padded.batch_size, padded.max_len, d_}));
}

Tensor T2Vec::EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                          eval::EncodeMode mode) {
  (void)mode;  // Road tokens carry no timestamps; nothing to hide.
  const PaddedRoads padded = PadRoadBatch(batch, pad_id_);
  return encoder_->Forward(EmbedRoads(padded), padded.lengths).last_hidden;
}

double T2Vec::Pretrain(const std::vector<traj::Trajectory>& corpus,
                       const PretrainOptions& options) {
  START_CHECK(!corpus.empty());
  common::Rng rng(options.seed);
  nn::AdamW opt(Parameters(), options.lr);
  SetTraining(true);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(corpus.size());
  double last_epoch_loss = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += options.batch_size) {
      const int64_t end = std::min(n, begin + options.batch_size);
      const auto batch = SliceBatch(corpus, order, begin, end);
      const PaddedRoads padded = PadRoadBatch(batch, pad_id_);
      const Tensor rep =
          encoder_->Forward(EmbedRoads(padded), padded.lengths).last_hidden;
      // Teacher forcing: decoder input is the shifted target sequence, with
      // the trajectory representation injected as step-0 input.
      PaddedRoads shifted = padded;
      for (int64_t s = 0; s < padded.batch_size; ++s) {
        for (int64_t i = padded.max_len - 1; i > 0; --i) {
          shifted.ids[static_cast<size_t>(s * padded.max_len + i)] =
              padded.ids[static_cast<size_t>(s * padded.max_len + i - 1)];
        }
        shifted.ids[static_cast<size_t>(s * padded.max_len)] = pad_id_;
      }
      Tensor dec_in = EmbedRoads(shifted);
      // Add the representation to every step (conditioning).
      dec_in = tensor::Add(
          dec_in, tensor::Reshape(rep, Shape({padded.batch_size, 1, d_})));
      const Tensor dec_out = decoder_->Forward(dec_in, padded.lengths).outputs;
      const Tensor logits = tensor::Reshape(
          token_head_->Forward(dec_out),
          Shape({padded.batch_size * padded.max_len, net_->num_segments()}));
      // Hard targets (pad -> ignore) plus a spatially-smoothed target where
      // each position also predicts a sampled graph neighbour (the
      // spatial-proximity aware loss of t2vec).
      std::vector<int64_t> hard(padded.ids.size(), -1);
      std::vector<int64_t> soft(padded.ids.size(), -1);
      for (int64_t s = 0; s < padded.batch_size; ++s) {
        for (int64_t i = 0; i < padded.lengths[static_cast<size_t>(s)]; ++i) {
          const size_t idx = static_cast<size_t>(s * padded.max_len + i);
          const int64_t road = padded.ids[idx];
          hard[idx] = road;
          const auto neighbors = net_->OutSpan(road);
          if (!neighbors.empty()) {
            soft[idx] = neighbors[rng.UniformInt(neighbors.size())];
          }
        }
      }
      Tensor loss = tensor::Add(
          tensor::Scale(tensor::CrossEntropyWithLogits(logits, hard, -1),
                        0.8f),
          tensor::Scale(tensor::CrossEntropyWithLogits(logits, soft, -1),
                        0.2f));
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), options.grad_clip);
      opt.Step();
      total += loss.item();
      ++batches;
    }
    last_epoch_loss = total / std::max<int64_t>(1, batches);
    if (options.verbose) {
      START_LOG(Info) << "t2vec epoch " << epoch << " ce " << last_epoch_loss;
    }
  }
  return last_epoch_loss;
}

// ---------------------------------------------------------------------------
// Trembr
// ---------------------------------------------------------------------------

Trembr::Trembr(const Seq2SeqConfig& config, const roadnet::RoadNetwork* net,
               common::Rng* rng)
    : T2Vec(config, net, rng) {
  time_head_ = std::make_unique<nn::Linear>(d_, 1, rng);
  RegisterModule("time_head", time_head_.get());
}

double Trembr::Pretrain(const std::vector<traj::Trajectory>& corpus,
                        const PretrainOptions& options) {
  START_CHECK(!corpus.empty());
  common::Rng rng(options.seed);
  nn::AdamW opt(Parameters(), options.lr);
  SetTraining(true);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(corpus.size());
  double last_epoch_loss = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += options.batch_size) {
      const int64_t end = std::min(n, begin + options.batch_size);
      const auto batch = SliceBatch(corpus, order, begin, end);
      const PaddedRoads padded = PadRoadBatch(batch, pad_id_);
      const Tensor rep =
          encoder_->Forward(EmbedRoads(padded), padded.lengths).last_hidden;
      PaddedRoads shifted = padded;
      for (int64_t s = 0; s < padded.batch_size; ++s) {
        for (int64_t i = padded.max_len - 1; i > 0; --i) {
          shifted.ids[static_cast<size_t>(s * padded.max_len + i)] =
              padded.ids[static_cast<size_t>(s * padded.max_len + i - 1)];
        }
        shifted.ids[static_cast<size_t>(s * padded.max_len)] = pad_id_;
      }
      Tensor dec_in = EmbedRoads(shifted);
      dec_in = tensor::Add(
          dec_in, tensor::Reshape(rep, Shape({padded.batch_size, 1, d_})));
      const Tensor dec_out = decoder_->Forward(dec_in, padded.lengths).outputs;
      // Road-token loss.
      const Tensor logits = tensor::Reshape(
          token_head_->Forward(dec_out),
          Shape({padded.batch_size * padded.max_len, net_->num_segments()}));
      std::vector<int64_t> hard(padded.ids.size(), -1);
      for (int64_t s = 0; s < padded.batch_size; ++s) {
        for (int64_t i = 0; i < padded.lengths[static_cast<size_t>(s)]; ++i) {
          const size_t idx = static_cast<size_t>(s * padded.max_len + i);
          hard[idx] = padded.ids[idx];
        }
      }
      const Tensor token_loss =
          tensor::CrossEntropyWithLogits(logits, hard, -1);
      // Timestamp reconstruction: per-step travel time (minutes), masked MSE.
      const Tensor pred_time = time_head_->Forward(dec_out);  // [B, L, 1]
      std::vector<float> mask(
          static_cast<size_t>(padded.batch_size * padded.max_len), 0.0f);
      std::vector<float> target(mask.size(), 0.0f);
      for (int64_t s = 0; s < padded.batch_size; ++s) {
        const auto* t = batch[static_cast<size_t>(s)];
        for (int64_t i = 0; i < t->size(); ++i) {
          const size_t idx = static_cast<size_t>(s * padded.max_len + i);
          const int64_t t_in = t->timestamps[static_cast<size_t>(i)];
          const int64_t t_out =
              i + 1 < t->size() ? t->timestamps[static_cast<size_t>(i + 1)]
                                : t->end_time;
          mask[idx] = 1.0f;
          target[idx] = static_cast<float>(t_out - t_in) / 60.0f;
        }
      }
      const Shape flat_shape({padded.batch_size * padded.max_len, 1});
      const Tensor masked_pred = tensor::Mul(
          tensor::Reshape(pred_time, flat_shape),
          Tensor::FromVector(flat_shape, std::move(mask)));
      const Tensor time_loss = tensor::MseLoss(masked_pred, target);
      Tensor loss = tensor::Add(token_loss, tensor::Scale(time_loss, 0.5f));
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), options.grad_clip);
      opt.Step();
      total += loss.item();
      ++batches;
    }
    last_epoch_loss = total / std::max<int64_t>(1, batches);
    if (options.verbose) {
      START_LOG(Info) << "trembr epoch " << epoch << " loss "
                      << last_epoch_loss;
    }
  }
  return last_epoch_loss;
}

}  // namespace start::baselines
