#include "baselines/node2vec.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace start::baselines {

namespace {

/// One biased second-order walk step (node2vec Sec. 3.2): weight 1/p to
/// return to `prev`, 1 to nodes adjacent to `prev`, 1/q otherwise.
int64_t NextStep(const roadnet::RoadNetwork& net, int64_t prev, int64_t cur,
                 double p, double q, common::Rng* rng) {
  const auto neighbors = net.OutSpan(cur);
  if (neighbors.empty()) return -1;
  std::vector<double> weights(static_cast<size_t>(neighbors.size()));
  for (int64_t i = 0; i < neighbors.size(); ++i) {
    const int64_t nxt = neighbors[i];
    if (nxt == prev) {
      weights[i] = 1.0 / p;
    } else if (prev >= 0 && net.HasEdge(prev, nxt)) {
      weights[i] = 1.0;
    } else {
      weights[i] = 1.0 / q;
    }
  }
  return neighbors[static_cast<size_t>(rng->Categorical(weights))];
}

}  // namespace

std::vector<float> TrainNode2Vec(const roadnet::RoadNetwork& net,
                                 const Node2VecConfig& config) {
  START_CHECK(net.finalized());
  START_CHECK_GT(config.dim, 0);
  const int64_t v = net.num_segments();
  const int64_t d = config.dim;
  common::Rng rng(config.seed);

  // Input and output embeddings, uniform init as word2vec.
  std::vector<float> in(static_cast<size_t>(v * d));
  std::vector<float> out(static_cast<size_t>(v * d), 0.0f);
  const float scale = 0.5f / static_cast<float>(d);
  for (auto& x : in) x = static_cast<float>(rng.Uniform(-scale, scale));

  // Pre-generate walks once; reuse across epochs.
  std::vector<std::vector<int64_t>> walks;
  walks.reserve(static_cast<size_t>(v * config.walks_per_node));
  for (int64_t w = 0; w < config.walks_per_node; ++w) {
    for (int64_t start = 0; start < v; ++start) {
      std::vector<int64_t> walk{start};
      int64_t prev = -1, cur = start;
      for (int64_t s = 1; s < config.walk_length; ++s) {
        const int64_t nxt = NextStep(net, prev, cur, config.p, config.q, &rng);
        if (nxt < 0) break;
        walk.push_back(nxt);
        prev = cur;
        cur = nxt;
      }
      if (walk.size() > 1) walks.push_back(std::move(walk));
    }
  }

  std::vector<float> grad_center(static_cast<size_t>(d));
  const auto sigmoid = [](float x) {
    return 1.0f / (1.0f + std::exp(-x));
  };
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const float lr = static_cast<float>(
        config.lr * (1.0 - static_cast<double>(epoch) /
                               static_cast<double>(config.epochs)));
    rng.Shuffle(&walks);
    for (const auto& walk : walks) {
      const int64_t n = static_cast<int64_t>(walk.size());
      for (int64_t i = 0; i < n; ++i) {
        const int64_t center = walk[static_cast<size_t>(i)];
        float* wc = in.data() + center * d;
        const int64_t lo = std::max<int64_t>(0, i - config.window);
        const int64_t hi = std::min(n - 1, i + config.window);
        for (int64_t j = lo; j <= hi; ++j) {
          if (j == i) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // Positive context plus negative samples (label 1 / 0).
          for (int64_t s = 0; s <= config.negatives; ++s) {
            const int64_t target =
                s == 0 ? walk[static_cast<size_t>(j)] : rng.UniformInt(v);
            const float label = s == 0 ? 1.0f : 0.0f;
            float* wt = out.data() + target * d;
            float dot = 0.0f;
            for (int64_t k = 0; k < d; ++k) dot += wc[k] * wt[k];
            const float g = (sigmoid(dot) - label) * lr;
            for (int64_t k = 0; k < d; ++k) {
              grad_center[static_cast<size_t>(k)] += g * wt[k];
              wt[k] -= g * wc[k];
            }
          }
          for (int64_t k = 0; k < d; ++k) {
            wc[k] -= grad_center[static_cast<size_t>(k)];
          }
        }
      }
    }
  }
  return in;
}

}  // namespace start::baselines
