#include "baselines/pim.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace start::baselines {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::vector<const traj::Trajectory*> SliceBatch(
    const std::vector<traj::Trajectory>& corpus,
    const std::vector<int64_t>& order, int64_t begin, int64_t end) {
  std::vector<const traj::Trajectory*> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    out.push_back(
        &corpus[static_cast<size_t>(order[static_cast<size_t>(i)])]);
  }
  return out;
}

}  // namespace

Pim::Pim(const PimConfig& config, const roadnet::RoadNetwork* net,
         common::Rng* rng)
    : d_(config.d), net_(net), pad_id_(net->num_segments()) {
  embedding_ =
      std::make_unique<nn::Embedding>(net->num_segments() + 1, d_, rng);
  if (!config.road_embedding_init.empty()) {
    START_CHECK_EQ(static_cast<int64_t>(config.road_embedding_init.size()),
                   net->num_segments() * d_);
    std::copy(config.road_embedding_init.begin(),
              config.road_embedding_init.end(), embedding_->table().data());
  }
  lstm_ = std::make_unique<nn::Lstm>(d_, d_, rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("lstm", lstm_.get());
}

Tensor Pim::EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                        eval::EncodeMode mode) {
  (void)mode;
  const PaddedRoads padded = PadRoadBatch(batch, pad_id_);
  const Tensor emb = tensor::Reshape(
      embedding_->Forward(padded.ids),
      Shape({padded.batch_size, padded.max_len, d_}));
  return lstm_->Forward(emb, padded.lengths).last_hidden;
}

double Pim::Pretrain(const std::vector<traj::Trajectory>& corpus,
                     const PretrainOptions& options) {
  START_CHECK(!corpus.empty());
  common::Rng rng(options.seed);
  nn::AdamW opt(Parameters(), options.lr);
  SetTraining(true);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(corpus.size());
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += options.batch_size) {
      const int64_t end = std::min(n, begin + options.batch_size);
      const auto batch = SliceBatch(corpus, order, begin, end);
      const PaddedRoads padded = PadRoadBatch(batch, pad_id_);
      const Tensor emb = tensor::Reshape(
          embedding_->Forward(padded.ids),
          Shape({padded.batch_size, padded.max_len, d_}));
      const nn::Lstm::Output out = lstm_->Forward(emb, padded.lengths);
      // Mutual information maximisation: global (last hidden) vs local step
      // outputs, in-batch negatives (Sec. IV-B / [18]).
      Tensor loss =
          nn::InfoNceLoss(out.last_hidden, out.outputs, padded.lengths);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), options.grad_clip);
      opt.Step();
      total += loss.item();
      ++batches;
    }
    last = total / std::max<int64_t>(1, batches);
    if (options.verbose) {
      START_LOG(Info) << "pim epoch " << epoch << " infonce " << last;
    }
  }
  return last;
}

PimTf::PimTf(const PimConfig& config, const roadnet::RoadNetwork* net,
             common::Rng* rng) {
  TransformerBaselineConfig tf_config;
  tf_config.d = config.d;
  tf_config.layers = config.layers;
  tf_config.heads = config.heads;
  tf_config.max_len = config.max_len;
  tf_config.road_embedding_init = config.road_embedding_init;
  backbone_ =
      std::make_unique<TokenTransformer>(tf_config, net->num_segments(), rng);
  RegisterModule("backbone", backbone_.get());
}

Tensor PimTf::EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                          eval::EncodeMode mode) {
  (void)mode;
  const PaddedRoads padded = PadRoadBatch(batch, backbone_->pad_id());
  const Tensor seq = backbone_->Forward(padded.ids, padded.lengths,
                                        padded.batch_size, padded.max_len);
  return MeanPoolValid(seq, padded.lengths);
}

double PimTf::Pretrain(const std::vector<traj::Trajectory>& corpus,
                       const PretrainOptions& options) {
  START_CHECK(!corpus.empty());
  common::Rng rng(options.seed);
  nn::AdamW opt(Parameters(), options.lr);
  SetTraining(true);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(corpus.size());
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += options.batch_size) {
      const int64_t end = std::min(n, begin + options.batch_size);
      const auto batch = SliceBatch(corpus, order, begin, end);
      const PaddedRoads padded = PadRoadBatch(batch, backbone_->pad_id());
      const Tensor seq = backbone_->Forward(padded.ids, padded.lengths,
                                            padded.batch_size, padded.max_len);
      const Tensor global = MeanPoolValid(seq, padded.lengths);
      Tensor loss = nn::InfoNceLoss(global, seq, padded.lengths);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), options.grad_clip);
      opt.Step();
      total += loss.item();
      ++batches;
    }
    last = total / std::max<int64_t>(1, batches);
    if (options.verbose) {
      START_LOG(Info) << "pim-tf epoch " << epoch << " infonce " << last;
    }
  }
  return last;
}

}  // namespace start::baselines
