#ifndef START_BASELINES_NODE2VEC_H_
#define START_BASELINES_NODE2VEC_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"

namespace start::baselines {

/// \brief node2vec [19] hyper-parameters.
struct Node2VecConfig {
  int64_t dim = 64;
  int64_t walk_length = 20;
  int64_t walks_per_node = 4;
  double p = 1.0;  ///< Return parameter.
  double q = 2.0;  ///< In-out parameter.
  int64_t window = 4;
  int64_t negatives = 4;
  int64_t epochs = 2;
  double lr = 0.025;
  uint64_t seed = 13;
};

/// \brief Trains node2vec road embeddings over the road graph with biased
/// second-order random walks and skip-gram negative sampling.
///
/// This is the road-representation substrate of the PIM and Toast baselines
/// and of the "w/ Node2vec" ablation (Fig. 7). Returns a row-major [V, dim]
/// table.
std::vector<float> TrainNode2Vec(const roadnet::RoadNetwork& net,
                                 const Node2VecConfig& config);

}  // namespace start::baselines

#endif  // START_BASELINES_NODE2VEC_H_
