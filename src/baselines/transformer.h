#ifndef START_BASELINES_TRANSFORMER_H_
#define START_BASELINES_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "baselines/base.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace start::baselines {

/// Width configuration shared by the Transformer-family baselines.
struct TransformerBaselineConfig {
  int64_t d = 64;
  int64_t layers = 2;
  int64_t heads = 4;
  int64_t max_len = 130;
  float dropout = 0.1f;
  uint64_t seed = 23;
  /// Optional node2vec initialisation of the road-embedding table
  /// (row-major [V, d]); used by Toast.
  std::vector<float> road_embedding_init;
};

/// \brief Shared token-Transformer backbone: road embedding table (+[MASK],
/// +[PAD], +[CLS] rows), sinusoidal positions, padding-masked encoder stack.
/// Deliberately time-blind — these baselines "consider trajectories as
/// ordinary road sequences" (Sec. I).
class TokenTransformer : public nn::Module {
 public:
  TokenTransformer(const TransformerBaselineConfig& config, int64_t num_roads,
                   common::Rng* rng);

  /// Token ids: roads in [0, V); kMaskToken/kPadToken sentinels below.
  int64_t mask_id() const { return num_roads_; }
  int64_t pad_id() const { return num_roads_ + 1; }
  int64_t cls_id() const { return num_roads_ + 2; }

  /// Encodes padded token ids [B, L] (already including a CLS slot if the
  /// caller wants one). Returns [B, L, d].
  tensor::Tensor Forward(const std::vector<int64_t>& ids,
                         const std::vector<int64_t>& lengths, int64_t batch,
                         int64_t max_len) const;

  int64_t d() const { return d_; }
  int64_t num_roads() const { return num_roads_; }

 private:
  int64_t d_;
  int64_t num_roads_;
  float dropout_;
  std::unique_ptr<nn::Embedding> embedding_;
  tensor::Tensor positional_;
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> layers_;
};

/// \brief Transformer baseline [11]: MLM pre-training (independent 15%
/// masking), mean-pooled representation.
class TransformerMlm : public SequenceBaseline {
 public:
  TransformerMlm(const TransformerBaselineConfig& config,
                 const roadnet::RoadNetwork* net, common::Rng* rng);

  double Pretrain(const std::vector<traj::Trajectory>& corpus,
                  const PretrainOptions& options) override;
  int64_t dim() const override { return backbone_->d(); }
  tensor::Tensor EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) override;

 protected:
  /// Independent per-token masking; returns flat positions + targets.
  void MaskTokens(std::vector<int64_t>* ids, int64_t batch, int64_t max_len,
                  const std::vector<int64_t>& lengths, double ratio,
                  common::Rng* rng, std::vector<int64_t>* positions,
                  std::vector<int64_t>* targets) const;
  double MlmStep(const std::vector<const traj::Trajectory*>& batch,
                 nn::AdamW* opt, common::Rng* rng, double grad_clip);

  const roadnet::RoadNetwork* net_;
  std::unique_ptr<TokenTransformer> backbone_;
  std::unique_ptr<nn::Linear> mlm_head_;
};

/// \brief BERT baseline [22]: MLM plus the segment-order discrimination task
/// described in Sec. IV-B ((T1,T2) positive vs (T2,T1) negative), with a
/// [CLS] pooled representation.
class Bert : public TransformerMlm {
 public:
  Bert(const TransformerBaselineConfig& config,
       const roadnet::RoadNetwork* net, common::Rng* rng);

  double Pretrain(const std::vector<traj::Trajectory>& corpus,
                  const PretrainOptions& options) override;
  tensor::Tensor EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) override;

 protected:
  /// Encodes with a prepended [CLS]; returns the [CLS] row [B, d].
  tensor::Tensor EncodeCls(const std::vector<int64_t>& ids, int64_t batch,
                           int64_t max_len,
                           const std::vector<int64_t>& lengths) const;

  std::unique_ptr<nn::Linear> order_head_;
};

/// \brief Toast baseline [17]: node2vec-initialised road embeddings,
/// Transformer with MLM + trajectory discrimination (real vs corrupted),
/// [CLS] pooling.
class Toast : public Bert {
 public:
  Toast(const TransformerBaselineConfig& config,
        const roadnet::RoadNetwork* net, common::Rng* rng);

  double Pretrain(const std::vector<traj::Trajectory>& corpus,
                  const PretrainOptions& options) override;
};

}  // namespace start::baselines

#endif  // START_BASELINES_TRANSFORMER_H_
