#ifndef START_BASELINES_SEQ2SEQ_H_
#define START_BASELINES_SEQ2SEQ_H_

#include <memory>
#include <vector>

#include "baselines/base.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace start::baselines {

/// Width configuration shared by the encoder-decoder baselines.
struct Seq2SeqConfig {
  int64_t d = 64;
  uint64_t seed = 21;
};

/// \brief traj2vec [9]: converts trajectories to feature sequences (road
/// features + time offsets/durations) and trains a GRU seq2seq autoencoder
/// with an MSE reconstruction loss. Representation = encoder final hidden.
class Traj2Vec : public SequenceBaseline {
 public:
  Traj2Vec(const Seq2SeqConfig& config, const roadnet::RoadNetwork* net,
           common::Rng* rng);

  double Pretrain(const std::vector<traj::Trajectory>& corpus,
                  const PretrainOptions& options) override;
  int64_t dim() const override { return d_; }
  tensor::Tensor EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) override;

 private:
  /// [B, L, F+2] feature tensor + lengths; time features zeroed in
  /// kDepartureOnly mode.
  tensor::Tensor BuildFeatures(const std::vector<const traj::Trajectory*>& b,
                               eval::EncodeMode mode,
                               std::vector<int64_t>* lengths) const;

  int64_t d_;
  int64_t feature_dim_;
  const roadnet::RoadNetwork* net_;
  std::vector<float> road_features_;
  std::unique_ptr<nn::Gru> encoder_;
  std::unique_ptr<nn::Gru> decoder_;
  std::unique_ptr<nn::Linear> reconstruct_;
};

/// \brief t2vec [8]: GRU seq2seq over road tokens with a spatial-proximity
/// aware reconstruction loss (neighbour-smoothed token targets).
/// Representation = encoder final hidden.
class T2Vec : public SequenceBaseline {
 public:
  T2Vec(const Seq2SeqConfig& config, const roadnet::RoadNetwork* net,
        common::Rng* rng);

  double Pretrain(const std::vector<traj::Trajectory>& corpus,
                  const PretrainOptions& options) override;
  int64_t dim() const override { return d_; }
  tensor::Tensor EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) override;

 protected:
  tensor::Tensor EmbedRoads(const PaddedRoads& padded) const;

  int64_t d_;
  const roadnet::RoadNetwork* net_;
  int64_t pad_id_;  ///< = |V|, extra embedding row for padding.
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Gru> encoder_;
  std::unique_ptr<nn::Gru> decoder_;
  std::unique_ptr<nn::Linear> token_head_;
  common::Rng rng_;
};

/// \brief Trembr [7]: like t2vec, but the decoder reconstructs both roads
/// and per-road travel times (the only time-aware baseline; Sec. V-A).
class Trembr : public T2Vec {
 public:
  Trembr(const Seq2SeqConfig& config, const roadnet::RoadNetwork* net,
         common::Rng* rng);

  double Pretrain(const std::vector<traj::Trajectory>& corpus,
                  const PretrainOptions& options) override;

 private:
  std::unique_ptr<nn::Linear> time_head_;
};

}  // namespace start::baselines

#endif  // START_BASELINES_SEQ2SEQ_H_
