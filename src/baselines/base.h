#ifndef START_BASELINES_BASE_H_
#define START_BASELINES_BASE_H_

#include <vector>

#include "common/rng.h"
#include "eval/encoder.h"
#include "nn/module.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace start::baselines {

/// \brief Self-supervised pre-training options shared by all baselines
/// (each baseline keeps its own *task*; these are just loop hyper-parameters).
struct PretrainOptions {
  int64_t epochs = 3;
  int64_t batch_size = 16;
  double lr = 1e-3;
  double grad_clip = 5.0;
  uint64_t seed = 5;
  bool verbose = false;
};

/// \brief Padded batch of raw road-id sequences.
struct PaddedRoads {
  int64_t batch_size = 0;
  int64_t max_len = 0;
  std::vector<int64_t> ids;      ///< [B, L]; padding slots hold `pad_id`.
  std::vector<int64_t> lengths;  ///< Valid tokens per sequence.
};

/// Pads the road sequences of a batch; `pad_id` fills the tail slots.
PaddedRoads PadRoadBatch(const std::vector<const traj::Trajectory*>& batch,
                         int64_t pad_id);

/// \brief Shared base for baseline models: an nn::Module that also fulfils
/// the eval::TrajectoryEncoder interface (Table II's common protocol).
class SequenceBaseline : public nn::Module, public eval::TrajectoryEncoder {
 public:
  void SetTraining(bool training) override {
    nn::Module::SetTraining(training);
  }
  void SetDropoutRng(common::Rng* rng) override {
    nn::Module::SetDropoutRng(rng);
  }
  std::vector<tensor::Tensor> TrainableParameters() override {
    return Parameters();
  }

  /// Runs the baseline's own self-supervised task over `corpus`. Returns the
  /// mean loss of the final epoch (for smoke tests / logging).
  virtual double Pretrain(const std::vector<traj::Trajectory>& corpus,
                          const PretrainOptions& options) = 0;
};

/// Mean over valid (non-padded) positions of a [B, L, d] tensor -> [B, d].
/// Used by baselines without a [CLS] token.
tensor::Tensor MeanPoolValid(const tensor::Tensor& seq,
                             const std::vector<int64_t>& lengths);

}  // namespace start::baselines

#endif  // START_BASELINES_BASE_H_
