#include "baselines/transformer.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "nn/init.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace start::baselines {

using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// TokenTransformer
// ---------------------------------------------------------------------------

TokenTransformer::TokenTransformer(const TransformerBaselineConfig& config,
                                   int64_t num_roads, common::Rng* rng)
    : d_(config.d), num_roads_(num_roads), dropout_(config.dropout) {
  embedding_ = std::make_unique<nn::Embedding>(num_roads + 3, d_, rng);
  if (!config.road_embedding_init.empty()) {
    START_CHECK_EQ(static_cast<int64_t>(config.road_embedding_init.size()),
                   num_roads * d_);
    std::copy(config.road_embedding_init.begin(),
              config.road_embedding_init.end(), embedding_->table().data());
  }
  RegisterModule("embedding", embedding_.get());
  positional_ = nn::SinusoidalPositionalEncoding(config.max_len + 1, d_);
  for (int64_t l = 0; l < config.layers; ++l) {
    layers_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
        d_, config.heads, d_, rng, config.dropout));
    RegisterModule("layer" + std::to_string(l), layers_.back().get());
  }
}

Tensor TokenTransformer::Forward(const std::vector<int64_t>& ids,
                                 const std::vector<int64_t>& lengths,
                                 int64_t batch, int64_t max_len) const {
  START_CHECK_EQ(static_cast<int64_t>(ids.size()), batch * max_len);
  Tensor x = embedding_->Forward(ids);  // [B*L, d]
  std::vector<int64_t> pos_ids(ids.size());
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t i = 0; i < max_len; ++i) {
      pos_ids[static_cast<size_t>(b * max_len + i)] = i;
    }
  }
  x = tensor::Add(x, tensor::GatherRows(positional_, pos_ids));
  x = tensor::Reshape(x, Shape({batch, max_len, d_}));
  x = tensor::Dropout(x, dropout_, training(), dropout_rng());
  const Tensor bias = nn::MakePaddingBias(lengths, max_len);
  for (const auto& layer : layers_) x = layer->Forward(x, bias);
  return x;
}

// ---------------------------------------------------------------------------
// TransformerMlm
// ---------------------------------------------------------------------------

TransformerMlm::TransformerMlm(const TransformerBaselineConfig& config,
                               const roadnet::RoadNetwork* net,
                               common::Rng* rng)
    : net_(net) {
  backbone_ =
      std::make_unique<TokenTransformer>(config, net->num_segments(), rng);
  mlm_head_ =
      std::make_unique<nn::Linear>(config.d, net->num_segments(), rng);
  RegisterModule("backbone", backbone_.get());
  RegisterModule("mlm_head", mlm_head_.get());
}

Tensor TransformerMlm::EncodeBatch(
    const std::vector<const traj::Trajectory*>& batch,
    eval::EncodeMode mode) {
  (void)mode;
  const PaddedRoads padded = PadRoadBatch(batch, backbone_->pad_id());
  const Tensor seq = backbone_->Forward(padded.ids, padded.lengths,
                                        padded.batch_size, padded.max_len);
  return MeanPoolValid(seq, padded.lengths);
}

void TransformerMlm::MaskTokens(std::vector<int64_t>* ids, int64_t batch,
                                int64_t max_len,
                                const std::vector<int64_t>& lengths,
                                double ratio, common::Rng* rng,
                                std::vector<int64_t>* positions,
                                std::vector<int64_t>* targets) const {
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t i = 0; i < lengths[static_cast<size_t>(b)]; ++i) {
      if (!rng->Bernoulli(ratio)) continue;
      const size_t idx = static_cast<size_t>(b * max_len + i);
      positions->push_back(static_cast<int64_t>(idx));
      targets->push_back((*ids)[idx]);
      (*ids)[idx] = backbone_->mask_id();
    }
  }
}

double TransformerMlm::MlmStep(
    const std::vector<const traj::Trajectory*>& batch, nn::AdamW* opt,
    common::Rng* rng, double grad_clip) {
  PaddedRoads padded = PadRoadBatch(batch, backbone_->pad_id());
  std::vector<int64_t> positions, targets;
  MaskTokens(&padded.ids, padded.batch_size, padded.max_len, padded.lengths,
             0.15, rng, &positions, &targets);
  if (positions.empty()) return 0.0;
  const Tensor seq = backbone_->Forward(padded.ids, padded.lengths,
                                        padded.batch_size, padded.max_len);
  const Tensor flat = tensor::Reshape(
      seq, Shape({padded.batch_size * padded.max_len, backbone_->d()}));
  const Tensor logits =
      mlm_head_->Forward(tensor::GatherRows(flat, positions));
  Tensor loss = tensor::CrossEntropyWithLogits(logits, targets);
  opt->ZeroGrad();
  loss.Backward();
  nn::ClipGradNorm(Parameters(), grad_clip);
  opt->Step();
  return loss.item();
}

double TransformerMlm::Pretrain(const std::vector<traj::Trajectory>& corpus,
                                const PretrainOptions& options) {
  START_CHECK(!corpus.empty());
  common::Rng rng(options.seed);
  nn::AdamW opt(Parameters(), options.lr);
  SetTraining(true);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(corpus.size());
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += options.batch_size) {
      const int64_t end = std::min(n, begin + options.batch_size);
      std::vector<const traj::Trajectory*> batch;
      for (int64_t i = begin; i < end; ++i) {
        batch.push_back(
            &corpus[static_cast<size_t>(order[static_cast<size_t>(i)])]);
      }
      total += MlmStep(batch, &opt, &rng, options.grad_clip);
      ++batches;
    }
    last = total / std::max<int64_t>(1, batches);
    if (options.verbose) {
      START_LOG(Info) << "transformer epoch " << epoch << " mlm " << last;
    }
  }
  return last;
}

// ---------------------------------------------------------------------------
// Bert
// ---------------------------------------------------------------------------

Bert::Bert(const TransformerBaselineConfig& config,
           const roadnet::RoadNetwork* net, common::Rng* rng)
    : TransformerMlm(config, net, rng) {
  order_head_ = std::make_unique<nn::Linear>(config.d, 1, rng);
  RegisterModule("order_head", order_head_.get());
}

Tensor Bert::EncodeCls(const std::vector<int64_t>& ids, int64_t batch,
                       int64_t max_len,
                       const std::vector<int64_t>& lengths) const {
  // Prepend [CLS] to every sequence.
  const int64_t l1 = max_len + 1;
  std::vector<int64_t> with_cls(static_cast<size_t>(batch * l1),
                                backbone_->pad_id());
  std::vector<int64_t> lens(lengths.size());
  for (int64_t b = 0; b < batch; ++b) {
    with_cls[static_cast<size_t>(b * l1)] = backbone_->cls_id();
    for (int64_t i = 0; i < max_len; ++i) {
      with_cls[static_cast<size_t>(b * l1 + i + 1)] =
          ids[static_cast<size_t>(b * max_len + i)];
    }
    lens[static_cast<size_t>(b)] = lengths[static_cast<size_t>(b)] + 1;
  }
  const Tensor seq = backbone_->Forward(with_cls, lens, batch, l1);
  return tensor::Reshape(tensor::Slice(seq, 1, 0, 1),
                         Shape({batch, backbone_->d()}));
}

Tensor Bert::EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                         eval::EncodeMode mode) {
  (void)mode;
  const PaddedRoads padded = PadRoadBatch(batch, backbone_->pad_id());
  return EncodeCls(padded.ids, padded.batch_size, padded.max_len,
                   padded.lengths);
}

double Bert::Pretrain(const std::vector<traj::Trajectory>& corpus,
                      const PretrainOptions& options) {
  START_CHECK(!corpus.empty());
  common::Rng rng(options.seed);
  nn::AdamW opt(Parameters(), options.lr);
  SetTraining(true);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(corpus.size());
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += options.batch_size) {
      const int64_t end = std::min(n, begin + options.batch_size);
      std::vector<const traj::Trajectory*> batch;
      for (int64_t i = begin; i < end; ++i) {
        batch.push_back(
            &corpus[static_cast<size_t>(order[static_cast<size_t>(i)])]);
      }
      // Task 1: MLM (one optimizer step).
      total += MlmStep(batch, &opt, &rng, options.grad_clip);
      // Task 2: segment order — swap the two halves for negatives.
      PaddedRoads padded = PadRoadBatch(batch, backbone_->pad_id());
      std::vector<float> labels(batch.size());
      for (int64_t b = 0; b < padded.batch_size; ++b) {
        const int64_t len = padded.lengths[static_cast<size_t>(b)];
        const bool positive = rng.Bernoulli(0.5);
        labels[static_cast<size_t>(b)] = positive ? 1.0f : 0.0f;
        if (!positive) {
          // (T2, T1): rotate the sequence around its midpoint.
          const int64_t half = len / 2;
          std::vector<int64_t> row(static_cast<size_t>(len));
          for (int64_t i = 0; i < len; ++i) {
            row[static_cast<size_t>(i)] =
                padded.ids[static_cast<size_t>(b * padded.max_len +
                                               (i + half) % len)];
          }
          for (int64_t i = 0; i < len; ++i) {
            padded.ids[static_cast<size_t>(b * padded.max_len + i)] =
                row[static_cast<size_t>(i)];
          }
        }
      }
      const Tensor cls = EncodeCls(padded.ids, padded.batch_size,
                                   padded.max_len, padded.lengths);
      Tensor loss = tensor::BceWithLogits(order_head_->Forward(cls), labels);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), options.grad_clip);
      opt.Step();
      total += loss.item();
      ++batches;
    }
    last = total / std::max<int64_t>(1, batches);
    if (options.verbose) {
      START_LOG(Info) << "bert epoch " << epoch << " loss " << last;
    }
  }
  return last;
}

// ---------------------------------------------------------------------------
// Toast
// ---------------------------------------------------------------------------

Toast::Toast(const TransformerBaselineConfig& config,
             const roadnet::RoadNetwork* net, common::Rng* rng)
    : Bert(config, net, rng) {}

double Toast::Pretrain(const std::vector<traj::Trajectory>& corpus,
                       const PretrainOptions& options) {
  START_CHECK(!corpus.empty());
  common::Rng rng(options.seed);
  nn::AdamW opt(Parameters(), options.lr);
  SetTraining(true);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(corpus.size());
  double last = 0.0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += options.batch_size) {
      const int64_t end = std::min(n, begin + options.batch_size);
      std::vector<const traj::Trajectory*> batch;
      for (int64_t i = begin; i < end; ++i) {
        batch.push_back(
            &corpus[static_cast<size_t>(order[static_cast<size_t>(i)])]);
      }
      // Task 1: MLM.
      total += MlmStep(batch, &opt, &rng, options.grad_clip);
      // Task 2: trajectory discrimination — corrupt half the batch by
      // replacing 30% of roads with random roads.
      PaddedRoads padded = PadRoadBatch(batch, backbone_->pad_id());
      std::vector<float> labels(batch.size());
      for (int64_t b = 0; b < padded.batch_size; ++b) {
        const bool real = rng.Bernoulli(0.5);
        labels[static_cast<size_t>(b)] = real ? 1.0f : 0.0f;
        if (!real) {
          const int64_t len = padded.lengths[static_cast<size_t>(b)];
          for (int64_t i = 0; i < len; ++i) {
            if (rng.Bernoulli(0.3)) {
              padded.ids[static_cast<size_t>(b * padded.max_len + i)] =
                  rng.UniformInt(net_->num_segments());
            }
          }
        }
      }
      const Tensor cls = EncodeCls(padded.ids, padded.batch_size,
                                   padded.max_len, padded.lengths);
      Tensor loss = tensor::BceWithLogits(order_head_->Forward(cls), labels);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), options.grad_clip);
      opt.Step();
      total += loss.item();
      ++batches;
    }
    last = total / std::max<int64_t>(1, batches);
    if (options.verbose) {
      START_LOG(Info) << "toast epoch " << epoch << " loss " << last;
    }
  }
  return last;
}

}  // namespace start::baselines
