#include "baselines/base.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/ops.h"

namespace start::baselines {

PaddedRoads PadRoadBatch(const std::vector<const traj::Trajectory*>& batch,
                         int64_t pad_id) {
  START_CHECK(!batch.empty());
  PaddedRoads out;
  out.batch_size = static_cast<int64_t>(batch.size());
  for (const auto* t : batch) {
    START_CHECK_GT(t->size(), 0);
    out.max_len = std::max(out.max_len, t->size());
  }
  out.ids.assign(static_cast<size_t>(out.batch_size * out.max_len), pad_id);
  out.lengths.resize(static_cast<size_t>(out.batch_size));
  for (int64_t b = 0; b < out.batch_size; ++b) {
    const auto* t = batch[static_cast<size_t>(b)];
    out.lengths[static_cast<size_t>(b)] = t->size();
    for (int64_t i = 0; i < t->size(); ++i) {
      out.ids[static_cast<size_t>(b * out.max_len + i)] =
          t->roads[static_cast<size_t>(i)];
    }
  }
  return out;
}

tensor::Tensor MeanPoolValid(const tensor::Tensor& seq,
                             const std::vector<int64_t>& lengths) {
  START_CHECK_EQ(seq.ndim(), 3);
  const int64_t b = seq.dim(0), l = seq.dim(1), d = seq.dim(2);
  START_CHECK_EQ(static_cast<int64_t>(lengths.size()), b);
  // Weights [B, 1, L] with 1/len on valid slots: pooling is one bmm.
  std::vector<float> w(static_cast<size_t>(b * l), 0.0f);
  for (int64_t s = 0; s < b; ++s) {
    const int64_t len = lengths[static_cast<size_t>(s)];
    START_CHECK_GT(len, 0);
    const float inv = 1.0f / static_cast<float>(len);
    for (int64_t i = 0; i < std::min(len, l); ++i) {
      w[static_cast<size_t>(s * l + i)] = inv;
    }
  }
  const tensor::Tensor weights = tensor::Tensor::FromVector(
      tensor::Shape({b, 1, l}), std::move(w));
  return tensor::Reshape(tensor::BatchMatMul(weights, seq),
                         tensor::Shape({b, d}));
}

}  // namespace start::baselines
