#ifndef START_BASELINES_PIM_H_
#define START_BASELINES_PIM_H_

#include <memory>
#include <vector>

#include "baselines/base.h"
#include "baselines/transformer.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace start::baselines {

/// Configuration for PIM / PIM-TF.
struct PimConfig {
  int64_t d = 64;
  int64_t layers = 2;   ///< Transformer layers (PIM-TF only).
  int64_t heads = 4;    ///< Transformer heads (PIM-TF only).
  int64_t max_len = 130;
  uint64_t seed = 29;
  /// node2vec initialisation of the road table (row-major [V, d]).
  std::vector<float> road_embedding_init;
};

/// \brief PIM [18]: node2vec road representations + LSTM encoder trained
/// with local/global mutual-information maximisation (InfoNCE).
/// Representation = LSTM final hidden state.
class Pim : public SequenceBaseline {
 public:
  Pim(const PimConfig& config, const roadnet::RoadNetwork* net,
      common::Rng* rng);

  double Pretrain(const std::vector<traj::Trajectory>& corpus,
                  const PretrainOptions& options) override;
  int64_t dim() const override { return d_; }
  tensor::Tensor EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) override;

 private:
  int64_t d_;
  const roadnet::RoadNetwork* net_;
  int64_t pad_id_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Lstm> lstm_;
};

/// \brief PIM-TF: PIM with the LSTM replaced by a Transformer encoder
/// (mean-pooled global representation), same mutual-information task.
class PimTf : public SequenceBaseline {
 public:
  PimTf(const PimConfig& config, const roadnet::RoadNetwork* net,
        common::Rng* rng);

  double Pretrain(const std::vector<traj::Trajectory>& corpus,
                  const PretrainOptions& options) override;
  int64_t dim() const override { return backbone_->d(); }
  tensor::Tensor EncodeBatch(const std::vector<const traj::Trajectory*>& batch,
                             eval::EncodeMode mode) override;

 private:
  std::unique_ptr<TokenTransformer> backbone_;
};

}  // namespace start::baselines

#endif  // START_BASELINES_PIM_H_
