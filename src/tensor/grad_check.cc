#include "tensor/grad_check.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace start::tensor {

GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double eps, double tol) {
  GradCheckResult result;
  result.passed = true;

  for (auto& in : inputs) in.set_requires_grad(true);
  for (auto& in : inputs) in.ZeroGrad();

  Tensor out = fn(inputs);
  START_CHECK_EQ(out.numel(), 1);
  out.Backward();

  for (size_t k = 0; k < inputs.size(); ++k) {
    Tensor& in = inputs[k];
    const int64_t n = in.numel();
    for (int64_t i = 0; i < n; ++i) {
      const float orig = in.data()[i];
      in.data()[i] = orig + static_cast<float>(eps);
      double f_plus;
      {
        NoGradGuard ng;
        f_plus = fn(inputs).item();
      }
      in.data()[i] = orig - static_cast<float>(eps);
      double f_minus;
      {
        NoGradGuard ng;
        f_minus = fn(inputs).item();
      }
      in.data()[i] = orig;
      const double numeric = (f_plus - f_minus) / (2.0 * eps);
      const double analytic = in.grad()[i];
      const double abs_err = std::fabs(numeric - analytic);
      const double denom = std::max({std::fabs(numeric), std::fabs(analytic),
                                     1.0});
      const double rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (rel_err > tol && abs_err > 1e-3) {
        result.passed = false;
        if (result.detail.empty()) {
          std::ostringstream os;
          os << "input " << k << " element " << i << ": analytic=" << analytic
             << " numeric=" << numeric;
          result.detail = os.str();
        }
      }
    }
  }
  return result;
}

}  // namespace start::tensor
