#ifndef START_TENSOR_KERNELS_H_
#define START_TENSOR_KERNELS_H_

#include <array>
#include <cstdint>

#include "tensor/tensor.h"

/// \file
/// Templated elementwise kernel engine and strided GEMM primitives.
///
/// Every elementwise op is expressed as a functor instantiated into one of
/// the kernels below (marian-style). The engine specialises a contiguous
/// same-shape fast path (single flat loop, OpenMP + SIMD) and otherwise runs
/// a fixed 4-deep loop nest whose stride arithmetic is hoisted out of the
/// inner loop — no per-element div/mod index decomposition.
///
/// Kernels read *data* through each operand's view strides (so strided views
/// feed ops without materialisation; broadcast dims have stride 0) and write
/// *gradients* through dense logical strides (gradient buffers are never
/// aliased views, see TensorImpl).

namespace start::tensor::internal {

constexpr int kMaxDims = 4;

/// Minimum elements before a kernel goes parallel (OpenMP fork overhead).
constexpr int64_t kParallelGrain = 1 << 14;

/// Iteration plan for an elementwise kernel: right-aligned output dims padded
/// with leading 1s, per-operand data strides (0 on broadcast dims) and dense
/// logical gradient strides (0 on broadcast dims).
struct ElementwisePlan {
  std::array<int64_t, kMaxDims> dims{};
  std::array<int64_t, kMaxDims> a{};   ///< a data strides.
  std::array<int64_t, kMaxDims> b{};   ///< b data strides.
  std::array<int64_t, kMaxDims> ga{};  ///< a grad (dense logical) strides.
  std::array<int64_t, kMaxDims> gb{};  ///< b grad (dense logical) strides.
  int64_t numel = 0;
  bool fast = false;  ///< Same shape and both operands contiguous.
};

/// Plan for broadcasting `a` against `b` (CHECK-fails beyond kMaxDims).
ElementwisePlan MakeBinaryPlan(const TensorImpl& a, const TensorImpl& b);

/// Plan for a unary op over `a` (b-side strides unused).
ElementwisePlan MakeUnaryPlan(const TensorImpl& a);

// ---------------------------------------------------------------------------
// Elementwise kernels.
// ---------------------------------------------------------------------------

/// out[i] = f(a[i'], b[i'']) over the broadcast iteration space.
template <class F>
inline void BinaryForward(const ElementwisePlan& p, const float* pa,
                          const float* pb, float* out, F f) {
  const auto& d = p.dims;
  if (p.fast) {
    const int64_t n = p.numel;
#pragma omp parallel for simd if (n > kParallelGrain)
    for (int64_t i = 0; i < n; ++i) out[i] = f(pa[i], pb[i]);
    return;
  }
#pragma omp parallel for collapse(2) if (p.numel > kParallelGrain)
  for (int64_t i0 = 0; i0 < d[0]; ++i0) {
    for (int64_t i1 = 0; i1 < d[1]; ++i1) {
      const float* a1 = pa + i0 * p.a[0] + i1 * p.a[1];
      const float* b1 = pb + i0 * p.b[0] + i1 * p.b[1];
      float* o1 = out + (i0 * d[1] + i1) * d[2] * d[3];
      for (int64_t i2 = 0; i2 < d[2]; ++i2) {
        const float* a2 = a1 + i2 * p.a[2];
        const float* b2 = b1 + i2 * p.b[2];
        const int64_t sa = p.a[3], sb = p.b[3];
        for (int64_t i3 = 0; i3 < d[3]; ++i3) {
          *o1++ = f(a2[i3 * sa], b2[i3 * sb]);
        }
      }
    }
  }
}

/// Accumulates d(out)/d(a) and d(out)/d(b) into the dense logical gradient
/// buffers `ga` / `gb` (either may be null). `g` is the dense output grad;
/// `pa` / `pb` are read through data strides as in the forward pass.
template <class Da, class Db>
inline void BinaryBackward(const ElementwisePlan& p, const float* pa,
                           const float* pb, const float* g, float* ga,
                           float* gb, Da da, Db db) {
  const auto& d = p.dims;
  if (p.fast) {
    const int64_t n = p.numel;
    if (ga != nullptr && gb != nullptr) {
#pragma omp parallel for simd if (n > kParallelGrain)
      for (int64_t i = 0; i < n; ++i) {
        ga[i] += g[i] * da(pa[i], pb[i]);
        gb[i] += g[i] * db(pa[i], pb[i]);
      }
    } else if (ga != nullptr) {
#pragma omp parallel for simd if (n > kParallelGrain)
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * da(pa[i], pb[i]);
    } else if (gb != nullptr) {
#pragma omp parallel for simd if (n > kParallelGrain)
      for (int64_t i = 0; i < n; ++i) gb[i] += g[i] * db(pa[i], pb[i]);
    }
    return;
  }
  // Broadcast dims accumulate into a shared grad slot (stride 0), so the
  // general path stays serial for determinism and correctness.
  const float* gp = g;
  for (int64_t i0 = 0; i0 < d[0]; ++i0) {
    for (int64_t i1 = 0; i1 < d[1]; ++i1) {
      const float* a1 = pa + i0 * p.a[0] + i1 * p.a[1];
      const float* b1 = pb + i0 * p.b[0] + i1 * p.b[1];
      float* ga1 = ga != nullptr ? ga + i0 * p.ga[0] + i1 * p.ga[1] : nullptr;
      float* gb1 = gb != nullptr ? gb + i0 * p.gb[0] + i1 * p.gb[1] : nullptr;
      for (int64_t i2 = 0; i2 < d[2]; ++i2) {
        const float* a2 = a1 + i2 * p.a[2];
        const float* b2 = b1 + i2 * p.b[2];
        float* ga2 = ga1 != nullptr ? ga1 + i2 * p.ga[2] : nullptr;
        float* gb2 = gb1 != nullptr ? gb1 + i2 * p.gb[2] : nullptr;
        for (int64_t i3 = 0; i3 < d[3]; ++i3) {
          const float av = a2[i3 * p.a[3]];
          const float bv = b2[i3 * p.b[3]];
          const float gv = *gp++;
          if (ga2 != nullptr) ga2[i3 * p.ga[3]] += gv * da(av, bv);
          if (gb2 != nullptr) gb2[i3 * p.gb[3]] += gv * db(av, bv);
        }
      }
    }
  }
}

/// out[i] = f(a[i']) — dense output, possibly strided input.
template <class F>
inline void UnaryForward(const ElementwisePlan& p, const float* pa, float* out,
                         F f) {
  const auto& d = p.dims;
  if (p.fast) {
    const int64_t n = p.numel;
#pragma omp parallel for simd if (n > kParallelGrain)
    for (int64_t i = 0; i < n; ++i) out[i] = f(pa[i]);
    return;
  }
#pragma omp parallel for collapse(2) if (p.numel > kParallelGrain)
  for (int64_t i0 = 0; i0 < d[0]; ++i0) {
    for (int64_t i1 = 0; i1 < d[1]; ++i1) {
      const float* a1 = pa + i0 * p.a[0] + i1 * p.a[1];
      float* o1 = out + (i0 * d[1] + i1) * d[2] * d[3];
      for (int64_t i2 = 0; i2 < d[2]; ++i2) {
        const float* a2 = a1 + i2 * p.a[2];
        const int64_t sa = p.a[3];
        for (int64_t i3 = 0; i3 < d[3]; ++i3) *o1++ = f(a2[i3 * sa]);
      }
    }
  }
}

/// ga[i] += g[i] * dfn(x[i'], y[i]) — g, y, ga dense; x through data strides.
template <class D>
inline void UnaryBackward(const ElementwisePlan& p, const float* g,
                          const float* x, const float* y, float* ga, D dfn) {
  const auto& d = p.dims;
  if (p.fast) {
    const int64_t n = p.numel;
#pragma omp parallel for simd if (n > kParallelGrain)
    for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * dfn(x[i], y[i]);
    return;
  }
  int64_t flat = 0;
  for (int64_t i0 = 0; i0 < d[0]; ++i0) {
    for (int64_t i1 = 0; i1 < d[1]; ++i1) {
      const float* x1 = x + i0 * p.a[0] + i1 * p.a[1];
      for (int64_t i2 = 0; i2 < d[2]; ++i2) {
        const float* x2 = x1 + i2 * p.a[2];
        const int64_t sa = p.a[3];
        for (int64_t i3 = 0; i3 < d[3]; ++i3, ++flat) {
          ga[flat] += g[flat] * dfn(x2[i3 * sa], y[flat]);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// GEMM primitives with explicit leading dimensions (row strides), so matmul
// accepts row-strided and transpose views without materialisation.
// ---------------------------------------------------------------------------

/// C[m,n] (ldc) += A[m,k] (lda) * B[k,n] (ldb).
void GemmNN(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
            int64_t ldc, int64_t m, int64_t k, int64_t n);

/// C[m,n] (ldc) += A[m,k] (lda) * B^T where B is stored [n,k] (ldb).
void GemmNT(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
            int64_t ldc, int64_t m, int64_t k, int64_t n);

/// C[m,n] (ldc) += A^T * B where A is stored [k,m] (lda), B is [k,n] (ldb).
void GemmTN(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
            int64_t ldc, int64_t m, int64_t k, int64_t n);

/// Single inner product over `n` floats — the SIMD dot microkernel shared by
/// point lookups that cannot batch rows into a GEMM (graph-index traversal
/// visits scattered rows one neighbor at a time).
float DotF32(const float* a, const float* b, int64_t n);

}  // namespace start::tensor::internal

#endif  // START_TENSOR_KERNELS_H_
