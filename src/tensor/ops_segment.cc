#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.h"

namespace start::tensor {

Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int64_t>& segment_ids,
                      int64_t num_segments) {
  START_CHECK_EQ(scores.ndim(), 1);
  const Tensor sc = scores.Contiguous();
  const int64_t e = sc.dim(0);
  START_CHECK_EQ(static_cast<int64_t>(segment_ids.size()), e);
  const float* ps = sc.data();
  // Two-pass: per-segment max for stability, then exp/sum.
  std::vector<float> seg_max(static_cast<size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    START_CHECK_MSG(s >= 0 && s < num_segments, "segment id " << s);
    seg_max[static_cast<size_t>(s)] =
        std::max(seg_max[static_cast<size_t>(s)], ps[i]);
  }
  auto out = AcquireBuffer(e);
  float* po = out->data();
  std::vector<float> seg_sum(static_cast<size_t>(num_segments), 0.0f);
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    po[i] = std::exp(ps[i] - seg_max[static_cast<size_t>(s)]);
    seg_sum[static_cast<size_t>(s)] += po[i];
  }
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    po[i] /= seg_sum[static_cast<size_t>(s)];
  }
  auto s_impl = sc.impl();
  auto ids = std::make_shared<std::vector<int64_t>>(segment_ids);
  // The output buffer doubles as the saved alphas for backward — no copy.
  auto alphas = out;
  auto backward = [s_impl, ids, alphas, e, num_segments](TensorImpl& self) {
    if (!s_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    const float* a = alphas->data();
    // d s_i = a_i * (g_i - sum_{j in seg} a_j g_j)
    std::vector<float> seg_dot(static_cast<size_t>(num_segments), 0.0f);
    for (int64_t i = 0; i < e; ++i) {
      seg_dot[static_cast<size_t>((*ids)[static_cast<size_t>(i)])] +=
          a[i] * g[i];
    }
    float* gs = s_impl->grad_ptr();
    for (int64_t i = 0; i < e; ++i) {
      const int64_t s = (*ids)[static_cast<size_t>(i)];
      gs[i] += a[i] * (g[i] - seg_dot[static_cast<size_t>(s)]);
    }
  };
  return MakeOpResultBuffer(sc.shape(), std::move(out), {sc.impl()},
                            std::move(backward), "segment_softmax");
}

Tensor SegmentWeightedSum(const Tensor& values, const Tensor& weights,
                          const std::vector<int64_t>& segment_ids,
                          int64_t num_segments) {
  START_CHECK_EQ(values.ndim(), 2);
  START_CHECK_EQ(weights.ndim(), 1);
  const Tensor vc = values.Contiguous();
  const Tensor wc = weights.Contiguous();
  const int64_t e = vc.dim(0), d = vc.dim(1);
  START_CHECK_EQ(wc.dim(0), e);
  START_CHECK_EQ(static_cast<int64_t>(segment_ids.size()), e);
  auto out =
      BufferPool::Global().AcquireZeroed(static_cast<size_t>(num_segments * d));
  const float* pv = vc.data();
  const float* pw = wc.data();
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    START_CHECK_MSG(s >= 0 && s < num_segments, "segment id " << s);
    const float w = pw[i];
    float* o = out->data() + s * d;
    const float* v = pv + i * d;
    for (int64_t j = 0; j < d; ++j) o[j] += w * v[j];
  }
  auto v_impl = vc.impl();
  auto w_impl = wc.impl();
  auto ids = std::make_shared<std::vector<int64_t>>(segment_ids);
  auto backward = [v_impl, w_impl, ids, e, d](TensorImpl& self) {
    const float* g = self.grad_ptr();
    const float* pv = v_impl->data_ptr();
    const float* pw = w_impl->data_ptr();
    for (int64_t i = 0; i < e; ++i) {
      const int64_t s = (*ids)[static_cast<size_t>(i)];
      const float* gs = g + s * d;
      if (v_impl->requires_grad) {
        float* gv = v_impl->grad_ptr() + i * d;
        const float w = pw[i];
        for (int64_t j = 0; j < d; ++j) gv[j] += w * gs[j];
      }
      if (w_impl->requires_grad) {
        const float* v = pv + i * d;
        float acc = 0.0f;
        for (int64_t j = 0; j < d; ++j) acc += v[j] * gs[j];
        w_impl->grad_ptr()[static_cast<size_t>(i)] += acc;
      }
    }
  };
  return MakeOpResultBuffer(Shape({num_segments, d}), std::move(out),
                            {vc.impl(), wc.impl()}, std::move(backward),
                            "segment_weighted_sum");
}

}  // namespace start::tensor
