#include <algorithm>
#include <cmath>

#include "tensor/op_utils.h"
#include "tensor/ops.h"

namespace start::tensor {

Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int64_t>& segment_ids,
                      int64_t num_segments) {
  START_CHECK_EQ(scores.ndim(), 1);
  const int64_t e = scores.dim(0);
  START_CHECK_EQ(static_cast<int64_t>(segment_ids.size()), e);
  const float* ps = scores.data();
  // Two-pass: per-segment max for stability, then exp/sum.
  std::vector<float> seg_max(static_cast<size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    START_CHECK_MSG(s >= 0 && s < num_segments, "segment id " << s);
    seg_max[static_cast<size_t>(s)] =
        std::max(seg_max[static_cast<size_t>(s)], ps[i]);
  }
  std::vector<float> out(static_cast<size_t>(e));
  std::vector<float> seg_sum(static_cast<size_t>(num_segments), 0.0f);
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    out[static_cast<size_t>(i)] =
        std::exp(ps[i] - seg_max[static_cast<size_t>(s)]);
    seg_sum[static_cast<size_t>(s)] += out[static_cast<size_t>(i)];
  }
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    out[static_cast<size_t>(i)] /= seg_sum[static_cast<size_t>(s)];
  }
  auto s_impl = scores.impl();
  auto ids = std::make_shared<std::vector<int64_t>>(segment_ids);
  auto alphas = std::make_shared<std::vector<float>>(out);
  auto backward = [s_impl, ids, alphas, e, num_segments](TensorImpl& self) {
    if (!s_impl->requires_grad) return;
    const float* g = self.grad.data();
    const float* a = alphas->data();
    // d s_i = a_i * (g_i - sum_{j in seg} a_j g_j)
    std::vector<float> seg_dot(static_cast<size_t>(num_segments), 0.0f);
    for (int64_t i = 0; i < e; ++i) {
      seg_dot[static_cast<size_t>((*ids)[static_cast<size_t>(i)])] +=
          a[i] * g[i];
    }
    float* gs = s_impl->grad.data();
    for (int64_t i = 0; i < e; ++i) {
      const int64_t s = (*ids)[static_cast<size_t>(i)];
      gs[i] += a[i] * (g[i] - seg_dot[static_cast<size_t>(s)]);
    }
  };
  return MakeOpResult(scores.shape(), std::move(out), {scores.impl()},
                      std::move(backward), "segment_softmax");
}

Tensor SegmentWeightedSum(const Tensor& values, const Tensor& weights,
                          const std::vector<int64_t>& segment_ids,
                          int64_t num_segments) {
  START_CHECK_EQ(values.ndim(), 2);
  START_CHECK_EQ(weights.ndim(), 1);
  const int64_t e = values.dim(0), d = values.dim(1);
  START_CHECK_EQ(weights.dim(0), e);
  START_CHECK_EQ(static_cast<int64_t>(segment_ids.size()), e);
  std::vector<float> out(static_cast<size_t>(num_segments * d), 0.0f);
  const float* pv = values.data();
  const float* pw = weights.data();
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    START_CHECK_MSG(s >= 0 && s < num_segments, "segment id " << s);
    const float w = pw[i];
    float* o = out.data() + s * d;
    const float* v = pv + i * d;
    for (int64_t j = 0; j < d; ++j) o[j] += w * v[j];
  }
  auto v_impl = values.impl();
  auto w_impl = weights.impl();
  auto ids = std::make_shared<std::vector<int64_t>>(segment_ids);
  auto backward = [v_impl, w_impl, ids, e, d](TensorImpl& self) {
    const float* g = self.grad.data();
    const float* pv = v_impl->data.data();
    const float* pw = w_impl->data.data();
    for (int64_t i = 0; i < e; ++i) {
      const int64_t s = (*ids)[static_cast<size_t>(i)];
      const float* gs = g + s * d;
      if (v_impl->requires_grad) {
        float* gv = v_impl->grad.data() + i * d;
        const float w = pw[i];
        for (int64_t j = 0; j < d; ++j) gv[j] += w * gs[j];
      }
      if (w_impl->requires_grad) {
        const float* v = pv + i * d;
        float acc = 0.0f;
        for (int64_t j = 0; j < d; ++j) acc += v[j] * gs[j];
        w_impl->grad[static_cast<size_t>(i)] += acc;
      }
    }
  };
  return MakeOpResult(Shape({num_segments, d}), std::move(out),
                      {values.impl(), weights.impl()}, std::move(backward),
                      "segment_weighted_sum");
}

}  // namespace start::tensor
