#include "tensor/qgemm.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define START_QGEMM_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace start::tensor::qgemm {

namespace {

int64_t RoundUp(int64_t v, int64_t to) { return (v + to - 1) / to * to; }

/// Byte offset of logical (row, k) inside the panel layout: panels of
/// kRowsPerPanel rows, each panel a sequence of kColBlock-wide k-blocks
/// stored [k-block][row-in-panel].
int64_t PackedOffset(int64_t row, int64_t k, int64_t cols_padded) {
  const int64_t panel = row / kRowsPerPanel;
  const int64_t r = row % kRowsPerPanel;
  const int64_t kb = k / kColBlock;
  return panel * kRowsPerPanel * cols_padded + kb * kRowsPerPanel * kColBlock +
         r * kColBlock + (k % kColBlock);
}

/// Quantizes one row of `cols` floats: absmax scale, round-half-even codes
/// clamped to [-127, 127]. The symmetric [-127, 127] range (not -128) keeps
/// the AVX2 maddubs pair-sums within i16 (127*127*2 < 32767), so the SIMD
/// path never saturates.
void QuantizeRow(const float* src, int64_t cols, int8_t* dst, float* scale) {
  float absmax = 0.0f;
  for (int64_t k = 0; k < cols; ++k) {
    absmax = std::max(absmax, std::fabs(src[k]));
  }
  if (absmax == 0.0f) {
    *scale = 0.0f;
    std::memset(dst, 0, static_cast<size_t>(cols));
    return;
  }
  *scale = absmax / 127.0f;
  const float inv = 127.0f / absmax;
  for (int64_t k = 0; k < cols; ++k) {
    int32_t q = static_cast<int32_t>(std::nearbyintf(src[k] * inv));
    q = q > 127 ? 127 : (q < -127 ? -127 : q);
    dst[k] = static_cast<int8_t>(q);
  }
}

/// Scalar reference microkernel: i32 dot of one activation row against the
/// kRowsPerPanel channels of one packed panel. Bit-exact (integer) — the
/// AVX2 kernel below must produce the same accumulators.
void PanelDotScalar(const int8_t* pa, const int8_t* panel, int64_t cols_padded,
                    int32_t acc[kRowsPerPanel]) {
  for (int64_t r = 0; r < kRowsPerPanel; ++r) acc[r] = 0;
  for (int64_t kb = 0; kb < cols_padded; kb += kColBlock) {
    const int8_t* pbk = panel + kb * kRowsPerPanel;
    for (int64_t r = 0; r < kRowsPerPanel; ++r) {
      const int8_t* br = pbk + r * kColBlock;
      int32_t s = 0;
      for (int64_t t = 0; t < kColBlock; ++t) {
        s += static_cast<int32_t>(pa[kb + t]) * static_cast<int32_t>(br[t]);
      }
      acc[r] += s;
    }
  }
}

#if START_QGEMM_HAVE_AVX2
__attribute__((target("avx2"))) int32_t HorizontalSumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// AVX2 microkernel: maddubs wants u8 x s8, so the activation's sign is
/// transferred onto the weight byte (|a| * (b * sign(a)) == a * b; a == 0
/// zeroes the weight byte). With codes in [-127, 127] the two-product i16
/// pair-sums cannot saturate. madd against ones widens to exact i32.
__attribute__((target("avx2"))) void PanelDotAvx2(
    const int8_t* pa, const int8_t* panel, int64_t cols_padded,
    int32_t acc_out[kRowsPerPanel]) {
  static_assert(kRowsPerPanel == 4 && kColBlock == 32,
                "microkernel is written for 4x32 panels");
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  for (int64_t kb = 0; kb < cols_padded; kb += kColBlock) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + kb));
    const __m256i absa = _mm256_abs_epi8(va);
    const int8_t* pbk = panel + kb * kRowsPerPanel;
    // No lambda here: a lambda is a distinct function and would not inherit
    // target("avx2"), so the intrinsics fail to inline under the base ISA.
#define START_QGEMM_STEP(r)                                          \
  _mm256_madd_epi16(                                                 \
      _mm256_maddubs_epi16(                                          \
          absa, _mm256_sign_epi8(                                    \
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>( \
                        pbk + (r)*kColBlock)),                       \
                    va)),                                            \
      ones)
    acc0 = _mm256_add_epi32(acc0, START_QGEMM_STEP(0));
    acc1 = _mm256_add_epi32(acc1, START_QGEMM_STEP(1));
    acc2 = _mm256_add_epi32(acc2, START_QGEMM_STEP(2));
    acc3 = _mm256_add_epi32(acc3, START_QGEMM_STEP(3));
#undef START_QGEMM_STEP
  }
  acc_out[0] = HorizontalSumI32(acc0);
  acc_out[1] = HorizontalSumI32(acc1);
  acc_out[2] = HorizontalSumI32(acc2);
  acc_out[3] = HorizontalSumI32(acc3);
}
#endif  // START_QGEMM_HAVE_AVX2

}  // namespace

Backend ActiveBackend() {
  static const Backend backend = [] {
#if START_QGEMM_HAVE_AVX2
    const char* env = std::getenv("START_QGEMM_BACKEND");
    if (env == nullptr || std::strcmp(env, "scalar") != 0) {
      if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
    }
#endif
    return Backend::kScalar;
  }();
  return backend;
}

const char* BackendName(Backend backend) {
  return backend == Backend::kAvx2 ? "avx2" : "scalar";
}

void QuantizeRows(const float* src, int64_t ld, int64_t rows, int64_t cols,
                  int8_t* dst, float* scales) {
  for (int64_t i = 0; i < rows; ++i) {
    QuantizeRow(src + i * ld, cols, dst + i * cols, &scales[i]);
  }
}

PackedMatrix Pack(const int8_t* q, const float* scales, int64_t rows,
                  int64_t cols) {
  START_CHECK(rows > 0 && cols > 0);
  // i32 accumulation stays exact while cols * 127^2 < 2^31.
  START_CHECK_LT(cols, int64_t{1} << 17);
  PackedMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.rows_padded = RoundUp(rows, kRowsPerPanel);
  m.cols_padded = RoundUp(cols, kColBlock);
  m.data.assign(static_cast<size_t>(m.rows_padded * m.cols_padded), 0);
  m.scales.assign(scales, scales + rows);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t k = 0; k < cols; ++k) {
      m.data[static_cast<size_t>(PackedOffset(i, k, m.cols_padded))] =
          q[i * cols + k];
    }
  }
  return m;
}

PackedMatrix QuantizeAndPack(const float* src, int64_t ld, int64_t rows,
                             int64_t cols) {
  std::vector<int8_t> q(static_cast<size_t>(rows * cols));
  std::vector<float> scales(static_cast<size_t>(rows));
  QuantizeRows(src, ld, rows, cols, q.data(), scales.data());
  return Pack(q.data(), scales.data(), rows, cols);
}

std::vector<int8_t> Unpack(const PackedMatrix& m) {
  std::vector<int8_t> q(static_cast<size_t>(m.rows * m.cols));
  for (int64_t i = 0; i < m.rows; ++i) {
    for (int64_t k = 0; k < m.cols; ++k) {
      q[static_cast<size_t>(i * m.cols + k)] =
          m.data[static_cast<size_t>(PackedOffset(i, k, m.cols_padded))];
    }
  }
  return q;
}

void QuantizeActivations(const float* a, int64_t lda, int64_t m,
                         const PackedMatrix& b, int8_t* aq, float* a_scales) {
  for (int64_t i = 0; i < m; ++i) {
    int8_t* row = aq + i * b.cols_padded;
    QuantizeRow(a + i * lda, b.cols, row, &a_scales[i]);
    if (b.cols_padded > b.cols) {
      std::memset(row + b.cols, 0, static_cast<size_t>(b.cols_padded - b.cols));
    }
  }
}

void Gemm(const int8_t* aq, const float* a_scales, int64_t m,
          const PackedMatrix& b, float* c, int64_t ldc, Backend backend) {
#if !START_QGEMM_HAVE_AVX2
  backend = Backend::kScalar;
#endif
  const int64_t panels = b.rows_padded / kRowsPerPanel;
  const float* b_scales = b.scales.data();
  const int8_t* b_data = b.data.data();
#pragma omp parallel for if (m * b.rows * b.cols_padded > (int64_t{1} << 16))
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* pa = aq + i * b.cols_padded;
    const float sa = a_scales[i];
    float* crow = c + i * ldc;
    for (int64_t p = 0; p < panels; ++p) {
      const int8_t* panel = b_data + p * kRowsPerPanel * b.cols_padded;
      int32_t acc[kRowsPerPanel];
#if START_QGEMM_HAVE_AVX2
      if (backend == Backend::kAvx2) {
        PanelDotAvx2(pa, panel, b.cols_padded, acc);
      } else {
        PanelDotScalar(pa, panel, b.cols_padded, acc);
      }
#else
      PanelDotScalar(pa, panel, b.cols_padded, acc);
#endif
      // Shared dequant epilogue: both backends run these exact float ops in
      // this exact order, which is what makes them bitwise interchangeable.
      const int64_t j0 = p * kRowsPerPanel;
      const int64_t jn = std::min(kRowsPerPanel, b.rows - j0);
      for (int64_t r = 0; r < jn; ++r) {
        crow[j0 + r] += static_cast<float>(acc[r]) * (sa * b_scales[j0 + r]);
      }
    }
  }
}

void Gemm(const int8_t* aq, const float* a_scales, int64_t m,
          const PackedMatrix& b, float* c, int64_t ldc) {
  Gemm(aq, a_scales, m, b, c, ldc, ActiveBackend());
}

void AffineForward(const float* x, int64_t ldx, int64_t m,
                   const PackedMatrix& b, const float* bias, float* y,
                   int64_t ldy) {
  // Grow-only per-thread scratch: steady-state serving quantizes activations
  // without touching the allocator.
  thread_local std::vector<int8_t> aq;
  thread_local std::vector<float> a_scales;
  if (static_cast<int64_t>(aq.size()) < m * b.cols_padded) {
    aq.resize(static_cast<size_t>(m * b.cols_padded));
  }
  if (static_cast<int64_t>(a_scales.size()) < m) {
    a_scales.resize(static_cast<size_t>(m));
  }
  QuantizeActivations(x, ldx, m, b, aq.data(), a_scales.data());
  for (int64_t i = 0; i < m; ++i) {
    float* row = y + i * ldy;
    if (bias != nullptr) {
      std::memcpy(row, bias, static_cast<size_t>(b.rows) * sizeof(float));
    } else {
      std::memset(row, 0, static_cast<size_t>(b.rows) * sizeof(float));
    }
  }
  Gemm(aq.data(), a_scales.data(), m, b, y, ldy);
}

}  // namespace start::tensor::qgemm
