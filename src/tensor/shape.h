#ifndef START_TENSOR_SHAPE_H_
#define START_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace start::tensor {

/// \brief Dense row-major tensor shape (up to 4 dimensions are used in
/// practice by this library).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  /// Number of dimensions (0 for a scalar-shaped tensor created as {}).
  int64_t ndim() const { return static_cast<int64_t>(dims_.size()); }

  /// Size of dimension `i`; negative indices count from the back.
  int64_t dim(int64_t i) const;

  /// Total number of elements (1 for an empty dims list).
  int64_t numel() const;

  const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  /// Renders like "[2, 3, 4]".
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

/// Computes the numpy-style broadcast of two shapes; CHECK-fails when the
/// shapes are not broadcast-compatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// Row-major (C-contiguous) element strides for `dims`.
std::vector<int64_t> RowMajorStrides(const std::vector<int64_t>& dims);

/// True when `strides` describe a dense row-major layout of `dims`
/// (size-1 dimensions may carry any stride).
bool StridesAreContiguous(const std::vector<int64_t>& dims,
                          const std::vector<int64_t>& strides);

/// Strides viewing data laid out as (`old_dims`, `old_strides`) under
/// `new_dims` without copying, when such a view exists (numpy-style reshape
/// without copy). Returns false when the reshape requires materialisation.
bool ComputeReshapeStrides(const std::vector<int64_t>& old_dims,
                           const std::vector<int64_t>& old_strides,
                           const std::vector<int64_t>& new_dims,
                           std::vector<int64_t>* new_strides);

}  // namespace start::tensor

#endif  // START_TENSOR_SHAPE_H_
