#ifndef START_TENSOR_TENSOR_H_
#define START_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/shape.h"

namespace start::tensor {

class Tensor;

/// \brief Storage + autograd node backing a Tensor handle.
///
/// Holds the value buffer, the (lazily allocated) gradient buffer, and the
/// reverse-mode autograd edges: the parent nodes this value was computed from
/// and a backward function that reads `grad` and accumulates into the parents'
/// `grad` buffers.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  ///< Same length as data once AllocGrad() ran.
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;
  const char* op = "leaf";

  /// Ensures the gradient buffer exists (zero-filled).
  void AllocGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// Returns true while gradient recording is enabled (default). Ops skip
/// building the autograd graph when disabled.
bool GradModeEnabled();

/// \brief RAII guard that disables autograd graph construction (inference).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// \brief Value-semantics handle to a dense float tensor with reverse-mode
/// autograd.
///
/// Copying a Tensor copies the handle (both handles alias the same storage),
/// mirroring torch.Tensor semantics. All shape checking is done with
/// START_CHECK (shape mismatch is a programming error, not a runtime
/// condition).
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- Factories -----------------------------------------------------------

  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Ones(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value, bool requires_grad = false);
  /// Takes ownership of `values`; values.size() must equal shape.numel().
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  /// Scalar (shape {1}).
  static Tensor Scalar(float value, bool requires_grad = false);
  /// Uniform random in [lo, hi).
  static Tensor Rand(const Shape& shape, common::Rng* rng, float lo, float hi,
                     bool requires_grad = false);
  /// Normal random.
  static Tensor RandN(const Shape& shape, common::Rng* rng, float mean,
                      float stddev, bool requires_grad = false);

  // ---- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t ndim() const { return shape().ndim(); }
  int64_t dim(int64_t i) const { return shape().dim(i); }
  int64_t numel() const { return shape().numel(); }
  bool requires_grad() const;
  /// Marks a leaf tensor as a trainable parameter.
  void set_requires_grad(bool value);

  float* data();
  const float* data() const;
  /// Gradient buffer; CHECK-fails when not allocated (call AllocGrad or run
  /// Backward first).
  float* grad();
  const float* grad() const;
  bool has_grad() const;

  /// Value of a 1-element tensor.
  float item() const;
  /// Element accessor by multi-index (row-major); for tests/debugging.
  float at(std::initializer_list<int64_t> idx) const;

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  // ---- Autograd ------------------------------------------------------------

  /// Zeroes this tensor's gradient buffer (allocating it if needed).
  void ZeroGrad();

  /// Runs reverse-mode autodiff from this (scalar) tensor, seeding d(self)=1.
  void Backward();

  /// Runs reverse-mode autodiff with an explicit seed gradient (same numel).
  void Backward(const std::vector<float>& seed);

  /// Returns a new leaf tensor sharing no graph edges (data is copied).
  Tensor Detach() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Creates a graph node: output tensor whose backward_fn routes gradients to
/// `parents`. Used by op implementations; exposed for extension ops.
Tensor MakeOpResult(Shape shape, std::vector<float> data,
                    std::vector<std::shared_ptr<TensorImpl>> parents,
                    std::function<void(TensorImpl&)> backward_fn,
                    const char* op_name);

}  // namespace start::tensor

#endif  // START_TENSOR_TENSOR_H_
