#ifndef START_TENSOR_TENSOR_H_
#define START_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/buffer_pool.h"
#include "tensor/shape.h"

namespace start::tensor {

class Tensor;

/// \brief Storage + autograd node backing a Tensor handle.
///
/// The value buffer is a shared, pool-recycled storage that may be aliased by
/// several impls: a view (Reshape / Slice / Transpose / row-gather of a
/// contiguous run) points into its base's storage through `offset` and
/// `strides` instead of copying. The gradient buffer is never aliased: it is
/// always dense row-major over the *logical* extent (`shape`), so backward
/// functions can use plain logical index arithmetic regardless of how the
/// value data is laid out.
struct TensorImpl {
  Shape shape;
  std::shared_ptr<std::vector<float>> storage;  ///< Value buffer (shared by views).
  std::vector<int64_t> strides;  ///< Element strides, one per dim.
  int64_t offset = 0;            ///< Element offset of this view into storage.
  bool contiguous = true;        ///< Cached StridesAreContiguous(shape, strides).
  std::shared_ptr<std::vector<float>> grad;  ///< Dense logical, numel() floats.
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;
  const char* op = "leaf";

  int64_t numel() const { return shape.numel(); }

  /// Start of this impl's data within the shared storage. Valid for any
  /// layout; elements are addressed by adding multiples of `strides`.
  float* base_ptr() { return storage->data() + offset; }
  const float* base_ptr() const { return storage->data() + offset; }

  /// Dense row-major data pointer. CHECK-fails on a non-contiguous view (the
  /// caller should go through Tensor::Contiguous() or a strided kernel).
  float* data_ptr() {
    START_CHECK_MSG(contiguous, "non-contiguous view in op " << op);
    return base_ptr();
  }
  const float* data_ptr() const {
    return const_cast<TensorImpl*>(this)->data_ptr();
  }

  bool has_grad() const {
    return grad != nullptr && static_cast<int64_t>(grad->size()) == numel();
  }
  float* grad_ptr() {
    START_CHECK_MSG(has_grad(), "gradient not allocated for op " << op);
    return grad->data();
  }

  /// Ensures the gradient buffer exists (zero-filled on first allocation).
  void AllocGrad() {
    if (!has_grad()) {
      grad = BufferPool::Global().AcquireZeroed(static_cast<size_t>(numel()));
    }
  }

  /// Zeroes the gradient buffer, allocating it if needed.
  void ResetGrad() {
    if (has_grad()) {
      grad->assign(grad->size(), 0.0f);
    } else {
      grad = BufferPool::Global().AcquireZeroed(static_cast<size_t>(numel()));
    }
  }
};

/// Returns true while gradient recording is enabled (default). Ops skip
/// building the autograd graph when disabled.
bool GradModeEnabled();

/// \brief RAII guard that disables autograd graph construction (inference).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// \brief Value-semantics handle to a dense float tensor with reverse-mode
/// autograd.
///
/// Copying a Tensor copies the handle (both handles alias the same storage),
/// mirroring torch.Tensor semantics. All shape checking is done with
/// START_CHECK (shape mismatch is a programming error, not a runtime
/// condition).
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- Factories -----------------------------------------------------------

  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Ones(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value, bool requires_grad = false);
  /// Takes ownership of `values`; values.size() must equal shape.numel().
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  /// Scalar (shape {1}).
  static Tensor Scalar(float value, bool requires_grad = false);
  /// Uniform random in [lo, hi).
  static Tensor Rand(const Shape& shape, common::Rng* rng, float lo, float hi,
                     bool requires_grad = false);
  /// Normal random.
  static Tensor RandN(const Shape& shape, common::Rng* rng, float mean,
                      float stddev, bool requires_grad = false);

  // ---- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t ndim() const { return shape().ndim(); }
  int64_t dim(int64_t i) const { return shape().dim(i); }
  int64_t numel() const { return shape().numel(); }
  bool requires_grad() const;
  /// Marks a leaf tensor as a trainable parameter.
  void set_requires_grad(bool value);

  /// Element strides of this tensor's layout (one per dim).
  const std::vector<int64_t>& strides() const;
  /// Element offset into the shared storage.
  int64_t offset() const;
  /// True when the layout is dense row-major (data() is legal).
  bool is_contiguous() const;
  /// Returns this tensor when contiguous; otherwise a materialised dense
  /// copy (an autograd op, so gradients flow back through the view).
  Tensor Contiguous() const;

  /// Dense row-major data pointer. CHECK-fails on a non-contiguous view;
  /// call Contiguous() first or address elements through strides(). Writes
  /// through this pointer on a contiguous view are visible to the base
  /// tensor (and vice versa) — views alias storage, they don't copy it.
  float* data();
  const float* data() const;
  /// Gradient buffer; CHECK-fails when not allocated (call AllocGrad or run
  /// Backward first).
  float* grad();
  const float* grad() const;
  bool has_grad() const;

  /// Value of a 1-element tensor.
  float item() const;
  /// Element accessor by multi-index (stride-aware); for tests/debugging.
  float at(std::initializer_list<int64_t> idx) const;

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  // ---- Autograd ------------------------------------------------------------

  /// Zeroes this tensor's gradient buffer (allocating it if needed).
  void ZeroGrad();

  /// Runs reverse-mode autodiff from this (scalar) tensor, seeding d(self)=1.
  void Backward();

  /// Runs reverse-mode autodiff with an explicit seed gradient (same numel).
  void Backward(const std::vector<float>& seed);

  /// Returns a new leaf tensor sharing no graph edges. Only the viewed
  /// extent is copied (a Detach of a [2, 4] slice of a huge base tensor
  /// costs 8 floats), and the result is always contiguous.
  Tensor Detach() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Creates a graph node: output tensor whose backward_fn routes gradients to
/// `parents`. Used by op implementations; exposed for extension ops.
Tensor MakeOpResult(Shape shape, std::vector<float> data,
                    std::vector<std::shared_ptr<TensorImpl>> parents,
                    std::function<void(TensorImpl&)> backward_fn,
                    const char* op_name);

/// Like MakeOpResult but takes a pool-acquired buffer directly, so hot op
/// kernels can write into recycled storage without an intermediate vector.
Tensor MakeOpResultBuffer(Shape shape,
                          std::shared_ptr<std::vector<float>> data,
                          std::vector<std::shared_ptr<TensorImpl>> parents,
                          std::function<void(TensorImpl&)> backward_fn,
                          const char* op_name);

/// Creates a zero-copy view of `base`: the result shares base's storage and
/// addresses it through (`strides`, `offset` — absolute, in elements of the
/// storage). `backward_fn` must route the view's dense logical gradient into
/// base's dense logical gradient. No data is copied.
Tensor MakeViewResult(Shape shape, std::vector<int64_t> strides,
                      int64_t offset, const Tensor& base,
                      std::function<void(TensorImpl&)> backward_fn,
                      const char* op_name);

}  // namespace start::tensor

#endif  // START_TENSOR_TENSOR_H_
