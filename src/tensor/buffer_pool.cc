#include "tensor/buffer_pool.h"

#include <algorithm>
#include <cstring>

namespace start::tensor {

namespace {

/// Bucket index: ceil(log2(n)) clamped to the bucket range; bucket k serves
/// requests with n in (2^(k-1), 2^k].
int BucketForRequest(size_t n) {
  int k = 0;
  size_t cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++k;
  }
  return k;
}

/// Bucket a buffer is parked in: floor(log2(capacity)), so every buffer in
/// bucket k has capacity >= 2^k and can serve any request routed to k.
int BucketForCapacity(size_t cap) {
  int k = -1;
  while (cap != 0) {
    cap >>= 1;
    ++k;
  }
  return k;
}

}  // namespace

BufferPool& BufferPool::Global() {
  static BufferPool* pool = new BufferPool();  // leaked: outlives all tensors
  return *pool;
}

std::shared_ptr<std::vector<float>> BufferPool::Acquire(size_t n) {
  const int bucket = std::min(BucketForRequest(n), kNumBuckets - 1);
  std::vector<float>* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!buckets_[bucket].empty()) {
      raw = buckets_[bucket].back().release();
      buckets_[bucket].pop_back();
      stats_.hits++;
      stats_.free_bytes -= raw->capacity() * sizeof(float);
    } else {
      stats_.misses++;
    }
  }
  if (raw == nullptr) {
    raw = new std::vector<float>();
    raw->reserve(static_cast<size_t>(1) << bucket);
  }
  raw->resize(n);
  return std::shared_ptr<std::vector<float>>(
      raw, [this](std::vector<float>* v) { Release(v); });
}

std::shared_ptr<std::vector<float>> BufferPool::AcquireZeroed(size_t n) {
  auto buf = Acquire(n);
  std::memset(buf->data(), 0, n * sizeof(float));
  return buf;
}

std::shared_ptr<std::vector<float>> BufferPool::Adopt(std::vector<float> v) {
  auto* raw = new std::vector<float>(std::move(v));
  return std::shared_ptr<std::vector<float>>(
      raw, [this](std::vector<float>* p) { Release(p); });
}

void BufferPool::Release(std::vector<float>* v) {
  if (v->capacity() == 0) {
    delete v;
    return;
  }
  const int bucket = std::min(BucketForCapacity(v->capacity()), kNumBuckets - 1);
  const uint64_t bytes = v->capacity() * sizeof(float);
  std::lock_guard<std::mutex> lock(mu_);
  if (buckets_[bucket].size() >= kMaxFreePerBucket ||
      stats_.free_bytes + bytes > kMaxFreeBytes) {
    delete v;
    return;
  }
  stats_.recycled++;
  stats_.free_bytes += bytes;
  buckets_[bucket].emplace_back(v);
}

void BufferPool::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& bucket : buckets_) bucket.clear();
  stats_.free_bytes = 0;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::shared_ptr<std::vector<float>> AcquireBuffer(int64_t n) {
  return BufferPool::Global().Acquire(static_cast<size_t>(n));
}

}  // namespace start::tensor
