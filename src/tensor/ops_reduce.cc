#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace start::tensor {

Tensor Sum(const Tensor& a) {
  START_CHECK(a.defined());
  const Tensor ac = a.Contiguous();
  const int64_t n = ac.numel();
  double acc = 0.0;
  const float* pa = ac.data();
  for (int64_t i = 0; i < n; ++i) acc += pa[i];
  auto a_impl = ac.impl();
  auto backward = [a_impl, n](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float g = self.grad_ptr()[0];
    float* ga = a_impl->grad_ptr();
    for (int64_t i = 0; i < n; ++i) ga[i] += g;
  };
  return MakeOpResult(Shape({1}), {static_cast<float>(acc)}, {ac.impl()},
                      std::move(backward), "sum");
}

Tensor Mean(const Tensor& a) {
  START_CHECK(a.defined());
  const Tensor ac = a.Contiguous();
  const int64_t n = ac.numel();
  START_CHECK_GT(n, 0);
  double acc = 0.0;
  const float* pa = ac.data();
  for (int64_t i = 0; i < n; ++i) acc += pa[i];
  const float inv = 1.0f / static_cast<float>(n);
  auto a_impl = ac.impl();
  auto backward = [a_impl, n, inv](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float g = self.grad_ptr()[0] * inv;
    float* ga = a_impl->grad_ptr();
    for (int64_t i = 0; i < n; ++i) ga[i] += g;
  };
  return MakeOpResult(Shape({1}), {static_cast<float>(acc / n)}, {ac.impl()},
                      std::move(backward), "mean");
}

namespace {

int64_t LastDim(const Tensor& a) { return a.shape().dim(-1); }

}  // namespace

Tensor SoftmaxLastDim(const Tensor& a) {
  START_CHECK(a.defined());
  const Tensor ac = a.Contiguous();
  const int64_t d = LastDim(ac);
  const int64_t rows = ac.numel() / d;
  auto out = AcquireBuffer(ac.numel());
  const float* pa = ac.data();
#pragma omp parallel for if (rows * d > (1 << 14))
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = pa + r * d;
    float* y = out->data() + r * d;
    float mx = x[0];
    for (int64_t i = 1; i < d; ++i) mx = std::max(mx, x[i]);
    float sum = 0.0f;
    for (int64_t i = 0; i < d; ++i) {
      y[i] = std::exp(x[i] - mx);
      sum += y[i];
    }
    const float inv = 1.0f / sum;
    for (int64_t i = 0; i < d; ++i) y[i] *= inv;
  }
  auto a_impl = ac.impl();
  // The output buffer is the saved softmax for the backward pass — no copy.
  auto y_buf = out;
  auto backward = [a_impl, y_buf, rows, d](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    float* ga = a_impl->grad_ptr();
    const float* y = y_buf->data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* yr = y + r * d;
      const float* gr = g + r * d;
      float dot = 0.0f;
      for (int64_t i = 0; i < d; ++i) dot += yr[i] * gr[i];
      float* gar = ga + r * d;
      for (int64_t i = 0; i < d; ++i) gar[i] += yr[i] * (gr[i] - dot);
    }
  };
  return MakeOpResultBuffer(ac.shape(), std::move(out), {ac.impl()},
                            std::move(backward), "softmax");
}

Tensor LogSoftmaxLastDim(const Tensor& a) {
  START_CHECK(a.defined());
  const Tensor ac = a.Contiguous();
  const int64_t d = LastDim(ac);
  const int64_t rows = ac.numel() / d;
  auto out = AcquireBuffer(ac.numel());
  const float* pa = ac.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = pa + r * d;
    float* y = out->data() + r * d;
    float mx = x[0];
    for (int64_t i = 1; i < d; ++i) mx = std::max(mx, x[i]);
    float sum = 0.0f;
    for (int64_t i = 0; i < d; ++i) sum += std::exp(x[i] - mx);
    const float lse = mx + std::log(sum);
    for (int64_t i = 0; i < d; ++i) y[i] = x[i] - lse;
  }
  auto a_impl = ac.impl();
  auto y_buf = out;
  auto backward = [a_impl, y_buf, rows, d](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    float* ga = a_impl->grad_ptr();
    const float* y = y_buf->data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* yr = y + r * d;
      const float* gr = g + r * d;
      float gsum = 0.0f;
      for (int64_t i = 0; i < d; ++i) gsum += gr[i];
      float* gar = ga + r * d;
      for (int64_t i = 0; i < d; ++i) {
        gar[i] += gr[i] - std::exp(yr[i]) * gsum;
      }
    }
  };
  return MakeOpResultBuffer(ac.shape(), std::move(out), {ac.impl()},
                            std::move(backward), "log_softmax");
}

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  START_CHECK(x.defined());
  const Tensor xc = x.Contiguous();
  const Tensor gc = gamma.Contiguous();
  const Tensor bc = beta.Contiguous();
  const int64_t d = LastDim(xc);
  START_CHECK_EQ(gc.numel(), d);
  START_CHECK_EQ(bc.numel(), d);
  const int64_t rows = xc.numel() / d;
  auto out = AcquireBuffer(xc.numel());
  // Save normalised values and inverse stddevs for the backward pass.
  auto xhat = AcquireBuffer(xc.numel());
  auto inv_std = AcquireBuffer(rows);
  const float* px = xc.data();
  const float* pg = gc.data();
  const float* pb = bc.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = px + r * d;
    float mean = 0.0f;
    for (int64_t i = 0; i < d; ++i) mean += xr[i];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (int64_t i = 0; i < d; ++i) {
      const float c = xr[i] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float istd = 1.0f / std::sqrt(var + eps);
    (*inv_std)[static_cast<size_t>(r)] = istd;
    float* hr = xhat->data() + r * d;
    float* yr = out->data() + r * d;
    for (int64_t i = 0; i < d; ++i) {
      hr[i] = (xr[i] - mean) * istd;
      yr[i] = hr[i] * pg[i] + pb[i];
    }
  }
  auto x_impl = xc.impl();
  auto g_impl = gc.impl();
  auto b_impl = bc.impl();
  auto backward = [x_impl, g_impl, b_impl, xhat, inv_std, rows,
                   d](TensorImpl& self) {
    const float* g = self.grad_ptr();
    const float* pg = g_impl->data_ptr();
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g + r * d;
      const float* hr = xhat->data() + r * d;
      if (g_impl->requires_grad) {
        float* gg = g_impl->grad_ptr();
        for (int64_t i = 0; i < d; ++i) gg[i] += gr[i] * hr[i];
      }
      if (b_impl->requires_grad) {
        float* gb = b_impl->grad_ptr();
        for (int64_t i = 0; i < d; ++i) gb[i] += gr[i];
      }
      if (x_impl->requires_grad) {
        // dx = istd/d * (d*dy*gamma - sum(dy*gamma) - xhat * sum(dy*gamma*xhat))
        const float istd = (*inv_std)[static_cast<size_t>(r)];
        float sum1 = 0.0f, sum2 = 0.0f;
        for (int64_t i = 0; i < d; ++i) {
          const float dyg = gr[i] * pg[i];
          sum1 += dyg;
          sum2 += dyg * hr[i];
        }
        float* gx = x_impl->grad_ptr() + r * d;
        const float invd = 1.0f / static_cast<float>(d);
        for (int64_t i = 0; i < d; ++i) {
          const float dyg = gr[i] * pg[i];
          gx[i] += istd * (dyg - invd * sum1 - invd * hr[i] * sum2);
        }
      }
    }
  };
  return MakeOpResultBuffer(xc.shape(), std::move(out),
                            {xc.impl(), gc.impl(), bc.impl()},
                            std::move(backward), "layer_norm");
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  START_CHECK_EQ(a.ndim(), 2);
  const Tensor ac = a.Contiguous();
  const int64_t rows = ac.dim(0), d = ac.dim(1);
  auto out = AcquireBuffer(ac.numel());
  auto norms = AcquireBuffer(rows);
  const float* pa = ac.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = pa + r * d;
    float sq = 0.0f;
    for (int64_t i = 0; i < d; ++i) sq += xr[i] * xr[i];
    const float norm = std::sqrt(sq) + eps;
    (*norms)[static_cast<size_t>(r)] = norm;
    float* yr = out->data() + r * d;
    for (int64_t i = 0; i < d; ++i) yr[i] = xr[i] / norm;
  }
  auto a_impl = ac.impl();
  auto backward = [a_impl, norms, rows, d](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    const float* x = a_impl->data_ptr();
    float* ga = a_impl->grad_ptr();
    for (int64_t r = 0; r < rows; ++r) {
      const float norm = (*norms)[static_cast<size_t>(r)];
      const float* xr = x + r * d;
      const float* gr = g + r * d;
      float dot = 0.0f;
      for (int64_t i = 0; i < d; ++i) dot += gr[i] * xr[i];
      const float inv = 1.0f / norm;
      const float inv3 = inv * inv * inv;
      float* gar = ga + r * d;
      for (int64_t i = 0; i < d; ++i) {
        gar[i] += gr[i] * inv - xr[i] * dot * inv3;
      }
    }
  };
  return MakeOpResultBuffer(ac.shape(), std::move(out), {ac.impl()},
                            std::move(backward), "l2_normalize");
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& targets,
                              int64_t ignore_index) {
  START_CHECK_EQ(logits.ndim(), 2);
  const Tensor lc = logits.Contiguous();
  const int64_t n = lc.dim(0), c = lc.dim(1);
  START_CHECK_EQ(static_cast<int64_t>(targets.size()), n);
  const float* pl = lc.data();
  // Save per-row softmax for the backward pass.
  auto probs = AcquireBuffer(n * c);
  double loss = 0.0;
  int64_t valid = 0;
  for (int64_t r = 0; r < n; ++r) {
    const float* x = pl + r * c;
    float mx = x[0];
    for (int64_t i = 1; i < c; ++i) mx = std::max(mx, x[i]);
    float sum = 0.0f;
    float* pr = probs->data() + r * c;
    for (int64_t i = 0; i < c; ++i) {
      pr[i] = std::exp(x[i] - mx);
      sum += pr[i];
    }
    const float inv = 1.0f / sum;
    for (int64_t i = 0; i < c; ++i) pr[i] *= inv;
    const int64_t t = targets[static_cast<size_t>(r)];
    if (t == ignore_index) continue;
    START_CHECK_MSG(t >= 0 && t < c, "target " << t << " out of " << c);
    loss += -std::log(std::max(pr[t], 1e-12f));
    ++valid;
  }
  START_CHECK_MSG(valid > 0, "cross entropy with no valid targets");
  const float inv_valid = 1.0f / static_cast<float>(valid);
  auto l_impl = lc.impl();
  auto tgt = std::make_shared<std::vector<int64_t>>(targets);
  auto backward = [l_impl, probs, tgt, n, c, ignore_index,
                   inv_valid](TensorImpl& self) {
    if (!l_impl->requires_grad) return;
    const float g = self.grad_ptr()[0] * inv_valid;
    float* gl = l_impl->grad_ptr();
    for (int64_t r = 0; r < n; ++r) {
      const int64_t t = (*tgt)[static_cast<size_t>(r)];
      if (t == ignore_index) continue;
      const float* pr = probs->data() + r * c;
      float* gr = gl + r * c;
      for (int64_t i = 0; i < c; ++i) {
        gr[i] += g * (pr[i] - (i == t ? 1.0f : 0.0f));
      }
    }
  };
  return MakeOpResult(Shape({1}),
                      {static_cast<float>(loss / static_cast<double>(valid))},
                      {lc.impl()}, std::move(backward), "cross_entropy");
}

Tensor MseLoss(const Tensor& pred, const std::vector<float>& target) {
  START_CHECK(pred.defined());
  const Tensor pc = pred.Contiguous();
  const int64_t n = pc.numel();
  START_CHECK_EQ(static_cast<int64_t>(target.size()), n);
  const float* pp = pc.data();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double diff = pp[i] - target[static_cast<size_t>(i)];
    loss += diff * diff;
  }
  const float inv = 1.0f / static_cast<float>(n);
  auto p_impl = pc.impl();
  auto tgt = std::make_shared<std::vector<float>>(target);
  auto backward = [p_impl, tgt, n, inv](TensorImpl& self) {
    if (!p_impl->requires_grad) return;
    const float g = self.grad_ptr()[0] * 2.0f * inv;
    const float* pp = p_impl->data_ptr();
    float* gp = p_impl->grad_ptr();
    for (int64_t i = 0; i < n; ++i) {
      gp[i] += g * (pp[i] - (*tgt)[static_cast<size_t>(i)]);
    }
  };
  return MakeOpResult(Shape({1}), {static_cast<float>(loss / n)},
                      {pc.impl()}, std::move(backward), "mse");
}

Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets) {
  START_CHECK(logits.defined());
  const Tensor lc = logits.Contiguous();
  const int64_t n = lc.numel();
  START_CHECK_EQ(static_cast<int64_t>(targets.size()), n);
  const float* pl = lc.data();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float x = pl[i];
    const float y = targets[static_cast<size_t>(i)];
    // Numerically stable: max(x,0) - x*y + log(1 + exp(-|x|)).
    loss += std::max(x, 0.0f) - x * y + std::log1p(std::exp(-std::fabs(x)));
  }
  const float inv = 1.0f / static_cast<float>(n);
  auto l_impl = lc.impl();
  auto tgt = std::make_shared<std::vector<float>>(targets);
  auto backward = [l_impl, tgt, n, inv](TensorImpl& self) {
    if (!l_impl->requires_grad) return;
    const float g = self.grad_ptr()[0] * inv;
    const float* pl = l_impl->data_ptr();
    float* gl = l_impl->grad_ptr();
    for (int64_t i = 0; i < n; ++i) {
      const float sig = 1.0f / (1.0f + std::exp(-pl[i]));
      gl[i] += g * (sig - (*tgt)[static_cast<size_t>(i)]);
    }
  };
  return MakeOpResult(Shape({1}), {static_cast<float>(loss / n)},
                      {lc.impl()}, std::move(backward), "bce");
}

}  // namespace start::tensor
