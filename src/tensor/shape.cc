#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace start::tensor {

int64_t Shape::dim(int64_t i) const {
  const int64_t n = ndim();
  if (i < 0) i += n;
  START_CHECK_MSG(i >= 0 && i < n, "dim index " << i << " out of range for " << ToString());
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t n = std::max(a.ndim(), b.ndim());
  std::vector<int64_t> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t da = i < a.ndim() ? a.dim(a.ndim() - 1 - i) : 1;
    const int64_t db = i < b.ndim() ? b.dim(b.ndim() - 1 - i) : 1;
    START_CHECK_MSG(da == db || da == 1 || db == 1,
                    "shapes not broadcastable: " << a.ToString() << " vs "
                                                 << b.ToString());
    out[static_cast<size_t>(n - 1 - i)] = std::max(da, db);
  }
  return Shape(std::move(out));
}

std::vector<int64_t> RowMajorStrides(const std::vector<int64_t>& dims) {
  std::vector<int64_t> strides(dims.size());
  int64_t stride = 1;
  for (size_t i = dims.size(); i-- > 0;) {
    strides[i] = stride;
    stride *= dims[i];
  }
  return strides;
}

bool StridesAreContiguous(const std::vector<int64_t>& dims,
                          const std::vector<int64_t>& strides) {
  int64_t expected = 1;
  for (size_t i = dims.size(); i-- > 0;) {
    if (dims[i] == 1) continue;
    if (strides[i] != expected) return false;
    expected *= dims[i];
  }
  return true;
}

bool ComputeReshapeStrides(const std::vector<int64_t>& old_dims,
                           const std::vector<int64_t>& old_strides,
                           const std::vector<int64_t>& new_dims,
                           std::vector<int64_t>* new_strides) {
  // Coalesce the old layout into maximal contiguous chunks, then try to lay
  // each new dimension out inside a single chunk (the numpy no-copy reshape
  // condition). Size-1 dims are ignored on input and get stride equal to the
  // following dim's extent on output.
  std::vector<int64_t> chunk_numel;    // elements in the chunk
  std::vector<int64_t> chunk_stride;   // stride of the chunk's last element
  for (size_t i = 0; i < old_dims.size(); ++i) {
    if (old_dims[i] == 1) continue;
    if (!chunk_numel.empty() &&
        chunk_stride.back() == old_strides[i] * old_dims[i]) {
      chunk_numel.back() *= old_dims[i];
      chunk_stride.back() = old_strides[i];
    } else {
      chunk_numel.push_back(old_dims[i]);
      chunk_stride.push_back(old_strides[i]);
    }
  }
  new_strides->assign(new_dims.size(), 0);
  size_t chunk = 0;
  int64_t left = chunk_numel.empty() ? 1 : chunk_numel[0];
  for (size_t i = 0; i < new_dims.size(); ++i) {
    const int64_t d = new_dims[i];
    if (d == 1) continue;  // stride filled in the cleanup pass below
    while (left == 1 && chunk + 1 < chunk_numel.size()) {
      ++chunk;
      left = chunk_numel[chunk];
    }
    if (left % d != 0) return false;
    left /= d;
    (*new_strides)[i] = chunk_stride[chunk] * left;
  }
  // Size-1 dims take the stride a row-major layout would give them so the
  // result still round-trips through StridesAreContiguous-style checks.
  int64_t running = 1;
  for (size_t i = new_dims.size(); i-- > 0;) {
    if (new_dims[i] == 1) {
      (*new_strides)[i] = running;
    } else {
      running = (*new_strides)[i] * new_dims[i];
    }
  }
  return true;
}

}  // namespace start::tensor
