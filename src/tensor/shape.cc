#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace start::tensor {

int64_t Shape::dim(int64_t i) const {
  const int64_t n = ndim();
  if (i < 0) i += n;
  START_CHECK_MSG(i >= 0 && i < n, "dim index " << i << " out of range for " << ToString());
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t n = std::max(a.ndim(), b.ndim());
  std::vector<int64_t> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t da = i < a.ndim() ? a.dim(a.ndim() - 1 - i) : 1;
    const int64_t db = i < b.ndim() ? b.dim(b.ndim() - 1 - i) : 1;
    START_CHECK_MSG(da == db || da == 1 || db == 1,
                    "shapes not broadcastable: " << a.ToString() << " vs "
                                                 << b.ToString());
    out[static_cast<size_t>(n - 1 - i)] = std::max(da, db);
  }
  return Shape(std::move(out));
}

}  // namespace start::tensor
