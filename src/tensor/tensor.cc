#include "tensor/tensor.h"

#include <unordered_set>

#include "common/check.h"

namespace start::tensor {

namespace {
thread_local bool g_grad_mode = true;
}  // namespace

bool GradModeEnabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Ones(const Shape& shape, bool requires_grad) {
  return Full(shape, 1.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(shape.numel()), value);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  START_CHECK_EQ(static_cast<int64_t>(values.size()), shape.numel());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector(Shape({1}), {value}, requires_grad);
}

Tensor Tensor::Rand(const Shape& shape, common::Rng* rng, float lo, float hi,
                    bool requires_grad) {
  START_CHECK(rng != nullptr);
  std::vector<float> values(static_cast<size_t>(shape.numel()));
  for (auto& v : values) v = static_cast<float>(rng->Uniform(lo, hi));
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::RandN(const Shape& shape, common::Rng* rng, float mean,
                     float stddev, bool requires_grad) {
  START_CHECK(rng != nullptr);
  std::vector<float> values(static_cast<size_t>(shape.numel()));
  for (auto& v : values) v = static_cast<float>(rng->Normal(mean, stddev));
  return FromVector(shape, std::move(values), requires_grad);
}

const Shape& Tensor::shape() const {
  START_CHECK(defined());
  return impl_->shape;
}

bool Tensor::requires_grad() const {
  START_CHECK(defined());
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  START_CHECK(defined());
  impl_->requires_grad = value;
  if (value) impl_->AllocGrad();
}

float* Tensor::data() {
  START_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  START_CHECK(defined());
  return impl_->data.data();
}

float* Tensor::grad() {
  START_CHECK(defined());
  START_CHECK_MSG(impl_->grad.size() == impl_->data.size(),
                  "gradient not allocated for op " << impl_->op);
  return impl_->grad.data();
}

const float* Tensor::grad() const {
  return const_cast<Tensor*>(this)->grad();
}

bool Tensor::has_grad() const {
  START_CHECK(defined());
  return impl_->grad.size() == impl_->data.size();
}

float Tensor::item() const {
  START_CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  START_CHECK(defined());
  const auto& dims = shape().dims();
  START_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t flat = 0;
  size_t i = 0;
  for (int64_t ix : idx) {
    START_CHECK_GE(ix, 0);
    START_CHECK_LT(ix, dims[i]);
    flat = flat * dims[i] + ix;
    ++i;
  }
  return impl_->data[static_cast<size_t>(flat)];
}

void Tensor::ZeroGrad() {
  START_CHECK(defined());
  impl_->grad.assign(impl_->data.size(), 0.0f);
}

namespace {

/// Builds a topological order of the autograd graph reachable from `root`
/// (parents before children in the returned vector).
void TopoSort(const std::shared_ptr<TensorImpl>& root,
              std::vector<std::shared_ptr<TensorImpl>>* order) {
  std::unordered_set<TensorImpl*> visited;
  // Iterative post-order DFS (graphs can be deep for RNN baselines).
  std::vector<std::pair<std::shared_ptr<TensorImpl>, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      auto child = node->parents[next_child++];
      if (visited.insert(child.get()).second) {
        stack.emplace_back(std::move(child), 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward() {
  START_CHECK_MSG(numel() == 1, "Backward() without seed requires a scalar");
  Backward({1.0f});
}

void Tensor::Backward(const std::vector<float>& seed) {
  START_CHECK(defined());
  START_CHECK_EQ(static_cast<int64_t>(seed.size()), numel());
  std::vector<std::shared_ptr<TensorImpl>> order;
  TopoSort(impl_, &order);
  // Leaf gradients accumulate across Backward() calls (optimizers own their
  // lifecycle); interior-node gradients are scratch space and reset here so
  // repeated backward passes through a retained graph behave like the first.
  for (auto& node : order) {
    if (node->backward_fn) {
      node->grad.assign(node->data.size(), 0.0f);
    } else {
      node->AllocGrad();
    }
  }
  for (size_t i = 0; i < seed.size(); ++i) impl_->grad[i] += seed[i];
  // Children come after parents in `order`; run backward in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn(**it);
  }
}

Tensor Tensor::Detach() const {
  START_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor MakeOpResult(Shape shape, std::vector<float> data,
                    std::vector<std::shared_ptr<TensorImpl>> parents,
                    std::function<void(TensorImpl&)> backward_fn,
                    const char* op_name) {
  START_CHECK_EQ(static_cast<int64_t>(data.size()), shape.numel());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->op = op_name;
  if (GradModeEnabled()) {
    bool any_requires = false;
    for (const auto& p : parents) any_requires |= p->requires_grad;
    if (any_requires) {
      impl->requires_grad = true;
      impl->parents = std::move(parents);
      impl->backward_fn = std::move(backward_fn);
    }
  }
  return Tensor(std::move(impl));
}

}  // namespace start::tensor
