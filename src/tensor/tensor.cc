#include "tensor/tensor.h"

#include <cstring>
#include <unordered_set>

#include "common/check.h"

namespace start::tensor {

namespace {
thread_local bool g_grad_mode = true;

/// Copies the logical extent of a (possibly strided) impl into a dense
/// row-major destination.
void CopyStridedRec(const float* src, const int64_t* dims,
                    const int64_t* strides, int64_t nd, float** dst) {
  if (nd == 0) {
    *(*dst)++ = *src;
    return;
  }
  if (nd == 1) {
    if (strides[0] == 1) {
      std::memcpy(*dst, src, static_cast<size_t>(dims[0]) * sizeof(float));
      *dst += dims[0];
    } else {
      for (int64_t i = 0; i < dims[0]; ++i) *(*dst)++ = src[i * strides[0]];
    }
    return;
  }
  for (int64_t i = 0; i < dims[0]; ++i) {
    CopyStridedRec(src + i * strides[0], dims + 1, strides + 1, nd - 1, dst);
  }
}

void CopyToDense(const TensorImpl& src, float* dst) {
  if (src.contiguous) {
    std::memcpy(dst, src.base_ptr(),
                static_cast<size_t>(src.numel()) * sizeof(float));
    return;
  }
  float* cursor = dst;
  CopyStridedRec(src.base_ptr(), src.shape.dims().data(), src.strides.data(),
                 src.shape.ndim(), &cursor);
}

/// Fresh contiguous impl owning a pool-acquired buffer.
std::shared_ptr<TensorImpl> MakeDenseImpl(
    Shape shape, std::shared_ptr<std::vector<float>> buffer) {
  auto impl = std::make_shared<TensorImpl>();
  impl->strides = RowMajorStrides(shape.dims());
  impl->shape = std::move(shape);
  impl->storage = std::move(buffer);
  impl->offset = 0;
  impl->contiguous = true;
  return impl;
}

}  // namespace

bool GradModeEnabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Ones(const Shape& shape, bool requires_grad) {
  return Full(shape, 1.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  auto buffer = AcquireBuffer(shape.numel());
  buffer->assign(static_cast<size_t>(shape.numel()), value);
  auto impl = MakeDenseImpl(shape, std::move(buffer));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  START_CHECK_EQ(static_cast<int64_t>(values.size()), shape.numel());
  auto impl =
      MakeDenseImpl(shape, BufferPool::Global().Adopt(std::move(values)));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector(Shape({1}), {value}, requires_grad);
}

Tensor Tensor::Rand(const Shape& shape, common::Rng* rng, float lo, float hi,
                    bool requires_grad) {
  START_CHECK(rng != nullptr);
  auto buffer = AcquireBuffer(shape.numel());
  for (auto& v : *buffer) v = static_cast<float>(rng->Uniform(lo, hi));
  auto impl = MakeDenseImpl(shape, std::move(buffer));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::RandN(const Shape& shape, common::Rng* rng, float mean,
                     float stddev, bool requires_grad) {
  START_CHECK(rng != nullptr);
  auto buffer = AcquireBuffer(shape.numel());
  for (auto& v : *buffer) v = static_cast<float>(rng->Normal(mean, stddev));
  auto impl = MakeDenseImpl(shape, std::move(buffer));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

const Shape& Tensor::shape() const {
  START_CHECK(defined());
  return impl_->shape;
}

bool Tensor::requires_grad() const {
  START_CHECK(defined());
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  START_CHECK(defined());
  impl_->requires_grad = value;
  if (value) impl_->AllocGrad();
}

const std::vector<int64_t>& Tensor::strides() const {
  START_CHECK(defined());
  return impl_->strides;
}

int64_t Tensor::offset() const {
  START_CHECK(defined());
  return impl_->offset;
}

bool Tensor::is_contiguous() const {
  START_CHECK(defined());
  return impl_->contiguous;
}

Tensor Tensor::Contiguous() const {
  START_CHECK(defined());
  if (impl_->contiguous) return *this;
  auto buffer = AcquireBuffer(numel());
  CopyToDense(*impl_, buffer->data());
  auto self_impl = impl_;
  const int64_t n = numel();
  // The dense copy enumerates elements in logical order, so the gradient
  // routes back as an identity over the dense logical grad buffers.
  auto backward = [self_impl, n](TensorImpl& self) {
    if (!self_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    float* ga = self_impl->grad_ptr();
    for (int64_t i = 0; i < n; ++i) ga[i] += g[i];
  };
  return MakeOpResultBuffer(impl_->shape, std::move(buffer), {impl_},
                            std::move(backward), "contiguous");
}

float* Tensor::data() {
  START_CHECK(defined());
  return impl_->data_ptr();
}

const float* Tensor::data() const {
  START_CHECK(defined());
  return impl_->data_ptr();
}

float* Tensor::grad() {
  START_CHECK(defined());
  return impl_->grad_ptr();
}

const float* Tensor::grad() const {
  return const_cast<Tensor*>(this)->grad();
}

bool Tensor::has_grad() const {
  START_CHECK(defined());
  return impl_->has_grad();
}

float Tensor::item() const {
  START_CHECK_EQ(numel(), 1);
  return impl_->base_ptr()[0];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  START_CHECK(defined());
  const auto& dims = shape().dims();
  START_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t flat = 0;
  size_t i = 0;
  for (int64_t ix : idx) {
    START_CHECK_GE(ix, 0);
    START_CHECK_LT(ix, dims[i]);
    flat += ix * impl_->strides[i];
    ++i;
  }
  return impl_->base_ptr()[flat];
}

void Tensor::ZeroGrad() {
  START_CHECK(defined());
  impl_->ResetGrad();
}

namespace {

/// Builds a topological order of the autograd graph reachable from `root`
/// (parents before children in the returned vector).
void TopoSort(const std::shared_ptr<TensorImpl>& root,
              std::vector<std::shared_ptr<TensorImpl>>* order) {
  std::unordered_set<TensorImpl*> visited;
  // Iterative post-order DFS (graphs can be deep for RNN baselines).
  std::vector<std::pair<std::shared_ptr<TensorImpl>, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      auto child = node->parents[next_child++];
      if (visited.insert(child.get()).second) {
        stack.emplace_back(std::move(child), 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward() {
  START_CHECK_MSG(numel() == 1, "Backward() without seed requires a scalar");
  Backward({1.0f});
}

void Tensor::Backward(const std::vector<float>& seed) {
  START_CHECK(defined());
  START_CHECK_EQ(static_cast<int64_t>(seed.size()), numel());
  std::vector<std::shared_ptr<TensorImpl>> order;
  TopoSort(impl_, &order);
  // Leaf gradients accumulate across Backward() calls (optimizers own their
  // lifecycle); interior-node gradients are scratch space and reset here so
  // repeated backward passes through a retained graph behave like the first.
  for (auto& node : order) {
    if (node->backward_fn) {
      node->ResetGrad();
    } else {
      node->AllocGrad();
    }
  }
  float* g = impl_->grad_ptr();
  for (size_t i = 0; i < seed.size(); ++i) g[i] += seed[i];
  // Children come after parents in `order`; run backward in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn(**it);
  }
}

Tensor Tensor::Detach() const {
  START_CHECK(defined());
  auto buffer = AcquireBuffer(numel());
  CopyToDense(*impl_, buffer->data());
  return Tensor(MakeDenseImpl(impl_->shape, std::move(buffer)));
}

Tensor MakeOpResult(Shape shape, std::vector<float> data,
                    std::vector<std::shared_ptr<TensorImpl>> parents,
                    std::function<void(TensorImpl&)> backward_fn,
                    const char* op_name) {
  return MakeOpResultBuffer(std::move(shape),
                            BufferPool::Global().Adopt(std::move(data)),
                            std::move(parents), std::move(backward_fn),
                            op_name);
}

Tensor MakeOpResultBuffer(Shape shape,
                          std::shared_ptr<std::vector<float>> data,
                          std::vector<std::shared_ptr<TensorImpl>> parents,
                          std::function<void(TensorImpl&)> backward_fn,
                          const char* op_name) {
  START_CHECK_EQ(static_cast<int64_t>(data->size()), shape.numel());
  auto impl = MakeDenseImpl(std::move(shape), std::move(data));
  impl->op = op_name;
  if (GradModeEnabled()) {
    bool any_requires = false;
    for (const auto& p : parents) any_requires |= p->requires_grad;
    if (any_requires) {
      impl->requires_grad = true;
      impl->parents = std::move(parents);
      impl->backward_fn = std::move(backward_fn);
    }
  }
  return Tensor(std::move(impl));
}

Tensor MakeViewResult(Shape shape, std::vector<int64_t> strides,
                      int64_t offset, const Tensor& base,
                      std::function<void(TensorImpl&)> backward_fn,
                      const char* op_name) {
  START_CHECK(base.defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->contiguous = StridesAreContiguous(shape.dims(), strides);
  impl->shape = std::move(shape);
  impl->strides = std::move(strides);
  impl->storage = base.impl()->storage;
  impl->offset = offset;
  impl->op = op_name;
  if (GradModeEnabled() && base.impl()->requires_grad) {
    impl->requires_grad = true;
    impl->parents = {base.impl()};
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

}  // namespace start::tensor
