#include <cstring>

#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace start::tensor {

namespace {

using internal::GemmNN;
using internal::GemmNT;
using internal::GemmTN;

/// How a 2-D operand maps onto the GEMM primitives without copying: either
/// row-major with an arbitrary row stride (`trans == false`, ld = row stride)
/// or a transpose view — column-major — (`trans == true`, ld = column
/// stride). Anything else must be materialised first.
struct Mat2D {
  const float* p = nullptr;
  int64_t ld = 0;
  bool trans = false;
};

bool DescribableAs2D(const Tensor& t) {
  const auto& s = t.strides();
  return s[1] == 1 || s[0] == 1;
}

Mat2D Describe2D(const TensorImpl& t) {
  Mat2D m;
  m.p = t.base_ptr();
  if (t.strides[1] == 1) {
    m.ld = t.strides[0];
    m.trans = false;
  } else {
    m.ld = t.strides[1];
    m.trans = true;
  }
  return m;
}

/// 3-D operand usable per-batch by the GEMM primitives: innermost stride must
/// be 1; batch and row strides are free (covers head slices of [B,L,D]).
struct Mat3D {
  const float* p = nullptr;
  int64_t batch_stride = 0;
  int64_t ld = 0;
};

bool DescribableAs3D(const Tensor& t) { return t.strides()[2] == 1; }

Mat3D Describe3D(const TensorImpl& t) {
  return {t.base_ptr(), t.strides[0], t.strides[1]};
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  START_CHECK_EQ(a.ndim(), 2);
  START_CHECK_EQ(b.ndim(), 2);
  // Row-strided and transpose views feed the strided GEMM kernels directly;
  // only layouts the kernels cannot address (and the double-transpose case)
  // are materialised.
  Tensor aa = DescribableAs2D(a) ? a : a.Contiguous();
  Tensor bb = DescribableAs2D(b) ? b : b.Contiguous();
  if (Describe2D(*aa.impl()).trans && Describe2D(*bb.impl()).trans) {
    aa = aa.Contiguous();
  }
  const int64_t m = aa.dim(0), k = aa.dim(1), n = bb.dim(1);
  START_CHECK_MSG(bb.dim(0) == k, "matmul inner dims: "
                                      << aa.shape().ToString() << " x "
                                      << bb.shape().ToString());
  auto out = BufferPool::Global().AcquireZeroed(static_cast<size_t>(m * n));
  const Mat2D ma = Describe2D(*aa.impl());
  const Mat2D mb = Describe2D(*bb.impl());
  if (!ma.trans && !mb.trans) {
    GemmNN(ma.p, ma.ld, mb.p, mb.ld, out->data(), n, m, k, n);
  } else if (!ma.trans && mb.trans) {
    GemmNT(ma.p, ma.ld, mb.p, mb.ld, out->data(), n, m, k, n);
  } else {
    GemmTN(ma.p, ma.ld, mb.p, mb.ld, out->data(), n, m, k, n);
  }
  auto a_impl = aa.impl();
  auto b_impl = bb.impl();
  auto backward = [a_impl, b_impl, m, k, n](TensorImpl& self) {
    const float* g = self.grad_ptr();
    const Mat2D ma = Describe2D(*a_impl);
    const Mat2D mb = Describe2D(*b_impl);
    // dA = dC * B^T ; dB = A^T * dC — grads are dense logical [m,k] / [k,n].
    if (a_impl->requires_grad) {
      float* ga = a_impl->grad_ptr();
      if (!mb.trans) {
        GemmNT(g, n, mb.p, mb.ld, ga, k, m, n, k);
      } else {
        GemmNN(g, n, mb.p, mb.ld, ga, k, m, n, k);
      }
    }
    if (b_impl->requires_grad) {
      float* gb = b_impl->grad_ptr();
      if (!ma.trans) {
        GemmTN(ma.p, ma.ld, g, n, gb, n, k, m, n);
      } else {
        GemmNN(ma.p, ma.ld, g, n, gb, n, k, m, n);
      }
    }
  };
  return MakeOpResultBuffer(Shape({m, n}), std::move(out),
                            {aa.impl(), bb.impl()}, std::move(backward),
                            "matmul");
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool transpose_b) {
  START_CHECK_EQ(a.ndim(), 3);
  START_CHECK_EQ(b.ndim(), 3);
  const Tensor aa = DescribableAs3D(a) ? a : a.Contiguous();
  const Tensor bb = DescribableAs3D(b) ? b : b.Contiguous();
  const int64_t bs = aa.dim(0), m = aa.dim(1), k = aa.dim(2);
  START_CHECK_EQ(bb.dim(0), bs);
  const int64_t n = transpose_b ? bb.dim(1) : bb.dim(2);
  const int64_t bk = transpose_b ? bb.dim(2) : bb.dim(1);
  START_CHECK_MSG(bk == k, "bmm inner dims: " << aa.shape().ToString() << " x "
                                              << bb.shape().ToString());
  auto out =
      BufferPool::Global().AcquireZeroed(static_cast<size_t>(bs * m * n));
  const Mat3D ma = Describe3D(*aa.impl());
  const Mat3D mb = Describe3D(*bb.impl());
  for (int64_t i = 0; i < bs; ++i) {
    const float* ai = ma.p + i * ma.batch_stride;
    const float* bi = mb.p + i * mb.batch_stride;
    float* ci = out->data() + i * m * n;
    if (transpose_b) {
      GemmNT(ai, ma.ld, bi, mb.ld, ci, n, m, k, n);
    } else {
      GemmNN(ai, ma.ld, bi, mb.ld, ci, n, m, k, n);
    }
  }
  auto a_impl = aa.impl();
  auto b_impl = bb.impl();
  auto backward = [a_impl, b_impl, bs, m, k, n, transpose_b](TensorImpl& self) {
    const float* g = self.grad_ptr();
    const Mat3D ma = Describe3D(*a_impl);
    const Mat3D mb = Describe3D(*b_impl);
    // Gradients are dense logical: dA is [bs,m,k], dB is b's logical shape.
    for (int64_t i = 0; i < bs; ++i) {
      const float* gi = g + i * m * n;
      const float* ai = ma.p + i * ma.batch_stride;
      const float* bi = mb.p + i * mb.batch_stride;
      float* gai =
          a_impl->requires_grad ? a_impl->grad_ptr() + i * m * k : nullptr;
      if (!transpose_b) {
        float* gbi =
            b_impl->requires_grad ? b_impl->grad_ptr() + i * k * n : nullptr;
        // dA = dC * B^T; dB = A^T * dC.
        if (gai != nullptr) GemmNT(gi, n, bi, mb.ld, gai, k, m, n, k);
        if (gbi != nullptr) GemmTN(ai, ma.ld, gi, n, gbi, n, k, m, n);
      } else {
        // C = A * B^T with B [n,k]: dA = dC * B; dB = dC^T * A.
        float* gbi =
            b_impl->requires_grad ? b_impl->grad_ptr() + i * n * k : nullptr;
        if (gai != nullptr) GemmNN(gi, n, bi, mb.ld, gai, k, m, n, k);
        if (gbi != nullptr) GemmTN(gi, n, ai, ma.ld, gbi, k, n, m, k);
      }
    }
  };
  return MakeOpResultBuffer(Shape({bs, m, n}), std::move(out),
                            {aa.impl(), bb.impl()}, std::move(backward),
                            "bmm");
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  START_CHECK(a.defined());
  START_CHECK_MSG(shape.numel() == a.numel(),
                  "reshape " << a.shape().ToString() << " -> "
                             << shape.ToString());
  // A reshape enumerates elements in logical order, so when the input layout
  // can express the new dims it is a pure view; otherwise materialise once
  // and view that (torch semantics). Either way the gradient is an identity
  // over the dense logical buffers.
  std::vector<int64_t> new_strides;
  Tensor base = a;
  if (!ComputeReshapeStrides(a.shape().dims(), a.strides(), shape.dims(),
                             &new_strides)) {
    base = a.Contiguous();
    START_CHECK(ComputeReshapeStrides(base.shape().dims(), base.strides(),
                                      shape.dims(), &new_strides));
  }
  auto base_impl = base.impl();
  const int64_t n = base.numel();
  auto backward = [base_impl, n](TensorImpl& self) {
    if (!base_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    float* ga = base_impl->grad_ptr();
    for (int64_t i = 0; i < n; ++i) ga[i] += g[i];
  };
  return MakeViewResult(shape, std::move(new_strides), base.offset(), base,
                        std::move(backward), "reshape");
}

Tensor Transpose(const Tensor& a) {
  START_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  auto a_impl = a.impl();
  auto backward = [a_impl, m, n](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    float* ga = a_impl->grad_ptr();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) ga[i * n + j] += g[j * m + i];
    }
  };
  return MakeViewResult(Shape({n, m}),
                        {a.strides()[1], a.strides()[0]}, a.offset(), a,
                        std::move(backward), "transpose");
}

namespace {

/// Computes (outer, dim_size, inner) decomposition of `shape` around `dim`:
/// the tensor is viewed as [outer, dim_size, inner] row-major.
void SplitAroundDim(const Shape& shape, int64_t dim, int64_t* outer,
                    int64_t* dim_size, int64_t* inner) {
  const int64_t nd = shape.ndim();
  if (dim < 0) dim += nd;
  START_CHECK(dim >= 0 && dim < nd);
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < dim; ++i) *outer *= shape.dim(i);
  *dim_size = shape.dim(dim);
  for (int64_t i = dim + 1; i < nd; ++i) *inner *= shape.dim(i);
}

}  // namespace

Tensor Concat(const std::vector<Tensor>& parts, int64_t dim) {
  START_CHECK(!parts.empty());
  const int64_t nd = parts[0].ndim();
  if (dim < 0) dim += nd;
  int64_t total_dim = 0;
  // The block memcpy below needs dense rows; strided views materialise here
  // (gradients still reach the view's base through the copy's graph edge).
  std::vector<Tensor> dense;
  dense.reserve(parts.size());
  for (const auto& p : parts) {
    START_CHECK_EQ(p.ndim(), nd);
    for (int64_t i = 0; i < nd; ++i) {
      if (i != dim) START_CHECK_EQ(p.dim(i), parts[0].dim(i));
    }
    total_dim += p.dim(dim);
    dense.push_back(p.Contiguous());
  }
  std::vector<int64_t> out_dims = parts[0].shape().dims();
  out_dims[static_cast<size_t>(dim)] = total_dim;
  const Shape out_shape{std::vector<int64_t>(out_dims)};

  int64_t outer, unused, inner;
  SplitAroundDim(out_shape, dim, &outer, &unused, &inner);
  auto out = AcquireBuffer(out_shape.numel());
  std::vector<int64_t> offsets(dense.size());
  {
    int64_t off = 0;
    for (size_t p = 0; p < dense.size(); ++p) {
      offsets[p] = off;
      off += dense[p].dim(dim);
    }
  }
  for (size_t p = 0; p < dense.size(); ++p) {
    const int64_t dp = dense[p].dim(dim);
    const float* src = dense[p].data();
    for (int64_t o = 0; o < outer; ++o) {
      float* dst = out->data() + (o * total_dim + offsets[p]) * inner;
      std::memcpy(dst, src + o * dp * inner,
                  static_cast<size_t>(dp * inner) * sizeof(float));
    }
  }
  std::vector<std::shared_ptr<TensorImpl>> parent_impls;
  parent_impls.reserve(dense.size());
  for (const auto& p : dense) parent_impls.push_back(p.impl());
  std::vector<int64_t> part_dims(dense.size());
  for (size_t p = 0; p < dense.size(); ++p) part_dims[p] = dense[p].dim(dim);
  auto backward = [parent_impls, part_dims, offsets, outer, inner,
                   total_dim](TensorImpl& self) {
    const float* g = self.grad_ptr();
    for (size_t p = 0; p < parent_impls.size(); ++p) {
      auto& parent = parent_impls[p];
      if (!parent->requires_grad) continue;
      const int64_t dp = part_dims[p];
      float* gp = parent->grad_ptr();
      for (int64_t o = 0; o < outer; ++o) {
        const float* gsrc = g + (o * total_dim + offsets[p]) * inner;
        float* gdst = gp + o * dp * inner;
        for (int64_t i = 0; i < dp * inner; ++i) gdst[i] += gsrc[i];
      }
    }
  };
  return MakeOpResultBuffer(out_shape, std::move(out), std::move(parent_impls),
                            std::move(backward), "concat");
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t len) {
  START_CHECK(a.defined());
  const int64_t nd = a.ndim();
  if (dim < 0) dim += nd;
  int64_t outer, dim_size, inner;
  SplitAroundDim(a.shape(), dim, &outer, &dim_size, &inner);
  START_CHECK_GE(start, 0);
  START_CHECK_LE(start + len, dim_size);
  START_CHECK_GT(len, 0);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[static_cast<size_t>(dim)] = len;
  auto a_impl = a.impl();
  auto backward = [a_impl, outer, dim_size, inner, start, len](
                      TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    float* ga = a_impl->grad_ptr();
    for (int64_t o = 0; o < outer; ++o) {
      const float* gsrc = g + o * len * inner;
      float* gdst = ga + (o * dim_size + start) * inner;
      for (int64_t i = 0; i < len * inner; ++i) gdst[i] += gsrc[i];
    }
  };
  return MakeViewResult(Shape{std::vector<int64_t>(out_dims)}, a.strides(),
                        a.offset() + start * a.strides()[static_cast<size_t>(dim)],
                        a, std::move(backward), "slice");
}

Tensor Select(const Tensor& a, int64_t dim, int64_t index) {
  START_CHECK(a.defined());
  const int64_t nd = a.ndim();
  if (dim < 0) dim += nd;
  START_CHECK(dim >= 0 && dim < nd);
  START_CHECK(index >= 0 && index < a.dim(dim));
  int64_t outer, dim_size, inner;
  SplitAroundDim(a.shape(), dim, &outer, &dim_size, &inner);
  std::vector<int64_t> out_dims;
  std::vector<int64_t> out_strides;
  for (int64_t i = 0; i < nd; ++i) {
    if (i == dim) continue;
    out_dims.push_back(a.dim(i));
    out_strides.push_back(a.strides()[static_cast<size_t>(i)]);
  }
  auto a_impl = a.impl();
  auto backward = [a_impl, outer, dim_size, inner, index](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    float* ga = a_impl->grad_ptr();
    for (int64_t o = 0; o < outer; ++o) {
      const float* gsrc = g + o * inner;
      float* gdst = ga + (o * dim_size + index) * inner;
      for (int64_t i = 0; i < inner; ++i) gdst[i] += gsrc[i];
    }
  };
  return MakeViewResult(
      Shape{std::move(out_dims)}, std::move(out_strides),
      a.offset() + index * a.strides()[static_cast<size_t>(dim)], a,
      std::move(backward), "select");
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  START_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0), cols = a.dim(1);
  const int64_t m = static_cast<int64_t>(indices.size());
  // A consecutive ascending run is a row view — the common case for window
  // lookups — and costs no copy at all.
  if (m > 0) {
    bool consecutive = indices[0] >= 0 && indices[0] + m <= rows;
    for (int64_t i = 1; consecutive && i < m; ++i) {
      consecutive = indices[static_cast<size_t>(i)] == indices[0] + i;
    }
    if (consecutive) return Slice(a, 0, indices[0], m);
  }
  const Tensor aa = a.strides()[1] == 1 ? a : a.Contiguous();
  const int64_t row_stride = aa.strides()[0];
  auto out = AcquireBuffer(m * cols);
  const float* pa = aa.impl()->base_ptr();
  for (int64_t i = 0; i < m; ++i) {
    const int64_t r = indices[static_cast<size_t>(i)];
    START_CHECK_MSG(r >= 0 && r < rows, "gather index " << r << " out of "
                                                        << rows << " rows");
    std::memcpy(out->data() + i * cols, pa + r * row_stride,
                static_cast<size_t>(cols) * sizeof(float));
  }
  auto a_impl = aa.impl();
  auto idx = std::make_shared<std::vector<int64_t>>(indices);
  auto backward = [a_impl, idx, m, cols](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    float* ga = a_impl->grad_ptr();
    for (int64_t i = 0; i < m; ++i) {
      float* dst = ga + (*idx)[static_cast<size_t>(i)] * cols;
      const float* src = g + i * cols;
      for (int64_t j = 0; j < cols; ++j) dst[j] += src[j];
    }
  };
  return MakeOpResultBuffer(Shape({m, cols}), std::move(out), {aa.impl()},
                            std::move(backward), "gather_rows");
}

}  // namespace start::tensor
