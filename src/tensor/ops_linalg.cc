#include <cstring>

#include "tensor/op_utils.h"
#include "tensor/ops.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace start::tensor {

namespace {

/// C[M,N] += A[M,K] * B[K,N] (optionally with A or B transposed flags applied
/// by the caller through strides). Plain ikj loop ordering: the innermost loop
/// is contiguous over both B and C, which vectorises well.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
#pragma omp parallel for if (m * n * k > (1 << 16))
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[M,N] += A[M,K] * B^T where B is [N,K].
void GemmAccumulateBT(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n) {
#pragma omp parallel for if (m * n * k > (1 << 16))
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

/// C[M,N] += A^T * B where A is [K,M], B is [K,N].
void GemmAccumulateAT(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n) {
  // Serial over k; row updates of C are parallelised by chunking rows of C.
#pragma omp parallel for if (m * n * k > (1 << 16))
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  START_CHECK_EQ(a.ndim(), 2);
  START_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  START_CHECK_MSG(b.dim(0) == k, "matmul inner dims: " << a.shape().ToString()
                                                       << " x "
                                                       << b.shape().ToString());
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  GemmAccumulate(a.data(), b.data(), out.data(), m, k, n);
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [a_impl, b_impl, m, k, n](TensorImpl& self) {
    const float* g = self.grad.data();
    // dA = dC * B^T ; dB = A^T * dC.
    if (a_impl->requires_grad) {
      GemmAccumulateBT(g, b_impl->data.data(), a_impl->grad.data(), m, n, k);
    }
    if (b_impl->requires_grad) {
      GemmAccumulateAT(a_impl->data.data(), g, b_impl->grad.data(), k, m, n);
    }
  };
  return MakeOpResult(Shape({m, n}), std::move(out), {a.impl(), b.impl()},
                      std::move(backward), "matmul");
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool transpose_b) {
  START_CHECK_EQ(a.ndim(), 3);
  START_CHECK_EQ(b.ndim(), 3);
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2);
  START_CHECK_EQ(b.dim(0), bs);
  const int64_t n = transpose_b ? b.dim(1) : b.dim(2);
  const int64_t bk = transpose_b ? b.dim(2) : b.dim(1);
  START_CHECK_MSG(bk == k, "bmm inner dims: " << a.shape().ToString() << " x "
                                              << b.shape().ToString());
  std::vector<float> out(static_cast<size_t>(bs * m * n), 0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < bs; ++i) {
    const float* ai = pa + i * m * k;
    const float* bi = pb + i * (transpose_b ? n * k : k * n);
    float* ci = out.data() + i * m * n;
    if (transpose_b) {
      GemmAccumulateBT(ai, bi, ci, m, k, n);
    } else {
      GemmAccumulate(ai, bi, ci, m, k, n);
    }
  }
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [a_impl, b_impl, bs, m, k, n, transpose_b](TensorImpl& self) {
    const float* g = self.grad.data();
    for (int64_t i = 0; i < bs; ++i) {
      const float* gi = g + i * m * n;
      const float* ai = a_impl->data.data() + i * m * k;
      float* gai = a_impl->requires_grad ? a_impl->grad.data() + i * m * k
                                         : nullptr;
      if (!transpose_b) {
        const float* bi = b_impl->data.data() + i * k * n;
        float* gbi = b_impl->requires_grad ? b_impl->grad.data() + i * k * n
                                           : nullptr;
        // dA = dC * B^T; dB = A^T * dC.
        if (gai != nullptr) GemmAccumulateBT(gi, bi, gai, m, n, k);
        if (gbi != nullptr) GemmAccumulateAT(ai, gi, gbi, k, m, n);
      } else {
        // C = A * B^T with B [n,k]: dA = dC * B; dB = dC^T * A.
        const float* bi = b_impl->data.data() + i * n * k;
        float* gbi = b_impl->requires_grad ? b_impl->grad.data() + i * n * k
                                           : nullptr;
        if (gai != nullptr) GemmAccumulate(gi, bi, gai, m, n, k);
        if (gbi != nullptr) GemmAccumulateAT(gi, ai, gbi, n, m, k);
      }
    }
  };
  return MakeOpResult(Shape({bs, m, n}), std::move(out), {a.impl(), b.impl()},
                      std::move(backward), "bmm");
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  START_CHECK(a.defined());
  START_CHECK_MSG(shape.numel() == a.numel(),
                  "reshape " << a.shape().ToString() << " -> "
                             << shape.ToString());
  std::vector<float> out(a.data(), a.data() + a.numel());
  auto a_impl = a.impl();
  const int64_t n = a.numel();
  auto backward = [a_impl, n](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad.data();
    float* ga = a_impl->grad.data();
    for (int64_t i = 0; i < n; ++i) ga[i] += g[i];
  };
  return MakeOpResult(shape, std::move(out), {a.impl()}, std::move(backward),
                      "reshape");
}

Tensor Transpose(const Tensor& a) {
  START_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  std::vector<float> out(static_cast<size_t>(m * n));
  const float* pa = a.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[j * m + i] = pa[i * n + j];
  }
  auto a_impl = a.impl();
  auto backward = [a_impl, m, n](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad.data();
    float* ga = a_impl->grad.data();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) ga[i * n + j] += g[j * m + i];
    }
  };
  return MakeOpResult(Shape({n, m}), std::move(out), {a.impl()},
                      std::move(backward), "transpose");
}

namespace {

/// Computes (outer, dim_size, inner) decomposition of `shape` around `dim`:
/// the tensor is viewed as [outer, dim_size, inner] row-major.
void SplitAroundDim(const Shape& shape, int64_t dim, int64_t* outer,
                    int64_t* dim_size, int64_t* inner) {
  const int64_t nd = shape.ndim();
  if (dim < 0) dim += nd;
  START_CHECK(dim >= 0 && dim < nd);
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < dim; ++i) *outer *= shape.dim(i);
  *dim_size = shape.dim(dim);
  for (int64_t i = dim + 1; i < nd; ++i) *inner *= shape.dim(i);
}

}  // namespace

Tensor Concat(const std::vector<Tensor>& parts, int64_t dim) {
  START_CHECK(!parts.empty());
  const int64_t nd = parts[0].ndim();
  if (dim < 0) dim += nd;
  int64_t total_dim = 0;
  for (const auto& p : parts) {
    START_CHECK_EQ(p.ndim(), nd);
    for (int64_t i = 0; i < nd; ++i) {
      if (i != dim) START_CHECK_EQ(p.dim(i), parts[0].dim(i));
    }
    total_dim += p.dim(dim);
  }
  std::vector<int64_t> out_dims = parts[0].shape().dims();
  out_dims[static_cast<size_t>(dim)] = total_dim;
  const Shape out_shape{std::vector<int64_t>(out_dims)};

  int64_t outer, unused, inner;
  SplitAroundDim(out_shape, dim, &outer, &unused, &inner);
  std::vector<float> out(static_cast<size_t>(out_shape.numel()));
  std::vector<int64_t> offsets(parts.size());
  {
    int64_t off = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      offsets[p] = off;
      off += parts[p].dim(dim);
    }
  }
  for (size_t p = 0; p < parts.size(); ++p) {
    const int64_t dp = parts[p].dim(dim);
    const float* src = parts[p].data();
    for (int64_t o = 0; o < outer; ++o) {
      float* dst = out.data() + (o * total_dim + offsets[p]) * inner;
      std::memcpy(dst, src + o * dp * inner,
                  static_cast<size_t>(dp * inner) * sizeof(float));
    }
  }
  std::vector<std::shared_ptr<TensorImpl>> parent_impls;
  parent_impls.reserve(parts.size());
  for (const auto& p : parts) parent_impls.push_back(p.impl());
  std::vector<int64_t> part_dims(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) part_dims[p] = parts[p].dim(dim);
  auto backward = [parent_impls, part_dims, offsets, outer, inner,
                   total_dim](TensorImpl& self) {
    const float* g = self.grad.data();
    for (size_t p = 0; p < parent_impls.size(); ++p) {
      auto& parent = parent_impls[p];
      if (!parent->requires_grad) continue;
      const int64_t dp = part_dims[p];
      float* gp = parent->grad.data();
      for (int64_t o = 0; o < outer; ++o) {
        const float* gsrc = g + (o * total_dim + offsets[p]) * inner;
        float* gdst = gp + o * dp * inner;
        for (int64_t i = 0; i < dp * inner; ++i) gdst[i] += gsrc[i];
      }
    }
  };
  return MakeOpResult(out_shape, std::move(out), std::move(parent_impls),
                      std::move(backward), "concat");
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t len) {
  START_CHECK(a.defined());
  const int64_t nd = a.ndim();
  if (dim < 0) dim += nd;
  int64_t outer, dim_size, inner;
  SplitAroundDim(a.shape(), dim, &outer, &dim_size, &inner);
  START_CHECK_GE(start, 0);
  START_CHECK_LE(start + len, dim_size);
  START_CHECK_GT(len, 0);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[static_cast<size_t>(dim)] = len;
  const Shape out_shape{std::vector<int64_t>(out_dims)};
  std::vector<float> out(static_cast<size_t>(out_shape.numel()));
  const float* pa = a.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(out.data() + o * len * inner,
                pa + (o * dim_size + start) * inner,
                static_cast<size_t>(len * inner) * sizeof(float));
  }
  auto a_impl = a.impl();
  auto backward = [a_impl, outer, dim_size, inner, start, len](
                      TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad.data();
    float* ga = a_impl->grad.data();
    for (int64_t o = 0; o < outer; ++o) {
      const float* gsrc = g + o * len * inner;
      float* gdst = ga + (o * dim_size + start) * inner;
      for (int64_t i = 0; i < len * inner; ++i) gdst[i] += gsrc[i];
    }
  };
  return MakeOpResult(out_shape, std::move(out), {a.impl()},
                      std::move(backward), "slice");
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  START_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0), cols = a.dim(1);
  const int64_t m = static_cast<int64_t>(indices.size());
  std::vector<float> out(static_cast<size_t>(m * cols));
  const float* pa = a.data();
  for (int64_t i = 0; i < m; ++i) {
    const int64_t r = indices[static_cast<size_t>(i)];
    START_CHECK_MSG(r >= 0 && r < rows, "gather index " << r << " out of "
                                                        << rows << " rows");
    std::memcpy(out.data() + i * cols, pa + r * cols,
                static_cast<size_t>(cols) * sizeof(float));
  }
  auto a_impl = a.impl();
  auto idx = std::make_shared<std::vector<int64_t>>(indices);
  auto backward = [a_impl, idx, m, cols](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad.data();
    float* ga = a_impl->grad.data();
    for (int64_t i = 0; i < m; ++i) {
      float* dst = ga + (*idx)[static_cast<size_t>(i)] * cols;
      const float* src = g + i * cols;
      for (int64_t j = 0; j < cols; ++j) dst[j] += src[j];
    }
  };
  return MakeOpResult(Shape({m, cols}), std::move(out), {a.impl()},
                      std::move(backward), "gather_rows");
}

}  // namespace start::tensor
