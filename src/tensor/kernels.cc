#include "tensor/kernels.h"

#include "common/check.h"
#include "tensor/shape.h"

namespace start::tensor::internal {

namespace {

/// Right-aligns `dims`/`strides` of one operand against the broadcast output
/// dims, zeroing strides on broadcast dimensions.
void AlignOperand(const Shape& shape, const std::vector<int64_t>& strides,
                  const std::array<int64_t, kMaxDims>& out_dims,
                  std::array<int64_t, kMaxDims>* data_strides,
                  std::array<int64_t, kMaxDims>* grad_strides) {
  data_strides->fill(0);
  if (grad_strides != nullptr) grad_strides->fill(0);
  const std::vector<int64_t> logical = RowMajorStrides(shape.dims());
  for (int64_t i = 0; i < shape.ndim(); ++i) {
    const size_t src = static_cast<size_t>(shape.ndim() - 1 - i);
    const size_t slot = static_cast<size_t>(kMaxDims - 1 - i);
    const bool broadcast = shape.dims()[src] == 1 && out_dims[slot] != 1;
    (*data_strides)[slot] = broadcast ? 0 : strides[src];
    if (grad_strides != nullptr) {
      (*grad_strides)[slot] = broadcast ? 0 : logical[src];
    }
  }
}

}  // namespace

ElementwisePlan MakeBinaryPlan(const TensorImpl& a, const TensorImpl& b) {
  START_CHECK_LE(a.shape.ndim(), kMaxDims);
  START_CHECK_LE(b.shape.ndim(), kMaxDims);
  const Shape out = BroadcastShapes(a.shape, b.shape);
  ElementwisePlan plan;
  plan.numel = out.numel();
  plan.dims.fill(1);
  for (int64_t i = 0; i < out.ndim(); ++i) {
    plan.dims[static_cast<size_t>(kMaxDims - 1 - i)] = out.dim(out.ndim() - 1 - i);
  }
  AlignOperand(a.shape, a.strides, plan.dims, &plan.a, &plan.ga);
  AlignOperand(b.shape, b.strides, plan.dims, &plan.b, &plan.gb);
  plan.fast = a.shape == b.shape && a.contiguous && b.contiguous;
  return plan;
}

ElementwisePlan MakeUnaryPlan(const TensorImpl& a) {
  START_CHECK_LE(a.shape.ndim(), kMaxDims);
  ElementwisePlan plan;
  plan.numel = a.numel();
  plan.dims.fill(1);
  for (int64_t i = 0; i < a.shape.ndim(); ++i) {
    plan.dims[static_cast<size_t>(kMaxDims - 1 - i)] =
        a.shape.dim(a.shape.ndim() - 1 - i);
  }
  AlignOperand(a.shape, a.strides, plan.dims, &plan.a, nullptr);
  plan.fast = a.contiguous;
  return plan;
}

void GemmNN(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
            int64_t ldc, int64_t m, int64_t k, int64_t n) {
  // ikj ordering: innermost loop is contiguous over both B and C rows.
#pragma omp parallel for if (m * n * k > (1 << 16))
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmNT(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
            int64_t ldc, int64_t m, int64_t k, int64_t n) {
#pragma omp parallel for if (m * n * k > (1 << 16))
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * ldb;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

void GemmTN(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
            int64_t ldc, int64_t m, int64_t k, int64_t n) {
  // Serial over k; row updates of C are parallelised by chunking rows of C.
#pragma omp parallel for if (m * n * k > (1 << 16))
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[p * lda + i];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

float DotF32(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace start::tensor::internal
