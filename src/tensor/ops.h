#ifndef START_TENSOR_OPS_H_
#define START_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace start::tensor {

// ---------------------------------------------------------------------------
// Elementwise ops (numpy-style broadcasting up to 4 dimensions).
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Neg(const Tensor& a);
/// a * s (scalar).
Tensor Scale(const Tensor& a, float s);
/// a + s (scalar).
Tensor AddScalar(const Tensor& a, float s);

Tensor Relu(const Tensor& a);
/// LeakyReLU with the paper's default negative slope 0.2.
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);
/// ELU with alpha = 1 (as in GAT).
Tensor Elu(const Tensor& a, float alpha = 1.0f);
Tensor Gelu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);

/// Inverted-dropout: zeroes elements with probability p and rescales the rest
/// by 1/(1-p). Identity when `training` is false or p == 0. Samples the mask
/// from `rng` when given, else from common::GlobalRng() — pass an explicit
/// generator for reproducible masks (the global one is shared process state).
Tensor Dropout(const Tensor& a, float p, bool training,
               common::Rng* rng = nullptr);

// ---------------------------------------------------------------------------
// Shape ops. These return zero-copy views sharing the input's storage
// whenever the stride system can express the result (always for Slice,
// Select and 2-D Transpose; for Reshape unless the input's layout cannot be
// re-expressed, in which case the input is materialised first). Gradients
// flow through views like through any other op.
// ---------------------------------------------------------------------------

/// Returns a tensor with the same data viewed under `shape` (numel must match).
Tensor Reshape(const Tensor& a, const Shape& shape);
/// Transposes a 2-D tensor (zero-copy stride swap).
Tensor Transpose(const Tensor& a);
/// Concatenates tensors along `dim`. All other dimensions must agree.
Tensor Concat(const std::vector<Tensor>& parts, int64_t dim);
/// Slices `len` elements starting at `start` along `dim` (zero-copy view).
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t len);
/// Removes dimension `dim` at `index`: out = a[..., index, ...] (zero-copy
/// view; the rnn time-step hot path).
Tensor Select(const Tensor& a, int64_t dim, int64_t index);
/// Gathers rows of a 2-D tensor: out[i, :] = a[indices[i], :]. This is also
/// the embedding-lookup primitive (backward scatter-adds into `a`). When the
/// indices form a consecutive run, the result is a zero-copy row view.
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// 2-D matrix product [M,K]x[K,N] -> [M,N] (OpenMP-parallel over rows).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Batched matmul: [B,M,K]x[B,K,N] -> [B,M,N]. When transpose_b is true, b is
/// [B,N,K] and used as its transpose.
Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool transpose_b = false);

// ---------------------------------------------------------------------------
// Reductions & normalisation.
// ---------------------------------------------------------------------------

/// Sum of all elements -> scalar.
Tensor Sum(const Tensor& a);
/// Mean of all elements -> scalar.
Tensor Mean(const Tensor& a);
/// Softmax over the last dimension (numerically stabilised).
Tensor SoftmaxLastDim(const Tensor& a);
/// Log-softmax over the last dimension.
Tensor LogSoftmaxLastDim(const Tensor& a);
/// Fused layer normalisation over the last dimension:
/// y = (x - mu) / sqrt(var + eps) * gamma + beta.
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);
/// L2-normalises each row of a 2-D tensor (used by cosine-similarity losses).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-12f);

// ---------------------------------------------------------------------------
// Losses (fused, with analytic backward).
// ---------------------------------------------------------------------------

/// Mean cross-entropy between `logits` [N,C] and integer `targets` (size N).
/// Entries whose target equals `ignore_index` contribute nothing.
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& targets,
                              int64_t ignore_index = -1);
/// Mean squared error against a constant target (no gradient to target).
Tensor MseLoss(const Tensor& pred, const std::vector<float>& target);
/// Mean binary cross-entropy with logits against 0/1 constant targets.
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets);

// ---------------------------------------------------------------------------
// Segment ops (sparse graph attention; Sec. III-A of the paper).
// ---------------------------------------------------------------------------

/// Softmax of `scores` [E] within segments given by `segment_ids` [E] (values
/// in [0, num_segments)). Empty segments are allowed.
Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int64_t>& segment_ids,
                      int64_t num_segments);
/// out[s, :] = sum_{e : segment_ids[e] == s} weights[e] * values[e, :].
/// `values` is [E,D], `weights` is [E]; result is [num_segments, D].
Tensor SegmentWeightedSum(const Tensor& values, const Tensor& weights,
                          const std::vector<int64_t>& segment_ids,
                          int64_t num_segments);

}  // namespace start::tensor

#endif  // START_TENSOR_OPS_H_
