#ifndef START_TENSOR_OP_UTILS_H_
#define START_TENSOR_OP_UTILS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "tensor/shape.h"

namespace start::tensor::internal {

constexpr int kMaxDims = 4;

/// Row-major strides of `shape`, left-padded with zeros to kMaxDims entries
/// and with zero strides on broadcast (size-1) dimensions relative to `out`.
struct BroadcastMap {
  std::array<int64_t, kMaxDims> out_dims{};   // left-padded with 1s
  std::array<int64_t, kMaxDims> a_strides{};  // 0 on broadcast dims
  std::array<int64_t, kMaxDims> b_strides{};
  int64_t numel = 0;
  bool same_shape = false;

  /// Maps a flat output index to flat indices into a and b.
  inline void Map(int64_t flat, int64_t* ia, int64_t* ib) const {
    int64_t a = 0;
    int64_t b = 0;
    for (int d = kMaxDims - 1; d >= 0; --d) {
      const int64_t q = flat % out_dims[d];
      flat /= out_dims[d];
      a += q * a_strides[d];
      b += q * b_strides[d];
    }
    *ia = a;
    *ib = b;
  }
};

/// Builds the index mapping for broadcasting `a` and `b` to their common
/// shape. CHECK-fails when incompatible or when ndim exceeds kMaxDims.
BroadcastMap MakeBroadcastMap(const Shape& a, const Shape& b);

}  // namespace start::tensor::internal

#endif  // START_TENSOR_OP_UTILS_H_
