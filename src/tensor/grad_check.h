#ifndef START_TENSOR_GRAD_CHECK_H_
#define START_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace start::tensor {

/// \brief Result of a finite-difference gradient check.
struct GradCheckResult {
  bool passed = false;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;  ///< Populated on failure (which input/element).
};

/// \brief Verifies analytic gradients against central finite differences.
///
/// `fn` maps the inputs to a scalar tensor. Each input is perturbed
/// element-by-element with step `eps`; the analytic gradient from one
/// Backward() call must match within `tol` (relative, with absolute floor).
/// Used by the tensor-op property tests.
GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double eps = 1e-3, double tol = 5e-2);

}  // namespace start::tensor

#endif  // START_TENSOR_GRAD_CHECK_H_
