#include "tensor/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace start::tensor {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'T', 'N'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* p, size_t n) {
  return std::fwrite(p, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* p, size_t n) {
  return std::fread(p, 1, n, f) == n;
}

}  // namespace

common::Status SaveTensors(const std::string& path,
                           const std::map<std::string, Tensor>& tensors) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return common::Status::IOError("cannot open for write: " + path);
  }
  const uint64_t count = tensors.size();
  if (!WriteBytes(f.get(), kMagic, 4) ||
      !WriteBytes(f.get(), &kVersion, sizeof(kVersion)) ||
      !WriteBytes(f.get(), &count, sizeof(count))) {
    return common::Status::IOError("write header failed: " + path);
  }
  for (const auto& [name, t] : tensors) {
    if (!t.defined()) {
      return common::Status::InvalidArgument("undefined tensor: " + name);
    }
    const uint32_t name_len = static_cast<uint32_t>(name.size());
    const uint32_t ndim = static_cast<uint32_t>(t.ndim());
    if (!WriteBytes(f.get(), &name_len, sizeof(name_len)) ||
        !WriteBytes(f.get(), name.data(), name.size()) ||
        !WriteBytes(f.get(), &ndim, sizeof(ndim))) {
      return common::Status::IOError("write tensor header failed: " + name);
    }
    for (int64_t i = 0; i < t.ndim(); ++i) {
      const int64_t d = t.dim(i);
      if (!WriteBytes(f.get(), &d, sizeof(d))) {
        return common::Status::IOError("write dims failed: " + name);
      }
    }
    // Files always hold dense row-major data; a strided view is compacted
    // into a fresh buffer before writing.
    const Tensor dense = t.is_contiguous() ? t : t.Detach();
    if (!WriteBytes(f.get(), dense.data(),
                    static_cast<size_t>(dense.numel()) * sizeof(float))) {
      return common::Status::IOError("write data failed: " + name);
    }
  }
  return common::Status::OK();
}

common::Result<std::map<std::string, Tensor>> LoadTensors(
    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return common::Status::IOError("cannot open for read: " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadBytes(f.get(), magic, 4) ||
      !ReadBytes(f.get(), &version, sizeof(version)) ||
      !ReadBytes(f.get(), &count, sizeof(count))) {
    return common::Status::IOError("read header failed: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return common::Status::InvalidArgument("bad magic in " + path);
  }
  if (version != kVersion) {
    return common::Status::InvalidArgument("unsupported version in " + path);
  }
  std::map<std::string, Tensor> out;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadBytes(f.get(), &name_len, sizeof(name_len))) {
      return common::Status::IOError("read name length failed: " + path);
    }
    std::string name(name_len, '\0');
    uint32_t ndim = 0;
    if (!ReadBytes(f.get(), name.data(), name_len) ||
        !ReadBytes(f.get(), &ndim, sizeof(ndim))) {
      return common::Status::IOError("read tensor header failed: " + path);
    }
    if (ndim > 8) {
      return common::Status::InvalidArgument("implausible ndim in " + path);
    }
    std::vector<int64_t> dims(ndim);
    int64_t numel = 1;
    for (auto& d : dims) {
      if (!ReadBytes(f.get(), &d, sizeof(d))) {
        return common::Status::IOError("read dims failed: " + path);
      }
      if (d <= 0) {
        return common::Status::InvalidArgument("bad dim in " + path);
      }
      numel *= d;
    }
    std::vector<float> data(static_cast<size_t>(numel));
    if (!ReadBytes(f.get(), data.data(),
                   static_cast<size_t>(numel) * sizeof(float))) {
      return common::Status::IOError("read data failed for " + name);
    }
    out.emplace(std::move(name),
                Tensor::FromVector(Shape(std::move(dims)), std::move(data)));
  }
  return out;
}

}  // namespace start::tensor
