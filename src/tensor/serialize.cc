#include "tensor/serialize.h"

#include "common/crc32.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace start::tensor {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'T', 'N'};
constexpr uint32_t kLegacyVersion = 1;  ///< Tensors only, no CRC, no tag.
constexpr uint32_t kVersion = 2;

// Record kinds of the v2 container. New kinds append — old readers reject
// unknown kinds with a clean error rather than misparsing.
enum RecordKind : uint8_t {
  kTensorF32 = 0,
  kArrayF64 = 1,
  kArrayI64 = 2,
  kArrayU64 = 3,
  kTensorI8 = 4,   // i64 rows, i64 cols, u64 scale_count, f32[rows] scales,
                   // int8[rows*cols] row-major codes
  kTensorF16 = 5,  // u32 ndim, i64 dims..., u16[numel] IEEE binary16
  kArrayI32 = 6,   // u64 len, int32[len]
};

constexpr int64_t kMaxNdim = 8;
constexpr uint64_t kMaxArrayLen = 1ULL << 32;  ///< Plausibility bound.

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* p, size_t n) {
  return std::fwrite(p, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* p, size_t n) {
  return std::fread(p, 1, n, f) == n;
}

/// Appends raw bytes to the record buffer being assembled.
void Append(std::vector<uint8_t>* buf, const void* p, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(p);
  buf->insert(buf->end(), bytes, bytes + n);
}

template <typename T>
void AppendValue(std::vector<uint8_t>* buf, T value) {
  Append(buf, &value, sizeof(value));
}

/// Serialises one record (name + kind + payload) into `buf` and writes it to
/// `f` followed by its CRC.
common::Status WriteRecord(std::FILE* f, std::vector<uint8_t>* buf,
                           const std::string& name) {
  const uint32_t crc = Crc32(buf->data(), buf->size());
  if (!WriteBytes(f, buf->data(), buf->size()) ||
      !WriteBytes(f, &crc, sizeof(crc))) {
    return common::Status::IOError("write record failed: " + name);
  }
  return common::Status::OK();
}

void BeginRecord(std::vector<uint8_t>* buf, const std::string& name,
                 uint8_t kind) {
  buf->clear();
  AppendValue(buf, static_cast<uint32_t>(name.size()));
  Append(buf, name.data(), name.size());
  AppendValue(buf, kind);
}

template <typename T>
common::Status WriteArrayRecord(std::FILE* f, std::vector<uint8_t>* buf,
                                const std::string& name, uint8_t kind,
                                const std::vector<T>& values) {
  BeginRecord(buf, name, kind);
  AppendValue(buf, static_cast<uint64_t>(values.size()));
  Append(buf, values.data(), values.size() * sizeof(T));
  return WriteRecord(f, buf, name);
}

/// Reads `n` bytes into the record buffer (which accumulates everything the
/// CRC covers) and returns a pointer to them.
const uint8_t* ReadInto(std::FILE* f, std::vector<uint8_t>* buf, size_t n) {
  const size_t at = buf->size();
  buf->resize(at + n);
  if (!ReadBytes(f, buf->data() + at, n)) return nullptr;
  return buf->data() + at;
}

template <typename T>
bool ReadValueInto(std::FILE* f, std::vector<uint8_t>* buf, T* out) {
  const uint8_t* p = ReadInto(f, buf, sizeof(T));
  if (p == nullptr) return false;
  std::memcpy(out, p, sizeof(T));
  return true;
}

/// Legacy (v1) body: tensors only, no CRC. `file_size` bounds every size
/// field (see LoadBundle).
common::Result<LoadedBundle> LoadLegacyBody(std::FILE* f,
                                            const std::string& path,
                                            uint64_t file_size) {
  uint64_t count = 0;
  if (!ReadBytes(f, &count, sizeof(count))) {
    return common::Status::IOError("read header failed: " + path);
  }
  LoadedBundle out;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadBytes(f, &name_len, sizeof(name_len))) {
      return common::Status::IOError("read name length failed: " + path);
    }
    // Same bound as the v2 reader: a corrupt length word must not drive a
    // multi-gigabyte allocation before any other validation runs.
    if (name_len > 4096) {
      return common::Status::InvalidArgument("implausible name length in " +
                                             path);
    }
    std::string name(name_len, '\0');
    uint32_t ndim = 0;
    if (!ReadBytes(f, name.data(), name_len) ||
        !ReadBytes(f, &ndim, sizeof(ndim))) {
      return common::Status::IOError("read tensor header failed: " + path);
    }
    if (ndim > kMaxNdim) {
      return common::Status::InvalidArgument("implausible ndim in " + path);
    }
    std::vector<int64_t> dims(ndim);
    int64_t numel = 1;
    for (auto& d : dims) {
      if (!ReadBytes(f, &d, sizeof(d))) {
        return common::Status::IOError("read dims failed: " + path);
      }
      if (d <= 0 || numel > (1LL << 40) / d) {
        return common::Status::InvalidArgument("bad dim in " + path);
      }
      numel *= d;
    }
    if (static_cast<uint64_t>(numel) * sizeof(float) > file_size) {
      return common::Status::InvalidArgument(
          "tensor '" + name + "' claims more data than " + path + " holds");
    }
    std::vector<float> data(static_cast<size_t>(numel));
    if (!ReadBytes(f, data.data(),
                   static_cast<size_t>(numel) * sizeof(float))) {
      return common::Status::IOError("read data failed for " + name);
    }
    out.records.tensors.emplace(
        std::move(name),
        Tensor::FromVector(Shape(std::move(dims)), std::move(data)));
  }
  return out;
}

}  // namespace

uint16_t F32ToF16(float x) {
  uint32_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t exp = (bits >> 23) & 0xffu;
  uint32_t mant = bits & 0x7fffffu;
  if (exp == 0xffu) {  // inf / NaN (NaN payload collapsed to a quiet bit)
    return static_cast<uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0));
  }
  const int32_t e = static_cast<int32_t>(exp) - 127 + 15;
  if (e >= 31) return static_cast<uint16_t>(sign | 0x7c00u);  // overflow->inf
  if (e <= 0) {
    if (e < -10) return static_cast<uint16_t>(sign);  // underflow -> +-0
    mant |= 0x800000u;  // make the implicit bit explicit, then shift out
    const uint32_t shift = static_cast<uint32_t>(14 - e);  // in [14, 24]
    uint32_t half = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  // Normal range: narrow the mantissa 23 -> 10 bits with round-to-nearest-
  // even; a rounding carry propagates into the exponent (and saturates to
  // inf) for free because the fields are adjacent.
  uint32_t half = (static_cast<uint32_t>(e) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<uint16_t>(sign | half);
}

float F16ToF32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {  // subnormal: normalize into f32's much wider exponent range
      int32_t e = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++e;
      }
      mant &= 0x3ffu;
      bits = sign | (static_cast<uint32_t>(113 - e) << 23) | (mant << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7f800000u | (mant << 13);
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out = 0.0f;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  return common::Crc32(data, n, seed);
}

common::Status SaveBundle(const std::string& path, uint64_t meta_tag,
                          const RecordBundle& bundle) {
  // Write to a sibling temp file and rename over the target, so a crash
  // mid-save (the very event checkpointing exists to survive) never
  // destroys the previous good checkpoint.
  const std::string tmp_path = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp_path.c_str(), "wb"));
    if (f == nullptr) {
      return common::Status::IOError("cannot open for write: " + tmp_path);
    }
    const uint64_t count = bundle.tensors.size() + bundle.doubles.size() +
                           bundle.ints.size() + bundle.uints.size() +
                           bundle.qtensors.size() + bundle.halfs.size() +
                           bundle.ints32.size();
    if (!WriteBytes(f.get(), kMagic, 4) ||
        !WriteBytes(f.get(), &kVersion, sizeof(kVersion)) ||
        !WriteBytes(f.get(), &meta_tag, sizeof(meta_tag)) ||
        !WriteBytes(f.get(), &count, sizeof(count))) {
      return common::Status::IOError("write header failed: " + tmp_path);
    }
    std::vector<uint8_t> buf;
    for (const auto& [name, t] : bundle.tensors) {
      if (!t.defined()) {
        return common::Status::InvalidArgument("undefined tensor: " + name);
      }
      if (t.ndim() > kMaxNdim) {
        return common::Status::InvalidArgument("too many dims: " + name);
      }
      BeginRecord(&buf, name, kTensorF32);
      AppendValue(&buf, static_cast<uint32_t>(t.ndim()));
      for (int64_t i = 0; i < t.ndim(); ++i) AppendValue(&buf, t.dim(i));
      // Files always hold dense row-major data; a strided view is compacted
      // into a fresh buffer before writing.
      const Tensor dense = t.is_contiguous() ? t : t.Detach();
      Append(&buf, dense.data(),
             static_cast<size_t>(dense.numel()) * sizeof(float));
      START_RETURN_IF_ERROR(WriteRecord(f.get(), &buf, name));
    }
    for (const auto& [name, v] : bundle.doubles) {
      START_RETURN_IF_ERROR(
          WriteArrayRecord(f.get(), &buf, name, kArrayF64, v));
    }
    for (const auto& [name, v] : bundle.ints) {
      START_RETURN_IF_ERROR(
          WriteArrayRecord(f.get(), &buf, name, kArrayI64, v));
    }
    for (const auto& [name, v] : bundle.uints) {
      START_RETURN_IF_ERROR(
          WriteArrayRecord(f.get(), &buf, name, kArrayU64, v));
    }
    for (const auto& [name, v] : bundle.ints32) {
      START_RETURN_IF_ERROR(
          WriteArrayRecord(f.get(), &buf, name, kArrayI32, v));
    }
    for (const auto& [name, q] : bundle.qtensors) {
      if (q.rows <= 0 || q.cols <= 0 ||
          q.scales.size() != static_cast<size_t>(q.rows) ||
          q.data.size() != static_cast<size_t>(q.rows * q.cols)) {
        return common::Status::InvalidArgument(
            "inconsistent quantized tensor: " + name);
      }
      BeginRecord(&buf, name, kTensorI8);
      AppendValue(&buf, q.rows);
      AppendValue(&buf, q.cols);
      AppendValue(&buf, static_cast<uint64_t>(q.scales.size()));
      Append(&buf, q.scales.data(), q.scales.size() * sizeof(float));
      Append(&buf, q.data.data(), q.data.size());
      START_RETURN_IF_ERROR(WriteRecord(f.get(), &buf, name));
    }
    for (const auto& [name, t] : bundle.halfs) {
      if (!t.defined()) {
        return common::Status::InvalidArgument("undefined tensor: " + name);
      }
      if (t.ndim() > kMaxNdim) {
        return common::Status::InvalidArgument("too many dims: " + name);
      }
      BeginRecord(&buf, name, kTensorF16);
      AppendValue(&buf, static_cast<uint32_t>(t.ndim()));
      for (int64_t i = 0; i < t.ndim(); ++i) AppendValue(&buf, t.dim(i));
      const Tensor dense = t.is_contiguous() ? t : t.Detach();
      const float* src = dense.data();
      for (int64_t i = 0; i < dense.numel(); ++i) {
        AppendValue(&buf, F32ToF16(src[i]));
      }
      START_RETURN_IF_ERROR(WriteRecord(f.get(), &buf, name));
    }
    if (std::fflush(f.get()) != 0) {
      return common::Status::IOError("flush failed: " + tmp_path);
    }
    // Durability half of the atomic replace: rename() orders metadata, not
    // data blocks — without this fsync a power cut shortly after the rename
    // can leave the target pointing at an empty file, destroying the
    // previous good checkpoint (the exact event this dance exists for).
    if (fsync(fileno(f.get())) != 0) {
      return common::Status::IOError("fsync failed: " + tmp_path);
    }
  }  // closes the file before the rename
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return common::Status::IOError("rename " + tmp_path + " -> " + path +
                                   " failed");
  }
  // Persist the rename itself (the directory entry). Best effort: some
  // filesystems refuse O_RDONLY fsync on directories; the data-block fsync
  // above already rules out the destructive failure mode.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    (void)fsync(dir_fd);
    (void)close(dir_fd);
  }
  return common::Status::OK();
}

common::Result<LoadedBundle> LoadBundle(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return common::Status::IOError("cannot open for read: " + path);
  }
  // No size field in the file may claim a payload bigger than the file
  // itself — otherwise a flipped bit in a dim/length word would drive a
  // multi-terabyte allocation (and an uncaught bad_alloc) before the CRC
  // check ever sees the record.
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return common::Status::IOError("seek failed: " + path);
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0 || std::fseek(f.get(), 0, SEEK_SET) != 0) {
    return common::Status::IOError("seek failed: " + path);
  }
  const auto payload_fits = [file_size](uint64_t bytes) {
    return bytes <= static_cast<uint64_t>(file_size);
  };
  char magic[4];
  uint32_t version = 0;
  if (!ReadBytes(f.get(), magic, 4) ||
      !ReadBytes(f.get(), &version, sizeof(version))) {
    return common::Status::IOError("read header failed: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return common::Status::InvalidArgument("bad magic in " + path);
  }
  if (version == kLegacyVersion) {
    return LoadLegacyBody(f.get(), path, static_cast<uint64_t>(file_size));
  }
  if (version != kVersion) {
    return common::Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) + " in " +
        path + " (this build reads versions 1-" + std::to_string(kVersion) +
        ")");
  }
  LoadedBundle out;
  uint64_t count = 0;
  if (!ReadBytes(f.get(), &out.meta_tag, sizeof(out.meta_tag)) ||
      !ReadBytes(f.get(), &count, sizeof(count))) {
    return common::Status::IOError("read header failed: " + path);
  }
  std::vector<uint8_t> buf;  // bytes of the current record, for the CRC
  for (uint64_t i = 0; i < count; ++i) {
    buf.clear();
    uint32_t name_len = 0;
    if (!ReadValueInto(f.get(), &buf, &name_len)) {
      return common::Status::IOError("truncated record header in " + path);
    }
    if (name_len > 4096) {
      return common::Status::InvalidArgument("implausible name length in " +
                                             path);
    }
    const uint8_t* name_bytes = ReadInto(f.get(), &buf, name_len);
    if (name_bytes == nullptr) {
      return common::Status::IOError("truncated record name in " + path);
    }
    const std::string name(reinterpret_cast<const char*>(name_bytes),
                           name_len);
    uint8_t kind = 0;
    if (!ReadValueInto(f.get(), &buf, &kind)) {
      return common::Status::IOError("truncated record kind for " + name);
    }
    if (kind == kTensorF32) {
      uint32_t ndim = 0;
      if (!ReadValueInto(f.get(), &buf, &ndim)) {
        return common::Status::IOError("truncated tensor header for " + name);
      }
      if (ndim > kMaxNdim) {
        return common::Status::InvalidArgument("implausible ndim in " + path);
      }
      std::vector<int64_t> dims(ndim);
      int64_t numel = 1;
      for (auto& d : dims) {
        if (!ReadValueInto(f.get(), &buf, &d)) {
          return common::Status::IOError("truncated dims for " + name);
        }
        if (d <= 0 || numel > (1LL << 40) / d) {
          return common::Status::InvalidArgument("bad dim in " + path);
        }
        numel *= d;
      }
      if (!payload_fits(static_cast<uint64_t>(numel) * sizeof(float))) {
        return common::Status::InvalidArgument(
            "tensor '" + name + "' claims more data than " + path +
            " holds (corrupted size field)");
      }
      const uint8_t* data =
          ReadInto(f.get(), &buf, static_cast<size_t>(numel) * sizeof(float));
      if (data == nullptr) {
        return common::Status::IOError("truncated data for " + name);
      }
      std::vector<float> values(static_cast<size_t>(numel));
      std::memcpy(values.data(), data, values.size() * sizeof(float));
      out.records.tensors.emplace(
          name, Tensor::FromVector(Shape(std::move(dims)), std::move(values)));
    } else if (kind == kArrayF64 || kind == kArrayI64 || kind == kArrayU64) {
      uint64_t len = 0;
      if (!ReadValueInto(f.get(), &buf, &len)) {
        return common::Status::IOError("truncated array header for " + name);
      }
      if (len > kMaxArrayLen || !payload_fits(len * 8)) {
        return common::Status::InvalidArgument("implausible array length in " +
                                               path);
      }
      const uint8_t* data =
          ReadInto(f.get(), &buf, static_cast<size_t>(len) * 8);
      if (data == nullptr) {
        return common::Status::IOError("truncated array data for " + name);
      }
      // len == 0 is a legal record; v.data() is null then, and memcpy's
      // pointer arguments must be non-null even for a zero-byte copy.
      if (kind == kArrayF64) {
        auto& v = out.records.doubles[name];
        v.resize(static_cast<size_t>(len));
        if (len != 0) std::memcpy(v.data(), data, v.size() * sizeof(double));
      } else if (kind == kArrayI64) {
        auto& v = out.records.ints[name];
        v.resize(static_cast<size_t>(len));
        if (len != 0) std::memcpy(v.data(), data, v.size() * sizeof(int64_t));
      } else {
        auto& v = out.records.uints[name];
        v.resize(static_cast<size_t>(len));
        if (len != 0) std::memcpy(v.data(), data, v.size() * sizeof(uint64_t));
      }
    } else if (kind == kArrayI32) {
      uint64_t len = 0;
      if (!ReadValueInto(f.get(), &buf, &len)) {
        return common::Status::IOError("truncated array header for " + name);
      }
      if (len > kMaxArrayLen || !payload_fits(len * sizeof(int32_t))) {
        return common::Status::InvalidArgument("implausible array length in " +
                                               path);
      }
      const uint8_t* data =
          ReadInto(f.get(), &buf, static_cast<size_t>(len) * sizeof(int32_t));
      if (data == nullptr) {
        return common::Status::IOError("truncated array data for " + name);
      }
      auto& v = out.records.ints32[name];
      v.resize(static_cast<size_t>(len));
      if (len != 0) std::memcpy(v.data(), data, v.size() * sizeof(int32_t));
    } else if (kind == kTensorI8) {
      int64_t rows = 0;
      int64_t cols = 0;
      uint64_t scale_count = 0;
      if (!ReadValueInto(f.get(), &buf, &rows) ||
          !ReadValueInto(f.get(), &buf, &cols) ||
          !ReadValueInto(f.get(), &buf, &scale_count)) {
        return common::Status::IOError("truncated int8 header for " + name);
      }
      if (rows <= 0 || cols <= 0 || rows > (1LL << 40) / cols) {
        return common::Status::InvalidArgument("bad dim in " + path);
      }
      if (scale_count != static_cast<uint64_t>(rows)) {
        return common::Status::InvalidArgument(
            "quantized tensor '" + name + "' scale count " +
            std::to_string(scale_count) + " != rows " + std::to_string(rows) +
            " in " + path);
      }
      const uint64_t payload = scale_count * sizeof(float) +
                               static_cast<uint64_t>(rows) *
                                   static_cast<uint64_t>(cols);
      if (!payload_fits(payload)) {
        return common::Status::InvalidArgument(
            "quantized tensor '" + name + "' claims more data than " + path +
            " holds (corrupted size field)");
      }
      QuantizedTensor q;
      q.rows = rows;
      q.cols = cols;
      const uint8_t* scales =
          ReadInto(f.get(), &buf, static_cast<size_t>(rows) * sizeof(float));
      if (scales == nullptr) {
        return common::Status::IOError("truncated scales for " + name);
      }
      q.scales.resize(static_cast<size_t>(rows));
      std::memcpy(q.scales.data(), scales, q.scales.size() * sizeof(float));
      const uint8_t* codes =
          ReadInto(f.get(), &buf, static_cast<size_t>(rows * cols));
      if (codes == nullptr) {
        return common::Status::IOError("truncated data for " + name);
      }
      q.data.resize(static_cast<size_t>(rows * cols));
      std::memcpy(q.data.data(), codes, q.data.size());
      out.records.qtensors.emplace(name, std::move(q));
    } else if (kind == kTensorF16) {
      uint32_t ndim = 0;
      if (!ReadValueInto(f.get(), &buf, &ndim)) {
        return common::Status::IOError("truncated tensor header for " + name);
      }
      if (ndim > kMaxNdim) {
        return common::Status::InvalidArgument("implausible ndim in " + path);
      }
      std::vector<int64_t> dims(ndim);
      int64_t numel = 1;
      for (auto& d : dims) {
        if (!ReadValueInto(f.get(), &buf, &d)) {
          return common::Status::IOError("truncated dims for " + name);
        }
        if (d <= 0 || numel > (1LL << 40) / d) {
          return common::Status::InvalidArgument("bad dim in " + path);
        }
        numel *= d;
      }
      if (!payload_fits(static_cast<uint64_t>(numel) * sizeof(uint16_t))) {
        return common::Status::InvalidArgument(
            "tensor '" + name + "' claims more data than " + path +
            " holds (corrupted size field)");
      }
      const uint8_t* data = ReadInto(
          f.get(), &buf, static_cast<size_t>(numel) * sizeof(uint16_t));
      if (data == nullptr) {
        return common::Status::IOError("truncated data for " + name);
      }
      std::vector<float> values(static_cast<size_t>(numel));
      for (int64_t j = 0; j < numel; ++j) {
        uint16_t h = 0;
        std::memcpy(&h, data + j * sizeof(uint16_t), sizeof(h));
        values[static_cast<size_t>(j)] = F16ToF32(h);
      }
      out.records.halfs.emplace(
          name, Tensor::FromVector(Shape(std::move(dims)), std::move(values)));
    } else {
      return common::Status::InvalidArgument(
          "unknown record kind " + std::to_string(kind) + " in " + path);
    }
    uint32_t stored_crc = 0;
    if (!ReadBytes(f.get(), &stored_crc, sizeof(stored_crc))) {
      return common::Status::IOError("truncated CRC for " + name);
    }
    const uint32_t actual_crc = Crc32(buf.data(), buf.size());
    if (stored_crc != actual_crc) {
      return common::Status::InvalidArgument(
          "CRC mismatch for record '" + name + "' in " + path +
          " (file is corrupted)");
    }
  }
  return out;
}

common::Status SaveTensors(const std::string& path,
                           const std::map<std::string, Tensor>& tensors) {
  RecordBundle bundle;
  bundle.tensors = tensors;
  return SaveBundle(path, 0, bundle);
}

common::Result<std::map<std::string, Tensor>> LoadTensors(
    const std::string& path) {
  START_ASSIGN_OR_RETURN(LoadedBundle bundle, LoadBundle(path));
  return std::move(bundle.records.tensors);
}

}  // namespace start::tensor
