#ifndef START_TENSOR_SERIALIZE_H_
#define START_TENSOR_SERIALIZE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace start::tensor {

/// \brief Writes named tensors to a binary file.
///
/// Format: magic "STTN", uint32 version, uint64 count, then per tensor:
/// uint32 name length, name bytes, uint32 ndim, int64 dims..., float data.
/// Used to persist pre-trained models for the transfer experiments (Table III).
common::Status SaveTensors(const std::string& path,
                           const std::map<std::string, Tensor>& tensors);

/// Reads a tensor file written by SaveTensors.
common::Result<std::map<std::string, Tensor>> LoadTensors(
    const std::string& path);

}  // namespace start::tensor

#endif  // START_TENSOR_SERIALIZE_H_
