#ifndef START_TENSOR_SERIALIZE_H_
#define START_TENSOR_SERIALIZE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace start::tensor {

/// \brief An int8-quantized matrix record: row-major [rows, cols] codes plus
/// one f32 dequantization scale per row (see tensor/qgemm.h for the scheme).
/// Stored UNPACKED on disk — the cache-blocked panel layout is a kernel
/// implementation detail that may evolve; loaders re-pack.
struct QuantizedTensor {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<float> scales;  ///< [rows]
  std::vector<int8_t> data;   ///< [rows * cols]
};

/// \brief Typed named records persisted together in one checkpoint file.
///
/// Tensors carry model/optimizer parameters; the scalar arrays carry trainer
/// bookkeeping (loss accumulators, step cursors, RNG state) that must survive
/// a save/load/resume cycle bitwise (see core/checkpoint.h). `qtensors` and
/// `halfs` are the low-precision serving records: int8 weights and f16
/// tensors (written via F32ToF16 round-to-nearest-even; loaded back as f32,
/// so the round trip is value = F16ToF32(F32ToF16(x))).
struct RecordBundle {
  std::map<std::string, Tensor> tensors;
  std::map<std::string, std::vector<double>> doubles;
  std::map<std::string, std::vector<int64_t>> ints;
  std::map<std::string, std::vector<uint64_t>> uints;
  std::map<std::string, QuantizedTensor> qtensors;
  std::map<std::string, Tensor> halfs;  ///< Written as f16, loaded as f32.
  /// Dense int32 arrays — graph adjacency / slot-index records (see
  /// serve::HnswIndex persistence) where i64 would double the file size.
  std::map<std::string, std::vector<int32_t>> ints32;

  bool empty() const {
    return tensors.empty() && doubles.empty() && ints.empty() &&
           uints.empty() && qtensors.empty() && halfs.empty() &&
           ints32.empty();
  }
};

/// \brief A bundle read back from disk, plus the header's caller tag.
struct LoadedBundle {
  uint64_t meta_tag = 0;  ///< Caller-defined (core uses the config hash).
  RecordBundle records;
};

/// \brief Writes a versioned record bundle.
///
/// Format (v2): magic "STTN", uint32 version, uint64 meta_tag, uint64 record
/// count, then per record: uint32 name length, name bytes, uint8 kind,
/// kind-specific payload, uint32 CRC-32 over the record bytes (name length
/// through payload). Tensor records hold dense row-major float data —
/// view-backed (non-contiguous) tensors are compacted before writing, so a
/// checkpoint never depends on in-memory layout. `meta_tag` is free for the
/// caller; core/checkpoint stores the model-config hash there.
common::Status SaveBundle(const std::string& path, uint64_t meta_tag,
                          const RecordBundle& bundle);

/// Reads a bundle written by SaveBundle. Rejects bad magic, unknown versions,
/// truncated files, and records whose CRC does not match (corruption).
/// Version-1 files (tensors only, no CRC) are still accepted.
common::Result<LoadedBundle> LoadBundle(const std::string& path);

/// \brief Writes named tensors to a binary file (a tensors-only bundle with
/// meta_tag 0). Used to persist pre-trained models for the transfer
/// experiments (Table III).
common::Status SaveTensors(const std::string& path,
                           const std::map<std::string, Tensor>& tensors);

/// Reads the tensor records of a file written by SaveTensors or SaveBundle.
common::Result<std::map<std::string, Tensor>> LoadTensors(
    const std::string& path);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) used for per-record integrity;
/// exposed so tests can craft corrupt files with valid structure.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// IEEE binary16 conversions (round-to-nearest-even on narrowing; subnormals
/// and inf/NaN handled). Exposed for the f16 record kind and its tests.
uint16_t F32ToF16(float x);
float F16ToF32(uint16_t h);

}  // namespace start::tensor

#endif  // START_TENSOR_SERIALIZE_H_
