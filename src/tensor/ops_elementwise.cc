#include <cmath>
#include <functional>

#include "common/rng.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace start::tensor {

namespace {

using internal::BinaryBackward;
using internal::BinaryForward;
using internal::ElementwisePlan;
using internal::MakeBinaryPlan;
using internal::MakeUnaryPlan;
using internal::UnaryBackward;
using internal::UnaryForward;

/// Shared scaffolding for broadcasting binary elementwise ops.
/// fwd(av, bv) computes the output value; da(av, bv) / db(av, bv) compute the
/// local partial derivatives d out / d a and d out / d b. Strided views feed
/// the kernel directly — no materialisation.
template <typename Fwd, typename Da, typename Db>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fwd fwd, Da da, Db db,
                const char* name) {
  START_CHECK(a.defined() && b.defined());
  const ElementwisePlan plan = MakeBinaryPlan(*a.impl(), *b.impl());
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  auto out = AcquireBuffer(plan.numel);
  BinaryForward(plan, a.impl()->base_ptr(), b.impl()->base_ptr(), out->data(),
                fwd);
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [plan, a_impl, b_impl, da, db](TensorImpl& self) {
    const bool need_a = a_impl->requires_grad;
    const bool need_b = b_impl->requires_grad;
    if (!need_a && !need_b) return;
    BinaryBackward(plan, a_impl->base_ptr(), b_impl->base_ptr(),
                   self.grad_ptr(), need_a ? a_impl->grad_ptr() : nullptr,
                   need_b ? b_impl->grad_ptr() : nullptr, da, db);
  };
  return MakeOpResultBuffer(out_shape, std::move(out), {a.impl(), b.impl()},
                            std::move(backward), name);
}

/// Shared scaffolding for unary elementwise ops. dfn(x, y) is the local
/// derivative given input x and output y. The output buffer itself is
/// captured for y-based derivative rules (sigmoid, tanh, exp) — no copy.
template <typename Fwd, typename Dfn>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Dfn dfn, const char* name) {
  START_CHECK(a.defined());
  const ElementwisePlan plan = MakeUnaryPlan(*a.impl());
  auto out = AcquireBuffer(plan.numel);
  UnaryForward(plan, a.impl()->base_ptr(), out->data(), fwd);
  auto a_impl = a.impl();
  auto y_buf = out;
  auto backward = [plan, a_impl, y_buf, dfn](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    UnaryBackward(plan, self.grad_ptr(), a_impl->base_ptr(), y_buf->data(),
                  a_impl->grad_ptr(), dfn);
  };
  return MakeOpResultBuffer(a.shape(), std::move(out), {a.impl()},
                            std::move(backward), name);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; },
      "add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; },
      "sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; },
      "mul");
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); }, "div");
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return -x; }, [](float, float) { return -1.0f; },
      "neg");
}

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return s * x; }, [s](float, float) { return s; },
      "scale");
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; },
      "add_scalar");
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; }, "relu");
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryOp(
      a,
      [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      },
      "leaky_relu");
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryOp(
      a,
      [alpha](float x) { return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) { return x > 0.0f ? 1.0f : y + alpha; },
      "elu");
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation of GELU (as used by BERT).
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return UnaryOp(
      a,
      [](float x) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float x3 = x * x * x;
        const float inner = kC * (x + 0.044715f * x3);
        const float t = std::tanh(inner);
        const float sech2 = 1.0f - t * t;
        return 0.5f * (1.0f + t) +
               0.5f * x * sech2 * kC * (1.0f + 3.0f * 0.044715f * x * x);
      },
      "gelu");
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; }, "tanh");
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); }, "sigmoid");
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; }, "exp");
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; }, "log");
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; }, "sqrt");
}

Tensor Dropout(const Tensor& a, float p, bool training, common::Rng* rng) {
  START_CHECK(a.defined());
  START_CHECK_GE(p, 0.0f);
  START_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  // Mask sampling walks elements in logical order from a single generator, so
  // results are reproducible for a given rng state (pass an explicit rng to
  // seed it in tests; the global one is used otherwise).
  const Tensor ac = a.Contiguous();
  const int64_t n = ac.numel();
  const float keep_scale = 1.0f / (1.0f - p);
  auto mask = AcquireBuffer(n);
  common::Rng& r = rng != nullptr ? *rng : common::GlobalRng();
  auto out = AcquireBuffer(n);
  const float* pa = ac.data();
  float* pm = mask->data();
  float* po = out->data();
  for (int64_t i = 0; i < n; ++i) {
    const float m = r.Bernoulli(p) ? 0.0f : keep_scale;
    pm[i] = m;
    po[i] = pa[i] * m;
  }
  auto a_impl = ac.impl();
  auto backward = [a_impl, mask, n](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad_ptr();
    const float* pm = mask->data();
    float* ga = a_impl->grad_ptr();
    for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * pm[i];
  };
  return MakeOpResultBuffer(ac.shape(), std::move(out), {ac.impl()},
                            std::move(backward), "dropout");
}

}  // namespace start::tensor
