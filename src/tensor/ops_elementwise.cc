#include <cmath>
#include <functional>

#include "common/rng.h"
#include "tensor/op_utils.h"
#include "tensor/ops.h"

namespace start::tensor {

namespace internal {

BroadcastMap MakeBroadcastMap(const Shape& a, const Shape& b) {
  START_CHECK_LE(a.ndim(), kMaxDims);
  START_CHECK_LE(b.ndim(), kMaxDims);
  const Shape out = BroadcastShapes(a, b);
  BroadcastMap map;
  map.numel = out.numel();
  map.same_shape = (a == b);
  map.out_dims.fill(1);
  map.a_strides.fill(0);
  map.b_strides.fill(0);
  // Fill right-aligned.
  for (int64_t i = 0; i < out.ndim(); ++i) {
    map.out_dims[static_cast<size_t>(kMaxDims - 1 - i)] =
        out.dim(out.ndim() - 1 - i);
  }
  auto fill_strides = [&](const Shape& s, std::array<int64_t, kMaxDims>* st) {
    int64_t stride = 1;
    for (int64_t i = 0; i < s.ndim(); ++i) {
      const int64_t d = s.dim(s.ndim() - 1 - i);
      const size_t slot = static_cast<size_t>(kMaxDims - 1 - i);
      (*st)[slot] = (d == 1 && map.out_dims[slot] != 1) ? 0 : stride;
      stride *= d;
    }
  };
  fill_strides(a, &map.a_strides);
  fill_strides(b, &map.b_strides);
  return map;
}

}  // namespace internal

namespace {

using internal::BroadcastMap;
using internal::MakeBroadcastMap;

/// Shared scaffolding for broadcasting binary elementwise ops.
/// fwd(av, bv) computes the output value; da(av, bv) / db(av, bv) compute the
/// local partial derivatives d out / d a and d out / d b.
template <typename Fwd, typename Da, typename Db>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fwd fwd, Da da, Db db,
                const char* name) {
  START_CHECK(a.defined() && b.defined());
  const BroadcastMap map = MakeBroadcastMap(a.shape(), b.shape());
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  std::vector<float> out(static_cast<size_t>(map.numel));
  const float* pa = a.data();
  const float* pb = b.data();
  if (map.same_shape) {
    for (int64_t i = 0; i < map.numel; ++i) out[i] = fwd(pa[i], pb[i]);
  } else {
    for (int64_t i = 0; i < map.numel; ++i) {
      int64_t ia, ib;
      map.Map(i, &ia, &ib);
      out[i] = fwd(pa[ia], pb[ib]);
    }
  }
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [map, a_impl, b_impl, da, db](TensorImpl& self) {
    const float* pa = a_impl->data.data();
    const float* pb = b_impl->data.data();
    const float* g = self.grad.data();
    float* ga = a_impl->grad.data();
    float* gb = b_impl->grad.data();
    const bool need_a = a_impl->requires_grad;
    const bool need_b = b_impl->requires_grad;
    if (map.same_shape) {
      for (int64_t i = 0; i < map.numel; ++i) {
        if (need_a) ga[i] += g[i] * da(pa[i], pb[i]);
        if (need_b) gb[i] += g[i] * db(pa[i], pb[i]);
      }
    } else {
      for (int64_t i = 0; i < map.numel; ++i) {
        int64_t ia, ib;
        map.Map(i, &ia, &ib);
        if (need_a) ga[ia] += g[i] * da(pa[ia], pb[ib]);
        if (need_b) gb[ib] += g[i] * db(pa[ia], pb[ib]);
      }
    }
  };
  return MakeOpResult(out_shape, std::move(out), {a.impl(), b.impl()},
                      std::move(backward), name);
}

/// Shared scaffolding for unary elementwise ops. dfn(x, y) is the local
/// derivative given input x and output y.
template <typename Fwd, typename Dfn>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Dfn dfn, const char* name) {
  START_CHECK(a.defined());
  const int64_t n = a.numel();
  std::vector<float> out(static_cast<size_t>(n));
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) out[i] = fwd(pa[i]);
  auto a_impl = a.impl();
  // Save outputs for derivative rules expressed through y (sigmoid, tanh, exp).
  auto out_copy = std::make_shared<std::vector<float>>(out);
  auto backward = [a_impl, out_copy, dfn, n](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad.data();
    const float* x = a_impl->data.data();
    const float* y = out_copy->data();
    float* ga = a_impl->grad.data();
    for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * dfn(x[i], y[i]);
  };
  return MakeOpResult(a.shape(), std::move(out), {a.impl()},
                      std::move(backward), name);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; },
      "add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; },
      "sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; },
      "mul");
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); }, "div");
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return -x; }, [](float, float) { return -1.0f; },
      "neg");
}

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return s * x; }, [s](float, float) { return s; },
      "scale");
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; },
      "add_scalar");
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; }, "relu");
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryOp(
      a,
      [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      },
      "leaky_relu");
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryOp(
      a,
      [alpha](float x) { return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) { return x > 0.0f ? 1.0f : y + alpha; },
      "elu");
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation of GELU (as used by BERT).
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return UnaryOp(
      a,
      [](float x) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float x3 = x * x * x;
        const float inner = kC * (x + 0.044715f * x3);
        const float t = std::tanh(inner);
        const float sech2 = 1.0f - t * t;
        return 0.5f * (1.0f + t) +
               0.5f * x * sech2 * kC * (1.0f + 3.0f * 0.044715f * x * x);
      },
      "gelu");
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; }, "tanh");
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); }, "sigmoid");
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; }, "exp");
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; }, "log");
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; }, "sqrt");
}

Tensor Dropout(const Tensor& a, float p, bool training) {
  START_CHECK(a.defined());
  START_CHECK_GE(p, 0.0f);
  START_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  const int64_t n = a.numel();
  const float keep_scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(static_cast<size_t>(n));
  auto& rng = common::GlobalRng();
  std::vector<float> out(static_cast<size_t>(n));
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) {
    const float m = rng.Bernoulli(p) ? 0.0f : keep_scale;
    (*mask)[i] = m;
    out[i] = pa[i] * m;
  }
  auto a_impl = a.impl();
  auto backward = [a_impl, mask, n](TensorImpl& self) {
    if (!a_impl->requires_grad) return;
    const float* g = self.grad.data();
    float* ga = a_impl->grad.data();
    for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * (*mask)[i];
  };
  return MakeOpResult(a.shape(), std::move(out), {a.impl()},
                      std::move(backward), "dropout");
}

}  // namespace start::tensor
