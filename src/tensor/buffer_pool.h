#ifndef START_TENSOR_BUFFER_POOL_H_
#define START_TENSOR_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace start::tensor {

/// \brief Thread-safe free-list recycler for the float buffers backing tensor
/// data and gradients.
///
/// Training steps allocate and release the same buffer sizes over and over;
/// round-tripping each through malloc dominated the allocator profile of the
/// pretraining loop. The pool keeps released buffers in power-of-two capacity
/// buckets and hands them back on the next Acquire of a fitting size, so a
/// steady-state training step performs no heap allocation for tensor storage.
///
/// Buffers are returned as shared_ptr<std::vector<float>> whose deleter
/// recycles the vector into the pool instead of freeing it. The pool is a
/// leaky singleton, which keeps recycling deleters valid during static
/// destruction.
class BufferPool {
 public:
  /// Process-wide pool used by all tensor allocations.
  static BufferPool& Global();

  /// Returns a buffer with size() == n. Contents are unspecified (callers
  /// overwrite); use AcquireZeroed when zero-fill is required.
  std::shared_ptr<std::vector<float>> Acquire(size_t n);

  /// Returns a zero-filled buffer with size() == n.
  std::shared_ptr<std::vector<float>> AcquireZeroed(size_t n);

  /// Wraps an already-built vector so that its buffer joins the pool when the
  /// last reference drops (adoption path for Tensor::FromVector etc.).
  std::shared_ptr<std::vector<float>> Adopt(std::vector<float> v);

  /// Drops all free buffers (used by tests to get deterministic stats).
  void Trim();

  struct Stats {
    uint64_t hits = 0;       ///< Acquires served from the free list.
    uint64_t misses = 0;     ///< Acquires that had to allocate.
    uint64_t recycled = 0;   ///< Buffers returned to the free list.
    uint64_t free_bytes = 0; ///< Bytes currently parked in the free list.
  };
  Stats stats() const;

 private:
  BufferPool() = default;
  void Release(std::vector<float>* v);

  static constexpr int kNumBuckets = 48;
  /// Per-bucket buffer-count cap; bounds worst-case retention per size class.
  static constexpr size_t kMaxFreePerBucket = 64;
  /// Global cap on bytes parked in the free list; buffers released beyond it
  /// are freed outright, so a large-batch training phase cannot pin hundreds
  /// of MB through a later small-batch phase.
  static constexpr uint64_t kMaxFreeBytes = 256ull << 20;  // 256 MB

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::vector<float>>> buckets_[kNumBuckets];
  Stats stats_;
};

/// Pool-backed buffer of `n` floats, unspecified contents; shorthand used by
/// op kernels for output and scratch allocation.
std::shared_ptr<std::vector<float>> AcquireBuffer(int64_t n);

}  // namespace start::tensor

#endif  // START_TENSOR_BUFFER_POOL_H_
