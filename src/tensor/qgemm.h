#ifndef START_TENSOR_QGEMM_H_
#define START_TENSOR_QGEMM_H_

#include <cstdint>
#include <vector>

/// \file
/// Post-training int8 GEMM for the frozen serving plane.
///
/// Scheme (marian-style symmetric per-row quantization):
///  - Weights are stored output-channel-major ([N, K], i.e. the B^T layout of
///    GemmNT) and quantized per row with absmax scales: s_j = absmax_j / 127,
///    q = clamp(round_half_even(x / s_j), -127, 127). A zero row gets s = 0
///    and all-zero codes, so dequantization is exact there too.
///  - Activations are quantized dynamically per batch row with the same
///    per-row absmax scheme.
///  - The dot products accumulate in exact i32 arithmetic and dequantize once
///    per output element: C[i,j] += float(acc) * (sa_i * sb_j). Because the
///    integer part is exact and the float epilogue is shared between
///    backends, results are bitwise identical across the scalar reference,
///    the AVX2 microkernel, and any OpenMP thread count (rows are
///    independent).
///
/// Packing layout (cache-blocked panels): rows are grouped into panels of
/// kRowsPerPanel output channels; within a panel the K dimension is split
/// into blocks of kColBlock bytes, stored as [k-block][row-in-panel], so the
/// microkernel streams one contiguous cache line per (row, k-block) step.
/// Both K and N are zero-padded to multiples of the block sizes; padding
/// contributes exact zeros to every dot product.
///
/// i32 accumulation is exact while K * 127 * 127 < 2^31, i.e. K <= ~133k —
/// far above any model width here; Pack CHECK-enforces the bound.

namespace start::tensor::qgemm {

/// Output channels interleaved per packed panel.
inline constexpr int64_t kRowsPerPanel = 4;
/// K-dimension block (bytes per row per step) — one AVX2 register of int8.
inline constexpr int64_t kColBlock = 32;

/// A quantized, panel-packed weight matrix (logical [rows, cols] = [N, K]).
struct PackedMatrix {
  int64_t rows = 0;         ///< N: output channels.
  int64_t cols = 0;         ///< K: reduction depth.
  int64_t rows_padded = 0;  ///< rows rounded up to kRowsPerPanel.
  int64_t cols_padded = 0;  ///< cols rounded up to kColBlock.
  std::vector<int8_t> data;   ///< rows_padded * cols_padded packed bytes.
  std::vector<float> scales;  ///< [rows] per-row dequant scales.
};

/// Kernel backends. kScalar is the portable reference; kAvx2 is the SIMD
/// microkernel (maddubs + sign-transfer, 32 int8 products per instruction).
/// Both produce bitwise identical output.
enum class Backend { kScalar, kAvx2 };

/// The backend the host dispatches to: kAvx2 when the CPU supports AVX2 and
/// the environment variable START_QGEMM_BACKEND is not "scalar".
Backend ActiveBackend();
const char* BackendName(Backend backend);

/// \brief Per-row absmax int8 quantization of `rows` x `cols` floats read
/// with leading dimension `ld` (so strided views / submatrices quantize
/// without materialisation). Writes dense row-major [rows, cols] codes and
/// one scale per row.
void QuantizeRows(const float* src, int64_t ld, int64_t rows, int64_t cols,
                  int8_t* dst, float* scales);

/// Packs dense row-major [rows, cols] int8 codes (+ per-row scales) into the
/// panel layout above.
PackedMatrix Pack(const int8_t* q, const float* scales, int64_t rows,
                  int64_t cols);

/// Quantize + pack in one step from f32 row-major [rows, cols] with leading
/// dimension `ld`.
PackedMatrix QuantizeAndPack(const float* src, int64_t ld, int64_t rows,
                             int64_t cols);

/// Round-trip of Pack: recovers the dense row-major [rows, cols] int8 codes
/// (padding dropped). Pack(Unpack(m)) == m bitwise.
std::vector<int8_t> Unpack(const PackedMatrix& m);

/// \brief Quantizes `m` activation rows of `a` (f32, leading dimension
/// `lda`) against packed weights `b`: writes int8 codes with leading
/// dimension b.cols_padded (the k-tail [cols, cols_padded) zero-filled) and
/// one scale per row. `aq` must hold m * b.cols_padded bytes.
void QuantizeActivations(const float* a, int64_t lda, int64_t m,
                         const PackedMatrix& b, int8_t* aq, float* a_scales);

/// \brief C[m, b.rows] (ldc) += dequant(Aq · Bq^T): i32 accumulate over the
/// quantized codes, then += float(acc) * (a_scales[i] * b.scales[j]).
///
/// `aq` is the QuantizeActivations output (leading dimension b.cols_padded).
/// Columns [b.rows, ldc) of C are never touched. Parallelises over rows;
/// bitwise invariant in thread count and backend.
void Gemm(const int8_t* aq, const float* a_scales, int64_t m,
          const PackedMatrix& b, float* c, int64_t ldc, Backend backend);
void Gemm(const int8_t* aq, const float* a_scales, int64_t m,
          const PackedMatrix& b, float* c, int64_t ldc);

/// \brief One-call affine epilogue for nn::Linear's frozen int8 path:
/// y[m, b.rows] (ldy) = dequant(quantize(x) · Bq^T) + bias, overwriting y
/// (bias may be null = zero). Uses thread-local scratch for the quantized
/// activations, so steady-state serving allocates nothing.
void AffineForward(const float* x, int64_t ldx, int64_t m,
                   const PackedMatrix& b, const float* bias, float* y,
                   int64_t ldy);

}  // namespace start::tensor::qgemm

#endif  // START_TENSOR_QGEMM_H_
