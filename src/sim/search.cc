#include "sim/search.h"

#include <algorithm>

#include "common/check.h"
#include "sim/similarity.h"

namespace start::sim {

RankMetrics MostSimilarSearch(int64_t num_queries, int64_t database_size,
                              const QueryDistanceFn& distance,
                              const std::vector<int64_t>& gt_index) {
  START_CHECK_EQ(static_cast<int64_t>(gt_index.size()), num_queries);
  START_CHECK_GT(num_queries, 0);
  RankMetrics m;
  for (int64_t q = 0; q < num_queries; ++q) {
    const int64_t gt = gt_index[static_cast<size_t>(q)];
    START_CHECK(gt >= 0 && gt < database_size);
    const double gt_dist = distance(q, gt);
    // Rank = 1 + number of database items strictly closer than the truth
    // (ties resolved in the truth's favour only for larger indices).
    int64_t rank = 1;
    for (int64_t i = 0; i < database_size; ++i) {
      if (i == gt) continue;
      const double d = distance(q, i);
      if (d < gt_dist || (d == gt_dist && i < gt)) ++rank;
    }
    m.mean_rank += static_cast<double>(rank);
    if (rank <= 1) m.hr_at_1 += 1.0;
    if (rank <= 5) m.hr_at_5 += 1.0;
  }
  const double n = static_cast<double>(num_queries);
  m.mean_rank /= n;
  m.hr_at_1 /= n;
  m.hr_at_5 /= n;
  return m;
}

RankMetrics MostSimilarSearchEmbeddings(const std::vector<float>& queries,
                                        int64_t num_queries,
                                        const std::vector<float>& database,
                                        int64_t database_size, int64_t dim,
                                        const std::vector<int64_t>& gt_index) {
  START_CHECK_EQ(static_cast<int64_t>(queries.size()), num_queries * dim);
  START_CHECK_EQ(static_cast<int64_t>(database.size()), database_size * dim);
  return MostSimilarSearch(
      num_queries, database_size,
      [&](int64_t q, int64_t i) {
        return EmbeddingDistance(queries.data() + q * dim,
                                 database.data() + i * dim, dim);
      },
      gt_index);
}

std::vector<int64_t> TopK(int64_t database_size, int64_t k,
                          const std::function<double(int64_t)>& distance) {
  START_CHECK_GT(k, 0);
  std::vector<std::pair<double, int64_t>> scored;
  scored.reserve(static_cast<size_t>(database_size));
  for (int64_t i = 0; i < database_size; ++i) {
    scored.emplace_back(distance(i), i);
  }
  const size_t kk = static_cast<size_t>(std::min(k, database_size));
  std::partial_sort(scored.begin(), scored.begin() + kk, scored.end());
  std::vector<int64_t> out;
  out.reserve(kk);
  for (size_t i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

double KnnPrecision(const std::vector<float>& original_queries,
                    const std::vector<float>& transformed_queries,
                    int64_t num_queries, const std::vector<float>& database,
                    int64_t database_size, int64_t dim, int64_t k) {
  START_CHECK_EQ(static_cast<int64_t>(original_queries.size()),
                 num_queries * dim);
  START_CHECK_EQ(static_cast<int64_t>(transformed_queries.size()),
                 num_queries * dim);
  double total = 0.0;
  for (int64_t q = 0; q < num_queries; ++q) {
    const auto truth = TopK(database_size, k, [&](int64_t i) {
      return EmbeddingDistance(original_queries.data() + q * dim,
                               database.data() + i * dim, dim);
    });
    const auto got = TopK(database_size, k, [&](int64_t i) {
      return EmbeddingDistance(transformed_queries.data() + q * dim,
                               database.data() + i * dim, dim);
    });
    int64_t overlap = 0;
    for (const int64_t g : got) {
      if (std::find(truth.begin(), truth.end(), g) != truth.end()) ++overlap;
    }
    total += static_cast<double>(overlap) / static_cast<double>(k);
  }
  return total / static_cast<double>(num_queries);
}

}  // namespace start::sim
