#include "sim/search.h"

#include <algorithm>

#include "common/check.h"
#include "sim/similarity.h"

namespace start::sim {

namespace {

/// Row q of the query-to-database squared-distance matrix, computed in one
/// tight pass (the per-pair std::function dispatch of the generic search path
/// dominated kNN evaluation). Accumulation stays in double so ranking ties
/// resolve exactly as in the scalar path.
void DistanceRow(const float* query, const float* database,
                 int64_t database_size, int64_t dim, double* row) {
#pragma omp parallel for if (database_size * dim > (1 << 15))
  for (int64_t i = 0; i < database_size; ++i) {
    row[i] = EmbeddingDistance(query, database + i * dim, dim);
  }
}

/// Rank of `gt` within a distance row plus hit counters (rank = 1 + items
/// strictly closer, ties resolved in the truth's favour only for larger
/// indices).
int64_t RankFromRow(const double* row, int64_t database_size, int64_t gt) {
  const double gt_dist = row[gt];
  int64_t rank = 1;
  for (int64_t i = 0; i < database_size; ++i) {
    if (i == gt) continue;
    const double d = row[i];
    if (d < gt_dist || (d == gt_dist && i < gt)) ++rank;
  }
  return rank;
}

/// Shared core of both search entry points: `fill_row(q, row)` writes query
/// q's distances to every database item, so the rank/tie rule and the metric
/// averaging live in exactly one place.
template <typename FillRow>
RankMetrics SearchWithRows(int64_t num_queries, int64_t database_size,
                           const std::vector<int64_t>& gt_index,
                           FillRow fill_row) {
  START_CHECK_EQ(static_cast<int64_t>(gt_index.size()), num_queries);
  START_CHECK_GT(num_queries, 0);
  RankMetrics m;
  std::vector<double> row(static_cast<size_t>(database_size));
  for (int64_t q = 0; q < num_queries; ++q) {
    const int64_t gt = gt_index[static_cast<size_t>(q)];
    START_CHECK(gt >= 0 && gt < database_size);
    fill_row(q, row.data());
    const int64_t rank = RankFromRow(row.data(), database_size, gt);
    m.mean_rank += static_cast<double>(rank);
    if (rank <= 1) m.hr_at_1 += 1.0;
    if (rank <= 5) m.hr_at_5 += 1.0;
  }
  const double n = static_cast<double>(num_queries);
  m.mean_rank /= n;
  m.hr_at_1 /= n;
  m.hr_at_5 /= n;
  return m;
}

}  // namespace

RankMetrics MostSimilarSearch(int64_t num_queries, int64_t database_size,
                              const QueryDistanceFn& distance,
                              const std::vector<int64_t>& gt_index) {
  return SearchWithRows(num_queries, database_size, gt_index,
                        [&](int64_t q, double* row) {
                          for (int64_t i = 0; i < database_size; ++i) {
                            row[i] = distance(q, i);
                          }
                        });
}

RankMetrics MostSimilarSearchEmbeddings(const std::vector<float>& queries,
                                        int64_t num_queries,
                                        const std::vector<float>& database,
                                        int64_t database_size, int64_t dim,
                                        const std::vector<int64_t>& gt_index) {
  START_CHECK_EQ(static_cast<int64_t>(queries.size()), num_queries * dim);
  START_CHECK_EQ(static_cast<int64_t>(database.size()), database_size * dim);
  return SearchWithRows(num_queries, database_size, gt_index,
                        [&](int64_t q, double* row) {
                          DistanceRow(queries.data() + q * dim,
                                      database.data(), database_size, dim,
                                      row);
                        });
}

std::vector<int64_t> TopK(int64_t database_size, int64_t k,
                          const std::function<double(int64_t)>& distance) {
  START_CHECK_GT(k, 0);
  const size_t kk = static_cast<size_t>(std::min(k, database_size));
  // Bounded max-heap selection: the root is the worst candidate kept, so a
  // new item enters only when it beats the root. O(N log k) time and O(k)
  // memory — the seed materialised and sorted all N distances. Candidates
  // compare as (distance, index) pairs, so exact distance ties resolve
  // toward the smaller database index, as before.
  std::vector<std::pair<double, int64_t>> heap;
  heap.reserve(kk);
  for (int64_t i = 0; i < database_size; ++i) {
    const std::pair<double, int64_t> candidate(distance(i), i);
    if (heap.size() < kk) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end());
    } else if (candidate < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort_heap(heap.begin(), heap.end());  // ascending distance
  std::vector<int64_t> out;
  out.reserve(kk);
  for (const auto& [d, i] : heap) out.push_back(i);
  return out;
}

}  // namespace start::sim
