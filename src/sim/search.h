#ifndef START_SIM_SEARCH_H_
#define START_SIM_SEARCH_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace start::sim {

/// \brief Result of the most-similar-trajectory protocol (Sec. IV-D4a).
struct RankMetrics {
  double mean_rank = 0.0;  ///< 1-based rank of the ground truth, averaged.
  double hr_at_1 = 0.0;
  double hr_at_5 = 0.0;
};

/// Distance between query q and database item i.
using QueryDistanceFn = std::function<double(int64_t q, int64_t i)>;

/// \brief Generic most-similar search: for each of `num_queries`, the ground
/// truth is database item `gt_index[q]`; items are ranked by distance
/// (ascending, ties broken by index).
RankMetrics MostSimilarSearch(int64_t num_queries, int64_t database_size,
                              const QueryDistanceFn& distance,
                              const std::vector<int64_t>& gt_index);

/// Euclidean-embedding specialisation: `queries` is [nq, d] row-major,
/// `database` [ndb, d].
RankMetrics MostSimilarSearchEmbeddings(const std::vector<float>& queries,
                                        int64_t num_queries,
                                        const std::vector<float>& database,
                                        int64_t database_size, int64_t dim,
                                        const std::vector<int64_t>& gt_index);

/// \brief Indices of the k nearest database items (ascending distance, exact
/// ties broken toward the smaller index).
///
/// Bounded-heap selection: O(database_size · log k) time, O(k) memory, so
/// serving-sized databases never pay for a full sort. Also the selection
/// primitive behind serve::EmbeddingIndex queries.
std::vector<int64_t> TopK(int64_t database_size, int64_t k,
                          const std::function<double(int64_t)>& distance);

// The k-nearest precision protocol (Sec. IV-D4b) lives in
// serve::KnnPrecision (serve/index_interface.h): it runs through the
// IndexInterface retrieval surface instead of a duplicate scoring loop.

}  // namespace start::sim

#endif  // START_SIM_SEARCH_H_
