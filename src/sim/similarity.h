#ifndef START_SIM_SIMILARITY_H_
#define START_SIM_SIMILARITY_H_

#include <utility>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace start::sim {

/// 2-D point sequence (meters); trajectories are compared through their
/// road-midpoint polylines, as is standard for road-constrained data.
using PointSeq = std::vector<std::pair<double, double>>;

/// Converts a trajectory to its midpoint polyline.
PointSeq ToPointSequence(const roadnet::RoadNetwork& net,
                         const traj::Trajectory& t);

/// Dynamic Time Warping distance [32] (O(L^2), Euclidean ground distance).
double DtwDistance(const PointSeq& a, const PointSeq& b);

/// Longest Common SubSequence dissimilarity [33]:
/// 1 - LCSS_eps(a, b) / min(|a|, |b|). Two points match when within `eps`
/// meters.
double LcssDistance(const PointSeq& a, const PointSeq& b, double eps);

/// Discrete Fréchet distance [34].
double FrechetDistance(const PointSeq& a, const PointSeq& b);

/// Edit Distance on Real sequence [35], normalised by max(|a|, |b|).
double EdrDistance(const PointSeq& a, const PointSeq& b, double eps);

/// Squared Euclidean distance between two embedding vectors of length d.
double EmbeddingDistance(const float* a, const float* b, int64_t d);

}  // namespace start::sim

#endif  // START_SIM_SIMILARITY_H_
