#include "sim/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace start::sim {

namespace {

double PointDist(const std::pair<double, double>& p,
                 const std::pair<double, double>& q) {
  return std::hypot(p.first - q.first, p.second - q.second);
}

}  // namespace

PointSeq ToPointSequence(const roadnet::RoadNetwork& net,
                         const traj::Trajectory& t) {
  PointSeq seq;
  seq.reserve(t.roads.size());
  for (const int64_t r : t.roads) {
    const auto& seg = net.segment(r);
    seq.emplace_back(seg.MidX(), seg.MidY());
  }
  return seq;
}

double DtwDistance(const PointSeq& a, const PointSeq& b) {
  START_CHECK(!a.empty() && !b.empty());
  const size_t n = a.size(), m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Rolling 2-row DP.
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      const double cost = PointDist(a[i - 1], b[j - 1]);
      cur[j] = cost + std::min({prev[j], cur[j - 1], prev[j - 1]});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LcssDistance(const PointSeq& a, const PointSeq& b, double eps) {
  START_CHECK(!a.empty() && !b.empty());
  const size_t n = a.size(), m = b.size();
  std::vector<int32_t> prev(m + 1, 0), cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (PointDist(a[i - 1], b[j - 1]) <= eps) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  const double lcss = static_cast<double>(prev[m]);
  return 1.0 - lcss / static_cast<double>(std::min(n, m));
}

double FrechetDistance(const PointSeq& a, const PointSeq& b) {
  START_CHECK(!a.empty() && !b.empty());
  const size_t n = a.size(), m = b.size();
  std::vector<double> dp(n * m, -1.0);
  // Iterative DP over the coupled free-space (row-major, dependencies are
  // (i-1,j), (i,j-1), (i-1,j-1) so a forward sweep is valid).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double d = PointDist(a[i], b[j]);
      double reach;
      if (i == 0 && j == 0) {
        reach = d;
      } else if (i == 0) {
        reach = std::max(dp[j - 1], d);
      } else if (j == 0) {
        reach = std::max(dp[(i - 1) * m], d);
      } else {
        reach = std::max(
            std::min({dp[(i - 1) * m + j], dp[i * m + j - 1],
                      dp[(i - 1) * m + j - 1]}),
            d);
      }
      dp[i * m + j] = reach;
    }
  }
  return dp[n * m - 1];
}

double EdrDistance(const PointSeq& a, const PointSeq& b, double eps) {
  START_CHECK(!a.empty() && !b.empty());
  const size_t n = a.size(), m = b.size();
  std::vector<int32_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int32_t>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int32_t>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int32_t sub =
          PointDist(a[i - 1], b[j - 1]) <= eps ? 0 : 1;
      cur[j] = std::min({prev[j - 1] + sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[m]) / static_cast<double>(std::max(n, m));
}

double EmbeddingDistance(const float* a, const float* b, int64_t d) {
  double acc = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace start::sim
