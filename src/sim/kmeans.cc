#include "sim/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"
#include "sim/similarity.h"

namespace start::sim {

KMeansResult KMeans(const std::vector<float>& data, int64_t n, int64_t dim,
                    int64_t k, common::Rng* rng, int64_t max_iterations) {
  START_CHECK(rng != nullptr);
  START_CHECK_EQ(static_cast<int64_t>(data.size()), n * dim);
  START_CHECK_GT(k, 0);
  START_CHECK_LE(k, n);
  KMeansResult result;
  result.centroids.resize(static_cast<size_t>(k * dim));

  // k-means++ seeding: first centre uniform, then proportional to squared
  // distance to the nearest chosen centre.
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::max());
  int64_t first = rng->UniformInt(n);
  std::copy(data.begin() + first * dim, data.begin() + (first + 1) * dim,
            result.centroids.begin());
  for (int64_t c = 1; c < k; ++c) {
    for (int64_t i = 0; i < n; ++i) {
      const double d = EmbeddingDistance(
          data.data() + i * dim,
          result.centroids.data() + (c - 1) * dim, dim);
      min_dist[static_cast<size_t>(i)] =
          std::min(min_dist[static_cast<size_t>(i)], d);
    }
    const int64_t chosen = rng->Categorical(
        std::vector<double>(min_dist.begin(), min_dist.end()));
    std::copy(data.begin() + chosen * dim, data.begin() + (chosen + 1) * dim,
              result.centroids.begin() + c * dim);
  }

  result.assignments.assign(static_cast<size_t>(n), -1);
  std::vector<double> sums(static_cast<size_t>(k * dim));
  std::vector<int64_t> counts(static_cast<size_t>(k));
  for (int64_t iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    bool changed = false;
    result.inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      int64_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int64_t c = 0; c < k; ++c) {
        const double d = EmbeddingDistance(
            data.data() + i * dim, result.centroids.data() + c * dim, dim);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      result.inertia += best_d;
      if (result.assignments[static_cast<size_t>(i)] != best) {
        result.assignments[static_cast<size_t>(i)] = best;
        changed = true;
      }
    }
    if (!changed) break;
    // Recompute centroids; empty clusters keep their previous centre.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      for (int64_t j = 0; j < dim; ++j) {
        sums[static_cast<size_t>(c * dim + j)] +=
            data[static_cast<size_t>(i * dim + j)];
      }
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      for (int64_t j = 0; j < dim; ++j) {
        result.centroids[static_cast<size_t>(c * dim + j)] =
            static_cast<float>(sums[static_cast<size_t>(c * dim + j)] /
                               static_cast<double>(
                                   counts[static_cast<size_t>(c)]));
      }
    }
  }
  return result;
}

ClusterQuality EvaluateClusters(const std::vector<int64_t>& assignments,
                                const std::vector<int64_t>& labels) {
  START_CHECK_EQ(assignments.size(), labels.size());
  START_CHECK(!assignments.empty());
  const double n = static_cast<double>(assignments.size());
  // Joint counts.
  std::map<std::pair<int64_t, int64_t>, int64_t> joint;
  std::map<int64_t, int64_t> by_cluster, by_label;
  for (size_t i = 0; i < assignments.size(); ++i) {
    ++joint[{assignments[i], labels[i]}];
    ++by_cluster[assignments[i]];
    ++by_label[labels[i]];
  }
  ClusterQuality q;
  // Purity: majority label share per cluster, weighted by cluster size.
  for (const auto& [cluster, size] : by_cluster) {
    int64_t best = 0;
    for (const auto& [key, count] : joint) {
      if (key.first == cluster) best = std::max(best, count);
    }
    q.purity += static_cast<double>(best);
  }
  q.purity /= n;
  // NMI with natural logs.
  double mi = 0.0, h_c = 0.0, h_l = 0.0;
  for (const auto& [key, count] : joint) {
    const double p = count / n;
    const double pc = by_cluster[key.first] / n;
    const double pl = by_label[key.second] / n;
    mi += p * std::log(p / (pc * pl));
  }
  for (const auto& [cluster, count] : by_cluster) {
    const double p = count / n;
    h_c -= p * std::log(p);
  }
  for (const auto& [label, count] : by_label) {
    const double p = count / n;
    h_l -= p * std::log(p);
  }
  const double denom = std::sqrt(h_c * h_l);
  q.nmi = denom > 1e-12 ? mi / denom : 0.0;
  return q;
}

}  // namespace start::sim
