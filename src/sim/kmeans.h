#ifndef START_SIM_KMEANS_H_
#define START_SIM_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace start::sim {

/// \brief k-means clustering over trajectory embeddings.
///
/// Trajectory clustering is one of the downstream applications motivating
/// TRL (Sec. I / V-A: DETECT, E2DTC build special-purpose models for it);
/// with generic representations it reduces to k-means in embedding space.
struct KMeansResult {
  std::vector<int64_t> assignments;  ///< Cluster id per row.
  std::vector<float> centroids;      ///< Row-major [k, dim].
  double inertia = 0.0;              ///< Sum of squared distances to centroids.
  int64_t iterations = 0;            ///< Iterations until convergence.
};

/// Lloyd's algorithm with k-means++ seeding. `data` is row-major [n, dim].
KMeansResult KMeans(const std::vector<float>& data, int64_t n, int64_t dim,
                    int64_t k, common::Rng* rng, int64_t max_iterations = 50);

/// \brief Clustering-quality diagnostics against reference labels.
struct ClusterQuality {
  double purity = 0.0;  ///< Weighted majority-label share per cluster.
  double nmi = 0.0;     ///< Normalised mutual information.
};

/// Evaluates cluster assignments against ground-truth labels.
ClusterQuality EvaluateClusters(const std::vector<int64_t>& assignments,
                                const std::vector<int64_t>& labels);

}  // namespace start::sim

#endif  // START_SIM_KMEANS_H_
