#include "nn/module.h"

#include <cmath>
#include <map>

#include "common/check.h"
#include "tensor/serialize.h"

namespace start::nn {

std::vector<std::pair<std::string, tensor::Tensor>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  CollectParameters("", &out);
  return out;
}

void Module::CollectParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, tensor::Tensor>>* out) const {
  for (const auto& [name, t] : params_) {
    out->emplace_back(prefix + name, t);
  }
  for (const auto& [name, child] : children_) {
    child->CollectParameters(prefix + name + ".", out);
  }
}

std::vector<std::pair<std::string, Module*>> Module::NamedModules() {
  std::vector<std::pair<std::string, Module*>> out;
  CollectModules("", &out);
  return out;
}

void Module::CollectModules(
    const std::string& prefix,
    std::vector<std::pair<std::string, Module*>>* out) {
  out->emplace_back(prefix, this);
  for (const auto& [name, child] : children_) {
    child->CollectModules(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<tensor::Tensor> Module::Parameters() const {
  std::vector<tensor::Tensor> out;
  for (auto& [name, t] : NamedParameters()) out.push_back(t);
  return out;
}

void Module::ZeroGrad() {
  for (auto& t : Parameters()) t.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::SetDropoutRng(common::Rng* rng) {
  dropout_rng_ = rng;
  for (auto& [name, child] : children_) child->SetDropoutRng(rng);
}

int64_t Module::ParameterCount() const {
  int64_t n = 0;
  for (const auto& t : Parameters()) n += t.numel();
  return n;
}

common::Status Module::Save(const std::string& path) const {
  std::map<std::string, tensor::Tensor> named;
  for (auto& [name, t] : NamedParameters()) {
    auto [it, inserted] = named.emplace(name, t);
    if (!inserted) {
      return common::Status::Internal("duplicate parameter name: " + name);
    }
  }
  return tensor::SaveTensors(path, named);
}

common::Status Module::Load(const std::string& path, bool allow_missing,
                            bool skip_mismatched) {
  START_ASSIGN_OR_RETURN(auto loaded, tensor::LoadTensors(path));
  for (auto& [name, t] : NamedParameters()) {
    auto it = loaded.find(name);
    if (it == loaded.end()) {
      if (allow_missing) continue;
      return common::Status::NotFound("parameter missing in checkpoint: " +
                                      name);
    }
    if (it->second.shape() != t.shape()) {
      if (skip_mismatched) continue;
      return common::Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " +
          it->second.shape().ToString() + " vs model " +
          t.shape().ToString());
    }
    std::copy(it->second.data(), it->second.data() + t.numel(), t.data());
  }
  return common::Status::OK();
}

void Module::CopyParametersFrom(const Module& other) {
  auto mine = NamedParameters();
  auto theirs = other.NamedParameters();
  START_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    START_CHECK_MSG(mine[i].first == theirs[i].first,
                    mine[i].first << " vs " << theirs[i].first);
    START_CHECK(mine[i].second.shape() == theirs[i].second.shape());
    std::copy(theirs[i].second.data(),
              theirs[i].second.data() + theirs[i].second.numel(),
              mine[i].second.data());
  }
}

tensor::Tensor Module::RegisterParameter(const std::string& name,
                                         tensor::Tensor t) {
  START_CHECK(t.defined());
  t.set_requires_grad(true);
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  START_CHECK(child != nullptr);
  if (dropout_rng_ != nullptr) child->SetDropoutRng(dropout_rng_);
  children_.emplace_back(name, child);
}

double ClipGradNorm(const std::vector<tensor::Tensor>& params,
                    double max_norm) {
  double total = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    for (int64_t i = 0; i < p.numel(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params) {
      if (!p.has_grad()) continue;
      float* g = const_cast<float*>(p.grad());
      for (int64_t i = 0; i < p.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace start::nn
