#ifndef START_NN_ATTENTION_H_
#define START_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace start::nn {

/// \brief Multi-head self-attention with an optional additive score bias.
///
/// The bias hook is how START's Time Interval-Aware Self-Attention (Eq. 7)
/// plugs in: the caller passes ∆̃ (+ padding mask) as a [B, L, L] tensor that
/// is added to Q Kᵀ/√d′ before the softmax. Passing an undefined tensor gives
/// the standard Transformer attention (Eq. 6).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, common::Rng* rng,
                         float dropout = 0.1f);

  /// x is [B, L, dim]; score_bias (optional) is [B, L, L], added to every
  /// head's pre-softmax scores. Returns [B, L, dim].
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const tensor::Tensor& score_bias) const;

  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  float dropout_;
};

/// \brief Post-LN Transformer encoder layer: MHSA + residual + LayerNorm,
/// then FFN + residual + LayerNorm (Sec. III-B2 of the paper / [11]).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t dim, int64_t num_heads, int64_t ffn_dim,
                          common::Rng* rng, float dropout = 0.1f);

  /// x [B,L,dim], score_bias optional [B,L,L] (see MultiHeadSelfAttention).
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const tensor::Tensor& score_bias) const;

 private:
  MultiHeadSelfAttention attn_;
  FeedForward ffn_;
  LayerNormLayer ln1_;
  LayerNormLayer ln2_;
  float dropout_;
};

/// Builds the additive padding-mask bias [B, L, L]: entry (b, i, j) is 0 when
/// position j is a real token of sequence b and -1e9 when it is padding.
/// `lengths[b]` is the number of valid tokens of sequence b.
tensor::Tensor MakePaddingBias(const std::vector<int64_t>& lengths,
                               int64_t max_len);

}  // namespace start::nn

#endif  // START_NN_ATTENTION_H_
