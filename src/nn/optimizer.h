#ifndef START_NN_OPTIMIZER_H_
#define START_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace start::nn {

/// \brief Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the parameters' current gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 protected:
  std::vector<tensor::Tensor> params_;
  double lr_ = 1e-3;
};

/// \brief SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, double lr, double momentum = 0.0);

  void Step() override;

 private:
  double momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// \brief AdamW (decoupled weight decay) — the paper's optimizer [29].
class AdamW : public Optimizer {
 public:
  AdamW(std::vector<tensor::Tensor> params, double lr, double beta1 = 0.9,
        double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.01);

  void Step() override;

 private:
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace start::nn

#endif  // START_NN_OPTIMIZER_H_
