#ifndef START_NN_OPTIMIZER_H_
#define START_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace start::nn {

/// \brief Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the parameters' current gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  /// The parameter list this optimizer updates, in construction order (the
  /// same order as Module::Parameters() when built from one). Checkpointing
  /// uses this to pair slot buffers with parameter names.
  const std::vector<tensor::Tensor>& params() const { return params_; }

 protected:
  std::vector<tensor::Tensor> params_;
  double lr_ = 1e-3;
};

/// \brief SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, double lr, double momentum = 0.0);

  void Step() override;

  /// Momentum buffers, one per parameter (empty when momentum == 0); exposed
  /// mutable so checkpoint restore can write the saved slots back.
  std::vector<std::vector<float>>& velocity() { return velocity_; }
  const std::vector<std::vector<float>>& velocity() const {
    return velocity_;
  }

 private:
  double momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// \brief AdamW (decoupled weight decay) — the paper's optimizer [29].
class AdamW : public Optimizer {
 public:
  AdamW(std::vector<tensor::Tensor> params, double lr, double beta1 = 0.9,
        double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.01);

  void Step() override;

  /// Update count driving bias correction; settable so a resumed run
  /// continues the correction schedule exactly where it stopped.
  int64_t step_count() const { return t_; }
  void set_step_count(int64_t t) { t_ = t; }

  /// First/second-moment slot buffers, one per parameter in params() order;
  /// exposed mutable so checkpoint restore can write the saved slots back.
  std::vector<std::vector<float>>& moment1() { return m_; }
  const std::vector<std::vector<float>>& moment1() const { return m_; }
  std::vector<std::vector<float>>& moment2() { return v_; }
  const std::vector<std::vector<float>>& moment2() const { return v_; }

 private:
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace start::nn

#endif  // START_NN_OPTIMIZER_H_
