#ifndef START_NN_INIT_H_
#define START_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace start::nn {

/// Glorot/Xavier uniform initialisation: U(-a, a) with
/// a = gain * sqrt(6 / (fan_in + fan_out)). For 2-D weights fan_in/fan_out
/// are the two dims; for embeddings use NormalInit instead.
tensor::Tensor XavierUniform(const tensor::Shape& shape, common::Rng* rng,
                             float gain = 1.0f);

/// N(0, std^2) initialisation (used for embedding tables; std 0.02 as BERT).
tensor::Tensor NormalInit(const tensor::Shape& shape, common::Rng* rng,
                          float stddev = 0.02f);

/// Zero initialisation (biases).
tensor::Tensor ZerosInit(const tensor::Shape& shape);

}  // namespace start::nn

#endif  // START_NN_INIT_H_
