#include "nn/attention.h"

#include <cmath>

#include "common/check.h"

namespace start::nn {

using tensor::Shape;
using tensor::Tensor;

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               common::Rng* rng, float dropout)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng),
      dropout_(dropout) {
  START_CHECK_MSG(dim % num_heads == 0,
                  "dim " << dim << " not divisible by heads " << num_heads);
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const Tensor& score_bias) const {
  START_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), l = x.dim(1);
  START_CHECK_EQ(x.dim(2), dim_);
  if (score_bias.defined()) {
    START_CHECK(score_bias.shape() == Shape({b, l, l}));
  }
  const Tensor q = wq_.Forward(x);
  const Tensor k = wk_.Forward(x);
  const Tensor v = wv_.Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    // Head slices are zero-copy strided views; BatchMatMul consumes them
    // directly through its row-strided GEMM path.
    const Tensor qh = tensor::Slice(q, 2, h * head_dim_, head_dim_);
    const Tensor kh = tensor::Slice(k, 2, h * head_dim_, head_dim_);
    const Tensor vh = tensor::Slice(v, 2, h * head_dim_, head_dim_);
    Tensor scores =
        tensor::Scale(tensor::BatchMatMul(qh, kh, /*transpose_b=*/true),
                      scale);  // [B, L, L]
    if (score_bias.defined()) scores = tensor::Add(scores, score_bias);
    Tensor attn = tensor::SoftmaxLastDim(scores);
    attn = tensor::Dropout(attn, dropout_, training(), dropout_rng());
    head_outputs.push_back(tensor::BatchMatMul(attn, vh));  // [B, L, d']
  }
  const Tensor concat = num_heads_ == 1 ? head_outputs[0]
                                        : tensor::Concat(head_outputs, 2);
  return wo_.Forward(concat);
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t dim,
                                                 int64_t num_heads,
                                                 int64_t ffn_dim,
                                                 common::Rng* rng,
                                                 float dropout)
    : attn_(dim, num_heads, rng, dropout),
      ffn_(dim, ffn_dim, rng, dropout),
      ln1_(dim),
      ln2_(dim),
      dropout_(dropout) {
  RegisterModule("attn", &attn_);
  RegisterModule("ffn", &ffn_);
  RegisterModule("ln1", &ln1_);
  RegisterModule("ln2", &ln2_);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x,
                                        const Tensor& score_bias) const {
  Tensor a = attn_.Forward(x, score_bias);
  a = tensor::Dropout(a, dropout_, training(), dropout_rng());
  Tensor h = ln1_.Forward(tensor::Add(x, a));
  Tensor f = ffn_.Forward(h);
  f = tensor::Dropout(f, dropout_, training(), dropout_rng());
  return ln2_.Forward(tensor::Add(h, f));
}

Tensor MakePaddingBias(const std::vector<int64_t>& lengths, int64_t max_len) {
  const int64_t b = static_cast<int64_t>(lengths.size());
  std::vector<float> bias(static_cast<size_t>(b * max_len * max_len), 0.0f);
  for (int64_t s = 0; s < b; ++s) {
    const int64_t len = lengths[static_cast<size_t>(s)];
    START_CHECK_LE(len, max_len);
    START_CHECK_GT(len, 0);
    float* base = bias.data() + s * max_len * max_len;
    for (int64_t i = 0; i < max_len; ++i) {
      for (int64_t j = len; j < max_len; ++j) {
        base[i * max_len + j] = -1e9f;
      }
    }
  }
  return Tensor::FromVector(Shape({b, max_len, max_len}), std::move(bias));
}

}  // namespace start::nn
