#ifndef START_NN_ALLREDUCE_H_
#define START_NN_ALLREDUCE_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace start::nn {

/// \file
/// Deterministic fixed-order tree all-reduce for data-parallel training.
///
/// Floating-point addition is not associative, so the value of a combined
/// gradient depends on the order its contributions are summed. The trainer's
/// bitwise-reproducibility contract (K shards ≡ 1 shard, see
/// core/parallel_trainer.h) therefore requires a combination order that is a
/// pure function of the *logical* shard decomposition — never of how many
/// threads happened to run it or which one finished first.
///
/// These reductions implement that order: a pairwise stride-doubling binary
/// tree over the slot index,
///
///     pass 1:  s0+=s1   s2+=s3   s4+=s5 ...
///     pass 2:  s0+=s2   s4+=s6 ...
///     pass 3:  s0+=s4 ...
///
/// which is fully determined by the slot count. Callers assign each logical
/// shard a fixed slot (its ordinal); any thread may *compute* a slot's
/// contents, but the combine walks the same tree every run.

/// One shard's gradient contribution for a fixed parameter list, in
/// `Optimizer::params()` order. A null entry means the shard never touched
/// that parameter (an exact zero — cheaper to skip than to materialise).
using GradShard = std::vector<std::shared_ptr<std::vector<float>>>;

/// Reduces `slots` in place with the fixed pairwise tree and returns the
/// combined buffer (slot 0 after the final pass), or nullptr when every slot
/// is null. Null slots act as exact zeros: combining a null left slot with a
/// live right slot adopts the right buffer unchanged. Buffers are consumed.
std::shared_ptr<std::vector<float>> TreeReduce(
    std::vector<std::shared_ptr<std::vector<float>>> slots);

/// Tree-reduces `shards` per parameter and accumulates each combined buffer
/// into the parameter's gradient (which the caller must have allocated and
/// zeroed, e.g. via Optimizer::ZeroGrad). Per-parameter reductions are
/// independent, so they are fanned out over `pool` when one is given —
/// scheduling cannot change any sum's association order, only who computes
/// it. Shard buffers are consumed.
void TreeReduceInto(std::vector<GradShard> shards,
                    const std::vector<tensor::Tensor>& params,
                    common::ThreadPool* pool = nullptr);

}  // namespace start::nn

#endif  // START_NN_ALLREDUCE_H_
