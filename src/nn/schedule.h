#ifndef START_NN_SCHEDULE_H_
#define START_NN_SCHEDULE_H_

#include <cstdint>

namespace start::nn {

/// \brief Linear warm-up followed by cosine annealing — the paper's schedule
/// (Sec. IV-C2: "increase lr linearly for the first five epochs and decrease
/// it after using a cosine annealing schedule").
class WarmupCosineSchedule {
 public:
  /// base_lr is reached at step == warmup_steps; afterwards the rate anneals
  /// to min_lr at total_steps following a half cosine.
  WarmupCosineSchedule(double base_lr, int64_t warmup_steps,
                       int64_t total_steps, double min_lr = 0.0);

  /// Learning rate for 0-based step `step`.
  double LrAt(int64_t step) const;

  /// Hash of the schedule's parameters. Stored in training checkpoints so a
  /// resume can detect that the LR trajectory it is about to continue is not
  /// the one the checkpoint was trained under (e.g. total_steps changed) —
  /// the step cursor alone cannot catch that.
  uint64_t Fingerprint() const;

  int64_t warmup_steps() const { return warmup_steps_; }
  int64_t total_steps() const { return total_steps_; }

 private:
  double base_lr_;
  int64_t warmup_steps_;
  int64_t total_steps_;
  double min_lr_;
};

}  // namespace start::nn

#endif  // START_NN_SCHEDULE_H_
