#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace start::nn {

Optimizer::Optimizer(std::vector<tensor::Tensor> params)
    : params_(std::move(params)) {
  for (auto& p : params_) {
    START_CHECK(p.defined());
    START_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<tensor::Tensor> params, double lr, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ != 0.0) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    const int64_t n = p.numel();
    if (momentum_ == 0.0) {
      for (int64_t j = 0; j < n; ++j) {
        w[j] -= static_cast<float>(lr_) * g[j];
      }
    } else {
      float* vel = velocity_[i].data();
      for (int64_t j = 0; j < n; ++j) {
        vel[j] = static_cast<float>(momentum_) * vel[j] + g[j];
        w[j] -= static_cast<float>(lr_) * vel[j];
      }
    }
  }
}

AdamW::AdamW(std::vector<tensor::Tensor> params, double lr, double beta1,
             double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    v_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
  }
}

void AdamW::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g[j]);
      v[j] = static_cast<float>(beta2_ * v[j] +
                                (1.0 - beta2_) * static_cast<double>(g[j]) *
                                    g[j]);
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      // Decoupled weight decay (AdamW): decay applied directly to weights.
      w[j] -= static_cast<float>(lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                                        weight_decay_ * w[j]));
    }
  }
}

}  // namespace start::nn
