#include "nn/rnn.h"

#include "common/check.h"

namespace start::nn {

using tensor::Shape;
using tensor::Tensor;

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, common::Rng* rng)
    : hidden_dim_(hidden_dim),
      ih_(input_dim, 3 * hidden_dim, rng),
      hh_(hidden_dim, 3 * hidden_dim, rng) {
  RegisterModule("ih", &ih_);
  RegisterModule("hh", &hh_);
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  const Tensor gi = ih_.Forward(x);  // [B, 3h]
  const Tensor gh = hh_.Forward(h);
  const int64_t hd = hidden_dim_;
  const Tensor r = tensor::Sigmoid(tensor::Add(tensor::Slice(gi, 1, 0, hd),
                                               tensor::Slice(gh, 1, 0, hd)));
  const Tensor z = tensor::Sigmoid(tensor::Add(tensor::Slice(gi, 1, hd, hd),
                                               tensor::Slice(gh, 1, hd, hd)));
  const Tensor n = tensor::Tanh(tensor::Add(
      tensor::Slice(gi, 1, 2 * hd, hd),
      tensor::Mul(r, tensor::Slice(gh, 1, 2 * hd, hd))));
  // h' = (1 - z) * n + z * h
  return tensor::Add(tensor::Mul(tensor::AddScalar(tensor::Neg(z), 1.0f), n),
                     tensor::Mul(z, h));
}

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, common::Rng* rng)
    : hidden_dim_(hidden_dim),
      ih_(input_dim, 4 * hidden_dim, rng),
      hh_(hidden_dim, 4 * hidden_dim, rng) {
  RegisterModule("ih", &ih_);
  RegisterModule("hh", &hh_);
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& state) const {
  const Tensor g = tensor::Add(ih_.Forward(x), hh_.Forward(state.h));
  const int64_t hd = hidden_dim_;
  const Tensor i = tensor::Sigmoid(tensor::Slice(g, 1, 0, hd));
  const Tensor f = tensor::Sigmoid(tensor::Slice(g, 1, hd, hd));
  const Tensor c_hat = tensor::Tanh(tensor::Slice(g, 1, 2 * hd, hd));
  const Tensor o = tensor::Sigmoid(tensor::Slice(g, 1, 3 * hd, hd));
  State next;
  next.c = tensor::Add(tensor::Mul(f, state.c), tensor::Mul(i, c_hat));
  next.h = tensor::Mul(o, tensor::Tanh(next.c));
  return next;
}

namespace {

/// Step mask [B,1]: 1 while t < lengths[b], else 0 (freezes padded states).
Tensor StepMask(const std::vector<int64_t>& lengths, int64_t t) {
  std::vector<float> m(lengths.size());
  for (size_t b = 0; b < lengths.size(); ++b) {
    m[b] = t < lengths[b] ? 1.0f : 0.0f;
  }
  return Tensor::FromVector(
      Shape({static_cast<int64_t>(lengths.size()), 1}), std::move(m));
}

Tensor MaskedUpdate(const Tensor& fresh, const Tensor& previous,
                    const Tensor& mask) {
  // mask * fresh + (1 - mask) * previous
  return tensor::Add(
      tensor::Mul(mask, fresh),
      tensor::Mul(tensor::AddScalar(tensor::Neg(mask), 1.0f), previous));
}

}  // namespace

Gru::Gru(int64_t input_dim, int64_t hidden_dim, common::Rng* rng)
    : cell_(input_dim, hidden_dim, rng) {
  RegisterModule("cell", &cell_);
}

Gru::Output Gru::Forward(const Tensor& x,
                         const std::vector<int64_t>& lengths) const {
  START_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), l = x.dim(1);
  START_CHECK_EQ(static_cast<int64_t>(lengths.size()), b);
  const int64_t hd = cell_.hidden_dim();
  Tensor h = Tensor::Zeros(Shape({b, hd}));
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(l));
  for (int64_t t = 0; t < l; ++t) {
    const Tensor xt = tensor::Select(x, 1, t);  // [B, in] zero-copy view
    const Tensor fresh = cell_.Step(xt, h);
    h = MaskedUpdate(fresh, h, StepMask(lengths, t));
    outputs.push_back(tensor::Reshape(h, Shape({b, 1, hd})));
  }
  Output out;
  out.outputs = tensor::Concat(outputs, 1);
  out.last_hidden = h;
  return out;
}

Lstm::Lstm(int64_t input_dim, int64_t hidden_dim, common::Rng* rng)
    : cell_(input_dim, hidden_dim, rng) {
  RegisterModule("cell", &cell_);
}

Lstm::Output Lstm::Forward(const Tensor& x,
                           const std::vector<int64_t>& lengths) const {
  START_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), l = x.dim(1);
  START_CHECK_EQ(static_cast<int64_t>(lengths.size()), b);
  const int64_t hd = cell_.hidden_dim();
  LstmCell::State state{Tensor::Zeros(Shape({b, hd})),
                        Tensor::Zeros(Shape({b, hd}))};
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(l));
  for (int64_t t = 0; t < l; ++t) {
    const Tensor xt = tensor::Select(x, 1, t);  // [B, in] zero-copy view
    const LstmCell::State fresh = cell_.Step(xt, state);
    const Tensor mask = StepMask(lengths, t);
    state.h = MaskedUpdate(fresh.h, state.h, mask);
    state.c = MaskedUpdate(fresh.c, state.c, mask);
    outputs.push_back(tensor::Reshape(state.h, Shape({b, 1, hd})));
  }
  Output out;
  out.outputs = tensor::Concat(outputs, 1);
  out.last_hidden = state.h;
  return out;
}

}  // namespace start::nn
