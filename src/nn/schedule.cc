#include "nn/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace start::nn {

WarmupCosineSchedule::WarmupCosineSchedule(double base_lr,
                                           int64_t warmup_steps,
                                           int64_t total_steps, double min_lr)
    : base_lr_(base_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps),
      min_lr_(min_lr) {
  START_CHECK_GE(warmup_steps, 0);
  START_CHECK_GT(total_steps, 0);
  START_CHECK_LE(warmup_steps, total_steps);
}

uint64_t WarmupCosineSchedule::Fingerprint() const {
  // FNV-1a over the raw parameter words; any change to the schedule shape
  // changes the fingerprint.
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint64_t word) {
    h ^= word;
    h *= 0x100000001b3ULL;
  };
  uint64_t bits = 0;
  std::memcpy(&bits, &base_lr_, sizeof(bits));
  mix(bits);
  mix(static_cast<uint64_t>(warmup_steps_));
  mix(static_cast<uint64_t>(total_steps_));
  std::memcpy(&bits, &min_lr_, sizeof(bits));
  mix(bits);
  return h;
}

double WarmupCosineSchedule::LrAt(int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return base_lr_ * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps_);
  }
  const int64_t decay_steps = std::max<int64_t>(1, total_steps_ - warmup_steps_);
  const double progress =
      std::min(1.0, static_cast<double>(step - warmup_steps_) /
                        static_cast<double>(decay_steps));
  return min_lr_ +
         0.5 * (base_lr_ - min_lr_) * (1.0 + std::cos(M_PI * progress));
}

}  // namespace start::nn
