#include "nn/layers.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"

namespace start::nn {

using tensor::Shape;
using tensor::Tensor;

Linear::Linear(int64_t in_features, int64_t out_features, common::Rng* rng,
               bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", XavierUniform(Shape({in_features, out_features}), rng));
  if (bias) {
    bias_ = RegisterParameter("bias", ZerosInit(Shape({out_features})));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  START_CHECK(x.defined());
  Tensor x2 = x;
  const bool is_3d = x.ndim() == 3;
  int64_t b = 0, l = 0;
  if (is_3d) {
    b = x.dim(0);
    l = x.dim(1);
    x2 = tensor::Reshape(x, Shape({b * l, x.dim(2)}));
  }
  START_CHECK_EQ(x2.dim(1), in_features_);
  Tensor y;
  if (packed_ != nullptr && !tensor::GradModeEnabled()) {
    // Frozen int8 path: quantize activations per row, integer GEMM against
    // the packed weight, dequant + bias in one epilogue.
    const Tensor xc = x2.is_contiguous() ? x2 : x2.Contiguous();
    y = Tensor::Zeros(Shape({x2.dim(0), out_features_}));
    tensor::qgemm::AffineForward(xc.data(), in_features_, x2.dim(0), *packed_,
                                 bias_.defined() ? bias_.data() : nullptr,
                                 y.data(), out_features_);
  } else {
    y = tensor::MatMul(x2, weight_);
    if (bias_.defined()) y = tensor::Add(y, bias_);
  }
  if (is_3d) y = tensor::Reshape(y, Shape({b, l, out_features_}));
  return y;
}

void Linear::QuantizeInt8() {
  const Tensor w = weight_.is_contiguous() ? weight_ : weight_.Contiguous();
  // qgemm wants output-channel-major [out, in]; weight_ is [in, out].
  std::vector<float> wt(
      static_cast<size_t>(in_features_ * out_features_));
  const float* src = w.data();
  for (int64_t i = 0; i < in_features_; ++i) {
    for (int64_t j = 0; j < out_features_; ++j) {
      wt[static_cast<size_t>(j * in_features_ + i)] =
          src[i * out_features_ + j];
    }
  }
  packed_ = std::make_shared<tensor::qgemm::PackedMatrix>(
      tensor::qgemm::QuantizeAndPack(wt.data(), in_features_, out_features_,
                                     in_features_));
}

common::Status Linear::SetQuantizedWeights(tensor::qgemm::PackedMatrix packed) {
  if (packed.rows != out_features_ || packed.cols != in_features_) {
    return common::Status::InvalidArgument(
        "quantized weight shape [" + std::to_string(packed.rows) + ", " +
        std::to_string(packed.cols) + "] does not match layer [" +
        std::to_string(out_features_) + ", " + std::to_string(in_features_) +
        "]");
  }
  if (packed.scales.size() != static_cast<size_t>(packed.rows) ||
      packed.data.size() !=
          static_cast<size_t>(packed.rows_padded * packed.cols_padded) ||
      packed.rows_padded < packed.rows || packed.cols_padded < packed.cols) {
    return common::Status::InvalidArgument(
        "inconsistent quantized weight buffers");
  }
  packed_ = std::make_shared<tensor::qgemm::PackedMatrix>(std::move(packed));
  return common::Status::OK();
}

const tensor::qgemm::PackedMatrix& Linear::quantized_weights() const {
  START_CHECK(packed_ != nullptr);
  return *packed_;
}

Embedding::Embedding(int64_t num_embeddings, int64_t dim, common::Rng* rng)
    : num_(num_embeddings), dim_(dim) {
  table_ = RegisterParameter("weight",
                             NormalInit(Shape({num_embeddings, dim}), rng));
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  return tensor::GatherRows(table_, indices);
}

LayerNormLayer::LayerNormLayer(int64_t dim, float eps) : eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones(Shape({dim})));
  beta_ = RegisterParameter("beta", Tensor::Zeros(Shape({dim})));
}

Tensor LayerNormLayer::Forward(const Tensor& x) const {
  return tensor::LayerNorm(x, gamma_, beta_, eps_);
}

FeedForward::FeedForward(int64_t dim, int64_t hidden_dim, common::Rng* rng,
                         float dropout)
    : fc1_(dim, hidden_dim, rng), fc2_(hidden_dim, dim, rng),
      dropout_(dropout) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

Tensor FeedForward::Forward(const Tensor& x) const {
  Tensor h = tensor::Relu(fc1_.Forward(x));
  h = tensor::Dropout(h, dropout_, training(), dropout_rng());
  return fc2_.Forward(h);
}

Tensor SinusoidalPositionalEncoding(int64_t max_len, int64_t dim) {
  std::vector<float> data(static_cast<size_t>(max_len * dim));
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < dim; ++i) {
      const double angle =
          pos / std::pow(10000.0, 2.0 * (i / 2) / static_cast<double>(dim));
      data[static_cast<size_t>(pos * dim + i)] =
          (i % 2 == 0) ? static_cast<float>(std::sin(angle))
                       : static_cast<float>(std::cos(angle));
    }
  }
  return Tensor::FromVector(Shape({max_len, dim}), std::move(data));
}

}  // namespace start::nn
