#include "nn/losses.h"

#include <vector>

#include "common/check.h"

namespace start::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor NtXentLoss(const Tensor& reps, float tau) {
  START_CHECK_EQ(reps.ndim(), 2);
  const int64_t n2 = reps.dim(0);
  START_CHECK_MSG(n2 % 2 == 0 && n2 >= 4,
                  "NT-Xent needs an even row count >= 4, got " << n2);
  START_CHECK_GT(tau, 0.0f);
  const Tensor normalized = tensor::L2NormalizeRows(reps);
  Tensor sim = tensor::MatMul(normalized, tensor::Transpose(normalized));
  sim = tensor::Scale(sim, 1.0f / tau);
  // Mask self-similarity so an anchor cannot pick itself (the indicator
  // 1[k != i] in Eq. 14).
  std::vector<float> diag_mask(static_cast<size_t>(n2 * n2), 0.0f);
  for (int64_t i = 0; i < n2; ++i) {
    diag_mask[static_cast<size_t>(i * n2 + i)] = -1e9f;
  }
  sim = tensor::Add(
      sim, Tensor::FromVector(Shape({n2, n2}), std::move(diag_mask)));
  // Row i's positive is its partner view (rows are laid out in pairs).
  std::vector<int64_t> targets(static_cast<size_t>(n2));
  for (int64_t i = 0; i < n2; ++i) {
    targets[static_cast<size_t>(i)] = i ^ 1;
  }
  return tensor::CrossEntropyWithLogits(sim, targets);
}

Tensor InfoNceLoss(const Tensor& global, const Tensor& locals,
                   const std::vector<int64_t>& lengths) {
  START_CHECK_EQ(global.ndim(), 2);
  START_CHECK_EQ(locals.ndim(), 3);
  const int64_t b = global.dim(0), d = global.dim(1);
  const int64_t l = locals.dim(1);
  START_CHECK_EQ(locals.dim(0), b);
  START_CHECK_EQ(locals.dim(2), d);
  START_CHECK_EQ(static_cast<int64_t>(lengths.size()), b);
  const Tensor locals_flat = tensor::Reshape(locals, Shape({b * l, d}));
  // scores[b1, b2 * L + t] = <global[b1], locals[b2, t]>
  const Tensor scores =
      tensor::MatMul(global, tensor::Transpose(locals_flat));  // [B, B*L]
  const Tensor scores_col = tensor::Reshape(scores, Shape({b * b * l, 1}));
  std::vector<int64_t> valid_rows;
  std::vector<float> targets;
  for (int64_t b1 = 0; b1 < b; ++b1) {
    for (int64_t b2 = 0; b2 < b; ++b2) {
      for (int64_t t = 0; t < lengths[static_cast<size_t>(b2)]; ++t) {
        valid_rows.push_back(b1 * b * l + b2 * l + t);
        targets.push_back(b1 == b2 ? 1.0f : 0.0f);
      }
    }
  }
  const Tensor gathered = tensor::GatherRows(scores_col, valid_rows);
  return tensor::BceWithLogits(gathered, targets);
}

}  // namespace start::nn
