#include "nn/allreduce.h"

#include <utility>

#include "common/check.h"

namespace start::nn {

namespace {

/// slots[i] += slots[j], treating null as exact zero (adopt j's buffer).
void CombinePair(std::vector<std::shared_ptr<std::vector<float>>>* slots,
                 size_t i, size_t j) {
  auto& left = (*slots)[i];
  auto& right = (*slots)[j];
  if (right == nullptr) return;
  if (left == nullptr) {
    left = std::move(right);
    return;
  }
  START_CHECK_EQ(left->size(), right->size());
  float* a = left->data();
  const float* b = right->data();
  const size_t n = left->size();
  for (size_t e = 0; e < n; ++e) a[e] += b[e];
  right.reset();
}

}  // namespace

std::shared_ptr<std::vector<float>> TreeReduce(
    std::vector<std::shared_ptr<std::vector<float>>> slots) {
  const size_t n = slots.size();
  for (size_t stride = 1; stride < n; stride *= 2) {
    for (size_t i = 0; i + stride < n; i += 2 * stride) {
      CombinePair(&slots, i, i + stride);
    }
  }
  return n == 0 ? nullptr : std::move(slots[0]);
}

void TreeReduceInto(std::vector<GradShard> shards,
                    const std::vector<tensor::Tensor>& params,
                    common::ThreadPool* pool) {
  const size_t num_params = params.size();
  for (const auto& shard : shards) {
    START_CHECK_EQ(shard.size(), num_params);
  }
  const auto reduce_param = [&shards, &params](size_t p) {
    std::vector<std::shared_ptr<std::vector<float>>> slots;
    slots.reserve(shards.size());
    for (auto& shard : shards) slots.push_back(std::move(shard[p]));
    const auto combined = TreeReduce(std::move(slots));
    if (combined == nullptr) return;  // no shard touched this parameter
    const tensor::Tensor& param = params[p];
    START_CHECK_EQ(static_cast<int64_t>(combined->size()), param.numel());
    START_CHECK_MSG(param.has_grad(),
                    "TreeReduceInto requires pre-allocated gradients "
                    "(call Optimizer::ZeroGrad first)");
    float* g = const_cast<float*>(param.grad());
    const float* c = combined->data();
    for (int64_t e = 0; e < param.numel(); ++e) g[e] += c[e];
  };

  if (pool == nullptr || num_params < 2) {
    for (size_t p = 0; p < num_params; ++p) reduce_param(p);
    return;
  }
  // One task per parameter; each parameter's tree is self-contained, so the
  // fan-out affects wall clock only.
  common::Latch latch(static_cast<int>(num_params));
  for (size_t p = 0; p < num_params; ++p) {
    pool->Submit([&, p] {
      reduce_param(p);
      latch.CountDown();
    });
  }
  latch.Wait();
}

}  // namespace start::nn
