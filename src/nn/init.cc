#include "nn/init.h"

#include <cmath>

#include "common/check.h"

namespace start::nn {

tensor::Tensor XavierUniform(const tensor::Shape& shape, common::Rng* rng,
                             float gain) {
  START_CHECK_GE(shape.ndim(), 2);
  const int64_t fan_in = shape.dim(0);
  const int64_t fan_out = shape.dim(-1);
  const float a =
      gain * std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::Rand(shape, rng, -a, a);
}

tensor::Tensor NormalInit(const tensor::Shape& shape, common::Rng* rng,
                          float stddev) {
  return tensor::Tensor::RandN(shape, rng, 0.0f, stddev);
}

tensor::Tensor ZerosInit(const tensor::Shape& shape) {
  return tensor::Tensor::Zeros(shape);
}

}  // namespace start::nn
