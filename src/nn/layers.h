#ifndef START_NN_LAYERS_H_
#define START_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/qgemm.h"

namespace start::nn {

/// \brief Affine layer y = x W + b. Accepts 2-D [N,in] or 3-D [B,L,in] input.
///
/// A Linear can additionally hold an int8 panel-packed copy of its weight
/// (QuantizeInt8 / SetQuantizedWeights). The packed copy is used by Forward
/// only under NoGradGuard (inference); training and any grad-enabled forward
/// keep using the f32 weight bitwise unchanged.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, common::Rng* rng,
         bool bias = true);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// Quantizes the current f32 weight into the packed int8 form (per-row
  /// scales over output channels) and enables the int8 inference path.
  /// Deterministic: same weight bytes -> same packed bytes.
  void QuantizeInt8();

  /// Installs externally loaded quantized weights (e.g. from a snapshot).
  /// Fails if the logical shape does not match [out, in].
  common::Status SetQuantizedWeights(tensor::qgemm::PackedMatrix packed);

  bool is_quantized() const { return packed_ != nullptr; }
  /// Requires is_quantized().
  const tensor::qgemm::PackedMatrix& quantized_weights() const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  tensor::Tensor weight() const { return weight_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  tensor::Tensor weight_;  // [in, out]
  tensor::Tensor bias_;    // [out] (undefined when bias == false)
  // Set once before serving (never mutated concurrently with Forward).
  std::shared_ptr<const tensor::qgemm::PackedMatrix> packed_;
};

/// \brief Embedding table lookup: indices -> rows of a [num, dim] table.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, common::Rng* rng);

  /// Returns [indices.size(), dim].
  tensor::Tensor Forward(const std::vector<int64_t>& indices) const;

  tensor::Tensor table() const { return table_; }
  int64_t num_embeddings() const { return num_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_;
  int64_t dim_;
  tensor::Tensor table_;
};

/// \brief Layer normalisation over the last dimension with learned scale/shift.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(int64_t dim, float eps = 1e-5f);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  tensor::Tensor gamma_;
  tensor::Tensor beta_;
  float eps_;
};

/// \brief Position-wise feed-forward network of the Transformer (Eq. 11):
/// FFN(x) = ReLU(x W1 + b1) W2 + b2, with dropout on the hidden activation.
class FeedForward : public Module {
 public:
  FeedForward(int64_t dim, int64_t hidden_dim, common::Rng* rng,
              float dropout = 0.1f);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
  float dropout_;
};

/// Builds the sinusoidal positional-encoding matrix [max_len, dim] of the
/// Transformer; returned as a constant (non-trainable) tensor.
tensor::Tensor SinusoidalPositionalEncoding(int64_t max_len, int64_t dim);

}  // namespace start::nn

#endif  // START_NN_LAYERS_H_
