#ifndef START_NN_LOSSES_H_
#define START_NN_LOSSES_H_

#include <cstdint>

#include "tensor/ops.h"

namespace start::nn {

/// \brief Normalised temperature-scaled cross entropy (NT-Xent) with in-batch
/// negatives — the paper's contrastive objective (Eq. 14, following SimCLR).
///
/// `reps` is [2N, d] laid out as consecutive positive pairs: rows (2i, 2i+1)
/// are the two augmented views of trajectory i. Every row is trained to pick
/// its partner among the 2(N-1) other rows with cosine similarity scaled by
/// 1/tau. Returns the mean loss over all 2N anchors.
tensor::Tensor NtXentLoss(const tensor::Tensor& reps, float tau);

/// \brief Jensen-Shannon style InfoNCE mutual-information objective used by
/// the PIM baseline [18]: for each sequence, its global representation
/// `global` [B, d] is scored against local step representations `locals`
/// [B, L, d] of every sequence in the batch; same-sequence pairs are
/// positives, cross-sequence pairs negatives (BCE on bilinear scores).
/// `lengths` marks valid steps of each sequence.
tensor::Tensor InfoNceLoss(const tensor::Tensor& global,
                           const tensor::Tensor& locals,
                           const std::vector<int64_t>& lengths);

}  // namespace start::nn

#endif  // START_NN_LOSSES_H_
