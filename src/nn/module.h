#ifndef START_NN_MODULE_H_
#define START_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace start::nn {

/// \brief Base class for neural-network modules: a named parameter registry
/// with train/eval mode, save/load, and recursive traversal.
///
/// Submodules are registered by raw pointer; the registering module must own
/// them (as value members or unique_ptr members) and register them in its
/// constructor, mirroring torch::nn semantics.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered submodules, with
  /// fully-qualified dotted names (e.g. "encoder.layer0.wq.weight").
  std::vector<std::pair<std::string, tensor::Tensor>> NamedParameters() const;

  /// Parameters without names.
  std::vector<tensor::Tensor> Parameters() const;

  /// This module and every registered submodule, depth-first, with dotted
  /// paths ("" for the root, "encoder0.attn.wq" for a leaf). Non-const
  /// pointers so callers can apply structural transforms (e.g. post-training
  /// quantization) to selected submodules.
  std::vector<std::pair<std::string, Module*>> NamedModules();

  /// Zeroes the gradients of every parameter.
  void ZeroGrad();

  /// Toggles training mode recursively (affects dropout).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Sets the generator used for dropout mask sampling in this module tree
  /// (recursively). nullptr (the default) falls back to common::GlobalRng().
  /// Seeding an explicit generator makes training steps reproducible even
  /// when other components consume the global stream.
  void SetDropoutRng(common::Rng* rng);

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Persists all named parameters to `path` (tensor::SaveTensors format).
  common::Status Save(const std::string& path) const;

  /// Loads parameters by name; every registered parameter must be present
  /// with a matching shape. Extra tensors in the file are ignored, so a
  /// fine-tuning model can load a pre-trained checkpoint that lacks the new
  /// head (missing entries are reported via the `allow_missing` flag).
  /// With `skip_mismatched`, parameters whose checkpoint shape differs are
  /// left at their current values instead of failing — this is the
  /// cross-city transfer path of Table III, where |V|-dependent tensors
  /// (e.g. the MLM output head) cannot move between road networks.
  common::Status Load(const std::string& path, bool allow_missing = false,
                      bool skip_mismatched = false);

  /// Copies parameter values from a module with identical structure.
  void CopyParametersFrom(const Module& other);

 protected:
  /// Registers a leaf parameter; returns the same tensor with
  /// requires_grad set.
  tensor::Tensor RegisterParameter(const std::string& name, tensor::Tensor t);

  /// Registers a child module (must outlive this module).
  void RegisterModule(const std::string& name, Module* child);

  /// Generator for dropout masks; nullptr means use common::GlobalRng().
  common::Rng* dropout_rng() const { return dropout_rng_; }

 private:
  void CollectParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, tensor::Tensor>>* out) const;

  void CollectModules(const std::string& prefix,
                      std::vector<std::pair<std::string, Module*>>* out);

  std::vector<std::pair<std::string, tensor::Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
  common::Rng* dropout_rng_ = nullptr;
};

/// Rescales gradients in-place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm.
double ClipGradNorm(const std::vector<tensor::Tensor>& params,
                    double max_norm);

}  // namespace start::nn

#endif  // START_NN_MODULE_H_
