#ifndef START_NN_RNN_H_
#define START_NN_RNN_H_

#include <utility>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace start::nn {

/// \brief Single GRU cell (used by the t2vec/traj2vec/Trembr baselines).
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, common::Rng* rng);

  /// One step: x [B, input_dim], h [B, hidden_dim] -> new h.
  tensor::Tensor Step(const tensor::Tensor& x, const tensor::Tensor& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear ih_;  // input -> 3h (reset | update | candidate)
  Linear hh_;  // hidden -> 3h
};

/// \brief Single LSTM cell (used by the PIM baseline).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_dim, int64_t hidden_dim, common::Rng* rng);

  struct State {
    tensor::Tensor h;
    tensor::Tensor c;
  };

  State Step(const tensor::Tensor& x, const State& state) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear ih_;  // input -> 4h (input | forget | cell | output)
  Linear hh_;
};

/// \brief Unidirectional GRU over a padded batch.
///
/// Padded steps (t >= lengths[b]) freeze the hidden state of sequence b so the
/// final state equals the state at each sequence's true end.
class Gru : public Module {
 public:
  Gru(int64_t input_dim, int64_t hidden_dim, common::Rng* rng);

  struct Output {
    tensor::Tensor outputs;     ///< [B, L, hidden]
    tensor::Tensor last_hidden; ///< [B, hidden]
  };

  /// x [B, L, input_dim]; lengths per sequence (all in [1, L]).
  Output Forward(const tensor::Tensor& x,
                 const std::vector<int64_t>& lengths) const;

  const GruCell& cell() const { return cell_; }

 private:
  GruCell cell_;
};

/// \brief Unidirectional LSTM over a padded batch (see Gru for padding rules).
class Lstm : public Module {
 public:
  Lstm(int64_t input_dim, int64_t hidden_dim, common::Rng* rng);

  struct Output {
    tensor::Tensor outputs;     ///< [B, L, hidden]
    tensor::Tensor last_hidden; ///< [B, hidden]
  };

  Output Forward(const tensor::Tensor& x,
                 const std::vector<int64_t>& lengths) const;

 private:
  LstmCell cell_;
};

}  // namespace start::nn

#endif  // START_NN_RNN_H_
