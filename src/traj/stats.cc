#include "traj/stats.h"

#include <algorithm>
#include <set>

namespace start::traj {

CorpusStats ComputeStats(const roadnet::RoadNetwork& net,
                         const std::vector<Trajectory>& corpus) {
  CorpusStats s;
  s.num_trajectories = static_cast<int64_t>(corpus.size());
  s.road_visits.assign(static_cast<size_t>(net.num_segments()), 0);
  std::set<int64_t> users;
  double total_len = 0.0, total_time = 0.0;
  for (const auto& t : corpus) {
    users.insert(t.driver_id);
    total_len += static_cast<double>(t.size());
    total_time += static_cast<double>(t.TravelTimeSeconds());
    const int64_t dep = t.departure_time();
    s.per_day_of_week[static_cast<size_t>(DayOfWeekIndex(dep) - 1)]++;
    s.per_hour[static_cast<size_t>(static_cast<int64_t>(HourOfDay(dep)))]++;
    for (const int64_t r : t.roads) {
      s.road_visits[static_cast<size_t>(r)]++;
    }
    for (size_t i = 0; i + 1 < t.timestamps.size(); ++i) {
      const int64_t dt = t.timestamps[i + 1] - t.timestamps[i];
      const size_t bin = std::min<size_t>(
          s.interval_histogram.size() - 1, static_cast<size_t>(dt / 5));
      s.interval_histogram[bin]++;
    }
  }
  s.num_users = static_cast<int64_t>(users.size());
  s.num_covered_roads = static_cast<int64_t>(
      std::count_if(s.road_visits.begin(), s.road_visits.end(),
                    [](int64_t c) { return c > 0; }));
  if (!corpus.empty()) {
    s.mean_length = total_len / static_cast<double>(corpus.size());
    s.mean_travel_time_s = total_time / static_cast<double>(corpus.size());
  }
  return s;
}

}  // namespace start::traj
