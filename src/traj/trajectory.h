#ifndef START_TRAJ_TRAJECTORY_H_
#define START_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

namespace start::traj {

/// Seconds per day / week for the synthetic calendar. Time zero is Monday
/// 00:00 of the dataset's first week.
constexpr int64_t kSecondsPerDay = 86400;
constexpr int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

/// Minute-of-day index in [1, 1440] (Sec. III-B1; index 0 is reserved for the
/// [MASKT] token).
int64_t MinuteIndex(int64_t timestamp);

/// Day-of-week index in [1, 7], 1 = Monday (index 0 reserved for [MASKT]).
int64_t DayOfWeekIndex(int64_t timestamp);

/// True for Saturday/Sunday.
bool IsWeekend(int64_t timestamp);

/// Hour of day in [0, 24).
double HourOfDay(int64_t timestamp);

/// \brief Road-network constrained trajectory (Definition 3): a time-ordered
/// sequence of adjacent road segments with visit timestamps, plus the labels
/// used by the downstream tasks.
struct Trajectory {
  std::vector<int64_t> roads;       ///< Segment ids, adjacent in the network.
  std::vector<int64_t> timestamps;  ///< Entry time (s) into each segment.
  int64_t end_time = 0;             ///< Exit time of the last segment.
  int64_t driver_id = -1;           ///< Multi-class label (Porto-style task).
  bool occupied = false;            ///< Binary label (BJ-style task).
  int32_t transport_mode = 0;       ///< Geolife-style label (Table III).

  int64_t size() const { return static_cast<int64_t>(roads.size()); }
  int64_t departure_time() const { return timestamps.empty() ? 0 : timestamps.front(); }
  /// Total travel time in seconds.
  int64_t TravelTimeSeconds() const {
    return timestamps.empty() ? 0 : end_time - timestamps.front();
  }
};

/// \brief A raw GPS sample point (Definition 2) in the local metric frame.
struct GpsPoint {
  double x = 0.0;
  double y = 0.0;
  int64_t timestamp = 0;
};

/// A raw GPS trajectory.
struct GpsTrajectory {
  std::vector<GpsPoint> points;
};

}  // namespace start::traj

#endif  // START_TRAJ_TRAJECTORY_H_
