#include "traj/traffic_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace start::traj {

TrafficModel::TrafficModel(const roadnet::RoadNetwork* net,
                           const Config& config)
    : net_(net), config_(config) {
  START_CHECK(net != nullptr);
  START_CHECK(net->finalized());
  common::Rng rng(config.seed);
  propensity_.resize(static_cast<size_t>(net->num_segments()));
  for (int64_t v = 0; v < net->num_segments(); ++v) {
    // Arterials attract commuter flow and congest harder; side streets less.
    double base = 0.35;
    switch (net->segment(v).type) {
      case roadnet::RoadType::kMotorway:
      case roadnet::RoadType::kPrimary:
        base = 0.85;
        break;
      case roadnet::RoadType::kSecondary:
        base = 0.65;
        break;
      case roadnet::RoadType::kTertiary:
        base = 0.5;
        break;
      case roadnet::RoadType::kResidential:
        base = 0.3;
        break;
    }
    propensity_[static_cast<size_t>(v)] =
        std::clamp(base + rng.Uniform(-0.15, 0.15), 0.05, 1.0);
  }
}

double TrafficModel::RushIntensity(int64_t timestamp) const {
  const double h = HourOfDay(timestamp);
  auto bump = [](double hour, double center, double sigma) {
    const double d = hour - center;
    return std::exp(-0.5 * d * d / (sigma * sigma));
  };
  if (IsWeekend(timestamp)) {
    return config_.weekend_slowdown / config_.max_slowdown *
           bump(h, config_.weekend_midday_peak, 2.4);
  }
  const double morning = bump(h, config_.morning_peak_hour,
                              config_.peak_width_hours);
  const double evening = bump(h, config_.evening_peak_hour,
                              config_.peak_width_hours);
  return std::min(1.0, morning + evening);
}

double TrafficModel::SpeedFactor(int64_t road, int64_t timestamp) const {
  const double rush = RushIntensity(timestamp);
  const double slowdown =
      config_.max_slowdown * propensity_[static_cast<size_t>(road)] * rush;
  return std::max(0.15, 1.0 - slowdown);
}

double TrafficModel::ExpectedTravelTime(int64_t road,
                                        int64_t timestamp) const {
  const auto& seg = net_->segment(road);
  return seg.length_m / (seg.maxspeed_mps * SpeedFactor(road, timestamp));
}

double TrafficModel::SampleTravelTime(int64_t road, int64_t timestamp,
                                      common::Rng* rng) const {
  START_CHECK(rng != nullptr);
  const double noise =
      std::max(0.5, 1.0 + rng->Normal(0.0, config_.noise));
  return ExpectedTravelTime(road, timestamp) * noise;
}

double TrafficModel::HistoricalMeanTravelTime(int64_t road) const {
  // Average the deterministic profile over a representative week.
  double total = 0.0;
  int64_t samples = 0;
  for (int64_t day = 0; day < 7; ++day) {
    for (int64_t hour = 0; hour < 24; ++hour) {
      const int64_t t = day * kSecondsPerDay + hour * 3600;
      total += ExpectedTravelTime(road, t);
      ++samples;
    }
  }
  return total / static_cast<double>(samples);
}

double TrafficModel::CongestionPropensity(int64_t road) const {
  START_CHECK(road >= 0 && road < net_->num_segments());
  return propensity_[static_cast<size_t>(road)];
}

}  // namespace start::traj
