#include "traj/trajectory.h"

namespace start::traj {

int64_t MinuteIndex(int64_t timestamp) {
  int64_t m = (timestamp / 60) % 1440;
  if (m < 0) m += 1440;
  return m + 1;
}

int64_t DayOfWeekIndex(int64_t timestamp) {
  int64_t d = (timestamp / kSecondsPerDay) % 7;
  if (d < 0) d += 7;
  return d + 1;
}

bool IsWeekend(int64_t timestamp) {
  const int64_t dow = DayOfWeekIndex(timestamp);
  return dow == 6 || dow == 7;
}

double HourOfDay(int64_t timestamp) {
  int64_t s = timestamp % kSecondsPerDay;
  if (s < 0) s += kSecondsPerDay;
  return static_cast<double>(s) / 3600.0;
}

}  // namespace start::traj
