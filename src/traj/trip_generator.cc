#include "traj/trip_generator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "roadnet/shortest_path.h"

namespace start::traj {

namespace {

/// Deterministic per-(driver, road) route-preference multiplier in
/// [1 - a, 1 + a]: drivers consistently prefer some roads over others, which
/// makes driver identity recoverable from route shape (the Porto-style
/// classification signal).
double PreferenceMultiplier(uint64_t driver_seed, int64_t road, double a) {
  uint64_t x = driver_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(road + 1));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return 1.0 + a * (2.0 * u - 1.0);
}

double Dist(const roadnet::RoadSegment& a, const roadnet::RoadSegment& b) {
  return std::hypot(a.MidX() - b.MidX(), a.MidY() - b.MidY());
}

}  // namespace

TripGenerator::TripGenerator(const TrafficModel* traffic, const Config& config)
    : traffic_(traffic),
      net_(&traffic->network()),
      config_(config),
      rng_(config.seed),
      router_(&traffic->network()) {
  START_CHECK(traffic != nullptr);
  START_CHECK_GT(config.num_drivers, 0);
  const int64_t v = net_->num_segments();
  home_anchor_.resize(static_cast<size_t>(config_.num_drivers));
  work_anchor_.resize(static_cast<size_t>(config_.num_drivers));
  driver_seed_.resize(static_cast<size_t>(config_.num_drivers));
  for (int64_t d = 0; d < config_.num_drivers; ++d) {
    const int64_t home = rng_.UniformInt(v);
    // Work anchor: resample until it is reasonably far from home so commutes
    // produce non-trivial trajectories.
    int64_t work = rng_.UniformInt(v);
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (Dist(net_->segment(home), net_->segment(work)) >
          4.0 * config_.zone_radius_m) {
        break;
      }
      work = rng_.UniformInt(v);
    }
    home_anchor_[static_cast<size_t>(d)] = home;
    work_anchor_[static_cast<size_t>(d)] = work;
    driver_seed_[static_cast<size_t>(d)] = rng_.Next();
  }
}

int64_t TripGenerator::HomeAnchor(int64_t driver) const {
  START_CHECK(driver >= 0 && driver < config_.num_drivers);
  return home_anchor_[static_cast<size_t>(driver)];
}

int64_t TripGenerator::WorkAnchor(int64_t driver) const {
  START_CHECK(driver >= 0 && driver < config_.num_drivers);
  return work_anchor_[static_cast<size_t>(driver)];
}

int64_t TripGenerator::SampleNear(int64_t anchor, common::Rng* rng) const {
  auto it = zone_cache_.find(anchor);
  if (it == zone_cache_.end()) {
    // First query for this anchor: scan the network once and memoize the
    // zone membership (ids ascending, so sampling below is deterministic).
    const auto& a = net_->segment(anchor);
    std::vector<int64_t> near;
    for (int64_t v = 0; v < net_->num_segments(); ++v) {
      if (Dist(a, net_->segment(v)) <= config_.zone_radius_m) {
        near.push_back(v);
      }
    }
    it = zone_cache_.emplace(anchor, std::move(near)).first;
  }
  const std::vector<int64_t>& near = it->second;
  if (near.empty()) return anchor;
  return near[static_cast<size_t>(rng->UniformInt(
      static_cast<int64_t>(near.size())))];
}

int64_t TripGenerator::SampleDepartureTime(int64_t day, common::Rng* rng,
                                           bool* is_commute_morning,
                                           bool* is_commute_evening) const {
  *is_commute_morning = false;
  *is_commute_evening = false;
  const int64_t day_start = day * kSecondsPerDay;
  const bool weekend = IsWeekend(day_start);
  double hour;
  if (weekend) {
    hour = std::clamp(rng->Normal(14.0, 3.0), 6.0, 23.0);
  } else {
    const double u = rng->Uniform();
    if (u < 0.3) {
      hour = std::clamp(rng->Normal(8.0, 0.7), 5.5, 11.0);
      *is_commute_morning = true;
    } else if (u < 0.6) {
      hour = std::clamp(rng->Normal(18.0, 0.7), 15.0, 22.0);
      *is_commute_evening = true;
    } else {
      hour = rng->Uniform(6.0, 23.0);
    }
  }
  return day_start + static_cast<int64_t>(hour * 3600.0);
}

Trajectory TripGenerator::GenerateTrip(int64_t driver, int64_t src,
                                       int64_t dst, int64_t depart) {
  START_CHECK(driver >= 0 && driver < config_.num_drivers);
  Trajectory t;
  if (src == dst) return t;
  const uint64_t seed = driver_seed_[static_cast<size_t>(driver)];
  // Per-trip multiplicative jitter on top of the driver preference.
  common::Rng trip_rng(rng_.Next());
  const uint64_t trip_seed = trip_rng.Next();
  auto weight = [&](int64_t road) {
    const double base = net_->FreeFlowTravelTime(road);
    const double pref =
        PreferenceMultiplier(seed, road, config_.driver_preference);
    const double noise =
        PreferenceMultiplier(trip_seed, road, config_.trip_noise);
    return base * pref * noise;
  };
  auto route = router_.Route(src, dst, weight);
  if (!route.has_value() || route->path.size() < 2) return t;
  // Realise timestamps through the congestion model.
  t.roads = route->path;
  t.timestamps.resize(t.roads.size());
  double clock = static_cast<double>(depart);
  for (size_t i = 0; i < t.roads.size(); ++i) {
    t.timestamps[i] = static_cast<int64_t>(clock);
    const double dt = traffic_->SampleTravelTime(
        t.roads[i], static_cast<int64_t>(clock), &trip_rng);
    clock += std::max(1.0, dt);
  }
  t.end_time = static_cast<int64_t>(clock);
  t.driver_id = driver;
  return t;
}

std::vector<Trajectory> TripGenerator::Generate() {
  std::vector<Trajectory> corpus;
  const int64_t v = net_->num_segments();
  for (int64_t driver = 0; driver < config_.num_drivers; ++driver) {
    const int64_t home = home_anchor_[static_cast<size_t>(driver)];
    const int64_t work = work_anchor_[static_cast<size_t>(driver)];
    for (int64_t day = 0; day < config_.num_days; ++day) {
      const bool weekend = IsWeekend(day * kSecondsPerDay);
      int64_t trips_today = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 config_.trips_per_driver_day *
                 rng_.Uniform(0.7, 1.3) * (weekend ? 0.6 : 1.0))));
      bool did_morning = false, did_evening = false;
      for (int64_t k = 0; k < trips_today; ++k) {
        bool morning = false, evening = false;
        const int64_t depart =
            SampleDepartureTime(day, &rng_, &morning, &evening);
        int64_t src, dst;
        if (morning && !did_morning && !weekend) {
          src = SampleNear(home, &rng_);
          dst = SampleNear(work, &rng_);
          did_morning = true;
        } else if (evening && !did_evening && !weekend) {
          src = SampleNear(work, &rng_);
          dst = SampleNear(home, &rng_);
          did_evening = true;
        } else {
          // Errand: one endpoint near an anchor, the other anywhere.
          const int64_t anchor = rng_.Bernoulli(0.5) ? home : work;
          src = SampleNear(anchor, &rng_);
          dst = rng_.UniformInt(v);
        }
        Trajectory trip = GenerateTrip(driver, src, dst, depart);
        if (trip.size() < 2) continue;
        trip.occupied = true;
        const int64_t arrival = trip.end_time;
        const int64_t arrived_at = trip.roads.back();
        corpus.push_back(std::move(trip));
        // Vacant repositioning hop after some occupied trips.
        if (rng_.Bernoulli(config_.vacant_fraction)) {
          const int64_t idle = rng_.UniformInt(60, 600);
          const int64_t reposition_dst = SampleNear(arrived_at, &rng_);
          Trajectory vacant = GenerateTrip(driver, arrived_at,
                                           reposition_dst, arrival + idle);
          if (vacant.size() >= 2) {
            vacant.occupied = false;
            corpus.push_back(std::move(vacant));
          }
        }
      }
    }
  }
  std::sort(corpus.begin(), corpus.end(),
            [](const Trajectory& a, const Trajectory& b) {
              return a.departure_time() < b.departure_time();
            });
  return corpus;
}

}  // namespace start::traj
