#ifndef START_TRAJ_MAP_MATCHING_H_
#define START_TRAJ_MAP_MATCHING_H_

#include <vector>

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace start::traj {

/// \brief Simulates raw GPS sampling of a road-constrained trajectory:
/// positions are interpolated along segment geometry every
/// `sample_interval_s` seconds and perturbed with Gaussian noise of std
/// `noise_m` meters (the Porto dataset samples every 15 s; Sec. IV-A).
GpsTrajectory SimulateGps(const roadnet::RoadNetwork& net,
                          const Trajectory& traj, double sample_interval_s,
                          double noise_m, common::Rng* rng);

/// \brief HMM map matcher (the FMM [21] substitute; see DESIGN.md).
///
/// Candidates for each GPS point are segments whose distance is below
/// `candidate_radius_m`. Emission: Gaussian in point-to-segment distance.
/// Transition: free for staying on a segment, mild penalty per hop for
/// network-adjacent moves (up to 2 hops), impossible otherwise. Viterbi
/// decoding, then consecutive duplicates are collapsed into the recovered
/// road sequence.
class HmmMapMatcher {
 public:
  struct Config {
    double candidate_radius_m = 120.0;
    double emission_sigma_m = 35.0;
    double hop_penalty = 1.2;  ///< Log-space penalty per network hop.
  };

  HmmMapMatcher(const roadnet::RoadNetwork* net, const Config& config);

  /// Returns the recovered road sequence (empty when matching fails).
  std::vector<int64_t> Match(const GpsTrajectory& gps) const;

  /// \brief Full matched trajectory: the recovered road sequence plus entry
  /// timestamps taken from the GPS fixes (each segment's entry time is the
  /// timestamp of the first fix Viterbi assigned to it; end_time is the
  /// last fix). This is what the streaming ingestion pipeline feeds the
  /// encoder — the temporal indices (minute/day-of-week) come straight from
  /// the stream. Returns an empty trajectory when matching fails.
  Trajectory MatchTrajectory(const GpsTrajectory& gps) const;

  /// Distance (meters) from a point to a segment's geometry.
  static double PointToSegmentDistance(const roadnet::RoadSegment& seg,
                                       double x, double y);

 private:
  std::vector<int64_t> Candidates(double x, double y) const;
  /// Viterbi decode: the matched segment per GPS fix (empty on failure).
  std::vector<int64_t> ViterbiStates(const GpsTrajectory& gps) const;
  /// Cell index of a coordinate (clamped to the grid).
  int64_t CellOf(double x, double y) const;

  const roadnet::RoadNetwork* net_;
  Config config_;

  // Uniform spatial hash over segment bounding boxes, built once at
  // construction: Candidates() scans one cell instead of every segment.
  // Each segment is inserted into every cell its bounding box expanded by
  // candidate_radius_m overlaps, so the single-cell scan sees a superset of
  // the segments within the radius — the distance filter then yields
  // exactly the same candidate set as the old full scan.
  double cell_size_m_ = 0.0;
  double min_x_ = 0.0, min_y_ = 0.0;
  int64_t grid_w_ = 1, grid_h_ = 1;
  std::vector<std::vector<int32_t>> cells_;
};

}  // namespace start::traj

#endif  // START_TRAJ_MAP_MATCHING_H_
